// Figure 5 (a-d): analytical RIB-Out size of an ARR/TRR, same sweeps as
// Figure 4. Expected shapes: ABRR shrinks steadily with more APs (only
// managed prefixes are advertised) while TBRR is capped by the paper at
// 100 clusters (#clusters is bounded by major PoPs); redundancy and
// router count leave RIB-Out flat; peer ASes grow everything via #BAL.
#include <cstdio>

#include "analysis/regression.h"
#include "analysis/rib_model.h"

namespace {

using namespace abrr::analysis;

const BalModel kBal;

ModelParams base(double peer_ases = 30) {
  ModelParams p;
  p.prefixes = 400'000;
  p.aps = 50;
  p.rrs = 100;
  p.bal = kBal(peer_ases);
  return p;
}

void header(const char* x) {
  std::printf("%-12s %-14s %-14s %-14s\n", x, "ABRR", "TBRR", "TBRR-multi");
}

void row(double x, const ModelParams& p, bool tbrr_valid = true) {
  if (tbrr_valid) {
    std::printf("%-12.0f %-14.0f %-14.0f %-14.0f\n", x,
                AbrrModel::rib_out(p), TbrrModel::rib_out(p),
                TbrrMultiModel::rib_out(p));
  } else {
    // The paper truncates TBRR curves at 100 clusters (Fig. 5b).
    std::printf("%-12.0f %-14.0f %-14s %-14s\n", x, AbrrModel::rib_out(p),
                "-", "-");
  }
}

}  // namespace

int main() {
  std::printf("# Figure 5: analytical # RIB-Out entries of an ARR/TRR\n\n");

  std::printf("(a) vs number of routers (flat)\n");
  header("#Routers");
  for (const double n : {500, 1000, 2000, 4000, 8000}) row(n, base());

  std::printf("\n(b) vs number of APs / clusters (TBRR capped at 100)\n");
  header("#APs");
  for (const double aps : {5, 10, 20, 50, 100, 200, 400}) {
    ModelParams p = base();
    p.aps = aps;
    p.rrs = 2 * aps;
    row(aps, p, /*tbrr_valid=*/aps <= 100);
  }

  std::printf("\n(c) vs RRs per AP / cluster (flat: RIB-Out is per group)\n");
  header("#RRs/AP");
  for (const double k : {1, 2, 3, 4, 6, 8}) {
    ModelParams p = base();
    p.rrs = k * p.aps;
    row(k, p);
  }

  std::printf("\n(d) vs number of peer ASes\n");
  header("#PeerASes");
  for (const double pas : {5, 10, 20, 30, 40, 60}) row(pas, base(pas));

  const ModelParams p = base();
  std::printf("\n# headline: TBRR/ABRR RIB-Out ratio at defaults = %.1fx\n",
              TbrrModel::rib_out(p) / AbrrModel::rib_out(p));
  return 0;
}
