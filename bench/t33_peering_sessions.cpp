// §3.3-§3.4: iBGP peering-session requirements per role, analytical
// model at the paper's full scale plus the same quantities measured on
// the scaled testbed (model and measurement must agree exactly — the
// wiring is deterministic).
//
// Paper anchors: busiest TRR ~200 sessions (average ~100); an ARR needs
// >1000 (every router); ABRR clients 20-30 sessions at 10-15 APs vs 2
// for TBRR clients; full mesh needs ~n^2/2 total.
#include <algorithm>
#include <cstdio>
#include <memory>

#include "analysis/session_model.h"
#include "common.h"

int main(int argc, char** argv) {
  using namespace abrr;
  const auto cfg = bench::ExperimentConfig::from_args(argc, argv, "t33_peering_sessions");

  std::printf("# §3.3: analytical session counts at the paper's scale\n");
  std::printf("# (2000 routers; sweeping #APs/clusters, 2 RRs each)\n\n");
  std::printf("%-8s %14s %14s %16s %16s\n", "#APs", "ARR sessions",
              "TRR sessions", "ABRR client", "TBRR client");
  for (const double aps : {10, 15, 27, 50, 100}) {
    analysis::SessionParams p;
    p.routers = 2000;
    p.aps = aps;
    std::printf("%-8.0f %14.0f %14.0f %16.0f %16.0f\n", aps,
                analysis::SessionModel::arr_sessions(p),
                analysis::SessionModel::trr_sessions(p),
                analysis::SessionModel::abrr_client_sessions(p),
                analysis::SessionModel::tbrr_client_sessions(p));
  }
  {
    analysis::SessionParams p;
    p.routers = 2000;
    p.aps = 50;
    std::printf("\n# total sessions at 50 APs/clusters: full-mesh %.0f,"
                " TBRR %.0f, ABRR %.0f\n",
                analysis::SessionModel::full_mesh_total(p),
                analysis::SessionModel::tbrr_total(p),
                analysis::SessionModel::abrr_total(p));
  }

  // Measured on the scaled testbed.
  sim::Rng rng{cfg.seed};
  const auto topology = bench::make_paper_topology(cfg, rng);
  const auto workload = bench::make_paper_workload(cfg, topology, rng);
  const auto prefixes = workload.prefixes();

  std::printf("\n# measured on the %zu-router testbed (8 APs / %u"
              " clusters):\n",
              topology.clients.size(), cfg.pops);
  bench::MetricsSink sink{"t33_peering_sessions", cfg.metrics_out};
  const auto measure = [&](ibgp::IbgpMode mode, std::size_t aps,
                           const char* label) {
    auto options = bench::paper_options(mode, aps, cfg.seed);
    harness::Testbed bed{topology, options, prefixes};
    std::size_t rr_max = 0;
    double rr_sum = 0;
    for (const auto id : bed.rr_ids()) {
      const auto n = bed.speaker(id).peer_count();
      rr_max = std::max(rr_max, n);
      rr_sum += static_cast<double>(n);
    }
    double cl_sum = 0;
    for (const auto id : bed.client_ids()) {
      cl_sum += static_cast<double>(bed.speaker(id).peer_count());
    }
    const double rr_avg =
        bed.rr_ids().empty()
            ? 0.0
            : rr_sum / static_cast<double>(bed.rr_ids().size());
    std::printf("#   %-10s RR avg %.0f / max %zu sessions; client avg "
                "%.1f; AS total %zu\n",
                label, rr_avg, rr_max,
                cl_sum / static_cast<double>(bed.client_ids().size()),
                bed.session_count());
    sink.capture(label, bed);
  };
  measure(ibgp::IbgpMode::kAbrr, 8, "ABRR");
  measure(ibgp::IbgpMode::kTbrr, cfg.pops, "TBRR");
  measure(ibgp::IbgpMode::kFullMesh, 0, "full-mesh");
  return 0;
}
