// §4.2 transmitted-updates experiment: the full 27-cluster iBGP topology
// emulated for TBRR, and a corresponding 27-AP ABRR topology. The paper
// measured that each TRR TRANSMITS ~2.5x more updates than an ARR, while
// each ABRR update carries ~10 routes and is ~10x longer, so an ARR
// transmits roughly 4x more BYTES: ABRR trades a modest bandwidth loss
// for a large processing win.
#include <cstdio>
#include <memory>

#include "common.h"

int main(int argc, char** argv) {
  using namespace abrr;
  auto cfg = bench::ExperimentConfig::from_args(argc, argv, "t42_transmitted_updates");
  cfg.pops = 27;  // the full 27-cluster AS of §4.2
  if (cfg.prefixes == 4000) cfg.prefixes = 2000;  // 27 PoPs cost more
  sim::Rng rng{cfg.seed};
  const auto topology = bench::make_paper_topology(cfg, rng);
  const auto workload = bench::make_paper_workload(cfg, topology, rng);
  const auto prefixes = workload.prefixes();

  trace::TraceParams tparams;
  tparams.duration = sim::sec_f(cfg.trace_seconds);
  tparams.events_per_second = cfg.trace_events_per_second;
  sim::Rng trace_rng{cfg.seed + 1};
  const auto trace =
      trace::UpdateTrace::generate(tparams, workload, trace_rng);

  std::printf("# §4.2: transmitted updates and bytes, 27 clusters vs 27 APs\n");
  std::printf("# prefixes=%zu clients=%zu trace_events=%zu\n\n",
              cfg.prefixes, topology.clients.size(), trace.events().size());

  struct Result {
    double tx_per_rr_sec = 0;
    double bytes_per_rr_sec = 0;
    double wire_bytes_per_rr_sec = 0;
    double routes_per_update = 0;
    double generated_per_rr = 0;
    double peers_per_rr = 0;
    double gen_clients = 0;
    double gen_rrs = 0;
  };
  bench::MetricsSink sink{"t42_transmitted_updates", cfg.metrics_out};
  const auto run = [&](ibgp::IbgpMode mode) -> Result {
    auto options = bench::paper_options(mode, 27, cfg.seed);
    // §4: the paper's feed ran up to 20x realtime with <3% change in
    // update counts, so MRAI pacing was not the bottleneck there; what
    // separates the schemes is input-batch coalescing (ARRs absorb a
    // routing event's client updates in one processing pass) versus
    // TBRR's staggered inter-TRR races. Model that regime directly.
    options.mrai = 0;
    options.proc_delay = sim::msec(100);
    options.latency_jitter = sim::msec(150);
    auto bed =
        std::make_unique<harness::Testbed>(topology, options, prefixes);
    trace::RouteRegenerator regen{bed->scheduler(), workload,
                                  bed->inject_fn()};
    regen.load_snapshot(0, sim::sec(30));
    bed->run_to_quiescence(500'000'000);
    bed->reset_counters();
    regen.play(trace, bed->scheduler().now());
    bed->run_to_quiescence(500'000'000);

    Result r;
    std::uint64_t routes = 0, updates = 0;
    for (const auto id : bed->rr_ids()) {
      const auto c = bed->delta_counters(id);
      updates += c.updates_transmitted;
      routes += c.routes_transmitted;
    }
    const auto rr = bed->rr_counters();
    r.tx_per_rr_sec = rr.avg_transmitted() / cfg.trace_seconds;
    r.bytes_per_rr_sec = rr.avg_bytes() / cfg.trace_seconds;
    r.wire_bytes_per_rr_sec = rr.avg_wire_bytes() / cfg.trace_seconds;
    r.routes_per_update =
        updates ? static_cast<double>(routes) / updates : 0;
    r.generated_per_rr = rr.avg_generated();
    double peers = 0;
    for (const auto id : bed->rr_ids()) {
      peers += static_cast<double>(bed->speaker(id).peer_count());
      const auto c = bed->delta_counters(id);
      r.gen_clients += static_cast<double>(c.generated_to_clients);
      r.gen_rrs += static_cast<double>(c.generated_to_rrs);
    }
    r.peers_per_rr = peers / static_cast<double>(bed->rr_ids().size());
    r.gen_clients /= static_cast<double>(bed->rr_ids().size());
    r.gen_rrs /= static_cast<double>(bed->rr_ids().size());
    sink.capture(mode == ibgp::IbgpMode::kAbrr ? "ABRR" : "TBRR", *bed);
    return r;
  };

  const Result abrr = run(ibgp::IbgpMode::kAbrr);
  const Result tbrr = run(ibgp::IbgpMode::kTbrr);

  // tx-bytes is the legacy closed-form estimate; wire-bytes is the
  // measured RFC 4271 length of every transmitted message.
  std::printf("%-8s %16s %15s %15s %14s %13s %10s\n", "scheme",
              "tx-updates/RR/s", "tx-bytes/RR/s", "wire-bytes/RR/s",
              "routes/update", "generated/RR", "peers/RR");
  std::printf("%-8s %16.1f %15.0f %15.0f %14.2f %13.0f %10.0f\n", "ABRR",
              abrr.tx_per_rr_sec, abrr.bytes_per_rr_sec,
              abrr.wire_bytes_per_rr_sec, abrr.routes_per_update,
              abrr.generated_per_rr, abrr.peers_per_rr);
  std::printf("%-8s %16.1f %15.0f %15.0f %14.2f %13.0f %10.0f\n", "TBRR",
              tbrr.tx_per_rr_sec, tbrr.bytes_per_rr_sec,
              tbrr.wire_bytes_per_rr_sec, tbrr.routes_per_update,
              tbrr.generated_per_rr, tbrr.peers_per_rr);
  std::printf("\n# measured at this scale (%zu clients):\n",
              topology.clients.size());
  std::printf("#   TRR/ARR transmitted-updates ratio: %.2fx (paper ~2.5x)\n",
              tbrr.tx_per_rr_sec / abrr.tx_per_rr_sec);
  std::printf("#   ARR/TRR transmitted-bytes ratio:  %.2fx (paper ~4x)\n",
              abrr.bytes_per_rr_sec / tbrr.bytes_per_rr_sec);
  std::printf("#   ARR/TRR wire-bytes ratio:         %.2fx (measured)\n",
              abrr.wire_bytes_per_rr_sec / tbrr.wire_bytes_per_rr_sec);
  std::printf("#   ABRR routes per update: %.1f (paper ~10.2)\n",
              abrr.routes_per_update);

  // The paper computed transmissions "that would have been required to
  // send updates to all clients" of the FULL >1000-router AS. Project
  // our measured per-group generation onto that geometry: 27 clusters
  // of ~37 clients (TRR also meshes with 53 TRRs), ARRs peering with
  // all 1000 clients plus 52 fellow ARRs.
  const double kFullClients = 1000;
  const double kPerCluster = kFullClients / 27.0;
  const double arr_full =
      abrr.gen_clients * (kFullClients + 52.0);
  const double trr_full =
      tbrr.gen_clients * kPerCluster + tbrr.gen_rrs * 53.0;
  std::printf("#\n# projected onto the paper's full 1000-router AS:\n");
  std::printf("#   TRR/ARR transmitted-updates ratio: %.2fx\n",
              trr_full / arr_full);
  std::printf("# The transmission ratio is geometry-dependent: it grows\n");
  std::printf("# with the TRR generation multiplicity produced by inter-\n");
  std::printf("# TRR races, which scales with real trace burstiness.\n");
  return 0;
}
