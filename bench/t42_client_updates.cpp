// §4.2 client-updates experiment: updates received by CLIENTS under
// ABRR vs TBRR over the same update replay. The paper's surprising
// finding: ABRR clients receive ~30% FEWER updates, because TBRR race
// conditions (the same routing event processed by different TRRs at
// different times) make a TRR re-advertise successively better routes,
// while an ARR has usually collected the event's client updates by the
// time it runs its decision and sends one combined update.
#include <cstdio>
#include <memory>

#include "common.h"

int main(int argc, char** argv) {
  using namespace abrr;
  const auto cfg = bench::ExperimentConfig::from_args(argc, argv, "t42_client_updates");
  sim::Rng rng{cfg.seed};
  const auto topology = bench::make_paper_topology(cfg, rng);
  const auto workload = bench::make_paper_workload(cfg, topology, rng);
  const auto prefixes = workload.prefixes();

  trace::TraceParams tparams;
  tparams.duration = sim::sec_f(cfg.trace_seconds);
  tparams.events_per_second = cfg.trace_events_per_second;
  // Routing events with AS-wide footprint (a peer AS's paths shifting
  // at all its peering points at once) are the ones that expose TBRR's
  // race conditions: every cluster's best changes and each TRR hears
  // the consequences from many other TRRs at staggered times.
  tparams.single_point_fraction = 0.4;
  sim::Rng trace_rng{cfg.seed + 1};
  const auto trace =
      trace::UpdateTrace::generate(tparams, workload, trace_rng);

  std::printf("# §4.2: updates received by clients, ABRR vs TBRR\n");
  std::printf("# prefixes=%zu clients=%zu trace_events=%zu\n\n",
              cfg.prefixes, topology.clients.size(), trace.events().size());

  bench::MetricsSink sink{"t42_client_updates", cfg.metrics_out};
  const auto run = [&](ibgp::IbgpMode mode, std::size_t aps) -> double {
    auto options = bench::paper_options(mode, aps, cfg.seed);
    // §4.2's regime: an RR's input batch window exceeds the spread of
    // an event's DIRECT client updates (one latency hop), so an ARR
    // coalesces them into one combined update; updates relayed through
    // other TRRs arrive staggered by a further hop and separate
    // processing phases, so a TRR re-advertises several times.
    options.mrai = 0;
    options.proc_delay = sim::msec(400);
    options.latency_jitter = sim::msec(150);
    auto bed =
        std::make_unique<harness::Testbed>(topology, options, prefixes);
    trace::RouteRegenerator regen{bed->scheduler(), workload,
                                  bed->inject_fn()};
    regen.load_snapshot(0, sim::sec(30));
    bed->run_to_quiescence(500'000'000);
    bed->reset_counters();
    regen.play(trace, bed->scheduler().now());
    bed->run_to_quiescence(500'000'000);
    sink.capture(mode == ibgp::IbgpMode::kAbrr ? "ABRR" : "TBRR", *bed);
    return bed->client_counters().avg_received();
  };

  const double abrr = run(ibgp::IbgpMode::kAbrr, cfg.pops);
  const double tbrr = run(ibgp::IbgpMode::kTbrr, cfg.pops);

  std::printf("%-8s %22s %16s\n", "scheme", "updates recvd/client",
              "per trace event");
  const double n_events = static_cast<double>(trace.events().size());
  std::printf("%-8s %22.1f %16.2f\n", "ABRR", abrr, abrr / n_events);
  std::printf("%-8s %22.1f %16.2f\n", "TBRR", tbrr, tbrr / n_events);
  if (tbrr > abrr) {
    std::printf("\n# ABRR clients receive %.1f%% fewer updates "
                "(paper: ~30%%)\n",
                100.0 * (tbrr - abrr) / tbrr);
  } else {
    std::printf(
        "\n# At this scale ABRR clients receive MORE updates "
        "(%.2f vs %.2f per event):\n"
        "# an ARR notifies clients (x2 redundant ARRs) whenever ANY best\n"
        "# AS-level route changes, while a TRR only speaks when its own\n"
        "# best flips, which our hot-potato geometry localises. The\n"
        "# paper's opposite result (~30%% fewer for ABRR) is driven by\n"
        "# TBRR race multiplicity in the real trace - TRRs re-advertising\n"
        "# a series of incrementally better routes per event, staggered\n"
        "# by seconds in the original feed - which exceeds what this\n"
        "# synthetic event model produces. The qualitative mechanism\n"
        "# (ARRs coalesce an event's direct client updates into one\n"
        "# combined update) is reproduced; see EXPERIMENTS.md.\n",
        abrr / n_events, tbrr / n_events);
  }
  return 0;
}
