// Ablation: loop-prevention machinery (§2.3.2).
//
// TBRR uses the RFC 4456 ORIGINATOR_ID + CLUSTER_LIST, whose wire cost
// grows with every reflection hop. ABRR needs only a single "reflected"
// bit (an extended community) because an ARR must never re-reflect:
// the paper calls Cluster List / Originator ID "overkill" for ABRR.
// This bench measures (a) per-route attribute overhead on reflected
// routes in both schemes and (b) that the single bit actually breaks
// the §2.3.2 misconfiguration loop (three routers all believing they
// are the ARR).
#include <cstdio>
#include <memory>

#include "common.h"

int main(int argc, char** argv) {
  using namespace abrr;
  auto cfg = bench::ExperimentConfig::from_args(argc, argv, "ablation_loop_prevention");
  if (cfg.prefixes == 4000) cfg.prefixes = 800;
  sim::Rng rng{cfg.seed};
  const auto topology = bench::make_paper_topology(cfg, rng);
  const auto workload = bench::make_paper_workload(cfg, topology, rng);
  const auto prefixes = workload.prefixes();

  std::printf("# Ablation: loop-prevention attribute overhead\n\n");

  struct Stats {
    double bytes = 0;
    double routes = 0;
    double cluster_hops = 0;
    double with_originator = 0;
    double with_bit = 0;
  };
  bench::MetricsSink sink{"ablation_loop_prevention", cfg.metrics_out};
  const auto measure = [&](ibgp::IbgpMode mode) {
    auto options = bench::paper_options(mode, 8, cfg.seed);
    auto bed =
        std::make_unique<harness::Testbed>(topology, options, prefixes);
    bench::load_snapshot(*bed, workload, 20.0);
    Stats s;
    for (const auto id : bed->client_ids()) {
      bed->speaker(id).adj_rib_in().for_each([&](const bgp::Route& r) {
        if (r.via != bgp::LearnedVia::kIbgp) return;
        s.routes += 1;
        // Attribute bytes attributable to loop prevention.
        s.cluster_hops += static_cast<double>(r.attrs->cluster_list.size());
        s.with_originator += r.attrs->originator_id ? 1 : 0;
        s.with_bit +=
            r.attrs->has_ext_community(bgp::kAbrrReflectedCommunity) ? 1 : 0;
        s.bytes += 4.0 * static_cast<double>(r.attrs->cluster_list.size()) +
                   (r.attrs->originator_id ? 4.0 : 0.0) +
                   (r.attrs->has_ext_community(bgp::kAbrrReflectedCommunity)
                        ? 8.0
                        : 0.0);
      });
    }
    sink.capture(mode == ibgp::IbgpMode::kAbrr ? "ABRR" : "TBRR", *bed);
    return s;
  };

  const Stats tbrr = measure(ibgp::IbgpMode::kTbrr);
  const Stats abrr = measure(ibgp::IbgpMode::kAbrr);

  std::printf("%-8s %16s %16s %16s %14s\n", "scheme", "loop-prev B/route",
              "cluster hops/rt", "originator %", "refl-bit %");
  std::printf("%-8s %16.2f %16.2f %16.1f %14.1f\n", "TBRR",
              tbrr.bytes / tbrr.routes, tbrr.cluster_hops / tbrr.routes,
              100.0 * tbrr.with_originator / tbrr.routes,
              100.0 * tbrr.with_bit / tbrr.routes);
  std::printf("%-8s %16.2f %16.2f %16.1f %14.1f\n", "ABRR",
              abrr.bytes / abrr.routes, abrr.cluster_hops / abrr.routes,
              100.0 * abrr.with_originator / abrr.routes,
              100.0 * abrr.with_bit / abrr.routes);

  std::printf("\n# ABRR pays a flat 8-byte extended community (+4B\n");
  std::printf("# originator, kept for diagnostics) per reflected route;\n");
  std::printf("# TBRR pays 4 bytes per reflection hop plus originator,\n");
  std::printf("# and the cluster list grows with the topology depth.\n");
  std::printf("# The bit is sufficient because ARRs never re-reflect;\n");
  std::printf("# bench/anomaly_gadgets demonstrates it breaking the\n");
  std::printf("# three-way misconfiguration loop of §2.3.2.\n");
  return 0;
}
