// Fault resilience: ABRR vs TBRR under router crashes (§2.3.1).
//
// Two scenarios per architecture, both with hold-timer failure
// detection armed (hold time 3s):
//   rr_crash     — one reflector (ARR / TRR) dies for 10s and restarts
//   border_crash — one border router dies for 10s, restarts with state
//                  loss and has its eBGP feeds re-synced
// Reported per run: how long detection took, how long any surviving
// client was missing a route it had (blackout), how long after the
// restart the whole bed took to return to its exact pre-fault RIB state
// (recovery), the update churn the episode caused, and whether the
// recovered bed is full-mesh-equivalent.
#include <cinttypes>
#include <cstdio>
#include <string>
#include <vector>

#include "common.h"
#include "fault/injector.h"
#include "fault/recovery.h"
#include "fault/schedule.h"
#include "verify/equivalence.h"

namespace abrr::bench {
namespace {

constexpr sim::Time kHold = sim::sec(3);
constexpr sim::Time kOutage = sim::sec(10);
constexpr sim::Time kStep = sim::msec(100);
constexpr sim::Time kFingerprintStep = sim::msec(500);

struct CaseResult {
  std::string mode;
  std::string scenario;
  bgp::RouterId victim = 0;
  double detection_ms = -1;  // crash -> first hold expiration
  double blackout_ms = 0;    // surviving client missing a route
  double recovery_ms = -1;   // restart -> pre-fault RIB fingerprint
  std::uint64_t churn_updates = 0;  // updates received, fault episode
  std::uint64_t churn_routes = 0;
  std::uint64_t dropped_messages = 0;
  std::uint64_t fingerprint = 0;
  bool fingerprint_restored = false;
  bool fullmesh_equivalent = false;
};

std::uint64_t total_hold_expirations(harness::Testbed& bed) {
  std::uint64_t n = 0;
  for (const bgp::RouterId id : bed.all_ids()) {
    n += bed.speaker(id).counters().hold_expirations;
  }
  return n;
}

CaseResult run_case(ibgp::IbgpMode mode, const std::string& scenario,
                    const ExperimentConfig& cfg,
                    const topo::Topology& topology,
                    const trace::Workload& workload,
                    const std::vector<bgp::Ipv4Prefix>& prefixes,
                    harness::Testbed& baseline, MetricsSink& sink) {
  CaseResult r;
  r.mode = mode == ibgp::IbgpMode::kAbrr ? "abrr" : "tbrr";
  r.scenario = scenario;

  harness::TestbedOptions o = paper_options(mode, /*num_aps=*/8, cfg.seed);
  o.hold_time = kHold;
  harness::Testbed bed{topology, o, prefixes};
  trace::RouteRegenerator regen{bed.scheduler(), workload, bed.inject_fn()};
  regen.load_snapshot(0, sim::sec(20));
  // Hold-timer beds never quiesce (keepalives tick forever): run to a
  // generous convergence deadline instead.
  bed.run_until(sim::sec(60));

  const std::uint64_t fp0 = fault::rib_fingerprint(bed);
  std::vector<std::pair<bgp::RouterId, std::size_t>> steady_sizes;
  for (const bgp::RouterId id : bed.client_ids()) {
    steady_sizes.emplace_back(id, bed.speaker(id).loc_rib().size());
  }
  bed.reset_counters();
  const std::uint64_t dropped0 = bed.network().total_dropped();
  const std::uint64_t expirations0 = total_hold_expirations(bed);

  r.victim = scenario == "rr_crash" ? bed.rr_ids().front()
                                    : bed.client_ids().front();
  const sim::Time t_crash = bed.scheduler().now() + sim::sec(1);
  const sim::Time t_restart = t_crash + kOutage;

  fault::FaultEvent ev;
  ev.kind = fault::FaultKind::kRouterCrash;
  ev.at = t_crash;
  ev.duration = kOutage;
  ev.a = r.victim;
  fault::FaultSchedule schedule;
  schedule.add(ev);
  fault::FaultInjector injector{bed, schedule};
  injector.set_resync(fault::make_workload_resync(bed, regen));
  injector.arm();

  const sim::Time deadline = t_restart + sim::sec(180);
  sim::Time next_fingerprint = t_restart;
  sim::Time recovered_at = -1;
  sim::Time detected_at = -1;
  while (bed.scheduler().now() < deadline) {
    bed.run_until(bed.scheduler().now() + kStep);
    const sim::Time now = bed.scheduler().now();
    if (detected_at < 0 && total_hold_expirations(bed) > expirations0) {
      detected_at = now;
    }
    // Blackout: any surviving client below its steady-state route count.
    bool missing = false;
    for (const auto& [id, want] : steady_sizes) {
      if (id == r.victim) continue;
      if (bed.speaker(id).loc_rib().size() < want) {
        missing = true;
        break;
      }
    }
    if (missing) r.blackout_ms += sim::to_msec(kStep);
    if (now >= next_fingerprint) {
      next_fingerprint = now + kFingerprintStep;
      if (fault::rib_fingerprint(bed) == fp0) {
        recovered_at = now;
        break;
      }
    }
  }

  if (detected_at >= 0) r.detection_ms = sim::to_msec(detected_at - t_crash);
  if (recovered_at >= 0) {
    r.recovery_ms = sim::to_msec(recovered_at - t_restart);
    r.fingerprint_restored = true;
  }
  for (const bgp::RouterId id : bed.all_ids()) {
    const auto c = bed.delta_counters(id);
    r.churn_updates += c.updates_received;
    r.churn_routes += c.routes_received;
  }
  r.dropped_messages = bed.network().total_dropped() - dropped0;
  r.fingerprint = fault::rib_fingerprint(bed);
  r.fullmesh_equivalent =
      verify::compare_loc_ribs(bed, baseline, prefixes).equivalent();
  sink.capture(r.mode + "/" + r.scenario, bed);
  return r;
}

void print_row(const CaseResult& r) {
  std::printf(
      "%-5s %-13s victim=%-4u detect=%8.1fms blackout=%8.1fms "
      "recover=%9.1fms churn=%8" PRIu64 " dropped=%6" PRIu64
      " restored=%d fm_equiv=%d\n",
      r.mode.c_str(), r.scenario.c_str(), r.victim, r.detection_ms,
      r.blackout_ms, r.recovery_ms, r.churn_updates, r.dropped_messages,
      r.fingerprint_restored ? 1 : 0, r.fullmesh_equivalent ? 1 : 0);
}

void write_json(const std::string& path, const ExperimentConfig& cfg,
                const std::vector<CaseResult>& results) {
  FILE* f = std::fopen(path.c_str(), "w");
  if (!f) {
    std::fprintf(stderr, "error: cannot write %s\n", path.c_str());
    std::exit(1);
  }
  std::fprintf(f, "{\n  \"bench\": \"fault_resilience\",\n");
  std::fprintf(f,
               "  \"config\": {\"prefixes\": %zu, \"pops\": %u, "
               "\"seed\": %" PRIu64 ", \"hold_time_ms\": %.0f, "
               "\"outage_ms\": %.0f},\n",
               cfg.prefixes, cfg.pops, cfg.seed, sim::to_msec(kHold),
               sim::to_msec(kOutage));
  std::fprintf(f, "  \"results\": [\n");
  for (std::size_t i = 0; i < results.size(); ++i) {
    const CaseResult& r = results[i];
    std::fprintf(
        f,
        "    {\"mode\": \"%s\", \"scenario\": \"%s\", \"victim\": %u,\n"
        "     \"detection_ms\": %.1f, \"blackout_ms\": %.1f, "
        "\"recovery_ms\": %.1f,\n"
        "     \"churn_updates\": %" PRIu64 ", \"churn_routes\": %" PRIu64
        ", \"dropped_messages\": %" PRIu64 ",\n"
        "     \"fingerprint\": \"%016" PRIx64
        "\", \"fingerprint_restored\": %s, \"fullmesh_equivalent\": %s}%s\n",
        r.mode.c_str(), r.scenario.c_str(), r.victim, r.detection_ms,
        r.blackout_ms, r.recovery_ms, r.churn_updates, r.churn_routes,
        r.dropped_messages, r.fingerprint,
        r.fingerprint_restored ? "true" : "false",
        r.fullmesh_equivalent ? "true" : "false",
        i + 1 < results.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  std::printf("wrote %s\n", path.c_str());
}

}  // namespace
}  // namespace abrr::bench

int main(int argc, char** argv) {
  using namespace abrr;
  using namespace abrr::bench;

  ExperimentConfig cfg = ExperimentConfig::from_args(argc, argv);
  std::string json_out;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--json_out=", 0) == 0) {
      json_out = arg.substr(std::string{"--json_out="}.size());
    }
  }

  sim::Rng rng{cfg.seed};
  const auto topology = make_paper_topology(cfg, rng);
  const auto workload = make_paper_workload(cfg, topology, rng);
  const auto prefixes = workload.prefixes();

  // Untouched full-mesh reference for the final equivalence column.
  harness::TestbedOptions base_opts =
      paper_options(ibgp::IbgpMode::kFullMesh, 8, cfg.seed);
  harness::Testbed baseline{topology, base_opts, prefixes};
  if (!load_snapshot(baseline, workload, 20.0)) {
    std::fprintf(stderr, "error: baseline did not converge\n");
    return 1;
  }

  std::printf("fault_resilience: %zu prefixes, hold=%.0fms, outage=%.0fms\n",
              cfg.prefixes, sim::to_msec(kHold), sim::to_msec(kOutage));
  std::vector<CaseResult> results;
  MetricsSink sink{"fault_resilience", cfg.metrics_out};
  for (const auto mode : {ibgp::IbgpMode::kAbrr, ibgp::IbgpMode::kTbrr}) {
    for (const std::string scenario : {"rr_crash", "border_crash"}) {
      results.push_back(run_case(mode, scenario, cfg, topology, workload,
                                 prefixes, baseline, sink));
      print_row(results.back());
    }
  }
  if (!json_out.empty()) write_json(json_out, cfg, results);
  return 0;
}
