// Fault resilience: ABRR vs TBRR under router crashes (§2.3.1).
//
// Two scenarios per architecture, both with hold-timer failure
// detection armed (hold time 3s):
//   rr_crash     — one reflector (ARR / TRR) dies for 10s and restarts
//   border_crash — one border router dies for 10s, restarts with state
//                  loss and has its eBGP feeds re-synced
// Reported per run: how long detection took, how long any surviving
// client was missing a route it had (blackout), how long after the
// restart the whole bed took to return to its exact pre-fault RIB state
// (recovery), the update churn the episode caused, and whether the
// recovered bed is full-mesh-equivalent.
//
// Each (mode, scenario) cell is one ScenarioSpec with fault.enabled;
// the trial executor (runner/trial.cpp) runs the crash episode and the
// in-trial full-mesh equivalence check. --jobs=N runs cells
// concurrently with identical output.
#include <cinttypes>
#include <cstdio>
#include <string>
#include <vector>

#include "common.h"

namespace abrr::bench {
namespace {

constexpr sim::Time kHold = sim::sec(3);
constexpr sim::Time kOutage = sim::sec(10);

void print_row(const runner::TrialResult& r) {
  std::printf(
      "%-22s victim=%-4u detect=%8.1fms blackout=%8.1fms "
      "recover=%9.1fms churn=%8" PRIu64 " dropped=%6" PRIu64
      " restored=%d fm_equiv=%d\n",
      r.scenario.c_str(), r.victim, r.detection_ms, r.blackout_ms,
      r.recovery_ms, r.churn_updates, r.dropped_messages,
      r.fingerprint_restored ? 1 : 0, r.fullmesh_equivalent ? 1 : 0);
}

void write_json(const std::string& path, const ExperimentConfig& cfg,
                const std::vector<runner::TrialResult>& results) {
  FILE* f = std::fopen(path.c_str(), "w");
  if (!f) {
    std::fprintf(stderr, "error: cannot write %s\n", path.c_str());
    std::exit(1);
  }
  std::fprintf(f, "{\n  \"bench\": \"fault_resilience\",\n");
  std::fprintf(f,
               "  \"config\": {\"prefixes\": %zu, \"pops\": %u, "
               "\"seed\": %" PRIu64 ", \"hold_time_ms\": %.0f, "
               "\"outage_ms\": %.0f},\n",
               cfg.prefixes, cfg.pops, cfg.seed, sim::to_msec(kHold),
               sim::to_msec(kOutage));
  std::fprintf(f, "  \"results\": [\n");
  for (std::size_t i = 0; i < results.size(); ++i) {
    const runner::TrialResult& r = results[i];
    // Spec names are "mode/scenario"; keep the historical JSON schema
    // (bare scenario in its own field).
    const std::size_t slash = r.scenario.find('/');
    const std::string scenario =
        slash == std::string::npos ? r.scenario : r.scenario.substr(slash + 1);
    std::fprintf(
        f,
        "    {\"mode\": \"%s\", \"scenario\": \"%s\", \"victim\": %u,\n"
        "     \"detection_ms\": %.1f, \"blackout_ms\": %.1f, "
        "\"recovery_ms\": %.1f,\n"
        "     \"churn_updates\": %" PRIu64 ", \"churn_routes\": %" PRIu64
        ", \"dropped_messages\": %" PRIu64 ",\n"
        "     \"fingerprint\": \"%016" PRIx64
        "\", \"fingerprint_restored\": %s, \"fullmesh_equivalent\": %s}%s\n",
        r.mode.c_str(), scenario.c_str(), r.victim, r.detection_ms,
        r.blackout_ms, r.recovery_ms, r.churn_updates, r.churn_routes,
        r.dropped_messages, r.fingerprint,
        r.fingerprint_restored ? "true" : "false",
        r.fullmesh_equivalent ? "true" : "false",
        i + 1 < results.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  std::printf("wrote %s\n", path.c_str());
}

}  // namespace
}  // namespace abrr::bench

int main(int argc, char** argv) {
  using namespace abrr;
  using namespace abrr::bench;

  ExperimentConfig cfg;
  std::string json_out;
  runner::ArgParser parser{"fault_resilience"};
  cfg.register_flags(parser);
  parser.add("json_out", "write the case table as JSON here", &json_out);
  parser.parse(argc, argv);
  cfg.finish();

  std::vector<runner::ScenarioSpec> specs;
  for (const auto mode : {ibgp::IbgpMode::kAbrr, ibgp::IbgpMode::kTbrr}) {
    for (const auto scenario :
         {harness::FaultOptions::Scenario::kRrCrash,
          harness::FaultOptions::Scenario::kBorderCrash}) {
      auto spec = paper_spec(mode, /*num_aps=*/8, cfg);
      spec.name = std::string{runner::mode_name(mode)} + "/" +
                  (scenario == harness::FaultOptions::Scenario::kRrCrash
                       ? "rr_crash"
                       : "border_crash");
      spec.workload.snapshot_seconds = 20.0;
      spec.fault.enabled = true;
      spec.fault.scenario = scenario;
      spec.fault.hold_time = kHold;
      spec.fault.outage = kOutage;
      spec.fault.verify_fullmesh = true;
      specs.push_back(std::move(spec));
    }
  }

  std::printf("fault_resilience: %zu prefixes, hold=%.0fms, outage=%.0fms\n",
              cfg.prefixes, sim::to_msec(kHold), sim::to_msec(kOutage));
  runner::ExperimentRunner run{{.jobs = cfg.jobs}};
  const auto results = run.run(specs);

  MetricsSink sink{"fault_resilience", cfg.metrics_out};
  for (const runner::TrialResult& r : results) {
    if (!r.error.empty()) {
      std::fprintf(stderr, "error: %s: %s\n", r.scenario.c_str(),
                   r.error.c_str());
      return 1;
    }
    print_row(r);
    sink.capture(r.scenario, r.metrics_json);
  }
  if (!json_out.empty()) write_json(json_out, cfg, results);
  return 0;
}
