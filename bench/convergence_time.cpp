// §3.5: iBGP convergence time. ABRR shortens the reflected path from
// three iBGP hops (client -> TRR -> TRR -> client) to two
// (client -> ARR -> client), so when the 5-second MRAI timer is armed
// ("warm"), each removed hop removes up to one MRAI round.
//
// Method: after the testbed converges, a priming change arms the MRAI
// timers on the propagation path; 200ms later the measured change is
// injected at one border router, and we record the simulated time until
// every client has switched to the new egress.
#include <algorithm>
#include <cstdio>
#include <memory>
#include <vector>

#include "common.h"

namespace {

using namespace abrr;

struct Sample {
  double cold_ms;
  double warm_ms;
};

double percentile(std::vector<double> v, double p) {
  std::sort(v.begin(), v.end());
  if (v.empty()) return 0;
  const auto idx = static_cast<std::size_t>(p * (v.size() - 1));
  return v[idx];
}

}  // namespace

int main(int argc, char** argv) {
  auto cfg = bench::ExperimentConfig::from_args(argc, argv, "convergence_time");
  cfg.pops = 6;
  if (cfg.prefixes == 4000) cfg.prefixes = 400;
  sim::Rng rng{cfg.seed};
  const auto topology = bench::make_paper_topology(cfg, rng);
  const auto workload = bench::make_paper_workload(cfg, topology, rng);
  const auto prefixes = workload.prefixes();

  std::printf("# §3.5: event-to-convergence time (MRAI = 5s on iBGP)\n");
  std::printf("# prefixes=%zu clients=%zu events=20 per scheme\n\n",
              cfg.prefixes, topology.clients.size());
  std::printf("%-10s %12s %12s %12s %12s\n", "scheme", "cold-p50/ms",
              "cold-p95/ms", "warm-p50/ms", "warm-p95/ms");

  bench::MetricsSink sink{"convergence_time", cfg.metrics_out};
  const auto measure = [&](ibgp::IbgpMode mode, const char* label) {
    auto options = bench::paper_options(mode, 8, cfg.seed);
    auto bed =
        std::make_unique<harness::Testbed>(topology, options, prefixes);
    if (!bench::load_snapshot(*bed, workload, 20.0)) {
      std::printf("%-10s DID NOT CONVERGE\n", label);
      return;
    }

    // An unbeatable route (high local-pref) injected at `origin` must
    // reach every client; convergence = all clients hold exactly it.
    const auto all_converged = [&](const bgp::Ipv4Prefix& p,
                                   bgp::RouterId egress,
                                   std::uint32_t local_pref) {
      for (const auto id : bed->client_ids()) {
        const auto* best = bed->speaker(id).loc_rib().best(p);
        if (best == nullptr || best->egress() != egress ||
            best->attrs->local_pref != local_pref) {
          return false;
        }
      }
      return true;
    };

    sim::Rng pick{cfg.seed + 7};

    const auto measure_one = [&](int event) {
      const auto& entry =
          workload.table()[pick.index(workload.table().size())];
      const auto origin_id =
          bed->client_ids()[pick.index(bed->client_ids().size())];
      auto& origin = bed->speaker(origin_id);
      const sim::Time start = bed->scheduler().now();
      origin.inject_ebgp(0x9000000 + event,
                         bgp::RouteBuilder{entry.prefix}
                             .local_pref(200)
                             .as_path({64999})
                             .build());
      sim::Time end = start;
      while (!all_converged(entry.prefix, origin_id, 200)) {
        if (!bed->scheduler().has_pending()) break;
        bed->run_until(bed->scheduler().now() + sim::msec(20));
        end = bed->scheduler().now();
        if (end - start > sim::sec(60)) break;  // stuck guard
      }
      const double ms = sim::to_seconds(end - start) * 1000.0;
      // Clean up: withdraw the synthetic route again.
      origin.withdraw_ebgp(0x9000000 + event, entry.prefix);
      bed->run_until(bed->scheduler().now() + sim::sec(12));
      return ms;
    };

    // Cold: the network is quiet, every MRAI timer idle -- updates fly
    // through with only propagation + processing delay per hop.
    std::vector<double> cold, warm;
    for (int event = 0; event < 10; ++event) {
      cold.push_back(measure_one(event));
      bed->run_to_quiescence(500'000'000);
    }

    // Warm: continuous background churn (flapping synthetic prefixes at
    // random border routers) keeps session MRAI timers armed at
    // uncorrelated phases -- the busy-network regime -- so each
    // reflected hop waits out a residual MRAI interval.
    constexpr std::size_t kChurnSlots = 64;
    std::vector<bgp::RouterId> churn_origin(kChurnSlots, bgp::kNoRouter);
    std::vector<bgp::Ipv4Prefix> churn_prefixes;
    for (std::size_t s = 0; s < kChurnSlots; ++s) {
      // Spread across the whole address space so every AP's sessions
      // carry churn.
      churn_prefixes.push_back(bgp::Ipv4Prefix{
          static_cast<bgp::Ipv4Addr>(s << 26) | 0x00010000u, 24});
    }
    bool churn_on = true;
    std::function<void()> churn = [&] {
      if (!churn_on) return;
      const std::size_t s = pick.index(kChurnSlots);
      if (churn_origin[s] == bgp::kNoRouter) {
        const auto id =
            bed->client_ids()[pick.index(bed->client_ids().size())];
        churn_origin[s] = id;
        bed->speaker(id).inject_ebgp(
            0x91000000 + static_cast<bgp::RouterId>(s),
            bgp::RouteBuilder{churn_prefixes[s]}
                .local_pref(80)
                .as_path({64990, 64991})
                .build());
      } else {
        bed->speaker(churn_origin[s])
            .withdraw_ebgp(0x91000000 + static_cast<bgp::RouterId>(s),
                           churn_prefixes[s]);
        churn_origin[s] = bgp::kNoRouter;
      }
      bed->scheduler().schedule_after(sim::msec(60), churn);
    };
    bed->scheduler().schedule_after(0, churn);
    bed->run_until(bed->scheduler().now() + sim::sec(15));  // randomize phases
    for (int event = 10; event < 20; ++event) {
      warm.push_back(measure_one(event));
    }
    churn_on = false;
    bed->run_to_quiescence(500'000'000);
    sink.capture(label, *bed);
    std::printf("%-10s %12.0f %12.0f %12.0f %12.0f\n", label,
                percentile(cold, 0.5), percentile(cold, 0.95),
                percentile(warm, 0.5), percentile(warm, 0.95));
  };

  measure(ibgp::IbgpMode::kFullMesh, "full-mesh");
  measure(ibgp::IbgpMode::kAbrr, "ABRR");
  measure(ibgp::IbgpMode::kTbrr, "TBRR");
  std::printf("\n# expectation: warm TBRR pays up to one extra MRAI round\n");
  std::printf("# (3 iBGP hops vs ABRR's 2); cold paths differ only by\n");
  std::printf("# per-hop processing and propagation delay.\n");
  return 0;
}
