// TCP front-end benchmark: a RouteService run to its churn horizon
// (stable snapshot), then the ABRR-Q serving path swept over
// --connections x --batches cells. Each cell fans out N client
// connections that pipeline LOOKUP_BATCH frames against the loopback
// server and measure per-batch RTT; an in-process Reader::lookup_batch
// baseline at the same batch sizes anchors the protocol overhead
// (slowdown_vs_inprocess in the report). Emits BENCH_frontend.json.
//
// One-CPU caveat (this host): clients and the server loop time-slice
// one core, so cells with more connections measure scheduling, not
// parallel service — judge the transport by per-batch RTT and by
// slowdown_vs_inprocess at --connections=1 (see EXPERIMENTS.md).
#include <sys/resource.h>

#include <chrono>
#include <cstdio>
#include <deque>
#include <string>
#include <vector>

#include "common.h"
#include "frontend/client.h"
#include "frontend/server.h"
#include "serve/service.h"

namespace abrr::bench {
namespace {

std::uint64_t now_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

struct FrontendBenchConfig {
  ExperimentConfig base;
  ServingBenchParams serving;
  // Defaults chosen on this 1-CPU host: batch sizes big enough that the
  // per-frame syscall pair amortizes (smaller batches are RTT-bound and
  // drift past 10x of the in-process rate), pipeline depth 4 so the
  // server coalesces frames per poll wakeup.
  std::vector<std::uint64_t> connections{1, 2};
  std::vector<std::uint64_t> batches{256, 2048};
  unsigned long pipeline = 4;
  unsigned long batches_per_conn = 1000;
  std::string json_out = "BENCH_frontend.json";
};

FrontendBenchConfig parse_args(int argc, char** argv) {
  FrontendBenchConfig cfg;
  // Same mid-size default bed as serve_bench so the two reports line up.
  cfg.base.prefixes = 2000;
  cfg.base.pops = 6;
  cfg.base.clients_per_pop = 4;
  cfg.base.peer_ases = 8;
  cfg.base.points_per_as = 3;
  // The sweep runs against the horizon snapshot, so a short churn plan
  // is enough — it only has to exercise a few publishes first.
  cfg.serving.churn_seconds = 2.0;
  cfg.serving.chaos_events = 2;
  runner::ArgParser parser{"frontend_bench"};
  cfg.base.register_flags(parser);
  cfg.serving.register_flags(parser);
  parser.add("connections", "comma-separated client connection counts",
             &cfg.connections);
  parser.add("batches", "comma-separated lookups-per-frame sizes",
             &cfg.batches);
  parser.add("pipeline", "LOOKUP_BATCH frames in flight per connection",
             &cfg.pipeline);
  parser.add("batches-per-conn", "frames each connection sends per cell",
             &cfg.batches_per_conn);
  parser.add("json_out", "write the report here", &cfg.json_out);
  parser.parse(argc, argv);
  cfg.base.finish();
  return cfg;
}

struct BaselineRow {
  std::size_t batch = 0;
  LoadgenResult result;
};

struct CellRow {
  std::size_t connections = 0;
  std::size_t batch = 0;
  LoadgenResult result;
  std::uint64_t wire_bytes_in = 0;   // server-side delta for this cell
  std::uint64_t wire_bytes_out = 0;
  double slowdown_vs_inprocess = 0;  // baseline rate / TCP rate
};

/// In-process ground speed at one batch size: a single reader thread
/// timing lookup_batch, the same loop the TCP cells amortize over the
/// wire.
BaselineRow run_baseline(serve::RouteService& service, std::size_t batch,
                         unsigned long iterations) {
  BaselineRow row;
  row.batch = batch;
  row.result = run_loadgen_threads(1, [&](std::size_t) {
    LoadgenResult res;
    const auto reqs = serving_probe_plan(service, batch, 0x10adu);
    serve::RouteService::Reader reader{service};
    std::vector<serve::LookupResponse> resps(reqs.size());
    for (unsigned long i = 0; i < iterations; ++i) {
      const std::uint64_t t0 = now_ns();
      reader.lookup_batch(reqs, resps);
      res.latency_ns.record(static_cast<double>(now_ns() - t0));
      res.ops += 1;
      res.lookups += reqs.size();
    }
    return res;
  });
  return row;
}

CellRow run_cell(serve::RouteService& service, frontend::Server& server,
                 std::size_t connections, std::size_t batch,
                 const FrontendBenchConfig& cfg) {
  CellRow row;
  row.connections = connections;
  row.batch = batch;
  const frontend::ServerStats before = server.stats();
  row.result = run_loadgen_threads(connections, [&](std::size_t idx) {
    LoadgenResult res;
    const auto reqs = serving_probe_plan(
        service, batch, static_cast<std::uint32_t>(idx) * 7919u + 1);
    frontend::Client client;
    client.connect(server.port(), /*timeout_ms=*/30000);
    std::deque<std::uint64_t> sent_at;  // per in-flight frame, FIFO
    unsigned long sent = 0;
    unsigned long answered = 0;
    while (answered < cfg.batches_per_conn) {
      while (sent < cfg.batches_per_conn && sent_at.size() < cfg.pipeline) {
        sent_at.push_back(now_ns());
        client.send_lookup(reqs);
        ++sent;
      }
      const frontend::Client::Reply reply = client.recv_reply();
      res.latency_ns.record(static_cast<double>(now_ns() - sent_at.front()));
      sent_at.pop_front();
      ++answered;
      res.ops += 1;
      res.lookups += reply.responses.size();
    }
    return res;
  });
  const frontend::ServerStats after = server.stats();
  row.wire_bytes_in = after.bytes_in - before.bytes_in;
  row.wire_bytes_out = after.bytes_out - before.bytes_out;
  return row;
}

void write_json(const FrontendBenchConfig& cfg,
                const serve::ServiceStats& svc,
                const std::vector<BaselineRow>& baselines,
                const std::vector<CellRow>& cells,
                const frontend::Server& server) {
  JsonWriter json{cfg.json_out};
  json.begin_object();
  json.field("bench", "frontend");
  json.begin_object("config");
  json.field("prefixes", cfg.base.prefixes);
  json.field("pops", cfg.base.pops);
  json.field("seed", cfg.base.seed);
  json.field("mode", cfg.base.mode.empty() ? "abrr" : cfg.base.mode);
  json.field("pipeline", static_cast<std::uint64_t>(cfg.pipeline));
  json.field("batches_per_conn",
             static_cast<std::uint64_t>(cfg.batches_per_conn));
  json.field("churn_seconds", cfg.serving.churn_seconds);
  json.end_object();
  json.begin_object("snapshot");
  json.field("version", svc.version);
  json.field_hex("fingerprint", svc.fingerprint);
  json.field("publishes", svc.publishes);
  json.end_object();

  json.begin_array("inprocess_baseline");
  for (const BaselineRow& b : baselines) {
    json.begin_object();
    json.field("batch", b.batch);
    json.field("lookups", b.result.lookups);
    json.field("lookups_per_sec", b.result.lookups_per_sec());
    json.field("batch_p50_ns", b.result.latency_ns.quantile(0.5));
    json.field("batch_p99_ns", b.result.latency_ns.quantile(0.99));
    json.end_object();
  }
  json.end_array();

  json.begin_array("results");
  for (const CellRow& c : cells) {
    json.begin_object();
    json.field("connections", c.connections);
    json.field("batch", c.batch);
    json.field("lookups", c.result.lookups);
    json.field("lookups_per_sec", c.result.lookups_per_sec());
    json.field("rtt_p50_ns", c.result.latency_ns.quantile(0.5));
    json.field("rtt_p99_ns", c.result.latency_ns.quantile(0.99));
    json.field("wall_ms", c.result.wall_ms);
    json.field("wire_bytes_in", c.wire_bytes_in);
    json.field("wire_bytes_out", c.wire_bytes_out);
    json.field("bytes_per_lookup",
               c.result.lookups > 0
                   ? static_cast<double>(c.wire_bytes_in + c.wire_bytes_out) /
                         static_cast<double>(c.result.lookups)
                   : 0.0);
    json.field("slowdown_vs_inprocess", c.slowdown_vs_inprocess);
    json.field("worker_errors", c.result.errors);
    json.end_object();
  }
  json.end_array();

  const frontend::ServerStats st = server.stats();
  const obs::Histogram handle = server.handle_ns_hist();
  json.begin_object("server");
  json.field("accepted", st.accepted);
  json.field("dropped_proto", st.dropped_proto);
  json.field("dropped_slow", st.dropped_slow);
  json.field("frames", st.frames);
  json.field("batches", st.batches);
  json.field("lookups", st.lookups);
  json.field("handle_p50_ns", handle.quantile(0.5));
  json.field("handle_p99_ns", handle.quantile(0.99));
  json.end_object();

  rusage usage{};
  long rss_kb = 0;
  if (getrusage(RUSAGE_SELF, &usage) == 0) rss_kb = usage.ru_maxrss;
  json.field("peak_rss_kb", rss_kb);
  json.end_object();
  json.close();
}

}  // namespace
}  // namespace abrr::bench

int main(int argc, char** argv) {
  using namespace abrr;
  using namespace abrr::bench;

  const FrontendBenchConfig cfg = parse_args(argc, argv);
  const ibgp::IbgpMode mode = cfg.base.mode.empty()
                                  ? ibgp::IbgpMode::kAbrr
                                  : *runner::parse_mode(cfg.base.mode);
  const runner::ScenarioSpec spec =
      serving_spec(mode, cfg.base, cfg.serving, "frontend");

  serve::RouteService service{spec, cfg.base.seed};
  service.start();
  // Sweep against the stable horizon snapshot so every cell (and the
  // in-process baseline) answers from the same RIB.
  while (!service.done()) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  while (!service.horizon_published()) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  const serve::ServiceStats svc = service.stats();
  std::printf("snapshot v%" PRIu64 " fingerprint %016" PRIx64 "\n",
              svc.version, svc.fingerprint);

  std::vector<BaselineRow> baselines;
  for (const std::uint64_t batch : cfg.batches) {
    baselines.push_back(
        run_baseline(service, batch, cfg.batches_per_conn));
    const BaselineRow& b = baselines.back();
    std::printf("in-process batch=%-5zu %12.0f lookups/s  "
                "batch p50=%9.0fns p99=%9.0fns\n",
                b.batch, b.result.lookups_per_sec(),
                b.result.latency_ns.quantile(0.5),
                b.result.latency_ns.quantile(0.99));
  }

  frontend::Server server{service};
  server.start();

  std::vector<CellRow> cells;
  for (const std::uint64_t conns : cfg.connections) {
    for (std::size_t bi = 0; bi < cfg.batches.size(); ++bi) {
      CellRow cell = run_cell(service, server, conns, cfg.batches[bi], cfg);
      const double base_rate = baselines[bi].result.lookups_per_sec();
      const double cell_rate = cell.result.lookups_per_sec();
      cell.slowdown_vs_inprocess =
          cell_rate > 0 ? base_rate / cell_rate : 0.0;
      std::printf("tcp conns=%-3zu batch=%-5zu %12.0f lookups/s  "
                  "rtt p50=%9.0fns p99=%9.0fns  %.1fx in-process%s\n",
                  cell.connections, cell.batch, cell_rate,
                  cell.result.latency_ns.quantile(0.5),
                  cell.result.latency_ns.quantile(0.99),
                  cell.slowdown_vs_inprocess,
                  cell.result.errors > 0 ? "  [WORKER ERRORS]" : "");
      cells.push_back(std::move(cell));
    }
  }

  write_json(cfg, svc, baselines, cells, server);

  server.stop();
  service.stop();
  return 0;
}
