// Serving-mode benchmark: one RouteService trial per iBGP mode, the
// read path hammered by --readers lookup threads while the writer
// replays churn and republishes RCU snapshots. Emits BENCH_serve.json
// with the read-path numbers (lookups/sec, per-lookup latency), the
// writer-side publish latency, reclamation stats and peak RSS.
//
// One-CPU caveat (this host): readers and the writer time-slice one
// core, so aggregate lookups/sec does NOT scale with --readers and
// wall_ms mostly measures the simulation replay. Judge the read path
// by per-lookup latency at --readers=1; see EXPERIMENTS.md.
#include <cinttypes>
#include <cstdio>
#include <string>
#include <vector>

#include "common.h"
#include "serve/service.h"

namespace abrr::bench {
namespace {

struct ServeBenchConfig {
  ExperimentConfig base;
  unsigned long readers = 2;
  unsigned long lookup_batch = 64;
  double churn_seconds = 10.0;
  double churn_events_per_second = 50.0;
  unsigned long chaos_events = 8;
  double publish_period_seconds = 0.25;
  std::string json_out = "BENCH_serve.json";
};

ServeBenchConfig parse_args(int argc, char** argv) {
  ServeBenchConfig cfg;
  // The full §4 scale takes minutes per mode on this host; default to a
  // mid-size bed and let --prefixes/--pops scale it up.
  cfg.base.prefixes = 2000;
  cfg.base.pops = 6;
  cfg.base.clients_per_pop = 4;
  cfg.base.peer_ases = 8;
  cfg.base.points_per_as = 3;
  runner::ArgParser parser{"serve_bench"};
  cfg.base.register_flags(parser);
  parser.add("readers", "concurrent lookup threads", &cfg.readers);
  parser.add("lookup-batch", "lookups per reader timing sample",
             &cfg.lookup_batch);
  parser.add("churn-seconds", "virtual churn horizon per trial",
             &cfg.churn_seconds);
  parser.add("churn-eps", "update-trace churn events per virtual second",
             &cfg.churn_events_per_second);
  parser.add("chaos-events", "session/delay/loss fault events mixed in",
             &cfg.chaos_events);
  parser.add("publish-period", "virtual seconds between publish attempts",
             &cfg.publish_period_seconds);
  parser.add("json_out", "write the report here", &cfg.json_out);
  parser.parse(argc, argv);
  cfg.base.finish();
  return cfg;
}

runner::ScenarioSpec serve_spec(ibgp::IbgpMode mode,
                                const ServeBenchConfig& cfg) {
  runner::ScenarioSpec spec;
  spec.name = std::string{"serve/"} + runner::mode_name(mode);
  spec.mode = mode;
  spec.topology.pops = cfg.base.pops;
  spec.topology.clients_per_pop = cfg.base.clients_per_pop;
  spec.topology.peer_ases = cfg.base.peer_ases;
  spec.topology.points_per_as = cfg.base.points_per_as;
  spec.workload.prefixes = cfg.base.prefixes;
  spec.abrr.num_aps = 2;
  spec.serve.enabled = true;
  spec.serve.churn_seconds = cfg.churn_seconds;
  spec.serve.churn_events_per_second = cfg.churn_events_per_second;
  spec.serve.chaos_events = cfg.chaos_events;
  spec.serve.publish_period_seconds = cfg.publish_period_seconds;
  return spec;
}

struct Row {
  std::string mode;
  serve::ServeReport report;
};

void print_row(const Row& row) {
  std::printf(
      "%-8s %12.0f lookups/s  p50=%7.1fns p99=%7.1fns  "
      "publish p50=%8.0fns p99=%8.0fns  pubs=%" PRIu64 " def=%" PRIu64
      "  rss=%ldKB\n",
      row.mode.c_str(), row.report.lookups_per_sec, row.report.lookup_p50_ns,
      row.report.lookup_p99_ns, row.report.publish_p50_ns,
      row.report.publish_p99_ns, row.report.publishes,
      row.report.publishes_deferred, row.report.peak_rss_kb);
}

void write_json(const std::string& path, const ServeBenchConfig& cfg,
                const std::vector<Row>& rows) {
  FILE* f = std::fopen(path.c_str(), "w");
  if (!f) {
    std::fprintf(stderr, "error: cannot write %s\n", path.c_str());
    std::exit(1);
  }
  std::fprintf(f, "{\n  \"bench\": \"serve\",\n");
  std::fprintf(f,
               "  \"config\": {\"prefixes\": %zu, \"pops\": %u, "
               "\"seed\": %" PRIu64 ", \"readers\": %lu, "
               "\"lookup_batch\": %lu,\n             "
               "\"churn_seconds\": %.3f, \"churn_eps\": %.1f, "
               "\"chaos_events\": %lu, \"publish_period\": %.3f},\n",
               cfg.base.prefixes, cfg.base.pops, cfg.base.seed, cfg.readers,
               cfg.lookup_batch, cfg.churn_seconds,
               cfg.churn_events_per_second, cfg.chaos_events,
               cfg.publish_period_seconds);
  std::fprintf(f, "  \"results\": [\n");
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const serve::ServeReport& r = rows[i].report;
    std::fprintf(
        f,
        "    {\"mode\": \"%s\", \"lookups\": %" PRIu64
        ", \"lookups_per_sec\": %.1f,\n"
        "     \"lookup_p50_ns\": %.1f, \"lookup_p99_ns\": %.1f,\n"
        "     \"publish_p50_ns\": %.1f, \"publish_p99_ns\": %.1f,\n"
        "     \"publishes\": %" PRIu64 ", \"publishes_deferred\": %" PRIu64
        ", \"reclaimed\": %" PRIu64 ", \"retired_peak\": %" PRIu64 ",\n"
        "     \"final_version\": %" PRIu64
        ", \"final_fingerprint\": \"%016" PRIx64 "\",\n"
        "     \"virtual_seconds\": %.3f, \"wall_ms\": %.1f, "
        "\"peak_rss_kb\": %ld}%s\n",
        rows[i].mode.c_str(), r.lookups, r.lookups_per_sec, r.lookup_p50_ns,
        r.lookup_p99_ns, r.publish_p50_ns, r.publish_p99_ns, r.publishes,
        r.publishes_deferred, r.reclaimed, r.retired_peak, r.final_version,
        r.final_fingerprint, r.virtual_seconds, r.wall_ms, r.peak_rss_kb,
        i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  std::printf("wrote %s\n", path.c_str());
}

}  // namespace
}  // namespace abrr::bench

int main(int argc, char** argv) {
  using namespace abrr;
  using namespace abrr::bench;

  const ServeBenchConfig cfg = parse_args(argc, argv);
  std::vector<ibgp::IbgpMode> modes{
      ibgp::IbgpMode::kFullMesh, ibgp::IbgpMode::kTbrr, ibgp::IbgpMode::kAbrr,
      ibgp::IbgpMode::kDual};
  if (!cfg.base.mode.empty()) modes = {*runner::parse_mode(cfg.base.mode)};

  serve::ServeTrialOptions opt;
  opt.readers = cfg.readers;
  opt.lookup_batch = cfg.lookup_batch;

  std::vector<Row> rows;
  for (const ibgp::IbgpMode mode : modes) {
    const runner::ScenarioSpec spec = serve_spec(mode, cfg);
    rows.push_back(
        Row{runner::mode_name(mode),
            serve::run_serve_trial(spec, cfg.base.seed, opt)});
    print_row(rows.back());
  }
  write_json(cfg.json_out, cfg, rows);
  return 0;
}
