// Serving-mode benchmark: one RouteService trial per iBGP mode, the
// read path hammered by --readers lookup threads while the writer
// replays churn and republishes RCU snapshots. Emits BENCH_serve.json
// with the read-path numbers (lookups/sec, per-lookup latency), the
// writer-side publish latency, reclamation stats and peak RSS.
//
// One-CPU caveat (this host): readers and the writer time-slice one
// core, so aggregate lookups/sec does NOT scale with --readers and
// wall_ms mostly measures the simulation replay. Judge the read path
// by per-lookup latency at --readers=1; see EXPERIMENTS.md.
#include <cstdio>
#include <string>
#include <vector>

#include "common.h"
#include "serve/service.h"

namespace abrr::bench {
namespace {

struct ServeBenchConfig {
  ExperimentConfig base;
  ServingBenchParams serving;
  unsigned long readers = 2;
  unsigned long lookup_batch = 64;
  std::string json_out = "BENCH_serve.json";
};

ServeBenchConfig parse_args(int argc, char** argv) {
  ServeBenchConfig cfg;
  // The full §4 scale takes minutes per mode on this host; default to a
  // mid-size bed and let --prefixes/--pops scale it up.
  cfg.base.prefixes = 2000;
  cfg.base.pops = 6;
  cfg.base.clients_per_pop = 4;
  cfg.base.peer_ases = 8;
  cfg.base.points_per_as = 3;
  runner::ArgParser parser{"serve_bench"};
  cfg.base.register_flags(parser);
  cfg.serving.register_flags(parser);
  parser.add("readers", "concurrent lookup threads", &cfg.readers);
  parser.add("lookup-batch", "lookups per reader timing sample",
             &cfg.lookup_batch);
  parser.add("json_out", "write the report here", &cfg.json_out);
  parser.parse(argc, argv);
  cfg.base.finish();
  return cfg;
}

struct Row {
  std::string mode;
  serve::ServeReport report;
};

void print_row(const Row& row) {
  std::printf(
      "%-8s %12.0f lookups/s  p50=%7.1fns p99=%7.1fns  "
      "publish p50=%8.0fns p99=%8.0fns  pubs=%" PRIu64 " def=%" PRIu64
      "  rss=%ldKB\n",
      row.mode.c_str(), row.report.lookups_per_sec, row.report.lookup_p50_ns,
      row.report.lookup_p99_ns, row.report.publish_p50_ns,
      row.report.publish_p99_ns, row.report.publishes,
      row.report.publishes_deferred, row.report.peak_rss_kb);
}

void write_json(const std::string& path, const ServeBenchConfig& cfg,
                const std::vector<Row>& rows) {
  JsonWriter json{path};
  json.begin_object();
  json.field("bench", "serve");
  json.begin_object("config");
  json.field("prefixes", cfg.base.prefixes);
  json.field("pops", cfg.base.pops);
  json.field("seed", cfg.base.seed);
  json.field("readers", static_cast<std::uint64_t>(cfg.readers));
  json.field("lookup_batch", static_cast<std::uint64_t>(cfg.lookup_batch));
  json.field("churn_seconds", cfg.serving.churn_seconds);
  json.field("churn_eps", cfg.serving.churn_events_per_second);
  json.field("chaos_events",
             static_cast<std::uint64_t>(cfg.serving.chaos_events));
  json.field("publish_period", cfg.serving.publish_period_seconds);
  json.end_object();
  json.begin_array("results");
  for (const Row& row : rows) {
    const serve::ServeReport& r = row.report;
    json.begin_object();
    json.field("mode", row.mode);
    json.field("lookups", r.lookups);
    json.field("lookups_per_sec", r.lookups_per_sec);
    json.field("lookup_p50_ns", r.lookup_p50_ns);
    json.field("lookup_p99_ns", r.lookup_p99_ns);
    json.field("publish_p50_ns", r.publish_p50_ns);
    json.field("publish_p99_ns", r.publish_p99_ns);
    json.field("publishes", r.publishes);
    json.field("publishes_deferred", r.publishes_deferred);
    json.field("reclaimed", r.reclaimed);
    json.field("retired_peak", r.retired_peak);
    json.field("final_version", r.final_version);
    json.field_hex("final_fingerprint", r.final_fingerprint);
    json.field("virtual_seconds", r.virtual_seconds);
    json.field("wall_ms", r.wall_ms);
    json.field("peak_rss_kb", r.peak_rss_kb);
    json.end_object();
  }
  json.end_array();
  json.end_object();
  json.close();
}

}  // namespace
}  // namespace abrr::bench

int main(int argc, char** argv) {
  using namespace abrr;
  using namespace abrr::bench;

  const ServeBenchConfig cfg = parse_args(argc, argv);
  std::vector<ibgp::IbgpMode> modes{
      ibgp::IbgpMode::kFullMesh, ibgp::IbgpMode::kTbrr, ibgp::IbgpMode::kAbrr,
      ibgp::IbgpMode::kDual};
  if (!cfg.base.mode.empty()) modes = {*runner::parse_mode(cfg.base.mode)};

  serve::ServeTrialOptions opt;
  opt.readers = cfg.readers;
  opt.lookup_batch = cfg.lookup_batch;

  std::vector<Row> rows;
  for (const ibgp::IbgpMode mode : modes) {
    const runner::ScenarioSpec spec =
        serving_spec(mode, cfg.base, cfg.serving, "serve");
    rows.push_back(
        Row{runner::mode_name(mode),
            serve::run_serve_trial(spec, cfg.base.seed, opt)});
    print_row(rows.back());
  }
  write_json(cfg.json_out, cfg, rows);
  return 0;
}
