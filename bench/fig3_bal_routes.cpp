// Figure 3: average number of best AS-level routes per prefix as a
// function of the number of peer ASes, for the "Peer ASes Only" and
// "All Sources" views, plus the regression line F(#PASs) used as #BAL
// throughout the Appendix A analysis (§3.1).
//
// Paper anchors: ~10.2 routes/prefix on peer-learned prefixes at 25
// peer ASes; All-Sources lower (customers add little diversity); both
// curves roughly linear in the number of peer ASes.
#include <cstdio>
#include <vector>

#include "analysis/regression.h"
#include "common.h"

int main(int argc, char** argv) {
  using namespace abrr;
  const auto cfg = bench::ExperimentConfig::from_args(argc, argv, "fig3_bal_routes");
  sim::Rng rng{cfg.seed};
  const auto topology = bench::make_paper_topology(cfg, rng);
  const auto workload = bench::make_paper_workload(cfg, topology, rng);

  std::printf("# Figure 3: best AS-level routes per prefix\n");
  std::printf("# prefixes=%zu peer_ases=%u points/AS=%u seed=%llu\n",
              cfg.prefixes, cfg.peer_ases, cfg.points_per_as,
              static_cast<unsigned long long>(cfg.seed));
  std::printf("%-10s %-16s %-12s\n", "#PeerASes", "PeerASesOnly",
              "AllSources");

  std::vector<double> xs, peer_ys, all_ys;
  for (std::size_t n = 1; n <= cfg.peer_ases; ++n) {
    // Average several random peer subsets per point (the paper selects
    // peers at random).
    double peer = 0, all = 0;
    constexpr int kSamples = 3;
    for (int s = 0; s < kSamples; ++s) {
      const auto point = workload.average_bal(topology, n, rng);
      peer += point.peer_only;
      all += point.all_sources;
    }
    peer /= kSamples;
    all /= kSamples;
    std::printf("%-10zu %-16.2f %-12.2f\n", n, peer, all);
    xs.push_back(static_cast<double>(n));
    peer_ys.push_back(peer);
    all_ys.push_back(all);
  }

  const auto fit = analysis::fit_line(xs, all_ys);
  std::printf("\n# F(#PASs) regression on All Sources (used as #BAL):\n");
  std::printf("#   F(x) = %.4f * x + %.4f   (R^2 = %.4f)\n", fit.slope,
              fit.intercept, fit.r2);
  std::printf("#   paper anchor: ~10.2 best AS-level routes per PEER\n");
  std::printf("#   prefix at 25 peer ASes; measured: %.2f\n",
              peer_ys.back());
  return 0;
}
