// Ablation: §3.4 client-side storage reduction.
//
// The paper argues ABRR clients "only need to store the best routes"
// because ARRs resend the whole best-AS-level set on every change. Our
// default keeps the full set on data-plane border routers because a
// reflected low-MED route is the witness that suppresses the client's
// own higher-MED route from the same neighbor AS (deterministic-MED
// group elimination); discarding it can silently diverge from
// full-mesh. This bench measures the memory saved by forcing the
// reduction and the equivalence it costs.
#include <cstdio>
#include <memory>

#include "common.h"
#include "verify/equivalence.h"

int main(int argc, char** argv) {
  using namespace abrr;
  auto cfg = bench::ExperimentConfig::from_args(argc, argv, "ablation_client_reduction");
  if (cfg.prefixes == 4000) cfg.prefixes = 1200;
  cfg.pops = 7;  // keep the full-mesh reference affordable
  cfg.clients_per_pop = 6;
  sim::Rng rng{cfg.seed};
  const auto topology = bench::make_paper_topology(cfg, rng);
  // Diverse per-point MEDs: the regime where a reflected low-MED route
  // is the witness that suppresses a client's own higher-MED route.
  // (With the default uniform-MED policy the reduction is lossless.)
  trace::WorkloadParams wp;
  wp.prefixes = cfg.prefixes;
  wp.per_point_meds = true;
  const auto workload = trace::Workload::generate(wp, topology, rng);
  const auto prefixes = workload.prefixes();

  const auto build = [&](bool force_reduction) {
    auto options = bench::paper_options(ibgp::IbgpMode::kAbrr, 8, cfg.seed);
    options.abrr_force_client_reduction = force_reduction;
    auto bed =
        std::make_unique<harness::Testbed>(topology, options, prefixes);
    bench::load_snapshot(*bed, workload, 30.0);
    return bed;
  };
  const auto client_rib_in = [](harness::Testbed& bed) {
    double total = 0;
    for (const auto id : bed.client_ids()) {
      total += static_cast<double>(bed.speaker(id).rib_in_size());
    }
    return total / static_cast<double>(bed.client_ids().size());
  };

  auto full = build(false);
  auto reduced = build(true);
  auto mesh_options =
      bench::paper_options(ibgp::IbgpMode::kFullMesh, 8, cfg.seed);
  auto mesh =
      std::make_unique<harness::Testbed>(topology, mesh_options, prefixes);
  bench::load_snapshot(*mesh, workload, 30.0);

  const auto eq_full = verify::compare_loc_ribs(*full, *mesh, prefixes);
  const auto eq_reduced =
      verify::compare_loc_ribs(*reduced, *mesh, prefixes);

  bench::MetricsSink sink{"ablation_client_reduction", cfg.metrics_out};
  sink.capture("full_set", *full);
  sink.capture("reduced", *reduced);
  sink.capture("full_mesh", *mesh);

  std::printf("# Ablation: §3.4 client storage reduction (%zu prefixes)\n\n",
              cfg.prefixes);
  std::printf("%-22s %18s %24s\n", "client storage", "RIB-In/client",
              "divergence vs full-mesh");
  std::printf("%-22s %18.0f %14zu / %zu\n", "full set (default)",
              client_rib_in(*full), eq_full.divergence_count,
              eq_full.compared);
  std::printf("%-22s %18.0f %14zu / %zu\n", "reduced (paper §3.4)",
              client_rib_in(*reduced), eq_reduced.divergence_count,
              eq_reduced.compared);
  std::printf("\n# memory saved by the reduction: %.1f%%\n",
              100.0 * (1.0 - client_rib_in(*reduced) / client_rib_in(*full)));
  std::printf("# divergences appear only on prefixes where the reducing\n");
  std::printf("# client also has its own eBGP routes (MED witnesses lost).\n");
  return 0;
}
