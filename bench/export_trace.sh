#!/usr/bin/env bash
# Replays the seeded observability fault drill and exports its
# chrome://tracing timeline (plus the metrics dump, RIB time series, and
# a pcap of every BGP message the drill sent).
#
# Usage: bench/export_trace.sh [build-dir] [--seed=N] [--out-dir=DIR]
# Defaults: build dir ./build, seed 42, artifacts in ./obs-drill/.
# Open the resulting trace.json via chrome://tracing or
# https://ui.perfetto.dev, and capture.pcap in Wireshark (sessions
# reassemble as BGP streams on port 179).
# Same seed => bit-identical artifacts.
set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"

build_dir="$repo_root/build"
if [[ $# -gt 0 && "$1" != --* ]]; then
  build_dir="$1"
  shift
fi

seed=42
out_dir="$repo_root/obs-drill"
for arg in "$@"; do
  case "$arg" in
    --seed=*) seed="${arg#--seed=}" ;;
    --out-dir=*) out_dir="${arg#--out-dir=}" ;;
    *)
      echo "error: unknown flag '$arg' (use --seed=N --out-dir=DIR)" >&2
      exit 1
      ;;
  esac
done

drill_bin="$build_dir/bench/obs_drill"
if [[ ! -d "$build_dir" ]]; then
  echo "error: build dir '$build_dir' does not exist; build first:" >&2
  echo "  cmake -B '$build_dir' -S '$repo_root' -DCMAKE_BUILD_TYPE=Release" >&2
  echo "  cmake --build '$build_dir' --target obs_drill -j" >&2
  exit 1
fi
if [[ ! -x "$drill_bin" ]]; then
  echo "error: $drill_bin not found; build the obs_drill target first" >&2
  exit 1
fi

mkdir -p "$out_dir"
"$drill_bin" --seed="$seed" --out-dir="$out_dir"
echo "open $out_dir/trace.json in chrome://tracing (or ui.perfetto.dev)"
echo "open $out_dir/capture.pcap in Wireshark (BGP on port 179)"
