// Figure 4 (a-d): analytical RIB-In size of an ARR vs a TRR (single- and
// multi-path), sweeping (a) #routers, (b) #APs/#Clusters, (c) #RRs per
// AP/Cluster, (d) #peer ASes. Defaults per the paper: 2000 routers, 50
// APs/clusters, 2 RRs each, 30 peer ASes, 400K prefixes.
//
// Expected shapes: ABRR roughly an order of magnitude below TBRR nearly
// everywhere; (a) flat in #routers for all three; (b) ABRR's benefit
// from more APs reaches diminishing returns (the client-role DFZ share
// dominates); (c) only ABRR grows with redundancy; (d) all grow with
// peer ASes through #BAL. TBRR and TBRR-multi coincide on RIB-In in
// (a), (c), (d) and split in (b) once #BAL >= #Clusters caps G(.).
#include <cstdio>

#include "analysis/regression.h"
#include "analysis/rib_model.h"

namespace {

using namespace abrr::analysis;

constexpr double kPrefixes = 400'000;
const BalModel kBal;  // paper-anchored F(#PASs)

ModelParams base(double peer_ases = 30) {
  ModelParams p;
  p.prefixes = kPrefixes;
  p.aps = 50;
  p.rrs = 100;
  p.bal = kBal(peer_ases);
  return p;
}

void row(double x, const ModelParams& p) {
  std::printf("%-12.0f %-14.0f %-14.0f %-14.0f\n", x, AbrrModel::rib_in(p),
              TbrrModel::rib_in(p), TbrrMultiModel::rib_in(p));
}

void header(const char* x) {
  std::printf("%-12s %-14s %-14s %-14s\n", x, "ABRR", "TBRR", "TBRR-multi");
}

}  // namespace

int main() {
  std::printf("# Figure 4: analytical # RIB-In entries of an ARR/TRR\n");
  std::printf("# defaults: 400K prefixes, 50 APs/clusters, 2 RRs per\n");
  std::printf("# AP/cluster, 30 peer ASes (#BAL via F)\n\n");

  std::printf("(a) vs number of routers (RR RIBs are router-independent)\n");
  header("#Routers");
  for (const double n : {500, 1000, 2000, 4000, 8000}) {
    row(n, base());  // the models do not depend on it: flat lines
  }

  std::printf("\n(b) vs number of APs / clusters (2 RRs each)\n");
  header("#APs");
  for (const double aps : {5, 10, 20, 50, 100, 200}) {
    ModelParams p = base();
    p.aps = aps;
    p.rrs = 2 * aps;
    row(aps, p);
  }

  std::printf("\n(c) vs RRs per AP / cluster (redundancy factor)\n");
  header("#RRs/AP");
  for (const double k : {1, 2, 3, 4, 6, 8}) {
    ModelParams p = base();
    p.rrs = k * p.aps;
    row(k, p);
  }

  std::printf("\n(d) vs number of peer ASes (through #BAL = F(#PASs))\n");
  header("#PeerASes");
  for (const double pas : {5, 10, 20, 30, 40, 60}) {
    row(pas, base(pas));
  }

  const ModelParams p = base();
  std::printf("\n# headline: TBRR/ABRR RIB-In ratio at defaults = %.1fx\n",
              TbrrModel::rib_in(p) / AbrrModel::rib_in(p));
  return 0;
}
