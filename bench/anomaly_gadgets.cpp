// §2.3 correctness table: the three anomaly gadgets run under TBRR and
// ABRR. Expected output — TBRR: topology gadget oscillates, adversarial
// MED gadget oscillates (with vendor order-dependent MED), data-plane
// gadget converges INTO a stable forwarding loop with inefficient paths;
// ABRR: converges, loop-free, hot-potato optimal, on the very same
// (badly placed) reflector boxes.
#include <cstdio>
#include <map>
#include <memory>

#include "core/address_partition.h"
#include "harness/testbed.h"
#include "ibgp/speaker.h"
#include "verify/efficiency.h"
#include "verify/forwarding.h"
#include "verify/oscillation.h"

namespace {

using namespace abrr;
using ibgp::IbgpMode;
using ibgp::PeerInfo;
using ibgp::RouterId;
using ibgp::Speaker;
using ibgp::SpeakerConfig;

const bgp::Ipv4Prefix kPfx = bgp::Ipv4Prefix::parse("10.0.0.0/8");

// A self-contained mini-lab: scheduler + network + speakers.
struct Lab {
  sim::Scheduler sched;
  sim::Rng rng{1};
  net::Network net{sched, rng};
  std::map<RouterId, std::unique_ptr<Speaker>> speakers;
  verify::OscillationMonitor monitor{20};

  Speaker& add(SpeakerConfig cfg) {
    cfg.asn = 65000;
    cfg.mrai = 0;
    cfg.proc_delay = sim::msec(1);
    auto s = std::make_unique<Speaker>(cfg, sched, net);
    auto& ref = *s;
    speakers.emplace(cfg.id, std::move(s));
    return ref;
  }
  Speaker& at(RouterId id) { return *speakers.at(id); }
  void start() {
    for (auto& [id, s] : speakers) {
      monitor.attach(*s);
      s->start();
    }
  }
  static bgp::IgpDistanceFn table(std::map<RouterId, std::int64_t> d) {
    return [d = std::move(d)](RouterId nh) -> std::int64_t {
      const auto it = d.find(nh);
      return it == d.end() ? 1000 : it->second;
    };
  }
};

bgp::Route route(bgp::Asn neighbor_as,
                 std::optional<std::uint32_t> med = {}) {
  bgp::RouteBuilder b{kPfx};
  b.local_pref(100).as_path({neighbor_as, 65100});
  if (med) b.med(*med);
  return b.build();
}

// --- gadget 1: cyclic-IGP topology oscillation ------------------------
bool topology_gadget_oscillates(bool abrr) {
  Lab lab;
  const auto scheme = core::PartitionScheme::uniform(1);
  for (RouterId c = 1; c <= 3; ++c) {
    SpeakerConfig cfg;
    cfg.id = c;
    cfg.mode = abrr ? IbgpMode::kAbrr : IbgpMode::kTbrr;
    if (abrr) cfg.ap_of = scheme.mapper();
    lab.add(cfg);
  }
  const int n_rr = abrr ? 2 : 3;
  for (int i = 0; i < n_rr; ++i) {
    const RouterId id = 11 + static_cast<RouterId>(i);
    SpeakerConfig cfg;
    cfg.id = id;
    cfg.mode = abrr ? IbgpMode::kAbrr : IbgpMode::kTbrr;
    cfg.data_plane = false;
    if (abrr) {
      cfg.ap_of = scheme.mapper();
      cfg.managed_aps = {0};
    } else {
      cfg.cluster_id = static_cast<std::uint32_t>(i + 1);
    }
    lab.add(cfg);
  }
  lab.at(11).set_igp(Lab::table({{1, 10}, {2, 1}, {3, 100}}));
  lab.at(12).set_igp(Lab::table({{1, 100}, {2, 10}, {3, 1}}));
  if (!abrr) lab.at(13).set_igp(Lab::table({{1, 1}, {2, 100}, {3, 10}}));

  if (abrr) {
    for (RouterId c = 1; c <= 3; ++c) {
      for (RouterId r = 11; r <= 12; ++r) {
        lab.net.connect(c, r, sim::msec(2));
        lab.at(c).add_peer(PeerInfo{.id = r, .reflector_for = {0}});
        lab.at(r).add_peer(PeerInfo{.id = c, .rr_client = true});
      }
    }
  } else {
    for (RouterId c = 1; c <= 3; ++c) {
      const RouterId rr = c + 10;
      lab.net.connect(c, rr, sim::msec(2));
      lab.at(c).add_peer(PeerInfo{.id = rr, .reflector_tbrr = true});
      lab.at(rr).add_peer(PeerInfo{.id = c, .rr_client = true});
    }
    for (RouterId a = 11; a <= 13; ++a) {
      for (RouterId b = a + 1; b <= 13; ++b) {
        lab.net.connect(a, b, sim::msec(2));
        lab.at(a).add_peer(PeerInfo{.id = b, .rr_peer = true});
        lab.at(b).add_peer(PeerInfo{.id = a, .rr_peer = true});
      }
    }
  }
  lab.start();
  for (RouterId c = 1; c <= 3; ++c) {
    lab.at(c).inject_ebgp(0x80000000 + c,
                          route(65000 + c));
  }
  const bool quiesced = lab.sched.run_to_quiescence(300000);
  return !quiesced || lab.monitor.oscillating();
}

// --- gadget 2: RFC 3345-style MED oscillation -------------------------
bool med_gadget_oscillates(bool abrr, bool deterministic_med) {
  Lab lab;
  bgp::DecisionConfig dec;
  dec.deterministic_med = deterministic_med;
  const auto scheme = core::PartitionScheme::uniform(1);

  const auto add_node = [&](RouterId id, bool rr, std::uint32_t cluster) {
    SpeakerConfig cfg;
    cfg.id = id;
    cfg.decision = dec;
    cfg.mode = abrr ? IbgpMode::kAbrr : IbgpMode::kTbrr;
    cfg.data_plane = !rr;
    if (abrr) {
      cfg.ap_of = scheme.mapper();
      if (rr) cfg.managed_aps = {0};
    } else if (rr) {
      cfg.cluster_id = cluster;
    }
    lab.add(cfg);
  };
  add_node(3, false, 0);
  add_node(4, false, 0);
  add_node(5, false, 0);
  add_node(1, true, 1);
  add_node(2, true, 2);
  lab.at(1).set_igp(Lab::table({{3, 1}, {4, 5}, {5, 50}}));
  lab.at(2).set_igp(Lab::table({{3, 1}, {4, 5}, {5, 10}}));

  if (abrr) {
    for (RouterId c : {3u, 4u, 5u}) {
      for (RouterId r : {1u, 2u}) {
        lab.net.connect(c, r, sim::msec(2));
        lab.at(c).add_peer(PeerInfo{.id = r, .reflector_for = {0}});
        lab.at(r).add_peer(PeerInfo{.id = c, .rr_client = true});
      }
    }
  } else {
    lab.net.connect(3, 1, sim::msec(2));
    lab.at(3).add_peer(PeerInfo{.id = 1, .reflector_tbrr = true});
    lab.at(1).add_peer(PeerInfo{.id = 3, .rr_client = true});
    for (RouterId c : {4u, 5u}) {
      lab.net.connect(c, 2, sim::msec(2));
      lab.at(c).add_peer(PeerInfo{.id = 2, .reflector_tbrr = true});
      lab.at(2).add_peer(PeerInfo{.id = c, .rr_client = true});
    }
    lab.net.connect(1, 2, sim::msec(2));
    lab.at(1).add_peer(PeerInfo{.id = 2, .rr_peer = true});
    lab.at(2).add_peer(PeerInfo{.id = 1, .rr_peer = true});
  }
  lab.start();
  lab.at(3).inject_ebgp(0x80000001, route(65001, 1));
  lab.at(4).inject_ebgp(0x80000002, route(65002));
  lab.at(5).inject_ebgp(0x80000003, route(65001, 0));
  const bool quiesced = lab.sched.run_to_quiescence(300000);
  return !quiesced || lab.monitor.oscillating();
}

// --- gadget 3: stable data-plane deflection loop ----------------------
topo::Topology loop_topology() {
  topo::Topology t;
  t.params.pops = 2;
  t.clients = {
      {1, topo::RouterRole::kPeering, 0, 1},
      {2, topo::RouterRole::kAccess, 0, 0},
      {3, topo::RouterRole::kAccess, 1, 1},
      {4, topo::RouterRole::kPeering, 1, 0},
  };
  t.reflectors = {{11, 1, 0}, {12, 0, 1}};
  t.graph.add_link(1, 2, 1);
  t.graph.add_link(2, 3, 1);
  t.graph.add_link(3, 4, 1);
  t.graph.add_link(11, 4, 1);
  t.graph.add_link(12, 1, 1);
  return t;
}

struct DataPlaneResult {
  bool converged = false;
  std::size_t loops = 0;
  double extra_metric = 0;
};

DataPlaneResult data_plane_gadget(IbgpMode mode) {
  harness::TestbedOptions o;
  o.mode = mode;
  o.num_aps = 1;
  o.mrai = 0;
  o.proc_delay = sim::msec(1);
  o.latency_jitter = 0;
  harness::Testbed bed{loop_topology(), o, std::vector<bgp::Ipv4Prefix>{kPfx}};
  bed.speaker(1).inject_ebgp(0x80000001, route(65001));
  bed.speaker(4).inject_ebgp(0x80000002, route(65002));

  DataPlaneResult result;
  result.converged = bed.run_to_quiescence(500000);
  verify::ForwardingChecker checker{bed};
  const std::vector<bgp::Ipv4Prefix> prefixes{kPfx};
  result.loops = checker.audit(prefixes).loops;

  trace::PrefixEntry entry;
  entry.prefix = kPfx;
  entry.from_peers = true;
  trace::Announcement a1;
  a1.router = 1;
  a1.neighbor = 0x80000001;
  a1.first_as = 65001;
  a1.path_length = 2;
  a1.local_pref = 100;
  trace::Announcement a2 = a1;
  a2.router = 4;
  a2.neighbor = 0x80000002;
  a2.first_as = 65002;
  entry.anns = {a1, a2};
  const auto edge = trace::Workload::from_parts({}, {entry});
  result.extra_metric =
      verify::audit_efficiency(bed, edge).total_extra_metric;
  return result;
}

const char* yesno(bool b) { return b ? "YES" : "no"; }

}  // namespace

int main() {
  std::printf("# §2.3 anomaly gadgets: TBRR vs ABRR\n\n");
  std::printf("%-34s %-10s %-10s\n", "gadget", "TBRR", "ABRR");

  std::printf("%-34s %-10s %-10s\n", "topology oscillation",
              yesno(topology_gadget_oscillates(false)),
              yesno(topology_gadget_oscillates(true)));
  std::printf("%-34s %-10s %-10s\n", "MED oscillation (vendor med)",
              yesno(med_gadget_oscillates(false, false)),
              yesno(med_gadget_oscillates(true, false)));
  std::printf("%-34s %-10s %-10s\n", "MED oscillation (deterministic)",
              yesno(med_gadget_oscillates(false, true)),
              yesno(med_gadget_oscillates(true, true)));

  const auto tbrr = data_plane_gadget(IbgpMode::kTbrr);
  const auto abrr = data_plane_gadget(IbgpMode::kAbrr);
  std::printf("%-34s %-10zu %-10zu\n", "forwarding loops (stable state)",
              tbrr.loops, abrr.loops);
  std::printf("%-34s %-10.0f %-10.0f\n", "extra IGP metric (inefficiency)",
              tbrr.extra_metric, abrr.extra_metric);

  std::printf("\n# paper: ABRR has no oscillations, no loops, and no\n");
  std::printf("# path inefficiency, with no constraint on RR placement.\n");
  return 0;
}
