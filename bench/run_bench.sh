#!/usr/bin/env bash
# Runs the micro-benchmarks (BENCH_micro.json), the fault-resilience
# experiment (BENCH_fault.json + BENCH_fault_metrics.json) and the
# parallel sweep (BENCH_sweep.json, which also proves --jobs=N output is
# byte-identical to --jobs=1).
#
# Usage: bench/run_bench.sh [--out-dir=DIR] [--jobs=N] [build-dir] [extra google-benchmark flags...]
# Reports land in --out-dir (default: the repo root). --jobs=N sets the
# worker-thread count for the runner-backed benches (default: nproc).
# The build dir defaults to ./build; build it first with:
#   cmake -B build -S . -DCMAKE_BUILD_TYPE=Release && cmake --build build -j
# Skip the (slower) fault experiment with ABRR_SKIP_FAULT_BENCH=1; skip
# the sweep with ABRR_SKIP_SWEEP_BENCH=1.
set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"

out_dir="$repo_root"
jobs="$(nproc 2>/dev/null || echo 2)"
while [[ $# -gt 0 ]]; do
  case "$1" in
    --out-dir=*) out_dir="${1#--out-dir=}"; shift ;;
    --jobs=*) jobs="${1#--jobs=}"; shift ;;
    *) break ;;
  esac
done
if [[ ! -d "$out_dir" ]]; then
  mkdir -p "$out_dir" || {
    echo "error: cannot create output dir '$out_dir'" >&2
    exit 1
  }
fi

build_dir="${1:-$repo_root/build}"
shift || true
if [[ ! -d "$build_dir" ]]; then
  echo "error: build dir '$build_dir' does not exist." >&2
  echo "Build it first:" >&2
  echo "  cmake -B '$build_dir' -S '$repo_root' -DCMAKE_BUILD_TYPE=Release" >&2
  echo "  cmake --build '$build_dir' -j" >&2
  exit 1
fi

bench_bin="$build_dir/bench/micro_bench"
if [[ ! -x "$bench_bin" ]]; then
  echo "error: $bench_bin not found or not executable; build first" >&2
  exit 1
fi

out="$out_dir/BENCH_micro.json"
"$bench_bin" \
  --benchmark_min_time=0.2 \
  --json_out="$out" \
  "$@"
echo "wrote $out"

if [[ "${ABRR_SKIP_FAULT_BENCH:-0}" != "1" ]]; then
  fault_bin="$build_dir/bench/fault_resilience"
  if [[ ! -x "$fault_bin" ]]; then
    echo "error: $fault_bin not found or not executable; build first" >&2
    exit 1
  fi
  "$fault_bin" \
    --prefixes="${ABRR_FAULT_PREFIXES:-2000}" \
    --jobs="$jobs" \
    --json_out="$out_dir/BENCH_fault.json" \
    --metrics-out="$out_dir/BENCH_fault_metrics.json"
fi

if [[ "${ABRR_SKIP_SWEEP_BENCH:-0}" != "1" ]]; then
  sweep_bin="$build_dir/bench/sweep"
  if [[ ! -x "$sweep_bin" ]]; then
    echo "error: $sweep_bin not found or not executable; build first" >&2
    exit 1
  fi
  "$sweep_bin" \
    --prefixes="${ABRR_SWEEP_PREFIXES:-1000}" \
    --jobs="$jobs" \
    --out-dir="$out_dir"
fi
