#!/usr/bin/env bash
# Runs the micro-benchmarks (BENCH_micro.json), the fault-resilience
# experiment (BENCH_fault.json + BENCH_fault_metrics.json), the
# parallel sweep (BENCH_sweep.json, which also proves --jobs=N output is
# byte-identical to --jobs=1), the serving-mode trial
# (BENCH_serve.json: lookups/sec, per-lookup and publish latency
# quantiles, reclamation stats, peak RSS) and the TCP front-end sweep
# (BENCH_frontend.json: connections x batch-size cells, RTT quantiles,
# wire bytes, slowdown vs the in-process read path).
#
# Usage: bench/run_bench.sh [--out-dir=DIR] [--jobs=N] [--preset=NAME]
#                           [build-dir] [extra google-benchmark flags...]
# Reports land in --out-dir (default: the repo root). --jobs=N sets the
# worker-thread count for the runner-backed benches (default: nproc).
# --preset=NAME resolves the build dir from CMakePresets.json (e.g.
# --preset=release -> ./build-release); otherwise the build dir defaults
# to ./build. Build it first with:
#   cmake -B build -S . -DCMAKE_BUILD_TYPE=Release && cmake --build build -j
# (or `cmake --preset release && cmake --build --preset release`).
#
# The script fails loudly on a missing/unconfigured build dir and on
# bench binaries older than the sources they were built from — stale
# binaries silently benchmark last week's code. Override the staleness
# check (only) with ABRR_ALLOW_STALE=1. Skip the (slower) fault
# experiment with ABRR_SKIP_FAULT_BENCH=1; skip the sweep with
# ABRR_SKIP_SWEEP_BENCH=1; skip the serving trial with
# ABRR_SKIP_SERVE_BENCH=1; skip the TCP front-end sweep with
# ABRR_SKIP_FRONTEND_BENCH=1.
set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"

out_dir="$repo_root"
jobs="$(nproc 2>/dev/null || echo 2)"
preset=""
while [[ $# -gt 0 ]]; do
  case "$1" in
    --out-dir=*) out_dir="${1#--out-dir=}"; shift ;;
    --jobs=*) jobs="${1#--jobs=}"; shift ;;
    --preset=*) preset="${1#--preset=}"; shift ;;
    *) break ;;
  esac
done
if [[ ! -d "$out_dir" ]]; then
  mkdir -p "$out_dir" || {
    echo "error: cannot create output dir '$out_dir'" >&2
    exit 1
  }
fi

if [[ -n "$preset" ]]; then
  if [[ $# -gt 0 && "${1:0:2}" != "--" ]]; then
    echo "error: pass either --preset=NAME or an explicit build dir, not both" >&2
    exit 1
  fi
  # Preset binaryDirs follow the ${sourceDir}/build-<name> convention
  # (see CMakePresets.json); verify the preset actually exists there so a
  # typo fails here, not as a confusing missing-directory error below.
  if ! grep -q "\"name\": \"$preset\"" "$repo_root/CMakePresets.json"; then
    echo "error: preset '$preset' not found in CMakePresets.json" >&2
    exit 1
  fi
  build_dir="$repo_root/build-$preset"
else
  build_dir="${1:-$repo_root/build}"
  shift || true
fi
if [[ ! -d "$build_dir" ]]; then
  echo "error: build dir '$build_dir' does not exist." >&2
  echo "Build it first:" >&2
  if [[ -n "$preset" ]]; then
    echo "  cmake --preset $preset && cmake --build --preset $preset -j" >&2
  else
    echo "  cmake -B '$build_dir' -S '$repo_root' -DCMAKE_BUILD_TYPE=Release" >&2
    echo "  cmake --build '$build_dir' -j" >&2
  fi
  exit 1
fi
if [[ ! -f "$build_dir/CMakeCache.txt" ]]; then
  echo "error: '$build_dir' exists but has no CMakeCache.txt — not a configured build dir" >&2
  exit 1
fi

# Stale-build guard: if the newest source/CMake file is newer than
# everything in the build dir, the build has not run since that edit and
# the bench binaries measure last week's code. (Per-binary mtime checks
# are too brittle: an up-to-date binary that doesn't depend on the
# edited file is never relinked, so it would look stale forever.)
check_build_current() {
  [[ "${ABRR_ALLOW_STALE:-0}" == "1" ]] && return 0
  local newest_src
  # `|| true`: head(1) closing the pipe early can SIGPIPE find/sort,
  # which pipefail would otherwise turn into a spurious abort.
  newest_src="$(find "$repo_root/src" "$repo_root/bench" \
      "$repo_root/CMakeLists.txt" -type f \
      \( -name '*.cpp' -o -name '*.h' -o -name 'CMakeLists.txt' \) \
      -printf '%T@ %p\n' 2>/dev/null | sort -nr | head -1 | cut -d' ' -f2- \
      || true)"
  [[ -z "$newest_src" ]] && return 0
  if [[ -z "$(find "$build_dir" -type f -newer "$newest_src" -print -quit)" ]]; then
    echo "error: '$build_dir' predates $newest_src" >&2
    echo "Rebuild it first, or set ABRR_ALLOW_STALE=1 to run anyway." >&2
    exit 1
  fi
}

check_fresh() {
  local bin="$1"
  if [[ ! -x "$bin" ]]; then
    echo "error: $bin not found or not executable; build first" >&2
    exit 1
  fi
}

check_build_current
bench_bin="$build_dir/bench/micro_bench"
check_fresh "$bench_bin"

# Preflight: the allocation-path tests (arena, scheduler event pool,
# interner trial scope) guard the machinery these benches measure, the
# wire suite guards the measured byte columns the reports now carry,
# the serve suite guards the snapshot/LPM read path the serving trial
# times, and the frontend suite guards the ABRR-Q protocol the TCP
# sweep drives — refuse to publish numbers from a build where any
# fails.
if command -v ctest >/dev/null 2>&1; then
  echo "preflight: ctest -L '(alloc|wire|serve|frontend)' in $build_dir"
  if ! ctest --test-dir "$build_dir" -L '(alloc|wire|serve|frontend)' --output-on-failure; then
    echo "error: preflight tests failed; not running benches" >&2
    exit 1
  fi
fi

out="$out_dir/BENCH_micro.json"
"$bench_bin" \
  --benchmark_min_time=0.2 \
  --json_out="$out" \
  "$@"
echo "wrote $out"

if [[ "${ABRR_SKIP_FAULT_BENCH:-0}" != "1" ]]; then
  fault_bin="$build_dir/bench/fault_resilience"
  check_fresh "$fault_bin"
  "$fault_bin" \
    --prefixes="${ABRR_FAULT_PREFIXES:-2000}" \
    --jobs="$jobs" \
    --json_out="$out_dir/BENCH_fault.json" \
    --metrics-out="$out_dir/BENCH_fault_metrics.json"
fi

if [[ "${ABRR_SKIP_SWEEP_BENCH:-0}" != "1" ]]; then
  sweep_bin="$build_dir/bench/sweep"
  check_fresh "$sweep_bin"
  "$sweep_bin" \
    --prefixes="${ABRR_SWEEP_PREFIXES:-1000}" \
    --jobs="$jobs" \
    --out-dir="$out_dir"
fi

if [[ "${ABRR_SKIP_SERVE_BENCH:-0}" != "1" ]]; then
  serve_bin="$build_dir/bench/serve_bench"
  check_fresh "$serve_bin"
  # One CPU here: readers time-slice the writer, so keep the default
  # reader count low and judge the read path by per-lookup latency
  # (see EXPERIMENTS.md), not aggregate throughput.
  "$serve_bin" \
    --prefixes="${ABRR_SERVE_PREFIXES:-2000}" \
    --readers="${ABRR_SERVE_READERS:-2}" \
    --json_out="$out_dir/BENCH_serve.json"
fi

if [[ "${ABRR_SKIP_FRONTEND_BENCH:-0}" != "1" ]]; then
  frontend_bin="$build_dir/bench/frontend_bench"
  check_fresh "$frontend_bin"
  # One CPU here: client threads and the server loop time-slice one
  # core, so judge the transport by per-batch RTT and by
  # slowdown_vs_inprocess at --connections=1 (see EXPERIMENTS.md).
  "$frontend_bin" \
    --prefixes="${ABRR_FRONTEND_PREFIXES:-2000}" \
    --json_out="$out_dir/BENCH_frontend.json"
fi
