#!/usr/bin/env bash
# Runs the micro-benchmarks and writes BENCH_micro.json at the repo root.
#
# Usage: bench/run_bench.sh [build-dir] [extra google-benchmark flags...]
# The build dir defaults to ./build; build it first with:
#   cmake -B build -S . -DCMAKE_BUILD_TYPE=Release && cmake --build build -j
set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
build_dir="${1:-$repo_root/build}"
shift || true

bench_bin="$build_dir/bench/micro_bench"
if [[ ! -x "$bench_bin" ]]; then
  echo "error: $bench_bin not found or not executable; build first" >&2
  exit 1
fi

out="$repo_root/BENCH_micro.json"
"$bench_bin" \
  --benchmark_min_time=0.2 \
  --json_out="$out" \
  "$@"
echo "wrote $out"
