#!/usr/bin/env bash
# Runs the micro-benchmarks (BENCH_micro.json) and the fault-resilience
# experiment (BENCH_fault.json), writing both at the repo root.
#
# Usage: bench/run_bench.sh [build-dir] [extra google-benchmark flags...]
# The build dir defaults to ./build; build it first with:
#   cmake -B build -S . -DCMAKE_BUILD_TYPE=Release && cmake --build build -j
# Skip the (slower) fault experiment with ABRR_SKIP_FAULT_BENCH=1.
set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
build_dir="${1:-$repo_root/build}"
shift || true

bench_bin="$build_dir/bench/micro_bench"
if [[ ! -x "$bench_bin" ]]; then
  echo "error: $bench_bin not found or not executable; build first" >&2
  exit 1
fi

out="$repo_root/BENCH_micro.json"
"$bench_bin" \
  --benchmark_min_time=0.2 \
  --json_out="$out" \
  "$@"
echo "wrote $out"

if [[ "${ABRR_SKIP_FAULT_BENCH:-0}" != "1" ]]; then
  fault_bin="$build_dir/bench/fault_resilience"
  if [[ ! -x "$fault_bin" ]]; then
    echo "error: $fault_bin not found or not executable; build first" >&2
    exit 1
  fi
  "$fault_bin" \
    --prefixes="${ABRR_FAULT_PREFIXES:-2000}" \
    --json_out="$repo_root/BENCH_fault.json"
fi
