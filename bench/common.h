// Shared experiment plumbing for the figure/table benches.
//
// Every bench models the paper's §4 testbed: the peering routers of a
// 13-cluster Tier-1 subset, 25 peer ASes at ~8 peering points each, and
// a synthetic RIB calibrated to 10.2 best AS-level routes per peer
// prefix. Absolute sizes are scaled (the paper used 315K peer prefixes;
// we default to a few thousand — pass --prefixes=N to change), so
// compare SHAPES against the paper, not absolute numbers.
//
// Flag parsing is runner::ArgParser: flags are declared once below,
// unknown flags fail loudly, and every bench shares the same spelling
// (--prefixes, --seed/--seeds, --jobs, --metrics-out, --out-dir, ...).
// Experiments themselves are declared as runner::ScenarioSpec values
// (see paper_spec) and executed by runner::ExperimentRunner.
#pragma once

#include <chrono>
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "harness/testbed.h"
#include "obs/metrics.h"
#include "runner/arg_parser.h"
#include "runner/runner.h"
#include "runner/scenario.h"
#include "serve/service.h"
#include "topo/topology.h"
#include "trace/regenerator.h"
#include "trace/update_trace.h"
#include "trace/workload.h"

namespace abrr::bench {

struct ExperimentConfig {
  std::size_t prefixes = 4000;
  std::uint32_t pops = 13;  // the paper's 13-cluster testbed subset
  std::uint32_t clients_per_pop = 8;
  std::uint32_t peer_ases = 25;
  std::uint32_t points_per_as = 8;
  std::uint64_t seed = 42;
  /// All seeds to run (multi-trial benches); defaults to {seed}.
  std::vector<std::uint64_t> seeds;
  /// Worker threads for ExperimentRunner-backed benches.
  std::size_t jobs = 1;
  /// Optional iBGP-mode filter ("fullmesh"/"tbrr"/"abrr"/"dual");
  /// empty = bench default set.
  std::string mode;
  double trace_seconds = 120.0;       // compressed two-week update feed
  double trace_events_per_second = 20.0;
  /// When non-empty, the bench dumps each testbed's aggregated metrics
  /// registry as a section of a JSON report here (see MetricsSink).
  std::string metrics_out;
  /// Directory for additional bench artifacts (BENCH_*.json).
  std::string out_dir = ".";

  /// Declares the shared flags on `p`. Benches with extra flags build
  /// their own parser, call this, add their flags, then parse.
  void register_flags(runner::ArgParser& p) {
    p.add("prefixes", "peer prefixes in the synthetic RIB", &prefixes);
    p.add("pops", "PoPs/clusters in the Tier-1 topology", &pops);
    p.add("seed", "base RNG seed", &seed);
    p.add("seeds", "comma-separated seed list (overrides --seed)", &seeds);
    p.add("jobs", "worker threads for runner-backed benches", &jobs);
    p.add("mode", "iBGP mode filter: fullmesh|tbrr|abrr|dual", &mode);
    p.add("trace-seconds", "update-replay length (simulated seconds)",
          &trace_seconds);
    p.add("metrics-out", "write per-run metrics-registry JSON here",
          &metrics_out);
    p.add("out-dir", "directory for bench artifacts", &out_dir);
  }

  /// Reconciles --seed/--seeds and validates --mode. Exits loudly on a
  /// bad mode name (parse() already exited on unknown flags).
  void finish() {
    if (seeds.empty()) {
      seeds = {seed};
    } else {
      seed = seeds.front();
    }
    if (!mode.empty() && !runner::parse_mode(mode)) {
      std::fprintf(stderr, "error: unknown --mode '%s' (expected "
                   "fullmesh|tbrr|abrr|dual)\n", mode.c_str());
      std::exit(2);
    }
  }

  static ExperimentConfig from_args(int argc, char** argv,
                                    const char* program) {
    ExperimentConfig cfg;
    runner::ArgParser parser{program};
    cfg.register_flags(parser);
    parser.parse(argc, argv);
    cfg.finish();
    return cfg;
  }
};

/// The §4 paper scenario for one (mode, num_aps) cell at this config's
/// scale. Benches tweak the returned spec (trace replay, faults, obs)
/// and hand a batch to runner::ExperimentRunner.
inline runner::ScenarioSpec paper_spec(ibgp::IbgpMode mode,
                                       std::size_t num_aps,
                                       const ExperimentConfig& cfg) {
  auto spec = runner::ScenarioSpec::paper(mode, num_aps, cfg.seed);
  spec.topology.pops = cfg.pops;
  spec.topology.clients_per_pop = cfg.clients_per_pop;
  spec.topology.peer_ases = cfg.peer_ases;
  spec.topology.points_per_as = cfg.points_per_as;
  spec.workload.prefixes = cfg.prefixes;
  spec.seeds = cfg.seeds.empty() ? std::vector<std::uint64_t>{cfg.seed}
                                 : cfg.seeds;
  return spec;
}

/// Collects the aggregated metrics-registry dump of every testbed a
/// bench runs and writes one JSON report on destruction:
///   {"bench": "...", "sections": [{"label": "...", "metrics": {...}}]}
/// With an empty path every call is a no-op, so benches can capture
/// unconditionally.
class MetricsSink {
 public:
  MetricsSink(std::string bench, std::string path)
      : bench_(std::move(bench)), path_(std::move(path)) {}

  MetricsSink(const MetricsSink&) = delete;
  MetricsSink& operator=(const MetricsSink&) = delete;

  bool enabled() const { return !path_.empty(); }

  /// Snapshots `bed`'s registry (counters/gauges summed over labels,
  /// histograms merged) under `label`. Call right after the run whose
  /// metrics the section should describe.
  void capture(const std::string& label, const harness::Testbed& bed) {
    capture(label, bed.metrics().to_json(/*aggregate=*/true));
  }

  /// Same, from an already-rendered registry dump (e.g.
  /// runner::TrialResult::metrics_json).
  void capture(const std::string& label, std::string metrics_json) {
    if (!enabled()) return;
    sections_.emplace_back(label, std::move(metrics_json));
  }

  ~MetricsSink() {
    if (!enabled() || sections_.empty()) return;
    FILE* f = std::fopen(path_.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "error: cannot write %s\n", path_.c_str());
      return;
    }
    std::fprintf(f, "{\"bench\": \"%s\", \"sections\": [\n", bench_.c_str());
    for (std::size_t i = 0; i < sections_.size(); ++i) {
      std::fprintf(f, "{\"label\": \"%s\", \"metrics\": %s}%s\n",
                   sections_[i].first.c_str(), sections_[i].second.c_str(),
                   i + 1 < sections_.size() ? "," : "");
    }
    std::fprintf(f, "]}\n");
    std::fclose(f);
    std::printf("wrote %s\n", path_.c_str());
  }

 private:
  std::string bench_;
  std::string path_;
  std::vector<std::pair<std::string, std::string>> sections_;
};

// --- serving-mode shared plumbing (serve_bench / frontend_bench) -----

/// Churn-plan flags common to the serving benches; both benches must
/// drive the SAME spec shape so their numbers compare.
struct ServingBenchParams {
  double churn_seconds = 10.0;
  double churn_events_per_second = 50.0;
  unsigned long chaos_events = 8;
  double publish_period_seconds = 0.25;

  void register_flags(runner::ArgParser& p) {
    p.add("churn-seconds", "virtual churn horizon per trial",
          &churn_seconds);
    p.add("churn-eps", "update-trace churn events per virtual second",
          &churn_events_per_second);
    p.add("chaos-events", "session/delay/loss fault events mixed in",
          &chaos_events);
    p.add("publish-period", "virtual seconds between publish attempts",
          &publish_period_seconds);
  }
};

/// One serving-mode scenario cell at this config's scale.
inline runner::ScenarioSpec serving_spec(ibgp::IbgpMode mode,
                                         const ExperimentConfig& cfg,
                                         const ServingBenchParams& params,
                                         const char* name_prefix) {
  runner::ScenarioSpec spec;
  spec.name = std::string{name_prefix} + "/" + runner::mode_name(mode);
  spec.mode = mode;
  spec.topology.pops = cfg.pops;
  spec.topology.clients_per_pop = cfg.clients_per_pop;
  spec.topology.peer_ases = cfg.peer_ases;
  spec.topology.points_per_as = cfg.points_per_as;
  spec.workload.prefixes = cfg.prefixes;
  spec.abrr.num_aps = 2;
  spec.serve.enabled = true;
  spec.serve.churn_seconds = params.churn_seconds;
  spec.serve.churn_events_per_second = params.churn_events_per_second;
  spec.serve.chaos_events = params.chaos_events;
  spec.serve.publish_period_seconds = params.publish_period_seconds;
  return spec;
}

/// Deterministic hit-biased probe plan over a service's stable views
/// (the LPM universe and router list are shared across every snapshot,
/// so requests are generated once, outside any pin — the idiom every
/// read-path driver uses).
inline std::vector<serve::LookupRequest> serving_probe_plan(
    serve::RouteService& service, std::size_t n, std::uint32_t salt = 0) {
  serve::RouteService::Reader reader{service};
  std::shared_ptr<const bgp::LpmIndex> index;
  std::vector<bgp::RouterId> routers;
  {
    const serve::RouteService::Reader::PinGuard pin{reader};
    index = pin->index;
    routers = pin->router_ids;
  }
  std::vector<serve::LookupRequest> reqs;
  reqs.reserve(n);
  std::uint32_t probe = 0x9e3779b9u + salt;
  for (std::size_t i = 0; i < n; ++i) {
    probe = probe * 2654435761u + 12345;
    const bgp::Ipv4Prefix& p = index->prefix_at(probe % index->size());
    reqs.push_back(
        serve::LookupRequest{routers[i % routers.size()],
                             p.first() | (probe & (p.last() - p.first()))});
  }
  return reqs;
}

/// What one loadgen fan-out measured: operation/lookup counts and the
/// per-operation latency histogram, merged across worker threads.
struct LoadgenResult {
  std::uint64_t ops = 0;      // completed operations (batches / RTTs)
  std::uint64_t lookups = 0;  // individual lookups answered
  std::uint64_t errors = 0;   // workers that died (exceptions)
  obs::Histogram latency_ns{obs::latency_buckets_ns()};
  double wall_ms = 0;

  void merge(const LoadgenResult& other) {
    ops += other.ops;
    lookups += other.lookups;
    errors += other.errors;
    latency_ns.merge(other.latency_ns);
  }
  double lookups_per_sec() const {
    return wall_ms > 0 ? static_cast<double>(lookups) / (wall_ms / 1e3) : 0;
  }
};

/// Runs `fn(thread_index)` on `threads` workers and merges their
/// results; wall_ms spans the whole fan-out (start to last join). A
/// worker that throws counts as one error and contributes nothing —
/// the caller decides whether errors fail the bench. One-CPU caveat:
/// workers time-slice a single core here, so judge added concurrency
/// by per-op latency, not wall speedup (see EXPERIMENTS.md).
template <typename Fn>
LoadgenResult run_loadgen_threads(std::size_t threads, Fn fn) {
  std::vector<LoadgenResult> results(threads);
  std::vector<std::thread> workers;
  workers.reserve(threads);
  const auto t_begin = std::chrono::steady_clock::now();
  for (std::size_t i = 0; i < threads; ++i) {
    workers.emplace_back([i, &results, &fn] {
      try {
        results[i] = fn(i);
      } catch (const std::exception& e) {
        std::fprintf(stderr, "loadgen worker %zu: %s\n", i, e.what());
        results[i] = LoadgenResult{};
        results[i].errors = 1;
      }
    });
  }
  for (std::thread& t : workers) t.join();
  LoadgenResult merged;
  for (const LoadgenResult& r : results) merged.merge(r);
  merged.wall_ms = std::chrono::duration<double, std::milli>(
                       std::chrono::steady_clock::now() - t_begin)
                       .count();
  return merged;
}

/// Minimal ordered JSON emitter for BENCH_*.json reports: tracks comma
/// state per nesting level so benches build reports field by field
/// instead of via one giant fprintf format string. Writes the document
/// (plus a trailing newline) on close()/destruction.
class JsonWriter {
 public:
  explicit JsonWriter(std::string path) : path_(std::move(path)) {}
  ~JsonWriter() { close(); }
  JsonWriter(const JsonWriter&) = delete;
  JsonWriter& operator=(const JsonWriter&) = delete;

  void begin_object(const char* key = nullptr) { open('{', key); }
  void end_object() { close_scope(); }
  void begin_array(const char* key = nullptr) { open('[', key); }
  void end_array() { close_scope(); }

  void field(const char* key, const char* v) {
    item(key);
    buf_ += '"';
    buf_ += v;
    buf_ += '"';
  }
  void field(const char* key, const std::string& v) { field(key, v.c_str()); }
  void field(const char* key, double v) {
    item(key);
    char tmp[32];
    std::snprintf(tmp, sizeof(tmp), "%.3f", v);
    buf_ += tmp;
  }
  void field(const char* key, std::uint64_t v) {
    item(key);
    char tmp[32];
    std::snprintf(tmp, sizeof(tmp), "%" PRIu64, v);
    buf_ += tmp;
  }
  void field(const char* key, unsigned v) {
    field(key, static_cast<std::uint64_t>(v));
  }
  void field(const char* key, long v) {
    item(key);
    char tmp[32];
    std::snprintf(tmp, sizeof(tmp), "%ld", v);
    buf_ += tmp;
  }
  /// 16-digit hex string — the fingerprint convention of BENCH_*.json.
  void field_hex(const char* key, std::uint64_t v) {
    item(key);
    char tmp[32];
    std::snprintf(tmp, sizeof(tmp), "\"%016" PRIx64 "\"", v);
    buf_ += tmp;
  }

  /// Writes the document; returns false (and complains) on I/O error.
  bool close() {
    if (path_.empty()) return true;
    FILE* f = std::fopen(path_.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "error: cannot write %s\n", path_.c_str());
      path_.clear();
      return false;
    }
    std::fputs(buf_.c_str(), f);
    std::fputc('\n', f);
    std::fclose(f);
    std::printf("wrote %s\n", path_.c_str());
    path_.clear();
    return true;
  }

 private:
  void item(const char* key) {
    if (!first_.empty() && !first_.back()) buf_ += ", ";
    if (!first_.empty()) first_.back() = false;
    if (key != nullptr) {
      buf_ += '"';
      buf_ += key;
      buf_ += "\": ";
    }
  }
  void open(char c, const char* key) {
    item(key);
    buf_ += c;
    first_.push_back(true);
    closers_.push_back(c == '{' ? '}' : ']');
  }
  void close_scope() {
    buf_ += closers_.back();
    closers_.pop_back();
    first_.pop_back();
  }

  std::string path_;
  std::string buf_;
  std::vector<bool> first_;
  std::vector<char> closers_;
};

inline topo::Topology make_paper_topology(const ExperimentConfig& cfg,
                                          sim::Rng& rng) {
  topo::TopologyParams tp;
  tp.pops = cfg.pops;
  tp.clients_per_pop = cfg.clients_per_pop;
  tp.peering_router_fraction = 1.0;  // §4: peering routers only
  tp.peer_ases = cfg.peer_ases;
  tp.peering_points_per_as = cfg.points_per_as;
  tp.peering_skew = 0.8;  // gateway-PoP concentration (§4.1 variance)
  return topo::make_tier1(tp, rng);
}

inline trace::Workload make_paper_workload(const ExperimentConfig& cfg,
                                           const topo::Topology& topology,
                                           sim::Rng& rng) {
  trace::WorkloadParams wp;
  wp.prefixes = cfg.prefixes;
  return trace::Workload::generate(wp, topology, rng);
}

inline harness::TestbedOptions paper_options(ibgp::IbgpMode mode,
                                             std::size_t num_aps,
                                             std::uint64_t seed) {
  harness::TestbedOptions o;
  o.mode = mode;
  o.num_aps = num_aps;
  o.arrs_per_ap = 2;  // paper: 2 ARRs per AP, 2 TRRs per cluster
  o.mrai = sim::sec(5);
  o.proc_delay = sim::msec(50);
  o.proc_per_update = sim::usec(20);
  o.latency_jitter = sim::msec(20);
  o.seed = seed;
  return o;
}

/// Loads the snapshot paced over `seconds` of simulated time and runs to
/// quiescence. Returns false on non-convergence.
inline bool load_snapshot(harness::Testbed& bed,
                          const trace::Workload& workload, double seconds) {
  trace::RouteRegenerator regen{bed.scheduler(), workload, bed.inject_fn()};
  regen.load_snapshot(0, sim::sec_f(seconds));
  return bed.run_to_quiescence(500'000'000);
}

/// Measured average best-AS-level routes per prefix over all sources,
/// for the Appendix A overlay.
inline double measured_bal(const trace::Workload& workload,
                           const topo::Topology& topology, sim::Rng& rng) {
  return workload
      .average_bal(topology, topology.peer_as_list.size(), rng)
      .all_sources;
}

}  // namespace abrr::bench
