// Shared experiment plumbing for the figure/table benches.
//
// Every bench models the paper's §4 testbed: the peering routers of a
// 13-cluster Tier-1 subset, 25 peer ASes at ~8 peering points each, and
// a synthetic RIB calibrated to 10.2 best AS-level routes per peer
// prefix. Absolute sizes are scaled (the paper used 315K peer prefixes;
// we default to a few thousand — pass --prefixes=N to change), so
// compare SHAPES against the paper, not absolute numbers.
//
// Flag parsing is runner::ArgParser: flags are declared once below,
// unknown flags fail loudly, and every bench shares the same spelling
// (--prefixes, --seed/--seeds, --jobs, --metrics-out, --out-dir, ...).
// Experiments themselves are declared as runner::ScenarioSpec values
// (see paper_spec) and executed by runner::ExperimentRunner.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <string>
#include <utility>
#include <vector>

#include "harness/testbed.h"
#include "runner/arg_parser.h"
#include "runner/runner.h"
#include "runner/scenario.h"
#include "topo/topology.h"
#include "trace/regenerator.h"
#include "trace/update_trace.h"
#include "trace/workload.h"

namespace abrr::bench {

struct ExperimentConfig {
  std::size_t prefixes = 4000;
  std::uint32_t pops = 13;  // the paper's 13-cluster testbed subset
  std::uint32_t clients_per_pop = 8;
  std::uint32_t peer_ases = 25;
  std::uint32_t points_per_as = 8;
  std::uint64_t seed = 42;
  /// All seeds to run (multi-trial benches); defaults to {seed}.
  std::vector<std::uint64_t> seeds;
  /// Worker threads for ExperimentRunner-backed benches.
  std::size_t jobs = 1;
  /// Optional iBGP-mode filter ("fullmesh"/"tbrr"/"abrr"/"dual");
  /// empty = bench default set.
  std::string mode;
  double trace_seconds = 120.0;       // compressed two-week update feed
  double trace_events_per_second = 20.0;
  /// When non-empty, the bench dumps each testbed's aggregated metrics
  /// registry as a section of a JSON report here (see MetricsSink).
  std::string metrics_out;
  /// Directory for additional bench artifacts (BENCH_*.json).
  std::string out_dir = ".";

  /// Declares the shared flags on `p`. Benches with extra flags build
  /// their own parser, call this, add their flags, then parse.
  void register_flags(runner::ArgParser& p) {
    p.add("prefixes", "peer prefixes in the synthetic RIB", &prefixes);
    p.add("pops", "PoPs/clusters in the Tier-1 topology", &pops);
    p.add("seed", "base RNG seed", &seed);
    p.add("seeds", "comma-separated seed list (overrides --seed)", &seeds);
    p.add("jobs", "worker threads for runner-backed benches", &jobs);
    p.add("mode", "iBGP mode filter: fullmesh|tbrr|abrr|dual", &mode);
    p.add("trace-seconds", "update-replay length (simulated seconds)",
          &trace_seconds);
    p.add("metrics-out", "write per-run metrics-registry JSON here",
          &metrics_out);
    p.add("out-dir", "directory for bench artifacts", &out_dir);
  }

  /// Reconciles --seed/--seeds and validates --mode. Exits loudly on a
  /// bad mode name (parse() already exited on unknown flags).
  void finish() {
    if (seeds.empty()) {
      seeds = {seed};
    } else {
      seed = seeds.front();
    }
    if (!mode.empty() && !runner::parse_mode(mode)) {
      std::fprintf(stderr, "error: unknown --mode '%s' (expected "
                   "fullmesh|tbrr|abrr|dual)\n", mode.c_str());
      std::exit(2);
    }
  }

  static ExperimentConfig from_args(int argc, char** argv,
                                    const char* program) {
    ExperimentConfig cfg;
    runner::ArgParser parser{program};
    cfg.register_flags(parser);
    parser.parse(argc, argv);
    cfg.finish();
    return cfg;
  }
};

/// The §4 paper scenario for one (mode, num_aps) cell at this config's
/// scale. Benches tweak the returned spec (trace replay, faults, obs)
/// and hand a batch to runner::ExperimentRunner.
inline runner::ScenarioSpec paper_spec(ibgp::IbgpMode mode,
                                       std::size_t num_aps,
                                       const ExperimentConfig& cfg) {
  auto spec = runner::ScenarioSpec::paper(mode, num_aps, cfg.seed);
  spec.topology.pops = cfg.pops;
  spec.topology.clients_per_pop = cfg.clients_per_pop;
  spec.topology.peer_ases = cfg.peer_ases;
  spec.topology.points_per_as = cfg.points_per_as;
  spec.workload.prefixes = cfg.prefixes;
  spec.seeds = cfg.seeds.empty() ? std::vector<std::uint64_t>{cfg.seed}
                                 : cfg.seeds;
  return spec;
}

/// Collects the aggregated metrics-registry dump of every testbed a
/// bench runs and writes one JSON report on destruction:
///   {"bench": "...", "sections": [{"label": "...", "metrics": {...}}]}
/// With an empty path every call is a no-op, so benches can capture
/// unconditionally.
class MetricsSink {
 public:
  MetricsSink(std::string bench, std::string path)
      : bench_(std::move(bench)), path_(std::move(path)) {}

  MetricsSink(const MetricsSink&) = delete;
  MetricsSink& operator=(const MetricsSink&) = delete;

  bool enabled() const { return !path_.empty(); }

  /// Snapshots `bed`'s registry (counters/gauges summed over labels,
  /// histograms merged) under `label`. Call right after the run whose
  /// metrics the section should describe.
  void capture(const std::string& label, const harness::Testbed& bed) {
    capture(label, bed.metrics().to_json(/*aggregate=*/true));
  }

  /// Same, from an already-rendered registry dump (e.g.
  /// runner::TrialResult::metrics_json).
  void capture(const std::string& label, std::string metrics_json) {
    if (!enabled()) return;
    sections_.emplace_back(label, std::move(metrics_json));
  }

  ~MetricsSink() {
    if (!enabled() || sections_.empty()) return;
    FILE* f = std::fopen(path_.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "error: cannot write %s\n", path_.c_str());
      return;
    }
    std::fprintf(f, "{\"bench\": \"%s\", \"sections\": [\n", bench_.c_str());
    for (std::size_t i = 0; i < sections_.size(); ++i) {
      std::fprintf(f, "{\"label\": \"%s\", \"metrics\": %s}%s\n",
                   sections_[i].first.c_str(), sections_[i].second.c_str(),
                   i + 1 < sections_.size() ? "," : "");
    }
    std::fprintf(f, "]}\n");
    std::fclose(f);
    std::printf("wrote %s\n", path_.c_str());
  }

 private:
  std::string bench_;
  std::string path_;
  std::vector<std::pair<std::string, std::string>> sections_;
};

inline topo::Topology make_paper_topology(const ExperimentConfig& cfg,
                                          sim::Rng& rng) {
  topo::TopologyParams tp;
  tp.pops = cfg.pops;
  tp.clients_per_pop = cfg.clients_per_pop;
  tp.peering_router_fraction = 1.0;  // §4: peering routers only
  tp.peer_ases = cfg.peer_ases;
  tp.peering_points_per_as = cfg.points_per_as;
  tp.peering_skew = 0.8;  // gateway-PoP concentration (§4.1 variance)
  return topo::make_tier1(tp, rng);
}

inline trace::Workload make_paper_workload(const ExperimentConfig& cfg,
                                           const topo::Topology& topology,
                                           sim::Rng& rng) {
  trace::WorkloadParams wp;
  wp.prefixes = cfg.prefixes;
  return trace::Workload::generate(wp, topology, rng);
}

inline harness::TestbedOptions paper_options(ibgp::IbgpMode mode,
                                             std::size_t num_aps,
                                             std::uint64_t seed) {
  harness::TestbedOptions o;
  o.mode = mode;
  o.num_aps = num_aps;
  o.arrs_per_ap = 2;  // paper: 2 ARRs per AP, 2 TRRs per cluster
  o.mrai = sim::sec(5);
  o.proc_delay = sim::msec(50);
  o.proc_per_update = sim::usec(20);
  o.latency_jitter = sim::msec(20);
  o.seed = seed;
  return o;
}

/// Loads the snapshot paced over `seconds` of simulated time and runs to
/// quiescence. Returns false on non-convergence.
inline bool load_snapshot(harness::Testbed& bed,
                          const trace::Workload& workload, double seconds) {
  trace::RouteRegenerator regen{bed.scheduler(), workload, bed.inject_fn()};
  regen.load_snapshot(0, sim::sec_f(seconds));
  return bed.run_to_quiescence(500'000'000);
}

/// Measured average best-AS-level routes per prefix over all sources,
/// for the Appendix A overlay.
inline double measured_bal(const trace::Workload& workload,
                           const topo::Topology& topology, sim::Rng& rng) {
  return workload
      .average_bal(topology, topology.peer_as_list.size(), rng)
      .all_sources;
}

}  // namespace abrr::bench
