// Ablation: uniform vs prefix-balanced Address Partitions.
//
// §4.1: with equal-size address ranges the per-ARR RIB sizes vary by as
// much as 50% around the mean because real prefixes clump in allocated
// blocks; the paper notes ISPs can control this by choosing ranges with
// equal prefix shares. This bench quantifies the spread both ways.
#include <cstdio>
#include <memory>

#include "common.h"

int main(int argc, char** argv) {
  using namespace abrr;
  const auto cfg = bench::ExperimentConfig::from_args(argc, argv, "ablation_ap_balancing");
  sim::Rng rng{cfg.seed};
  const auto topology = bench::make_paper_topology(cfg, rng);
  const auto workload = bench::make_paper_workload(cfg, topology, rng);
  const auto prefixes = workload.prefixes();

  std::printf("# Ablation: AP balancing (%zu prefixes, 8 APs, 2 ARRs each)\n\n",
              cfg.prefixes);
  std::printf("%-10s %9s %9s %9s %11s | %9s %9s %9s %11s\n", "scheme",
              "in-min", "in-avg", "in-max", "in-spread%", "out-min",
              "out-avg", "out-max", "out-spread%");

  bench::MetricsSink sink{"ablation_ap_balancing", cfg.metrics_out};
  const auto run = [&](bool balanced) {
    auto options = bench::paper_options(ibgp::IbgpMode::kAbrr, 8, cfg.seed);
    options.balanced_aps = balanced;
    auto bed =
        std::make_unique<harness::Testbed>(topology, options, prefixes);
    if (!bench::load_snapshot(*bed, workload, 30.0)) {
      std::printf("%-10s DID NOT CONVERGE\n", balanced ? "balanced" : "uniform");
      return;
    }
    sink.capture(balanced ? "balanced" : "uniform", *bed);
    const auto in = bed->rr_rib_in();
    const auto out = bed->rr_rib_out();
    const auto spread = [](const harness::Aggregate& a) {
      return a.avg > 0 ? 100.0 * (a.max - a.min) / a.avg : 0.0;
    };
    std::printf("%-10s %9.0f %9.0f %9.0f %11.1f | %9.0f %9.0f %9.0f %11.1f\n",
                balanced ? "balanced" : "uniform", in.min, in.avg, in.max,
                spread(in), out.min, out.avg, out.max, spread(out));
  };

  run(false);
  run(true);
  std::printf("\n# expectation: balanced partitions collapse the RIB-Out\n");
  std::printf("# spread; the RIB-In spread shrinks too but keeps the\n");
  std::printf("# client-role (unmanaged) share, which is AP-independent.\n");
  return 0;
}
