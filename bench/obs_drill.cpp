// Seeded observability fault drill: one deterministic chaos run with
// the full observability stack enabled, exporting every src/obs
// artifact for offline inspection:
//
//   <out-dir>/metrics.json  aggregated registry dump (counters, gauges,
//                           histograms with p50/p95/p99)
//   <out-dir>/series.csv    RIB/queue/session gauges sampled on the
//                           virtual-time cadence
//   <out-dir>/trace.json    chrome://tracing timeline of the drill
//                           (load via chrome://tracing or Perfetto)
//   <out-dir>/capture.pcap  every control-plane message the drill sent,
//                           as RFC 4271 wire bytes in a classic pcap
//                           (open in Wireshark; sessions reassemble as
//                           BGP streams on port 179)
//
// The run is pure virtual time: two invocations with the same --seed
// produce bit-identical files. bench/export_trace.sh wraps this binary.
#include <cstdio>
#include <string>

#include "common.h"
#include "fault/injector.h"
#include "fault/schedule.h"

int main(int argc, char** argv) {
  using namespace abrr;
  auto cfg = bench::ExperimentConfig::from_args(argc, argv, "obs_drill");
  // A drill wants a small bed: the artifacts are for reading, not for
  // scale. Override only values the user left at their defaults.
  if (cfg.prefixes == 4000) cfg.prefixes = 200;
  if (cfg.pops == 13) cfg.pops = 3;
  const std::string& out_dir = cfg.out_dir;

  sim::Rng rng{cfg.seed};
  const auto topology = bench::make_paper_topology(cfg, rng);
  const auto workload = bench::make_paper_workload(cfg, topology, rng);
  const auto prefixes = workload.prefixes();

  auto options = bench::paper_options(ibgp::IbgpMode::kAbrr, 2, cfg.seed);
  options.hold_time = sim::sec(3);  // arm failure detection
  options.obs.enabled = true;
  options.obs.sample_period = sim::msec(500);
  options.obs.pcap_frames = std::size_t{1} << 18;  // keep the whole drill
  harness::Testbed bed{topology, options, prefixes};

  trace::RouteRegenerator regen{bed.scheduler(), workload, bed.inject_fn()};
  regen.load_snapshot(0, sim::sec(10));
  // Hold timers keep the queue alive forever, so run to a deadline.
  bed.run_until(sim::sec(30));

  fault::ChaosParams chaos;
  chaos.events = 12;
  chaos.start = bed.scheduler().now() + sim::sec(1);
  chaos.horizon = bed.scheduler().now() + sim::sec(40);
  sim::Rng chaos_rng{cfg.seed + 99};
  const auto sessions = bed.network().sessions();
  const auto schedule =
      fault::FaultSchedule::chaos(chaos, bed.all_ids(), sessions, chaos_rng);

  fault::FaultInjector injector{bed, schedule};
  injector.set_resync(fault::make_workload_resync(bed, regen));
  injector.arm();
  bed.run_until(chaos.horizon + sim::sec(30));

  const std::string metrics_path = out_dir + "/metrics.json";
  const std::string series_path = out_dir + "/series.csv";
  const std::string trace_path = out_dir + "/trace.json";
  const std::string pcap_path = out_dir + "/capture.pcap";
  bed.metrics().write_json(metrics_path, /*aggregate=*/true);
  bed.sampler()->write_csv(series_path);
  bed.tracer()->write_chrome_json(trace_path);
  bed.tracer()->write_pcap(pcap_path);

  std::printf("obs drill: seed=%llu faults=%zu (fired=%llu repairs=%llu) "
              "sim-time=%.1fs\n",
              static_cast<unsigned long long>(cfg.seed), schedule.size(),
              static_cast<unsigned long long>(injector.counters().events_fired),
              static_cast<unsigned long long>(injector.counters().repairs),
              sim::to_seconds(bed.scheduler().now()));
  std::printf("  metrics: %zu names -> %s\n", bed.metrics().name_count(),
              metrics_path.c_str());
  std::printf("  series:  %zu rows x %zu gauges -> %s\n",
              bed.sampler()->rows(), bed.sampler()->columns(),
              series_path.c_str());
  std::printf("  trace:   %zu events (%zu dropped) -> %s\n",
              bed.tracer()->size(), bed.tracer()->dropped(),
              trace_path.c_str());
  const obs::PacketCapture* cap = bed.tracer()->packets();
  std::printf("  pcap:    %zu frames (%llu dropped, %zu payload bytes) -> "
              "%s\n",
              cap->size(), static_cast<unsigned long long>(cap->dropped()),
              cap->payload_bytes(), pcap_path.c_str());
  return 0;
}
