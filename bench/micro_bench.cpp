// Micro-benchmarks (google-benchmark) for the hot paths of the BGP
// substrate: decision process, best-AS-level filtering, RIB operations,
// prefix-trie longest match, scheduler throughput, SPF, and a small
// end-to-end convergence run.
//
// Benchmarks measuring an optimized path have a `_Legacy` twin running
// the pre-optimization strategy (value-semantics elimination, uncached
// hashing, map-backed RIB storage) so a single run quantifies each
// speedup. Pass --json_out=PATH to also write a machine-readable report
// with the computed fast-vs-legacy ratios (see bench/run_bench.sh).
#include <benchmark/benchmark.h>

#include <algorithm>
#include <cstdio>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "bgp/attrs_intern.h"
#include "bgp/decision.h"
#include "bgp/flat_lpm.h"
#include "bgp/prefix_trie.h"
#include "bgp/rib.h"
#include "common.h"
#include "igp/spf.h"
#include "obs/metrics.h"
#include "obs/tracer.h"
#include "sim/arena.h"
#include "sim/random.h"
#include "sim/scheduler.h"
#include "topo/topology.h"
#include "wire/codec.h"

namespace {

using namespace abrr;
using bgp::Ipv4Prefix;
using bgp::Route;
using bgp::RouteBuilder;

std::vector<Route> make_candidates(std::size_t n, sim::Rng& rng) {
  std::vector<Route> out;
  const Ipv4Prefix pfx = Ipv4Prefix::parse("10.0.0.0/8");
  for (std::size_t i = 0; i < n; ++i) {
    RouteBuilder b{pfx};
    b.path_id(static_cast<bgp::PathId>(i + 1))
        .local_pref(100)
        .as_path({static_cast<bgp::Asn>(7000 + i % 8), 64512,
                  static_cast<bgp::Asn>(30000 + i % 4)})
        .med(static_cast<std::uint32_t>(10 * (i % 4)))
        .next_hop(static_cast<bgp::RouterId>(i + 1))
        .learned_from(static_cast<bgp::RouterId>(100 + i),
                      bgp::LearnedVia::kIbgp);
    out.push_back(b.build());
  }
  (void)rng;
  return out;
}

// ---------------------------------------------------------------------
// Legacy reference implementations: the strategies the hot paths used
// before the pointer-scratch / interning / dense-index overhaul. Kept
// here (not in the library) purely as benchmark baselines.
// ---------------------------------------------------------------------
namespace legacy {

template <typename Key>
void keep_min(std::vector<Route>& routes, Key key) {
  if (routes.size() <= 1) return;
  auto best = key(routes.front());
  for (std::size_t i = 1; i < routes.size(); ++i) {
    best = std::min(best, key(routes[i]));
  }
  std::erase_if(routes, [&](const Route& r) { return key(r) != best; });
}

// Value-semantics best-AS-level: copies every candidate, eliminates by
// erase_if over Route objects, and groups MED minima in a std::map.
std::vector<Route> best_as_level_routes(std::span<const Route> candidates,
                                        const bgp::DecisionConfig& cfg) {
  std::vector<Route> out;
  out.reserve(candidates.size());
  for (const Route& r : candidates) {
    if (r.valid()) out.push_back(r);
  }
  keep_min(out, [](const Route& r) {
    return -static_cast<std::int64_t>(r.attrs->local_pref);
  });
  keep_min(out, [](const Route& r) { return r.attrs->as_path.length(); });
  keep_min(out, [](const Route& r) { return static_cast<int>(r.attrs->origin); });
  if (out.size() <= 1 || cfg.ignore_med) return out;
  if (cfg.always_compare_med) {
    keep_min(out, [&](const Route& r) { return cfg.med_of(r); });
    return out;
  }
  std::map<bgp::Asn, std::uint32_t> group_min;
  for (const Route& r : out) {
    const bgp::Asn as = r.neighbor_as();
    const std::uint32_t med = cfg.med_of(r);
    const auto it = group_min.find(as);
    if (it == group_min.end()) {
      group_min.emplace(as, med);
    } else {
      it->second = std::min(it->second, med);
    }
  }
  std::erase_if(out, [&](const Route& r) {
    return cfg.med_of(r) != group_min.at(r.neighbor_as());
  });
  return out;
}

}  // namespace legacy

void BM_SelectBest(benchmark::State& state) {
  sim::Rng rng{1};
  const auto candidates =
      make_candidates(static_cast<std::size_t>(state.range(0)), rng);
  std::vector<const Route*> ptrs;
  for (const Route& r : candidates) ptrs.push_back(&r);
  const bgp::IgpDistanceFn igp = [](bgp::RouterId nh) -> std::int64_t {
    return nh * 7 % 97;
  };
  std::vector<const Route*> scratch;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        bgp::select_best_from(ptrs, 1, igp, bgp::DecisionConfig{}, scratch));
  }
}
BENCHMARK(BM_SelectBest)->Arg(2)->Arg(10)->Arg(30)->Arg(100);

void BM_BestAsLevel(benchmark::State& state) {
  sim::Rng rng{1};
  const auto candidates =
      make_candidates(static_cast<std::size_t>(state.range(0)), rng);
  std::vector<const Route*> ptrs;
  for (const Route& r : candidates) ptrs.push_back(&r);
  std::vector<const Route*> out;
  for (auto _ : state) {
    bgp::best_as_level_into(ptrs, bgp::DecisionConfig{}, out);
    benchmark::DoNotOptimize(out.data());
  }
}
BENCHMARK(BM_BestAsLevel)->Arg(10)->Arg(30)->Arg(100);

void BM_BestAsLevel_Legacy(benchmark::State& state) {
  sim::Rng rng{1};
  const auto candidates =
      make_candidates(static_cast<std::size_t>(state.range(0)), rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        legacy::best_as_level_routes(candidates, bgp::DecisionConfig{}));
  }
}
BENCHMARK(BM_BestAsLevel_Legacy)->Arg(10)->Arg(30)->Arg(100);

// The speaker's real Adj-RIB-In access pattern: many prefixes with a
// handful of paths each, and every announce/withdraw followed by a
// routes_for() read when the decision pipeline re-runs the prefix.
void run_adj_rib_in(benchmark::State& state, bool dense) {
  constexpr std::size_t kPrefixes = 256;
  constexpr std::size_t kPathsPerPrefix = 4;
  std::vector<Ipv4Prefix> prefixes;
  std::vector<Route> routes;
  for (std::size_t p = 0; p < kPrefixes; ++p) {
    const Ipv4Prefix pfx{
        static_cast<bgp::Ipv4Addr>(0x0A000000u + (p << 8)), 24};
    prefixes.push_back(pfx);
    for (std::size_t i = 0; i < kPathsPerPrefix; ++i) {
      RouteBuilder b{pfx};
      b.path_id(static_cast<bgp::PathId>(i + 1))
          .local_pref(100)
          .as_path({static_cast<bgp::Asn>(7000 + i), 64512})
          .next_hop(static_cast<bgp::RouterId>(i + 1))
          .learned_from(static_cast<bgp::RouterId>(100 + i),
                        bgp::LearnedVia::kIbgp);
      routes.push_back(b.build());
    }
  }
  bgp::AdjRibIn rib;
  if (dense) {
    auto index = std::make_shared<bgp::PrefixIndex>();
    for (const auto& pfx : prefixes) index->add(pfx);
    rib.set_prefix_index(std::move(index));
  }
  std::vector<const Route*> scratch;
  for (auto _ : state) {
    for (const auto& r : routes) {
      rib.announce(r);
      if (dense) {
        rib.routes_for(r.prefix, scratch);
        benchmark::DoNotOptimize(scratch.data());
      } else {
        // Pre-overhaul read path: materialize a fresh copy per lookup.
        auto copy = rib.routes_for(r.prefix);
        benchmark::DoNotOptimize(copy.data());
      }
    }
    for (const auto& r : routes) {
      rib.withdraw(r.learned_from, r.prefix, r.path_id);
    }
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(2 * routes.size()));
}

void BM_AdjRibInAnnounceWithdraw(benchmark::State& state) {
  run_adj_rib_in(state, /*dense=*/true);
}
BENCHMARK(BM_AdjRibInAnnounceWithdraw);

void BM_AdjRibInAnnounceWithdraw_Legacy(benchmark::State& state) {
  bgp::ScopedInterningDisabled no_intern;
  run_adj_rib_in(state, /*dense=*/false);
}
BENCHMARK(BM_AdjRibInAnnounceWithdraw_Legacy);

// Shared random table for the LPM benchmarks below: `n` prefixes drawn
// with the same generator the trie bench has always used, so the
// 10000-entry rows stay comparable across report history and the
// 416000-entry rows model a paper-scale full table (~416K prefixes).
std::vector<std::pair<Ipv4Prefix, int>> lpm_bench_table(int n) {
  sim::Rng rng{3};
  std::vector<std::pair<Ipv4Prefix, int>> entries;
  entries.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    const auto addr =
        static_cast<bgp::Ipv4Addr>(rng.uniform_int(0, 0xDF000000));
    entries.emplace_back(
        Ipv4Prefix{addr,
                   static_cast<std::uint8_t>(rng.uniform_int(12, 24))},
        i);
  }
  return entries;
}

// Probes per timed iteration. Sub-50ns lookups drown in per-iteration
// harness bookkeeping, so every LPM benchmark below times a small batch
// (identical on both sides of each twin pair, so the reported ratios
// are probe-for-probe honest); items_per_second is per single lookup.
constexpr int kLpmProbeBatch = 16;

void BM_TrieLongestMatch(benchmark::State& state) {
  bgp::PrefixTrie<int> trie;
  for (const auto& [prefix, value] :
       lpm_bench_table(static_cast<int>(state.range(0)))) {
    trie.insert(prefix, value);
  }
  bgp::Ipv4Addr probe = 0x0A000000;
  for (auto _ : state) {
    std::uintptr_t acc = 0;
    for (int i = 0; i < kLpmProbeBatch; ++i) {
      probe = probe * 2654435761u + 12345;
      const auto hit = trie.longest_match(probe);
      acc += hit ? reinterpret_cast<std::uintptr_t>(hit->second) : 0;
    }
    benchmark::DoNotOptimize(acc);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          kLpmProbeBatch);
}
BENCHMARK(BM_TrieLongestMatch)->Arg(10000)->Arg(416000);

// The serving read path (16/8 DIR table, src/bgp/flat_lpm.h) against
// the trie on the SAME table and the SAME probe sequence — the honest
// apples-to-apples comparison. The `_Legacy` twin is the trie so the
// JSON report computes the flat-vs-trie speedup per table size.
void BM_FlatLpmLongestMatch(benchmark::State& state) {
  const bgp::FlatLpm<int> lpm{
      lpm_bench_table(static_cast<int>(state.range(0)))};
  bgp::Ipv4Addr probe = 0x0A000000;
  for (auto _ : state) {
    std::uintptr_t acc = 0;
    for (int i = 0; i < kLpmProbeBatch; ++i) {
      probe = probe * 2654435761u + 12345;
      const auto hit = lpm.longest_match(probe);
      acc += hit ? reinterpret_cast<std::uintptr_t>(hit->second) : 0;
    }
    benchmark::DoNotOptimize(acc);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          kLpmProbeBatch);
  state.counters["index_bytes"] =
      static_cast<double>(lpm.index().bytes());
}
BENCHMARK(BM_FlatLpmLongestMatch)->Arg(10000)->Arg(416000);

void BM_FlatLpmLongestMatch_Legacy(benchmark::State& state) {
  bgp::PrefixTrie<int> trie;
  for (const auto& [prefix, value] :
       lpm_bench_table(static_cast<int>(state.range(0)))) {
    trie.insert(prefix, value);
  }
  bgp::Ipv4Addr probe = 0x0A000000;
  for (auto _ : state) {
    std::uintptr_t acc = 0;
    for (int i = 0; i < kLpmProbeBatch; ++i) {
      probe = probe * 2654435761u + 12345;
      const auto hit = trie.longest_match(probe);
      acc += hit ? reinterpret_cast<std::uintptr_t>(hit->second) : 0;
    }
    benchmark::DoNotOptimize(acc);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          kLpmProbeBatch);
}
BENCHMARK(BM_FlatLpmLongestMatch_Legacy)->Arg(10000)->Arg(416000);

void BM_SchedulerThroughput(benchmark::State& state) {
  std::uint64_t pool_capacity = 0;
  for (auto _ : state) {
    sim::Scheduler sched;
    int counter = 0;
    for (int i = 0; i < 1000; ++i) {
      sched.schedule_at(i, [&counter] { ++counter; });
    }
    sched.run_to_quiescence();
    benchmark::DoNotOptimize(counter);
    pool_capacity = sched.pool_capacity();
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          1000);
  state.counters["pool_capacity"] = static_cast<double>(pool_capacity);
}
BENCHMARK(BM_SchedulerThroughput);

// The trial allocation model in isolation: 1000 PathAttrs blocks built
// per iteration, then the whole batch torn down at once. The arena path
// bumps a slab pointer and reuses the same chunks across resets; the
// legacy twin is the strategy interned attributes used before —
// one heap allocation (and one free) per block via shared_ptr.
void BM_ArenaAlloc(benchmark::State& state) {
  sim::Arena arena;
  for (auto _ : state) {
    for (int i = 0; i < 1000; ++i) {
      bgp::PathAttrs* attrs = arena.create<bgp::PathAttrs>();
      attrs->local_pref = static_cast<std::uint32_t>(i);
      benchmark::DoNotOptimize(attrs);
    }
    arena.reset();
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          1000);
  state.counters["bytes_reserved"] =
      static_cast<double>(arena.bytes_reserved());
  state.counters["chunks"] = static_cast<double>(arena.chunk_count());
}
BENCHMARK(BM_ArenaAlloc);

void BM_ArenaAlloc_Legacy(benchmark::State& state) {
  std::vector<std::shared_ptr<const bgp::PathAttrs>> blocks;
  blocks.reserve(1000);
  for (auto _ : state) {
    for (int i = 0; i < 1000; ++i) {
      auto attrs = std::make_shared<bgp::PathAttrs>();
      attrs->local_pref = static_cast<std::uint32_t>(i);
      blocks.push_back(std::move(attrs));
      benchmark::DoNotOptimize(blocks.back());
    }
    blocks.clear();
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          1000);
}
BENCHMARK(BM_ArenaAlloc_Legacy);

// Observability hot paths: these run inside every update receive /
// decision / transmit, so the handle dereference + add must stay cheap
// enough to leave enabled unconditionally.
void BM_ObsCounterInc(benchmark::State& state) {
  obs::MetricsRegistry registry;
  obs::Counter* c = registry.counter(
      "bm.counter", obs::Labels{{"speaker", "1"}, {"role", "rr"}});
  for (auto _ : state) {
    c->inc();
    benchmark::DoNotOptimize(*c);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_ObsCounterInc);

void BM_ObsHistogramRecord(benchmark::State& state) {
  obs::MetricsRegistry registry;
  obs::Histogram* h = registry.histogram("bm.hist", obs::size_buckets());
  std::uint64_t v = 1;
  for (auto _ : state) {
    h->record(v);
    v = (v * 5 + 3) & 0x3ffff;  // spread across buckets
    benchmark::DoNotOptimize(*h);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_ObsHistogramRecord);

void BM_ObsTracerRecord(benchmark::State& state) {
  sim::Scheduler sched;
  obs::Tracer tracer{sched, /*capacity=*/1 << 12};
  std::uint32_t actor = 0;
  for (auto _ : state) {
    tracer.record(obs::TraceEventKind::kUpdateRx, actor++, 7, 42);
    benchmark::DoNotOptimize(tracer);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_ObsTracerRecord);

void BM_SpfTier1(benchmark::State& state) {
  sim::Rng rng{4};
  topo::TopologyParams tp;
  tp.pops = 13;
  tp.clients_per_pop = 8;
  const auto topology = topo::make_tier1(tp, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        igp::compute_spf(topology.graph, topology.clients.front().id));
  }
}
BENCHMARK(BM_SpfTier1);

void BM_RouteSetHash(benchmark::State& state) {
  sim::Rng rng{5};
  const auto routes = make_candidates(10, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(bgp::route_set_hash(routes));
  }
}
BENCHMARK(BM_RouteSetHash);

void BM_RouteSetHash_Legacy(benchmark::State& state) {
  sim::Rng rng{5};
  const auto routes = make_candidates(10, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(bgp::route_set_hash_uncached(routes));
  }
}
BENCHMARK(BM_RouteSetHash_Legacy);

// Wire codec hot paths: Network::send runs one of these per message.
// The sizer is the per-send cost (cached attr-block lengths, so steady
// state is arithmetic); the encoder only runs when packet capture is on.
bgp::UpdateMessage make_wire_message(std::size_t n_routes) {
  sim::Rng rng{6};
  const auto candidates = make_candidates(n_routes, rng);
  bgp::UpdateMessage m;
  m.prefix = Ipv4Prefix::parse("10.0.0.0/8");
  m.full_set = true;
  m.announce.assign(candidates.begin(), candidates.end());
  return m;
}

void BM_EncodeUpdate(benchmark::State& state) {
  const auto m = make_wire_message(static_cast<std::size_t>(state.range(0)));
  wire::Encoder enc;
  for (auto _ : state) {
    benchmark::DoNotOptimize(enc.encode(m).size());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_EncodeUpdate)->Arg(1)->Arg(10)->Arg(100);

void BM_WireSize(benchmark::State& state) {
  const auto m = make_wire_message(static_cast<std::size_t>(state.range(0)));
  wire::WireSizer sizer;
  for (auto _ : state) {
    benchmark::DoNotOptimize(sizer.message_size(m));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
  state.counters["cached_blocks"] =
      static_cast<double>(sizer.cached_blocks());
}
BENCHMARK(BM_WireSize)->Arg(1)->Arg(10)->Arg(100);

// ---------------------------------------------------------------------
// End-to-end: a small TBRR deployment converging on an initial snapshot
// (testbed construction + paced injection + run to quiescence). The
// legacy twin runs the identical scenario on the map-fallback storage
// with attribute interning off.
// ---------------------------------------------------------------------
struct ConvergenceScenario {
  topo::Topology topology;
  trace::Workload workload;
  std::vector<Ipv4Prefix> prefixes;
};

const ConvergenceScenario& convergence_scenario() {
  static const ConvergenceScenario* scenario = [] {
    bench::ExperimentConfig cfg;
    cfg.prefixes = 300;
    cfg.pops = 4;
    cfg.clients_per_pop = 4;
    cfg.peer_ases = 8;
    cfg.points_per_as = 4;
    cfg.seed = 42;
    sim::Rng rng{cfg.seed};
    auto topology = bench::make_paper_topology(cfg, rng);
    auto workload = bench::make_paper_workload(cfg, topology, rng);
    auto* s = new ConvergenceScenario{std::move(topology),
                                      std::move(workload),
                                      {}};
    s->prefixes = s->workload.prefixes();
    return s;
  }();
  return *scenario;
}

void run_convergence(benchmark::State& state, bool fast) {
  const ConvergenceScenario& s = convergence_scenario();
  auto options = bench::paper_options(ibgp::IbgpMode::kTbrr, 4, 42);
  options.use_prefix_index = fast;
  for (auto _ : state) {
    harness::Testbed bed{s.topology, options, s.prefixes};
    const bool converged = bench::load_snapshot(bed, s.workload, 5.0);
    if (!converged) state.SkipWithError("did not converge");
    benchmark::DoNotOptimize(bed.rr_rib_in());
  }
}

void BM_TestbedConvergence(benchmark::State& state) {
  run_convergence(state, /*fast=*/true);
}
BENCHMARK(BM_TestbedConvergence)->Unit(benchmark::kMillisecond);

void BM_TestbedConvergence_Legacy(benchmark::State& state) {
  bgp::ScopedInterningDisabled no_intern;
  run_convergence(state, /*fast=*/false);
}
BENCHMARK(BM_TestbedConvergence_Legacy)->Unit(benchmark::kMillisecond);

// ---------------------------------------------------------------------
// JSON reporting: console output stays the default; --json_out=PATH
// additionally writes {benchmarks: [...], speedups: [...]} where each
// speedup pairs a benchmark with its _Legacy twin.
// ---------------------------------------------------------------------
class CapturingReporter : public benchmark::ConsoleReporter {
 public:
  struct Row {
    std::string name;
    double real_ns = 0;
    std::int64_t iterations = 0;
    // User counters (e.g. pool_capacity, bytes_reserved), sorted by name.
    std::vector<std::pair<std::string, double>> counters;
  };

  void ReportRuns(const std::vector<Run>& runs) override {
    for (const Run& run : runs) {
      if (run.error_occurred) continue;
      Row row;
      row.name = run.benchmark_name();
      // Normalize to nanoseconds regardless of the per-benchmark unit
      // (GetAdjustedRealTime reports in run.time_unit).
      row.real_ns = run.GetAdjustedRealTime() *
                    benchmark::GetTimeUnitMultiplier(benchmark::kNanosecond) /
                    benchmark::GetTimeUnitMultiplier(run.time_unit);
      row.iterations = run.iterations;
      for (const auto& [name, counter] : run.counters) {
        row.counters.emplace_back(name, counter.value);
      }
      std::sort(row.counters.begin(), row.counters.end());
      rows_.push_back(std::move(row));
    }
    ConsoleReporter::ReportRuns(runs);
  }

  const std::vector<Row>& rows() const { return rows_; }

 private:
  std::vector<Row> rows_;
};

std::string json_escape(const std::string& s) {
  std::string out;
  for (const char c : s) {
    if (c == '"' || c == '\\') out.push_back('\\');
    out.push_back(c);
  }
  return out;
}

bool write_json(const std::string& path,
                const std::vector<CapturingReporter::Row>& rows) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  std::fprintf(f, "{\n  \"benchmarks\": [\n");
  for (std::size_t i = 0; i < rows.size(); ++i) {
    std::fprintf(f,
                 "    {\"name\": \"%s\", \"real_time_ns\": %.3f, "
                 "\"iterations\": %lld",
                 json_escape(rows[i].name).c_str(), rows[i].real_ns,
                 static_cast<long long>(rows[i].iterations));
    if (!rows[i].counters.empty()) {
      std::fprintf(f, ", \"counters\": {");
      for (std::size_t c = 0; c < rows[i].counters.size(); ++c) {
        std::fprintf(f, "%s\"%s\": %.3f", c > 0 ? ", " : "",
                     json_escape(rows[i].counters[c].first).c_str(),
                     rows[i].counters[c].second);
      }
      std::fprintf(f, "}");
    }
    std::fprintf(f, "}%s\n", i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(f, "  ],\n  \"speedups\": [\n");
  // Pair "X_Legacy[/args]" rows with their "X[/args]" fast twin.
  std::vector<std::string> lines;
  for (const auto& row : rows) {
    const std::size_t pos = row.name.find("_Legacy");
    if (pos == std::string::npos) continue;
    const std::string fast_name =
        row.name.substr(0, pos) + row.name.substr(pos + 7);
    for (const auto& fast : rows) {
      if (fast.name != fast_name || fast.real_ns <= 0) continue;
      char buf[256];
      std::snprintf(buf, sizeof buf,
                    "    {\"benchmark\": \"%s\", \"fast_ns\": %.3f, "
                    "\"legacy_ns\": %.3f, \"speedup\": %.3f}",
                    json_escape(fast_name).c_str(), fast.real_ns, row.real_ns,
                    row.real_ns / fast.real_ns);
      lines.emplace_back(buf);
    }
  }
  for (std::size_t i = 0; i < lines.size(); ++i) {
    std::fprintf(f, "%s%s\n", lines[i].c_str(),
                 i + 1 < lines.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  // Our flags parse strictly (unknown flags fail loudly);
  // --benchmark_* passes through to google-benchmark untouched.
  std::string json_path;
  abrr::runner::ArgParser parser{"micro_bench"};
  parser.add("json_out", "write fast-vs-legacy ratio report here",
             &json_path);
  parser.allow_prefix("--benchmark_");
  parser.parse(argc, argv);

  std::vector<char*> rest;
  for (int i = 0; i < argc; ++i) {
    if (i == 0 || std::string_view{argv[i]}.rfind("--benchmark_", 0) == 0) {
      rest.push_back(argv[i]);
    }
  }
  int rest_argc = static_cast<int>(rest.size());
  benchmark::Initialize(&rest_argc, rest.data());
  if (benchmark::ReportUnrecognizedArguments(rest_argc, rest.data())) {
    return 1;
  }
  CapturingReporter reporter;
  benchmark::RunSpecifiedBenchmarks(&reporter);
  benchmark::Shutdown();
  if (!json_path.empty() && !write_json(json_path, reporter.rows())) {
    std::fprintf(stderr, "failed to write %s\n", json_path.c_str());
    return 1;
  }
  return 0;
}
