// Micro-benchmarks (google-benchmark) for the hot paths of the BGP
// substrate: decision process, best-AS-level filtering, RIB operations,
// prefix-trie longest match, scheduler throughput, and SPF.
#include <benchmark/benchmark.h>

#include <vector>

#include "bgp/decision.h"
#include "bgp/prefix_trie.h"
#include "bgp/rib.h"
#include "igp/spf.h"
#include "sim/random.h"
#include "sim/scheduler.h"
#include "topo/topology.h"

namespace {

using namespace abrr;
using bgp::Ipv4Prefix;
using bgp::Route;
using bgp::RouteBuilder;

std::vector<Route> make_candidates(std::size_t n, sim::Rng& rng) {
  std::vector<Route> out;
  const Ipv4Prefix pfx = Ipv4Prefix::parse("10.0.0.0/8");
  for (std::size_t i = 0; i < n; ++i) {
    RouteBuilder b{pfx};
    b.path_id(static_cast<bgp::PathId>(i + 1))
        .local_pref(100)
        .as_path({static_cast<bgp::Asn>(7000 + i % 8), 64512,
                  static_cast<bgp::Asn>(30000 + i % 4)})
        .med(static_cast<std::uint32_t>(10 * (i % 4)))
        .next_hop(static_cast<bgp::RouterId>(i + 1))
        .learned_from(static_cast<bgp::RouterId>(100 + i),
                      bgp::LearnedVia::kIbgp);
    out.push_back(b.build());
  }
  (void)rng;
  return out;
}

void BM_SelectBest(benchmark::State& state) {
  sim::Rng rng{1};
  const auto candidates =
      make_candidates(static_cast<std::size_t>(state.range(0)), rng);
  const bgp::IgpDistanceFn igp = [](bgp::RouterId nh) -> std::int64_t {
    return nh * 7 % 97;
  };
  for (auto _ : state) {
    benchmark::DoNotOptimize(bgp::select_best(candidates, 1, igp));
  }
}
BENCHMARK(BM_SelectBest)->Arg(2)->Arg(10)->Arg(30)->Arg(100);

void BM_BestAsLevel(benchmark::State& state) {
  sim::Rng rng{1};
  const auto candidates =
      make_candidates(static_cast<std::size_t>(state.range(0)), rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(bgp::best_as_level_routes(candidates));
  }
}
BENCHMARK(BM_BestAsLevel)->Arg(10)->Arg(30)->Arg(100);

void BM_AdjRibInAnnounceWithdraw(benchmark::State& state) {
  sim::Rng rng{2};
  const auto routes = make_candidates(64, rng);
  bgp::AdjRibIn rib;
  for (auto _ : state) {
    for (const auto& r : routes) rib.announce(r);
    for (const auto& r : routes) {
      rib.withdraw(r.learned_from, r.prefix, r.path_id);
    }
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          128);
}
BENCHMARK(BM_AdjRibInAnnounceWithdraw);

void BM_TrieLongestMatch(benchmark::State& state) {
  sim::Rng rng{3};
  bgp::PrefixTrie<int> trie;
  for (int i = 0; i < 10000; ++i) {
    const auto addr =
        static_cast<bgp::Ipv4Addr>(rng.uniform_int(0, 0xDF000000));
    trie.insert(Ipv4Prefix{addr, static_cast<std::uint8_t>(
                                     rng.uniform_int(12, 24))},
                i);
  }
  bgp::Ipv4Addr probe = 0x0A000000;
  for (auto _ : state) {
    probe = probe * 2654435761u + 12345;
    benchmark::DoNotOptimize(trie.longest_match(probe));
  }
}
BENCHMARK(BM_TrieLongestMatch);

void BM_SchedulerThroughput(benchmark::State& state) {
  for (auto _ : state) {
    sim::Scheduler sched;
    int counter = 0;
    for (int i = 0; i < 1000; ++i) {
      sched.schedule_at(i, [&counter] { ++counter; });
    }
    sched.run_to_quiescence();
    benchmark::DoNotOptimize(counter);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          1000);
}
BENCHMARK(BM_SchedulerThroughput);

void BM_SpfTier1(benchmark::State& state) {
  sim::Rng rng{4};
  topo::TopologyParams tp;
  tp.pops = 13;
  tp.clients_per_pop = 8;
  const auto topology = topo::make_tier1(tp, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        igp::compute_spf(topology.graph, topology.clients.front().id));
  }
}
BENCHMARK(BM_SpfTier1);

void BM_RouteSetHash(benchmark::State& state) {
  sim::Rng rng{5};
  const auto routes = make_candidates(10, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(bgp::route_set_hash(routes));
  }
}
BENCHMARK(BM_RouteSetHash);

}  // namespace

BENCHMARK_MAIN();
