// Figure 6: experimental RIB-In / RIB-Out sizes (min, avg, max across
// RRs) after the initial snapshot, for ABRR with 1..32 uniform APs
// (2 ARRs each) and TBRR with the 13-cluster peering-router testbed,
// together with the Appendix A analytical expectation.
//
// Paper findings reproduced here in shape:
//   - ARR averages track the analysis; min/max spread up to ~50% because
//     uniform (equal-size) address ranges hold unequal prefix counts;
//   - TRR analysis OVERestimates the measurement (uniformity
//     assumptions), ~35% on RIB-In and ~13% on RIB-Out in the paper;
//   - ARR RIBs are substantially smaller than TRR RIBs throughout.
//
// The scenarios are declared as ScenarioSpecs and executed by
// ExperimentRunner (--jobs=N runs them concurrently; output is
// identical at any job count).
#include <cstdio>
#include <vector>

#include "analysis/rib_model.h"
#include "common.h"

int main(int argc, char** argv) {
  using namespace abrr;
  const auto cfg =
      bench::ExperimentConfig::from_args(argc, argv, "fig6_rib_sizes");

  // The analysis overlay needs the measured #BAL of the workload the
  // trials will regenerate from cfg.seed.
  sim::Rng rng{cfg.seed};
  const auto topology = bench::make_paper_topology(cfg, rng);
  const auto workload = bench::make_paper_workload(cfg, topology, rng);
  const double bal = bench::measured_bal(workload, topology, rng);

  std::vector<runner::ScenarioSpec> specs;
  for (const std::size_t aps : {1u, 2u, 4u, 8u, 16u, 32u}) {
    auto spec = bench::paper_spec(ibgp::IbgpMode::kAbrr, aps, cfg);
    spec.name = "ABRR/" + std::to_string(aps) + "AP";
    specs.push_back(std::move(spec));
  }
  {
    auto spec = bench::paper_spec(ibgp::IbgpMode::kTbrr, cfg.pops, cfg);
    spec.name = "TBRR/" + std::to_string(cfg.pops) + "cl";
    specs.push_back(std::move(spec));
  }

  runner::ExperimentRunner run{{.jobs = cfg.jobs}};
  const auto results = run.run(specs);

  std::printf("# Figure 6: RIB sizes of an ARR/TRR (experiment vs analysis)\n");
  std::printf("# prefixes=%zu clients=%zu measured #BAL=%.2f seed=%llu\n\n",
              cfg.prefixes, topology.clients.size(), bal,
              static_cast<unsigned long long>(cfg.seed));
  std::printf("%-14s %9s %9s %9s %9s | %9s %9s %9s %9s\n", "config",
              "in-min", "in-avg", "in-max", "in-anl", "out-min", "out-avg",
              "out-max", "out-anl");

  bench::MetricsSink sink{"fig6_rib_sizes", cfg.metrics_out};
  for (std::size_t i = 0; i < results.size(); ++i) {
    const runner::TrialResult& r = results[i];
    if (!r.error.empty() || !r.converged) {
      std::printf("%-14s %s\n", r.scenario.c_str(),
                  r.error.empty() ? "DID NOT CONVERGE" : r.error.c_str());
      continue;
    }
    sink.capture(r.scenario, r.metrics_json);

    // Results arrive in expanded (spec x seed) order.
    const runner::ScenarioSpec& spec = specs[i / cfg.seeds.size()];
    const bool is_abrr = spec.mode == ibgp::IbgpMode::kAbrr;
    analysis::ModelParams p;
    p.prefixes = static_cast<double>(cfg.prefixes);
    p.bal = bal;
    double anl_in = 0, anl_out = 0;
    if (is_abrr) {
      p.aps = static_cast<double>(spec.abrr.num_aps);
      p.rrs = 2.0 * p.aps;
      anl_in = analysis::AbrrModel::rib_in(p);
      anl_out = analysis::AbrrModel::rib_out(p);
    } else {
      p.aps = cfg.pops;  // clusters
      p.rrs = 2.0 * cfg.pops;
      anl_in = analysis::TbrrModel::rib_in(p);
      anl_out = analysis::TbrrModel::rib_out(p);
    }
    std::printf("%-14s %9.0f %9.0f %9.0f %9.0f | %9.0f %9.0f %9.0f %9.0f\n",
                r.scenario.c_str(), r.rib_in.min, r.rib_in.avg, r.rib_in.max,
                anl_in, r.rib_out.min, r.rib_out.avg, r.rib_out.max, anl_out);
    if (!is_abrr) {
      std::printf("# TRR analysis overestimate: RIB-In %.1f%%, "
                  "RIB-Out %.1f%% (paper: 34.9%%, 13.4%%)\n",
                  100.0 * (anl_in - r.rib_in.avg) / r.rib_in.avg,
                  100.0 * (anl_out - r.rib_out.avg) / r.rib_out.avg);
    }
  }
  return 0;
}
