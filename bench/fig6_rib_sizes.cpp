// Figure 6: experimental RIB-In / RIB-Out sizes (min, avg, max across
// RRs) after the initial snapshot, for ABRR with 1..32 uniform APs
// (2 ARRs each) and TBRR with the 13-cluster peering-router testbed,
// together with the Appendix A analytical expectation.
//
// Paper findings reproduced here in shape:
//   - ARR averages track the analysis; min/max spread up to ~50% because
//     uniform (equal-size) address ranges hold unequal prefix counts;
//   - TRR analysis OVERestimates the measurement (uniformity
//     assumptions), ~35% on RIB-In and ~13% on RIB-Out in the paper;
//   - ARR RIBs are substantially smaller than TRR RIBs throughout.
#include <cstdio>
#include <memory>

#include "analysis/rib_model.h"
#include "common.h"

int main(int argc, char** argv) {
  using namespace abrr;
  const auto cfg = bench::ExperimentConfig::from_args(argc, argv);
  sim::Rng rng{cfg.seed};
  const auto topology = bench::make_paper_topology(cfg, rng);
  const auto workload = bench::make_paper_workload(cfg, topology, rng);
  const auto prefixes = workload.prefixes();
  const double bal = bench::measured_bal(workload, topology, rng);

  std::printf("# Figure 6: RIB sizes of an ARR/TRR (experiment vs analysis)\n");
  std::printf("# prefixes=%zu clients=%zu measured #BAL=%.2f seed=%llu\n\n",
              cfg.prefixes, topology.clients.size(), bal,
              static_cast<unsigned long long>(cfg.seed));
  std::printf("%-14s %9s %9s %9s %9s | %9s %9s %9s %9s\n", "config",
              "in-min", "in-avg", "in-max", "in-anl", "out-min", "out-avg",
              "out-max", "out-anl");

  bench::MetricsSink sink{"fig6_rib_sizes", cfg.metrics_out};
  const auto run = [&](ibgp::IbgpMode mode, std::size_t aps,
                       const char* label) {
    auto options = bench::paper_options(mode, aps, cfg.seed);
    auto bed = std::make_unique<harness::Testbed>(topology, options,
                                                  prefixes);
    if (!bench::load_snapshot(*bed, workload, 30.0)) {
      std::printf("%-14s DID NOT CONVERGE\n", label);
      return;
    }
    sink.capture(label, *bed);
    const auto in = bed->rr_rib_in();
    const auto out = bed->rr_rib_out();

    analysis::ModelParams p;
    p.prefixes = static_cast<double>(cfg.prefixes);
    p.bal = bal;
    double anl_in = 0, anl_out = 0;
    if (mode == ibgp::IbgpMode::kAbrr) {
      p.aps = static_cast<double>(aps);
      p.rrs = 2.0 * static_cast<double>(aps);
      anl_in = analysis::AbrrModel::rib_in(p);
      anl_out = analysis::AbrrModel::rib_out(p);
    } else {
      p.aps = cfg.pops;  // clusters
      p.rrs = 2.0 * cfg.pops;
      anl_in = analysis::TbrrModel::rib_in(p);
      anl_out = analysis::TbrrModel::rib_out(p);
    }
    std::printf("%-14s %9.0f %9.0f %9.0f %9.0f | %9.0f %9.0f %9.0f %9.0f\n",
                label, in.min, in.avg, in.max, anl_in, out.min, out.avg,
                out.max, anl_out);
    if (mode == ibgp::IbgpMode::kTbrr) {
      std::printf("# TRR analysis overestimate: RIB-In %.1f%%, "
                  "RIB-Out %.1f%% (paper: 34.9%%, 13.4%%)\n",
                  100.0 * (anl_in - in.avg) / in.avg,
                  100.0 * (anl_out - out.avg) / out.avg);
    }
  };

  for (const std::size_t aps : {1u, 2u, 4u, 8u, 16u, 32u}) {
    char label[32];
    std::snprintf(label, sizeof label, "ABRR/%zuAP", aps);
    run(ibgp::IbgpMode::kAbrr, aps, label);
  }
  run(ibgp::IbgpMode::kTbrr, cfg.pops, "TBRR/13cl");
  return 0;
}
