// Parallel sweep bench: the ExperimentRunner's showcase and its
// determinism proof.
//
// Expands a 16-trial cross-product (2 modes x 2 AP counts x 4 seeds by
// default), runs it twice — once with --jobs=1 and once with --jobs=N —
// verifies every trial's canonical serialization is BYTE-IDENTICAL
// between the two runs, and writes BENCH_sweep.json with per-trial
// wall, CPU and allocation columns and the observed speedup.
//
// Reading the numbers: wall-clock speedup is bounded by the host's core
// count (reported as host_cpus); with --jobs > cores, per-trial wall_ms
// inflates with timesharing while cpu_ms stays flat. cpu_efficiency
// (total CPU at jobs=1 / total CPU at jobs=N) is the scheduling-
// independent signal: ~1.0 means the trials run contention-free — no
// allocator locks, no refcount ping-pong — and parallel speedup is
// limited only by the hardware the sweep happens to run on.
#include <chrono>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "common.h"

int main(int argc, char** argv) {
  using namespace abrr;
  using namespace abrr::bench;

  ExperimentConfig cfg;
  cfg.prefixes = 1000;  // 16 trials; keep each one modest by default
  cfg.jobs = 4;
  runner::ArgParser parser{"sweep"};
  cfg.register_flags(parser);
  parser.parse(argc, argv);
  cfg.finish();
  const std::size_t jobs = cfg.jobs == 0 ? 1 : cfg.jobs;

  runner::ScenarioSpec base = paper_spec(ibgp::IbgpMode::kAbrr, 8, cfg);
  base.name = "sweep";
  runner::SweepAxes axes;
  axes.modes = {ibgp::IbgpMode::kAbrr, ibgp::IbgpMode::kTbrr};
  if (!cfg.mode.empty()) axes.modes = {*runner::parse_mode(cfg.mode)};
  axes.num_aps = {4, 8};
  axes.seeds = {cfg.seed, cfg.seed + 1, cfg.seed + 2, cfg.seed + 3};
  const auto specs = base.sweep(axes);

  std::printf("sweep: %zu trials (%zu prefixes each), --jobs=1 then "
              "--jobs=%zu\n",
              specs.size(), cfg.prefixes, jobs);

  const auto timed = [](const runner::ExperimentRunner& run,
                        std::span<const runner::ScenarioSpec> s,
                        double* elapsed_ms) {
    const auto t0 = std::chrono::steady_clock::now();
    auto results = run.run(s);
    *elapsed_ms = std::chrono::duration<double, std::milli>(
                      std::chrono::steady_clock::now() - t0)
                      .count();
    return results;
  };

  runner::ExperimentRunner serial{{.jobs = 1}};
  double elapsed1 = 0;
  const auto r1 = timed(serial, specs, &elapsed1);
  std::printf("  --jobs=1: %.0fms\n", elapsed1);

  runner::ExperimentRunner pooled{{.jobs = jobs}};
  double elapsedn = 0;
  const auto rn = timed(pooled, specs, &elapsedn);
  std::printf("  --jobs=%zu: %.0fms\n", jobs, elapsedn);

  // The acceptance gate: canonical serializations must match pairwise.
  std::size_t mismatches = 0;
  for (std::size_t i = 0; i < r1.size(); ++i) {
    if (r1[i].serialize() != rn[i].serialize()) {
      ++mismatches;
      std::fprintf(stderr, "MISMATCH trial %zu (%s seed=%llu)\n", i,
                   r1[i].scenario.c_str(),
                   static_cast<unsigned long long>(r1[i].seed));
    }
  }
  std::printf("  determinism: %zu/%zu trials byte-identical\n",
              r1.size() - mismatches, r1.size());

  const double speedup = elapsedn > 0 ? elapsed1 / elapsedn : 1.0;
  std::printf("  speedup at --jobs=%zu: %.2fx\n", jobs, speedup);

  double cpu1_total = 0;
  double cpun_total = 0;
  for (std::size_t i = 0; i < r1.size(); ++i) {
    cpu1_total += r1[i].cpu_ms;
    cpun_total += rn[i].cpu_ms;
  }
  // Contention shows up as CPU *inflation* at jobs=N (threads burning
  // cycles on locks/refcounts/cache misses they don't burn serially).
  const double cpu_efficiency = cpun_total > 0 ? cpu1_total / cpun_total : 1.0;
  const unsigned host_cpus = std::thread::hardware_concurrency();
  std::printf("  cpu: %.0fms at --jobs=1 vs %.0fms at --jobs=%zu "
              "(efficiency %.3f, host_cpus=%u)\n",
              cpu1_total, cpun_total, jobs, cpu_efficiency, host_cpus);

  const std::string path = cfg.out_dir + "/BENCH_sweep.json";
  FILE* f = std::fopen(path.c_str(), "w");
  if (!f) {
    std::fprintf(stderr, "error: cannot write %s\n", path.c_str());
    return 1;
  }
  std::fprintf(f, "{\n  \"bench\": \"sweep\",\n  \"jobs\": %zu,\n", jobs);
  std::fprintf(f, "  \"host_cpus\": %u,\n", host_cpus);
  std::fprintf(f, "  \"trials\": %zu,\n  \"identical\": %s,\n", r1.size(),
               mismatches == 0 ? "true" : "false");
  std::fprintf(f,
               "  \"elapsed_ms_jobs1\": %.3f,\n"
               "  \"elapsed_ms_jobsN\": %.3f,\n"
               "  \"speedup\": %.3f,\n",
               elapsed1, elapsedn, speedup);
  std::fprintf(f,
               "  \"cpu_ms_jobs1\": %.3f,\n"
               "  \"cpu_ms_jobsN\": %.3f,\n"
               "  \"cpu_efficiency\": %.3f,\n",
               cpu1_total, cpun_total, cpu_efficiency);
  std::fprintf(f, "  \"per_trial\": [\n");
  for (std::size_t i = 0; i < r1.size(); ++i) {
    std::fprintf(f,
                 "    {\"name\": \"%s\", \"seed\": %llu, "
                 "\"wall_ms_jobs1\": %.3f, \"wall_ms_jobsN\": %.3f, "
                 "\"cpu_ms_jobs1\": %.3f, \"cpu_ms_jobsN\": %.3f, "
                 "\"attr_blocks\": %llu, \"attr_hits\": %llu, "
                 "\"attr_misses\": %llu, \"attr_arena_bytes\": %llu, "
                 "\"sched_events\": %llu, \"sched_pool_capacity\": %llu, "
                 "\"converged\": %s}%s\n",
                 r1[i].scenario.c_str(),
                 static_cast<unsigned long long>(r1[i].seed), r1[i].wall_ms,
                 rn[i].wall_ms, r1[i].cpu_ms, rn[i].cpu_ms,
                 static_cast<unsigned long long>(r1[i].attr_blocks),
                 static_cast<unsigned long long>(r1[i].attr_hits),
                 static_cast<unsigned long long>(r1[i].attr_misses),
                 static_cast<unsigned long long>(r1[i].attr_arena_bytes),
                 static_cast<unsigned long long>(r1[i].sched_events),
                 static_cast<unsigned long long>(r1[i].sched_pool_capacity),
                 r1[i].converged ? "true" : "false",
                 i + 1 < r1.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  std::printf("wrote %s\n", path.c_str());
  return mismatches == 0 ? 0 : 1;
}
