// Parallel sweep bench: the ExperimentRunner's showcase and its
// determinism proof.
//
// Expands a 16-trial cross-product (2 modes x 2 AP counts x 4 seeds by
// default), runs it twice — once with --jobs=1 and once with --jobs=N —
// verifies every trial's canonical serialization is BYTE-IDENTICAL
// between the two runs, and writes BENCH_sweep.json with per-trial
// wall-clock times and the observed speedup. On a single-core host the
// speedup hovers around 1.0; the determinism check is meaningful
// everywhere.
#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "common.h"

int main(int argc, char** argv) {
  using namespace abrr;
  using namespace abrr::bench;

  ExperimentConfig cfg;
  cfg.prefixes = 1000;  // 16 trials; keep each one modest by default
  cfg.jobs = 4;
  runner::ArgParser parser{"sweep"};
  cfg.register_flags(parser);
  parser.parse(argc, argv);
  cfg.finish();
  const std::size_t jobs = cfg.jobs == 0 ? 1 : cfg.jobs;

  runner::ScenarioSpec base = paper_spec(ibgp::IbgpMode::kAbrr, 8, cfg);
  base.name = "sweep";
  runner::SweepAxes axes;
  axes.modes = {ibgp::IbgpMode::kAbrr, ibgp::IbgpMode::kTbrr};
  if (!cfg.mode.empty()) axes.modes = {*runner::parse_mode(cfg.mode)};
  axes.num_aps = {4, 8};
  axes.seeds = {cfg.seed, cfg.seed + 1, cfg.seed + 2, cfg.seed + 3};
  const auto specs = base.sweep(axes);

  std::printf("sweep: %zu trials (%zu prefixes each), --jobs=1 then "
              "--jobs=%zu\n",
              specs.size(), cfg.prefixes, jobs);

  const auto timed = [](const runner::ExperimentRunner& run,
                        std::span<const runner::ScenarioSpec> s,
                        double* elapsed_ms) {
    const auto t0 = std::chrono::steady_clock::now();
    auto results = run.run(s);
    *elapsed_ms = std::chrono::duration<double, std::milli>(
                      std::chrono::steady_clock::now() - t0)
                      .count();
    return results;
  };

  runner::ExperimentRunner serial{{.jobs = 1}};
  double elapsed1 = 0;
  const auto r1 = timed(serial, specs, &elapsed1);
  std::printf("  --jobs=1: %.0fms\n", elapsed1);

  runner::ExperimentRunner pooled{{.jobs = jobs}};
  double elapsedn = 0;
  const auto rn = timed(pooled, specs, &elapsedn);
  std::printf("  --jobs=%zu: %.0fms\n", jobs, elapsedn);

  // The acceptance gate: canonical serializations must match pairwise.
  std::size_t mismatches = 0;
  for (std::size_t i = 0; i < r1.size(); ++i) {
    if (r1[i].serialize() != rn[i].serialize()) {
      ++mismatches;
      std::fprintf(stderr, "MISMATCH trial %zu (%s seed=%llu)\n", i,
                   r1[i].scenario.c_str(),
                   static_cast<unsigned long long>(r1[i].seed));
    }
  }
  std::printf("  determinism: %zu/%zu trials byte-identical\n",
              r1.size() - mismatches, r1.size());

  const double speedup = elapsedn > 0 ? elapsed1 / elapsedn : 1.0;
  std::printf("  speedup at --jobs=%zu: %.2fx\n", jobs, speedup);

  const std::string path = cfg.out_dir + "/BENCH_sweep.json";
  FILE* f = std::fopen(path.c_str(), "w");
  if (!f) {
    std::fprintf(stderr, "error: cannot write %s\n", path.c_str());
    return 1;
  }
  std::fprintf(f, "{\n  \"bench\": \"sweep\",\n  \"jobs\": %zu,\n", jobs);
  std::fprintf(f, "  \"trials\": %zu,\n  \"identical\": %s,\n", r1.size(),
               mismatches == 0 ? "true" : "false");
  std::fprintf(f,
               "  \"elapsed_ms_jobs1\": %.3f,\n"
               "  \"elapsed_ms_jobsN\": %.3f,\n"
               "  \"speedup\": %.3f,\n",
               elapsed1, elapsedn, speedup);
  std::fprintf(f, "  \"per_trial\": [\n");
  for (std::size_t i = 0; i < r1.size(); ++i) {
    std::fprintf(f,
                 "    {\"name\": \"%s\", \"seed\": %llu, "
                 "\"wall_ms_jobs1\": %.3f, \"wall_ms_jobsN\": %.3f, "
                 "\"converged\": %s}%s\n",
                 r1[i].scenario.c_str(),
                 static_cast<unsigned long long>(r1[i].seed), r1[i].wall_ms,
                 rn[i].wall_ms, r1[i].converged ? "true" : "false",
                 i + 1 < r1.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  std::printf("wrote %s\n", path.c_str());
  return mismatches == 0 ? 0 : 1;
}
