// Ablation: MED policy vs TBRR convergence on the Tier-1 testbed.
//
// With diverse per-peering-point MEDs (adversarial but legal), TBRR's
// route hiding plus MED's partial order produces persistent RFC 3345
// oscillations even under deterministic-MED. The two standard ISP
// mitigations — zeroing peer MEDs (our default workload policy) or
// always-compare-med — restore convergence. ABRR converges under every
// policy: for any prefix it is logically centralized (§2.3.1).
#include <cstdio>
#include <memory>

#include "common.h"
#include "verify/oscillation.h"

int main(int argc, char** argv) {
  using namespace abrr;
  auto cfg = bench::ExperimentConfig::from_args(argc, argv, "ablation_med_policy");
  if (cfg.prefixes == 4000) cfg.prefixes = 600;
  cfg.pops = 5;

  std::printf("# Ablation: MED policy vs convergence (%zu prefixes)\n\n",
              cfg.prefixes);
  std::printf("%-9s %-26s %-12s %10s\n", "scheme", "MED policy", "converged",
              "max-flips");

  bench::MetricsSink sink{"ablation_med_policy", cfg.metrics_out};
  const auto run = [&](ibgp::IbgpMode mode, bool diverse_meds,
                       bool always_compare, const char* label) {
    sim::Rng rng{cfg.seed};
    const auto topology = bench::make_paper_topology(cfg, rng);
    trace::WorkloadParams wp;
    wp.prefixes = cfg.prefixes;
    wp.per_point_meds = diverse_meds;
    const auto workload = trace::Workload::generate(wp, topology, rng);
    const auto prefixes = workload.prefixes();

    auto options = bench::paper_options(mode, 8, cfg.seed);
    options.mrai = 0;  // oscillate fast rather than slowly
    options.proc_delay = sim::msec(2);
    options.decision.always_compare_med = always_compare;
    auto bed =
        std::make_unique<harness::Testbed>(topology, options, prefixes);
    verify::OscillationMonitor monitor{30};
    for (const auto id : bed->all_ids()) monitor.attach(bed->speaker(id));
    trace::RouteRegenerator regen{bed->scheduler(), workload,
                                  bed->inject_fn()};
    regen.load_snapshot(0, sim::sec(10));
    const bool converged = bed->run_to_quiescence(4'000'000);
    sink.capture(label, *bed);
    std::printf("%-9s %-26s %-12s %10zu\n",
                mode == ibgp::IbgpMode::kTbrr ? "TBRR" : "ABRR", label,
                converged ? "yes" : "NO (capped)", monitor.max_flips());
  };

  run(ibgp::IbgpMode::kTbrr, false, false, "uniform peer MEDs");
  run(ibgp::IbgpMode::kTbrr, true, false, "diverse MEDs");
  run(ibgp::IbgpMode::kTbrr, true, true, "diverse + always-compare");
  run(ibgp::IbgpMode::kAbrr, true, false, "diverse MEDs");
  return 0;
}
