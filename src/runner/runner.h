// ExperimentRunner: executes many independent trials concurrently.
//
// Determinism contract: the runner expands its input specs (spec order,
// then each spec's declared seed order) into a flat trial list, executes
// trials on a pool of worker threads, and writes each result into its
// pre-assigned slot. The returned vector is therefore identical —
// byte-identical under TrialResult::serialize() — for any worker count
// and any scheduling interleaving; `--jobs` only changes wall-clock.
//
// Thread-confinement contract: a trial builds every piece of mutable
// simulation state it touches (Scheduler, Network, MetricsRegistry,
// Rng) inside run_trial() on its worker thread and never shares it.
// Debug builds assert this (sim::ThreadConfined); the only cross-thread
// traffic is the trial index handed out by an atomic counter and the
// finished TrialResult moved into its slot.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "runner/scenario.h"
#include "runner/trial.h"

namespace abrr::runner {

struct RunnerOptions {
  /// Worker threads. 1 (the default) runs inline on the caller's
  /// thread; 0 is treated as 1. The runner never spawns more workers
  /// than there are trials.
  std::size_t jobs = 1;
};

class ExperimentRunner {
 public:
  explicit ExperimentRunner(RunnerOptions options = {})
      : options_{options} {}

  /// Validates every spec (throws std::invalid_argument naming every
  /// failing field via render_errors() — nothing runs if any spec is
  /// invalid), expands specs x seeds in declared order, executes, and
  /// returns results in that same order. A trial that throws yields a
  /// TrialResult with `error` set instead of aborting the batch.
  std::vector<TrialResult> run(std::span<const ScenarioSpec> specs) const;

  /// Sugar: expand the base spec over the axes, then run.
  std::vector<TrialResult> run_sweep(const ScenarioSpec& base,
                                     const SweepAxes& axes) const;

  const RunnerOptions& options() const { return options_; }

 private:
  RunnerOptions options_;
};

}  // namespace abrr::runner
