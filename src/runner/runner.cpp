#include "runner/runner.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <ctime>
#include <exception>
#include <stdexcept>
#include <string>
#include <thread>
#include <utility>

namespace abrr::runner {
namespace {

/// One expanded unit of work: a spec (by pointer into the caller's
/// span) plus the single seed this trial runs.
struct TrialPlan {
  const ScenarioSpec* spec = nullptr;
  std::uint64_t seed = 0;
};

double thread_cpu_ms() {
#if defined(CLOCK_THREAD_CPUTIME_ID)
  timespec ts{};
  if (clock_gettime(CLOCK_THREAD_CPUTIME_ID, &ts) != 0) return 0;
  return static_cast<double>(ts.tv_sec) * 1e3 +
         static_cast<double>(ts.tv_nsec) * 1e-6;
#else
  return 0;
#endif
}

TrialResult execute(const TrialPlan& plan, std::size_t index) {
  const auto t0 = std::chrono::steady_clock::now();
  const double cpu0 = thread_cpu_ms();
  TrialResult result;
  try {
    result = run_trial(*plan.spec, plan.seed, index);
  } catch (const std::exception& e) {
    result.scenario = plan.spec->name;
    result.mode = mode_name(plan.spec->mode);
    result.seed = plan.seed;
    result.index = index;
    result.error = e.what();
  }
  // Wall time inflates with host timesharing when --jobs exceeds the
  // core count; thread CPU time does not. Reporting both lets the sweep
  // artifact separate scheduler contention from real per-trial cost.
  result.cpu_ms = thread_cpu_ms() - cpu0;
  result.wall_ms =
      std::chrono::duration<double, std::milli>(
          std::chrono::steady_clock::now() - t0)
          .count();
  return result;
}

}  // namespace

std::vector<TrialResult> ExperimentRunner::run(
    std::span<const ScenarioSpec> specs) const {
  // Validate everything up front: a bad spec anywhere aborts the whole
  // batch before any simulation starts.
  std::string all_errors;
  for (const ScenarioSpec& spec : specs) {
    const auto errors = spec.validate();
    if (!errors.empty()) {
      if (!all_errors.empty()) all_errors += "; ";
      all_errors += "spec '" + spec.name + "': " + render_errors(errors);
    }
  }
  if (!all_errors.empty()) {
    throw std::invalid_argument{"ExperimentRunner::run: " + all_errors};
  }

  // Expand in declared order: spec order outermost, that spec's seed
  // list innermost. Slot i of the result vector belongs to plan i
  // forever — workers write results by index, never by completion
  // order, which is what makes --jobs=N output identical to --jobs=1.
  std::vector<TrialPlan> plans;
  for (const ScenarioSpec& spec : specs) {
    for (const std::uint64_t seed : spec.seeds) {
      plans.push_back({&spec, seed});
    }
  }

  std::vector<TrialResult> results(plans.size());
  const std::size_t jobs =
      std::min(options_.jobs == 0 ? std::size_t{1} : options_.jobs,
               plans.size());
  if (jobs <= 1) {
    for (std::size_t i = 0; i < plans.size(); ++i) {
      results[i] = execute(plans[i], i);
    }
    return results;
  }

  std::atomic<std::size_t> next{0};
  std::vector<std::thread> workers;
  workers.reserve(jobs);
  for (std::size_t w = 0; w < jobs; ++w) {
    workers.emplace_back([&] {
      for (std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
           i < plans.size();
           i = next.fetch_add(1, std::memory_order_relaxed)) {
        results[i] = execute(plans[i], i);
      }
    });
  }
  for (std::thread& t : workers) t.join();
  return results;
}

std::vector<TrialResult> ExperimentRunner::run_sweep(
    const ScenarioSpec& base, const SweepAxes& axes) const {
  const std::vector<ScenarioSpec> specs = base.sweep(axes);
  return run(specs);
}

}  // namespace abrr::runner
