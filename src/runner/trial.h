// One trial = one (ScenarioSpec, seed) pair executed end to end:
// regenerate topology + workload, build a testbed, load the snapshot,
// optionally replay an update trace and/or a fault episode, and collect
// every number the benches report. Trials are fully self-contained —
// they own their Scheduler, Network, MetricsRegistry and Rng — so the
// runner can execute them on any worker thread.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>

#include "harness/testbed.h"
#include "runner/scenario.h"

namespace abrr::runner {

/// Everything one trial produced. serialize() is the canonical
/// byte-exact form used by the determinism matrix and BENCH_sweep.json:
/// two runs of the same (spec, seed) must serialize identically no
/// matter which worker executed them — wall_ms is therefore NOT part of
/// the serialization (it is real time, not simulated time).
struct TrialResult {
  std::string scenario;  // spec name
  std::string mode;      // mode_name(spec.mode)
  std::uint64_t seed = 0;
  std::size_t index = 0;  // position in the runner's expanded order

  /// Non-empty when the trial threw; every other field is then
  /// whatever was collected before the failure (usually defaults).
  std::string error;

  bool converged = false;
  std::size_t speakers = 0;
  std::size_t rrs = 0;
  std::size_t clients = 0;
  std::size_t sessions = 0;
  harness::Aggregate rib_in;
  harness::Aggregate rib_out;
  harness::RoleTotals rr_totals;
  harness::RoleTotals client_totals;
  std::uint64_t fingerprint = 0;
  std::uint64_t trace_events = 0;  // update-trace events replayed (0 = none)

  /// Fault episode results (fault_ran == spec.fault.enabled).
  bool fault_ran = false;
  bgp::RouterId victim = 0;
  double detection_ms = -1;  // crash -> first hold expiration
  double blackout_ms = 0;    // surviving client missing a route
  double recovery_ms = -1;   // restart -> pre-fault RIB fingerprint
  bool fingerprint_restored = false;
  bool fullmesh_equivalent = false;
  std::uint64_t churn_updates = 0;
  std::uint64_t churn_routes = 0;
  std::uint64_t dropped_messages = 0;

  /// Aggregated metrics-registry dump of the trial's testbed
  /// (MetricsRegistry::to_json(aggregate=true)).
  std::string metrics_json;

  /// Allocation telemetry of the trial's heap-isolated pools. All of it
  /// is a function of the simulated run alone, so it is PART of
  /// serialize(): a trial that allocates differently across --jobs
  /// levels would trip the determinism matrix, not just the perf report.
  std::uint64_t attr_blocks = 0;       // distinct interned attribute sets
  std::uint64_t attr_hits = 0;         // intern() canonicalization hits
  std::uint64_t attr_misses = 0;       // intern() fresh blocks
  std::uint64_t attr_arena_bytes = 0;  // slab bytes the blocks occupy
  std::uint64_t sched_events = 0;      // scheduler events executed
  std::uint64_t sched_pool_capacity = 0;  // event-pool high-water, nodes

  /// Real (wall-clock) execution time of the trial on its worker.
  /// Excluded from serialize().
  double wall_ms = 0;

  /// Thread CPU time consumed by the trial (CLOCK_THREAD_CPUTIME_ID).
  /// Excluded from serialize(). On a host with fewer cores than --jobs,
  /// wall_ms inflates with timesharing while cpu_ms stays flat — the
  /// honest signal that parallelism is contention-free.
  double cpu_ms = 0;

  /// Canonical deterministic JSON rendering (no wall-clock content).
  std::string serialize() const;
};

/// Executes one trial. `seed` overrides the spec's seed list (the
/// runner expands one call per seed); `index` is echoed into the
/// result. Throws only on internal errors — the runner catches and
/// records them in TrialResult::error.
TrialResult run_trial(const ScenarioSpec& spec, std::uint64_t seed,
                      std::size_t index);

/// The spec's deterministic world pieces, exported so the serving mode
/// (src/serve) regenerates bit-identical worlds from the same
/// (spec, seed) — its snapshot fingerprints must match batch trials.
topo::Topology make_trial_topology(const TopologyOptions& t, sim::Rng& rng);
trace::Workload make_trial_workload(const WorkloadOptions& w,
                                    const topo::Topology& topology,
                                    sim::Rng& rng);

}  // namespace abrr::runner
