#include "runner/arg_parser.h"

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <utility>

namespace abrr::runner {
namespace {

bool parse_u64(std::string_view text, std::uint64_t* out) {
  if (text.empty()) return false;
  const std::string copy{text};
  errno = 0;
  char* end = nullptr;
  const std::uint64_t v = std::strtoull(copy.c_str(), &end, 10);
  if (errno != 0 || end != copy.c_str() + copy.size()) return false;
  *out = v;
  return true;
}

bool parse_f64(std::string_view text, double* out) {
  if (text.empty()) return false;
  const std::string copy{text};
  errno = 0;
  char* end = nullptr;
  const double v = std::strtod(copy.c_str(), &end);
  if (errno != 0 || end != copy.c_str() + copy.size()) return false;
  *out = v;
  return true;
}

bool parse_bool(std::string_view text, bool* out) {
  if (text == "1" || text == "true" || text == "yes" || text == "on") {
    *out = true;
    return true;
  }
  if (text == "0" || text == "false" || text == "no" || text == "off") {
    *out = false;
    return true;
  }
  return false;
}

}  // namespace

void ArgParser::add_flag(std::string name, std::string help, bool is_bool,
                         std::function<bool(std::string_view)> set) {
  Flag f;
  f.name = std::move(name);
  f.help = std::move(help);
  f.is_bool = is_bool;
  f.set = std::move(set);
  flags_.push_back(std::move(f));
}

void ArgParser::add(std::string name, std::string help, std::string* out) {
  add_flag(std::move(name), std::move(help), false,
           [out](std::string_view v) {
             *out = std::string{v};
             return true;
           });
}

void ArgParser::add(std::string name, std::string help, double* out) {
  add_flag(std::move(name), std::move(help), false,
           [out](std::string_view v) { return parse_f64(v, out); });
}

void ArgParser::add(std::string name, std::string help, unsigned long* out) {
  add_flag(std::move(name), std::move(help), false,
           [out](std::string_view v) {
             std::uint64_t n = 0;
             if (!parse_u64(v, &n)) return false;
             *out = static_cast<unsigned long>(n);
             return true;
           });
}

void ArgParser::add(std::string name, std::string help,
                    unsigned long long* out) {
  add_flag(std::move(name), std::move(help), false,
           [out](std::string_view v) {
             std::uint64_t n = 0;
             if (!parse_u64(v, &n)) return false;
             *out = n;
             return true;
           });
}

void ArgParser::add(std::string name, std::string help, std::uint32_t* out) {
  add_flag(std::move(name), std::move(help), false,
           [out](std::string_view v) {
             std::uint64_t n = 0;
             if (!parse_u64(v, &n) || n > 0xffffffffull) return false;
             *out = static_cast<std::uint32_t>(n);
             return true;
           });
}

void ArgParser::add(std::string name, std::string help,
                    std::vector<std::uint64_t>* out) {
  add_flag(std::move(name), std::move(help), false,
           [out](std::string_view v) {
             std::vector<std::uint64_t> parsed;
             while (!v.empty()) {
               const std::size_t comma = v.find(',');
               const std::string_view item = v.substr(0, comma);
               std::uint64_t n = 0;
               if (!parse_u64(item, &n)) return false;
               parsed.push_back(n);
               if (comma == std::string_view::npos) break;
               v.remove_prefix(comma + 1);
             }
             if (parsed.empty()) return false;
             *out = std::move(parsed);
             return true;
           });
}

void ArgParser::add(std::string name, std::string help, bool* out) {
  add_flag(std::move(name), std::move(help), true,
           [out](std::string_view v) {
             if (v.empty()) {  // bare --flag
               *out = true;
               return true;
             }
             return parse_bool(v, out);
           });
}

const ArgParser::Flag* ArgParser::find(std::string_view name) const {
  for (const Flag& f : flags_) {
    if (f.name == name) return &f;
  }
  return nullptr;
}

bool ArgParser::try_parse(int argc, char* const* argv, std::string* error) {
  help_requested_ = false;
  error->clear();
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      help_requested_ = true;
      return false;
    }
    bool passed_through = false;
    for (const std::string& prefix : passthrough_) {
      if (arg.rfind(prefix, 0) == 0) {
        passed_through = true;
        break;
      }
    }
    if (passed_through) continue;
    if (arg.rfind("--", 0) != 0) {
      *error = "unexpected positional argument '" + std::string{arg} + "'";
      return false;
    }
    const std::size_t eq = arg.find('=');
    const std::string_view name = arg.substr(2, eq == std::string_view::npos
                                                    ? std::string_view::npos
                                                    : eq - 2);
    const Flag* flag = find(name);
    if (flag == nullptr) {
      *error = "unknown flag '" + std::string{arg} + "'";
      return false;
    }
    if (eq == std::string_view::npos && !flag->is_bool) {
      *error = "flag '--" + flag->name + "' needs a value (--" + flag->name +
               "=...)";
      return false;
    }
    const std::string_view value =
        eq == std::string_view::npos ? std::string_view{} : arg.substr(eq + 1);
    if (!flag->set(value)) {
      *error = "bad value '" + std::string{value} + "' for flag '--" +
               flag->name + "'";
      return false;
    }
  }
  return true;
}

void ArgParser::parse(int argc, char* const* argv) {
  std::string error;
  if (try_parse(argc, argv, &error)) return;
  if (help_requested_) {
    std::fputs(usage().c_str(), stdout);
    std::exit(0);
  }
  std::fprintf(stderr, "%s: %s\n%s", program_.c_str(), error.c_str(),
               usage().c_str());
  std::exit(2);
}

std::string ArgParser::usage() const {
  std::string out = "usage: " + program_ + " [flags]\n";
  for (const Flag& f : flags_) {
    out += "  --" + f.name + (f.is_bool ? "" : "=VALUE");
    out += "\n      " + f.help + "\n";
  }
  for (const std::string& prefix : passthrough_) {
    out += "  " + prefix + "* passed through\n";
  }
  return out;
}

}  // namespace abrr::runner
