// ScenarioSpec: the declarative description of one experiment trial (or,
// via its seed list and sweep(), a whole family of trials).
//
// A spec is pure data — topology scale, workload shape, iBGP mode, the
// nested AP/timing/fault/obs option groups, and the seeds to run — plus
// a validate() that turns misconfiguration into structured errors
// instead of silently nonsensical runs. The ExperimentRunner
// (runner/runner.h) executes specs; everything a trial needs (topology,
// workload, testbed) is regenerated deterministically from the spec and
// seed inside the trial, so trials are fully independent and
// thread-confined.
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "bgp/decision.h"
#include "harness/options.h"
#include "ibgp/speaker.h"
#include "obs/obs.h"

namespace abrr::runner {

/// Topology scale: the §4 testbed generator's knobs. Defaults reproduce
/// the paper's 13-cluster Tier-1 subset (peering routers only).
struct TopologyOptions {
  std::uint32_t pops = 13;
  std::uint32_t clients_per_pop = 8;
  std::uint32_t peer_ases = 25;
  std::uint32_t points_per_as = 8;
  double peering_router_fraction = 1.0;  // §4: peering routers only
  double peering_skew = 0.8;  // gateway-PoP concentration (§4.1 variance)
};

/// Workload shape: snapshot size and the optional update-trace replay.
struct WorkloadOptions {
  std::size_t prefixes = 4000;
  /// Simulated seconds the snapshot load is paced over.
  double snapshot_seconds = 30.0;
  /// > 0 schedules an update-trace replay after the snapshot converges
  /// (counters reset in between, as in §4.2); 0 = snapshot only.
  double trace_seconds = 0.0;
  double trace_events_per_second = 20.0;
};

/// Serving mode (src/serve): keep the converged trial resident on a
/// writer thread that replays churn and publishes immutable RIB
/// snapshots through epoch-based reclamation, while lock-free readers
/// answer longest-prefix-match queries against the latest snapshot.
struct ServeOptions {
  bool enabled = false;
  /// Virtual seconds of churn the writer replays after convergence.
  double churn_seconds = 10.0;
  /// Update-trace churn rate (events per virtual second); 0 disables
  /// the trace component of the churn mix.
  double churn_events_per_second = 50.0;
  /// Seeded fault churn on top of the trace: session resets, delay and
  /// loss bursts only (crash/link faults stay weighted off so
  /// hold_time=0 beds remain valid). 0 = no fault churn.
  std::size_t chaos_events = 0;
  /// Virtual seconds between publish attempts: the writer advances the
  /// simulation in steps of this period and republishes whenever the
  /// step dirtied at least one (router, prefix).
  double publish_period_seconds = 0.25;
  /// Cap on retired-but-unreclaimed snapshots. A stuck reader pins its
  /// epoch forever; once the retire backlog reaches this cap the writer
  /// defers publishing (counts serve.publishes_deferred) instead of
  /// growing memory without bound.
  std::size_t max_resident_snapshots = 8;
};

/// One structured validation failure: the offending field (dotted path)
/// and a human-readable reason.
struct ValidationError {
  std::string field;
  std::string message;
};

/// Renders "field: message; field: message" for error reporting.
std::string render_errors(const std::vector<ValidationError>& errors);

/// Sweep axes for ScenarioSpec::sweep(): the cross-product dimensions.
/// Empty axis = keep the base spec's value.
struct SweepAxes {
  std::vector<ibgp::IbgpMode> modes;
  std::vector<std::size_t> num_aps;          // ABRR scale axis
  std::vector<std::size_t> prefix_counts;    // workload scale axis
  std::vector<std::uint64_t> seeds;
};

/// Parses "fullmesh" / "tbrr" / "abrr" / "dual" (case-sensitive).
std::optional<ibgp::IbgpMode> parse_mode(std::string_view name);
/// The inverse of parse_mode().
const char* mode_name(ibgp::IbgpMode mode);

struct ScenarioSpec {
  /// Row label in reports; sweep() derives child names from it.
  std::string name = "scenario";

  ibgp::IbgpMode mode = ibgp::IbgpMode::kAbrr;
  /// TBRR-multi (Appendix A.3); only meaningful when mode covers TBRR.
  bool multipath = false;

  TopologyOptions topology;
  WorkloadOptions workload;
  harness::AbrrOptions abrr;
  harness::TimingOptions timing;
  harness::FaultOptions fault;
  ServeOptions serve;
  obs::ObsOptions obs;
  bgp::DecisionConfig decision{};
  bool use_prefix_index = true;

  /// Seeds to run; every seed is one independent trial.
  std::vector<std::uint64_t> seeds = {42};

  /// Structured misconfiguration check. Empty vector = valid. The
  /// runner refuses invalid specs up front (std::invalid_argument with
  /// render_errors()), so nonsense never reaches a simulation.
  std::vector<ValidationError> validate() const;

  /// Cross-product expansion over the given axes. Every returned spec
  /// carries exactly ONE seed and a derived name
  /// (`base/mode/apN[/pfxN]/seedS`), in deterministic declared-axis
  /// order: modes outermost, then num_aps, then prefix_counts, then
  /// seeds innermost. Empty axes reuse the base spec's value(s).
  std::vector<ScenarioSpec> sweep(const SweepAxes& axes) const;

  /// The testbed configuration for one trial of this spec. Applies the
  /// fault episode's hold time when the episode is enabled.
  harness::TestbedConfig testbed_config(std::uint64_t seed) const;

  /// Scale hint for pre-sizing the trial's attribute interner (see
  /// AttrsInterner::TrialScope): distinct attribute blocks grow with the
  /// prefix count (each prefix's paths × the reflection variants ARRs
  /// and border routers derive), largely independent of topology size
  /// because interning folds the per-session copies. The constant floor
  /// covers small workloads; over-estimating only rounds slab reserve up.
  std::size_t expected_attr_blocks() const {
    return workload.prefixes * 12 + 1024;
  }

  /// Paper defaults (§4 timing: 20us/update processing, 20ms jitter),
  /// matching the historical bench::paper_options().
  static ScenarioSpec paper(ibgp::IbgpMode mode, std::size_t num_aps,
                            std::uint64_t seed);
};

}  // namespace abrr::runner
