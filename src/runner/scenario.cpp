#include "runner/scenario.h"

namespace abrr::runner {

std::string render_errors(const std::vector<ValidationError>& errors) {
  std::string out;
  for (const ValidationError& e : errors) {
    if (!out.empty()) out += "; ";
    out += e.field + ": " + e.message;
  }
  return out;
}

std::optional<ibgp::IbgpMode> parse_mode(std::string_view name) {
  if (name == "fullmesh") return ibgp::IbgpMode::kFullMesh;
  if (name == "tbrr") return ibgp::IbgpMode::kTbrr;
  if (name == "abrr") return ibgp::IbgpMode::kAbrr;
  if (name == "dual") return ibgp::IbgpMode::kDual;
  return std::nullopt;
}

const char* mode_name(ibgp::IbgpMode mode) {
  switch (mode) {
    case ibgp::IbgpMode::kFullMesh:
      return "fullmesh";
    case ibgp::IbgpMode::kTbrr:
      return "tbrr";
    case ibgp::IbgpMode::kAbrr:
      return "abrr";
    case ibgp::IbgpMode::kDual:
      return "dual";
  }
  return "?";
}

namespace {

bool uses_abrr(ibgp::IbgpMode mode) {
  return mode == ibgp::IbgpMode::kAbrr || mode == ibgp::IbgpMode::kDual;
}

bool uses_tbrr(ibgp::IbgpMode mode) {
  return mode == ibgp::IbgpMode::kTbrr || mode == ibgp::IbgpMode::kDual;
}

}  // namespace

std::vector<ValidationError> ScenarioSpec::validate() const {
  std::vector<ValidationError> errors;
  const auto err = [&](std::string field, std::string message) {
    errors.push_back({std::move(field), std::move(message)});
  };

  if (name.empty()) err("name", "must not be empty");
  if (seeds.empty()) err("seeds", "at least one seed is required");

  if (topology.pops == 0) err("topology.pops", "must be >= 1");
  if (topology.clients_per_pop == 0) {
    err("topology.clients_per_pop", "must be >= 1");
  }
  if (workload.prefixes == 0) err("workload.prefixes", "must be >= 1");
  if (workload.snapshot_seconds <= 0) {
    err("workload.snapshot_seconds", "must be > 0");
  }
  if (workload.trace_seconds < 0) {
    err("workload.trace_seconds", "must be >= 0");
  }
  if (workload.trace_seconds > 0 && workload.trace_events_per_second <= 0) {
    err("workload.trace_events_per_second",
        "must be > 0 when a trace replay is requested");
  }

  if (multipath && !uses_tbrr(mode)) {
    err("multipath", std::string{"TBRR-multi requires a TBRR-bearing mode; "
                                 "mode is "} +
                         mode_name(mode));
  }
  if (uses_abrr(mode)) {
    if (abrr.num_aps == 0) {
      err("abrr.num_aps", "ABRR needs at least one address partition");
    }
    if (abrr.arrs_per_ap == 0) {
      err("abrr.arrs_per_ap",
          "every AP needs at least one ARR (paper runs 2 for redundancy)");
    }
    if (abrr.balanced_aps && workload.prefixes == 0) {
      err("abrr.balanced_aps",
          "balancing partitions on prefix mass requires a non-empty "
          "prefix set");
    }
  } else {
    if (abrr.balanced_aps) {
      err("abrr.balanced_aps", std::string{"only meaningful for ABRR-bearing "
                                           "modes; mode is "} +
                                   mode_name(mode));
    }
    if (abrr.force_client_reduction) {
      err("abrr.force_client_reduction",
          std::string{"§3.4 ablation only applies to ABRR-bearing modes; "
                      "mode is "} +
              mode_name(mode));
    }
  }

  if (timing.mrai < 0) err("timing.mrai", "must be >= 0");
  if (timing.proc_delay < 0) err("timing.proc_delay", "must be >= 0");
  if (timing.proc_per_update < 0) {
    err("timing.proc_per_update", "must be >= 0");
  }
  if (timing.latency_jitter < 0) err("timing.latency_jitter", "must be >= 0");
  if (timing.hold_time < 0) err("timing.hold_time", "must be >= 0");

  if (fault.enabled) {
    if (fault.hold_time <= 0) {
      err("fault.hold_time",
          "a fault episode needs an armed hold timer (> 0) for failure "
          "detection");
    }
    if (fault.scenario != harness::FaultOptions::Scenario::kChaos &&
        fault.outage <= 0) {
      err("fault.outage", "crash scenarios need a positive outage length");
    }
    if (fault.scenario == harness::FaultOptions::Scenario::kChaos &&
        fault.chaos_events == 0) {
      err("fault.chaos_events", "a chaos episode needs at least one event");
    }
    if (fault.scenario == harness::FaultOptions::Scenario::kRrCrash &&
        mode == ibgp::IbgpMode::kFullMesh) {
      err("fault.scenario",
          "rr_crash needs a reflector; full-mesh beds have none");
    }
  }

  if (serve.enabled) {
    if (serve.churn_seconds <= 0) {
      err("serve.churn_seconds", "a serving run needs a positive horizon");
    }
    if (serve.churn_events_per_second < 0) {
      err("serve.churn_events_per_second", "must be >= 0");
    }
    if (serve.publish_period_seconds <= 0) {
      err("serve.publish_period_seconds", "must be > 0");
    }
    if (serve.max_resident_snapshots < 2) {
      err("serve.max_resident_snapshots",
          "needs room for the live snapshot plus at least one retired one");
    }
    if (!use_prefix_index) {
      err("serve.enabled",
          "snapshots are compiled from the dense PrefixIndex RIB; "
          "use_prefix_index must stay on");
    }
    if (fault.enabled) {
      err("serve.enabled",
          "serving churn and the batch fault episode are mutually "
          "exclusive (serve runs its own restricted chaos plan)");
    }
    if (timing.hold_time > 0) {
      err("serve.enabled",
          "the serving writer converges via quiescence; hold timers tick "
          "forever, so timing.hold_time must stay 0");
    }
  }

  if (obs.enabled && obs.sample_period <= 0) {
    err("obs.sample_period", "must be > 0 when observability is enabled");
  }

  return errors;
}

std::vector<ScenarioSpec> ScenarioSpec::sweep(const SweepAxes& axes) const {
  // Missing axes fall back to the base spec's values so the expansion
  // below is always a plain triple-nested cross-product.
  std::vector<ibgp::IbgpMode> modes =
      axes.modes.empty() ? std::vector<ibgp::IbgpMode>{mode} : axes.modes;
  std::vector<std::size_t> aps = axes.num_aps.empty()
                                     ? std::vector<std::size_t>{abrr.num_aps}
                                     : axes.num_aps;
  std::vector<std::size_t> prefix_counts =
      axes.prefix_counts.empty()
          ? std::vector<std::size_t>{workload.prefixes}
          : axes.prefix_counts;
  std::vector<std::uint64_t> seed_list = axes.seeds.empty() ? seeds
                                                            : axes.seeds;

  std::vector<ScenarioSpec> out;
  out.reserve(modes.size() * aps.size() * prefix_counts.size() *
              seed_list.size());
  for (const ibgp::IbgpMode m : modes) {
    for (const std::size_t ap : aps) {
      for (const std::size_t pfx : prefix_counts) {
        for (const std::uint64_t seed : seed_list) {
          ScenarioSpec child = *this;
          child.mode = m;
          child.abrr.num_aps = ap;
          child.workload.prefixes = pfx;
          child.seeds = {seed};
          child.name = name + "/" + mode_name(m) + "/ap" +
                       std::to_string(ap);
          if (prefix_counts.size() > 1) {
            child.name += "/pfx" + std::to_string(pfx);
          }
          child.name += "/seed" + std::to_string(seed);
          out.push_back(std::move(child));
        }
      }
    }
  }
  return out;
}

harness::TestbedConfig ScenarioSpec::testbed_config(
    std::uint64_t seed) const {
  harness::TestbedConfig c;
  c.mode = mode;
  c.multipath = multipath;
  c.abrr = abrr;
  c.timing = timing;
  if (fault.enabled) c.timing.hold_time = fault.hold_time;
  c.decision = decision;
  c.seed = seed;
  c.use_prefix_index = use_prefix_index;
  c.obs = obs;
  return c;
}

ScenarioSpec ScenarioSpec::paper(ibgp::IbgpMode mode, std::size_t num_aps,
                                 std::uint64_t seed) {
  ScenarioSpec spec;
  spec.name = mode_name(mode);
  spec.mode = mode;
  spec.abrr.num_aps = num_aps;
  spec.abrr.arrs_per_ap = 2;  // paper: 2 ARRs per AP, 2 TRRs per cluster
  spec.timing.mrai = sim::sec(5);
  spec.timing.proc_delay = sim::msec(50);
  spec.timing.proc_per_update = sim::usec(20);
  spec.timing.latency_jitter = sim::msec(20);
  spec.seeds = {seed};
  return spec;
}

}  // namespace abrr::runner
