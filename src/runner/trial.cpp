#include "runner/trial.h"

#include <cinttypes>
#include <cstdarg>
#include <cstdio>
#include <utility>
#include <vector>

#include "bgp/attrs_intern.h"
#include "fault/injector.h"
#include "fault/recovery.h"
#include "fault/schedule.h"
#include "topo/topology.h"
#include "trace/update_trace.h"
#include "trace/workload.h"
#include "verify/equivalence.h"

namespace abrr::runner {
namespace {

// Fault-episode measurement cadence (mirrors bench/fault_resilience,
// which this executor replaces).
constexpr sim::Time kPollStep = sim::msec(100);
constexpr sim::Time kFingerprintStep = sim::msec(500);

std::uint64_t total_hold_expirations(harness::Testbed& bed) {
  std::uint64_t n = 0;
  for (const bgp::RouterId id : bed.all_ids()) {
    n += bed.speaker(id).counters().hold_expirations;
  }
  return n;
}

/// Crash/chaos episode against a converged bed. Fills the fault fields
/// of `r`; leaves the bed in its post-episode state for collection.
void run_fault_episode(const ScenarioSpec& spec, std::uint64_t seed,
                       harness::Testbed& bed, trace::RouteRegenerator& regen,
                       TrialResult& r) {
  using Scenario = harness::FaultOptions::Scenario;
  r.fault_ran = true;

  const std::uint64_t fp0 = fault::rib_fingerprint(bed);
  std::vector<std::pair<bgp::RouterId, std::size_t>> steady_sizes;
  for (const bgp::RouterId id : bed.client_ids()) {
    steady_sizes.emplace_back(id, bed.speaker(id).loc_rib().size());
  }
  bed.reset_counters();
  const std::uint64_t dropped0 = bed.network().total_dropped();
  const std::uint64_t expirations0 = total_hold_expirations(bed);

  fault::FaultSchedule schedule;
  sim::Time t_crash = 0;
  sim::Time t_restart = 0;
  if (spec.fault.scenario == Scenario::kChaos) {
    fault::ChaosParams chaos;
    chaos.events = spec.fault.chaos_events;
    chaos.start = bed.scheduler().now() + sim::sec(1);
    chaos.horizon = bed.scheduler().now() + sim::sec(40);
    sim::Rng chaos_rng{seed + spec.fault.chaos_seed_offset};
    schedule = fault::FaultSchedule::chaos(chaos, bed.all_ids(),
                                           bed.network().sessions(),
                                           chaos_rng);
  } else {
    r.victim = spec.fault.scenario == Scenario::kRrCrash
                   ? bed.rr_ids().front()
                   : bed.client_ids().front();
    fault::FaultEvent ev;
    ev.kind = fault::FaultKind::kRouterCrash;
    ev.at = bed.scheduler().now() + sim::sec(1);
    ev.duration = spec.fault.outage;
    ev.a = r.victim;
    schedule.add(ev);
    t_crash = ev.at;
    t_restart = ev.at + ev.duration;
  }

  fault::FaultInjector injector{bed, schedule};
  injector.set_resync(fault::make_workload_resync(bed, regen));
  injector.arm();

  if (spec.fault.scenario == Scenario::kChaos) {
    // No single victim to time: run past the last repair and check the
    // bed reconverged to its pre-fault RIB state.
    bed.run_until(injector.last_event_end() + sim::sec(60));
    r.fingerprint_restored = fault::rib_fingerprint(bed) == fp0;
  } else {
    const sim::Time deadline = t_restart + sim::sec(180);
    sim::Time next_fingerprint = t_restart;
    sim::Time recovered_at = -1;
    sim::Time detected_at = -1;
    while (bed.scheduler().now() < deadline) {
      bed.run_until(bed.scheduler().now() + kPollStep);
      const sim::Time now = bed.scheduler().now();
      if (detected_at < 0 && total_hold_expirations(bed) > expirations0) {
        detected_at = now;
      }
      // Blackout: any surviving client below its steady-state count.
      bool missing = false;
      for (const auto& [id, want] : steady_sizes) {
        if (id == r.victim) continue;
        if (bed.speaker(id).loc_rib().size() < want) {
          missing = true;
          break;
        }
      }
      if (missing) r.blackout_ms += sim::to_msec(kPollStep);
      if (now >= next_fingerprint) {
        next_fingerprint = now + kFingerprintStep;
        if (fault::rib_fingerprint(bed) == fp0) {
          recovered_at = now;
          break;
        }
      }
    }
    if (detected_at >= 0) {
      r.detection_ms = sim::to_msec(detected_at - t_crash);
    }
    if (recovered_at >= 0) {
      r.recovery_ms = sim::to_msec(recovered_at - t_restart);
      r.fingerprint_restored = true;
    }
  }

  for (const bgp::RouterId id : bed.all_ids()) {
    const auto c = bed.delta_counters(id);
    r.churn_updates += c.updates_received;
    r.churn_routes += c.routes_received;
  }
  r.dropped_messages = bed.network().total_dropped() - dropped0;
}

}  // namespace

topo::Topology make_trial_topology(const TopologyOptions& t, sim::Rng& rng) {
  topo::TopologyParams tp;
  tp.pops = t.pops;
  tp.clients_per_pop = t.clients_per_pop;
  tp.peering_router_fraction = t.peering_router_fraction;
  tp.peer_ases = t.peer_ases;
  tp.peering_points_per_as = t.points_per_as;
  tp.peering_skew = t.peering_skew;
  return topo::make_tier1(tp, rng);
}

trace::Workload make_trial_workload(const WorkloadOptions& w,
                                    const topo::Topology& topology,
                                    sim::Rng& rng) {
  trace::WorkloadParams wp;
  wp.prefixes = w.prefixes;
  return trace::Workload::generate(wp, topology, rng);
}

TrialResult run_trial(const ScenarioSpec& spec, std::uint64_t seed,
                      std::size_t index) {
  TrialResult r;
  r.scenario = spec.name;
  r.mode = mode_name(spec.mode);
  r.seed = seed;
  r.index = index;

  // Heap isolation: every make_attrs() below goes to this worker's trial
  // interner, reset+pre-sized now (no route of the previous trial on
  // this thread can still be alive) and reused slab-for-slab by the next
  // trial. Parallel trials therefore never contend on attribute storage.
  bgp::AttrsInterner::TrialScope attrs_scope{spec.expected_attr_blocks()};

  // Everything below is regenerated from (spec, seed): the trial shares
  // no state with any other trial and never leaves this thread.
  sim::Rng rng{seed};
  topo::Topology topology = make_trial_topology(spec.topology, rng);
  const trace::Workload workload = make_trial_workload(spec.workload, topology, rng);
  const std::vector<bgp::Ipv4Prefix> prefixes = workload.prefixes();

  harness::Testbed bed{topology, spec.testbed_config(seed), prefixes};
  trace::RouteRegenerator regen{bed.scheduler(), workload, bed.inject_fn()};
  regen.load_snapshot(0, sim::sec_f(spec.workload.snapshot_seconds));

  // Hold-timer beds never quiesce (keepalives tick forever): run to a
  // generous convergence deadline instead, as the fault bench did.
  const bool hold_armed = bed.config().timing.hold_time > 0;
  if (hold_armed) {
    bed.run_until(sim::sec_f(spec.workload.snapshot_seconds) + sim::sec(40));
    r.converged = true;
  } else {
    r.converged = bed.run_to_quiescence(500'000'000);
  }

  if (r.converged && spec.workload.trace_seconds > 0) {
    bed.reset_counters();
    trace::TraceParams tparams;
    tparams.duration = sim::sec_f(spec.workload.trace_seconds);
    tparams.events_per_second = spec.workload.trace_events_per_second;
    sim::Rng trace_rng{seed + 1};
    const auto trace =
        trace::UpdateTrace::generate(tparams, workload, trace_rng);
    r.trace_events = trace.events().size();
    regen.play(trace, bed.scheduler().now());
    if (hold_armed) {
      bed.run_until(bed.scheduler().now() +
                    sim::sec_f(spec.workload.trace_seconds) + sim::sec(40));
    } else {
      r.converged = bed.run_to_quiescence(500'000'000);
    }
  }

  if (r.converged && spec.fault.enabled) {
    run_fault_episode(spec, seed, bed, regen, r);
    if (spec.fault.verify_fullmesh) {
      // An untouched full-mesh reference built from the same
      // (spec, seed), inside this trial so the comparison stays
      // thread-confined.
      sim::Rng base_rng{seed};
      topo::Topology base_topology = make_trial_topology(spec.topology, base_rng);
      const trace::Workload base_workload =
          make_trial_workload(spec.workload, base_topology, base_rng);
      const std::vector<bgp::Ipv4Prefix> base_prefixes =
          base_workload.prefixes();
      harness::TestbedConfig base_cfg = spec.testbed_config(seed);
      base_cfg.mode = ibgp::IbgpMode::kFullMesh;
      base_cfg.multipath = false;
      base_cfg.timing.hold_time = 0;
      base_cfg.obs.enabled = false;
      harness::Testbed baseline{std::move(base_topology), base_cfg,
                               base_prefixes};
      trace::RouteRegenerator base_regen{baseline.scheduler(), base_workload,
                                         baseline.inject_fn()};
      base_regen.load_snapshot(0,
                               sim::sec_f(spec.workload.snapshot_seconds));
      if (baseline.run_to_quiescence(500'000'000)) {
        r.fullmesh_equivalent =
            verify::compare_loc_ribs(bed, baseline, prefixes).equivalent();
      }
    }
  }

  r.speakers = bed.all_ids().size();
  r.rrs = bed.rr_ids().size();
  r.clients = bed.client_ids().size();
  r.sessions = bed.session_count();
  r.rib_in = bed.rr_rib_in();
  r.rib_out = bed.rr_rib_out();
  r.rr_totals = bed.rr_counters();
  r.client_totals = bed.client_counters();
  r.fingerprint = fault::rib_fingerprint(bed);
  r.metrics_json = bed.metrics().to_json(/*aggregate=*/true);

  // Allocation telemetry, collected while the bed is still alive. Every
  // field is simulation-determined (see TrialResult), so it serializes.
  const bgp::AttrsInterner& interner = attrs_scope.interner();
  r.attr_blocks = interner.live_blocks();
  r.attr_hits = interner.hits();
  r.attr_misses = interner.misses();
  r.attr_arena_bytes = interner.arena_bytes();
  r.sched_events = bed.scheduler().events_executed();
  r.sched_pool_capacity = bed.scheduler().pool_capacity();
  return r;
}

namespace {

void append(std::string& out, const char* fmt, ...) {
  char buf[256];
  va_list args;
  va_start(args, fmt);
  std::vsnprintf(buf, sizeof buf, fmt, args);
  va_end(args);
  out += buf;
}

void append_aggregate(std::string& out, const char* key,
                      const harness::Aggregate& a) {
  append(out, "\"%s\":{\"min\":%.4f,\"avg\":%.4f,\"max\":%.4f}", key, a.min,
         a.avg, a.max);
}

void append_totals(std::string& out, const char* key,
                   const harness::RoleTotals& t) {
  append(out,
         "\"%s\":{\"received\":%" PRIu64 ",\"generated\":%" PRIu64
         ",\"transmitted\":%" PRIu64 ",\"bytes\":%" PRIu64
         ",\"wire_bytes\":%" PRIu64 ",\"speakers\":%zu}",
         key, t.received, t.generated, t.transmitted, t.bytes, t.wire_bytes,
         t.speakers);
}

}  // namespace

std::string TrialResult::serialize() const {
  // Canonical form: every simulated-outcome field, nothing real-time
  // (no wall_ms) and no submission bookkeeping (no index), so the same
  // (spec, seed) serializes identically at any --jobs and any
  // submission order.
  std::string out;
  out.reserve(512 + metrics_json.size());
  out += "{";
  append(out, "\"scenario\":\"%s\",\"mode\":\"%s\",\"seed\":%" PRIu64 ",",
         scenario.c_str(), mode.c_str(), seed);
  append(out, "\"error\":\"%s\",\"converged\":%s,", error.c_str(),
         converged ? "true" : "false");
  append(out, "\"speakers\":%zu,\"rrs\":%zu,\"clients\":%zu,\"sessions\":%zu,",
         speakers, rrs, clients, sessions);
  append_aggregate(out, "rib_in", rib_in);
  out += ",";
  append_aggregate(out, "rib_out", rib_out);
  out += ",";
  append_totals(out, "rr", rr_totals);
  out += ",";
  append_totals(out, "clients", client_totals);
  out += ",";
  append(out, "\"fingerprint\":\"%016" PRIx64 "\",", fingerprint);
  append(out, "\"trace_events\":%" PRIu64 ",", trace_events);
  append(out,
         "\"alloc\":{\"attr_blocks\":%" PRIu64 ",\"attr_hits\":%" PRIu64
         ",\"attr_misses\":%" PRIu64 ",\"attr_arena_bytes\":%" PRIu64
         ",\"sched_events\":%" PRIu64 ",\"sched_pool_capacity\":%" PRIu64
         "},",
         attr_blocks, attr_hits, attr_misses, attr_arena_bytes, sched_events,
         sched_pool_capacity);
  append(out,
         "\"fault\":{\"ran\":%s,\"victim\":%u,\"detection_ms\":%.3f,"
         "\"blackout_ms\":%.3f,\"recovery_ms\":%.3f,"
         "\"fingerprint_restored\":%s,\"fullmesh_equivalent\":%s,"
         "\"churn_updates\":%" PRIu64 ",\"churn_routes\":%" PRIu64
         ",\"dropped_messages\":%" PRIu64 "},",
         fault_ran ? "true" : "false", victim, detection_ms, blackout_ms,
         recovery_ms, fingerprint_restored ? "true" : "false",
         fullmesh_equivalent ? "true" : "false", churn_updates, churn_routes,
         dropped_messages);
  out += "\"metrics\":";
  out += metrics_json.empty() ? "{}" : metrics_json;
  out += "}";
  return out;
}

}  // namespace abrr::runner
