// Shared command-line parsing for the benches and examples.
//
// Replaces the copy-pasted `rfind("--flag=", 0)` loops every bench
// carried: flags are declared once (name, help, destination), parsing
// is strict — an unknown flag or malformed value fails loudly instead
// of being silently ignored — and --help prints a generated usage
// listing. Pass-through prefixes (allow_prefix) exist for wrapped
// libraries that parse their own flags (google-benchmark's
// --benchmark_*).
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <string_view>
#include <vector>

namespace abrr::runner {

class ArgParser {
 public:
  /// `program` names the binary in usage/error output.
  explicit ArgParser(std::string program) : program_(std::move(program)) {}

  /// Declares `--name=VALUE`. The destination keeps its current value
  /// (the default shown in --help) when the flag is absent.
  void add(std::string name, std::string help, std::string* out);
  void add(std::string name, std::string help, double* out);
  void add(std::string name, std::string help, unsigned long* out);
  void add(std::string name, std::string help, unsigned long long* out);
  void add(std::string name, std::string help, std::uint32_t* out);
  /// Comma-separated list, e.g. --seeds=1,2,3.
  void add(std::string name, std::string help,
           std::vector<std::uint64_t>* out);
  /// Boolean: `--name` alone sets true; `--name=0/1/true/false` sets
  /// explicitly.
  void add(std::string name, std::string help, bool* out);

  /// Arguments starting with `prefix` are ignored (left for a wrapped
  /// library to parse), e.g. allow_prefix("--benchmark_").
  void allow_prefix(std::string prefix) {
    passthrough_.push_back(std::move(prefix));
  }

  /// Parses argv. Returns false with *error set on the first unknown
  /// flag, malformed value, or non-flag positional argument. `--help`
  /// and `-h` return false with *error empty and help_requested() true.
  bool try_parse(int argc, char* const* argv, std::string* error);

  /// try_parse, but exits: usage + exit(0) on --help, error + usage to
  /// stderr + exit(2) on failure. The benches' entry point.
  void parse(int argc, char* const* argv);

  bool help_requested() const { return help_requested_; }
  std::string usage() const;

 private:
  struct Flag {
    std::string name;  // without the leading "--"
    std::string help;
    bool is_bool = false;
    /// Applies a value; returns false if it does not parse.
    std::function<bool(std::string_view)> set;
  };

  void add_flag(std::string name, std::string help, bool is_bool,
                std::function<bool(std::string_view)> set);
  const Flag* find(std::string_view name) const;

  std::string program_;
  std::vector<Flag> flags_;
  std::vector<std::string> passthrough_;
  bool help_requested_ = false;
};

}  // namespace abrr::runner
