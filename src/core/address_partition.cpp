#include "core/address_partition.h"

#include <algorithm>
#include <stdexcept>

namespace abrr::core {
namespace {

// Finds the index of the range containing `addr`. Ranges are contiguous
// and cover the whole space, so this always succeeds.
std::size_t range_containing(const std::vector<AddressRange>& ranges,
                             bgp::Ipv4Addr addr) {
  const auto it = std::upper_bound(
      ranges.begin(), ranges.end(), addr,
      [](bgp::Ipv4Addr a, const AddressRange& r) { return a < r.first; });
  return static_cast<std::size_t>(it - ranges.begin()) - 1;
}

}  // namespace

PartitionScheme::PartitionScheme(std::vector<AddressRange> ranges)
    : ranges_(std::make_shared<const std::vector<AddressRange>>(
          std::move(ranges))) {
  if (ranges_->empty()) throw std::invalid_argument{"no address ranges"};
  if (ranges_->front().first != 0 || ranges_->back().last != ~bgp::Ipv4Addr{0}) {
    throw std::invalid_argument{"ranges must cover the address space"};
  }
  for (std::size_t i = 1; i < ranges_->size(); ++i) {
    if ((*ranges_)[i].first != (*ranges_)[i - 1].last + 1) {
      throw std::invalid_argument{"ranges must be contiguous"};
    }
  }
}

PartitionScheme PartitionScheme::uniform(std::size_t n) {
  if (n == 0) throw std::invalid_argument{"uniform: n == 0"};
  const std::uint64_t total = 1ULL << 32;
  const std::uint64_t chunk = total / n;
  std::vector<AddressRange> ranges;
  ranges.reserve(n);
  std::uint64_t start = 0;
  for (std::size_t i = 0; i < n; ++i) {
    const std::uint64_t end = i + 1 == n ? total - 1 : start + chunk - 1;
    ranges.push_back(AddressRange{static_cast<bgp::Ipv4Addr>(start),
                                  static_cast<bgp::Ipv4Addr>(end)});
    start = end + 1;
  }
  return PartitionScheme{std::move(ranges)};
}

PartitionScheme PartitionScheme::balanced(
    std::size_t n, std::span<const Ipv4Prefix> prefixes) {
  if (n == 0) throw std::invalid_argument{"balanced: n == 0"};
  if (prefixes.size() < n) {
    // Too few prefixes to balance meaningfully; fall back to uniform.
    return uniform(n);
  }
  std::vector<bgp::Ipv4Addr> starts(prefixes.size());
  for (std::size_t i = 0; i < prefixes.size(); ++i) {
    starts[i] = prefixes[i].first();
  }
  std::sort(starts.begin(), starts.end());

  // Cut between equal-count chunks, midway between neighboring prefixes.
  std::vector<AddressRange> ranges;
  ranges.reserve(n);
  bgp::Ipv4Addr begin = 0;
  for (std::size_t i = 1; i < n; ++i) {
    const std::size_t cut = i * prefixes.size() / n;
    const std::uint64_t lo = starts[cut - 1];
    const std::uint64_t hi = starts[cut];
    std::uint64_t boundary = lo + (hi - lo) / 2;
    if (boundary <= begin) boundary = static_cast<std::uint64_t>(begin) + 1;
    if (boundary > ~bgp::Ipv4Addr{0}) boundary = ~bgp::Ipv4Addr{0};
    ranges.push_back(
        AddressRange{begin, static_cast<bgp::Ipv4Addr>(boundary - 1)});
    begin = static_cast<bgp::Ipv4Addr>(boundary);
  }
  ranges.push_back(AddressRange{begin, ~bgp::Ipv4Addr{0}});
  return PartitionScheme{std::move(ranges)};
}

std::vector<ApId> PartitionScheme::aps_of(const Ipv4Prefix& prefix) const {
  const auto& ranges = *ranges_;
  std::vector<ApId> out;
  std::size_t i = range_containing(ranges, prefix.first());
  out.push_back(static_cast<ApId>(i));
  // A prefix spanning boundaries belongs to every AP it touches (§2.1).
  while (ranges[i].last < prefix.last()) {
    ++i;
    out.push_back(static_cast<ApId>(i));
  }
  return out;
}

std::size_t PartitionScheme::prefixes_in(
    ApId ap, std::span<const Ipv4Prefix> prefixes) const {
  std::size_t count = 0;
  for (const Ipv4Prefix& p : prefixes) {
    if ((*ranges_)[static_cast<std::size_t>(ap)].overlaps(p)) ++count;
  }
  return count;
}

ibgp::ApOfFn PartitionScheme::mapper() const {
  const auto ranges = ranges_;
  return [ranges](const Ipv4Prefix& prefix) {
    std::vector<ApId> out;
    std::size_t i = range_containing(*ranges, prefix.first());
    out.push_back(static_cast<ApId>(i));
    while ((*ranges)[i].last < prefix.last()) {
      ++i;
      out.push_back(static_cast<ApId>(i));
    }
    return out;
  };
}

}  // namespace abrr::core
