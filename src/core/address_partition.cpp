#include "core/address_partition.h"

#include <algorithm>
#include <stdexcept>

namespace abrr::core {
namespace {

// Finds the index of the range containing `addr`. Ranges are contiguous
// and cover the whole space, so this always succeeds.
std::size_t range_containing(const std::vector<AddressRange>& ranges,
                             bgp::Ipv4Addr addr) {
  const auto it = std::upper_bound(
      ranges.begin(), ranges.end(), addr,
      [](bgp::Ipv4Addr a, const AddressRange& r) { return a < r.first; });
  return static_cast<std::size_t>(it - ranges.begin()) - 1;
}

}  // namespace

PartitionScheme::PartitionScheme(std::vector<AddressRange> ranges)
    : ranges_(std::make_shared<const std::vector<AddressRange>>(
          std::move(ranges))) {
  if (ranges_->empty()) throw std::invalid_argument{"no address ranges"};
  if (ranges_->front().first != 0 || ranges_->back().last != ~bgp::Ipv4Addr{0}) {
    throw std::invalid_argument{"ranges must cover the address space"};
  }
  for (std::size_t i = 1; i < ranges_->size(); ++i) {
    if ((*ranges_)[i].first != (*ranges_)[i - 1].last + 1) {
      throw std::invalid_argument{"ranges must be contiguous"};
    }
  }
}

PartitionScheme PartitionScheme::uniform(std::size_t n) {
  if (n == 0) throw std::invalid_argument{"uniform: n == 0"};
  const std::uint64_t total = 1ULL << 32;
  const std::uint64_t chunk = total / n;
  std::vector<AddressRange> ranges;
  ranges.reserve(n);
  std::uint64_t start = 0;
  for (std::size_t i = 0; i < n; ++i) {
    const std::uint64_t end = i + 1 == n ? total - 1 : start + chunk - 1;
    ranges.push_back(AddressRange{static_cast<bgp::Ipv4Addr>(start),
                                  static_cast<bgp::Ipv4Addr>(end)});
    start = end + 1;
  }
  return PartitionScheme{std::move(ranges)};
}

PartitionScheme PartitionScheme::balanced(
    std::size_t n, std::span<const Ipv4Prefix> prefixes) {
  if (n == 0) throw std::invalid_argument{"balanced: n == 0"};
  if (prefixes.size() < n) {
    // Too few prefixes to balance meaningfully; fall back to uniform.
    return uniform(n);
  }
  std::vector<bgp::Ipv4Addr> starts(prefixes.size());
  for (std::size_t i = 0; i < prefixes.size(); ++i) {
    starts[i] = prefixes[i].first();
  }
  std::sort(starts.begin(), starts.end());

  // Cut between equal-count chunks, midway between neighboring prefixes.
  std::vector<AddressRange> ranges;
  ranges.reserve(n);
  bgp::Ipv4Addr begin = 0;
  for (std::size_t i = 1; i < n; ++i) {
    const std::size_t cut = i * prefixes.size() / n;
    const std::uint64_t lo = starts[cut - 1];
    const std::uint64_t hi = starts[cut];
    std::uint64_t boundary = lo + (hi - lo) / 2;
    if (boundary <= begin) boundary = static_cast<std::uint64_t>(begin) + 1;
    if (boundary > ~bgp::Ipv4Addr{0}) boundary = ~bgp::Ipv4Addr{0};
    ranges.push_back(
        AddressRange{begin, static_cast<bgp::Ipv4Addr>(boundary - 1)});
    begin = static_cast<bgp::Ipv4Addr>(boundary);
  }
  ranges.push_back(AddressRange{begin, ~bgp::Ipv4Addr{0}});
  return PartitionScheme{std::move(ranges)};
}

std::vector<ApId> PartitionScheme::aps_of(const Ipv4Prefix& prefix) const {
  const auto& ranges = *ranges_;
  std::vector<ApId> out;
  std::size_t i = range_containing(ranges, prefix.first());
  out.push_back(static_cast<ApId>(i));
  // A prefix spanning boundaries belongs to every AP it touches (§2.1).
  while (ranges[i].last < prefix.last()) {
    ++i;
    out.push_back(static_cast<ApId>(i));
  }
  return out;
}

std::size_t PartitionScheme::prefixes_in(
    ApId ap, std::span<const Ipv4Prefix> prefixes) const {
  std::size_t count = 0;
  for (const Ipv4Prefix& p : prefixes) {
    if ((*ranges_)[static_cast<std::size_t>(ap)].overlaps(p)) ++count;
  }
  return count;
}

void ArrDirectory::assign(ibgp::ApId ap, bgp::RouterId arr) {
  const auto idx = static_cast<std::size_t>(ap);
  if (idx >= aps_.size()) aps_.resize(idx + 1);
  auto& arrs = aps_[idx].arrs;
  const auto it = std::lower_bound(arrs.begin(), arrs.end(), arr);
  if (it != arrs.end() && *it == arr) return;
  arrs.insert(it, arr);
}

void ArrDirectory::set_alive(bgp::RouterId arr, bool alive) {
  const auto it = std::find(dead_.begin(), dead_.end(), arr);
  const bool was_alive = it == dead_.end();
  if (alive == was_alive) return;

  // Record primaries before the transition so we can count failovers.
  std::vector<bgp::RouterId> before(aps_.size());
  for (std::size_t ap = 0; ap < aps_.size(); ++ap) {
    before[ap] = primary(static_cast<ibgp::ApId>(ap));
  }

  if (alive) {
    dead_.erase(it);
  } else {
    dead_.push_back(arr);
  }

  for (std::size_t ap = 0; ap < aps_.size(); ++ap) {
    const bgp::RouterId now = primary(static_cast<ibgp::ApId>(ap));
    // Losing the last ARR of an AP is an outage, not a failover; a
    // failover is clients re-homing onto a different live ARR.
    if (now != before[ap] && now != bgp::kNoRouter &&
        before[ap] != bgp::kNoRouter) {
      ++failovers_;
    }
  }
}

bool ArrDirectory::alive(bgp::RouterId arr) const {
  return std::find(dead_.begin(), dead_.end(), arr) == dead_.end();
}

const std::vector<bgp::RouterId>& ArrDirectory::arrs_of(
    ibgp::ApId ap) const {
  static const std::vector<bgp::RouterId> kEmpty;
  const auto idx = static_cast<std::size_t>(ap);
  return idx < aps_.size() ? aps_[idx].arrs : kEmpty;
}

bgp::RouterId ArrDirectory::primary(ibgp::ApId ap) const {
  for (const bgp::RouterId arr : arrs_of(ap)) {
    if (alive(arr)) return arr;  // arrs are sorted: first live == lowest
  }
  return bgp::kNoRouter;
}

bool ArrDirectory::fully_redundant() const {
  for (std::size_t ap = 0; ap < aps_.size(); ++ap) {
    if (primary(static_cast<ibgp::ApId>(ap)) == bgp::kNoRouter) {
      return false;
    }
  }
  return true;
}

ibgp::ApOfFn PartitionScheme::mapper() const {
  const auto ranges = ranges_;
  return [ranges](const Ipv4Prefix& prefix) {
    std::vector<ApId> out;
    std::size_t i = range_containing(*ranges, prefix.first());
    out.push_back(static_cast<ApId>(i));
    while ((*ranges)[i].last < prefix.last()) {
      ++i;
      out.push_back(static_cast<ApId>(i));
    }
    return out;
  };
}

}  // namespace abrr::core
