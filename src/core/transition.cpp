#include "core/transition.h"

#include <algorithm>
#include <stdexcept>

namespace abrr::core {

TransitionController::TransitionController(PartitionScheme scheme)
    : scheme_(std::move(scheme)),
      accepted_(std::make_shared<std::vector<bool>>(scheme_.count(), false)) {}

void TransitionController::attach(ibgp::Speaker& speaker) {
  if (speaker.config().mode != ibgp::IbgpMode::kDual) {
    throw std::invalid_argument{"transition requires kDual speakers"};
  }
  const auto accepted = accepted_;
  const auto scheme = scheme_;
  speaker.set_abrr_acceptance([accepted, scheme](const Ipv4Prefix& prefix) {
    // A prefix spanning several APs moves only once all of them have
    // been cut over, so its routes always come from a single plane.
    for (const ApId ap : scheme.aps_of(prefix)) {
      if (!(*accepted)[static_cast<std::size_t>(ap)]) return false;
    }
    return true;
  });
  speakers_.push_back(&speaker);
}

void TransitionController::cutover(ApId ap) {
  accepted_->at(static_cast<std::size_t>(ap)) = true;
  refresh_all();
}

void TransitionController::rollback(ApId ap) {
  accepted_->at(static_cast<std::size_t>(ap)) = false;
  refresh_all();
}

bool TransitionController::is_cutover(ApId ap) const {
  return accepted_->at(static_cast<std::size_t>(ap));
}

bool TransitionController::complete() const {
  return std::all_of(accepted_->begin(), accepted_->end(),
                     [](bool b) { return b; });
}

std::size_t TransitionController::cutover_count() const {
  return static_cast<std::size_t>(
      std::count(accepted_->begin(), accepted_->end(), true));
}

void TransitionController::refresh_all() {
  for (ibgp::Speaker* speaker : speakers_) speaker->refresh_all();
}

}  // namespace abrr::core
