// TBRR -> ABRR incremental transition (§2.4).
//
// Routers run both planes (ibgp::IbgpMode::kDual) and advertise on both;
// this controller owns the per-AP acceptance switch that decides which
// plane's routes each prefix's decision uses. The ISP cuts over one AP at
// a time, verifies, and proceeds; rollback is the same switch flipped
// back.
#pragma once

#include <memory>
#include <vector>

#include "core/address_partition.h"
#include "ibgp/speaker.h"

namespace abrr::core {

/// Drives the per-AP cutover across a fleet of kDual speakers.
class TransitionController {
 public:
  explicit TransitionController(PartitionScheme scheme);

  /// Installs the acceptance switch on a speaker and remembers it for
  /// refreshes. The speaker must be in kDual mode.
  void attach(ibgp::Speaker& speaker);

  /// Accept ABRR routes for this AP from now on. Re-runs decisions on
  /// every attached speaker so the change takes effect immediately.
  void cutover(ApId ap);

  /// Reverts an AP to TBRR (verification failed).
  void rollback(ApId ap);

  bool is_cutover(ApId ap) const;

  /// True once every AP runs on ABRR (TBRR can then be switched off).
  bool complete() const;

  std::size_t cutover_count() const;

  const PartitionScheme& scheme() const { return scheme_; }

 private:
  void refresh_all();

  PartitionScheme scheme_;
  /// Shared with every speaker's acceptance closure.
  std::shared_ptr<std::vector<bool>> accepted_;
  std::vector<ibgp::Speaker*> speakers_;
};

}  // namespace abrr::core
