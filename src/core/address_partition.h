// Address Partitions (APs): the paper's core abstraction (§2.1).
//
// An AP is a contiguous address range assigned to one or more ARRs. The
// scheme covers the whole IPv4 space with non-overlapping, contiguous
// ranges; a prefix spanning a range boundary belongs to every AP it
// touches and its routes are advertised to the ARRs of all of them.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "bgp/prefix.h"
#include "ibgp/speaker.h"

namespace abrr::core {

using bgp::AddressRange;
using bgp::Ipv4Prefix;
using ibgp::ApId;

/// A complete partitioning of the IPv4 address space into APs.
class PartitionScheme {
 public:
  /// Splits the address space into `n` equal-size ranges — the
  /// configuration used by the paper's testbed ("The address range size
  /// for each AP is the same", §4). Requires n >= 1.
  static PartitionScheme uniform(std::size_t n);

  /// Splits so that each AP holds roughly the same number of the given
  /// prefixes — the balancing the paper recommends ISPs apply (§2.1,
  /// §4.1). Requires n >= 1. Prefixes spanning a boundary are counted
  /// toward the earlier AP.
  static PartitionScheme balanced(std::size_t n,
                                  std::span<const Ipv4Prefix> prefixes);

  std::size_t count() const { return ranges_->size(); }
  const std::vector<AddressRange>& ranges() const { return *ranges_; }

  /// APs a prefix belongs to (one, or several if it spans boundaries).
  std::vector<ApId> aps_of(const Ipv4Prefix& prefix) const;

  /// Number of the given prefixes that fall (at least partly) in `ap`.
  std::size_t prefixes_in(ApId ap,
                          std::span<const Ipv4Prefix> prefixes) const;

  /// A copyable mapper for ibgp::SpeakerConfig::ap_of (shares the range
  /// table, so cheap to hand to thousands of speakers).
  ibgp::ApOfFn mapper() const;

 private:
  explicit PartitionScheme(std::vector<AddressRange> ranges);

  // Shared so mapper() closures stay valid and cheap to copy.
  std::shared_ptr<const std::vector<AddressRange>> ranges_;
};

/// Tracks the redundant ARRs serving each AP and their liveness — the
/// paper's reliability design (§2.3.1): every client peers with every
/// ARR of an AP, so one ARR per AP staying alive preserves full-mesh-
/// equivalent routing. Election is deterministic: the primary of an AP
/// is its lowest-id live ARR, so every observer (and every replay of
/// the same chaos schedule) agrees on it without any protocol exchange.
class ArrDirectory {
 public:
  /// Registers `arr` as serving `ap`. Idempotent per (ap, arr).
  void assign(ibgp::ApId ap, bgp::RouterId arr);

  /// Marks an ARR dead/alive (router crash / restart). Unknown routers
  /// are ignored — callers feed every crash through without filtering.
  void set_alive(bgp::RouterId arr, bool alive);

  bool alive(bgp::RouterId arr) const;

  /// ARRs of one AP, sorted by id. Empty for an unknown AP.
  const std::vector<bgp::RouterId>& arrs_of(ibgp::ApId ap) const;

  /// Lowest-id live ARR of the AP, or bgp::kNoRouter if the AP lost
  /// all its ARRs (redundancy exhausted).
  bgp::RouterId primary(ibgp::ApId ap) const;

  /// Number of primary changes observed across set_alive transitions.
  std::size_t failovers() const { return failovers_; }

  /// Every AP still has at least one live ARR.
  bool fully_redundant() const;

  std::size_t ap_count() const { return aps_.size(); }

 private:
  struct ApState {
    std::vector<bgp::RouterId> arrs;  // sorted by id
  };
  std::vector<ApState> aps_;  // indexed by ApId
  std::vector<bgp::RouterId> dead_;
  std::size_t failovers_ = 0;
};

}  // namespace abrr::core
