// §3.3 / §3.4: iBGP peering-session counts per role.
//
// In the measured Tier-1 AS the busiest TRR had ~200 sessions (average
// ~100), while an ARR would need >1000 — one per router — which modern
// control-plane boxes handle (tested to 8000 full-table sessions).
// Clients go from 2 sessions (TBRR) to 2 x #APs (ABRR), still small for
// the recommended 10-15 APs.
#pragma once

namespace abrr::analysis {

struct SessionParams {
  double routers = 2000;        // data-plane routers in the AS
  double aps = 50;              // APs (ABRR) or clusters (TBRR)
  double rrs_per_group = 2;     // ARRs per AP / TRRs per cluster
};

struct SessionModel {
  /// An ARR peers with every data-plane router and with the ARRs of
  /// every other AP (its client role).
  static double arr_sessions(const SessionParams& p) {
    return p.routers + (p.aps - 1) * p.rrs_per_group;
  }

  /// A TRR peers with its cluster's clients and every other TRR
  /// (including its same-cluster twin only through the client rows, so
  /// we count the full TRR mesh minus itself).
  static double trr_sessions(const SessionParams& p) {
    const double clients_per_cluster = p.routers / p.aps;
    const double total_trrs = p.aps * p.rrs_per_group;
    return clients_per_cluster + (total_trrs - p.rrs_per_group);
  }

  /// An ABRR client peers with every ARR.
  static double abrr_client_sessions(const SessionParams& p) {
    return p.aps * p.rrs_per_group;
  }

  /// A TBRR client peers with its cluster's TRRs only.
  static double tbrr_client_sessions(const SessionParams& p) {
    return p.rrs_per_group;
  }

  /// Total sessions in the AS (each counted once).
  static double abrr_total(const SessionParams& p) {
    const double arrs = p.aps * p.rrs_per_group;
    return arrs * p.routers + arrs * (arrs - p.rrs_per_group) / 2.0;
  }
  static double tbrr_total(const SessionParams& p) {
    const double trrs = p.aps * p.rrs_per_group;
    return p.routers * p.rrs_per_group + trrs * (trrs - 1) / 2.0;
  }
  static double full_mesh_total(const SessionParams& p) {
    return p.routers * (p.routers - 1) / 2.0;
  }
};

}  // namespace abrr::analysis
