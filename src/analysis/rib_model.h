// Appendix A: closed-form RIB-In / RIB-Out sizes for ARRs, single-path
// TRRs, and multi-path TRRs.
#pragma once

#include <cstdint>

namespace abrr::analysis {

/// Input parameters of the analysis (Appendix A). Counts are totals for
/// the AS; `arrs`/`trrs` are the TOTAL number of RRs, so the redundancy
/// factor is arrs/aps (resp. trrs/clusters).
struct ModelParams {
  double prefixes = 400'000;  // #Prefixes
  double aps = 50;            // #APs (ABRR) or #Clusters (TBRR)
  double rrs = 100;           // #ARRs or #TRRs (total)
  double bal = 0;             // #BAL: best AS-level routes per prefix
};

/// ABRR (Appendix A.1).
struct AbrrModel {
  /// Managed routes: S^m = #BAL x #Prefixes / #APs.
  static double rib_in_managed(const ModelParams& p);
  /// Unmanaged routes: S^u = (#ARRs/#APs) x #Prefixes x (1 - 1/#APs).
  static double rib_in_unmanaged(const ModelParams& p);
  /// S = S^m + S^u.
  static double rib_in(const ModelParams& p);
  /// RIB-Out = S^m (single peer group of all clients).
  static double rib_out(const ModelParams& p);
};

/// Single-path TBRR (Appendix A.2).
struct TbrrModel {
  /// G(.): routes a TRR advertises to another TRR.
  static double g(const ModelParams& p);
  /// S^m = (#BAL / #Clusters) x #Prefixes.
  static double rib_in_managed(const ModelParams& p);
  /// S^u = G(.) x (#TRRs - 1).
  static double rib_in_unmanaged(const ModelParams& p);
  static double rib_in(const ModelParams& p);
  /// RIB-Out = G(.) x 2 + (#Prefixes - G(.)) x 1.
  static double rib_out(const ModelParams& p);
};

/// Multi-path TBRR (Appendix A.3).
struct TbrrMultiModel {
  static double rib_in_managed(const ModelParams& p);
  static double rib_in_unmanaged(const ModelParams& p);
  static double rib_in(const ModelParams& p);
  /// RIB-Out = S^m x 2 + S^u x 1.
  static double rib_out(const ModelParams& p);
};

}  // namespace abrr::analysis
