#include "analysis/rib_model.h"

namespace abrr::analysis {

double AbrrModel::rib_in_managed(const ModelParams& p) {
  return p.bal * p.prefixes / p.aps;
}

double AbrrModel::rib_in_unmanaged(const ModelParams& p) {
  return (p.rrs / p.aps) * p.prefixes * (1.0 - 1.0 / p.aps);
}

double AbrrModel::rib_in(const ModelParams& p) {
  return rib_in_managed(p) + rib_in_unmanaged(p);
}

double AbrrModel::rib_out(const ModelParams& p) { return rib_in_managed(p); }

double TbrrModel::g(const ModelParams& p) {
  if (p.bal < p.aps) return p.bal / p.aps * p.prefixes;
  return p.prefixes;
}

double TbrrModel::rib_in_managed(const ModelParams& p) {
  return p.bal / p.aps * p.prefixes;
}

double TbrrModel::rib_in_unmanaged(const ModelParams& p) {
  return g(p) * (p.rrs - 1.0);
}

double TbrrModel::rib_in(const ModelParams& p) {
  return rib_in_managed(p) + rib_in_unmanaged(p);
}

double TbrrModel::rib_out(const ModelParams& p) {
  return g(p) * 2.0 + (p.prefixes - g(p)) * 1.0;
}

double TbrrMultiModel::rib_in_managed(const ModelParams& p) {
  return TbrrModel::rib_in_managed(p);
}

double TbrrMultiModel::rib_in_unmanaged(const ModelParams& p) {
  return rib_in_managed(p) * (p.rrs - 1.0);
}

double TbrrMultiModel::rib_in(const ModelParams& p) {
  return rib_in_managed(p) + rib_in_unmanaged(p);
}

double TbrrMultiModel::rib_out(const ModelParams& p) {
  return rib_in_managed(p) * 2.0 + rib_in_unmanaged(p) * 1.0;
}

}  // namespace abrr::analysis
