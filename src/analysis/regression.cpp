#include "analysis/regression.h"

#include <cmath>
#include <stdexcept>

namespace abrr::analysis {

LinearFit fit_line(std::span<const double> xs, std::span<const double> ys) {
  if (xs.size() != ys.size() || xs.size() < 2) {
    throw std::invalid_argument{"fit_line: need >= 2 matched points"};
  }
  const double n = static_cast<double>(xs.size());
  double sx = 0, sy = 0, sxx = 0, sxy = 0;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    sx += xs[i];
    sy += ys[i];
    sxx += xs[i] * xs[i];
    sxy += xs[i] * ys[i];
  }
  const double denom = n * sxx - sx * sx;
  if (std::abs(denom) < 1e-12) {
    throw std::invalid_argument{"fit_line: degenerate x values"};
  }
  LinearFit fit;
  fit.slope = (n * sxy - sx * sy) / denom;
  fit.intercept = (sy - fit.slope * sx) / n;

  const double mean_y = sy / n;
  double ss_res = 0, ss_tot = 0;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    const double e = ys[i] - fit(xs[i]);
    ss_res += e * e;
    const double d = ys[i] - mean_y;
    ss_tot += d * d;
  }
  fit.r2 = ss_tot < 1e-12 ? 1.0 : 1.0 - ss_res / ss_tot;
  return fit;
}

}  // namespace abrr::analysis
