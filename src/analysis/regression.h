// Least-squares helpers: the paper fits a regression line F(#PASs) to the
// measured best-AS-level-routes-per-prefix curve (§3.1) and uses it as
// #BAL throughout the analysis.
#pragma once

#include <cstddef>
#include <span>
#include <utility>

namespace abrr::analysis {

/// y = slope * x + intercept.
struct LinearFit {
  double slope = 0;
  double intercept = 0;

  double operator()(double x) const { return slope * x + intercept; }

  /// Coefficient of determination of the fit on its input data.
  double r2 = 0;
};

/// Ordinary least squares over (x, y) pairs. Requires >= 2 points.
LinearFit fit_line(std::span<const double> xs, std::span<const double> ys);

/// The paper's F(#PASs): best AS-level routes per prefix as a function of
/// the number of peer ASes. Defaults to a fit through the two anchors
/// published in the paper: 10.2 routes/prefix at 25 peer ASes on peer
/// prefixes, and the single-path floor of 1 at 0 peers. Experiments
/// replace this with a fit to their own generated workload.
class BalModel {
 public:
  BalModel() : fit_{(10.2 - 1.0) / 25.0, 1.0, 1.0} {}
  explicit BalModel(LinearFit fit) : fit_(fit) {}

  /// #BAL for a given number of peer ASes (floored at 1).
  double operator()(double peer_ases) const {
    const double v = fit_(peer_ases);
    return v < 1.0 ? 1.0 : v;
  }

  const LinearFit& fit() const { return fit_; }

 private:
  LinearFit fit_;
};

}  // namespace abrr::analysis
