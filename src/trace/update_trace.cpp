#include "trace/update_trace.h"

#include <algorithm>
#include <map>

namespace abrr::trace {

UpdateTrace UpdateTrace::generate(const TraceParams& params,
                                  const Workload& workload, sim::Rng& rng) {
  UpdateTrace trace;
  trace.duration_ = params.duration;
  const auto& table = workload.table();
  if (table.empty() || params.events_per_second <= 0) return trace;

  const double mean_gap =
      static_cast<double>(sim::kSecond) / params.events_per_second;

  // Zipf popularity permutation: rank r maps to a fixed random prefix.
  std::vector<std::uint32_t> by_rank(table.size());
  for (std::uint32_t i = 0; i < by_rank.size(); ++i) by_rank[i] = i;
  rng.shuffle(std::span<std::uint32_t>{by_rank});

  // Salient announcements per prefix, computed lazily (only prefixes
  // that actually receive events pay for it).
  std::vector<std::vector<std::size_t>> salient(table.size());
  std::vector<bool> salient_done(table.size(), false);
  const auto salient_of = [&](std::uint32_t idx) -> const auto& {
    if (!salient_done[idx]) {
      salient[idx] = workload.salient_indices(table[idx]);
      salient_done[idx] = true;
    }
    return salient[idx];
  };

  sim::Time t = 0;
  while (true) {
    t += static_cast<sim::Time>(rng.exponential(mean_gap));
    if (t >= params.duration) break;

    const std::uint32_t prefix_idx =
        by_rank[rng.zipf(by_rank.size(), params.zipf_s)];
    const PrefixEntry& entry = table[prefix_idx];
    if (entry.anns.empty()) continue;

    // Pick an announcing point of this prefix (customers have their
    // customer ASN as first_as; events apply to them the same way).
    // Mostly target salient announcements: only changes to a router's
    // best surface as updates in real traces.
    std::size_t target_idx = rng.index(entry.anns.size());
    if (rng.chance(params.salient_fraction)) {
      const auto& candidates = salient_of(prefix_idx);
      if (!candidates.empty()) {
        target_idx = candidates[rng.index(candidates.size())];
      }
    }
    const Announcement& target = entry.anns[target_idx];
    const Asn peer_as = target.first_as;
    const RouterId point = rng.chance(params.single_point_fraction)
                               ? target.router
                               : bgp::kNoRouter;

    if (rng.chance(params.flap_fraction)) {
      trace.events_.push_back(
          TraceEvent{t, EventKind::kWithdraw, prefix_idx, peer_as, point});
      const sim::Time back = t + params.flap_hold;
      if (back < params.duration) {
        trace.events_.push_back(TraceEvent{back, EventKind::kReannounce,
                                           prefix_idx, peer_as, point});
      }
    } else if (point != bgp::kNoRouter) {
      trace.events_.push_back(
          TraceEvent{t, EventKind::kPathChange, prefix_idx, peer_as, point});
    } else {
      const EventKind kind =
          rng.chance(0.5) ? EventKind::kMedChange : EventKind::kPathChange;
      trace.events_.push_back(
          TraceEvent{t, kind, prefix_idx, peer_as, bgp::kNoRouter});
    }
  }
  // eBGP session resets: pick a peering point, withdraw everything it
  // announces in one burst, restore it after the hold time.
  if (params.session_resets_per_hour > 0) {
    // (point_router, peer_as) -> prefixes announced there.
    std::map<std::pair<RouterId, Asn>, std::vector<std::uint32_t>> by_point;
    for (std::uint32_t i = 0; i < table.size(); ++i) {
      for (const Announcement& a : table[i].anns) {
        auto& list = by_point[{a.router, a.first_as}];
        if (list.empty() || list.back() != i) list.push_back(i);
      }
    }
    if (!by_point.empty()) {
      std::vector<const std::pair<const std::pair<RouterId, Asn>,
                                  std::vector<std::uint32_t>>*>
          points;
      for (const auto& kv : by_point) points.push_back(&kv);
      const double mean_gap = 3600.0 * static_cast<double>(sim::kSecond) /
                              params.session_resets_per_hour;
      sim::Time rt = 0;
      for (;;) {
        rt += static_cast<sim::Time>(rng.exponential(mean_gap));
        if (rt >= params.duration) break;
        const auto* point = points[rng.index(points.size())];
        const auto [router, peer_as] = point->first;
        for (const std::uint32_t idx : point->second) {
          trace.events_.push_back(
              TraceEvent{rt, EventKind::kWithdraw, idx, peer_as, router});
          const sim::Time back = rt + params.session_reset_hold;
          if (back < params.duration) {
            trace.events_.push_back(TraceEvent{back, EventKind::kReannounce,
                                               idx, peer_as, router});
          }
        }
      }
    }
  }

  std::sort(trace.events_.begin(), trace.events_.end(),
            [](const TraceEvent& a, const TraceEvent& b) {
              return a.at < b.at;
            });
  return trace;
}

}  // namespace abrr::trace
