#include "trace/workload.h"

#include <algorithm>
#include <map>
#include <stdexcept>
#include <unordered_set>

namespace abrr::trace {
namespace {

// Filler ASN for synthesized middle path hops.
constexpr Asn kFillerAs = 64512;

// Reduces a set of eBGP routes to per-router bests: what each border
// router would actually advertise into iBGP. The #BAL statistic and the
// ARR RIB contents both operate on this reduced view.
std::vector<bgp::Route> per_router_bests(std::vector<bgp::Route> routes,
                                         const bgp::DecisionConfig& cfg) {
  std::map<RouterId, std::vector<bgp::Route>> by_router;
  for (auto& r : routes) by_router[r.egress()].push_back(std::move(r));
  std::vector<bgp::Route> out;
  out.reserve(by_router.size());
  for (auto& [router, own] : by_router) {
    bgp::Route best = bgp::select_best_no_igp(own, cfg);
    if (best.valid()) out.push_back(std::move(best));
  }
  return out;
}

}  // namespace

bgp::Route Announcement::to_route(const Ipv4Prefix& prefix) const {
  std::vector<Asn> path;
  path.reserve(path_length);
  path.push_back(first_as);
  for (std::uint8_t i = 2; i < path_length; ++i) path.push_back(kFillerAs);
  if (path_length > 1) path.push_back(origin_as);

  bgp::RouteBuilder b{prefix};
  b.as_path(bgp::AsPath{std::move(path)})
      .origin(bgp::Origin::kIgp)
      .local_pref(local_pref)
      .next_hop(router)  // next-hop-self at the border
      .learned_from(neighbor, bgp::LearnedVia::kEbgp);
  if (med) b.med(*med);
  return b.build();
}

Workload Workload::generate(const WorkloadParams& params,
                            const topo::Topology& topo, sim::Rng& rng) {
  if (params.prefixes == 0) throw std::invalid_argument{"no prefixes"};
  Workload w;
  w.params_ = params;
  w.table_.reserve(params.prefixes);

  // Peering points grouped by peer AS, once.
  std::map<Asn, std::vector<const topo::PeeringPoint*>> points;
  for (const auto& p : topo.peering_points) points[p.peer_as].push_back(&p);

  std::vector<const topo::RouterSpec*> access;
  for (const auto& r : topo.clients) {
    if (r.role == topo::RouterRole::kAccess) access.push_back(&r);
  }
  if (access.empty()) {
    for (const auto& r : topo.clients) access.push_back(&r);
  }

  // Prefix addresses: skewed toward low space (realistic allocation
  // clumping), unique, /24 .. /18.
  std::unordered_set<Ipv4Prefix> used;
  const auto draw_prefix = [&] {
    for (;;) {
      const double u = rng.uniform01();
      const auto addr = static_cast<bgp::Ipv4Addr>(
          u * u * 0xDF000000);  // quadratic skew toward low addresses
      const auto len = static_cast<std::uint8_t>(rng.uniform_int(18, 24));
      const Ipv4Prefix p{addr, len};
      if (used.insert(p).second) return p;
    }
  };

  RouterId customer_neighbor = topo::kEbgpNeighborBase + 0x01000000;
  for (std::size_t i = 0; i < params.prefixes; ++i) {
    PrefixEntry entry;
    entry.prefix = draw_prefix();
    entry.from_peers = rng.chance(params.peer_fraction);
    const Asn origin_as = 30000 + static_cast<Asn>(i % 20000);

    if (entry.from_peers && !points.empty()) {
      const auto base_len = static_cast<std::uint8_t>(rng.uniform_int(2, 4));
      bool any = false;
      for (const auto& [peer_as, as_points] : points) {
        if (!rng.chance(params.peer_announce_prob)) continue;
        any = true;
        const std::uint8_t delta =
            rng.chance(params.path_tie_prob)
                ? 0
                : static_cast<std::uint8_t>(rng.uniform_int(1, 2));
        bool any_point_tied = false;
        for (const auto* point : as_points) {
          Announcement a;
          a.router = point->router;
          a.neighbor = point->neighbor_id;
          a.first_as = peer_as;
          const bool tied = rng.chance(params.point_tie_prob);
          any_point_tied = any_point_tied || tied;
          a.path_length =
              static_cast<std::uint8_t>(base_len + delta + (tied ? 0 : 1));
          a.med = params.per_point_meds
                      ? 10 * static_cast<std::uint32_t>(
                                 rng.uniform_int(0, params.med_levels - 1))
                      : 0;
          a.local_pref = params.peer_local_pref;
          a.origin_as = origin_as;
          entry.anns.push_back(a);
        }
        if (!any_point_tied) {
          // Keep the AS's shortest path observable at one point so that
          // path_tie_prob alone controls cross-AS ties.
          auto& last = entry.anns.back();
          last.path_length = static_cast<std::uint8_t>(base_len + delta);
        }
      }
      if (!any) {
        // Guarantee reachability: force one announcing AS.
        const auto it = std::next(points.begin(), rng.index(points.size()));
        for (const auto* point : it->second) {
          Announcement a;
          a.router = point->router;
          a.neighbor = point->neighbor_id;
          a.first_as = it->first;
          a.path_length = static_cast<std::uint8_t>(
              base_len + (rng.chance(params.point_tie_prob) ? 0 : 1));
          a.med = params.per_point_meds
                      ? 10 * static_cast<std::uint32_t>(
                                 rng.uniform_int(0, params.med_levels - 1))
                      : 0;
          a.local_pref = params.peer_local_pref;
          a.origin_as = origin_as;
          entry.anns.push_back(a);
        }
        entry.anns.back().path_length = base_len;
      }
    } else {
      entry.from_peers = false;
      const auto n = static_cast<std::uint32_t>(
          rng.uniform_int(1, params.max_customer_attachments));
      for (std::uint32_t k = 0; k < n; ++k) {
        const auto* router = access[rng.index(access.size())];
        Announcement a;
        a.router = router->id;
        a.neighbor = customer_neighbor++;
        a.first_as = 25000 + static_cast<Asn>(i % 5000);
        a.path_length = static_cast<std::uint8_t>(rng.uniform_int(1, 2));
        a.local_pref = params.customer_local_pref;
        a.origin_as = a.path_length == 1 ? a.first_as : origin_as;
        entry.anns.push_back(a);
      }
    }
    w.table_.push_back(std::move(entry));
  }
  return w;
}

std::vector<Ipv4Prefix> Workload::prefixes() const {
  std::vector<Ipv4Prefix> out;
  out.reserve(table_.size());
  for (const auto& e : table_) out.push_back(e.prefix);
  return out;
}

std::vector<std::size_t> Workload::salient_indices(
    const PrefixEntry& entry, const bgp::DecisionConfig& cfg) const {
  // Salient = announcements backing the prefix's AS-wide best-AS-level
  // routes. A change to one of them reshapes what the whole AS selects
  // from (set membership, cluster bests), which is the class of events
  // a real update trace is made of. Falls back to per-router bests when
  // the mapping is empty.
  const auto set = best_as_level_for(entry, {}, /*include_customers=*/true,
                                     cfg);
  std::vector<std::size_t> out;
  for (const bgp::Route& r : set) {
    for (std::size_t i = 0; i < entry.anns.size(); ++i) {
      const Announcement& a = entry.anns[i];
      if (a.router == r.egress() && a.first_as == r.attrs->as_path.first() &&
          a.path_length == r.attrs->as_path.length()) {
        out.push_back(i);
        break;
      }
    }
  }
  if (out.empty()) {
    // Degenerate entry (should not happen): any announcement will do.
    for (std::size_t i = 0; i < entry.anns.size(); ++i) out.push_back(i);
  }
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

std::vector<bgp::Route> Workload::best_as_level_for(
    const PrefixEntry& entry, std::span<const Asn> peer_ases,
    bool include_customers, const bgp::DecisionConfig& cfg) const {
  std::vector<bgp::Route> routes;
  for (const Announcement& a : entry.anns) {
    if (a.down) continue;  // currently withdrawn at the edge
    const bool is_peer_route = entry.from_peers;
    if (is_peer_route) {
      if (!peer_ases.empty() &&
          std::find(peer_ases.begin(), peer_ases.end(), a.first_as) ==
              peer_ases.end()) {
        continue;
      }
    } else if (!include_customers) {
      continue;
    }
    routes.push_back(a.to_route(entry.prefix));
  }
  if (routes.empty()) return routes;
  return bgp::best_as_level_routes(per_router_bests(std::move(routes), cfg),
                                   cfg);
}

Workload::BalPoint Workload::average_bal(const topo::Topology& topo,
                                         std::size_t num_peer_ases,
                                         sim::Rng& rng,
                                         const bgp::DecisionConfig& cfg) const {
  const auto& all = topo.peer_as_list;
  if (num_peer_ases > all.size()) {
    throw std::invalid_argument{"more peer ASes requested than exist"};
  }
  std::vector<Asn> selected;
  for (const std::size_t idx : rng.sample_indices(all.size(), num_peer_ases)) {
    selected.push_back(all[idx]);
  }

  double peer_routes = 0, peer_prefixes = 0;
  double all_routes = 0, all_prefixes = 0;
  for (const PrefixEntry& entry : table_) {
    const auto peers_only =
        best_as_level_for(entry, selected, /*include_customers=*/false, cfg);
    if (!peers_only.empty()) {
      peer_routes += static_cast<double>(peers_only.size());
      peer_prefixes += 1;
    }
    const auto everything =
        best_as_level_for(entry, selected, /*include_customers=*/true, cfg);
    if (!everything.empty()) {
      all_routes += static_cast<double>(everything.size());
      all_prefixes += 1;
    }
  }
  BalPoint point;
  point.peer_only = peer_prefixes > 0 ? peer_routes / peer_prefixes : 0;
  point.all_sources = all_prefixes > 0 ? all_routes / all_prefixes : 0;
  return point;
}

}  // namespace abrr::trace
