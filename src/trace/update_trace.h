// Synthetic BGP update trace: the compressed stand-in for the paper's
// two-week Tier-1 update feed (§4). Events are routing changes at the AS
// edge: session flaps (withdraw + re-announce), MED changes, and AS-path
// changes, with Zipf-skewed prefix popularity (a small set of unstable
// prefixes generates most updates, as in real traces).
#pragma once

#include <cstdint>
#include <vector>

#include "sim/random.h"
#include "sim/time.h"
#include "trace/workload.h"

namespace abrr::trace {

enum class EventKind : std::uint8_t {
  kWithdraw,    // peer AS withdraws the prefix at all its points
  kReannounce,  // ...and brings it back (tail of a flap)
  kMedChange,   // peer AS re-announces with new MEDs
  kPathChange,  // peer AS re-announces with a new path length
};

struct TraceEvent {
  sim::Time at = 0;
  EventKind kind = EventKind::kMedChange;
  std::uint32_t prefix_idx = 0;  // index into the Workload table
  Asn peer_as = 0;               // affected announcing AS
  /// Affected peering point (kNoRouter = every point of peer_as). Most
  /// real churn is per-session: a flap or path change at one entry
  /// point, leaving the AS's other points untouched.
  RouterId point_router = bgp::kNoRouter;
};

struct TraceParams {
  /// Trace duration in simulated time (the paper's two weeks, compressed;
  /// EXPERIMENTS.md records the scaling).
  sim::Time duration = sim::sec(600);
  double events_per_second = 20.0;
  /// Zipf exponent over prefixes (heavy hitters dominate updates).
  double zipf_s = 1.1;
  /// Fraction of events that are flaps (withdraw + re-announce).
  double flap_fraction = 0.4;
  sim::Time flap_hold = sim::sec(20);
  /// Fraction of events confined to a single peering point (session
  /// flap / path change there); the rest hit every point of the AS
  /// (policy changes). MED changes are always AS-wide: with the
  /// uniform-peer-MED policy a MED moves as one value.
  double single_point_fraction = 0.8;
  /// Fraction of single-point events targeting a SALIENT announcement
  /// (one that is its border router's current best). Real traces are
  /// made of exactly such changes — a non-best announcement changing
  /// produces no update at all — so this is high by default.
  double salient_fraction = 0.85;
  /// eBGP session resets per simulated hour: a peering point goes down
  /// (every prefix it announces is withdrawn at once — the bursty
  /// events that dominate real feeds) and comes back after
  /// session_reset_hold.
  double session_resets_per_hour = 6.0;
  sim::Time session_reset_hold = sim::sec(45);
};

/// An ordered list of edge events.
class UpdateTrace {
 public:
  static UpdateTrace generate(const TraceParams& params,
                              const Workload& workload, sim::Rng& rng);

  const std::vector<TraceEvent>& events() const { return events_; }
  std::vector<TraceEvent>& mutable_events() { return events_; }
  sim::Time duration() const { return duration_; }

  /// Reassembles a trace from stored parts (MRT deserialization).
  static UpdateTrace from_events(std::vector<TraceEvent> events,
                                 sim::Time duration) {
    UpdateTrace t;
    t.events_ = std::move(events);
    t.duration_ = duration;
    return t;
  }

 private:
  std::vector<TraceEvent> events_;
  sim::Time duration_ = 0;
};

}  // namespace abrr::trace
