// The route regenerator of §4: "a simple pseudo BGP speaker ... which
// uses the MRT-format routing trace to direct BGP feeds towards our
// implementation."
//
// It owns a working copy of the workload snapshot, schedules the initial
// RIB load, and replays edge events against the testbed through an
// injection callback (the testbed maps (router, neighbor) to the actual
// Speaker).
#pragma once

#include <cstdint>
#include <functional>
#include <optional>

#include "sim/scheduler.h"
#include "trace/update_trace.h"
#include "trace/workload.h"

namespace abrr::trace {

/// Injection hook: announce (route set) or withdraw (nullopt) at a
/// border router's eBGP session.
using InjectFn = std::function<void(RouterId router, RouterId neighbor,
                                    const Ipv4Prefix& prefix,
                                    const std::optional<bgp::Route>& route)>;

class RouteRegenerator {
 public:
  /// Takes a working copy of the workload (events mutate it).
  RouteRegenerator(sim::Scheduler& scheduler, Workload workload,
                   InjectFn inject, std::uint64_t seed = 99);

  /// Schedules the initial snapshot load, paced uniformly over
  /// [start, start + duration] (prefix by prefix).
  void load_snapshot(sim::Time start, sim::Time duration);

  /// Schedules trace replay starting at `offset` (event times are
  /// relative to the offset). speedup > 1 compresses the trace.
  void play(const UpdateTrace& trace, sim::Time offset, double speedup = 1.0);

  /// eBGP announcements + withdrawals injected so far.
  std::uint64_t injected() const { return injected_; }

  /// The regenerator's current view of the edge: what every border
  /// router currently hears. Ground truth for the verifiers.
  const Workload& current() const { return workload_; }

 private:
  void apply_event(const TraceEvent& event);
  void announce_entry(const PrefixEntry& entry);
  /// Announce / withdraw the announcements an event targets (one point,
  /// or every point of the AS), tracking their live/down state so
  /// current() stays an accurate ground truth.
  void announce_matching(PrefixEntry& entry, const TraceEvent& event);
  void withdraw_matching(PrefixEntry& entry, const TraceEvent& event);
  static bool matches(const Announcement& a, const TraceEvent& event);

  sim::Scheduler* scheduler_;
  Workload workload_;
  InjectFn inject_;
  sim::Rng rng_;
  std::uint64_t injected_ = 0;
};

}  // namespace abrr::trace
