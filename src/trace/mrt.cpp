#include "trace/mrt.h"

#include <cstring>
#include <fstream>
#include <span>
#include <stdexcept>

#include "wire/codec.h"

namespace abrr::trace {
namespace {

constexpr char kMagic[8] = {'A', 'B', 'M', 'R', 'T', '1', 0, 0};
// v2: announcement records store the RFC 4271 wire encoding of their
// path-attribute block (length-prefixed), parsed back through
// wire::decode_path_attrs — the same strict parser the message plane
// uses, so MRT attribute parsing cannot diverge from the codec. Only
// `neighbor` (session identity) and `origin_as` (not on a length-1
// path) remain scalar.
constexpr std::uint32_t kVersion = 2;

// Little-endian scalar I/O. We serialize through byte buffers rather
// than struct dumps so the format is packing- and endian-stable.
template <typename T>
void put(std::ostream& out, T value) {
  static_assert(std::is_integral_v<T>);
  unsigned char buf[sizeof(T)];
  for (std::size_t i = 0; i < sizeof(T); ++i) {
    buf[i] = static_cast<unsigned char>(
        static_cast<std::make_unsigned_t<T>>(value) >> (8 * i));
  }
  out.write(reinterpret_cast<const char*>(buf), sizeof buf);
}

template <typename T>
T get(std::istream& in) {
  static_assert(std::is_integral_v<T>);
  unsigned char buf[sizeof(T)];
  in.read(reinterpret_cast<char*>(buf), sizeof buf);
  if (!in) throw std::runtime_error{"MRT file truncated"};
  std::make_unsigned_t<T> v = 0;
  for (std::size_t i = 0; i < sizeof(T); ++i) {
    v |= static_cast<std::make_unsigned_t<T>>(buf[i]) << (8 * i);
  }
  return static_cast<T>(v);
}

void put_double(std::ostream& out, double value) {
  std::uint64_t bits;
  std::memcpy(&bits, &value, sizeof bits);
  put(out, bits);
}

double get_double(std::istream& in) {
  const auto bits = get<std::uint64_t>(in);
  double value;
  std::memcpy(&value, &bits, sizeof value);
  return value;
}

void put_params(std::ostream& out, const WorkloadParams& p) {
  put(out, static_cast<std::uint64_t>(p.prefixes));
  put_double(out, p.peer_fraction);
  put_double(out, p.peer_announce_prob);
  put_double(out, p.path_tie_prob);
  put_double(out, p.point_tie_prob);
  put(out, static_cast<std::uint8_t>(p.per_point_meds ? 1 : 0));
  put(out, p.med_levels);
  put(out, p.peer_local_pref);
  put(out, p.customer_local_pref);
  put(out, p.max_customer_attachments);
}

WorkloadParams get_params(std::istream& in) {
  WorkloadParams p;
  p.prefixes = get<std::uint64_t>(in);
  p.peer_fraction = get_double(in);
  p.peer_announce_prob = get_double(in);
  p.path_tie_prob = get_double(in);
  p.point_tie_prob = get_double(in);
  p.per_point_meds = get<std::uint8_t>(in) != 0;
  p.med_levels = get<std::uint32_t>(in);
  p.peer_local_pref = get<std::uint32_t>(in);
  p.customer_local_pref = get<std::uint32_t>(in);
  p.max_customer_attachments = get<std::uint32_t>(in);
  return p;
}

}  // namespace

void write_mrt(const std::string& path, const Workload& workload,
               const UpdateTrace& trace) {
  std::ofstream out{path, std::ios::binary | std::ios::trunc};
  if (!out) throw std::runtime_error{"cannot open for write: " + path};

  out.write(kMagic, sizeof kMagic);
  put(out, kVersion);
  put_params(out, workload.params());

  // TABLE_DUMP section.
  put(out, static_cast<std::uint64_t>(workload.table().size()));
  for (const PrefixEntry& entry : workload.table()) {
    put(out, entry.prefix.address());
    put(out, static_cast<std::uint8_t>(entry.prefix.length()));
    put(out, static_cast<std::uint8_t>(entry.from_peers ? 1 : 0));
    put(out, static_cast<std::uint32_t>(entry.anns.size()));
    std::vector<std::uint8_t> attr_buf;
    for (const Announcement& a : entry.anns) {
      put(out, a.neighbor);
      put(out, a.origin_as);
      attr_buf.clear();
      wire::Encoder::append_path_attrs(*a.to_route(entry.prefix).attrs,
                                       attr_buf);
      put(out, static_cast<std::uint16_t>(attr_buf.size()));
      out.write(reinterpret_cast<const char*>(attr_buf.data()),
                static_cast<std::streamsize>(attr_buf.size()));
    }
  }

  // UPDATE section.
  put(out, static_cast<std::int64_t>(trace.duration()));
  put(out, static_cast<std::uint64_t>(trace.events().size()));
  for (const TraceEvent& e : trace.events()) {
    put(out, static_cast<std::int64_t>(e.at));
    put(out, static_cast<std::uint8_t>(e.kind));
    put(out, e.prefix_idx);
    put(out, e.peer_as);
    put(out, e.point_router);
  }
  if (!out) throw std::runtime_error{"write failed: " + path};
}

MrtFile read_mrt(const std::string& path) {
  std::ifstream in{path, std::ios::binary};
  if (!in) throw std::runtime_error{"cannot open for read: " + path};

  char magic[sizeof kMagic];
  in.read(magic, sizeof magic);
  if (!in || std::memcmp(magic, kMagic, sizeof kMagic) != 0) {
    throw std::runtime_error{"not an ABMRT file: " + path};
  }
  if (get<std::uint32_t>(in) != kVersion) {
    throw std::runtime_error{"unsupported ABMRT version: " + path};
  }
  const WorkloadParams params = get_params(in);

  const auto n_prefixes = get<std::uint64_t>(in);
  std::vector<PrefixEntry> table;
  table.reserve(n_prefixes);
  for (std::uint64_t i = 0; i < n_prefixes; ++i) {
    PrefixEntry entry;
    const auto addr = get<std::uint32_t>(in);
    const auto len = get<std::uint8_t>(in);
    entry.prefix = Ipv4Prefix{addr, len};
    entry.from_peers = get<std::uint8_t>(in) != 0;
    const auto n_anns = get<std::uint32_t>(in);
    entry.anns.reserve(n_anns);
    std::vector<std::uint8_t> attr_buf;
    for (std::uint32_t k = 0; k < n_anns; ++k) {
      Announcement a;
      a.neighbor = get<std::uint32_t>(in);
      a.origin_as = get<std::uint32_t>(in);
      const auto attr_len = get<std::uint16_t>(in);
      attr_buf.resize(attr_len);
      in.read(reinterpret_cast<char*>(attr_buf.data()), attr_len);
      if (!in) throw std::runtime_error{"MRT file truncated"};
      bgp::PathAttrs attrs;
      if (const auto err = wire::decode_path_attrs(
              std::span<const std::uint8_t>{attr_buf},
              attrs, /*require_mandatory=*/true)) {
        throw std::runtime_error{"bad attribute block in " + path + ": " +
                                 err->to_string()};
      }
      // The scalar announcement fields are projections of the block;
      // Announcement::to_route is the inverse of this extraction.
      a.router = static_cast<RouterId>(attrs.next_hop);
      a.first_as = attrs.as_path.first();
      a.path_length = static_cast<std::uint8_t>(attrs.as_path.length());
      a.med = attrs.med;
      a.local_pref = attrs.local_pref;
      entry.anns.push_back(a);
    }
    table.push_back(std::move(entry));
  }

  const auto duration = get<std::int64_t>(in);
  const auto n_events = get<std::uint64_t>(in);
  std::vector<TraceEvent> events;
  events.reserve(n_events);
  for (std::uint64_t i = 0; i < n_events; ++i) {
    TraceEvent e;
    e.at = get<std::int64_t>(in);
    e.kind = static_cast<EventKind>(get<std::uint8_t>(in));
    e.prefix_idx = get<std::uint32_t>(in);
    e.peer_as = get<std::uint32_t>(in);
    e.point_router = get<std::uint32_t>(in);
    events.push_back(e);
  }

  MrtFile file{Workload::from_parts(params, std::move(table)),
               UpdateTrace::from_events(std::move(events), duration)};
  return file;
}

}  // namespace abrr::trace
