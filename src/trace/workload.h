// Synthetic Tier-1 BGP workload calibrated to the paper's published
// statistics (§3.1, §4): 416K prefixes, 76% from peer ASes, 25 peer ASes
// at ~8 peering points each, and 10.2 best AS-level routes per prefix on
// peer-learned prefixes.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "bgp/decision.h"
#include "bgp/prefix.h"
#include "bgp/route.h"
#include "sim/random.h"
#include "topo/topology.h"

namespace abrr::trace {

using bgp::Asn;
using bgp::Ipv4Prefix;
using bgp::RouterId;

/// One eBGP announcement of a prefix at one peering point (or one
/// customer attachment).
struct Announcement {
  RouterId router = bgp::kNoRouter;    // our border router
  RouterId neighbor = 0;               // eBGP neighbor session
  Asn first_as = 0;                    // neighboring AS
  std::uint8_t path_length = 1;        // total AS-path length
  std::optional<std::uint32_t> med;
  std::uint32_t local_pref = bgp::kDefaultLocalPref;
  Asn origin_as = 0;
  /// Runtime state (not serialized): true while this announcement is
  /// withdrawn by a trace event, so ground-truth queries skip it.
  bool down = false;

  /// Materializes the eBGP route (AS path synthesized from first/origin
  /// AS and length).
  bgp::Route to_route(const Ipv4Prefix& prefix) const;
};

/// All announcements of one prefix across the AS edge.
struct PrefixEntry {
  Ipv4Prefix prefix;
  bool from_peers = false;  // peer-learned vs customer/static
  std::vector<Announcement> anns;
};

/// Workload tunables. Defaults reproduce the paper's aggregate numbers
/// at 1/8 scale.
struct WorkloadParams {
  std::size_t prefixes = 52'000;
  double peer_fraction = 0.76;
  /// Probability a given peer AS carries a path to a given peer prefix.
  double peer_announce_prob = 0.60;
  /// Probability that an announcing AS's path ties at the global minimum
  /// length. Together with point_tie_prob, calibrated so peer-learned
  /// prefixes average ~10.2 best AS-level routes with 25 peer ASes at 8
  /// peering points each — the paper's Tier-1 measurement (§4).
  double path_tie_prob = 0.335;
  /// Probability that a given peering point of an announcing AS hears
  /// the AS's shortest path (other points hear one hop longer). Models
  /// per-entry-point path diversity inside one neighbor AS.
  double point_tie_prob = 0.25;
  /// Give peer routes diverse per-point MEDs drawn from
  /// {0, 10, .., 10*(med_levels-1)}. Off by default: large ISPs zero
  /// MEDs on peer routes precisely because cross-cluster MED diversity
  /// triggers the RFC 3345 oscillations under TBRR (our TBRR testbed
  /// reproduces them when this is enabled — see the ablation bench).
  bool per_point_meds = false;
  std::uint32_t med_levels = 4;
  std::uint32_t peer_local_pref = 80;
  std::uint32_t customer_local_pref = 100;
  /// Customer prefixes attach at this many access routers (1..n).
  std::uint32_t max_customer_attachments = 2;
};

/// A complete RIB snapshot: what every border router hears from eBGP.
class Workload {
 public:
  /// Generates the snapshot over a topology. Deterministic per rng state.
  static Workload generate(const WorkloadParams& params,
                           const topo::Topology& topo, sim::Rng& rng);

  const std::vector<PrefixEntry>& table() const { return table_; }
  const WorkloadParams& params() const { return params_; }

  std::size_t prefix_count() const { return table_.size(); }

  /// All prefixes (for PrefixIndex / partition balancing).
  std::vector<Ipv4Prefix> prefixes() const;

  /// Indices into entry.anns of the announcements that are their border
  /// router's best for this prefix — the routes that actually surface
  /// as iBGP activity when they change (real update traces consist of
  /// exactly these).
  std::vector<std::size_t> salient_indices(
      const PrefixEntry& entry, const bgp::DecisionConfig& cfg = {}) const;

  /// Best AS-level routes for one prefix, restricted to announcements
  /// from `peer_ases` (nullopt = all peers) plus, when
  /// `include_customers`, customer/static announcements. This is the
  /// §3.1 measurement behind Figure 3.
  std::vector<bgp::Route> best_as_level_for(
      const PrefixEntry& entry, std::span<const Asn> peer_ases,
      bool include_customers, const bgp::DecisionConfig& cfg = {}) const;

  /// Average #BAL per prefix over the workload for a random subset of
  /// `num_peer_ases` peer ASes: the two curves of Figure 3.
  struct BalPoint {
    double peer_only = 0;    // "Peer ASes Only"
    double all_sources = 0;  // "All Sources"
  };
  BalPoint average_bal(const topo::Topology& topo, std::size_t num_peer_ases,
                       sim::Rng& rng,
                       const bgp::DecisionConfig& cfg = {}) const;

  /// Mutable access for trace replay (events rewrite announcements).
  std::vector<PrefixEntry>& mutable_table() { return table_; }

  /// Reassembles a workload from stored parts (MRT deserialization).
  static Workload from_parts(WorkloadParams params,
                             std::vector<PrefixEntry> table) {
    Workload w;
    w.params_ = params;
    w.table_ = std::move(table);
    return w;
  }

 private:
  WorkloadParams params_;
  std::vector<PrefixEntry> table_;
};

}  // namespace abrr::trace
