#include "trace/regenerator.h"

#include <stdexcept>
#include <utility>

namespace abrr::trace {

RouteRegenerator::RouteRegenerator(sim::Scheduler& scheduler,
                                   Workload workload, InjectFn inject,
                                   std::uint64_t seed)
    : scheduler_(&scheduler),
      workload_(std::move(workload)),
      inject_(std::move(inject)),
      rng_(seed) {
  if (!inject_) throw std::invalid_argument{"regenerator needs an InjectFn"};
}

void RouteRegenerator::load_snapshot(sim::Time start, sim::Time duration) {
  const auto& table = workload_.table();
  if (table.empty()) return;
  const double step =
      static_cast<double>(duration) / static_cast<double>(table.size());
  for (std::size_t i = 0; i < table.size(); ++i) {
    const sim::Time at = start + static_cast<sim::Time>(step * i);
    scheduler_->schedule_at(
        at, [this, i] { announce_entry(workload_.table()[i]); });
  }
}

void RouteRegenerator::play(const UpdateTrace& trace, sim::Time offset,
                            double speedup) {
  if (speedup <= 0) throw std::invalid_argument{"speedup must be > 0"};
  for (const TraceEvent& event : trace.events()) {
    const sim::Time at =
        offset + static_cast<sim::Time>(event.at / speedup);
    scheduler_->schedule_at(at, [this, event] { apply_event(event); });
  }
}

void RouteRegenerator::announce_entry(const PrefixEntry& entry) {
  for (const Announcement& a : entry.anns) {
    inject_(a.router, a.neighbor, entry.prefix, a.to_route(entry.prefix));
    ++injected_;
  }
}

bool RouteRegenerator::matches(const Announcement& a,
                               const TraceEvent& event) {
  if (a.first_as != event.peer_as) return false;
  return event.point_router == bgp::kNoRouter ||
         a.router == event.point_router;
}

void RouteRegenerator::announce_matching(PrefixEntry& entry,
                                         const TraceEvent& event) {
  for (Announcement& a : entry.anns) {
    if (!matches(a, event)) continue;
    a.down = false;
    inject_(a.router, a.neighbor, entry.prefix, a.to_route(entry.prefix));
    ++injected_;
  }
}

void RouteRegenerator::withdraw_matching(PrefixEntry& entry,
                                         const TraceEvent& event) {
  for (Announcement& a : entry.anns) {
    if (!matches(a, event)) continue;
    a.down = true;
    inject_(a.router, a.neighbor, entry.prefix, std::nullopt);
    ++injected_;
  }
}

void RouteRegenerator::apply_event(const TraceEvent& event) {
  auto& table = workload_.mutable_table();
  if (event.prefix_idx >= table.size()) return;
  PrefixEntry& entry = table[event.prefix_idx];

  switch (event.kind) {
    case EventKind::kWithdraw:
      withdraw_matching(entry, event);
      break;
    case EventKind::kReannounce:
      announce_matching(entry, event);
      break;
    case EventKind::kMedChange: {
      // Uniform-MED policy (the default): the AS's MED moves as one
      // value, so MED diversity never creeps in over a replay. With
      // per_point_meds each point redraws independently.
      const auto draw = [&] {
        return 10 * static_cast<std::uint32_t>(rng_.uniform_int(
                        0, workload_.params().med_levels - 1));
      };
      const std::uint32_t common = draw();
      for (Announcement& a : entry.anns) {
        if (!matches(a, event)) continue;
        a.med = workload_.params().per_point_meds ? draw() : common;
      }
      announce_matching(entry, event);
      break;
    }
    case EventKind::kPathChange:
      for (Announcement& a : entry.anns) {
        if (!matches(a, event)) continue;
        const auto base = static_cast<std::uint8_t>(
            a.path_length > 2 ? a.path_length - 1 : 2);
        a.path_length = static_cast<std::uint8_t>(
            base + rng_.uniform_int(0, 2));
      }
      announce_matching(entry, event);
      break;
  }
}

}  // namespace abrr::trace
