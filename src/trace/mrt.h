// MRT-style binary trace files.
//
// The paper's route regenerator consumes MRT-format routing traces. We
// persist our synthetic snapshot + update trace in an MRT-inspired
// binary container ("ABMRT1"): a TABLE_DUMP-like section with every edge
// announcement, followed by timestamped update records. Files written by
// one run can be replayed bit-identically by another (and shipped
// between machines: everything is stored little-endian).
#pragma once

#include <string>

#include "trace/update_trace.h"
#include "trace/workload.h"

namespace abrr::trace {

/// A snapshot plus its update trace, as stored on disk.
struct MrtFile {
  Workload workload;
  UpdateTrace trace;
};

/// Writes snapshot + trace to `path`. Throws std::runtime_error on I/O
/// failure.
void write_mrt(const std::string& path, const Workload& workload,
               const UpdateTrace& trace);

/// Reads a file produced by write_mrt. Throws std::runtime_error on I/O
/// or format errors (bad magic, truncation, version mismatch).
MrtFile read_mrt(const std::string& path);

}  // namespace abrr::trace
