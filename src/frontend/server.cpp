#include "frontend/server.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <ctime>
#include <stdexcept>
#include <string>
#include <utility>

namespace abrr::frontend {
namespace {

std::uint64_t now_ns() {
  timespec ts;
  clock_gettime(CLOCK_MONOTONIC, &ts);
  return static_cast<std::uint64_t>(ts.tv_sec) * 1'000'000'000ull +
         static_cast<std::uint64_t>(ts.tv_nsec);
}

[[noreturn]] void throw_errno(const char* what) {
  throw std::runtime_error{std::string{what} + ": " +
                           std::strerror(errno)};
}

}  // namespace

Server::Server(serve::RouteService& service, ServerOptions options)
    : service_(&service),
      options_(options),
      batch_size_hist_(obs::size_buckets()),
      handle_ns_hist_(obs::latency_buckets_ns()),
      reply_bytes_hist_(obs::byte_buckets()) {}

Server::~Server() { stop(); }

void Server::start() {
  if (started_) throw std::logic_error{"Server::start() called twice"};

  listen_fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK, 0);
  if (listen_fd_ < 0) throw_errno("frontend: socket");
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(options_.port);
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) <
      0) {
    throw_errno("frontend: bind 127.0.0.1");
  }
  if (::listen(listen_fd_, options_.listen_backlog) < 0) {
    throw_errno("frontend: listen");
  }
  socklen_t len = sizeof(addr);
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len) <
      0) {
    throw_errno("frontend: getsockname");
  }
  port_ = ntohs(addr.sin_port);

  if (::pipe2(wake_fds_, O_NONBLOCK) < 0) throw_errno("frontend: pipe2");

  started_ = true;
  stop_.store(false, std::memory_order_release);
  loop_ = std::thread([this] { loop_main(); });
}

void Server::stop() {
  if (!started_) return;
  stop_.store(true, std::memory_order_release);
  const char byte = 1;
  // Best-effort wake; the loop also polls with a bounded timeout.
  (void)!::write(wake_fds_[1], &byte, 1);
  if (loop_.joinable()) loop_.join();
  for (int* fd : {&listen_fd_, &wake_fds_[0], &wake_fds_[1]}) {
    if (*fd >= 0) ::close(*fd);
    *fd = -1;
  }
  started_ = false;
}

ServerStats Server::stats() const {
  ServerStats s;
  s.accepted = accepted_.load(std::memory_order_relaxed);
  s.rejected_full = rejected_full_.load(std::memory_order_relaxed);
  s.closed = closed_.load(std::memory_order_relaxed);
  s.dropped_proto = dropped_proto_.load(std::memory_order_relaxed);
  s.dropped_slow = dropped_slow_.load(std::memory_order_relaxed);
  s.frames = frames_.load(std::memory_order_relaxed);
  s.batches = batches_.load(std::memory_order_relaxed);
  s.lookups = lookups_.load(std::memory_order_relaxed);
  s.bytes_in = bytes_in_.load(std::memory_order_relaxed);
  s.bytes_out = bytes_out_.load(std::memory_order_relaxed);
  s.active = active_.load(std::memory_order_relaxed);
  return s;
}

obs::Histogram Server::batch_size_hist() const {
  std::lock_guard<std::mutex> lock{hist_mutex_};
  return batch_size_hist_;
}

obs::Histogram Server::handle_ns_hist() const {
  std::lock_guard<std::mutex> lock{hist_mutex_};
  return handle_ns_hist_;
}

obs::Histogram Server::reply_bytes_hist() const {
  std::lock_guard<std::mutex> lock{hist_mutex_};
  return reply_bytes_hist_;
}

void Server::loop_main() {
  // The loop thread's epoch slot: every connection's queries are
  // answered through this one reader (single-threaded loop).
  serve::RouteService::Reader reader{*service_};

  std::vector<pollfd> pfds;
  while (!stop_.load(std::memory_order_acquire)) {
    pfds.clear();
    pfds.push_back(pollfd{wake_fds_[0], POLLIN, 0});
    pfds.push_back(pollfd{listen_fd_, POLLIN, 0});
    for (const auto& conn : conns_) {
      short events = POLLIN;
      if (conn->out.size() > conn->out_off) events |= POLLOUT;
      pfds.push_back(pollfd{conn->fd, events, 0});
    }

    const int ready = ::poll(pfds.data(), pfds.size(), 500);
    if (ready < 0) {
      if (errno == EINTR) continue;
      break;  // unrecoverable poll failure; shut the front-end down
    }
    if (stop_.load(std::memory_order_acquire)) break;
    if (pfds[0].revents & POLLIN) {
      char drain[64];
      while (::read(wake_fds_[0], drain, sizeof(drain)) > 0) {
      }
    }
    // Snapshot the polled count BEFORE accepting: accept_ready appends
    // connections that have no pollfd entry this round, so the walk
    // below must not index past the array it was built from.
    const std::size_t polled = conns_.size();
    if (pfds[1].revents & POLLIN) accept_ready();

    // Walk backwards so close_conn's swap-remove can't skip an entry
    // (a closed slot inherits conns_.back(), which this round either
    // already processed or never polled).
    for (std::size_t i = polled; i-- > 0;) {
      Conn& conn = *conns_[i];
      const short revents = pfds[2 + i].revents;
      if (revents == 0) continue;
      bool alive = true;
      if (revents & (POLLERR | POLLHUP | POLLNVAL)) {
        closed_.fetch_add(1, std::memory_order_relaxed);
        alive = false;
      }
      if (alive && (revents & POLLIN)) alive = read_ready(conn, reader);
      if (alive && (revents & POLLOUT)) alive = write_ready(conn);
      if (!alive) close_conn(i);
    }
  }

  for (std::size_t i = conns_.size(); i-- > 0;) close_conn(i);
}

void Server::accept_ready() {
  for (;;) {
    const int fd = ::accept4(listen_fd_, nullptr, nullptr, SOCK_NONBLOCK);
    if (fd < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK) return;
      if (errno == EINTR) continue;
      return;  // transient accept failure; retry on the next poll round
    }
    if (conns_.size() >= options_.max_connections) {
      rejected_full_.fetch_add(1, std::memory_order_relaxed);
      ::close(fd);
      continue;
    }
    const int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    auto conn = std::make_unique<Conn>();
    conn->fd = fd;
    conns_.push_back(std::move(conn));
    accepted_.fetch_add(1, std::memory_order_relaxed);
    active_.fetch_add(1, std::memory_order_relaxed);
  }
}

bool Server::read_ready(Conn& conn, serve::RouteService::Reader& reader) {
  std::uint8_t chunk[65536];
  for (;;) {
    const ssize_t n = ::recv(conn.fd, chunk, sizeof(chunk), 0);
    if (n == 0) {
      closed_.fetch_add(1, std::memory_order_relaxed);
      return false;
    }
    if (n < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK) break;
      if (errno == EINTR) continue;
      closed_.fetch_add(1, std::memory_order_relaxed);
      return false;
    }
    bytes_in_.fetch_add(static_cast<std::uint64_t>(n),
                        std::memory_order_relaxed);
    // A draining connection's input is discarded: framing is already
    // lost and only the pending ERROR flush matters.
    if (!conn.draining) {
      conn.in.insert(conn.in.end(), chunk, chunk + n);
    }
    if (static_cast<std::size_t>(n) < sizeof(chunk)) break;
  }
  if (conn.draining) return true;
  if (!drain_frames(conn, reader)) return false;
  // Try to flush replies eagerly: for request/reply clients the socket
  // is almost always writable, so this saves one poll round trip per
  // pipelined burst.
  return write_ready(conn);
}

bool Server::drain_frames(Conn& conn, serve::RouteService::Reader& reader) {
  std::size_t off = 0;
  bool alive = true;
  while (alive && !conn.draining) {
    Frame frame;
    std::size_t consumed = 0;
    ProtoError err;
    const DecodeStatus status = decode_frame(
        std::span<const std::uint8_t>{conn.in.data() + off,
                                      conn.in.size() - off},
        frame, consumed, err);
    if (status == DecodeStatus::kNeedMore) break;
    if (status == DecodeStatus::kError) {
      alive = protocol_error(conn, 0, err);
      break;
    }
    off += consumed;
    alive = handle_frame(conn, frame, reader);
  }
  if (off > 0) {
    conn.in.erase(conn.in.begin(),
                  conn.in.begin() + static_cast<std::ptrdiff_t>(off));
  }
  return alive;
}

bool Server::handle_frame(Conn& conn, const Frame& frame,
                          serve::RouteService::Reader& reader) {
  const std::uint16_t seq = frame.header.seq;
  const std::uint64_t t_begin = now_ns();
  switch (frame.header.type) {
    case FrameType::kHello: {
      if (!frame.payload.empty()) {
        return protocol_error(
            conn, seq,
            ProtoError{ProtoErrorCode::kBadPayload, 0,
                       "HELLO carries no payload"});
      }
      HelloAck ack;
      {
        const serve::RouteService::Reader::PinGuard snap{reader};
        if (snap) {
          ack.snapshot_version = snap->version;
          ack.fingerprint = snap->fingerprint;
          ack.routers = static_cast<std::uint32_t>(snap->router_ids.size());
          ack.prefixes = static_cast<std::uint32_t>(snap->index->size());
        }
      }
      append_hello_ack(conn.out, seq, ack);
      break;
    }
    case FrameType::kStats: {
      if (!frame.payload.empty()) {
        return protocol_error(
            conn, seq,
            ProtoError{ProtoErrorCode::kBadPayload, 0,
                       "STATS carries no payload"});
      }
      const serve::ServiceStats svc = service_->stats();
      StatsReply reply;
      reply.snapshot_version = svc.version;
      reply.fingerprint = svc.fingerprint;
      reply.publishes = svc.publishes;
      reply.lookups_served = lookups_.load(std::memory_order_relaxed);
      reply.batches_served = batches_.load(std::memory_order_relaxed);
      reply.connections_accepted =
          accepted_.load(std::memory_order_relaxed);
      reply.connections_dropped =
          dropped_proto_.load(std::memory_order_relaxed) +
          dropped_slow_.load(std::memory_order_relaxed);
      append_stats_reply(conn.out, seq, reply);
      break;
    }
    case FrameType::kLookupBatch: {
      if (const auto err = decode_lookup_batch(frame.payload, reqs_)) {
        return protocol_error(conn, seq, *err);
      }
      // Backpressure: size the reply before answering. A client that
      // pipelines faster than it drains gets disconnected here rather
      // than growing the outbox without bound.
      const std::size_t pending = conn.out.size() - conn.out_off;
      if (pending + lookup_reply_frame_size(reqs_.size()) >
          options_.max_outbox_bytes) {
        dropped_slow_.fetch_add(1, std::memory_order_relaxed);
        return false;
      }
      resps_.resize(reqs_.size());
      const serve::BatchResult res = reader.lookup_batch(reqs_, resps_);
      const std::size_t out_before = conn.out.size();
      append_lookup_reply(conn.out, seq, res.snapshot_version,
                          res.fingerprint, resps_);
      batches_.fetch_add(1, std::memory_order_relaxed);
      lookups_.fetch_add(reqs_.size(), std::memory_order_relaxed);
      {
        std::lock_guard<std::mutex> lock{hist_mutex_};
        batch_size_hist_.record(static_cast<double>(reqs_.size()));
        reply_bytes_hist_.record(
            static_cast<double>(conn.out.size() - out_before));
      }
      break;
    }
    case FrameType::kHelloAck:
    case FrameType::kStatsReply:
    case FrameType::kLookupReply:
    case FrameType::kError:
      return protocol_error(
          conn, seq,
          ProtoError{ProtoErrorCode::kUnexpectedType, 5,
                     "reply-only frame type sent to the server"});
  }
  frames_.fetch_add(1, std::memory_order_relaxed);
  {
    std::lock_guard<std::mutex> lock{hist_mutex_};
    handle_ns_hist_.record(static_cast<double>(now_ns() - t_begin));
  }
  return true;
}

bool Server::protocol_error(Conn& conn, std::uint16_t seq,
                            const ProtoError& err) {
  dropped_proto_.fetch_add(1, std::memory_order_relaxed);
  append_error(conn.out, seq, err.code, err.detail);
  conn.draining = true;
  // Flush what we can right away; if the socket blocks, the poll loop
  // finishes the drain and closes.
  return write_ready(conn);
}

bool Server::write_ready(Conn& conn) {
  while (conn.out.size() > conn.out_off) {
    const ssize_t n =
        ::send(conn.fd, conn.out.data() + conn.out_off,
               conn.out.size() - conn.out_off, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK) return true;
      if (errno == EINTR) continue;
      return false;  // peer vanished mid-write
    }
    conn.out_off += static_cast<std::size_t>(n);
    bytes_out_.fetch_add(static_cast<std::uint64_t>(n),
                         std::memory_order_relaxed);
  }
  conn.out.clear();
  conn.out_off = 0;
  return !conn.draining;  // drained a post-ERROR connection: close it
}

void Server::close_conn(std::size_t index) {
  ::close(conns_[index]->fd);
  if (index + 1 < conns_.size()) conns_[index] = std::move(conns_.back());
  conns_.pop_back();
  active_.fetch_sub(1, std::memory_order_relaxed);
}

}  // namespace abrr::frontend
