#include "frontend/client.h"

#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <stdexcept>

namespace abrr::frontend {
namespace {

[[noreturn]] void throw_errno(const char* what) {
  throw std::runtime_error(std::string("frontend::Client: ") + what + ": " +
                           std::strerror(errno));
}

}  // namespace

void Client::connect(std::uint16_t port, int timeout_ms) {
  close();
  fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd_ < 0) throw_errno("socket");

  timeval tv{};
  tv.tv_sec = timeout_ms / 1000;
  tv.tv_usec = static_cast<long>(timeout_ms % 1000) * 1000;
  (void)::setsockopt(fd_, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
  int one = 1;
  (void)::setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  if (::connect(fd_, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) <
      0) {
    int saved = errno;
    ::close(fd_);
    fd_ = -1;
    errno = saved;
    throw_errno("connect");
  }
}

void Client::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
  recvbuf_.clear();
}

void Client::send_all(const std::vector<std::uint8_t>& frame) {
  if (fd_ < 0) throw std::runtime_error("frontend::Client: not connected");
  std::size_t off = 0;
  while (off < frame.size()) {
    ssize_t n = ::send(fd_, frame.data() + off, frame.size() - off,
                       MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      throw_errno("send");
    }
    off += static_cast<std::size_t>(n);
    bytes_sent_ += static_cast<std::uint64_t>(n);
  }
}

void Client::recv_frame(FrameHeader& header, std::vector<std::uint8_t>& payload) {
  if (fd_ < 0) throw std::runtime_error("frontend::Client: not connected");
  for (;;) {
    Frame frame;
    std::size_t consumed = 0;
    ProtoError err;
    switch (decode_frame(recvbuf_, frame, consumed, err)) {
      case DecodeStatus::kFrame: {
        header = frame.header;
        payload.assign(frame.payload.begin(), frame.payload.end());
        recvbuf_.erase(recvbuf_.begin(),
                       recvbuf_.begin() + static_cast<std::ptrdiff_t>(consumed));
        if (header.type == FrameType::kError) {
          WireError werr;
          std::string what = "frontend::Client: server ERROR";
          if (!decode_error(payload, werr)) {
            what += " code=" + std::to_string(werr.code);
            if (!werr.detail.empty()) what += " (" + werr.detail + ")";
          }
          throw std::runtime_error(what);
        }
        return;
      }
      case DecodeStatus::kError:
        throw std::runtime_error("frontend::Client: bad frame from server: " +
                                 err.to_string());
      case DecodeStatus::kNeedMore:
        break;
    }
    std::uint8_t chunk[16384];
    ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
    if (n == 0)
      throw std::runtime_error("frontend::Client: connection closed by server");
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK)
        throw std::runtime_error("frontend::Client: receive timeout");
      throw_errno("recv");
    }
    recvbuf_.insert(recvbuf_.end(), chunk, chunk + n);
    bytes_received_ += static_cast<std::uint64_t>(n);
  }
}

HelloAck Client::hello() {
  const std::uint16_t seq = next_seq_++;
  sendbuf_.clear();
  append_hello(sendbuf_, seq);
  send_all(sendbuf_);

  FrameHeader header;
  std::vector<std::uint8_t> payload;
  recv_frame(header, payload);
  if (header.type != FrameType::kHelloAck || header.seq != seq)
    throw std::runtime_error("frontend::Client: unexpected HELLO reply");
  HelloAck ack;
  if (auto err = decode_hello_ack(payload, ack))
    throw std::runtime_error("frontend::Client: bad HELLO_ACK: " +
                             err->to_string());
  return ack;
}

StatsReply Client::stats() {
  const std::uint16_t seq = next_seq_++;
  sendbuf_.clear();
  append_stats(sendbuf_, seq);
  send_all(sendbuf_);

  FrameHeader header;
  std::vector<std::uint8_t> payload;
  recv_frame(header, payload);
  if (header.type != FrameType::kStatsReply || header.seq != seq)
    throw std::runtime_error("frontend::Client: unexpected STATS reply");
  StatsReply stats;
  if (auto err = decode_stats_reply(payload, stats))
    throw std::runtime_error("frontend::Client: bad STATS_REPLY: " +
                             err->to_string());
  return stats;
}

std::uint16_t Client::send_lookup(std::span<const serve::LookupRequest> reqs) {
  const std::uint16_t seq = next_seq_++;
  sendbuf_.clear();
  append_lookup_batch(sendbuf_, seq, reqs);
  send_all(sendbuf_);
  return seq;
}

Client::Reply Client::recv_reply() {
  FrameHeader header;
  std::vector<std::uint8_t> payload;
  recv_frame(header, payload);
  if (header.type != FrameType::kLookupReply)
    throw std::runtime_error("frontend::Client: unexpected LOOKUP reply type");
  Reply reply;
  reply.seq = header.seq;
  LookupReplyInfo info;
  if (auto err = decode_lookup_reply(payload, info, reply.responses))
    throw std::runtime_error("frontend::Client: bad LOOKUP_REPLY: " +
                             err->to_string());
  reply.snapshot_version = info.snapshot_version;
  reply.fingerprint = info.fingerprint;
  return reply;
}

Client::Reply Client::lookup(std::span<const serve::LookupRequest> reqs) {
  const std::uint16_t seq = send_lookup(reqs);
  Reply reply = recv_reply();
  if (reply.seq != seq)
    throw std::runtime_error("frontend::Client: reply seq mismatch");
  return reply;
}

}  // namespace abrr::frontend
