// TCP front-end for a RouteService (DESIGN.md §15).
//
// Threading model: ONE event-loop thread owns everything network-facing
// — the listening socket, every connection's buffers, and one
// RouteService::Reader that answers all LOOKUP_BATCH frames (the loop
// is single-threaded, so one epoch slot suffices; queries from any
// number of connections are answered through Reader::lookup_batch, one
// pin per frame). The loop never touches the writer thread's world and
// the writer never touches a socket.
//
// Backpressure: each connection has a bounded outbox. A reply that
// would push the outbox past max_outbox_bytes means the client is not
// draining its socket as fast as it pipelines requests — the connection
// is dropped (counted in dropped_slow) instead of buffering without
// bound. Malformed input gets one best-effort ERROR frame, then the
// connection closes; a protocol error loses framing by definition, so
// there is no recovery path.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "frontend/proto.h"
#include "obs/metrics.h"
#include "serve/service.h"

namespace abrr::frontend {

struct ServerOptions {
  /// TCP port to bind on 127.0.0.1; 0 picks an ephemeral port (read it
  /// back with Server::port() once start() returns).
  std::uint16_t port = 0;
  /// Accepted connections beyond this are closed immediately
  /// (rejected_full); a malformed or slow client frees its slot on
  /// disconnect, so the bound is on concurrent connections only.
  std::size_t max_connections = 64;
  /// Per-connection outbox bound; exceeding it drops the connection.
  std::size_t max_outbox_bytes = 4u << 20;
  int listen_backlog = 64;
};

/// Front-end counters, readable from any thread while the loop runs.
struct ServerStats {
  std::uint64_t accepted = 0;
  std::uint64_t rejected_full = 0;   // over max_connections
  std::uint64_t closed = 0;          // orderly client close / EOF
  std::uint64_t dropped_proto = 0;   // malformed frame -> ERROR + close
  std::uint64_t dropped_slow = 0;    // outbox bound exceeded
  std::uint64_t frames = 0;          // well-formed request frames served
  std::uint64_t batches = 0;         // LOOKUP_BATCH frames answered
  std::uint64_t lookups = 0;         // individual lookups answered
  std::uint64_t bytes_in = 0;
  std::uint64_t bytes_out = 0;
  std::uint64_t active = 0;          // currently open connections
};

class Server {
 public:
  /// The service must outlive the server and have been start()ed before
  /// queries arrive (the loop claims a Reader slot at startup).
  explicit Server(serve::RouteService& service, ServerOptions options = {});
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Binds 127.0.0.1:<port>, starts listening, and launches the loop
  /// thread. Throws std::runtime_error on socket/bind failures. When it
  /// returns, port() is connectable.
  void start();

  /// Wakes the loop, closes every connection and the listening socket,
  /// and joins the thread. Idempotent; also called by the destructor.
  void stop();

  std::uint16_t port() const { return port_; }
  ServerStats stats() const;

  /// Loop-side histograms (batch sizes, per-frame service time in ns,
  /// reply frame bytes), copied under a lock.
  obs::Histogram batch_size_hist() const;
  obs::Histogram handle_ns_hist() const;
  obs::Histogram reply_bytes_hist() const;

 private:
  struct Conn {
    int fd = -1;
    std::vector<std::uint8_t> in;    // unparsed request bytes
    std::vector<std::uint8_t> out;   // encoded replies awaiting send
    std::size_t out_off = 0;         // bytes of `out` already sent
    bool draining = false;           // flush out, then close (post-ERROR)
  };

  void loop_main();
  void accept_ready();
  /// Returns false when the connection must close (EOF, error, drop).
  bool read_ready(Conn& conn, serve::RouteService::Reader& reader);
  bool write_ready(Conn& conn);
  /// Parses + answers every complete frame buffered in conn.in.
  bool drain_frames(Conn& conn, serve::RouteService::Reader& reader);
  bool handle_frame(Conn& conn, const Frame& frame,
                    serve::RouteService::Reader& reader);
  /// ERROR + drain; returns false (the caller closes after flushing).
  bool protocol_error(Conn& conn, std::uint16_t seq, const ProtoError& err);
  void close_conn(std::size_t index);

  serve::RouteService* service_;
  ServerOptions options_;

  int listen_fd_ = -1;
  int wake_fds_[2] = {-1, -1};  // self-pipe: stop() -> poll wakeup
  std::uint16_t port_ = 0;

  std::thread loop_;
  std::atomic<bool> stop_{false};
  bool started_ = false;

  std::vector<std::unique_ptr<Conn>> conns_;  // loop thread only

  // Scratch reused across frames (loop thread only).
  std::vector<serve::LookupRequest> reqs_;
  std::vector<serve::LookupResponse> resps_;

  // Stats: loop publishes, anyone reads.
  std::atomic<std::uint64_t> accepted_{0};
  std::atomic<std::uint64_t> rejected_full_{0};
  std::atomic<std::uint64_t> closed_{0};
  std::atomic<std::uint64_t> dropped_proto_{0};
  std::atomic<std::uint64_t> dropped_slow_{0};
  std::atomic<std::uint64_t> frames_{0};
  std::atomic<std::uint64_t> batches_{0};
  std::atomic<std::uint64_t> lookups_{0};
  std::atomic<std::uint64_t> bytes_in_{0};
  std::atomic<std::uint64_t> bytes_out_{0};
  std::atomic<std::uint64_t> active_{0};

  mutable std::mutex hist_mutex_;
  obs::Histogram batch_size_hist_;
  obs::Histogram handle_ns_hist_;
  obs::Histogram reply_bytes_hist_;
};

}  // namespace abrr::frontend
