#include "frontend/proto.h"

#include <cstring>

namespace abrr::frontend {
namespace {

// --- big-endian primitives (src/wire idiom) ---------------------------

void put_u8(std::vector<std::uint8_t>& out, std::uint8_t v) {
  out.push_back(v);
}

void put_u16(std::vector<std::uint8_t>& out, std::uint16_t v) {
  out.push_back(static_cast<std::uint8_t>(v >> 8));
  out.push_back(static_cast<std::uint8_t>(v));
}

void put_u32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  out.push_back(static_cast<std::uint8_t>(v >> 24));
  out.push_back(static_cast<std::uint8_t>(v >> 16));
  out.push_back(static_cast<std::uint8_t>(v >> 8));
  out.push_back(static_cast<std::uint8_t>(v));
}

void put_u64(std::vector<std::uint8_t>& out, std::uint64_t v) {
  put_u32(out, static_cast<std::uint32_t>(v >> 32));
  put_u32(out, static_cast<std::uint32_t>(v));
}

std::uint16_t get_u16(const std::uint8_t* p) {
  return static_cast<std::uint16_t>((p[0] << 8) | p[1]);
}

std::uint32_t get_u32(const std::uint8_t* p) {
  return (static_cast<std::uint32_t>(p[0]) << 24) |
         (static_cast<std::uint32_t>(p[1]) << 16) |
         (static_cast<std::uint32_t>(p[2]) << 8) |
         static_cast<std::uint32_t>(p[3]);
}

std::uint64_t get_u64(const std::uint8_t* p) {
  return (static_cast<std::uint64_t>(get_u32(p)) << 32) | get_u32(p + 4);
}

/// Reserves the header, returning the offset where payload_len must be
/// backpatched once the payload has been appended.
std::size_t begin_frame(std::vector<std::uint8_t>& out, FrameType type,
                        std::uint16_t seq) {
  put_u32(out, kMagic);
  put_u8(out, kProtoVersion);
  put_u8(out, static_cast<std::uint8_t>(type));
  put_u16(out, seq);
  const std::size_t len_at = out.size();
  put_u32(out, 0);
  return len_at;
}

void end_frame(std::vector<std::uint8_t>& out, std::size_t len_at) {
  const std::uint32_t payload_len =
      static_cast<std::uint32_t>(out.size() - len_at - 4);
  out[len_at] = static_cast<std::uint8_t>(payload_len >> 24);
  out[len_at + 1] = static_cast<std::uint8_t>(payload_len >> 16);
  out[len_at + 2] = static_cast<std::uint8_t>(payload_len >> 8);
  out[len_at + 3] = static_cast<std::uint8_t>(payload_len);
}

const char* code_name(ProtoErrorCode code) {
  switch (code) {
    case ProtoErrorCode::kBadMagic: return "bad-magic";
    case ProtoErrorCode::kBadVersion: return "bad-version";
    case ProtoErrorCode::kBadType: return "bad-type";
    case ProtoErrorCode::kOversizedPayload: return "oversized-payload";
    case ProtoErrorCode::kBadPayload: return "bad-payload";
    case ProtoErrorCode::kOversizedBatch: return "oversized-batch";
    case ProtoErrorCode::kUnexpectedType: return "unexpected-type";
  }
  return "unknown";
}

}  // namespace

std::string ProtoError::to_string() const {
  return std::string{"proto error "} + code_name(code) + " at offset " +
         std::to_string(offset) + ": " + detail;
}

DecodeStatus decode_frame(std::span<const std::uint8_t> in, Frame& out,
                          std::size_t& consumed, ProtoError& err) {
  // Validate progressively so garbage fails as soon as its first bytes
  // arrive, not only once a whole (attacker-declared) frame buffers.
  if (in.size() < 4) return DecodeStatus::kNeedMore;
  if (get_u32(in.data()) != kMagic) {
    err = ProtoError{ProtoErrorCode::kBadMagic, 0, "frame magic mismatch"};
    return DecodeStatus::kError;
  }
  if (in.size() < 5) return DecodeStatus::kNeedMore;
  if (in[4] != kProtoVersion) {
    err = ProtoError{ProtoErrorCode::kBadVersion, 4,
                     "unsupported protocol version"};
    return DecodeStatus::kError;
  }
  if (in.size() < 6) return DecodeStatus::kNeedMore;
  const std::uint8_t type = in[5];
  if (type < static_cast<std::uint8_t>(FrameType::kHello) ||
      type > static_cast<std::uint8_t>(FrameType::kError)) {
    err = ProtoError{ProtoErrorCode::kBadType, 5, "unknown frame type"};
    return DecodeStatus::kError;
  }
  if (in.size() < kHeaderSize) return DecodeStatus::kNeedMore;
  const std::uint32_t payload_len = get_u32(in.data() + 8);
  if (payload_len > kMaxPayload) {
    err = ProtoError{ProtoErrorCode::kOversizedPayload, 8,
                     "payload_len exceeds kMaxPayload"};
    return DecodeStatus::kError;
  }
  if (in.size() < kHeaderSize + payload_len) return DecodeStatus::kNeedMore;
  out.header.version = in[4];
  out.header.type = static_cast<FrameType>(type);
  out.header.seq = get_u16(in.data() + 6);
  out.header.payload_len = payload_len;
  out.payload = in.subspan(kHeaderSize, payload_len);
  consumed = kHeaderSize + payload_len;
  return DecodeStatus::kFrame;
}

std::optional<ProtoError> decode_lookup_batch(
    std::span<const std::uint8_t> payload,
    std::vector<serve::LookupRequest>& out) {
  out.clear();
  if (payload.size() < 4) {
    return ProtoError{ProtoErrorCode::kBadPayload, 0,
                      "LOOKUP_BATCH shorter than its count field"};
  }
  const std::uint32_t count = get_u32(payload.data());
  if (count > kMaxBatch) {
    return ProtoError{ProtoErrorCode::kOversizedBatch, 0,
                      "batch count exceeds kMaxBatch"};
  }
  if (payload.size() != 4 + count * kLookupRequestSize) {
    return ProtoError{ProtoErrorCode::kBadPayload, 4,
                      "LOOKUP_BATCH length disagrees with count"};
  }
  out.reserve(count);
  const std::uint8_t* p = payload.data() + 4;
  for (std::uint32_t i = 0; i < count; ++i, p += kLookupRequestSize) {
    out.push_back(serve::LookupRequest{get_u32(p), get_u32(p + 4)});
  }
  return std::nullopt;
}

std::optional<ProtoError> decode_lookup_reply(
    std::span<const std::uint8_t> payload, LookupReplyInfo& info,
    std::vector<serve::LookupResponse>& out) {
  out.clear();
  if (payload.size() < 20) {
    return ProtoError{ProtoErrorCode::kBadPayload, 0,
                      "LOOKUP_REPLY shorter than its fixed fields"};
  }
  info.snapshot_version = get_u64(payload.data());
  info.fingerprint = get_u64(payload.data() + 8);
  info.count = get_u32(payload.data() + 16);
  if (info.count > kMaxBatch) {
    return ProtoError{ProtoErrorCode::kOversizedBatch, 16,
                      "reply count exceeds kMaxBatch"};
  }
  if (payload.size() != 20 + info.count * kLookupResponseSize) {
    return ProtoError{ProtoErrorCode::kBadPayload, 16,
                      "LOOKUP_REPLY length disagrees with count"};
  }
  out.reserve(info.count);
  const std::uint8_t* p = payload.data() + 20;
  for (std::uint32_t i = 0; i < info.count; ++i, p += kLookupResponseSize) {
    serve::LookupResponse r;
    r.hit = p[0];
    if (r.hit > 1) {
      return ProtoError{ProtoErrorCode::kBadPayload,
                        20 + i * kLookupResponseSize,
                        "hit flag is neither 0 nor 1"};
    }
    r.prefix_len = p[1];
    r.prefix = get_u32(p + 2);
    r.next_hop = get_u32(p + 6);
    r.learned_from = get_u32(p + 10);
    r.path_id = get_u32(p + 14);
    r.attrs_hash = get_u64(p + 18);
    r.snapshot_version = info.snapshot_version;
    r.fingerprint = info.fingerprint;
    out.push_back(r);
  }
  return std::nullopt;
}

std::optional<ProtoError> decode_hello_ack(
    std::span<const std::uint8_t> payload, HelloAck& out) {
  if (payload.size() != 24) {
    return ProtoError{ProtoErrorCode::kBadPayload, 0,
                      "HELLO_ACK payload must be 24 bytes"};
  }
  out.snapshot_version = get_u64(payload.data());
  out.fingerprint = get_u64(payload.data() + 8);
  out.routers = get_u32(payload.data() + 16);
  out.prefixes = get_u32(payload.data() + 20);
  return std::nullopt;
}

std::optional<ProtoError> decode_stats_reply(
    std::span<const std::uint8_t> payload, StatsReply& out) {
  if (payload.size() != 56) {
    return ProtoError{ProtoErrorCode::kBadPayload, 0,
                      "STATS_REPLY payload must be 56 bytes"};
  }
  const std::uint8_t* p = payload.data();
  out.snapshot_version = get_u64(p);
  out.fingerprint = get_u64(p + 8);
  out.publishes = get_u64(p + 16);
  out.lookups_served = get_u64(p + 24);
  out.batches_served = get_u64(p + 32);
  out.connections_accepted = get_u64(p + 40);
  out.connections_dropped = get_u64(p + 48);
  return std::nullopt;
}

std::optional<ProtoError> decode_error(std::span<const std::uint8_t> payload,
                                       WireError& out) {
  if (payload.size() < 4) {
    return ProtoError{ProtoErrorCode::kBadPayload, 0,
                      "ERROR shorter than its fixed fields"};
  }
  out.code = get_u16(payload.data());
  const std::uint16_t detail_len = get_u16(payload.data() + 2);
  if (payload.size() != 4u + detail_len) {
    return ProtoError{ProtoErrorCode::kBadPayload, 2,
                      "ERROR length disagrees with detail_len"};
  }
  out.detail.assign(reinterpret_cast<const char*>(payload.data() + 4),
                    detail_len);
  return std::nullopt;
}

void append_hello(std::vector<std::uint8_t>& out, std::uint16_t seq) {
  end_frame(out, begin_frame(out, FrameType::kHello, seq));
}

void append_hello_ack(std::vector<std::uint8_t>& out, std::uint16_t seq,
                      const HelloAck& ack) {
  const std::size_t len_at = begin_frame(out, FrameType::kHelloAck, seq);
  put_u64(out, ack.snapshot_version);
  put_u64(out, ack.fingerprint);
  put_u32(out, ack.routers);
  put_u32(out, ack.prefixes);
  end_frame(out, len_at);
}

void append_stats(std::vector<std::uint8_t>& out, std::uint16_t seq) {
  end_frame(out, begin_frame(out, FrameType::kStats, seq));
}

void append_stats_reply(std::vector<std::uint8_t>& out, std::uint16_t seq,
                        const StatsReply& stats) {
  const std::size_t len_at = begin_frame(out, FrameType::kStatsReply, seq);
  put_u64(out, stats.snapshot_version);
  put_u64(out, stats.fingerprint);
  put_u64(out, stats.publishes);
  put_u64(out, stats.lookups_served);
  put_u64(out, stats.batches_served);
  put_u64(out, stats.connections_accepted);
  put_u64(out, stats.connections_dropped);
  end_frame(out, len_at);
}

void append_lookup_batch(std::vector<std::uint8_t>& out, std::uint16_t seq,
                         std::span<const serve::LookupRequest> reqs) {
  const std::size_t len_at = begin_frame(out, FrameType::kLookupBatch, seq);
  put_u32(out, static_cast<std::uint32_t>(reqs.size()));
  for (const serve::LookupRequest& req : reqs) {
    put_u32(out, req.router);
    put_u32(out, req.addr);
  }
  end_frame(out, len_at);
}

void append_lookup_reply(std::vector<std::uint8_t>& out, std::uint16_t seq,
                         std::uint64_t snapshot_version,
                         std::uint64_t fingerprint,
                         std::span<const serve::LookupResponse> resps) {
  const std::size_t len_at = begin_frame(out, FrameType::kLookupReply, seq);
  put_u64(out, snapshot_version);
  put_u64(out, fingerprint);
  put_u32(out, static_cast<std::uint32_t>(resps.size()));
  for (const serve::LookupResponse& r : resps) {
    put_u8(out, r.hit);
    put_u8(out, r.prefix_len);
    put_u32(out, r.prefix);
    put_u32(out, r.next_hop);
    put_u32(out, r.learned_from);
    put_u32(out, r.path_id);
    put_u64(out, r.attrs_hash);
  }
  end_frame(out, len_at);
}

void append_error(std::vector<std::uint8_t>& out, std::uint16_t seq,
                  ProtoErrorCode code, const char* detail) {
  const std::size_t len_at = begin_frame(out, FrameType::kError, seq);
  const std::size_t detail_len = std::strlen(detail);
  put_u16(out, static_cast<std::uint16_t>(code));
  put_u16(out, static_cast<std::uint16_t>(detail_len));
  out.insert(out.end(), detail, detail + detail_len);
  end_frame(out, len_at);
}

}  // namespace abrr::frontend
