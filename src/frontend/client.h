// Blocking ABRR-Q client: the reference consumer of the front-end
// protocol, used by the loadgen bench, the integration tests, and any
// tool that wants to query a served RIB over TCP.
//
// The request/reply surface mirrors serve::QueryApi — lookup() takes
// LookupRequest spans and returns the same LookupResponse structs an
// in-process Reader::lookup_batch fills, so equivalence is a direct
// struct comparison. send_lookup()/recv_reply() split the round trip
// for pipelined use (several requests in flight on one connection,
// replies matched by seq).
//
// Unlike the server (which must never throw on hostile input), the
// client throws std::runtime_error on I/O failures, timeouts, ERROR
// frames, and protocol violations — its peer is our own server, so a
// malformed reply is a bug, not an attack.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "frontend/proto.h"
#include "serve/service.h"

namespace abrr::frontend {

class Client {
 public:
  Client() = default;
  ~Client() { close(); }

  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  /// Connects to 127.0.0.1:`port`. `timeout_ms` bounds every later
  /// receive (a wedged server surfaces as an exception, not a hang).
  void connect(std::uint16_t port, int timeout_ms = 5000);
  bool connected() const { return fd_ >= 0; }
  void close();

  /// One decoded LOOKUP_REPLY.
  struct Reply {
    std::uint16_t seq = 0;
    std::uint64_t snapshot_version = 0;
    std::uint64_t fingerprint = 0;
    std::vector<serve::LookupResponse> responses;
  };

  /// HELLO handshake; returns the server's snapshot preview.
  HelloAck hello();

  /// Server + service counters.
  StatsReply stats();

  /// One synchronous round trip: send the batch, wait for its reply.
  Reply lookup(std::span<const serve::LookupRequest> reqs);

  /// Pipelined half-calls: send_lookup returns the frame's seq
  /// immediately; recv_reply blocks for the next LOOKUP_REPLY (replies
  /// arrive in request order — the server answers a connection's
  /// frames sequentially).
  std::uint16_t send_lookup(std::span<const serve::LookupRequest> reqs);
  Reply recv_reply();

  std::uint64_t bytes_sent() const { return bytes_sent_; }
  std::uint64_t bytes_received() const { return bytes_received_; }

 private:
  void send_all(const std::vector<std::uint8_t>& frame);
  /// Blocks until one complete frame is buffered; throws on ERROR
  /// frames (after decoding their detail), EOF, timeout, or garbage.
  void recv_frame(FrameHeader& header, std::vector<std::uint8_t>& payload);

  int fd_ = -1;
  std::uint16_t next_seq_ = 1;
  std::vector<std::uint8_t> sendbuf_;
  std::vector<std::uint8_t> recvbuf_;  // unparsed reply bytes
  std::uint64_t bytes_sent_ = 0;
  std::uint64_t bytes_received_ = 0;
};

}  // namespace abrr::frontend
