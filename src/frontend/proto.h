// ABRR-Q: the versioned, length-prefixed binary protocol the TCP
// front-end speaks (DESIGN.md §15).
//
// Every frame is a 12-byte header followed by `payload_len` bytes:
//
//   0      4       5      6        8             12
//   | magic | version | type | seq    | payload_len | payload...
//   (u32BE)   (u8)      (u8)   (u16BE)  (u32BE)
//
// seq is chosen by the requester and echoed verbatim in the reply, so
// clients can pipeline requests and match replies without per-frame
// state on the server. All integers are big-endian (network order,
// matching src/wire). Frame types:
//
//   HELLO        -> HELLO_ACK     session handshake, snapshot preview
//   STATS        -> STATS_REPLY   service + server counters
//   LOOKUP_BATCH -> LOOKUP_REPLY  the serving query path
//   ERROR                         server->client, then the connection
//                                 is closed (fatal by definition)
//
// The decoder is bounds-checked in the src/wire style: it never reads
// past its span, never throws, and returns structured (code, offset,
// detail) errors for malformed input — it is the surface a hostile
// client hits, and tests/frontend/proto_test.cpp drives it with the
// corpus-mutation fallback fuzzer pattern from tests/wire.
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "serve/service.h"

namespace abrr::frontend {

// --- framing constants ------------------------------------------------

inline constexpr std::uint32_t kMagic = 0x41425251u;  // "ABRQ"
inline constexpr std::uint8_t kProtoVersion = 1;
inline constexpr std::size_t kHeaderSize = 12;
/// Upper bound on payload_len: anything larger is rejected before
/// buffering, so a hostile header cannot make the server allocate.
inline constexpr std::size_t kMaxPayload = 1u << 20;
/// Lookups per LOOKUP_BATCH frame (also keeps replies under
/// kMaxPayload: kMaxBatch * kLookupResponseSize + 20 < 1 MiB).
inline constexpr std::size_t kMaxBatch = 16384;

enum class FrameType : std::uint8_t {
  kHello = 1,
  kHelloAck = 2,
  kStats = 3,
  kStatsReply = 4,
  kLookupBatch = 5,
  kLookupReply = 6,
  kError = 7,
};

/// Wire sizes of the typed payload units (fixed-width encodings).
inline constexpr std::size_t kLookupRequestSize = 8;    // router + addr
inline constexpr std::size_t kLookupResponseSize = 26;  // flattened hit

// --- structured decode errors ----------------------------------------

enum class ProtoErrorCode : std::uint16_t {
  kBadMagic = 1,
  kBadVersion = 2,
  kBadType = 3,
  kOversizedPayload = 4,
  kBadPayload = 5,      // typed payload malformed (length/trailing bytes)
  kOversizedBatch = 6,  // LOOKUP_BATCH count > kMaxBatch
  kUnexpectedType = 7,  // e.g. client sent a reply-only frame type
};

/// One structured parse failure: never an exception, never a crash.
struct ProtoError {
  ProtoErrorCode code = ProtoErrorCode::kBadMagic;
  std::size_t offset = 0;   // byte offset into the decoded buffer
  const char* detail = "";  // static human-readable context

  std::string to_string() const;
};

/// decode_frame outcome: a stream decoder needs three-way results —
/// a complete frame, "buffer more bytes", or a fatal framing error.
enum class DecodeStatus : std::uint8_t {
  kFrame = 0,
  kNeedMore = 1,
  kError = 2,
};

struct FrameHeader {
  std::uint8_t version = kProtoVersion;
  FrameType type = FrameType::kHello;
  std::uint16_t seq = 0;
  std::uint32_t payload_len = 0;
};

/// One decoded frame; `payload` aliases the input span.
struct Frame {
  FrameHeader header;
  std::span<const std::uint8_t> payload;
};

/// Decodes the frame at the front of `in`. kFrame: `out` is filled and
/// `consumed` is the frame's total length. kNeedMore: the buffer holds
/// a valid-so-far prefix (magic/version/type already validated when
/// present). kError: `err` is filled; the connection is unrecoverable
/// (framing is lost). Never throws, never reads past `in`.
DecodeStatus decode_frame(std::span<const std::uint8_t> in, Frame& out,
                          std::size_t& consumed, ProtoError& err);

// --- typed payloads ---------------------------------------------------

/// HELLO_ACK: what a client learns at connect time.
struct HelloAck {
  std::uint64_t snapshot_version = 0;
  std::uint64_t fingerprint = 0;
  std::uint32_t routers = 0;   // servable router ids
  std::uint32_t prefixes = 0;  // LPM universe size

  friend bool operator==(const HelloAck&, const HelloAck&) = default;
};

/// STATS_REPLY: service + front-end counters, point-in-time.
struct StatsReply {
  std::uint64_t snapshot_version = 0;
  std::uint64_t fingerprint = 0;
  std::uint64_t publishes = 0;
  std::uint64_t lookups_served = 0;
  std::uint64_t batches_served = 0;
  std::uint64_t connections_accepted = 0;
  std::uint64_t connections_dropped = 0;

  friend bool operator==(const StatsReply&, const StatsReply&) = default;
};

/// ERROR payload: code + static detail string.
struct WireError {
  std::uint16_t code = 0;
  std::string detail;

  friend bool operator==(const WireError&, const WireError&) = default;
};

/// LOOKUP_REPLY header fields (before the response array).
struct LookupReplyInfo {
  std::uint64_t snapshot_version = 0;
  std::uint64_t fingerprint = 0;
  std::uint32_t count = 0;
};

// Payload decoders: `payload` is exactly one frame's payload span (from
// decode_frame). They clear/overwrite `out`, reject trailing bytes, and
// never throw.
std::optional<ProtoError> decode_lookup_batch(
    std::span<const std::uint8_t> payload,
    std::vector<serve::LookupRequest>& out);
std::optional<ProtoError> decode_lookup_reply(
    std::span<const std::uint8_t> payload, LookupReplyInfo& info,
    std::vector<serve::LookupResponse>& out);
std::optional<ProtoError> decode_hello_ack(
    std::span<const std::uint8_t> payload, HelloAck& out);
std::optional<ProtoError> decode_stats_reply(
    std::span<const std::uint8_t> payload, StatsReply& out);
std::optional<ProtoError> decode_error(std::span<const std::uint8_t> payload,
                                       WireError& out);

// Encoders append one complete frame (header + payload) to `out`.
// Encoding is infallible for in-contract inputs; append_lookup_batch
// and append_lookup_reply require size() <= kMaxBatch.
void append_hello(std::vector<std::uint8_t>& out, std::uint16_t seq);
void append_hello_ack(std::vector<std::uint8_t>& out, std::uint16_t seq,
                      const HelloAck& ack);
void append_stats(std::vector<std::uint8_t>& out, std::uint16_t seq);
void append_stats_reply(std::vector<std::uint8_t>& out, std::uint16_t seq,
                        const StatsReply& stats);
void append_lookup_batch(std::vector<std::uint8_t>& out, std::uint16_t seq,
                         std::span<const serve::LookupRequest> reqs);
void append_lookup_reply(std::vector<std::uint8_t>& out, std::uint16_t seq,
                         std::uint64_t snapshot_version,
                         std::uint64_t fingerprint,
                         std::span<const serve::LookupResponse> resps);
void append_error(std::vector<std::uint8_t>& out, std::uint16_t seq,
                  ProtoErrorCode code, const char* detail);

/// Exact frame length append_lookup_reply would emit for `count`
/// responses — the server's backpressure check sizes its outbox with
/// this before answering.
inline constexpr std::size_t lookup_reply_frame_size(std::size_t count) {
  return kHeaderSize + 20 + count * kLookupResponseSize;
}

}  // namespace abrr::frontend
