#include "topo/topology.h"

#include <algorithm>
#include <stdexcept>

namespace abrr::topo {

std::vector<const RouterSpec*> Topology::cluster_clients(
    std::uint32_t cluster) const {
  std::vector<const RouterSpec*> out;
  for (const auto& r : clients) {
    if (r.cluster == cluster) out.push_back(&r);
  }
  return out;
}

std::vector<const ReflectorSpec*> Topology::cluster_reflectors(
    std::uint32_t cluster) const {
  std::vector<const ReflectorSpec*> out;
  for (const auto& r : reflectors) {
    if (r.cluster == cluster) out.push_back(&r);
  }
  return out;
}

std::vector<const PeeringPoint*> Topology::points_of(Asn peer_as) const {
  std::vector<const PeeringPoint*> out;
  for (const auto& p : peering_points) {
    if (p.peer_as == peer_as) out.push_back(&p);
  }
  return out;
}

std::vector<RouterId> Topology::peering_routers() const {
  std::vector<RouterId> out;
  for (const auto& r : clients) {
    if (r.role == RouterRole::kPeering) out.push_back(r.id);
  }
  return out;
}

Topology make_tier1(const TopologyParams& params, sim::Rng& rng) {
  if (params.pops == 0 || params.clients_per_pop == 0) {
    throw std::invalid_argument{"topology needs at least one PoP/client"};
  }
  Topology topo;
  topo.params = params;

  RouterId next_id = 1;

  // Data-plane clients: the first `peering_router_fraction` of each PoP
  // are peering routers, the rest access routers.
  for (std::uint32_t pop = 0; pop < params.pops; ++pop) {
    const auto n_peering = static_cast<std::uint32_t>(
        params.clients_per_pop * params.peering_router_fraction + 0.5);
    for (std::uint32_t i = 0; i < params.clients_per_pop; ++i) {
      RouterSpec r;
      r.id = next_id++;
      r.pop = pop;
      r.cluster = pop;
      r.role = i < n_peering ? RouterRole::kPeering : RouterRole::kAccess;
      topo.clients.push_back(r);
    }
  }

  // Control-plane reflector boxes, trrs_per_cluster per PoP.
  for (std::uint32_t pop = 0; pop < params.pops; ++pop) {
    for (std::uint32_t i = 0; i < params.trrs_per_cluster; ++i) {
      ReflectorSpec r;
      r.id = next_id++;
      r.pop = pop;
      r.cluster = pop;
      topo.reflectors.push_back(r);
    }
  }

  // IGP graph: per PoP, a hub connecting all local routers (intra-PoP
  // metrics), hubs connected in a ring plus random chords (inter-PoP).
  const auto intra = [&] {
    return static_cast<igp::Metric>(rng.uniform_int(
        params.intra_pop_metric_min, params.intra_pop_metric_max));
  };
  const auto inter = [&] {
    return static_cast<igp::Metric>(rng.uniform_int(
        params.inter_pop_metric_min, params.inter_pop_metric_max));
  };
  for (const auto& r : topo.clients) {
    topo.graph.add_link(r.id, kHubBase + r.pop, intra());
  }
  for (const auto& r : topo.reflectors) {
    topo.graph.add_link(r.id, kHubBase + r.pop, intra());
  }
  if (params.pops > 1) {
    for (std::uint32_t pop = 0; pop < params.pops; ++pop) {
      topo.graph.add_link(kHubBase + pop,
                          kHubBase + (pop + 1) % params.pops, inter());
    }
    for (std::uint32_t i = 0; i < params.extra_pop_links; ++i) {
      const auto a = static_cast<std::uint32_t>(rng.index(params.pops));
      const auto b = static_cast<std::uint32_t>(rng.index(params.pops));
      if (a != b) topo.graph.add_link(kHubBase + a, kHubBase + b, inter());
    }
  }

  // Peer ASes and their peering points. Each AS attaches at
  // `peering_points_per_as` points in distinct PoPs (diversity policy),
  // with optional Zipf skew so gateway PoPs attract more peerings.
  RouterId next_neighbor = kEbgpNeighborBase;
  for (std::uint32_t i = 0; i < params.peer_ases; ++i) {
    topo.peer_as_list.push_back(7000 + i);
  }
  for (const Asn peer_as : topo.peer_as_list) {
    std::vector<std::uint32_t> pops_used;
    std::uint32_t guard = 0;
    while (pops_used.size() <
               std::min<std::size_t>(params.peering_points_per_as,
                                     params.pops) &&
           guard++ < 1000) {
      const auto pop = static_cast<std::uint32_t>(
          params.peering_skew > 0
              ? rng.zipf(params.pops, params.peering_skew)
              : rng.index(params.pops));
      if (std::find(pops_used.begin(), pops_used.end(), pop) !=
          pops_used.end()) {
        continue;
      }
      // Pick a peering router in this PoP, if any.
      std::vector<const RouterSpec*> local;
      for (const auto& r : topo.clients) {
        if (r.pop == pop && r.role == RouterRole::kPeering) {
          local.push_back(&r);
        }
      }
      if (local.empty()) continue;
      pops_used.push_back(pop);
      const RouterSpec* router = local[rng.index(local.size())];
      topo.peering_points.push_back(
          PeeringPoint{router->id, peer_as, next_neighbor++});
    }
  }
  return topo;
}

}  // namespace abrr::topo
