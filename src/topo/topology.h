// Tier-1 AS topology model (§3.1, §4).
//
// The measured AS: >1000 BGP routers, <10% of them peering routers,
// 25 peer ASes with ~8 peering points each, 27 clusters (we default to
// the 13-cluster peering-router subset the paper's testbed used).
#pragma once

#include <cstdint>
#include <vector>

#include "bgp/types.h"
#include "igp/graph.h"
#include "sim/random.h"

namespace abrr::topo {

using bgp::Asn;
using bgp::RouterId;

/// Functional role of a data-plane router.
enum class RouterRole : std::uint8_t {
  kAccess,   // connects customer ASes
  kPeering,  // has eBGP sessions with peer ASes
};

/// One data-plane router (an iBGP client).
struct RouterSpec {
  RouterId id = bgp::kNoRouter;
  RouterRole role = RouterRole::kAccess;
  std::uint32_t pop = 0;      // PoP index
  std::uint32_t cluster = 0;  // TBRR cluster (== pop in our model)
};

/// A control-plane route reflector (TRR or ARR depending on experiment).
struct ReflectorSpec {
  RouterId id = bgp::kNoRouter;
  std::uint32_t pop = 0;  // physical placement
  /// TBRR: the cluster it serves. ABRR reuses these nodes as ARRs with
  /// unconstrained placement, so `cluster` is ignored there.
  std::uint32_t cluster = 0;
};

/// One eBGP peering point: a peering router's session to a peer AS.
struct PeeringPoint {
  RouterId router = bgp::kNoRouter;   // our peering router
  Asn peer_as = 0;                    // the neighboring AS
  RouterId neighbor_id = 0;           // eBGP neighbor session id
};

/// Knobs for the synthetic Tier-1 topology.
struct TopologyParams {
  std::uint32_t pops = 13;             // == TBRR clusters
  std::uint32_t clients_per_pop = 6;   // data-plane routers per PoP
  std::uint32_t trrs_per_cluster = 2;  // redundant TRRs
  std::uint32_t peer_ases = 25;
  /// Average peering points per peer AS (the paper measured ~8); points
  /// are placed in geographically diverse PoPs (AT&T peering policy).
  std::uint32_t peering_points_per_as = 8;
  /// Fraction of clients that are peering routers (<10% of >1000 routers
  /// in the real AS; our scaled-down PoPs need a larger share so that
  /// every peer AS can find diverse attachment points).
  double peering_router_fraction = 0.5;
  /// Skew: a few "gateway" PoPs attract disproportionally many peering
  /// points, reproducing the non-uniform distribution behind the TRR
  /// analysis overestimate of Figure 6.
  double peering_skew = 1.0;  // Zipf exponent over PoPs; 0 = uniform
  // IGP metrics: intra-PoP always shorter than inter-PoP (§1).
  igp::Metric intra_pop_metric_min = 1;
  igp::Metric intra_pop_metric_max = 5;
  igp::Metric inter_pop_metric_min = 20;
  igp::Metric inter_pop_metric_max = 100;
  /// Extra random inter-PoP links beyond the connectivity ring.
  std::uint32_t extra_pop_links = 12;
};

/// The synthesized AS.
struct Topology {
  TopologyParams params;
  std::vector<RouterSpec> clients;
  std::vector<ReflectorSpec> reflectors;  // control-plane RR nodes
  std::vector<PeeringPoint> peering_points;
  std::vector<Asn> peer_as_list;
  igp::Graph graph;  // covers clients and reflectors

  Asn local_as = 65000;

  /// Clients in one cluster.
  std::vector<const RouterSpec*> cluster_clients(std::uint32_t cluster) const;
  /// Reflector nodes of one cluster.
  std::vector<const ReflectorSpec*> cluster_reflectors(
      std::uint32_t cluster) const;
  /// Peering points attached to one peer AS.
  std::vector<const PeeringPoint*> points_of(Asn peer_as) const;
  /// All peering routers (clients with eBGP sessions).
  std::vector<RouterId> peering_routers() const;
};

/// Synthesizes a Tier-1-like topology. Deterministic for a given rng
/// state. Reflector nodes are created as `pops * trrs_per_cluster`
/// control-plane boxes; experiments use them as TRRs (cluster-bound) or
/// repurpose any subset as ARRs (placement-free).
Topology make_tier1(const TopologyParams& params, sim::Rng& rng);

/// eBGP neighbor ids live in a disjoint range from RouterIds.
inline constexpr RouterId kEbgpNeighborBase = 0x80000000;

/// PoP hub nodes in the IGP graph (pure forwarding devices, not BGP
/// speakers): hub of PoP p is kHubBase + p.
inline constexpr RouterId kHubBase = 0x40000000;

/// The IGP node representing a PoP's hub.
constexpr RouterId hub_of(std::uint32_t pop) { return kHubBase + pop; }

}  // namespace abrr::topo
