#include "net/network.h"

#include <stdexcept>
#include <utility>

namespace abrr::net {

void Network::register_endpoint(RouterId id, Receiver receiver) {
  if (!receiver) throw std::invalid_argument{"register_endpoint: empty"};
  endpoints_[id] = std::move(receiver);
}

void Network::connect(RouterId a, RouterId b, sim::Time latency,
                      sim::Time jitter) {
  if (a == b) throw std::invalid_argument{"connect: self session"};
  if (latency < 0 || jitter < 0) {
    throw std::invalid_argument{"connect: negative latency"};
  }
  for (const auto k : {key(a, b), key(b, a)}) {
    ChannelState& ch = channels_[k];
    ch.base_latency = latency;
    ch.jitter = jitter;
  }
}

bool Network::connected(RouterId a, RouterId b) const {
  return channels_.count(key(a, b)) != 0;
}

void Network::send(RouterId from, RouterId to, bgp::UpdateMessage msg) {
  const auto cit = channels_.find(key(from, to));
  if (cit == channels_.end()) {
    throw std::logic_error{"send: no session " + std::to_string(from) +
                           " -> " + std::to_string(to)};
  }
  const auto eit = endpoints_.find(to);
  if (eit == endpoints_.end()) {
    throw std::logic_error{"send: unregistered endpoint " +
                           std::to_string(to)};
  }

  ChannelState& ch = cit->second;
  sim::Time latency = ch.base_latency;
  if (ch.jitter > 0) latency += rng_->uniform_int(0, ch.jitter);
  sim::Time at = scheduler_->now() + latency;
  if (at <= ch.last_delivery) at = ch.last_delivery + 1;  // FIFO
  ch.last_delivery = at;
  ++ch.messages;
  ch.bytes += msg.wire_size();
  ++total_messages_;
  total_bytes_ += msg.wire_size();

  // The receiver is looked up at delivery time so endpoints can be
  // replaced mid-run (e.g. transition experiments).
  scheduler_->schedule_at(at, [this, from, to, m = std::move(msg)]() {
    const auto it = endpoints_.find(to);
    if (it != endpoints_.end()) it->second(from, m);
  });
}

const ChannelState* Network::channel(RouterId from, RouterId to) const {
  const auto it = channels_.find(key(from, to));
  return it == channels_.end() ? nullptr : &it->second;
}

}  // namespace abrr::net
