#include "net/network.h"

#include <algorithm>
#include <stdexcept>
#include <utility>

namespace abrr::net {

void Network::set_metrics(obs::MetricsRegistry* metrics) {
  if (metrics == nullptr) {
    m_messages_ = nullptr;
    m_bytes_ = nullptr;
    m_modeled_bytes_ = nullptr;
    m_dropped_ = nullptr;
    m_msg_bytes_ = nullptr;
    return;
  }
  m_messages_ = metrics->counter("net.messages");
  m_bytes_ = metrics->counter("net.bytes");
  m_modeled_bytes_ = metrics->counter("net.modeled_bytes");
  m_dropped_ = metrics->counter("net.dropped");
  m_msg_bytes_ = metrics->histogram("net.msg_bytes", obs::size_buckets());
}

void Network::register_endpoint(RouterId id, Receiver receiver) {
  if (!receiver) throw std::invalid_argument{"register_endpoint: empty"};
  endpoints_[id] = std::move(receiver);
}

void Network::connect(RouterId a, RouterId b, sim::Time latency,
                      sim::Time jitter) {
  if (a == b) throw std::invalid_argument{"connect: self session"};
  if (latency < 0 || jitter < 0) {
    throw std::invalid_argument{"connect: negative latency"};
  }
  for (const auto k : {key(a, b), key(b, a)}) {
    ChannelState& ch = channels_[k];
    ch.base_latency = latency;
    ch.jitter = jitter;
  }
}

bool Network::connected(RouterId a, RouterId b) const {
  return channels_.count(key(a, b)) != 0;
}

void Network::dispatch(RouterId from, RouterId to, ChannelState& ch,
                       bgp::UpdateMessage msg) {
  sim::Time latency = ch.base_latency + ch.extra_delay;
  if (ch.jitter > 0) latency += rng_->uniform_int(0, ch.jitter);
  sim::Time at = scheduler_->now() + latency;
  if (at <= ch.last_delivery) at = ch.last_delivery + 1;  // FIFO
  ch.last_delivery = at;
  const std::uint64_t seq = ch.next_seq++;

  // The receiver (and the channel, for the in-order check) are looked up
  // at delivery time so endpoints can be replaced mid-run (e.g.
  // transition experiments) and the channel map may rehash.
  const std::uint64_t k = key(from, to);
  auto deliver = [this, k, from, to, seq, m = std::move(msg)]() {
    const auto cit = channels_.find(k);
    if (cit == channels_.end()) return;
    if (seq != cit->second.expect_seq) {
      throw std::logic_error{"channel " + std::to_string(from) + " -> " +
                             std::to_string(to) +
                             " delivered out of order (fault hooks broke "
                             "the FIFO invariant)"};
    }
    ++cit->second.expect_seq;
    const auto it = endpoints_.find(to);
    if (it != endpoints_.end()) it->second(from, m);
  };
  // The delivery closure is the dominant event on the scheduler hot path;
  // it must stay within the pooled nodes' inline capture budget or every
  // message delivery regains a heap allocation.
  static_assert(sim::Scheduler::Callback::fits_inline<decltype(deliver)>(),
                "delivery lambda exceeds Scheduler::kCallbackCapacity");
  scheduler_->schedule_at(at, std::move(deliver));
}

void Network::send(RouterId from, RouterId to, bgp::UpdateMessage msg) {
  const auto cit = channels_.find(key(from, to));
  if (cit == channels_.end()) {
    throw std::logic_error{"send: no session " + std::to_string(from) +
                           " -> " + std::to_string(to)};
  }
  const auto eit = endpoints_.find(to);
  if (eit == endpoints_.end()) {
    throw std::logic_error{"send: unregistered endpoint " +
                           std::to_string(to)};
  }

  ChannelState& ch = cit->second;
  if (down_endpoints_.count(to) != 0) {
    // The destination's TCP stack died with it; nothing retransmits.
    ++ch.dropped;
    ++total_dropped_;
    if (m_dropped_ != nullptr) m_dropped_->inc();
    if (tracer_ != nullptr) {
      tracer_->record(obs::TraceEventKind::kMsgDrop, from, to, 1);
    }
    return;
  }
  if (ch.loss_prob > 0 && rng_->chance(ch.loss_prob)) {
    // Lost before a sequence number is assigned: the delivered stream
    // stays gap-free.
    ++ch.dropped;
    ++total_dropped_;
    if (m_dropped_ != nullptr) m_dropped_->inc();
    if (tracer_ != nullptr) {
      tracer_->record(obs::TraceEventKind::kMsgDrop, from, to, 1);
    }
    return;
  }

  const std::uint64_t wire = sizer_.message_size(msg);
  const std::uint64_t modeled = msg.wire_size();
  ++ch.messages;
  ch.bytes += modeled;
  ch.wire_bytes += wire;
  ++total_messages_;
  total_bytes_ += wire;
  total_modeled_bytes_ += modeled;
  if (m_messages_ != nullptr) {
    m_messages_->inc();
    m_bytes_->inc(wire);
    m_modeled_bytes_->inc(modeled);
    m_msg_bytes_->record(static_cast<double>(wire));
  }
  if (tracer_ != nullptr && tracer_->packets() != nullptr) {
    const auto bytes = encoder_.encode(msg);
    tracer_->packets()->record(from, to, bytes.data(), bytes.size());
  }

  if (!ch.up) {
    // TCP rides out a short link outage: the message waits in the send
    // window and is retransmitted after the restore.
    ch.buffered.push_back(std::move(msg));
    return;
  }
  dispatch(from, to, ch, std::move(msg));
}

void Network::set_link(RouterId a, RouterId b, bool up) {
  for (const auto [from, to] : {std::pair{a, b}, std::pair{b, a}}) {
    const auto it = channels_.find(key(from, to));
    if (it == channels_.end()) {
      throw std::logic_error{"set_link: no session " + std::to_string(a) +
                             " <-> " + std::to_string(b)};
    }
    ChannelState& ch = it->second;
    if (ch.up == up) continue;
    ch.up = up;
    if (!up) continue;
    std::vector<bgp::UpdateMessage> flush;
    flush.swap(ch.buffered);
    for (bgp::UpdateMessage& msg : flush) {
      dispatch(from, to, ch, std::move(msg));
    }
  }
}

bool Network::link_up(RouterId a, RouterId b) const {
  const auto it = channels_.find(key(a, b));
  return it != channels_.end() && it->second.up;
}

void Network::set_endpoint_up(RouterId id, bool up) {
  if (up) {
    down_endpoints_.erase(id);
  } else {
    down_endpoints_.insert(id);
  }
}

bool Network::endpoint_up(RouterId id) const {
  return down_endpoints_.count(id) == 0;
}

void Network::impair(RouterId a, RouterId b, sim::Time extra_delay,
                     double loss_prob) {
  if (extra_delay < 0 || loss_prob < 0 || loss_prob > 1) {
    throw std::invalid_argument{"impair: bad parameters"};
  }
  for (const auto k : {key(a, b), key(b, a)}) {
    const auto it = channels_.find(k);
    if (it == channels_.end()) {
      throw std::logic_error{"impair: no session " + std::to_string(a) +
                             " <-> " + std::to_string(b)};
    }
    it->second.extra_delay = extra_delay;
    it->second.loss_prob = loss_prob;
  }
}

void Network::session_reset(RouterId a, RouterId b) {
  for (const auto k : {key(a, b), key(b, a)}) {
    const auto it = channels_.find(k);
    if (it == channels_.end()) continue;
    ChannelState& ch = it->second;
    if (ch.buffered.empty()) continue;
    ch.dropped += ch.buffered.size();
    total_dropped_ += ch.buffered.size();
    if (m_dropped_ != nullptr) m_dropped_->inc(ch.buffered.size());
    if (tracer_ != nullptr) {
      const RouterId from = static_cast<RouterId>(k >> 32);
      const RouterId to = static_cast<RouterId>(k & 0xffffffffULL);
      tracer_->record(obs::TraceEventKind::kMsgDrop, from, to,
                      ch.buffered.size());
    }
    ch.buffered.clear();
  }
}

std::vector<std::pair<RouterId, RouterId>> Network::sessions() const {
  std::vector<std::pair<RouterId, RouterId>> out;
  out.reserve(channels_.size() / 2);
  for (const auto& [k, ch] : channels_) {
    const RouterId from = static_cast<RouterId>(k >> 32);
    const RouterId to = static_cast<RouterId>(k & 0xffffffffULL);
    if (from < to) out.emplace_back(from, to);
  }
  std::sort(out.begin(), out.end());
  return out;
}

const ChannelState* Network::channel(RouterId from, RouterId to) const {
  const auto it = channels_.find(key(from, to));
  return it == channels_.end() ? nullptr : &it->second;
}

}  // namespace abrr::net
