// The control-plane message fabric connecting BGP speakers.
#pragma once

#include <cstdint>
#include <functional>
#include <unordered_map>
#include <unordered_set>
#include <utility>
#include <vector>

#include "bgp/types.h"
#include "bgp/update.h"
#include "net/channel.h"
#include "obs/metrics.h"
#include "obs/tracer.h"
#include "sim/random.h"
#include "sim/scheduler.h"
#include "wire/codec.h"

namespace abrr::net {

using bgp::RouterId;

/// Delivery callback: (sender, message).
using Receiver = std::function<void(RouterId, const bgp::UpdateMessage&)>;

/// Reliable in-order message fabric between registered endpoints.
///
/// Endpoints are BGP speakers; `connect` establishes a bidirectional
/// session transport with a one-way latency (optionally jittered).
/// Fault-injection hooks (link state, endpoint state, impairment
/// windows) preserve the reliable in-order contract for every message
/// that is actually delivered; see channel.h for the model.
class Network {
 public:
  Network(sim::Scheduler& scheduler, sim::Rng& rng)
      : scheduler_(&scheduler), rng_(&rng) {}

  Network(const Network&) = delete;
  Network& operator=(const Network&) = delete;

  /// Registers an endpoint's receive handler. Re-registering replaces it.
  void register_endpoint(RouterId id, Receiver receiver);

  /// Establishes the transport both ways with the given one-way latency
  /// and per-message jitter bound.
  void connect(RouterId a, RouterId b, sim::Time latency,
               sim::Time jitter = 0);

  bool connected(RouterId a, RouterId b) const;

  /// Sends a message; delivery is scheduled after the channel latency
  /// (plus jitter and any impairment surcharge), no earlier than the
  /// previous message on the same directed channel. Throws if the
  /// channel does not exist. While the link is down the message is
  /// buffered; while the destination endpoint is down it is dropped.
  void send(RouterId from, RouterId to, bgp::UpdateMessage msg);

  // --- fault-injection hooks -----------------------------------------

  /// Takes the link between `a` and `b` down or up (both directions).
  /// Down: sends buffer (TCP retransmission semantics). Up: buffered
  /// messages flush in their original order.
  void set_link(RouterId a, RouterId b, bool up);

  bool link_up(RouterId a, RouterId b) const;

  /// Marks an endpoint dead/alive (router crash). Messages towards a
  /// dead endpoint are dropped at send time — its TCP stack is gone, so
  /// nothing retransmits them.
  void set_endpoint_up(RouterId id, bool up);

  bool endpoint_up(RouterId id) const;

  /// Impairment window on both directions of a channel: every message
  /// gains `extra_delay` latency and is lost with probability
  /// `loss_prob` (decided at send). Clear with (0, 0).
  void impair(RouterId a, RouterId b, sim::Time extra_delay,
              double loss_prob);

  /// A session between `a` and `b` was torn down: the connection reset
  /// discards anything buffered on either direction. Harmless when no
  /// channel exists.
  void session_reset(RouterId a, RouterId b);

  /// Every connected (a, b) pair once, a < b, sorted — a deterministic
  /// enumeration for chaos-schedule target selection.
  std::vector<std::pair<RouterId, RouterId>> sessions() const;

  /// Mirrors the aggregate counters into `net.*` registry cells (and
  /// feeds the `net.msg_bytes` size histogram). Pass nullptr to detach.
  /// The registry must outlive the network. Purely additive accounting:
  /// scheduling and RNG use are untouched.
  void set_metrics(obs::MetricsRegistry* metrics);

  /// Records kMsgDrop events for fault-hook losses. Null disables.
  void set_tracer(obs::Tracer* tracer) { tracer_ = tracer; }

  /// Aggregate counters. total_bytes() is measured: the sum of the
  /// exact RFC 4271 encoded lengths each message occupies on the wire
  /// (wire::WireSizer, O(1) per message after the first encode of an
  /// interned attribute block). total_modeled_bytes() keeps the legacy
  /// closed-form estimate for modeled-vs-measured comparison.
  std::uint64_t total_messages() const { return total_messages_; }
  std::uint64_t total_bytes() const { return total_bytes_; }
  std::uint64_t total_modeled_bytes() const { return total_modeled_bytes_; }
  /// Messages dropped by fault hooks (loss, dead endpoints, resets).
  std::uint64_t total_dropped() const { return total_dropped_; }

  /// Exact encoded size of `msg` on the wire (cached per interned
  /// attribute block). Speakers use this for their own byte counters so
  /// every layer reports the same measured number.
  std::uint64_t wire_size(const bgp::UpdateMessage& msg) {
    return sizer_.message_size(msg);
  }

  /// Attribute blocks the size cache has resolved (introspection).
  std::size_t sizer_cached_blocks() const { return sizer_.cached_blocks(); }

  /// Per-directed-channel counters, or nullptr if not connected.
  const ChannelState* channel(RouterId from, RouterId to) const;

  std::size_t session_count() const { return channels_.size() / 2; }

 private:
  static std::uint64_t key(RouterId from, RouterId to) {
    return (static_cast<std::uint64_t>(from) << 32) | to;
  }

  /// Schedules the delivery of `msg` on channel (from, to), assigning
  /// its FIFO sequence number. The channel must exist and be up.
  void dispatch(RouterId from, RouterId to, ChannelState& ch,
                bgp::UpdateMessage msg);

  sim::Scheduler* scheduler_;
  sim::Rng* rng_;
  std::unordered_map<RouterId, Receiver> endpoints_;
  std::unordered_map<std::uint64_t, ChannelState> channels_;
  std::unordered_set<RouterId> down_endpoints_;
  std::uint64_t total_messages_ = 0;
  std::uint64_t total_bytes_ = 0;
  std::uint64_t total_modeled_bytes_ = 0;
  std::uint64_t total_dropped_ = 0;

  // Exact-size oracle; safe to cache per attrs pointer because the
  // network lives inside one interner TrialScope.
  wire::WireSizer sizer_;
  // Full encoder, used only when a pcap capture ring is attached.
  wire::Encoder encoder_;

  // Optional observability handles (null when not attached).
  obs::Counter* m_messages_ = nullptr;
  obs::Counter* m_bytes_ = nullptr;
  obs::Counter* m_modeled_bytes_ = nullptr;
  obs::Counter* m_dropped_ = nullptr;
  obs::Histogram* m_msg_bytes_ = nullptr;
  obs::Tracer* tracer_ = nullptr;
};

}  // namespace abrr::net
