// The control-plane message fabric connecting BGP speakers.
#pragma once

#include <cstdint>
#include <functional>
#include <unordered_map>

#include "bgp/types.h"
#include "bgp/update.h"
#include "net/channel.h"
#include "sim/random.h"
#include "sim/scheduler.h"

namespace abrr::net {

using bgp::RouterId;

/// Delivery callback: (sender, message).
using Receiver = std::function<void(RouterId, const bgp::UpdateMessage&)>;

/// Reliable in-order message fabric between registered endpoints.
///
/// Endpoints are BGP speakers; `connect` establishes a bidirectional
/// session transport with a one-way latency (optionally jittered).
class Network {
 public:
  Network(sim::Scheduler& scheduler, sim::Rng& rng)
      : scheduler_(&scheduler), rng_(&rng) {}

  Network(const Network&) = delete;
  Network& operator=(const Network&) = delete;

  /// Registers an endpoint's receive handler. Re-registering replaces it.
  void register_endpoint(RouterId id, Receiver receiver);

  /// Establishes the transport both ways with the given one-way latency
  /// and per-message jitter bound.
  void connect(RouterId a, RouterId b, sim::Time latency,
               sim::Time jitter = 0);

  bool connected(RouterId a, RouterId b) const;

  /// Sends a message; delivery is scheduled after the channel latency
  /// (plus jitter), no earlier than the previous message on the same
  /// directed channel. Throws if the channel does not exist.
  void send(RouterId from, RouterId to, bgp::UpdateMessage msg);

  /// Aggregate counters.
  std::uint64_t total_messages() const { return total_messages_; }
  std::uint64_t total_bytes() const { return total_bytes_; }

  /// Per-directed-channel counters, or nullptr if not connected.
  const ChannelState* channel(RouterId from, RouterId to) const;

  std::size_t session_count() const { return channels_.size() / 2; }

 private:
  static std::uint64_t key(RouterId from, RouterId to) {
    return (static_cast<std::uint64_t>(from) << 32) | to;
  }

  sim::Scheduler* scheduler_;
  sim::Rng* rng_;
  std::unordered_map<RouterId, Receiver> endpoints_;
  std::unordered_map<std::uint64_t, ChannelState> channels_;
  std::uint64_t total_messages_ = 0;
  std::uint64_t total_bytes_ = 0;
};

}  // namespace abrr::net
