// Point-to-point control-plane channel between two routers.
//
// Models the BGP TCP session transport: reliable, in-order delivery with
// a configurable one-way latency. In-order delivery is enforced even
// under jitter by never scheduling a message before the previously sent
// one on the same directed channel.
#pragma once

#include <cstdint>

#include "sim/time.h"

namespace abrr::net {

/// Per-directed-channel transport state.
struct ChannelState {
  sim::Time base_latency = sim::msec(1);
  /// Maximum extra random latency added per message (jitter).
  sim::Time jitter = 0;
  /// Departure time of the last message (for FIFO ordering).
  sim::Time last_delivery = 0;
  /// Messages and bytes carried (for the bandwidth accounting of §4.2).
  std::uint64_t messages = 0;
  std::uint64_t bytes = 0;
};

}  // namespace abrr::net
