// Point-to-point control-plane channel between two routers.
//
// Models the BGP TCP session transport: reliable, in-order delivery with
// a configurable one-way latency. In-order delivery is enforced even
// under jitter by never scheduling a message before the previously sent
// one on the same directed channel, and is additionally asserted at
// delivery time by a per-channel sequence check (the fault-injection
// hooks must not be able to reorder the stream).
//
// Fault model (driven by fault::FaultInjector through Network):
//  - link down: messages are buffered, not lost — TCP keeps
//    retransmitting across a short outage. The buffer is flushed in
//    order when the link restores, and discarded when either endpoint
//    tears the session down (the connection reset loses the window).
//  - impairment window: per-message extra delay and/or loss probability.
//    Loss is decided at send time, before a sequence number is
//    assigned, so delivered messages still form a gap-free FIFO stream.
#pragma once

#include <cstdint>
#include <vector>

#include "bgp/update.h"
#include "sim/time.h"

namespace abrr::net {

/// Per-directed-channel transport state.
struct ChannelState {
  sim::Time base_latency = sim::msec(1);
  /// Maximum extra random latency added per message (jitter).
  sim::Time jitter = 0;
  /// Departure time of the last message (for FIFO ordering).
  sim::Time last_delivery = 0;
  /// Messages and bytes carried (for the bandwidth accounting of §4.2).
  /// `bytes` is the legacy closed-form model estimate; `wire_bytes` is
  /// the exact RFC 4271 encoded length (wire::WireSizer).
  std::uint64_t messages = 0;
  std::uint64_t bytes = 0;
  std::uint64_t wire_bytes = 0;

  // --- fault state ----------------------------------------------------
  /// Link up? While down, sends are buffered (TCP retransmission).
  bool up = true;
  /// Impairment window: per-message latency surcharge.
  sim::Time extra_delay = 0;
  /// Impairment window: per-message loss probability (drop at send).
  double loss_prob = 0;
  /// Messages dropped by faults (loss bursts, dead endpoints, resets).
  std::uint64_t dropped = 0;
  /// Messages awaiting a link restore, in send order.
  std::vector<bgp::UpdateMessage> buffered;

  // --- in-order delivery invariant ------------------------------------
  /// Next sequence number to assign when a delivery is scheduled.
  std::uint64_t next_seq = 0;
  /// Sequence number the receiver expects; a delivered message whose
  /// sequence differs means the fault hooks reordered the stream, which
  /// is a bug (Network::send throws logic_error).
  std::uint64_t expect_seq = 0;
};

}  // namespace abrr::net
