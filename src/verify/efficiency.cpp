#include "verify/efficiency.h"

#include <algorithm>

namespace abrr::verify {

EfficiencyReport audit_efficiency(harness::Testbed& testbed,
                                  const trace::Workload& edge,
                                  const bgp::DecisionConfig& decision) {
  EfficiencyReport report;
  auto& spf = testbed.spf();

  for (const trace::PrefixEntry& entry : edge.table()) {
    // Ground truth: the AS-wide best AS-level routes and their egresses.
    const auto as_best = edge.best_as_level_for(
        entry, /*peer_ases=*/{}, /*include_customers=*/true, decision);
    if (as_best.empty()) continue;
    std::vector<bgp::RouterId> egresses;
    for (const auto& r : as_best) egresses.push_back(r.egress());

    for (const bgp::RouterId client : testbed.client_ids()) {
      const bgp::Route* best =
          testbed.speaker(client).loc_rib().best(entry.prefix);
      if (best == nullptr) continue;
      ++report.checked;

      const auto dist = [&](bgp::RouterId egress) {
        return client == egress
                   ? igp::Metric{0}
                   : spf.distance(client, egress);
      };
      igp::Metric optimal = bgp::kIgpInfinity;
      for (const bgp::RouterId e : egresses) {
        optimal = std::min(optimal, dist(e));
      }
      const bgp::RouterId chosen = best->egress();
      if (std::find(egresses.begin(), egresses.end(), chosen) ==
          egresses.end()) {
        ++report.off_as_level_set;
        continue;
      }
      const igp::Metric actual = dist(chosen);
      if (actual > optimal) {
        ++report.inefficient;
        const double extra = static_cast<double>(actual - optimal);
        report.total_extra_metric += extra;
        report.max_extra_metric = std::max(report.max_extra_metric, extra);
      }
    }
  }
  return report;
}

}  // namespace abrr::verify
