// Full-mesh equivalence check (§2.2): in steady state, every ABRR client
// must have selected the same egress it would have selected under
// full-mesh iBGP.
#pragma once

#include <span>
#include <vector>

#include "harness/testbed.h"

namespace abrr::verify {

/// One (router, prefix) pair whose chosen egress differs.
struct Divergence {
  bgp::RouterId router = bgp::kNoRouter;
  bgp::Ipv4Prefix prefix;
  bgp::RouterId egress_a = bgp::kNoRouter;  // kNoRouter = no route
  bgp::RouterId egress_b = bgp::kNoRouter;
};

struct EquivalenceReport {
  std::size_t compared = 0;
  /// Total diverging pairs (examples below are capped at max_report).
  std::size_t divergence_count = 0;
  std::vector<Divergence> divergences;

  bool equivalent() const { return divergence_count == 0; }
};

/// Compares the steady-state Loc-RIBs of two testbeds over the clients
/// they share. `max_report` caps the recorded divergences (counting
/// continues).
EquivalenceReport compare_loc_ribs(harness::Testbed& a, harness::Testbed& b,
                                   std::span<const bgp::Ipv4Prefix> prefixes,
                                   std::size_t max_report = 16);

}  // namespace abrr::verify
