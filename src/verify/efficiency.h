// Path-efficiency audit (§2.3.3).
//
// For every (client, prefix), compare the IGP distance to the egress the
// client chose against the closest egress among the AS's best AS-level
// routes (hot-potato optimum). Full-mesh and ABRR achieve zero extra
// metric; TBRR picks up inefficiency whenever a TRR's vantage point
// hides the closer exit.
#pragma once

#include <span>

#include "harness/testbed.h"
#include "trace/workload.h"

namespace abrr::verify {

struct EfficiencyReport {
  std::size_t checked = 0;           // (client, prefix) pairs with a route
  std::size_t inefficient = 0;       // chose a farther-than-optimal egress
  std::size_t off_as_level_set = 0;  // chose an egress not AS-level best
  double total_extra_metric = 0;     // sum of (chosen - optimal) distances
  double max_extra_metric = 0;

  double avg_extra() const {
    return checked ? total_extra_metric / static_cast<double>(checked) : 0;
  }
  bool efficient() const {
    return inefficient == 0 && off_as_level_set == 0;
  }
};

/// Audits the testbed's steady state against ground truth: `edge` is the
/// regenerator's current view of what every border router hears.
EfficiencyReport audit_efficiency(harness::Testbed& testbed,
                                  const trace::Workload& edge,
                                  const bgp::DecisionConfig& decision = {});

}  // namespace abrr::verify
