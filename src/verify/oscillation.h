// Oscillation detection (§2.3.1).
//
// Attaches to speakers' best-change hooks and counts per-(router, prefix)
// best-route flips. With no external input arriving, a converging system
// flips each pair only a handful of times; MED-based or topology-based
// oscillations flip indefinitely (bounded in a run only by the event cap).
#pragma once

#include <cstdint>
#include <unordered_map>

#include "ibgp/speaker.h"

namespace abrr::verify {

class OscillationMonitor {
 public:
  /// `flip_threshold`: flips of one (router, prefix) beyond which the
  /// system is declared oscillating.
  explicit OscillationMonitor(std::size_t flip_threshold = 20)
      : threshold_(flip_threshold) {}

  /// Installs the hook on a speaker. One monitor serves many speakers.
  void attach(ibgp::Speaker& speaker);

  /// Forgets all recorded flips (e.g. after the initial convergence,
  /// before the phase under test).
  void reset() { flips_.clear(); }

  std::size_t max_flips() const;
  std::size_t total_flips() const;
  std::size_t flips(bgp::RouterId router, const bgp::Ipv4Prefix& p) const;
  bool oscillating() const { return max_flips() > threshold_; }

 private:
  struct Key {
    bgp::RouterId router;
    bgp::Ipv4Prefix prefix;
    bool operator==(const Key&) const = default;
  };
  struct KeyHash {
    std::size_t operator()(const Key& k) const {
      return std::hash<bgp::Ipv4Prefix>{}(k.prefix) * 1000003u ^ k.router;
    }
  };

  std::size_t threshold_;
  std::unordered_map<Key, std::size_t, KeyHash> flips_;
};

}  // namespace abrr::verify
