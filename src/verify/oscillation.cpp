#include "verify/oscillation.h"

#include <algorithm>

namespace abrr::verify {

void OscillationMonitor::attach(ibgp::Speaker& speaker) {
  const bgp::RouterId id = speaker.id();
  speaker.set_best_change_hook(
      [this, id](const bgp::Ipv4Prefix& prefix, const bgp::Route*) {
        ++flips_[Key{id, prefix}];
      });
}

std::size_t OscillationMonitor::max_flips() const {
  std::size_t best = 0;
  for (const auto& [key, count] : flips_) best = std::max(best, count);
  return best;
}

std::size_t OscillationMonitor::total_flips() const {
  std::size_t sum = 0;
  for (const auto& [key, count] : flips_) sum += count;
  return sum;
}

std::size_t OscillationMonitor::flips(bgp::RouterId router,
                                      const bgp::Ipv4Prefix& p) const {
  const auto it = flips_.find(Key{router, p});
  return it == flips_.end() ? 0 : it->second;
}

}  // namespace abrr::verify
