#include "verify/equivalence.h"

#include <algorithm>

namespace abrr::verify {

EquivalenceReport compare_loc_ribs(harness::Testbed& a, harness::Testbed& b,
                                   std::span<const bgp::Ipv4Prefix> prefixes,
                                   std::size_t max_report) {
  EquivalenceReport report;
  std::size_t diverged = 0;
  for (const bgp::RouterId client : a.client_ids()) {
    if (!b.has_speaker(client)) continue;
    auto& sa = a.speaker(client);
    auto& sb = b.speaker(client);
    for (const bgp::Ipv4Prefix& prefix : prefixes) {
      const bgp::Route* ra = sa.loc_rib().best(prefix);
      const bgp::Route* rb = sb.loc_rib().best(prefix);
      ++report.compared;
      const bgp::RouterId ea = ra ? ra->egress() : bgp::kNoRouter;
      const bgp::RouterId eb = rb ? rb->egress() : bgp::kNoRouter;
      if (ea == eb) continue;
      ++diverged;
      if (report.divergences.size() < max_report) {
        report.divergences.push_back(Divergence{client, prefix, ea, eb});
      }
    }
  }
  report.divergence_count = diverged;
  return report;
}

}  // namespace abrr::verify
