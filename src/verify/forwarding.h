// Data-plane forwarding verification (§2.3.2).
//
// Packets are forwarded hop by hop: every BGP router on the path makes
// its own egress decision from its Loc-RIB, then hands the packet to the
// IGP next hop toward that egress (PoP hubs are transparent forwarding
// devices). Inconsistent egress choices between routers deflect packets
// and can loop them — the anomaly TBRR permits and ABRR provably avoids.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "harness/testbed.h"

namespace abrr::verify {

using bgp::Ipv4Prefix;
using bgp::RouterId;

/// Outcome of forwarding one packet.
struct WalkResult {
  enum class Outcome {
    kDelivered,    // reached the egress border router
    kLoop,         // revisited a BGP router: forwarding loop
    kNoRoute,      // a router on the path had no route
    kUnreachable,  // IGP could not reach the chosen egress
  };
  Outcome outcome = Outcome::kNoRoute;
  /// BGP routers traversed, in order (first = source).
  std::vector<RouterId> path;
};

/// Summary over many (source, prefix) pairs.
struct ForwardingAudit {
  std::size_t checked = 0;
  std::size_t delivered = 0;
  std::size_t loops = 0;
  std::size_t no_route = 0;
  std::size_t unreachable = 0;
  /// Example loop (source, prefix index into the audited span).
  std::vector<std::pair<RouterId, std::size_t>> loop_examples;

  bool clean() const { return loops == 0 && unreachable == 0; }
};

class ForwardingChecker {
 public:
  explicit ForwardingChecker(harness::Testbed& testbed)
      : testbed_(&testbed) {}

  /// Forwards one packet from `from` toward `prefix`.
  WalkResult walk(RouterId from, const Ipv4Prefix& prefix);

  /// Walks every (data-plane client, prefix) pair.
  ForwardingAudit audit(std::span<const Ipv4Prefix> prefixes,
                        std::size_t max_loop_examples = 8);

 private:
  /// Next BGP router on the IGP shortest path toward `egress`,
  /// skipping transparent hub nodes.
  RouterId next_bgp_hop(RouterId at, RouterId egress);

  harness::Testbed* testbed_;
};

}  // namespace abrr::verify
