#include "verify/forwarding.h"

#include <unordered_set>

namespace abrr::verify {

RouterId ForwardingChecker::next_bgp_hop(RouterId at, RouterId egress) {
  auto& spf = testbed_->spf();
  RouterId hop = at;
  // Cross at most the whole graph; hubs are transparent.
  for (std::size_t guard = 0;
       guard <= testbed_->topology().graph.node_count(); ++guard) {
    hop = spf.next_hop(hop, egress);
    if (hop == bgp::kNoRouter) return bgp::kNoRouter;
    if (hop == egress || testbed_->has_speaker(hop)) return hop;
  }
  return bgp::kNoRouter;
}

WalkResult ForwardingChecker::walk(RouterId from, const Ipv4Prefix& prefix) {
  WalkResult result;
  std::unordered_set<RouterId> visited;
  RouterId at = from;

  for (;;) {
    result.path.push_back(at);
    if (!visited.insert(at).second) {
      result.outcome = WalkResult::Outcome::kLoop;
      return result;
    }
    if (!testbed_->has_speaker(at)) {
      result.outcome = WalkResult::Outcome::kUnreachable;
      return result;
    }
    const bgp::Route* best = testbed_->speaker(at).loc_rib().best(prefix);
    if (best == nullptr) {
      result.outcome = WalkResult::Outcome::kNoRoute;
      return result;
    }
    const RouterId egress = best->egress();
    if (egress == at) {
      result.outcome = WalkResult::Outcome::kDelivered;
      return result;
    }
    const RouterId next = next_bgp_hop(at, egress);
    if (next == bgp::kNoRouter) {
      result.outcome = WalkResult::Outcome::kUnreachable;
      return result;
    }
    at = next;
  }
}

ForwardingAudit ForwardingChecker::audit(std::span<const Ipv4Prefix> prefixes,
                                         std::size_t max_loop_examples) {
  ForwardingAudit audit;
  for (std::size_t pi = 0; pi < prefixes.size(); ++pi) {
    for (const RouterId from : testbed_->client_ids()) {
      const WalkResult r = walk(from, prefixes[pi]);
      ++audit.checked;
      switch (r.outcome) {
        case WalkResult::Outcome::kDelivered:
          ++audit.delivered;
          break;
        case WalkResult::Outcome::kLoop:
          ++audit.loops;
          if (audit.loop_examples.size() < max_loop_examples) {
            audit.loop_examples.emplace_back(from, pi);
          }
          break;
        case WalkResult::Outcome::kNoRoute:
          ++audit.no_route;
          break;
        case WalkResult::Outcome::kUnreachable:
          ++audit.unreachable;
          break;
      }
    }
  }
  return audit;
}

}  // namespace abrr::verify
