#include "sim/random.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace abrr::sim {
namespace {

constexpr std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

// splitmix64: used only to expand the seed into the xoshiro state.
std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t s = seed;
  for (auto& word : state_) word = splitmix64(s);
}

Rng::result_type Rng::operator()() {
  confined_.check();
  const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = rotl(state_[3], 45);
  return result;
}

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) {
  if (lo > hi) throw std::invalid_argument{"uniform_int: lo > hi"};
  const std::uint64_t span = static_cast<std::uint64_t>(hi - lo) + 1;
  if (span == 0) return static_cast<std::int64_t>((*this)());  // full range
  // Rejection sampling to avoid modulo bias.
  const std::uint64_t limit = max() - max() % span;
  std::uint64_t v;
  do {
    v = (*this)();
  } while (v >= limit);
  return lo + static_cast<std::int64_t>(v % span);
}

double Rng::uniform01() {
  // 53 high bits -> double in [0, 1).
  return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
}

double Rng::uniform_real(double lo, double hi) {
  return lo + (hi - lo) * uniform01();
}

bool Rng::chance(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return uniform01() < p;
}

double Rng::exponential(double mean) {
  if (mean <= 0.0) throw std::invalid_argument{"exponential: mean <= 0"};
  double u;
  do {
    u = uniform01();
  } while (u <= 0.0);
  return -mean * std::log(u);
}

void Rng::rebuild_zipf_cdf(std::size_t n, double s) {
  zipf_cdf_.resize(n);
  double acc = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    acc += 1.0 / std::pow(static_cast<double>(i + 1), s);
    zipf_cdf_[i] = acc;
  }
  for (auto& v : zipf_cdf_) v /= acc;
  zipf_n_ = n;
  zipf_s_ = s;
}

std::size_t Rng::zipf(std::size_t n, double s) {
  if (n == 0) throw std::invalid_argument{"zipf: n == 0"};
  if (n != zipf_n_ || s != zipf_s_) rebuild_zipf_cdf(n, s);
  const double u = uniform01();
  const auto it = std::lower_bound(zipf_cdf_.begin(), zipf_cdf_.end(), u);
  return static_cast<std::size_t>(it - zipf_cdf_.begin());
}

std::size_t Rng::index(std::size_t n) {
  if (n == 0) throw std::invalid_argument{"index: n == 0"};
  return static_cast<std::size_t>(
      uniform_int(0, static_cast<std::int64_t>(n) - 1));
}

std::vector<std::size_t> Rng::sample_indices(std::size_t n, std::size_t k) {
  if (k > n) throw std::invalid_argument{"sample_indices: k > n"};
  // Floyd's algorithm: O(k) expected insertions.
  std::vector<std::size_t> picked;
  picked.reserve(k);
  for (std::size_t j = n - k; j < n; ++j) {
    const std::size_t t = index(j + 1);
    if (std::find(picked.begin(), picked.end(), t) == picked.end()) {
      picked.push_back(t);
    } else {
      picked.push_back(j);
    }
  }
  return picked;
}

Rng Rng::split() { return Rng{(*this)()}; }

}  // namespace abrr::sim
