#include "sim/scheduler.h"

#include <stdexcept>
#include <utility>

namespace abrr::sim {

EventId Scheduler::schedule_at(Time at, std::function<void()> fn) {
  confined_.check();
  if (!fn) throw std::invalid_argument{"schedule_at: empty callback"};
  if (at < now_) at = now_;
  const EventId id = next_id_++;
  queue_.push(Entry{at, next_seq_++, id, std::move(fn)});
  pending_.insert(id);
  return id;
}

EventId Scheduler::schedule_after(Time delay, std::function<void()> fn) {
  if (delay < 0) throw std::invalid_argument{"schedule_after: negative delay"};
  return schedule_at(now_ + delay, std::move(fn));
}

EventId Scheduler::schedule_weak_at(Time at, std::function<void()> fn) {
  const EventId id = schedule_at(at, std::move(fn));
  weak_pending_.insert(id);
  return id;
}

EventId Scheduler::schedule_weak_after(Time delay, std::function<void()> fn) {
  if (delay < 0) {
    throw std::invalid_argument{"schedule_weak_after: negative delay"};
  }
  return schedule_weak_at(now_ + delay, std::move(fn));
}

void Scheduler::cancel(EventId id) {
  confined_.check();
  // Only a live pending event grows the tombstone set; cancelling a
  // fired, unknown or already-cancelled id must not (such inserts would
  // accumulate forever and break has_pending()).
  if (pending_.erase(id) != 0) {
    weak_pending_.erase(id);
    cancelled_.insert(id);
  }
}

void Scheduler::skip_cancelled() {
  while (!queue_.empty() && cancelled_.count(queue_.top().id) != 0) {
    cancelled_.erase(queue_.top().id);
    queue_.pop();
  }
}

bool Scheduler::step() {
  confined_.check();
  skip_cancelled();
  if (queue_.empty()) return false;
  // Move the entry out before popping so the callback can schedule/cancel.
  Entry entry = std::move(const_cast<Entry&>(queue_.top()));
  queue_.pop();
  pending_.erase(entry.id);
  weak_pending_.erase(entry.id);
  now_ = entry.at;
  ++executed_;
  entry.fn();
  return true;
}

std::size_t Scheduler::run_until(Time deadline) {
  std::size_t n = 0;
  for (;;) {
    skip_cancelled();
    if (queue_.empty() || queue_.top().at > deadline) break;
    step();
    ++n;
  }
  if (now_ < deadline) now_ = deadline;
  return n;
}

bool Scheduler::run_to_quiescence(std::size_t max_events) {
  // Quiescence means "no strong work left": weak events (sampler ticks)
  // execute while strong events exist but are abandoned, unfired, once
  // only they remain — otherwise a recurring sampler would keep the
  // queue alive forever.
  for (std::size_t n = 0; n < max_events; ++n) {
    if (!has_pending()) return true;
    step();
  }
  return !has_pending();
}

}  // namespace abrr::sim
