#include "sim/scheduler.h"

#include <stdexcept>
#include <utility>

namespace abrr::sim {

std::uint32_t Scheduler::acquire_slot() {
  if (free_head_ == kNilSlot) {
    // Grow by one slab; existing nodes never move (slot indices and the
    // heap items referring to them stay valid).
    const std::uint32_t base =
        static_cast<std::uint32_t>(slabs_.size()) * kSlabSize;
    slabs_.push_back(std::make_unique<Node[]>(kSlabSize));
    // Live events are bounded by pool capacity, so sizing the heap with
    // the pool keeps pushes free of vector growth on the hot path.
    queue_.reserve(slabs_.size() * kSlabSize);
    for (std::uint32_t i = kSlabSize; i-- > 0;) {
      Node& n = slabs_.back()[i];
      n.next_free = free_head_;
      free_head_ = base + i;
    }
  }
  const std::uint32_t slot = free_head_;
  free_head_ = node(slot).next_free;
  return slot;
}

void Scheduler::release_slot(std::uint32_t slot) {
  Node& n = node(slot);
  n.scheduled = false;
  ++n.gen;
  if (n.gen == 0) n.gen = 1;  // 0 would make slot 0's id collide with "invalid"
  n.next_free = free_head_;
  free_head_ = slot;
}

EventId Scheduler::schedule_impl(Time at, Callback&& fn, bool weak) {
  confined_.check();
  if (!fn) throw std::invalid_argument{"schedule_at: empty callback"};
  if (at < now_) at = now_;
  const std::uint32_t slot = acquire_slot();
  Node& n = node(slot);
  n.fn = std::move(fn);
  n.at = at;
  n.seq = next_seq_++;
  n.scheduled = true;
  n.weak = weak;
  if (weak) {
    ++weak_pending_;
  } else {
    ++strong_pending_;
  }
  queue_.push(HeapItem{n.at, n.seq, slot});
  return (static_cast<EventId>(slot) << 32) | n.gen;
}

EventId Scheduler::schedule_at(Time at, Callback fn) {
  return schedule_impl(at, std::move(fn), /*weak=*/false);
}

EventId Scheduler::schedule_after(Time delay, Callback fn) {
  if (delay < 0) throw std::invalid_argument{"schedule_after: negative delay"};
  return schedule_impl(now_ + delay, std::move(fn), /*weak=*/false);
}

EventId Scheduler::schedule_weak_at(Time at, Callback fn) {
  return schedule_impl(at, std::move(fn), /*weak=*/true);
}

EventId Scheduler::schedule_weak_after(Time delay, Callback fn) {
  if (delay < 0) {
    throw std::invalid_argument{"schedule_weak_after: negative delay"};
  }
  return schedule_impl(now_ + delay, std::move(fn), /*weak=*/true);
}

void Scheduler::cancel(EventId id) {
  confined_.check();
  const std::uint32_t slot = static_cast<std::uint32_t>(id >> 32);
  const std::uint32_t gen = static_cast<std::uint32_t>(id);
  if (gen == 0 || slot >= pool_capacity()) return;
  Node& n = node(slot);
  // A fired, cancelled or recycled slot carries a newer generation, so
  // stale ids fall out here — no tombstone set to maintain.
  if (!n.scheduled || n.gen != gen) return;
  if (n.weak) {
    --weak_pending_;
  } else {
    --strong_pending_;
  }
  n.fn = Callback{};  // drop captured state eagerly
  release_slot(slot);  // the heap item is discarded lazily via drop_stale()
}

void Scheduler::drop_stale() {
  while (!queue_.empty() && !is_live(queue_.top())) queue_.pop();
}

bool Scheduler::step() {
  confined_.check();
  drop_stale();
  if (queue_.empty()) return false;
  const HeapItem item = queue_.top();
  queue_.pop();
  Node& n = node(item.slot);
  // Move the callback out and recycle the slot *before* invoking, so the
  // callback is free to schedule into (or cancel within) the pool.
  Callback fn = std::move(n.fn);
  if (n.weak) {
    --weak_pending_;
  } else {
    --strong_pending_;
  }
  release_slot(item.slot);
  now_ = item.at;
  ++executed_;
  fn();
  return true;
}

std::size_t Scheduler::run_until(Time deadline) {
  std::size_t n = 0;
  for (;;) {
    drop_stale();
    if (queue_.empty() || queue_.top().at > deadline) break;
    step();
    ++n;
  }
  if (now_ < deadline) now_ = deadline;
  return n;
}

bool Scheduler::run_to_quiescence(std::size_t max_events) {
  // Quiescence means "no strong work left": weak events (sampler ticks)
  // execute while strong events exist but are abandoned, unfired, once
  // only they remain — otherwise a recurring sampler would keep the
  // queue alive forever.
  for (std::size_t n = 0; n < max_events; ++n) {
    if (!has_pending()) return true;
    step();
  }
  return !has_pending();
}

}  // namespace abrr::sim
