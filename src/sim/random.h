// Deterministic pseudo-random source for simulations.
//
// Wraps xoshiro256** (public-domain algorithm by Blackman & Vigna) so that
// every experiment is reproducible from a single 64-bit seed regardless of
// the platform's std::mt19937 quirks.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "sim/thread_confined.h"

namespace abrr::sim {

/// Deterministic 64-bit PRNG (xoshiro256**) with distribution helpers.
///
/// Satisfies UniformRandomBitGenerator, so it can also be handed to
/// <random> distributions and std::shuffle.
class Rng {
 public:
  using result_type = std::uint64_t;

  /// Seeds the generator; identical seeds yield identical streams.
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL);

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~static_cast<result_type>(0); }

  /// Next raw 64-bit value.
  result_type operator()();

  /// Uniform integer in [lo, hi] (inclusive). Requires lo <= hi.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);

  /// Uniform real in [0, 1).
  double uniform01();

  /// Uniform real in [lo, hi).
  double uniform_real(double lo, double hi);

  /// Bernoulli trial with success probability p (clamped to [0,1]).
  bool chance(double p);

  /// Exponentially distributed value with the given mean (> 0).
  double exponential(double mean);

  /// Zipf-distributed rank in [0, n) with exponent s (s >= 0).
  /// Rank 0 is the most popular element.
  std::size_t zipf(std::size_t n, double s);

  /// Picks a uniformly random element index in [0, n). Requires n > 0.
  std::size_t index(std::size_t n);

  /// Fisher-Yates shuffle of a span, in place.
  template <typename T>
  void shuffle(std::span<T> items) {
    for (std::size_t i = items.size(); i > 1; --i) {
      std::swap(items[i - 1], items[index(i)]);
    }
  }

  /// Samples k distinct indices from [0, n) without replacement.
  std::vector<std::size_t> sample_indices(std::size_t n, std::size_t k);

  /// Derives an independent generator (for decorrelated sub-streams).
  Rng split();

 private:
  std::uint64_t state_[4];
  /// Whichever thread first draws from the generator owns it (debug
  /// assert); copies/splits re-capture on their own first draw.
  ThreadConfined confined_;

  // Zipf normalisation cache: valid for (zipf_n_, zipf_s_).
  std::size_t zipf_n_ = 0;
  double zipf_s_ = -1.0;
  std::vector<double> zipf_cdf_;

  void rebuild_zipf_cdf(std::size_t n, double s);
};

}  // namespace abrr::sim
