// Trial-owned bump allocator.
//
// Every hot-path allocation a trial makes (interned attribute blocks,
// pooled scheduler slabs) is supposed to come from memory the trial owns
// exclusively, so parallel trials never meet on the global heap — no
// allocator locks, no freed-block reuse across threads, no atomic
// refcount traffic. An Arena hands out pointers from large chunks and
// frees nothing individually: reset() runs registered finalizers (for
// non-trivially-destructible objects) and rewinds, keeping the chunks
// for the next trial on the same worker thread.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <new>
#include <type_traits>
#include <utility>
#include <vector>

namespace abrr::sim {

/// Chunked bump allocator with optional per-object finalizers.
///
/// Not synchronized: an Arena is owned by exactly one trial (and thus one
/// thread) at a time, the same confinement contract as the Scheduler.
class Arena {
 public:
  static constexpr std::size_t kDefaultChunkBytes = 64 * 1024;

  explicit Arena(std::size_t chunk_bytes = kDefaultChunkBytes)
      : chunk_bytes_(chunk_bytes < 64 ? 64 : chunk_bytes) {}

  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;
  Arena(Arena&&) = default;
  Arena& operator=(Arena&&) = default;

  ~Arena() { reset(); }

  /// Raw storage of `size` bytes at `align`. Never returns nullptr
  /// (throws std::bad_alloc on exhaustion like operator new).
  void* allocate(std::size_t size, std::size_t align) {
    ++allocations_;
    if (current_ < chunks_.size()) {
      if (void* p = chunks_[current_].bump(size, align)) {
        bytes_used_ += size;
        return p;
      }
    }
    return allocate_slow(size, align);
  }

  /// Constructs a `T` in arena storage. Non-trivially-destructible types
  /// get a finalizer that reset() runs in reverse construction order.
  template <typename T, typename... Args>
  T* create(Args&&... args) {
    void* raw = allocate(sizeof(T), alignof(T));
    T* obj = ::new (raw) T(std::forward<Args>(args)...);
    if constexpr (!std::is_trivially_destructible_v<T>) {
      finalizers_.push_back(Finalizer{
          [](void* p) { static_cast<T*>(p)->~T(); }, obj});
    }
    return obj;
  }

  /// Destroys every object created since the last reset and rewinds all
  /// chunks. The chunk memory itself is retained for reuse — the whole
  /// point: trial N+1 on this worker re-fills the pages trial N warmed.
  void reset() {
    for (auto it = finalizers_.rbegin(); it != finalizers_.rend(); ++it) {
      it->fn(it->obj);
    }
    finalizers_.clear();
    for (Chunk& c : chunks_) c.used = 0;
    current_ = 0;
    bytes_used_ = 0;
    ++resets_;
  }

  /// Pre-grows capacity so the first `bytes` of allocation never hit the
  /// system allocator mid-trial. Idempotent; existing chunks count.
  void reserve(std::size_t bytes) {
    std::size_t have = bytes_reserved();
    while (have < bytes) {
      const std::size_t want = bytes - have;
      add_chunk(want > chunk_bytes_ ? want : chunk_bytes_);
      have = bytes_reserved();
    }
  }

  // -- Introspection (bench/test telemetry) --------------------------------
  std::size_t bytes_used() const { return bytes_used_; }
  std::size_t bytes_reserved() const {
    std::size_t n = 0;
    for (const Chunk& c : chunks_) n += c.size;
    return n;
  }
  std::uint64_t allocations() const { return allocations_; }
  std::size_t chunk_count() const { return chunks_.size(); }
  std::uint64_t resets() const { return resets_; }

 private:
  struct Chunk {
    std::unique_ptr<std::byte[]> mem;
    std::size_t size = 0;
    std::size_t used = 0;

    void* bump(std::size_t n, std::size_t align) {
      const std::uintptr_t base = reinterpret_cast<std::uintptr_t>(mem.get());
      const std::size_t aligned =
          ((base + used + align - 1) & ~(static_cast<std::uintptr_t>(align) - 1)) -
          base;
      if (aligned + n > size) return nullptr;
      used = aligned + n;
      return mem.get() + aligned;
    }
  };

  struct Finalizer {
    void (*fn)(void*);
    void* obj;
  };

  void add_chunk(std::size_t size) {
    chunks_.push_back(Chunk{std::make_unique<std::byte[]>(size), size, 0});
  }

  void* allocate_slow(std::size_t size, std::size_t align) {
    // Advance through retained (already-rewound) chunks before growing.
    while (current_ + 1 < chunks_.size()) {
      ++current_;
      if (void* p = chunks_[current_].bump(size, align)) {
        bytes_used_ += size;
        return p;
      }
    }
    // Oversized requests get a dedicated chunk; normal ones a fresh slab.
    add_chunk(size + align > chunk_bytes_ ? size + align : chunk_bytes_);
    current_ = chunks_.size() - 1;
    void* p = chunks_[current_].bump(size, align);
    if (p == nullptr) throw std::bad_alloc{};
    bytes_used_ += size;
    return p;
  }

  std::size_t chunk_bytes_;
  std::vector<Chunk> chunks_;
  std::size_t current_ = 0;
  std::size_t bytes_used_ = 0;
  std::uint64_t allocations_ = 0;
  std::uint64_t resets_ = 0;
  std::vector<Finalizer> finalizers_;
};

}  // namespace abrr::sim
