// Simulated-time primitives.
//
// All simulation timestamps are integral microseconds since the start of
// the run. An integral representation keeps event ordering exact and the
// scheduler deterministic across platforms.
#pragma once

#include <cstdint>

namespace abrr::sim {

/// Simulated time in microseconds since the start of the run.
using Time = std::int64_t;

/// One microsecond.
inline constexpr Time kMicrosecond = 1;
/// One millisecond.
inline constexpr Time kMillisecond = 1000 * kMicrosecond;
/// One second.
inline constexpr Time kSecond = 1000 * kMillisecond;
/// One minute.
inline constexpr Time kMinute = 60 * kSecond;
/// One hour.
inline constexpr Time kHour = 60 * kMinute;
/// One day.
inline constexpr Time kDay = 24 * kHour;

/// Build a duration from whole microseconds.
constexpr Time usec(std::int64_t n) { return n * kMicrosecond; }
/// Build a duration from whole milliseconds.
constexpr Time msec(std::int64_t n) { return n * kMillisecond; }
/// Build a duration from whole seconds.
constexpr Time sec(std::int64_t n) { return n * kSecond; }
/// Build a duration from fractional seconds (rounded toward zero).
constexpr Time sec_f(double s) { return static_cast<Time>(s * kSecond); }

/// Convert a duration to fractional seconds (for reporting only).
constexpr double to_seconds(Time t) {
  return static_cast<double>(t) / static_cast<double>(kSecond);
}

/// Convert a duration to fractional milliseconds (for reporting only).
constexpr double to_msec(Time t) {
  return static_cast<double>(t) / static_cast<double>(kMillisecond);
}

}  // namespace abrr::sim
