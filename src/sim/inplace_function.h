// Move-only callable with inline storage: the scheduler's event-pool
// currency.
//
// std::function heap-allocates every capture list larger than its small
// buffer (16 bytes on libstdc++) — one malloc/free round trip per
// delivered message on the scheduler hot path. InplaceFunction<N> stores
// captures up to N bytes inside the object itself, so a pooled event
// node carries its callback with zero heap traffic. Oversized callables
// still work (boxed on the heap) but the scheduler static_asserts its
// dominant capture fits inline (see net/network.cpp).
#pragma once

#include <cstddef>
#include <memory>
#include <new>
#include <type_traits>
#include <utility>

namespace abrr::sim {

/// Type-erased move-only `void()` callable with `Capacity` bytes of
/// inline storage. Unlike std::function it is move-only (no copy), which
/// is exactly what a scheduler slot needs and lets it hold move-only
/// captures (e.g. a moved-in UpdateMessage).
template <std::size_t Capacity>
class InplaceFunction {
 public:
  InplaceFunction() = default;

  template <typename F,
            typename D = std::decay_t<F>,
            typename = std::enable_if_t<
                !std::is_same_v<D, InplaceFunction> &&
                std::is_invocable_r_v<void, D&>>>
  InplaceFunction(F&& f) {  // NOLINT(google-explicit-constructor)
    // Match std::function: constructing from a null function pointer (or
    // an empty std::function) yields an empty callable, so the
    // scheduler's empty-callback check keeps firing.
    if constexpr (std::is_constructible_v<bool, const D&>) {
      if (!static_cast<bool>(f)) return;
    }
    if constexpr (fits_inline<D>()) {
      ::new (static_cast<void*>(buf_)) D(std::forward<F>(f));
      vt_ = &inline_vtable<D>;
    } else {
      ::new (static_cast<void*>(buf_)) D*(new D(std::forward<F>(f)));
      vt_ = &boxed_vtable<D>;
    }
  }

  InplaceFunction(InplaceFunction&& other) noexcept { take(other); }

  InplaceFunction& operator=(InplaceFunction&& other) noexcept {
    if (this != &other) {
      destroy();
      take(other);
    }
    return *this;
  }

  InplaceFunction(const InplaceFunction&) = delete;
  InplaceFunction& operator=(const InplaceFunction&) = delete;

  ~InplaceFunction() { destroy(); }

  explicit operator bool() const { return vt_ != nullptr; }

  void operator()() { vt_->invoke(buf_); }

  /// True when `F`'s captures live inside this object (no heap box).
  template <typename F>
  static constexpr bool fits_inline() {
    return sizeof(F) <= Capacity && alignof(F) <= alignof(std::max_align_t) &&
           std::is_nothrow_move_constructible_v<F>;
  }

 private:
  struct VTable {
    void (*invoke)(void* storage);
    // Move-constructs dst from src's storage and destroys src's payload.
    void (*relocate)(void* dst, void* src);
    void (*destroy)(void* storage);
  };

  template <typename F>
  static constexpr VTable inline_vtable = {
      [](void* s) { (*std::launder(reinterpret_cast<F*>(s)))(); },
      [](void* dst, void* src) {
        F* from = std::launder(reinterpret_cast<F*>(src));
        ::new (dst) F(std::move(*from));
        from->~F();
      },
      [](void* s) { std::launder(reinterpret_cast<F*>(s))->~F(); },
  };

  template <typename F>
  static constexpr VTable boxed_vtable = {
      [](void* s) { (**std::launder(reinterpret_cast<F**>(s)))(); },
      [](void* dst, void* src) {
        F** from = std::launder(reinterpret_cast<F**>(src));
        ::new (dst) F*(*from);
        *from = nullptr;
      },
      [](void* s) { delete *std::launder(reinterpret_cast<F**>(s)); },
  };

  void take(InplaceFunction& other) noexcept {
    vt_ = other.vt_;
    if (vt_ != nullptr) {
      vt_->relocate(buf_, other.buf_);
      other.vt_ = nullptr;
    }
  }

  void destroy() noexcept {
    if (vt_ != nullptr) {
      vt_->destroy(buf_);
      vt_ = nullptr;
    }
  }

  alignas(std::max_align_t) std::byte buf_[Capacity];
  const VTable* vt_ = nullptr;
};

}  // namespace abrr::sim
