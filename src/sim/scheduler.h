// Deterministic discrete-event scheduler.
//
// The whole testbed (routers, sessions, the route regenerator) runs on one
// of these. Determinism: ties in time are broken by insertion sequence
// number, so a given seed always produces the same run.
//
// Allocation model: event state lives in pooled slabs owned by the
// scheduler, recycled through a free list — steady-state scheduling does
// zero heap allocations. Callbacks are InplaceFunction<kCallbackCapacity>
// so typical capture lists (including the message-delivery lambda, the
// hottest one) are stored inline in the pooled node instead of behind a
// per-event std::function heap box.
#pragma once

#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

#include "sim/inplace_function.h"
#include "sim/thread_confined.h"
#include "sim/time.h"

namespace abrr::sim {

/// Handle for a scheduled event; lets the owner cancel it later.
///
/// Encodes (pool slot, slot generation); the generation is bumped every
/// time a slot is recycled, so a stale handle to a fired event can never
/// alias a later event reusing the same slot. Ids are opaque: only
/// cancel() interprets them. 0 is never a valid id.
using EventId = std::uint64_t;

/// Deterministic discrete-event loop.
///
/// Events are callbacks ordered by (time, insertion sequence). The loop is
/// single-threaded; callbacks may schedule further events. The loop is
/// also thread-CONFINED: whichever thread first schedules or steps owns
/// the scheduler for its whole life (asserted in debug builds) — the
/// contract the parallel experiment runner builds on.
class Scheduler {
 public:
  /// Inline capture budget for event callbacks. Sized for the largest
  /// hot-path capture list (the message-delivery lambda in
  /// net/network.cpp, which static_asserts it fits); anything bigger
  /// still works via a heap box, it just loses the pooling win.
  static constexpr std::size_t kCallbackCapacity = 112;
  using Callback = InplaceFunction<kCallbackCapacity>;

  Scheduler() = default;
  Scheduler(const Scheduler&) = delete;
  Scheduler& operator=(const Scheduler&) = delete;

  /// Current simulated time.
  Time now() const { return now_; }

  /// Schedules `fn` at absolute time `at` (clamped to now()).
  EventId schedule_at(Time at, Callback fn);

  /// Schedules `fn` after a relative delay (>= 0).
  EventId schedule_after(Time delay, Callback fn);

  /// Schedules a WEAK event at absolute time `at`. Weak events fire like
  /// any other while strong work is pending, but never keep the loop
  /// alive on their own: has_pending() ignores them and
  /// run_to_quiescence() stops (successfully) when only weak events
  /// remain. Intended for passive recurring work — samplers, probes —
  /// that must not change when a simulation is considered quiet.
  EventId schedule_weak_at(Time at, Callback fn);

  /// Weak counterpart of schedule_after().
  EventId schedule_weak_after(Time delay, Callback fn);

  /// Cancels a pending event. Cancelling an already-fired or unknown
  /// event is a harmless no-op: the generation encoded in the id no
  /// longer matches the recycled slot, so stale handles are rejected
  /// without any tombstone bookkeeping.
  void cancel(EventId id);

  /// True if any non-cancelled STRONG event is pending; weak events do
  /// not count.
  bool has_pending() const { return strong_pending_ != 0; }

  /// Non-cancelled pending events of both strengths.
  std::size_t pending_count() const { return strong_pending_ + weak_pending_; }

  /// Non-cancelled pending weak events.
  std::size_t weak_pending_count() const { return weak_pending_; }

  /// Runs a single event. Returns false if the queue was empty.
  bool step();

  /// Runs events until the queue drains or simulated time would pass
  /// `deadline`. Returns the number of events executed.
  std::size_t run_until(Time deadline);

  /// Runs until no strong event remains ("the network is quiet"), or
  /// until `max_events` executed. Returns true if it quiesced. Weak
  /// events fire along the way but are abandoned once only they remain.
  bool run_to_quiescence(std::size_t max_events = SIZE_MAX);

  /// Total events executed since construction.
  std::uint64_t events_executed() const { return executed_; }

  // -- Pool introspection (bench/test telemetry) ---------------------------

  /// Event nodes allocated across all slabs (high-water capacity).
  std::size_t pool_capacity() const { return slabs_.size() * kSlabSize; }

  /// Event nodes currently scheduled (live, not yet fired/cancelled).
  std::size_t pool_in_use() const { return strong_pending_ + weak_pending_; }

 private:
  // Nodes are pooled in fixed slabs so they never move (heap items refer
  // to them by slot index) and recycling is a free-list push/pop.
  static constexpr std::uint32_t kSlabSize = 256;
  static constexpr std::uint32_t kNilSlot = 0xffff'ffffu;

  struct Node {
    Callback fn;
    Time at = 0;
    std::uint64_t seq = 0;
    std::uint32_t gen = 1;       // bumped on every recycle; never 0
    std::uint32_t next_free = kNilSlot;
    bool scheduled = false;      // false: free or cancelled-awaiting-pop
    bool weak = false;
  };

  // The priority queue holds plain-old-data mirrors of (at, seq) plus the
  // slot; sift operations move 24 bytes instead of a full closure.
  struct HeapItem {
    Time at;
    std::uint64_t seq;
    std::uint32_t slot;

    bool before(const HeapItem& o) const {
      return at != o.at ? at < o.at : seq < o.seq;
    }
  };

  // 4-ary min-heap: half the levels of a binary heap and all four
  // children of a node share at most two cache lines, which measurably
  // cuts the pop cost that dominates scheduler throughput.
  class EventHeap {
   public:
    bool empty() const { return items_.empty(); }
    std::size_t size() const { return items_.size(); }
    const HeapItem& top() const { return items_.front(); }
    void reserve(std::size_t n) { items_.reserve(n); }

    void push(const HeapItem& item) {
      std::size_t i = items_.size();
      items_.push_back(item);
      while (i != 0) {
        const std::size_t parent = (i - 1) / 4;
        if (!items_[i].before(items_[parent])) break;
        std::swap(items_[i], items_[parent]);
        i = parent;
      }
    }

    void pop() {
      const HeapItem last = items_.back();
      items_.pop_back();
      if (items_.empty()) return;
      const std::size_t n = items_.size();
      std::size_t i = 0;
      for (;;) {
        const std::size_t first_child = 4 * i + 1;
        if (first_child >= n) break;
        const std::size_t end =
            first_child + 4 < n ? first_child + 4 : n;
        std::size_t best = first_child;
        for (std::size_t c = first_child + 1; c < end; ++c) {
          if (items_[c].before(items_[best])) best = c;
        }
        if (!items_[best].before(last)) break;
        items_[i] = items_[best];
        i = best;
      }
      items_[i] = last;
    }

   private:
    std::vector<HeapItem> items_;
  };

  EventId schedule_impl(Time at, Callback&& fn, bool weak);

  Node& node(std::uint32_t slot) {
    return slabs_[slot / kSlabSize][slot % kSlabSize];
  }

  std::uint32_t acquire_slot();
  // Bumps the generation and returns the slot to the free list. The
  // node's callback must already be destroyed/moved out.
  void release_slot(std::uint32_t slot);

  // True when the heap item still refers to the scheduling it was pushed
  // for (the global seq uniquely identifies one schedule_* call).
  bool is_live(const HeapItem& item) {
    const Node& n = node(item.slot);
    return n.scheduled && n.seq == item.seq;
  }

  // Pops heap entries whose event was cancelled (slot recycled or marked
  // unscheduled); their slots were already released by cancel().
  void drop_stale();

  Time now_ = 0;
  std::uint64_t next_seq_ = 0;
  std::uint64_t executed_ = 0;
  std::size_t strong_pending_ = 0;
  std::size_t weak_pending_ = 0;
  EventHeap queue_;
  std::vector<std::unique_ptr<Node[]>> slabs_;
  std::uint32_t free_head_ = kNilSlot;
  ThreadConfined confined_;
};

}  // namespace abrr::sim
