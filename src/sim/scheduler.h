// Deterministic discrete-event scheduler.
//
// The whole testbed (routers, sessions, the route regenerator) runs on one
// of these. Determinism: ties in time are broken by insertion sequence
// number, so a given seed always produces the same run.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_set>
#include <vector>

#include "sim/thread_confined.h"
#include "sim/time.h"

namespace abrr::sim {

/// Handle for a scheduled event; lets the owner cancel it later.
using EventId = std::uint64_t;

/// Deterministic discrete-event loop.
///
/// Events are callbacks ordered by (time, insertion sequence). The loop is
/// single-threaded; callbacks may schedule further events. The loop is
/// also thread-CONFINED: whichever thread first schedules or steps owns
/// the scheduler for its whole life (asserted in debug builds) — the
/// contract the parallel experiment runner builds on.
class Scheduler {
 public:
  Scheduler() = default;
  Scheduler(const Scheduler&) = delete;
  Scheduler& operator=(const Scheduler&) = delete;

  /// Current simulated time.
  Time now() const { return now_; }

  /// Schedules `fn` at absolute time `at` (clamped to now()).
  EventId schedule_at(Time at, std::function<void()> fn);

  /// Schedules `fn` after a relative delay (>= 0).
  EventId schedule_after(Time delay, std::function<void()> fn);

  /// Schedules a WEAK event at absolute time `at`. Weak events fire like
  /// any other while strong work is pending, but never keep the loop
  /// alive on their own: has_pending() ignores them and
  /// run_to_quiescence() stops (successfully) when only weak events
  /// remain. Intended for passive recurring work — samplers, probes —
  /// that must not change when a simulation is considered quiet.
  EventId schedule_weak_at(Time at, std::function<void()> fn);

  /// Weak counterpart of schedule_after().
  EventId schedule_weak_after(Time delay, std::function<void()> fn);

  /// Cancels a pending event. Cancelling an already-fired or unknown
  /// event is a harmless no-op (and, in particular, does not leak
  /// bookkeeping: only ids actually pending are remembered as
  /// tombstones until their queue entry surfaces).
  void cancel(EventId id);

  /// True if any non-cancelled STRONG event is pending; weak events do
  /// not count.
  bool has_pending() const { return pending_.size() > weak_pending_.size(); }

  /// Non-cancelled pending events of both strengths.
  std::size_t pending_count() const { return pending_.size(); }

  /// Non-cancelled pending weak events.
  std::size_t weak_pending_count() const { return weak_pending_.size(); }

  /// Runs a single event. Returns false if the queue was empty.
  bool step();

  /// Runs events until the queue drains or simulated time would pass
  /// `deadline`. Returns the number of events executed.
  std::size_t run_until(Time deadline);

  /// Runs until no strong event remains ("the network is quiet"), or
  /// until `max_events` executed. Returns true if it quiesced. Weak
  /// events fire along the way but are abandoned once only they remain.
  bool run_to_quiescence(std::size_t max_events = SIZE_MAX);

  /// Total events executed since construction.
  std::uint64_t events_executed() const { return executed_; }

 private:
  struct Entry {
    Time at;
    std::uint64_t seq;
    EventId id;
    std::function<void()> fn;
  };
  struct Later {
    bool operator()(const Entry& a, const Entry& b) const {
      if (a.at != b.at) return a.at > b.at;
      return a.seq > b.seq;
    }
  };

  // Pops cancelled entries off the top of the queue.
  void skip_cancelled();

  Time now_ = 0;
  std::uint64_t next_seq_ = 0;
  EventId next_id_ = 1;
  std::uint64_t executed_ = 0;
  std::priority_queue<Entry, std::vector<Entry>, Later> queue_;
  // Invariant: every queued entry's id is in exactly one of pending_
  // (live) or cancelled_ (tombstoned, awaiting lazy removal), so both
  // sets are bounded by the queue size. weak_pending_ is a subset of
  // pending_ marking events that don't count toward has_pending().
  std::unordered_set<EventId> pending_;
  std::unordered_set<EventId> weak_pending_;
  std::unordered_set<EventId> cancelled_;
  ThreadConfined confined_;
};

}  // namespace abrr::sim
