// Debug-build thread-confinement assertion.
//
// The simulator is single-threaded by design: a Scheduler and everything
// riding on it (Network, Speakers, Rng, MetricsRegistry) belong to
// exactly one thread for their whole life. The parallel experiment
// runner relies on that contract to run many independent trials
// concurrently without any locking. ThreadConfined makes the contract
// checkable: embed one, call check() at the top of mutating entry
// points, and a debug build aborts the moment an object is touched from
// a second thread. Release builds compile the check away entirely.
//
// Ownership is captured on FIRST check, not at construction, so an
// object may be built on one thread and handed to a worker before use
// (the runner constructs nothing ahead of time, but tests may).
// Copies and moves reset the capture: the new object belongs to
// whichever thread first touches it.
#pragma once

#ifndef NDEBUG
#include <cassert>
#include <thread>
#endif

namespace abrr::sim {

class ThreadConfined {
 public:
  ThreadConfined() = default;
#ifndef NDEBUG
  ThreadConfined(const ThreadConfined&) {}
  ThreadConfined& operator=(const ThreadConfined&) { return *this; }
  ThreadConfined(ThreadConfined&&) noexcept {}
  ThreadConfined& operator=(ThreadConfined&&) noexcept { return *this; }
#endif

  /// Asserts the caller is the owning thread (first caller wins).
  void check() const {
#ifndef NDEBUG
    const std::thread::id self = std::this_thread::get_id();
    if (owner_ == std::thread::id{}) {
      owner_ = self;
      return;
    }
    assert(owner_ == self &&
           "thread-confinement violation: object touched from a second "
           "thread (each trial must own its scheduler/network/rng)");
#endif
  }

  /// Releases ownership; the next check() re-captures. For the rare
  /// legitimate hand-off (build on thread A, run on thread B, A never
  /// touches the object again).
  void rebind() {
#ifndef NDEBUG
    owner_ = std::thread::id{};
#endif
  }

 private:
#ifndef NDEBUG
  mutable std::thread::id owner_{};
#endif
};

}  // namespace abrr::sim
