#include "fault/injector.h"

#include <algorithm>
#include <stdexcept>

namespace abrr::fault {
namespace {

/// Messages dropped on the two directions of a channel so far.
std::uint64_t channel_drops(net::Network& net, bgp::RouterId a,
                            bgp::RouterId b) {
  std::uint64_t drops = 0;
  if (const auto* ch = net.channel(a, b)) drops += ch->dropped;
  if (const auto* ch = net.channel(b, a)) drops += ch->dropped;
  return drops;
}

}  // namespace

FaultInjector::FaultInjector(harness::Testbed& testbed,
                             FaultSchedule schedule)
    : testbed_(&testbed),
      schedule_(std::move(schedule)),
      tracer_(testbed.tracer()) {}

sim::Time FaultInjector::last_event_end() const {
  sim::Time end = 0;
  for (const FaultEvent& ev : schedule_.events()) {
    end = std::max(end, ev.at + ev.duration);
  }
  return end;
}

void FaultInjector::arm() {
  if (armed_) throw std::logic_error{"FaultInjector: arm() called twice"};
  armed_ = true;
  auto& sched = testbed_->scheduler();
  for (const FaultEvent& ev : schedule_.events()) {
    sched.schedule_at(ev.at, [this, ev] { fire(ev); });
  }
}

void FaultInjector::fire(const FaultEvent& ev) {
  ++counters_.events_fired;
  if (tracer_ != nullptr) {
    tracer_->record(obs::TraceEventKind::kFaultInject, ev.a, ev.b,
                    static_cast<std::uint64_t>(ev.kind));
  }
  auto& sched = testbed_->scheduler();
  switch (ev.kind) {
    case FaultKind::kSessionReset: {
      ++counters_.session_resets;
      session_flap_down(ev.a, ev.b);
      sched.schedule_at(ev.at + ev.duration,
                        [this, ev] { session_flap_up(ev.a, ev.b); });
      break;
    }
    case FaultKind::kRouterCrash: {
      crash(ev.a);
      sched.schedule_at(ev.at + ev.duration, [this, ev] { restart(ev.a); });
      break;
    }
    case FaultKind::kLinkDown: {
      link_down(ev.a, ev.b);
      sched.schedule_at(ev.at + ev.duration,
                        [this, ev] { link_restore(ev.a, ev.b); });
      break;
    }
    case FaultKind::kDelayBurst:
    case FaultKind::kLossBurst: {
      ++counters_.bursts;
      auto& net = testbed_->network();
      const std::uint64_t drops_before = channel_drops(net, ev.a, ev.b);
      net.impair(ev.a, ev.b, ev.extra_delay, ev.loss_prob);
      sched.schedule_at(ev.at + ev.duration, [this, ev, drops_before] {
        auto& net2 = testbed_->network();
        net2.impair(ev.a, ev.b, 0, 0);
        // A loss burst models a failing path: the messages are gone for
        // good in our transport, so once the path heals, the endpoints'
        // delivered-state assumptions may be stale. Model TCP noticing
        // and repairing the connection — but only when segments were
        // actually lost, so clean bursts stay invisible.
        if (channel_drops(net2, ev.a, ev.b) != drops_before) {
          resync_session(ev.a, ev.b);
        }
      });
      break;
    }
  }
}

void FaultInjector::session_flap_down(bgp::RouterId a, bgp::RouterId b) {
  // Both ends see the connection die (explicit admin reset / TCP RST).
  testbed_->speaker(a).session_down(b);
  testbed_->speaker(b).session_down(a);
}

void FaultInjector::session_flap_up(bgp::RouterId a, bgp::RouterId b) {
  testbed_->speaker(a).session_up(b);
  testbed_->speaker(b).session_up(a);
}

void FaultInjector::crash(bgp::RouterId router) {
  ++counters_.crashes;
  testbed_->speaker(router).crash();
  // Its TCP stack dies with it: in-flight and future messages toward it
  // are lost, and nothing it "sent" is retransmitted.
  testbed_->network().set_endpoint_up(router, false);
  testbed_->mark_router_alive(router, false);
}

void FaultInjector::restart(bgp::RouterId router) {
  ++counters_.restarts;
  auto& speaker = testbed_->speaker(router);
  speaker.restart();
  testbed_->network().set_endpoint_up(router, true);
  testbed_->mark_router_alive(router, true);

  // Fresh TCP connections to every live peer. The peer side must treat
  // the old session as dead first (it may not have noticed the crash if
  // it was shorter than the hold time) — otherwise its Adj-RIB-Out
  // bookkeeping still assumes the pre-crash state was delivered.
  for (const bgp::RouterId peer : speaker.peer_ids()) {
    auto& other = testbed_->speaker(peer);
    if (!other.alive()) continue;  // both down: nothing to establish
    other.session_down(router);
    other.session_up(router);
    speaker.session_up(peer);
  }

  // The eBGP neighbors re-send their tables over their own re-opened
  // sessions (ground truth from the regenerator).
  if (resync_) counters_.resync_routes += resync_(router);
}

void FaultInjector::link_down(bgp::RouterId a, bgp::RouterId b) {
  ++counters_.link_downs;
  testbed_->network().set_link(a, b, false);
}

void FaultInjector::link_restore(bgp::RouterId a, bgp::RouterId b) {
  ++counters_.link_restores;
  auto& net = testbed_->network();
  const bool a_declared = !testbed_->speaker(a).peer_up(b);
  const bool b_declared = !testbed_->speaker(b).peer_up(a);
  if (!a_declared && !b_declared) {
    // Outage shorter than the hold time: TCP rode it out. Restoring the
    // link flushes the buffered send windows in order — no BGP-visible
    // event at all.
    net.set_link(a, b, true);
    return;
  }
  // At least one side declared the peer dead and purged its routes; the
  // buffered in-flight data belongs to a connection that no longer
  // exists. Drop it with the old connection, then restore and resync.
  testbed_->speaker(a).session_down(b);
  testbed_->speaker(b).session_down(a);
  net.set_link(a, b, true);
  resync_session(a, b);
}

void FaultInjector::resync_session(bgp::RouterId a, bgp::RouterId b) {
  auto& sa = testbed_->speaker(a);
  auto& sb = testbed_->speaker(b);
  if (!sa.alive() || !sb.alive()) return;  // restart() will handle it
  ++counters_.repairs;
  if (tracer_ != nullptr) {
    tracer_->record(obs::TraceEventKind::kFaultRepair, a, b);
  }
  sa.session_down(b);
  sb.session_down(a);
  sa.session_up(b);
  sb.session_up(a);
}

ResyncFn make_workload_resync(harness::Testbed& testbed,
                              const trace::RouteRegenerator& regen) {
  return [&testbed, &regen](bgp::RouterId router) -> std::uint64_t {
    std::uint64_t injected = 0;
    auto& speaker = testbed.speaker(router);
    for (const trace::PrefixEntry& entry : regen.current().table()) {
      for (const trace::Announcement& ann : entry.anns) {
        if (ann.router != router || ann.down) continue;
        speaker.inject_ebgp(ann.neighbor, ann.to_route(entry.prefix));
        ++injected;
      }
    }
    return injected;
  };
}

}  // namespace abrr::fault
