// Deterministic fault schedules: the scripted (or seeded-random) event
// sequences the fault injector replays against a testbed. A schedule is
// pure data — replaying the same schedule (or regenerating it from the
// same chaos seed) against the same testbed yields a bit-identical run.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "bgp/types.h"
#include "sim/random.h"
#include "sim/time.h"

namespace abrr::fault {

using bgp::RouterId;

enum class FaultKind {
  kSessionReset,  // iBGP session flap between a and b
  kRouterCrash,   // router a dies with total state loss, restarts later
  kLinkDown,      // transport a <-> b down (TCP buffers ride it out)
  kDelayBurst,    // every message on a <-> b gains extra latency
  kLossBurst,     // messages on a <-> b are lost with loss_prob
};

const char* to_string(FaultKind kind);

struct FaultEvent {
  FaultKind kind = FaultKind::kSessionReset;
  sim::Time at = 0;        // injection time
  sim::Time duration = 0;  // outage / burst window; 0 = instant flap
  RouterId a = bgp::kNoRouter;  // crashed router, or session endpoint
  RouterId b = bgp::kNoRouter;  // other session endpoint (unused: crash)
  sim::Time extra_delay = 0;    // kDelayBurst surcharge
  double loss_prob = 0;         // kLossBurst probability
};

/// Knobs for the seeded-random chaos generator.
struct ChaosParams {
  std::size_t events = 16;
  sim::Time start = sim::sec(1);        // earliest injection time
  sim::Time horizon = sim::sec(60);     // latest injection time
  sim::Time min_duration = sim::msec(500);
  sim::Time max_duration = sim::sec(5);
  /// Relative weights of the five fault kinds (0 disables a kind).
  double session_weight = 1;
  double crash_weight = 1;
  double link_weight = 1;
  double delay_weight = 1;
  double loss_weight = 1;
  sim::Time burst_delay = sim::msec(200);  // kDelayBurst surcharge
  double burst_loss = 0.2;                 // kLossBurst probability
};

/// An ordered list of fault events plus a text serialization, so chaos
/// runs can be captured, replayed and minimized.
class FaultSchedule {
 public:
  FaultSchedule() = default;

  void add(FaultEvent event) { events_.push_back(event); }

  /// Generates `params.events` random faults over the given routers and
  /// sessions. Deterministic per rng state; `routers` are crash
  /// candidates, `links` the session pairs eligible for session/link/
  /// burst faults (use net::Network::sessions() for a stable order).
  static FaultSchedule chaos(
      const ChaosParams& params, std::span<const RouterId> routers,
      std::span<const std::pair<RouterId, RouterId>> links, sim::Rng& rng);

  const std::vector<FaultEvent>& events() const { return events_; }
  std::size_t size() const { return events_.size(); }
  bool empty() const { return events_.empty(); }

  /// One event per line: `kind at_us duration_us a b extra_delay_us
  /// loss_prob`. Round-trips exactly through parse().
  std::string to_text() const;

  /// Parses to_text() output (blank lines and `#` comments allowed).
  /// Throws std::invalid_argument on malformed input.
  static FaultSchedule parse(std::string_view text);

 private:
  std::vector<FaultEvent> events_;
};

}  // namespace abrr::fault
