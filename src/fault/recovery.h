// Post-fault recovery verification: after an intact-topology schedule
// (every crashed router restarted, every link restored), the reflected
// architecture must reconverge to full-mesh-equivalent state.
#pragma once

#include <cstdint>
#include <span>

#include "harness/testbed.h"
#include "verify/equivalence.h"
#include "verify/forwarding.h"

namespace abrr::fault {

struct RecoveryReport {
  verify::EquivalenceReport equivalence;
  verify::ForwardingAudit forwarding;

  bool ok() const {
    return equivalence.equivalent() && forwarding.clean();
  }
};

/// Runs both steady-state checks of the recovered testbed against the
/// untouched baseline: Loc-RIB equivalence over all shared clients, and
/// a full data-plane forwarding audit of the recovered bed.
RecoveryReport verify_recovery(harness::Testbed& recovered,
                               harness::Testbed& baseline,
                               std::span<const bgp::Ipv4Prefix> prefixes);

/// Order-independent digest of every speaker's Loc-RIB (prefix, egress,
/// path attributes), chained over speakers in id order. Two runs of the
/// same schedule + seed must produce identical fingerprints — the
/// deterministic-replay contract.
std::uint64_t rib_fingerprint(harness::Testbed& testbed);

// The fingerprint's building blocks, exported so other digests (the
// serving mode's incrementally-maintained per-snapshot fingerprint) can
// be bit-identical to rib_fingerprint() without walking every RIB.

/// splitmix64 finalizer — the mixer underlying all fingerprint terms.
std::uint64_t fp_mix64(std::uint64_t x);

/// One Loc-RIB entry's commutative contribution to its speaker's sum,
/// from raw fields (attrs_hash must be the canonical attrs content
/// hash). Terms are summed with wrapping + so entry order never matters
/// and deltas can be applied incrementally (sum += new - old).
std::uint64_t fp_route_term(bgp::Ipv4Addr address, std::uint8_t length,
                            std::uint32_t next_hop,
                            std::uint64_t attrs_hash);

/// Same, from a live route (resolves the attrs content hash).
std::uint64_t fp_route_term(const bgp::Route& route);

/// Folds one speaker's commutative sum into the running digest; call in
/// ascending RouterId order starting from fp = 0.
std::uint64_t fp_chain(std::uint64_t fp, bgp::RouterId id,
                       std::uint64_t speaker_sum);

}  // namespace abrr::fault
