// Post-fault recovery verification: after an intact-topology schedule
// (every crashed router restarted, every link restored), the reflected
// architecture must reconverge to full-mesh-equivalent state.
#pragma once

#include <cstdint>
#include <span>

#include "harness/testbed.h"
#include "verify/equivalence.h"
#include "verify/forwarding.h"

namespace abrr::fault {

struct RecoveryReport {
  verify::EquivalenceReport equivalence;
  verify::ForwardingAudit forwarding;

  bool ok() const {
    return equivalence.equivalent() && forwarding.clean();
  }
};

/// Runs both steady-state checks of the recovered testbed against the
/// untouched baseline: Loc-RIB equivalence over all shared clients, and
/// a full data-plane forwarding audit of the recovered bed.
RecoveryReport verify_recovery(harness::Testbed& recovered,
                               harness::Testbed& baseline,
                               std::span<const bgp::Ipv4Prefix> prefixes);

/// Order-independent digest of every speaker's Loc-RIB (prefix, egress,
/// path attributes), chained over speakers in id order. Two runs of the
/// same schedule + seed must produce identical fingerprints — the
/// deterministic-replay contract.
std::uint64_t rib_fingerprint(harness::Testbed& testbed);

}  // namespace abrr::fault
