#include "fault/recovery.h"

#include <algorithm>
#include <vector>

#include "bgp/attrs_intern.h"

namespace abrr::fault {
namespace {

std::uint64_t mix64(std::uint64_t x) {
  // splitmix64 finalizer.
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

}  // namespace

RecoveryReport verify_recovery(harness::Testbed& recovered,
                               harness::Testbed& baseline,
                               std::span<const bgp::Ipv4Prefix> prefixes) {
  RecoveryReport report;
  report.equivalence =
      verify::compare_loc_ribs(recovered, baseline, prefixes);
  verify::ForwardingChecker checker{recovered};
  report.forwarding = checker.audit(prefixes);
  return report;
}

std::uint64_t rib_fingerprint(harness::Testbed& testbed) {
  std::vector<bgp::RouterId> ids = testbed.all_ids();
  std::sort(ids.begin(), ids.end());

  std::uint64_t fp = 0;
  for (const bgp::RouterId id : ids) {
    // Commutative per-speaker sum: LocRib::for_each iterates the map
    // fallback in unspecified order, so the digest must not depend on it.
    std::uint64_t speaker_sum = 0;
    testbed.speaker(id).loc_rib().for_each([&](const bgp::Route& r) {
      std::uint64_t h = mix64(r.prefix.address());
      h = mix64(h ^ r.prefix.length());
      h = mix64(h ^ r.attrs->next_hop);
      const std::uint64_t attrs_hash =
          r.attrs->content_hash != 0 ? r.attrs->content_hash
                                     : bgp::attrs_content_hash(*r.attrs);
      speaker_sum += mix64(h ^ attrs_hash);
    });
    fp = mix64(fp ^ mix64(id)) ^ speaker_sum;
    fp = mix64(fp);
  }
  return fp;
}

}  // namespace abrr::fault
