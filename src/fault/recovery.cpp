#include "fault/recovery.h"

#include <algorithm>
#include <vector>

#include "bgp/attrs_intern.h"

namespace abrr::fault {

std::uint64_t fp_mix64(std::uint64_t x) {
  // splitmix64 finalizer.
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

std::uint64_t fp_route_term(bgp::Ipv4Addr address, std::uint8_t length,
                            std::uint32_t next_hop,
                            std::uint64_t attrs_hash) {
  std::uint64_t h = fp_mix64(address);
  h = fp_mix64(h ^ length);
  h = fp_mix64(h ^ next_hop);
  return fp_mix64(h ^ attrs_hash);
}

std::uint64_t fp_route_term(const bgp::Route& route) {
  const std::uint64_t attrs_hash =
      route.attrs->content_hash != 0
          ? route.attrs->content_hash
          : bgp::attrs_content_hash(*route.attrs);
  return fp_route_term(route.prefix.address(), route.prefix.length(),
                       route.attrs->next_hop, attrs_hash);
}

std::uint64_t fp_chain(std::uint64_t fp, bgp::RouterId id,
                       std::uint64_t speaker_sum) {
  fp = fp_mix64(fp ^ fp_mix64(id)) ^ speaker_sum;
  return fp_mix64(fp);
}

RecoveryReport verify_recovery(harness::Testbed& recovered,
                               harness::Testbed& baseline,
                               std::span<const bgp::Ipv4Prefix> prefixes) {
  RecoveryReport report;
  report.equivalence =
      verify::compare_loc_ribs(recovered, baseline, prefixes);
  verify::ForwardingChecker checker{recovered};
  report.forwarding = checker.audit(prefixes);
  return report;
}

std::uint64_t rib_fingerprint(harness::Testbed& testbed) {
  std::vector<bgp::RouterId> ids = testbed.all_ids();
  std::sort(ids.begin(), ids.end());

  std::uint64_t fp = 0;
  for (const bgp::RouterId id : ids) {
    // Commutative per-speaker sum: LocRib::for_each iterates the map
    // fallback in unspecified order, so the digest must not depend on it.
    std::uint64_t speaker_sum = 0;
    testbed.speaker(id).loc_rib().for_each([&](const bgp::Route& r) {
      speaker_sum += fp_route_term(r);
    });
    fp = fp_chain(fp, id, speaker_sum);
  }
  return fp;
}

}  // namespace abrr::fault
