#include "fault/schedule.h"

#include <cmath>
#include <sstream>
#include <stdexcept>

namespace abrr::fault {
namespace {

constexpr const char* kKindNames[] = {"session", "crash", "link", "delay",
                                      "loss"};

FaultKind kind_from_string(const std::string& token) {
  for (std::size_t i = 0; i < std::size(kKindNames); ++i) {
    if (token == kKindNames[i]) return static_cast<FaultKind>(i);
  }
  throw std::invalid_argument{"FaultSchedule: unknown fault kind '" + token +
                              "'"};
}

}  // namespace

const char* to_string(FaultKind kind) {
  return kKindNames[static_cast<std::size_t>(kind)];
}

FaultSchedule FaultSchedule::chaos(
    const ChaosParams& params, std::span<const RouterId> routers,
    std::span<const std::pair<RouterId, RouterId>> links, sim::Rng& rng) {
  if (params.horizon < params.start) {
    throw std::invalid_argument{"chaos: horizon before start"};
  }
  if (params.max_duration < params.min_duration) {
    throw std::invalid_argument{"chaos: max_duration < min_duration"};
  }
  const double weights[] = {params.session_weight, params.crash_weight,
                            params.link_weight, params.delay_weight,
                            params.loss_weight};
  double total_weight = 0;
  for (const double w : weights) {
    if (w < 0) throw std::invalid_argument{"chaos: negative weight"};
    total_weight += w;
  }
  if (total_weight <= 0) throw std::invalid_argument{"chaos: all weights 0"};

  FaultSchedule schedule;
  for (std::size_t i = 0; i < params.events; ++i) {
    double pick = rng.uniform_real(0, total_weight);
    std::size_t k = 0;
    while (k + 1 < std::size(weights) && pick >= weights[k]) {
      pick -= weights[k];
      ++k;
    }

    FaultEvent ev;
    ev.kind = static_cast<FaultKind>(k);
    ev.at = params.start +
            rng.uniform_int(0, params.horizon - params.start);
    ev.duration = params.min_duration +
                  rng.uniform_int(0, params.max_duration -
                                         params.min_duration);
    if (ev.kind == FaultKind::kRouterCrash) {
      if (routers.empty()) {
        throw std::invalid_argument{"chaos: crash weight > 0, no routers"};
      }
      ev.a = routers[rng.index(routers.size())];
    } else {
      if (links.empty()) {
        throw std::invalid_argument{"chaos: link faults enabled, no links"};
      }
      const auto& [a, b] = links[rng.index(links.size())];
      ev.a = a;
      ev.b = b;
      if (ev.kind == FaultKind::kDelayBurst) {
        ev.extra_delay = params.burst_delay;
      } else if (ev.kind == FaultKind::kLossBurst) {
        ev.loss_prob = params.burst_loss;
      }
    }
    schedule.add(ev);
  }
  return schedule;
}

std::string FaultSchedule::to_text() const {
  std::ostringstream out;
  for (const FaultEvent& ev : events_) {
    out << to_string(ev.kind) << ' ' << ev.at << ' ' << ev.duration << ' '
        << ev.a << ' ' << ev.b << ' ' << ev.extra_delay << ' '
        << ev.loss_prob << '\n';
  }
  return out.str();
}

FaultSchedule FaultSchedule::parse(std::string_view text) {
  FaultSchedule schedule;
  std::istringstream in{std::string{text}};
  std::string line;
  std::size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    const auto first = line.find_first_not_of(" \t");
    if (first == std::string::npos || line[first] == '#') continue;
    std::istringstream fields{line};
    std::string kind;
    FaultEvent ev;
    if (!(fields >> kind >> ev.at >> ev.duration >> ev.a >> ev.b >>
          ev.extra_delay >> ev.loss_prob)) {
      throw std::invalid_argument{"FaultSchedule: malformed line " +
                                  std::to_string(line_no)};
    }
    ev.kind = kind_from_string(kind);
    if (ev.at < 0 || ev.duration < 0 || ev.extra_delay < 0 ||
        ev.loss_prob < 0 || ev.loss_prob > 1) {
      throw std::invalid_argument{"FaultSchedule: bad values on line " +
                                  std::to_string(line_no)};
    }
    schedule.add(ev);
  }
  return schedule;
}

}  // namespace abrr::fault
