// Replays a FaultSchedule against a live testbed through the simulator
// clock, translating each abstract fault into the concrete speaker /
// network operations that model it (state loss, TCP teardown, hold-timer
// discovery, resync on restart).
#pragma once

#include <cstdint>
#include <functional>

#include "fault/schedule.h"
#include "harness/testbed.h"
#include "obs/tracer.h"
#include "trace/regenerator.h"

namespace abrr::fault {

/// What the injector actually did (per-run observability; also part of
/// the deterministic-replay contract — same schedule, same counters).
struct InjectorCounters {
  std::uint64_t events_fired = 0;
  std::uint64_t session_resets = 0;
  std::uint64_t crashes = 0;
  std::uint64_t restarts = 0;
  std::uint64_t link_downs = 0;
  std::uint64_t link_restores = 0;
  std::uint64_t bursts = 0;
  /// Post-outage session re-synchronizations (the down/up dance run when
  /// an outage invalidated one side's delivered-state assumption).
  std::uint64_t repairs = 0;
  /// eBGP routes re-injected into restarted routers.
  std::uint64_t resync_routes = 0;
};

/// Re-feeds a restarted router's eBGP sessions (its neighbors re-sending
/// their tables once the connections come back). Returns the number of
/// routes injected.
using ResyncFn = std::function<std::uint64_t(bgp::RouterId router)>;

class FaultInjector {
 public:
  /// Binds to a testbed and takes a copy of the schedule. Nothing is
  /// scheduled until arm().
  FaultInjector(harness::Testbed& testbed, FaultSchedule schedule);

  FaultInjector(const FaultInjector&) = delete;
  FaultInjector& operator=(const FaultInjector&) = delete;

  /// Installs the eBGP resync source for router restarts. Without one,
  /// restarted border routers come back with no eBGP routes (pure
  /// control-plane boxes like ARRs need none).
  void set_resync(ResyncFn resync) { resync_ = std::move(resync); }

  /// Records kFaultInject / kFaultRepair trace events (the drill
  /// timeline's anchors). Null disables; the tracer must outlive the
  /// injector. Defaults to the testbed's tracer, when it has one.
  void set_tracer(obs::Tracer* tracer) { tracer_ = tracer; }

  /// Schedules every event of the schedule on the testbed's clock.
  /// Call once, before running the simulation past the first event.
  void arm();

  const InjectorCounters& counters() const { return counters_; }

  /// End of the last scheduled outage window — run the simulation past
  /// this (plus hold-time slack) before verifying recovery.
  sim::Time last_event_end() const;

 private:
  void fire(const FaultEvent& event);
  void session_flap_down(bgp::RouterId a, bgp::RouterId b);
  void session_flap_up(bgp::RouterId a, bgp::RouterId b);
  void crash(bgp::RouterId router);
  void restart(bgp::RouterId router);
  void link_down(bgp::RouterId a, bgp::RouterId b);
  void link_restore(bgp::RouterId a, bgp::RouterId b);
  /// Tears the session down and back up on both live ends — the repair
  /// run after an outage that broke delivered-state assumptions.
  void resync_session(bgp::RouterId a, bgp::RouterId b);

  harness::Testbed* testbed_;
  FaultSchedule schedule_;
  ResyncFn resync_;
  InjectorCounters counters_;
  obs::Tracer* tracer_ = nullptr;
  bool armed_ = false;
};

/// Standard resync source: the route regenerator's ground-truth edge
/// state (`regen.current()`): every live announcement heard at the
/// restarted router is re-injected. Both referents must outlive the fn.
ResyncFn make_workload_resync(harness::Testbed& testbed,
                              const trace::RouteRegenerator& regen);

}  // namespace abrr::fault
