// RouteService: the serving mode's long-lived wrapper around one
// converged trial.
//
// Threading model (the writer/reader contract, DESIGN.md §14):
//  - start() launches the WRITER thread. It builds the whole world
//    there — Testbed, regenerator, interner TrialScope are all
//    thread-confined to it — converges it, publishes snapshot v1, then
//    replays the churn plan (update trace + restricted fault chaos) in
//    publish_period steps, republishing a delta-rebuilt snapshot after
//    every step that dirtied at least one (router, prefix).
//  - Readers (any thread) claim an epoch slot via Reader, pin around
//    each query, and only ever touch the immutable RibSnapshot — never
//    the testbed, the scheduler, or the interner.
//  - Retired snapshots are reclaimed by the writer once no pinned
//    epoch can still reference them (serve/epoch.h). A stuck reader
//    therefore pins memory; the writer bounds it by DEFERRING further
//    publishes once max_resident_snapshots would be exceeded, instead
//    of growing the retire backlog.
//
// Lifetime contract: destroy (or at least stop using) all Readers
// before destroying the service. stop() only stops the writer; the
// last published snapshot stays readable until destruction.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <span>
#include <string>
#include <thread>

#include "obs/metrics.h"
#include "runner/scenario.h"
#include "serve/epoch.h"
#include "serve/snapshot.h"

namespace abrr::serve {

// --- the serving query contract (QueryApi) ------------------------------
//
// LookupRequest/LookupResponse are the transport-agnostic unit of the
// read path: in-process callers hand spans of them to
// Reader::lookup_batch, and the TCP front-end (src/frontend) carries
// the same structs as wire frames. A batch is answered under ONE epoch
// pin, so every response in it comes from the same snapshot.

/// One serving query: "what route does `router` use for `addr`?".
struct LookupRequest {
  bgp::RouterId router = bgp::kNoRouter;
  bgp::Ipv4Addr addr = 0;

  friend bool operator==(const LookupRequest&, const LookupRequest&) =
      default;
};

/// One flattened answer. Value semantics on purpose: unlike
/// RibSnapshot::Hit there is no pointer into the snapshot, so a
/// response stays valid after the pin is released (and can be put on a
/// wire verbatim). snapshot_version/fingerprint identify the snapshot
/// that answered — equal versions mean bit-identical RIB state, which
/// is what the socket-vs-in-process equivalence tests compare.
struct LookupResponse {
  std::uint64_t attrs_hash = 0;
  std::uint64_t snapshot_version = 0;
  std::uint64_t fingerprint = 0;
  bgp::Ipv4Addr prefix = 0;  // matched prefix (valid when hit == 1)
  bgp::Ipv4Addr next_hop = 0;
  bgp::RouterId learned_from = bgp::kNoRouter;
  bgp::PathId path_id = 0;
  std::uint8_t prefix_len = 0;
  std::uint8_t hit = 0;

  friend bool operator==(const LookupResponse&, const LookupResponse&) =
      default;
};

/// What one lookup_batch call answered with (all responses in the
/// batch carry this same version/fingerprint).
struct BatchResult {
  std::uint64_t snapshot_version = 0;
  std::uint64_t fingerprint = 0;
  std::uint64_t hits = 0;
};

/// Writer + reclamation telemetry, readable from any thread.
struct ServiceStats {
  std::uint64_t publishes = 0;
  std::uint64_t publishes_deferred = 0;
  std::uint64_t reclaimed = 0;
  std::uint64_t retired_pending = 0;
  std::uint64_t retired_peak = 0;  // max resident retired snapshots seen
  std::uint64_t version = 0;       // latest published snapshot version
  std::uint64_t fingerprint = 0;   // ...and its RIB fingerprint
  sim::Time virtual_time = 0;      // ...and its simulation clock
  bool done = false;               // writer finished the churn horizon
};

class RouteService {
 public:
  /// `spec.serve` configures the churn plan and reclamation bounds
  /// (spec.serve.enabled itself is not consulted here — constructing a
  /// RouteService IS opting in). Throws std::invalid_argument on an
  /// invalid spec.
  RouteService(runner::ScenarioSpec spec, std::uint64_t seed,
               std::size_t max_readers = 64);
  ~RouteService();

  RouteService(const RouteService&) = delete;
  RouteService& operator=(const RouteService&) = delete;

  /// Launches the writer thread and blocks until the converged initial
  /// snapshot (version 1) is published. Rethrows writer build failures.
  void start();

  /// Asks the writer to stop at the next step boundary and joins it.
  /// Idempotent; also called by the destructor.
  void stop();

  /// True once the writer has replayed the full churn horizon (it may
  /// still be parked waiting for stop()).
  bool done() const { return done_.load(std::memory_order_acquire); }

  /// True once the horizon-state snapshot (virtual_time == end of the
  /// churn plan) is live. Can lag done(): a reader pinned across the
  /// horizon makes the final publish defer; the parked writer keeps
  /// retrying until the pin clears or stop().
  bool horizon_published() const {
    return horizon_published_.load(std::memory_order_acquire);
  }

  /// Virtual time of the converged pre-churn state (snapshot v1).
  /// Recorded by the writer before start() returns; stable thereafter.
  /// Reading stats().virtual_time for this instead races the writer:
  /// on a loaded 1-CPU host it may have replayed part of the horizon
  /// before the caller runs again.
  sim::Time converged_time() const {
    return t0_virtual_.load(std::memory_order_acquire);
  }

  ServiceStats stats() const;

  /// Per-reader-thread handle: one epoch slot plus a thread-local
  /// lookup-latency histogram (the registry is writer-confined, so
  /// readers record locally; the service merges on Reader destruction).
  ///
  /// The read contract is lookup_batch(): requests in, flattened
  /// responses out, one epoch pin per batch. Raw pin()/unpin() no
  /// longer exist — callers that need to hold a snapshot across their
  /// own logic (rather than a query batch) take a PinGuard.
  class Reader {
   public:
    explicit Reader(RouteService& service);
    ~Reader();
    Reader(const Reader&) = delete;
    Reader& operator=(const Reader&) = delete;

    /// RAII epoch pin: holds the live snapshot for its whole lifetime.
    /// The snapshot pointer is only nullptr before a successful
    /// start(). Keep the scope tight — a long-lived guard pins retired
    /// snapshots in memory and eventually defers the writer.
    class PinGuard {
     public:
      explicit PinGuard(Reader& reader) : reader_(&reader) {
        reader.service_->epochs_.pin(reader.slot_);
        snap_ = reader.service_->live_.load(std::memory_order_acquire);
      }
      ~PinGuard() { reader_->service_->epochs_.unpin(reader_->slot_); }
      PinGuard(const PinGuard&) = delete;
      PinGuard& operator=(const PinGuard&) = delete;

      const RibSnapshot* get() const { return snap_; }
      const RibSnapshot* operator->() const { return snap_; }
      const RibSnapshot& operator*() const { return *snap_; }
      explicit operator bool() const { return snap_ != nullptr; }

     private:
      Reader* reader_;
      const RibSnapshot* snap_;
    };

    /// Pins the epoch for the guard's scope (guaranteed copy elision:
    /// the guard is constructed in place at the caller).
    PinGuard pin() { return PinGuard{*this}; }

    /// Answers reqs[i] into resps[i] under a single epoch pin, so the
    /// whole batch reflects ONE snapshot. Requires
    /// resps.size() >= reqs.size(). Records the batch's mean per-lookup
    /// latency into this reader's histogram (one sample per batch; see
    /// EXPERIMENTS.md on batch-wise tails). Total: before the first
    /// publish every request misses at snapshot_version 0 (the TCP
    /// front-end exposes this path to clients).
    BatchResult lookup_batch(std::span<const LookupRequest> reqs,
                             std::span<LookupResponse> resps);

    /// One query; convenience over lookup_batch for callers that don't
    /// batch (a batch of one).
    LookupResponse lookup(bgp::RouterId router, bgp::Ipv4Addr addr) {
      const LookupRequest req{router, addr};
      LookupResponse resp;
      lookup_batch({&req, 1}, {&resp, 1});
      return resp;
    }

    /// Folds one timing sample (mean ns per lookup over `lookups`
    /// queries) into this reader's telemetry. lookup_batch calls this
    /// itself; it is public for harnesses that time at a coarser grain.
    /// Count and histogram move together — there is no way to desync
    /// them.
    void record(double ns_per_lookup, std::uint64_t lookups) {
      latency_.record(ns_per_lookup);
      lookups_ += lookups;
    }

    /// Thread-local latency samples (ns per lookup); merged into the
    /// service aggregate when the Reader is destroyed.
    const obs::Histogram& latency_hist() const { return latency_; }
    std::uint64_t lookups() const { return lookups_; }

   private:
    friend class PinGuard;

    RouteService* service_;
    std::size_t slot_;
    obs::Histogram latency_;
    std::uint64_t lookups_ = 0;
  };

  /// Merged view of every destroyed Reader's latency histogram.
  obs::Histogram lookup_latency() const;
  std::uint64_t total_lookups() const {
    return total_lookups_.load(std::memory_order_relaxed);
  }
  /// Writer-side wall-clock snapshot publish latency (ns).
  obs::Histogram publish_latency() const;

  EpochDomain& epochs() { return epochs_; }

 private:
  friend class Reader;

  void writer_main();
  struct WriterState;  // everything thread-confined to the writer
  bool try_publish(WriterState& w, sim::Time now);
  std::size_t reclaim();

  runner::ScenarioSpec spec_;
  std::uint64_t seed_;

  EpochDomain epochs_;
  std::atomic<const RibSnapshot*> live_{nullptr};
  RetireBin<RibSnapshot> bin_;  // writer thread only (dtor after join)

  std::thread writer_;
  std::atomic<bool> stop_{false};
  std::atomic<bool> done_{false};
  std::atomic<bool> horizon_published_{false};
  std::atomic<bool> started_{false};

  // start() handshake + build-failure propagation.
  std::mutex ready_mutex_;
  std::condition_variable ready_cv_;
  bool ready_ = false;
  std::string writer_error_;

  // Stats (writer publishes, anyone reads).
  std::atomic<std::uint64_t> publishes_{0};
  std::atomic<std::uint64_t> deferred_{0};
  std::atomic<std::uint64_t> reclaimed_{0};
  std::atomic<std::uint64_t> pending_{0};
  std::atomic<std::uint64_t> retired_peak_{0};
  std::atomic<std::uint64_t> version_{0};
  std::atomic<std::uint64_t> fingerprint_{0};
  std::atomic<std::int64_t> virtual_time_{0};
  std::atomic<std::int64_t> t0_virtual_{0};

  // Merged reader-side latency + writer-side publish latency.
  mutable std::mutex hist_mutex_;
  obs::Histogram lookup_hist_;
  obs::Histogram publish_hist_;
  std::atomic<std::uint64_t> total_lookups_{0};
};

/// Batch-mode comparator for the snapshot-consistency contract: builds
/// the identical world from (spec, seed), converges it, arms the
/// identical churn plan, runs ONE run_until to the absolute virtual
/// time `at`, and returns fault::rib_fingerprint of the bed. A
/// snapshot published at virtual_time T must carry exactly
/// batch_fingerprint_at(spec, seed, T).
std::uint64_t batch_fingerprint_at(const runner::ScenarioSpec& spec,
                                   std::uint64_t seed, sim::Time at);

/// The converged (pre-churn) virtual time of a (spec, seed) world —
/// snapshot v1's virtual_time.
sim::Time batch_converged_time(const runner::ScenarioSpec& spec,
                               std::uint64_t seed);

// --- serve trial mode ---------------------------------------------------

struct ServeTrialOptions {
  std::size_t readers = 1;
  /// Lookups per timing sample: the clock is read once per batch and
  /// the mean per-lookup latency recorded batch-wise (amortizes
  /// clock_gettime; tails are per-batch means, see EXPERIMENTS.md).
  std::size_t lookup_batch = 64;
};

/// One serving run's report (bench/serve emits these as JSON).
struct ServeReport {
  std::uint64_t lookups = 0;
  double lookups_per_sec = 0;
  double lookup_p50_ns = 0;
  double lookup_p99_ns = 0;
  double publish_p50_ns = 0;
  double publish_p99_ns = 0;
  std::uint64_t publishes = 0;
  std::uint64_t publishes_deferred = 0;
  std::uint64_t reclaimed = 0;
  std::uint64_t retired_peak = 0;
  std::uint64_t final_version = 0;
  std::uint64_t final_fingerprint = 0;
  double virtual_seconds = 0;  // churn horizon actually replayed
  double wall_ms = 0;
  long peak_rss_kb = 0;  // getrusage(RUSAGE_SELF).ru_maxrss
};

/// Runs a full serving trial: starts the service, hammers it with
/// `opt.readers` lookup threads (deterministic probe sequence) until
/// the writer finishes its churn horizon, and collects the report.
ServeReport run_serve_trial(const runner::ScenarioSpec& spec,
                            std::uint64_t seed,
                            const ServeTrialOptions& opt = {});

}  // namespace abrr::serve
