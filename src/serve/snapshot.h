// Immutable per-router RIB snapshots for the serving read path.
//
// A snapshot is what the writer publishes through the epoch domain and
// what readers answer queries from. It is deliberately free of live
// simulation state: route attributes are flattened to PODs (no AttrsPtr
// into the writer-confined interner), and the LPM directory is shared
// (one immutable LpmIndex over the fixed prefix universe serves every
// router and every snapshot). Per-router tables are dense slot-indexed
// arrays, copy-on-write shared with the previous snapshot: publishing a
// delta only materializes the routers whose RIBs actually changed.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "bgp/flat_lpm.h"
#include "bgp/prefix.h"
#include "bgp/types.h"
#include "sim/time.h"

namespace abrr::serve {

/// One Loc-RIB best route, flattened. `attrs_hash` is the canonical
/// attribute content hash — enough to fingerprint and to compare
/// against batch runs without dereferencing the interner.
struct RouteEntry {
  std::uint64_t attrs_hash = 0;
  bgp::Ipv4Addr next_hop = 0;
  bgp::RouterId learned_from = bgp::kNoRouter;
  bgp::PathId path_id = 0;
  std::uint8_t present = 0;  // 0 = this router holds no best for the slot
};

class RibSnapshot {
 public:
  using Table = std::vector<RouteEntry>;

  /// Shared across all snapshots of a service: slot i == PrefixIndex
  /// id i == index into every Table.
  std::shared_ptr<const bgp::LpmIndex> index;

  /// Simulation clock at publish; snapshots are states of the virtual
  /// world, so consistency is checked against batch runs stopped here.
  sim::Time virtual_time = 0;
  /// Publish sequence number (1 = the converged initial state).
  std::uint64_t version = 0;
  /// Order-independent RIB digest, bit-identical to
  /// fault::rib_fingerprint() of a batch bed at virtual_time.
  std::uint64_t fingerprint = 0;

  /// Ascending router ids and their tables (parallel vectors).
  std::vector<bgp::RouterId> router_ids;
  std::vector<std::shared_ptr<const Table>> tables;
  /// Dense RouterId -> position+1 into the vectors above (0 = unknown).
  std::vector<std::uint32_t> router_pos;

  const Table* table_of(bgp::RouterId id) const {
    if (id >= router_pos.size()) return nullptr;
    const std::uint32_t p = router_pos[id];
    return p == 0 ? nullptr : tables[p - 1].get();
  }

  struct Hit {
    bgp::Ipv4Prefix prefix;
    const RouteEntry* entry = nullptr;
  };

  /// "What route does `router` use for `addr`?" — the serving query.
  /// Walks up the containment chain past slots the router holds no
  /// entry for (possible mid-churn; zero steps once converged).
  std::optional<Hit> lookup(bgp::RouterId router, bgp::Ipv4Addr addr) const {
    const Table* table = table_of(router);
    if (table == nullptr) return std::nullopt;
    std::uint32_t slot = index->leaf_of(addr);
    while (slot != bgp::LpmIndex::kNoSlot) {
      const RouteEntry& e = (*table)[slot];
      if (e.present) return Hit{index->prefix_at(slot), &e};
      slot = index->parent_of(slot);
    }
    return std::nullopt;
  }

  /// Approximate bytes resident in THIS snapshot's unshared state
  /// (tables are counted even when shared with a neighbor snapshot;
  /// the index is excluded — it is shared service-wide).
  std::size_t bytes() const {
    std::size_t b = sizeof(RibSnapshot) +
                    router_ids.capacity() * sizeof(bgp::RouterId) +
                    router_pos.capacity() * sizeof(std::uint32_t);
    for (const auto& t : tables) {
      b += t ? t->capacity() * sizeof(RouteEntry) : 0;
    }
    return b;
  }
};

}  // namespace abrr::serve
