// Epoch-based reclamation for the serving mode's single-writer /
// many-reader snapshot hand-off.
//
// The contract:
//  - ONE writer thread publishes immutable snapshots and is the only
//    thread that retires, advances the epoch, and reclaims.
//  - N reader threads each claim a slot once, then pin/unpin around
//    every access to the live snapshot. Pinning is lock-free (two
//    atomic stores + two loads, no CAS loop under contention with the
//    writer) and readers never block each other or the writer.
//
// Why it is safe: the writer retires a snapshot tagged with the global
// epoch E *before* advancing to E+1, and all epoch/pin operations are
// seq_cst. A reader whose recheck observed epoch e therefore
// happens-after every publication the writer completed before the
// global counter reached e — so the snapshot pointer it subsequently
// loads was retired (if ever) at some tag >= e. Reclaiming only items
// with tag < min(pinned epochs) can thus never free a snapshot a
// reader still holds. Unpin is a release store and the writer's
// min-pinned scan uses acquire loads, which gives the free a TSan-
// visible happens-after edge over every read of the snapshot.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <memory>
#include <stdexcept>

namespace abrr::serve {

class EpochDomain {
 public:
  /// Slot value meaning "this reader is not inside a critical section".
  /// Doubles as min_pinned()'s "nobody is pinned" result — it compares
  /// greater than every real epoch, so `tag < min_pinned()` naturally
  /// reclaims everything when no reader is active.
  static constexpr std::uint64_t kQuiescent = ~0ull;

  explicit EpochDomain(std::size_t max_readers = 64)
      : max_readers_(max_readers),
        slots_(std::make_unique<Slot[]>(max_readers)) {}

  EpochDomain(const EpochDomain&) = delete;
  EpochDomain& operator=(const EpochDomain&) = delete;

  // --- reader side ------------------------------------------------------

  /// Claims a reader slot (any thread; lock-free). Throws when all
  /// max_readers slots are taken.
  std::size_t register_reader() {
    for (std::size_t i = 0; i < max_readers_; ++i) {
      bool expected = false;
      if (slots_[i].claimed.compare_exchange_strong(
              expected, true, std::memory_order_acq_rel)) {
        return i;
      }
    }
    throw std::runtime_error{"EpochDomain: out of reader slots"};
  }

  void unregister_reader(std::size_t slot) {
    slots_[slot].epoch.store(kQuiescent, std::memory_order_release);
    slots_[slot].claimed.store(false, std::memory_order_release);
  }

  /// Enters a critical section: publishes the reader's epoch and
  /// rechecks the global counter so a concurrent advance can't strand
  /// the slot announcing an epoch older than what it read. Returns the
  /// pinned epoch.
  std::uint64_t pin(std::size_t slot) {
    std::uint64_t e = global_.load(std::memory_order_seq_cst);
    for (;;) {
      slots_[slot].epoch.store(e, std::memory_order_seq_cst);
      const std::uint64_t now = global_.load(std::memory_order_seq_cst);
      if (now == e) return e;
      e = now;
    }
  }

  void unpin(std::size_t slot) {
    slots_[slot].epoch.store(kQuiescent, std::memory_order_release);
  }

  // --- writer side ------------------------------------------------------

  std::uint64_t current() const {
    return global_.load(std::memory_order_seq_cst);
  }

  /// Moves the global epoch forward; returns the new value.
  std::uint64_t advance() {
    return global_.fetch_add(1, std::memory_order_seq_cst) + 1;
  }

  /// Smallest epoch any reader currently announces, or kQuiescent when
  /// no reader is inside a critical section.
  std::uint64_t min_pinned() const {
    std::uint64_t min = kQuiescent;
    for (std::size_t i = 0; i < max_readers_; ++i) {
      if (!slots_[i].claimed.load(std::memory_order_acquire)) continue;
      const std::uint64_t e = slots_[i].epoch.load(std::memory_order_acquire);
      if (e < min) min = e;
    }
    return min;
  }

  std::size_t max_readers() const { return max_readers_; }

 private:
  struct alignas(64) Slot {  // one cache line per reader: no false sharing
    std::atomic<std::uint64_t> epoch{kQuiescent};
    std::atomic<bool> claimed{false};
  };

  std::atomic<std::uint64_t> global_{1};
  std::size_t max_readers_;
  std::unique_ptr<Slot[]> slots_;
};

/// Writer-owned (NOT thread-safe) list of retired objects awaiting
/// reclamation. Tags must be non-decreasing across retire() calls —
/// they are the epoch at retirement time, which only advances.
template <typename T>
class RetireBin {
 public:
  void retire(std::uint64_t tag, std::unique_ptr<const T> obj) {
    items_.push_back(Item{tag, std::move(obj)});
  }

  /// Frees every item retired before `min_pinned` (see EpochDomain::
  /// min_pinned; kQuiescent frees everything). Returns how many.
  std::size_t reclaim(std::uint64_t min_pinned) {
    std::size_t n = 0;
    while (!items_.empty() && items_.front().tag < min_pinned) {
      items_.pop_front();
      ++n;
    }
    return n;
  }

  std::size_t pending() const { return items_.size(); }

 private:
  struct Item {
    std::uint64_t tag;
    std::unique_ptr<const T> obj;
  };
  std::deque<Item> items_;
};

}  // namespace abrr::serve
