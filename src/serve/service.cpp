#include "serve/service.h"

#include <algorithm>
#include <cassert>
#include <chrono>
#include <ctime>
#include <functional>
#include <memory>
#include <optional>
#include <stdexcept>
#include <utility>
#include <vector>

#include "bgp/attrs_intern.h"
#include "bgp/prefix_index.h"
#include "fault/injector.h"
#include "fault/recovery.h"
#include "fault/schedule.h"
#include "harness/testbed.h"
#include "runner/trial.h"
#include "trace/update_trace.h"

#include <sys/resource.h>

namespace abrr::serve {
namespace {

std::uint64_t now_ns() {
  timespec ts;
  clock_gettime(CLOCK_MONOTONIC, &ts);
  return static_cast<std::uint64_t>(ts.tv_sec) * 1'000'000'000ull +
         static_cast<std::uint64_t>(ts.tv_nsec);
}

/// One deterministic serving world: the same (spec, seed) construction
/// sequence as runner::run_trial, shared verbatim by the writer thread
/// and the batch comparator so their virtual states are bit-identical.
struct World {
  std::optional<trace::Workload> workload;
  std::vector<bgp::Ipv4Prefix> prefixes;
  std::unique_ptr<harness::Testbed> bed;
  std::unique_ptr<trace::RouteRegenerator> regen;
  std::unique_ptr<fault::FaultInjector> injector;
  sim::Time t0 = 0;     // virtual clock at convergence
  sim::Time t_end = 0;  // churn horizon
  bool converged = false;
};

/// Builds and converges the world. `before_load` runs between bed
/// construction and the snapshot load — the writer attaches its RIB
/// listener there so the mirror sees every best-change from the start
/// (no post-hoc RIB scan).
World build_world(const runner::ScenarioSpec& spec, std::uint64_t seed,
                  const std::function<void(harness::Testbed&)>& before_load) {
  World w;
  sim::Rng rng{seed};
  topo::Topology topology = runner::make_trial_topology(spec.topology, rng);
  w.workload.emplace(
      runner::make_trial_workload(spec.workload, topology, rng));
  w.prefixes = w.workload->prefixes();
  w.bed = std::make_unique<harness::Testbed>(
      std::move(topology), spec.testbed_config(seed), w.prefixes);
  w.regen = std::make_unique<trace::RouteRegenerator>(
      w.bed->scheduler(), *w.workload, w.bed->inject_fn());
  if (before_load) before_load(*w.bed);
  w.regen->load_snapshot(0, sim::sec_f(spec.workload.snapshot_seconds));
  w.converged = w.bed->run_to_quiescence(500'000'000);
  w.t0 = w.bed->scheduler().now();
  w.t_end = w.t0 + sim::sec_f(spec.serve.churn_seconds);
  return w;
}

/// Arms the churn plan: the update-trace replay plus (optionally) a
/// fault-chaos schedule restricted to session-reset/delay/loss — crash
/// and link faults are weighted off because hold_time stays 0 in
/// serving beds (explicit session events need no hold timers; a crash
/// would go undetected forever).
void arm_churn(const runner::ScenarioSpec& spec, std::uint64_t seed,
               World& w) {
  const runner::ServeOptions& so = spec.serve;
  if (so.churn_events_per_second > 0) {
    trace::TraceParams tp;
    tp.duration = sim::sec_f(so.churn_seconds);
    tp.events_per_second = so.churn_events_per_second;
    sim::Rng trace_rng{seed + 2};
    const trace::UpdateTrace trace =
        trace::UpdateTrace::generate(tp, *w.workload, trace_rng);
    w.regen->play(trace, w.t0);
  }
  if (so.chaos_events > 0) {
    fault::ChaosParams cp;
    cp.events = so.chaos_events;
    cp.start = w.t0 + std::min<sim::Time>(
                          sim::sec(1), sim::sec_f(so.churn_seconds * 0.25));
    cp.horizon = w.t_end;
    cp.crash_weight = 0;
    cp.link_weight = 0;
    sim::Rng chaos_rng{seed + 3};
    fault::FaultSchedule schedule = fault::FaultSchedule::chaos(
        cp, w.bed->all_ids(), w.bed->network().sessions(), chaos_rng);
    w.injector =
        std::make_unique<fault::FaultInjector>(*w.bed, std::move(schedule));
    w.injector->set_resync(fault::make_workload_resync(*w.bed, *w.regen));
    w.injector->arm();
  }
}

}  // namespace

/// Everything thread-confined to the writer: the live RIB mirror the
/// hooks maintain, its incremental fingerprint sums, and the published
/// (COW-shared) per-router tables.
struct RouteService::WriterState {
  struct Mirror {
    std::vector<RouteEntry> entries;  // dense by LPM/prefix slot
    std::uint64_t sum = 0;            // commutative fingerprint sum
    std::shared_ptr<const RibSnapshot::Table> published;
    bool dirty = false;
  };

  std::vector<bgp::RouterId> ids;  // ascending
  std::vector<std::uint32_t> pos;  // RouterId -> index+1
  std::vector<Mirror> mirrors;
  std::shared_ptr<const bgp::LpmIndex> index;
  const bgp::PrefixIndex* pidx = nullptr;
  std::uint64_t next_version = 0;
  bool any_dirty = false;

  // Registry handles (the bed's writer-confined MetricsRegistry).
  obs::Gauge* g_version = nullptr;
  obs::Gauge* g_epoch = nullptr;
  obs::Gauge* g_pending = nullptr;
  obs::Counter* c_publishes = nullptr;
  obs::Counter* c_deferred = nullptr;
  obs::Counter* c_reclaimed = nullptr;

  void init(harness::Testbed& bed) {
    pidx = bed.prefix_index();
    if (pidx == nullptr) {
      throw std::runtime_error{
          "serve: testbed has no PrefixIndex (use_prefix_index off)"};
    }
    index = std::make_shared<const bgp::LpmIndex>(pidx->prefixes());
    ids = bed.all_ids();
    std::sort(ids.begin(), ids.end());
    bgp::RouterId max_id = 0;
    for (const bgp::RouterId id : ids) max_id = std::max(max_id, id);
    pos.assign(static_cast<std::size_t>(max_id) + 1, 0);
    mirrors.resize(ids.size());
    for (std::size_t i = 0; i < ids.size(); ++i) {
      pos[ids[i]] = static_cast<std::uint32_t>(i) + 1;
      mirrors[i].entries.assign(pidx->size(), RouteEntry{});
    }
  }

  void on_change(bgp::RouterId id, const bgp::Ipv4Prefix& prefix,
                 const bgp::Route* best) {
    Mirror& m = mirrors[pos[id] - 1];
    const auto slot = pidx->id_of(prefix);
    if (!slot) return;  // outside the served universe
    RouteEntry& e = m.entries[*slot];
    if (e.present) {
      m.sum -= fault::fp_route_term(prefix.address(), prefix.length(),
                                    e.next_hop, e.attrs_hash);
    }
    if (best != nullptr) {
      e.attrs_hash = best->attrs->content_hash != 0
                         ? best->attrs->content_hash
                         : bgp::attrs_content_hash(*best->attrs);
      e.next_hop = best->attrs->next_hop;
      e.learned_from = best->learned_from;
      e.path_id = best->path_id;
      e.present = 1;
      m.sum += fault::fp_route_term(prefix.address(), prefix.length(),
                                    e.next_hop, e.attrs_hash);
    } else {
      e = RouteEntry{};
    }
    m.dirty = true;
    any_dirty = true;
  }

  void on_cleared(bgp::RouterId id) {
    Mirror& m = mirrors[pos[id] - 1];
    std::fill(m.entries.begin(), m.entries.end(), RouteEntry{});
    m.sum = 0;
    m.dirty = true;
    any_dirty = true;
  }
};

RouteService::RouteService(runner::ScenarioSpec spec, std::uint64_t seed,
                           std::size_t max_readers)
    : spec_(std::move(spec)),
      seed_(seed),
      epochs_(max_readers),
      lookup_hist_(obs::latency_buckets_ns()),
      publish_hist_(obs::latency_buckets_ns()) {
  spec_.serve.enabled = true;
  const std::vector<runner::ValidationError> errors = spec_.validate();
  if (!errors.empty()) {
    throw std::invalid_argument{"RouteService: " +
                                runner::render_errors(errors)};
  }
}

RouteService::~RouteService() {
  stop();
  // Contract: all Readers are gone by now, so the live snapshot and the
  // retire backlog (bin_ members destruct below) can be freed outright.
  delete live_.exchange(nullptr, std::memory_order_acq_rel);
}

void RouteService::start() {
  if (started_.exchange(true)) {
    throw std::logic_error{"RouteService::start() called twice"};
  }
  writer_ = std::thread([this] { writer_main(); });
  std::unique_lock<std::mutex> lock{ready_mutex_};
  ready_cv_.wait(lock, [this] { return ready_; });
  if (!writer_error_.empty()) {
    const std::string error = writer_error_;
    lock.unlock();
    stop();
    throw std::runtime_error{"serve writer failed: " + error};
  }
}

void RouteService::stop() {
  stop_.store(true, std::memory_order_release);
  if (writer_.joinable()) writer_.join();
}

std::size_t RouteService::reclaim() {
  const std::size_t n = bin_.reclaim(epochs_.min_pinned());
  if (n > 0) reclaimed_.fetch_add(n, std::memory_order_relaxed);
  pending_.store(bin_.pending(), std::memory_order_relaxed);
  return n;
}

bool RouteService::try_publish(WriterState& ws, sim::Time now) {
  reclaim();
  // Resident = the live snapshot + the new one + the retire backlog; a
  // stuck reader makes the backlog unreclaimable, so defer instead of
  // growing past the cap.
  if (bin_.pending() + 2 > spec_.serve.max_resident_snapshots) {
    deferred_.fetch_add(1, std::memory_order_relaxed);
    if (ws.c_deferred != nullptr) ws.c_deferred->inc();
    return false;
  }

  const std::uint64_t t_begin = now_ns();
  auto snap = std::make_unique<RibSnapshot>();
  snap->index = ws.index;
  snap->virtual_time = now;
  snap->version = ++ws.next_version;
  std::uint64_t fp = 0;
  for (std::size_t i = 0; i < ws.ids.size(); ++i) {
    fp = fault::fp_chain(fp, ws.ids[i], ws.mirrors[i].sum);
  }
  snap->fingerprint = fp;
  snap->router_ids = ws.ids;
  snap->router_pos = ws.pos;
  snap->tables.reserve(ws.mirrors.size());
  for (WriterState::Mirror& m : ws.mirrors) {
    if (m.dirty || m.published == nullptr) {
      // Delta rebuild: only routers dirtied since the last publish get
      // a fresh table; the rest share the previous snapshot's.
      m.published = std::make_shared<const RibSnapshot::Table>(m.entries);
      m.dirty = false;
    }
    snap->tables.push_back(m.published);
  }
  ws.any_dirty = false;

  const std::uint64_t version = snap->version;
  const RibSnapshot* old =
      live_.exchange(snap.release(), std::memory_order_seq_cst);
  const std::uint64_t tag = epochs_.current();
  if (old != nullptr) {
    bin_.retire(tag, std::unique_ptr<const RibSnapshot>(old));
    std::uint64_t peak = retired_peak_.load(std::memory_order_relaxed);
    while (bin_.pending() > peak &&
           !retired_peak_.compare_exchange_weak(peak, bin_.pending(),
                                                std::memory_order_relaxed)) {
    }
  }
  epochs_.advance();
  reclaim();

  publishes_.fetch_add(1, std::memory_order_relaxed);
  version_.store(version, std::memory_order_relaxed);
  fingerprint_.store(fp, std::memory_order_relaxed);
  virtual_time_.store(now, std::memory_order_relaxed);
  {
    std::lock_guard<std::mutex> lock{hist_mutex_};
    publish_hist_.record(static_cast<double>(now_ns() - t_begin));
  }
  if (ws.c_publishes != nullptr) ws.c_publishes->inc();
  if (ws.c_reclaimed != nullptr) {
    const std::uint64_t total = reclaimed_.load(std::memory_order_relaxed);
    if (total > ws.c_reclaimed->value()) {
      ws.c_reclaimed->inc(total - ws.c_reclaimed->value());
    }
  }
  if (ws.g_version != nullptr) {
    ws.g_version->set(static_cast<double>(version));
    ws.g_epoch->set(static_cast<double>(epochs_.current()));
    ws.g_pending->set(static_cast<double>(bin_.pending()));
  }
  return true;
}

void RouteService::writer_main() {
  try {
    bgp::AttrsInterner::TrialScope attrs_scope{spec_.expected_attr_blocks()};
    WriterState ws;  // declared before World: speaker hooks point into it
    World w = build_world(spec_, seed_, [&ws](harness::Testbed& bed) {
      ws.init(bed);
      bed.attach_rib_listener(
          [&ws](bgp::RouterId id, const bgp::Ipv4Prefix& prefix,
                const bgp::Route* best) { ws.on_change(id, prefix, best); },
          [&ws](bgp::RouterId id) { ws.on_cleared(id); });
    });
    if (!w.converged) {
      throw std::runtime_error{"serve: initial convergence did not quiesce"};
    }
    obs::MetricsRegistry& reg = w.bed->metrics();
    ws.g_version = reg.gauge("serve.version");
    ws.g_epoch = reg.gauge("serve.published_epoch");
    ws.g_pending = reg.gauge("serve.retired_snapshots");
    ws.c_publishes = reg.counter("serve.publishes");
    ws.c_deferred = reg.counter("serve.publishes_deferred");
    ws.c_reclaimed = reg.counter("serve.reclaimed");

    try_publish(ws, w.t0);  // bin is empty: cannot defer
    t0_virtual_.store(w.t0, std::memory_order_release);
    {
      std::lock_guard<std::mutex> lock{ready_mutex_};
      ready_ = true;
    }
    ready_cv_.notify_all();

    arm_churn(spec_, seed_, w);
    const sim::Time step =
        std::max<sim::Time>(1, sim::sec_f(spec_.serve.publish_period_seconds));
    sim::Time now = w.t0;
    while (!stop_.load(std::memory_order_acquire) && now < w.t_end) {
      now = std::min<sim::Time>(now + step, w.t_end);
      w.bed->run_until(now);
      if (ws.any_dirty) try_publish(ws, now);
    }
    // Stamp the horizon state unconditionally (a clean republish is
    // cheap COW sharing): consumers see virtual_time reach the end of
    // the churn plan. Bounded retries before announcing done() so a
    // reader pinned across the horizon (descheduled mid-batch on a
    // loaded host) can't hold up completion indefinitely.
    for (int attempt = 0; attempt < 500; ++attempt) {
      if (stop_.load(std::memory_order_acquire)) break;
      if (try_publish(ws, now)) {
        horizon_published_.store(true, std::memory_order_release);
        break;
      }
      std::this_thread::sleep_for(std::chrono::microseconds(200));
    }
    done_.store(true, std::memory_order_release);
    // Park until stop(): keep reclaiming so a reader draining late
    // still lets retired snapshots go before destruction, and keep
    // retrying the horizon publish until the blocking pin clears
    // (deferral counters record every failed attempt).
    while (!stop_.load(std::memory_order_acquire)) {
      reclaim();
      if (!horizon_published_.load(std::memory_order_relaxed) &&
          try_publish(ws, now)) {
        horizon_published_.store(true, std::memory_order_release);
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    reclaim();
  } catch (const std::exception& e) {
    {
      std::lock_guard<std::mutex> lock{ready_mutex_};
      writer_error_ = e.what();
      ready_ = true;
    }
    ready_cv_.notify_all();
    done_.store(true, std::memory_order_release);
  }
}

ServiceStats RouteService::stats() const {
  ServiceStats s;
  s.publishes = publishes_.load(std::memory_order_relaxed);
  s.publishes_deferred = deferred_.load(std::memory_order_relaxed);
  s.reclaimed = reclaimed_.load(std::memory_order_relaxed);
  s.retired_pending = pending_.load(std::memory_order_relaxed);
  s.retired_peak = retired_peak_.load(std::memory_order_relaxed);
  s.version = version_.load(std::memory_order_relaxed);
  s.fingerprint = fingerprint_.load(std::memory_order_relaxed);
  s.virtual_time = virtual_time_.load(std::memory_order_relaxed);
  s.done = done_.load(std::memory_order_acquire);
  return s;
}

obs::Histogram RouteService::lookup_latency() const {
  std::lock_guard<std::mutex> lock{hist_mutex_};
  return lookup_hist_;
}

obs::Histogram RouteService::publish_latency() const {
  std::lock_guard<std::mutex> lock{hist_mutex_};
  return publish_hist_;
}

RouteService::Reader::Reader(RouteService& service)
    : service_(&service),
      slot_(service.epochs_.register_reader()),
      latency_(obs::latency_buckets_ns()) {}

RouteService::Reader::~Reader() {
  service_->epochs_.unregister_reader(slot_);
  {
    std::lock_guard<std::mutex> lock{service_->hist_mutex_};
    service_->lookup_hist_.merge(latency_);
  }
  service_->total_lookups_.fetch_add(lookups_, std::memory_order_relaxed);
}

BatchResult RouteService::Reader::lookup_batch(
    std::span<const LookupRequest> reqs, std::span<LookupResponse> resps) {
  assert(resps.size() >= reqs.size());
  BatchResult out;
  const std::uint64_t t_begin = now_ns();
  {
    PinGuard pin{*this};
    const RibSnapshot* snap = pin.get();
    if (snap == nullptr) {
      // Nothing published yet (a front-end client can query before the
      // writer's first publish): every request misses at version 0.
      for (std::size_t i = 0; i < reqs.size(); ++i) resps[i] = LookupResponse{};
      return out;
    }
    out.snapshot_version = snap->version;
    out.fingerprint = snap->fingerprint;
    for (std::size_t i = 0; i < reqs.size(); ++i) {
      LookupResponse& r = resps[i];
      r = LookupResponse{};
      r.snapshot_version = snap->version;
      r.fingerprint = snap->fingerprint;
      if (const auto hit = snap->lookup(reqs[i].router, reqs[i].addr)) {
        r.attrs_hash = hit->entry->attrs_hash;
        r.prefix = hit->prefix.address();
        r.prefix_len = hit->prefix.length();
        r.next_hop = hit->entry->next_hop;
        r.learned_from = hit->entry->learned_from;
        r.path_id = hit->entry->path_id;
        r.hit = 1;
        ++out.hits;
      }
    }
  }
  if (!reqs.empty()) {
    record(static_cast<double>(now_ns() - t_begin) /
               static_cast<double>(reqs.size()),
           reqs.size());
  }
  return out;
}

std::uint64_t batch_fingerprint_at(const runner::ScenarioSpec& spec0,
                                   std::uint64_t seed, sim::Time at) {
  runner::ScenarioSpec spec = spec0;
  spec.serve.enabled = true;
  bgp::AttrsInterner::TrialScope attrs_scope{spec.expected_attr_blocks()};
  World w = build_world(spec, seed, nullptr);
  if (!w.converged) {
    throw std::runtime_error{"batch_fingerprint_at: no quiescence"};
  }
  arm_churn(spec, seed, w);
  if (at > w.t0) w.bed->run_until(at);
  return fault::rib_fingerprint(*w.bed);
}

sim::Time batch_converged_time(const runner::ScenarioSpec& spec0,
                               std::uint64_t seed) {
  runner::ScenarioSpec spec = spec0;
  spec.serve.enabled = true;
  bgp::AttrsInterner::TrialScope attrs_scope{spec.expected_attr_blocks()};
  World w = build_world(spec, seed, nullptr);
  if (!w.converged) {
    throw std::runtime_error{"batch_converged_time: no quiescence"};
  }
  return w.t0;
}

ServeReport run_serve_trial(const runner::ScenarioSpec& spec,
                            std::uint64_t seed,
                            const ServeTrialOptions& opt) {
  ServeReport rep;
  const std::uint64_t wall0 = now_ns();

  RouteService service{spec, seed, opt.readers + 8};
  service.start();
  const sim::Time t0_virtual = service.converged_time();

  std::atomic<bool> readers_stop{false};
  std::vector<std::thread> threads;
  threads.reserve(opt.readers);
  for (std::size_t r = 0; r < opt.readers; ++r) {
    threads.emplace_back([&service, &readers_stop, &opt, r] {
      RouteService::Reader reader{service};
      // The probe universe (LPM index, router list) is shared across
      // every snapshot of a service, so requests are generated outside
      // the pin; one initial guard fetches the stable views.
      std::shared_ptr<const bgp::LpmIndex> index;
      std::vector<bgp::RouterId> routers;
      {
        const RouteService::Reader::PinGuard pin{reader};
        index = pin->index;
        routers = pin->router_ids;
      }
      // Deterministic probe walk biased to HIT: pick a universe prefix
      // by slot and scatter within its host bits (micro_bench idiom).
      std::uint32_t probe =
          0x9e3779b9u * (static_cast<std::uint32_t>(r) + 1) + 1;
      std::size_t router_i = r;
      std::vector<LookupRequest> reqs(opt.lookup_batch);
      std::vector<LookupResponse> resps(opt.lookup_batch);
      // do-while: even if the writer finished its whole horizon before
      // this thread got scheduled (1-CPU hosts), every reader performs
      // at least one batch against the final snapshot.
      do {
        const bgp::RouterId router = routers[router_i % routers.size()];
        for (LookupRequest& req : reqs) {
          probe = probe * 2654435761u + 12345;
          const bgp::Ipv4Prefix& p = index->prefix_at(probe % index->size());
          req.router = router;
          req.addr = p.first() | (probe & (p.last() - p.first()));
        }
        reader.lookup_batch(reqs, resps);
        ++router_i;
      } while (!readers_stop.load(std::memory_order_acquire));
    });
  }

  while (!service.done()) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  readers_stop.store(true, std::memory_order_release);
  for (std::thread& t : threads) t.join();
  // All trial readers have unpinned; the parked writer's horizon
  // publish now cannot defer. Bounded wait so the report's
  // virtual_time/fingerprint reflect the full churn plan even when a
  // reader sat pinned across the horizon on a loaded host.
  const auto horizon_deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (!service.horizon_published() &&
         std::chrono::steady_clock::now() < horizon_deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }

  const ServiceStats stats = service.stats();
  const obs::Histogram lookups = service.lookup_latency();
  const obs::Histogram publishes = service.publish_latency();
  const double wall_ns = static_cast<double>(now_ns() - wall0);

  rep.lookups = service.total_lookups();
  rep.lookups_per_sec =
      wall_ns > 0 ? static_cast<double>(rep.lookups) / (wall_ns / 1e9) : 0;
  rep.lookup_p50_ns = lookups.quantile(0.50);
  rep.lookup_p99_ns = lookups.quantile(0.99);
  rep.publish_p50_ns = publishes.quantile(0.50);
  rep.publish_p99_ns = publishes.quantile(0.99);
  rep.publishes = stats.publishes;
  rep.publishes_deferred = stats.publishes_deferred;
  rep.reclaimed = stats.reclaimed;
  rep.retired_peak = stats.retired_peak;
  rep.final_version = stats.version;
  rep.final_fingerprint = stats.fingerprint;
  rep.virtual_seconds = sim::to_seconds(stats.virtual_time - t0_virtual);
  rep.wall_ms = wall_ns / 1e6;
  rusage usage{};
  if (getrusage(RUSAGE_SELF, &usage) == 0) rep.peak_rss_kb = usage.ru_maxrss;

  service.stop();
  return rep;
}

}  // namespace abrr::serve
