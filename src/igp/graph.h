// Intra-AS IGP topology: weighted undirected graph over RouterIds.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "bgp/types.h"

namespace abrr::igp {

using bgp::RouterId;

/// IGP link metric. ISPs set these so intra-PoP < inter-PoP (§1).
using Metric = std::int64_t;

/// A weighted undirected graph of routers and IGP adjacencies.
class Graph {
 public:
  /// Adds a router; idempotent.
  void add_node(RouterId id);

  /// Adds (or tightens) an undirected link with the given metric (> 0).
  /// Parallel add_link calls keep the smaller metric.
  void add_link(RouterId a, RouterId b, Metric metric);

  /// Overwrites the metric of an existing link (> 0). Returns false if
  /// the link does not exist.
  bool set_metric(RouterId a, RouterId b, Metric metric);

  /// Removes a link (link failure). Returns false if it did not exist.
  bool remove_link(RouterId a, RouterId b);

  /// Metric of the direct link a-b, or kNoLink.
  Metric link_metric(RouterId a, RouterId b) const;

  static constexpr Metric kNoLink = -1;

  bool has_node(RouterId id) const { return adjacency_.count(id) != 0; }

  std::size_t node_count() const { return adjacency_.size(); }
  std::size_t link_count() const { return link_count_; }

  struct Edge {
    RouterId to;
    Metric metric;
  };

  /// Neighbors of `id` (empty for unknown routers).
  const std::vector<Edge>& neighbors(RouterId id) const;

  /// All router ids, in insertion order.
  const std::vector<RouterId>& nodes() const { return nodes_; }

 private:
  std::unordered_map<RouterId, std::vector<Edge>> adjacency_;
  std::vector<RouterId> nodes_;
  std::size_t link_count_ = 0;
};

}  // namespace abrr::igp
