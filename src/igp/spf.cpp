#include "igp/spf.h"

#include <queue>
#include <tuple>

namespace abrr::igp {

Metric SpfTree::distance_to(RouterId target) const {
  const auto it = distance.find(target);
  return it == distance.end() ? bgp::kIgpInfinity : it->second;
}

RouterId SpfTree::next_hop_to(RouterId target) const {
  const auto it = first_hop.find(target);
  return it == first_hop.end() ? bgp::kNoRouter : it->second;
}

SpfTree compute_spf(const Graph& graph, RouterId source) {
  SpfTree tree;
  tree.source = source;
  if (!graph.has_node(source)) return tree;

  // (distance, node, first hop); ties resolved toward lower node then
  // lower first hop for determinism.
  using Item = std::tuple<Metric, RouterId, RouterId>;
  std::priority_queue<Item, std::vector<Item>, std::greater<>> heap;
  heap.emplace(0, source, source);

  while (!heap.empty()) {
    const auto [dist, node, hop] = heap.top();
    heap.pop();
    const auto it = tree.distance.find(node);
    if (it != tree.distance.end()) {
      // Already settled; keep the lower first hop on exact ties so the
      // result does not depend on heap internals.
      if (it->second == dist && hop < tree.first_hop[node]) {
        tree.first_hop[node] = hop;
      }
      continue;
    }
    tree.distance.emplace(node, dist);
    tree.first_hop.emplace(node, hop);
    for (const Graph::Edge& edge : graph.neighbors(node)) {
      if (tree.distance.count(edge.to) != 0) continue;
      const RouterId next_first = node == source ? edge.to : hop;
      heap.emplace(dist + edge.metric, edge.to, next_first);
    }
  }
  return tree;
}

const SpfTree& SpfCache::tree(RouterId source) {
  const auto it = trees_.find(source);
  if (it != trees_.end()) return it->second;
  return trees_.emplace(source, compute_spf(*graph_, source)).first->second;
}

Metric SpfCache::distance(RouterId from, RouterId to) {
  return tree(from).distance_to(to);
}

RouterId SpfCache::next_hop(RouterId from, RouterId to) {
  return tree(from).next_hop_to(to);
}

bgp::IgpDistanceFn SpfCache::distance_fn(RouterId from) {
  return [this, from](RouterId next_hop) { return distance(from, next_hop); };
}

}  // namespace abrr::igp
