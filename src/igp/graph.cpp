#include "igp/graph.h"

#include <algorithm>
#include <stdexcept>

namespace abrr::igp {

void Graph::add_node(RouterId id) {
  if (adjacency_.emplace(id, std::vector<Edge>{}).second) {
    nodes_.push_back(id);
  }
}

void Graph::add_link(RouterId a, RouterId b, Metric metric) {
  if (metric <= 0) throw std::invalid_argument{"add_link: metric <= 0"};
  if (a == b) throw std::invalid_argument{"add_link: self loop"};
  add_node(a);
  add_node(b);
  const auto upsert = [&](RouterId from, RouterId to) {
    auto& edges = adjacency_[from];
    const auto it = std::find_if(edges.begin(), edges.end(),
                                 [&](const Edge& e) { return e.to == to; });
    if (it == edges.end()) {
      edges.push_back(Edge{to, metric});
      return true;
    }
    it->metric = std::min(it->metric, metric);
    return false;
  };
  if (upsert(a, b)) ++link_count_;
  upsert(b, a);
}

bool Graph::set_metric(RouterId a, RouterId b, Metric metric) {
  if (metric <= 0) throw std::invalid_argument{"set_metric: metric <= 0"};
  bool found = false;
  for (const auto [from, to] : {std::pair{a, b}, std::pair{b, a}}) {
    const auto it = adjacency_.find(from);
    if (it == adjacency_.end()) continue;
    for (Edge& e : it->second) {
      if (e.to == to) {
        e.metric = metric;
        found = true;
      }
    }
  }
  return found;
}

bool Graph::remove_link(RouterId a, RouterId b) {
  bool removed = false;
  for (const auto [from, to] : {std::pair{a, b}, std::pair{b, a}}) {
    const auto it = adjacency_.find(from);
    if (it == adjacency_.end()) continue;
    const auto before = it->second.size();
    std::erase_if(it->second, [&](const Edge& e) { return e.to == to; });
    removed = removed || it->second.size() != before;
  }
  if (removed) --link_count_;
  return removed;
}

Metric Graph::link_metric(RouterId a, RouterId b) const {
  const auto it = adjacency_.find(a);
  if (it == adjacency_.end()) return kNoLink;
  for (const Edge& e : it->second) {
    if (e.to == b) return e.metric;
  }
  return kNoLink;
}

const std::vector<Graph::Edge>& Graph::neighbors(RouterId id) const {
  static const std::vector<Edge> kEmpty;
  const auto it = adjacency_.find(id);
  return it == adjacency_.end() ? kEmpty : it->second;
}

}  // namespace abrr::igp
