// Shortest-path-first computation over the IGP graph.
#pragma once

#include <unordered_map>

#include "bgp/decision.h"
#include "igp/graph.h"

namespace abrr::igp {

/// Result of one Dijkstra run: distances and first hops from a source.
struct SpfTree {
  RouterId source = bgp::kNoRouter;
  /// Distance to each reachable router (absent = unreachable).
  std::unordered_map<RouterId, Metric> distance;
  /// First hop on the shortest path to each reachable router (the source
  /// maps to itself). Ties broken toward the lower neighbor id so the
  /// data-plane walk is deterministic.
  std::unordered_map<RouterId, RouterId> first_hop;

  /// Distance, or bgp::kIgpInfinity when unreachable.
  Metric distance_to(RouterId target) const;

  /// Next hop toward target, or kNoRouter when unreachable.
  RouterId next_hop_to(RouterId target) const;
};

/// Runs Dijkstra from `source`.
SpfTree compute_spf(const Graph& graph, RouterId source);

/// Caches one SpfTree per source, computed lazily; hands out
/// bgp::IgpDistanceFn oracles for the decision process.
class SpfCache {
 public:
  explicit SpfCache(const Graph& graph) : graph_(&graph) {}

  const SpfTree& tree(RouterId source);

  Metric distance(RouterId from, RouterId to);

  RouterId next_hop(RouterId from, RouterId to);

  /// Distance oracle bound to a vantage point, for decision step 6.
  bgp::IgpDistanceFn distance_fn(RouterId from);

  /// Drops all cached trees (call after mutating the graph).
  void invalidate() { trees_.clear(); }

 private:
  const Graph* graph_;
  std::unordered_map<RouterId, SpfTree> trees_;
};

}  // namespace abrr::igp
