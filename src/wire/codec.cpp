#include "wire/codec.h"

#include <algorithm>
#include <cstring>

namespace abrr::wire {
namespace {

// --- primitive big-endian I/O ----------------------------------------

void put8(std::vector<std::uint8_t>& out, std::uint8_t v) { out.push_back(v); }

void put16(std::vector<std::uint8_t>& out, std::uint16_t v) {
  out.push_back(static_cast<std::uint8_t>(v >> 8));
  out.push_back(static_cast<std::uint8_t>(v));
}

void put32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  out.push_back(static_cast<std::uint8_t>(v >> 24));
  out.push_back(static_cast<std::uint8_t>(v >> 16));
  out.push_back(static_cast<std::uint8_t>(v >> 8));
  out.push_back(static_cast<std::uint8_t>(v));
}

void put64(std::vector<std::uint8_t>& out, std::uint64_t v) {
  put32(out, static_cast<std::uint32_t>(v >> 32));
  put32(out, static_cast<std::uint32_t>(v));
}

/// Strict forward-only reader; every accessor is bounds-checked by the
/// caller via need().
struct Cursor {
  std::span<const std::uint8_t> in;
  std::size_t pos = 0;

  std::size_t left() const { return in.size() - pos; }
  bool need(std::size_t n) const { return left() >= n; }
  std::uint8_t u8() { return in[pos++]; }
  std::uint16_t u16() {
    const std::uint16_t v =
        static_cast<std::uint16_t>(in[pos] << 8 | in[pos + 1]);
    pos += 2;
    return v;
  }
  std::uint32_t u32() {
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i) v = v << 8 | in[pos + i];
    pos += 4;
    return v;
  }
  std::uint64_t u64() {
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i) v = v << 8 | in[pos + i];
    pos += 8;
    return v;
  }
};

// --- NLRI helpers -----------------------------------------------------

std::size_t prefix_bytes(std::uint8_t len) {
  return (static_cast<std::size_t>(len) + 7) / 8;
}

/// Wire length of one add-paths NLRI entry: path-id + length octet +
/// packed address bytes.
std::size_t nlri_size(const bgp::Ipv4Prefix& p) {
  return 4 + 1 + prefix_bytes(p.length());
}

void put_nlri(std::vector<std::uint8_t>& out, bgp::PathId id,
              const bgp::Ipv4Prefix& p) {
  put32(out, id);
  put8(out, p.length());
  const std::uint32_t addr = p.address();
  for (std::size_t i = 0; i < prefix_bytes(p.length()); ++i) {
    out.push_back(static_cast<std::uint8_t>(addr >> (24 - 8 * i)));
  }
}

/// Parses one add-paths NLRI entry; shared by the withdrawn-routes and
/// NLRI fields. `field` names the field for error reporting.
std::optional<DecodeError> get_nlri(Cursor& c, std::size_t field_end,
                                    PathEntry& out) {
  const std::size_t at = c.pos;
  if (field_end - c.pos < 5) {
    return DecodeError{ErrorCode::kUpdateMessage, kInvalidNetworkField, at,
                       "truncated (path-id, length) NLRI prelude"};
  }
  out.path_id = c.u32();
  const std::uint8_t plen = c.u8();
  if (plen > 32) {
    return DecodeError{ErrorCode::kUpdateMessage, kInvalidNetworkField,
                       c.pos - 1, "prefix length > 32"};
  }
  const std::size_t nbytes = prefix_bytes(plen);
  if (field_end - c.pos < nbytes) {
    return DecodeError{ErrorCode::kUpdateMessage, kInvalidNetworkField, c.pos,
                       "truncated prefix body"};
  }
  std::uint32_t addr = 0;
  for (std::size_t i = 0; i < nbytes; ++i) {
    addr |= static_cast<std::uint32_t>(c.u8()) << (24 - 8 * i);
  }
  // Host bits below the mask are tolerated and masked off (the prefix
  // class canonicalizes), mirroring liberal real-world receivers.
  out.prefix = bgp::Ipv4Prefix{addr, plen};
  return std::nullopt;
}

// --- attribute encoding ----------------------------------------------

// Flag octets (RFC 4271 §4.3): optional 0x80, transitive 0x40,
// partial 0x20, extended-length 0x10.
constexpr std::uint8_t kFlagOptional = 0x80;
constexpr std::uint8_t kFlagTransitive = 0x40;
constexpr std::uint8_t kFlagExtLen = 0x10;

void put_attr_header(std::vector<std::uint8_t>& out, std::uint8_t flags,
                     AttrType type, std::size_t len) {
  if (len > 255) {
    put8(out, flags | kFlagExtLen);
    put8(out, static_cast<std::uint8_t>(type));
    put16(out, static_cast<std::uint16_t>(len));
  } else {
    put8(out, flags);
    put8(out, static_cast<std::uint8_t>(type));
    put8(out, static_cast<std::uint8_t>(len));
  }
}

std::size_t attr_overhead(std::size_t value_len) {
  return value_len > 255 ? 4 : 3;
}

/// AS_PATH value length: one (type, count) prelude per 255-ASN segment,
/// 4 octets per ASN (RFC 6793 four-octet AS numbers). An empty path is
/// a zero-length value (locally originated iBGP route).
std::size_t as_path_value_size(const bgp::AsPath& path) {
  const std::size_t n = path.length();
  if (n == 0) return 0;
  const std::size_t segments = (n + 254) / 255;
  return 2 * segments + 4 * n;
}

void put_as_path(std::vector<std::uint8_t>& out, const bgp::AsPath& path) {
  const auto& asns = path.asns();
  std::size_t i = 0;
  while (i < asns.size()) {
    const std::size_t count = std::min<std::size_t>(255, asns.size() - i);
    put8(out, 2);  // AS_SEQUENCE
    put8(out, static_cast<std::uint8_t>(count));
    for (std::size_t k = 0; k < count; ++k) put32(out, asns[i + k]);
    i += count;
  }
}

}  // namespace

std::string DecodeError::to_string() const {
  std::string out = code == ErrorCode::kMessageHeader ? "header-error("
                                                      : "update-error(";
  out += std::to_string(subcode);
  out += ") at byte ";
  out += std::to_string(offset);
  out += ": ";
  out += detail;
  return out;
}

// --- encoder ----------------------------------------------------------

std::size_t Encoder::path_attrs_size(const bgp::PathAttrs& attrs) {
  std::size_t size = 0;
  size += 3 + 1;  // ORIGIN
  const std::size_t ap = as_path_value_size(attrs.as_path);
  size += attr_overhead(ap) + ap;  // AS_PATH
  size += 3 + 4;                   // NEXT_HOP
  if (attrs.med) size += 3 + 4;    // MULTI_EXIT_DISC
  size += 3 + 4;                   // LOCAL_PREF (always present on iBGP)
  if (!attrs.communities.empty()) {
    const std::size_t v = 4 * attrs.communities.size();
    size += attr_overhead(v) + v;
  }
  if (attrs.originator_id) size += 3 + 4;
  if (!attrs.cluster_list.empty()) {
    const std::size_t v = 4 * attrs.cluster_list.size();
    size += attr_overhead(v) + v;
  }
  if (!attrs.ext_communities.empty()) {
    const std::size_t v = 8 * attrs.ext_communities.size();
    size += attr_overhead(v) + v;
  }
  return size;
}

void Encoder::append_path_attrs(const bgp::PathAttrs& attrs,
                                std::vector<std::uint8_t>& out) {
  // Canonical ascending type-code order.
  put_attr_header(out, kFlagTransitive, AttrType::kOrigin, 1);
  put8(out, static_cast<std::uint8_t>(attrs.origin));

  put_attr_header(out, kFlagTransitive, AttrType::kAsPath,
                  as_path_value_size(attrs.as_path));
  put_as_path(out, attrs.as_path);

  put_attr_header(out, kFlagTransitive, AttrType::kNextHop, 4);
  put32(out, attrs.next_hop);

  if (attrs.med) {
    put_attr_header(out, kFlagOptional, AttrType::kMed, 4);
    put32(out, *attrs.med);
  }

  put_attr_header(out, kFlagTransitive, AttrType::kLocalPref, 4);
  put32(out, attrs.local_pref);

  if (!attrs.communities.empty()) {
    put_attr_header(out, kFlagOptional | kFlagTransitive,
                    AttrType::kCommunities, 4 * attrs.communities.size());
    for (const bgp::Community c : attrs.communities) put32(out, c);
  }

  if (attrs.originator_id) {
    put_attr_header(out, kFlagOptional, AttrType::kOriginatorId, 4);
    put32(out, *attrs.originator_id);
  }

  if (!attrs.cluster_list.empty()) {
    put_attr_header(out, kFlagOptional, AttrType::kClusterList,
                    4 * attrs.cluster_list.size());
    for (const std::uint32_t id : attrs.cluster_list) put32(out, id);
  }

  if (!attrs.ext_communities.empty()) {
    put_attr_header(out, kFlagOptional | kFlagTransitive,
                    AttrType::kExtCommunities,
                    8 * attrs.ext_communities.size());
    for (const bgp::ExtCommunity c : attrs.ext_communities) put64(out, c);
  }
}

namespace {

/// Opens a message: writes marker + length placeholder + type, returns
/// the offset of the message start for the later length patch.
std::size_t begin_message(std::vector<std::uint8_t>& out, std::uint8_t type) {
  const std::size_t start = out.size();
  out.insert(out.end(), 16, 0xFF);
  put16(out, 0);  // patched by end_message
  put8(out, type);
  return start;
}

void end_message(std::vector<std::uint8_t>& out, std::size_t start) {
  const std::size_t len = out.size() - start;
  out[start + 16] = static_cast<std::uint8_t>(len >> 8);
  out[start + 17] = static_cast<std::uint8_t>(len);
}

}  // namespace

std::span<const std::uint8_t> Encoder::encode(const bgp::UpdateMessage& msg) {
  buf_.clear();
  if (msg.keepalive) {
    const std::size_t start = begin_message(buf_, kTypeKeepalive);
    end_message(buf_, start);
    return buf_;
  }

  // Withdrawn routes ride in their own leading withdraw-only UPDATE(s):
  // mixing them into an announcing message is equally legal wire but
  // would entangle the two 4096-byte split computations.
  const bool withdraw_all = msg.full_set && msg.announce.empty();
  const std::size_t n_withdraw =
      msg.full_set ? (withdraw_all ? 1 : 0) : msg.withdraw.size();
  std::size_t w = 0;
  while (w < n_withdraw) {
    const std::size_t start = begin_message(buf_, kTypeUpdate);
    const std::size_t wlen_at = buf_.size();
    put16(buf_, 0);  // withdrawn routes length, patched below
    std::size_t used = kHeaderSize + 2 + 2;
    while (w < n_withdraw) {
      const std::size_t entry = nlri_size(msg.prefix);
      if (used + entry > kMaxMessageSize) break;
      put_nlri(buf_, withdraw_all ? 0 : msg.withdraw[w], msg.prefix);
      used += entry;
      ++w;
    }
    const std::size_t wlen = buf_.size() - wlen_at - 2;
    buf_[wlen_at] = static_cast<std::uint8_t>(wlen >> 8);
    buf_[wlen_at + 1] = static_cast<std::uint8_t>(wlen);
    put16(buf_, 0);  // total path attribute length
    end_message(buf_, start);
  }

  // Group announced routes by attribute block, first-seen order. With
  // interned attributes this is a pointer compare; announce sets are
  // small (≈ best-route fan-in), so the quadratic scan beats hashing.
  order_.clear();
  for (std::uint32_t i = 0; i < msg.announce.size(); ++i) {
    bool seen = false;
    for (const std::uint32_t j : order_) {
      if (msg.announce[j].attrs == msg.announce[i].attrs) {
        seen = true;
        break;
      }
    }
    if (!seen) order_.push_back(i);
  }

  for (const std::uint32_t g : order_) {
    const bgp::AttrsPtr attrs = msg.announce[g].attrs;
    const std::size_t alen = path_attrs_size(*attrs);
    std::size_t i = g;  // first member of the group
    while (i < msg.announce.size()) {
      const std::size_t start = begin_message(buf_, kTypeUpdate);
      put16(buf_, 0);  // no withdrawn routes
      put16(buf_, static_cast<std::uint16_t>(alen));
      append_path_attrs(*attrs, buf_);
      std::size_t used = kHeaderSize + 2 + 2 + alen;
      bool wrote = false;
      for (; i < msg.announce.size(); ++i) {
        const bgp::Route& r = msg.announce[i];
        if (r.attrs != attrs) continue;
        const std::size_t entry = nlri_size(msg.prefix);
        if (wrote && used + entry > kMaxMessageSize) break;
        put_nlri(buf_, r.path_id, msg.prefix);
        used += entry;
        wrote = true;
      }
      end_message(buf_, start);
      // Find the next unwritten member (i stopped at a split point or
      // the end; members before i are all written).
    }
  }

  if (buf_.empty()) {
    // Degenerate model message (nothing announced or withdrawn): the
    // closest wire form is an empty UPDATE (the End-of-RIB marker).
    const std::size_t start = begin_message(buf_, kTypeUpdate);
    put16(buf_, 0);
    put16(buf_, 0);
    end_message(buf_, start);
  }
  return buf_;
}

// --- exact size accounting --------------------------------------------

std::size_t WireSizer::attrs_size(bgp::AttrsPtr attrs) {
  const auto it = cache_.find(attrs);
  if (it != cache_.end()) return it->second;
  const std::size_t size = Encoder::path_attrs_size(*attrs);
  cache_.emplace(attrs, static_cast<std::uint32_t>(size));
  return size;
}

std::uint64_t WireSizer::message_size(const bgp::UpdateMessage& msg) {
  if (msg.keepalive) return kHeaderSize;

  std::uint64_t total = 0;
  const std::size_t entry = nlri_size(msg.prefix);

  // Withdraw-only leading message train (mirrors Encoder::encode).
  const bool withdraw_all = msg.full_set && msg.announce.empty();
  std::size_t n_withdraw =
      msg.full_set ? (withdraw_all ? 1 : 0) : msg.withdraw.size();
  while (n_withdraw > 0) {
    const std::size_t fit = (kMaxMessageSize - kHeaderSize - 4) / entry;
    const std::size_t take = std::min(n_withdraw, std::max<std::size_t>(fit, 1));
    total += kHeaderSize + 4 + take * entry;
    n_withdraw -= take;
  }

  // Announce groups, first-seen order.
  order_.clear();
  for (const bgp::Route& r : msg.announce) {
    if (std::find(order_.begin(), order_.end(), r.attrs) == order_.end()) {
      order_.push_back(r.attrs);
    }
  }
  for (const bgp::AttrsPtr attrs : order_) {
    const std::size_t alen = attrs_size(attrs);
    std::size_t members = 0;
    for (const bgp::Route& r : msg.announce) {
      if (r.attrs == attrs) ++members;
    }
    const std::size_t base = kHeaderSize + 4 + alen;
    std::size_t fit = base < kMaxMessageSize
                          ? (kMaxMessageSize - base) / entry
                          : 0;
    fit = std::max<std::size_t>(fit, 1);  // encoder always writes one
    while (members > 0) {
      const std::size_t take = std::min(members, fit);
      total += base + take * entry;
      members -= take;
    }
  }

  if (total == 0) total = kHeaderSize + 4;  // empty UPDATE (End-of-RIB)
  return total;
}

// --- decoder ----------------------------------------------------------

namespace {

std::optional<DecodeError> parse_entries(Cursor& c, std::size_t field_end,
                                         std::vector<PathEntry>& out) {
  while (c.pos < field_end) {
    PathEntry e;
    if (auto err = get_nlri(c, field_end, e)) return err;
    out.push_back(e);
  }
  return std::nullopt;
}

struct AttrSpec {
  std::uint8_t type;
  bool optional_;
  bool transitive;
};

/// Expected flag classes for the attribute types we model.
constexpr AttrSpec kKnownAttrs[] = {
    {1, false, true},   // ORIGIN
    {2, false, true},   // AS_PATH
    {3, false, true},   // NEXT_HOP
    {4, true, false},   // MED
    {5, false, true},   // LOCAL_PREF
    {8, true, true},    // COMMUNITIES
    {9, true, false},   // ORIGINATOR_ID
    {10, true, false},  // CLUSTER_LIST
    {16, true, true},   // EXT_COMMUNITIES
};

const AttrSpec* find_spec(std::uint8_t type) {
  for (const AttrSpec& s : kKnownAttrs) {
    if (s.type == type) return &s;
  }
  return nullptr;
}

std::optional<DecodeError> parse_as_path(std::span<const std::uint8_t> value,
                                         std::size_t base_offset,
                                         bgp::PathAttrs& out) {
  std::vector<bgp::Asn> asns;
  Cursor c{value};
  while (c.left() > 0) {
    if (!c.need(2)) {
      return DecodeError{ErrorCode::kUpdateMessage, kMalformedAsPath,
                         base_offset + c.pos, "truncated segment header"};
    }
    const std::uint8_t seg_type = c.u8();
    const std::uint8_t count = c.u8();
    if (seg_type != 1 && seg_type != 2) {
      return DecodeError{ErrorCode::kUpdateMessage, kMalformedAsPath,
                         base_offset + c.pos - 2, "bad segment type"};
    }
    if (count == 0) {
      return DecodeError{ErrorCode::kUpdateMessage, kMalformedAsPath,
                         base_offset + c.pos - 1, "empty segment"};
    }
    if (!c.need(4u * count)) {
      return DecodeError{ErrorCode::kUpdateMessage, kMalformedAsPath,
                         base_offset + c.pos, "segment overruns value"};
    }
    // AS_SETs (type 1, from aggregation) are outside the model; their
    // members are folded into the sequence so the parser stays total.
    for (std::uint8_t i = 0; i < count; ++i) asns.push_back(c.u32());
  }
  out.as_path = bgp::AsPath{std::move(asns)};
  return std::nullopt;
}

}  // namespace

std::optional<DecodeError> decode_path_attrs(std::span<const std::uint8_t> in,
                                             bgp::PathAttrs& out,
                                             bool require_mandatory) {
  out = bgp::PathAttrs{};
  out.local_pref = bgp::kDefaultLocalPref;
  bool seen[256] = {};
  Cursor c{in};
  while (c.left() > 0) {
    const std::size_t attr_at = c.pos;
    if (!c.need(3)) {
      return DecodeError{ErrorCode::kUpdateMessage, kMalformedAttributeList,
                         attr_at, "truncated attribute header"};
    }
    const std::uint8_t flags = c.u8();
    const std::uint8_t type = c.u8();
    std::size_t len;
    if (flags & kFlagExtLen) {
      if (!c.need(2)) {
        return DecodeError{ErrorCode::kUpdateMessage, kAttributeLengthError,
                           c.pos, "truncated extended length"};
      }
      len = c.u16();
    } else {
      len = c.u8();
    }
    if (!c.need(len)) {
      return DecodeError{ErrorCode::kUpdateMessage, kAttributeLengthError,
                         attr_at, "attribute value overruns the list"};
    }
    if (seen[type]) {
      return DecodeError{ErrorCode::kUpdateMessage, kMalformedAttributeList,
                         attr_at, "duplicate attribute"};
    }
    seen[type] = true;

    const AttrSpec* spec = find_spec(type);
    if (spec == nullptr) {
      if (!(flags & kFlagOptional)) {
        return DecodeError{ErrorCode::kUpdateMessage,
                           kUnrecognizedWellKnownAttribute, attr_at,
                           "unknown well-known attribute"};
      }
      c.pos += len;  // unknown optional: skip (transit not modeled)
      continue;
    }
    if (static_cast<bool>(flags & kFlagOptional) != spec->optional_ ||
        static_cast<bool>(flags & kFlagTransitive) != spec->transitive) {
      return DecodeError{ErrorCode::kUpdateMessage, kAttributeFlagsError,
                         attr_at, "flags disagree with attribute class"};
    }

    const std::span<const std::uint8_t> value = in.subspan(c.pos, len);
    const std::size_t value_at = c.pos;
    Cursor v{value};
    switch (static_cast<AttrType>(type)) {
      case AttrType::kOrigin: {
        if (len != 1) {
          return DecodeError{ErrorCode::kUpdateMessage, kAttributeLengthError,
                             value_at, "ORIGIN length != 1"};
        }
        const std::uint8_t o = v.u8();
        if (o > 2) {
          return DecodeError{ErrorCode::kUpdateMessage, kInvalidOrigin,
                             value_at, "ORIGIN value > 2"};
        }
        out.origin = static_cast<bgp::Origin>(o);
        break;
      }
      case AttrType::kAsPath: {
        if (auto err = parse_as_path(value, value_at, out)) return err;
        break;
      }
      case AttrType::kNextHop: {
        if (len != 4) {
          return DecodeError{ErrorCode::kUpdateMessage, kAttributeLengthError,
                             value_at, "NEXT_HOP length != 4"};
        }
        const std::uint32_t nh = v.u32();
        if (nh == 0 || nh == 0xFFFFFFFFu) {
          return DecodeError{ErrorCode::kUpdateMessage, kInvalidNextHop,
                             value_at, "NEXT_HOP is 0.0.0.0 or broadcast"};
        }
        out.next_hop = nh;
        break;
      }
      case AttrType::kMed: {
        if (len != 4) {
          return DecodeError{ErrorCode::kUpdateMessage, kAttributeLengthError,
                             value_at, "MED length != 4"};
        }
        out.med = v.u32();
        break;
      }
      case AttrType::kLocalPref: {
        if (len != 4) {
          return DecodeError{ErrorCode::kUpdateMessage, kAttributeLengthError,
                             value_at, "LOCAL_PREF length != 4"};
        }
        out.local_pref = v.u32();
        break;
      }
      case AttrType::kCommunities: {
        if (len == 0 || len % 4 != 0) {
          return DecodeError{ErrorCode::kUpdateMessage,
                             kOptionalAttributeError, value_at,
                             "COMMUNITIES length not a positive multiple of 4"};
        }
        for (std::size_t i = 0; i < len / 4; ++i) {
          out.communities.push_back(v.u32());
        }
        break;
      }
      case AttrType::kOriginatorId: {
        if (len != 4) {
          return DecodeError{ErrorCode::kUpdateMessage, kAttributeLengthError,
                             value_at, "ORIGINATOR_ID length != 4"};
        }
        out.originator_id = v.u32();
        break;
      }
      case AttrType::kClusterList: {
        if (len == 0 || len % 4 != 0) {
          return DecodeError{ErrorCode::kUpdateMessage, kAttributeLengthError,
                             value_at,
                             "CLUSTER_LIST length not a positive multiple of 4"};
        }
        for (std::size_t i = 0; i < len / 4; ++i) {
          out.cluster_list.push_back(v.u32());
        }
        break;
      }
      case AttrType::kExtCommunities: {
        if (len == 0 || len % 8 != 0) {
          return DecodeError{
              ErrorCode::kUpdateMessage, kOptionalAttributeError, value_at,
              "EXTENDED COMMUNITIES length not a positive multiple of 8"};
        }
        for (std::size_t i = 0; i < len / 8; ++i) {
          out.ext_communities.push_back(v.u64());
        }
        break;
      }
    }
    c.pos = value_at + len;
  }

  if (require_mandatory && (!seen[1] || !seen[2] || !seen[3])) {
    return DecodeError{ErrorCode::kUpdateMessage, kMissingWellKnownAttribute,
                       in.size(), "missing ORIGIN, AS_PATH or NEXT_HOP"};
  }
  return std::nullopt;
}

std::optional<DecodeError> decode_message(std::span<const std::uint8_t> in,
                                          DecodedUpdate& out,
                                          std::size_t& consumed) {
  out = DecodedUpdate{};
  if (in.size() < kHeaderSize) {
    return DecodeError{ErrorCode::kMessageHeader, kBadMessageLength,
                       in.size(), "truncated message header"};
  }
  for (std::size_t i = 0; i < 16; ++i) {
    if (in[i] != 0xFF) {
      return DecodeError{ErrorCode::kMessageHeader,
                         kConnectionNotSynchronized, i,
                         "marker octet is not 0xFF"};
    }
  }
  const std::size_t len =
      static_cast<std::size_t>(in[16]) << 8 | static_cast<std::size_t>(in[17]);
  if (len < kHeaderSize || len > kMaxMessageSize) {
    return DecodeError{ErrorCode::kMessageHeader, kBadMessageLength, 16,
                       "length outside [19, 4096]"};
  }
  if (len > in.size()) {
    return DecodeError{ErrorCode::kMessageHeader, kBadMessageLength, 16,
                       "length exceeds available bytes"};
  }
  const std::uint8_t type = in[18];
  out.type = type;
  consumed = len;

  if (type == kTypeKeepalive) {
    if (len != kHeaderSize) {
      return DecodeError{ErrorCode::kMessageHeader, kBadMessageLength, 16,
                         "KEEPALIVE with a body"};
    }
    return std::nullopt;
  }
  // The simulator's wire carries only UPDATE and KEEPALIVE; OPEN and
  // NOTIFICATION (types 1/3) are as unexpected here as garbage.
  if (type != kTypeUpdate) {
    return DecodeError{ErrorCode::kMessageHeader, kBadMessageType, 18,
                       "not an UPDATE or KEEPALIVE"};
  }

  Cursor c{in.first(len)};
  c.pos = kHeaderSize;
  if (!c.need(2)) {
    return DecodeError{ErrorCode::kUpdateMessage, kMalformedAttributeList,
                       c.pos, "missing withdrawn-routes length"};
  }
  const std::size_t wlen = c.u16();
  if (!c.need(wlen)) {
    return DecodeError{ErrorCode::kUpdateMessage, kMalformedAttributeList,
                       c.pos - 2, "withdrawn routes overrun the message"};
  }
  if (auto err = parse_entries(c, c.pos + wlen, out.withdrawn)) return err;

  if (!c.need(2)) {
    return DecodeError{ErrorCode::kUpdateMessage, kMalformedAttributeList,
                       c.pos, "missing total-path-attribute length"};
  }
  const std::size_t alen = c.u16();
  if (!c.need(alen)) {
    return DecodeError{ErrorCode::kUpdateMessage, kMalformedAttributeList,
                       c.pos - 2, "path attributes overrun the message"};
  }
  const std::size_t attrs_at = c.pos;
  const std::size_t nlri_at = attrs_at + alen;
  const bool has_nlri = nlri_at < len;

  if (alen > 0) {
    if (auto err = decode_path_attrs(in.subspan(attrs_at, alen), out.attrs,
                                     /*require_mandatory=*/has_nlri)) {
      err->offset += attrs_at;
      return err;
    }
    out.has_attrs = true;
  } else if (has_nlri) {
    return DecodeError{ErrorCode::kUpdateMessage,
                       kMissingWellKnownAttribute, attrs_at,
                       "NLRI present but no path attributes"};
  }

  c.pos = nlri_at;
  if (auto err = parse_entries(c, len, out.nlri)) return err;
  return std::nullopt;
}

std::optional<DecodeError> decode_all(std::span<const std::uint8_t> in,
                                      std::vector<DecodedUpdate>& out) {
  std::size_t pos = 0;
  while (pos < in.size()) {
    DecodedUpdate msg;
    std::size_t consumed = 0;
    if (auto err = decode_message(in.subspan(pos), msg, consumed)) {
      err->offset += pos;
      return err;
    }
    out.push_back(std::move(msg));
    pos += consumed;
  }
  return std::nullopt;
}

bgp::UpdateMessage reassemble(const std::vector<DecodedUpdate>& msgs) {
  bgp::UpdateMessage out;
  if (msgs.size() == 1 && msgs.front().type == kTypeKeepalive) {
    out.keepalive = true;
    return out;
  }
  bool have_prefix = false;
  bool withdraw_all = false;
  for (const DecodedUpdate& m : msgs) {
    for (const PathEntry& e : m.withdrawn) {
      if (!have_prefix) {
        out.prefix = e.prefix;
        have_prefix = true;
      }
      if (e.path_id == 0) {
        withdraw_all = true;  // the encoder's "whole set gone" sentinel
      } else {
        out.withdraw.push_back(e.path_id);
      }
    }
    for (const PathEntry& e : m.nlri) {
      if (!have_prefix) {
        out.prefix = e.prefix;
        have_prefix = true;
      }
      bgp::Route r;
      r.prefix = e.prefix;
      r.path_id = e.path_id;
      r.attrs = bgp::make_attrs(m.attrs);
      out.announce.push_back(std::move(r));
    }
  }
  // full_set is replacement semantics above the wire; reconstruct it
  // the way the encoder maps it out (announcing trains and the
  // withdraw-all sentinel are full_set, explicit id withdraws are not).
  out.full_set = withdraw_all || (!out.announce.empty() && out.withdraw.empty());
  return out;
}

}  // namespace abrr::wire
