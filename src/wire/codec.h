// Wire-faithful BGP message codec: RFC 4271 UPDATE/KEEPALIVE framing
// with RFC 7911 add-paths (path-ID-tagged) prefixes.
//
// The simulator's UpdateMessage is a model-level object: one prefix,
// several announced routes (possibly with DIFFERENT attribute blocks)
// and replacement (`full_set`) semantics. A real BGP UPDATE carries
// exactly one path-attribute block, so the encoder maps one
// UpdateMessage onto a *train* of wire messages:
//
//   - KEEPALIVE            -> one 19-byte KEEPALIVE.
//   - announced routes     -> grouped by attribute block (first-seen
//     order; interned blocks make the grouping a pointer compare), one
//     UPDATE per group carrying the block once plus the group's
//     (path-id, prefix) NLRIs; a group whose NLRIs would push the
//     message past the 4096-byte RFC limit is split across UPDATEs.
//   - withdraw path-ids    -> WITHDRAWN ROUTES of the first UPDATE.
//   - full_set with no announced routes ("prefix gone") -> one
//     withdraw-only UPDATE carrying path-id 0. The model's sender keeps
//     no per-peer path-id state, so the explicit per-id withdraws a
//     real speaker would emit are represented by this single sentinel
//     entry; the byte cost is therefore a (documented) lower bound for
//     that rare message class.
//
// The decoder is the adversarial half: a strict, bounds-checked parser
// that never reads past its span and returns structured RFC 4271 §6.1 /
// §6.3 error (code, subcode, offset) triples instead of crashing —
// it is the fuzz target (tests/wire/fuzz_decode.cpp) and is reused by
// trace/mrt.cpp so the repo has exactly one path-attribute parser.
//
// Attribute coverage: ORIGIN, AS_PATH (4-octet ASNs, AS_SEQUENCE /
// AS_SET segments), NEXT_HOP, MULTI_EXIT_DISC, LOCAL_PREF, COMMUNITIES,
// ORIGINATOR_ID, CLUSTER_LIST and EXTENDED COMMUNITIES — everything
// PathAttrs models. Unknown optional attributes are skipped (transit
// semantics are out of scope); unknown well-known attributes are
// errors, per RFC 4271.
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include "bgp/attributes.h"
#include "bgp/prefix.h"
#include "bgp/update.h"

namespace abrr::wire {

// --- wire constants ---------------------------------------------------

inline constexpr std::size_t kHeaderSize = 19;       // marker+length+type
inline constexpr std::size_t kMaxMessageSize = 4096; // RFC 4271 §4.1
inline constexpr std::uint8_t kTypeUpdate = 2;
inline constexpr std::uint8_t kTypeKeepalive = 4;

/// Path attribute type codes (RFC 4271 §5.1, RFC 1997, RFC 4360,
/// RFC 4456).
enum class AttrType : std::uint8_t {
  kOrigin = 1,
  kAsPath = 2,
  kNextHop = 3,
  kMed = 4,
  kLocalPref = 5,
  kCommunities = 8,
  kOriginatorId = 9,
  kClusterList = 10,
  kExtCommunities = 16,
};

// --- structured decode errors ----------------------------------------

/// NOTIFICATION error code the failure would be reported under.
enum class ErrorCode : std::uint8_t {
  kMessageHeader = 1,  // RFC 4271 §6.1
  kUpdateMessage = 3,  // RFC 4271 §6.3
};

// §6.1 Message Header Error subcodes.
inline constexpr std::uint8_t kConnectionNotSynchronized = 1;
inline constexpr std::uint8_t kBadMessageLength = 2;
inline constexpr std::uint8_t kBadMessageType = 3;

// §6.3 UPDATE Message Error subcodes.
inline constexpr std::uint8_t kMalformedAttributeList = 1;
inline constexpr std::uint8_t kUnrecognizedWellKnownAttribute = 2;
inline constexpr std::uint8_t kMissingWellKnownAttribute = 3;
inline constexpr std::uint8_t kAttributeFlagsError = 4;
inline constexpr std::uint8_t kAttributeLengthError = 5;
inline constexpr std::uint8_t kInvalidOrigin = 6;
inline constexpr std::uint8_t kInvalidNextHop = 8;
inline constexpr std::uint8_t kOptionalAttributeError = 9;
inline constexpr std::uint8_t kInvalidNetworkField = 10;
inline constexpr std::uint8_t kMalformedAsPath = 11;

/// One structured parse failure: what a conforming speaker would put in
/// its NOTIFICATION, plus where in the input it tripped.
struct DecodeError {
  ErrorCode code = ErrorCode::kMessageHeader;
  std::uint8_t subcode = 0;
  std::size_t offset = 0;      // byte offset into the decoded buffer
  const char* detail = "";     // static human-readable context

  std::string to_string() const;
};

// --- decoded form -----------------------------------------------------

/// One add-paths (path-id, prefix) tuple (RFC 7911 §3).
struct PathEntry {
  bgp::PathId path_id = 0;
  bgp::Ipv4Prefix prefix;

  friend bool operator==(const PathEntry&, const PathEntry&) = default;
};

/// One parsed wire message.
struct DecodedUpdate {
  std::uint8_t type = kTypeUpdate;
  std::vector<PathEntry> withdrawn;
  /// Decoded attribute block (by value, NOT interned: the decoder must
  /// not touch shared state — it runs under the fuzzer).
  bgp::PathAttrs attrs;
  /// True when the message carried a non-empty attribute block.
  bool has_attrs = false;
  std::vector<PathEntry> nlri;
};

/// Decodes the single message at the front of `in`. On success fills
/// `out`, sets `consumed` to the message's wire length and returns
/// nullopt; on failure returns the error (out/consumed unspecified).
std::optional<DecodeError> decode_message(std::span<const std::uint8_t> in,
                                          DecodedUpdate& out,
                                          std::size_t& consumed);

/// Decodes a buffer of back-to-back messages (the encoder's output
/// form). Appends to `out`; stops at the first error.
std::optional<DecodeError> decode_all(std::span<const std::uint8_t> in,
                                      std::vector<DecodedUpdate>& out);

/// Parses exactly `in` as a path-attribute list (the UPDATE's "Path
/// Attributes" field). `require_mandatory` additionally enforces the
/// §6.3 missing-well-known check (ORIGIN, AS_PATH, NEXT_HOP) that
/// applies when the enclosing UPDATE announces NLRI. Shared with
/// trace/mrt.cpp so attribute parsing exists exactly once.
std::optional<DecodeError> decode_path_attrs(std::span<const std::uint8_t> in,
                                             bgp::PathAttrs& out,
                                             bool require_mandatory);

/// Folds a decoded message train (one Encoder::encode() output) back
/// into the model message. Announced routes get interned attribute
/// blocks via make_attrs(); the prefix is taken from the first NLRI or
/// withdrawn entry. Inverse of Encoder::encode up to the documented
/// full_set mapping.
bgp::UpdateMessage reassemble(const std::vector<DecodedUpdate>& msgs);

// --- encoder ----------------------------------------------------------

/// Serializer with a reused scratch buffer: after the first few
/// messages warm it up, encoding allocates nothing (the buffer and the
/// grouping scratch are retained across calls, trial-arena style). One
/// instance per Network / per trial; not thread-safe.
class Encoder {
 public:
  /// Encodes `msg` as its wire-message train. The returned view aliases
  /// the internal scratch buffer and is valid until the next encode().
  std::span<const std::uint8_t> encode(const bgp::UpdateMessage& msg);

  /// Appends the RFC 4271 encoding of one path-attribute block
  /// (attribute list only, no message framing) to `out`.
  static void append_path_attrs(const bgp::PathAttrs& attrs,
                                std::vector<std::uint8_t>& out);

  /// Exact length append_path_attrs() would produce, without encoding.
  static std::size_t path_attrs_size(const bgp::PathAttrs& attrs);

 private:
  std::vector<std::uint8_t> buf_;
  // encode() scratch: announced-route indices grouped by attrs block.
  std::vector<std::uint32_t> order_;
};

// --- exact size accounting --------------------------------------------

/// Exact encoded size of model messages, without encoding them.
///
/// Attribute-block lengths are cached per interned `AttrsPtr` — an ARR
/// reflecting one block to hundreds of clients computes its length
/// once, so Network::send's byte accounting is O(#routes) pointer
/// lookups after the first encounter. The cache is owned per Network
/// (one per trial): pointers can never dangle across an interner reset
/// because the Network dies with its trial.
class WireSizer {
 public:
  /// Exact total wire length of the message train encode() would emit.
  std::uint64_t message_size(const bgp::UpdateMessage& msg);

  /// Cached exact length of one attribute block.
  std::size_t attrs_size(bgp::AttrsPtr attrs);

  std::size_t cached_blocks() const { return cache_.size(); }

 private:
  std::unordered_map<const bgp::PathAttrs*, std::uint32_t> cache_;
  std::vector<const bgp::PathAttrs*> order_;  // message_size() scratch
};

}  // namespace abrr::wire
