#include "bgp/update.h"

namespace abrr::bgp {

std::size_t UpdateMessage::wire_size() const {
  std::size_t size = 19;  // marker + length + type
  if (keepalive) return size;  // KEEPALIVE is a bare header
  for (const Route& r : announce) {
    size += 4 + 5;  // path id + NLRI (1 length byte + 4 address bytes)
    if (r.attrs) size += r.attrs->wire_size();
  }
  size += (4 + 5) * withdraw.size();
  return size;
}

std::string UpdateMessage::to_string() const {
  if (keepalive) return "KEEPALIVE";
  std::string out = prefix.to_string();
  out += full_set ? " SET{" : " ANN{";
  for (const Route& r : announce) {
    out += ' ' + std::to_string(r.path_id);
  }
  out += " }";
  if (!withdraw.empty()) {
    out += " WD{";
    for (const PathId id : withdraw) out += ' ' + std::to_string(id);
    out += " }";
  }
  return out;
}

}  // namespace abrr::bgp
