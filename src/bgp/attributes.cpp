#include "bgp/attributes.h"

#include <algorithm>

#include "bgp/attrs_intern.h"

namespace abrr::bgp {

bool PathAttrs::has_ext_community(ExtCommunity c) const {
  return std::find(ext_communities.begin(), ext_communities.end(), c) !=
         ext_communities.end();
}

std::size_t PathAttrs::wire_size() const {
  // Per-attribute estimate: 3-byte attribute header plus the value.
  std::size_t size = 0;
  size += 3 + 1;                      // ORIGIN
  size += 3 + as_path.wire_size();    // AS_PATH
  size += 3 + 4;                      // NEXT_HOP
  size += 3 + 4;                      // LOCAL_PREF
  if (med) size += 3 + 4;             // MULTI_EXIT_DISC
  if (!communities.empty()) size += 3 + 4 * communities.size();
  if (!ext_communities.empty()) size += 3 + 8 * ext_communities.size();
  if (originator_id) size += 3 + 4;
  if (!cluster_list.empty()) size += 3 + 4 * cluster_list.size();
  return size;
}

AttrsPtr make_attrs(PathAttrs attrs) {
  // Unconditional recompute: callers routinely clone-and-mutate (see
  // with_attrs), which would otherwise carry a stale cached hash.
  attrs.content_hash = attrs_content_hash(attrs);
  return AttrsInterner::global().intern(std::move(attrs));
}

}  // namespace abrr::bgp
