// BGP UPDATE message model.
//
// One message carries the reachability change for a single prefix, with
// add-paths (draft-ietf-idr-add-paths) identifiers so that several routes
// for the prefix can be announced at once. ABRR ARRs set `full_set`,
// meaning "this is the complete new set of best AS-level routes for the
// prefix" (§2.1: ARRs convey all such routes with each update), which is
// what lets clients store only their reduced best per ARR session (§3.4).
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "bgp/route.h"

namespace abrr::bgp {

/// A BGP UPDATE for one prefix.
struct UpdateMessage {
  Ipv4Prefix prefix;
  /// Routes announced (each carries its path_id).
  std::vector<Route> announce;
  /// Path IDs withdrawn. Ignored when full_set is true.
  std::vector<PathId> withdraw;
  /// ABRR replacement semantics: `announce` is the complete new set; an
  /// empty `announce` with full_set means the prefix is gone entirely.
  bool full_set = false;
  /// BGP KEEPALIVE riding on the same transport: carries no routes,
  /// only refreshes the receiver's hold timer (session liveness).
  bool keepalive = false;

  bool is_withdraw_only() const {
    return announce.empty() && (full_set || !withdraw.empty());
  }

  /// Wire-size estimate in bytes (19-byte header, 4-byte path ID plus
  /// 5-byte NLRI per announced route and per withdrawn path, and one
  /// attribute block per announced route, as add-paths would encode it).
  std::size_t wire_size() const;

  std::string to_string() const;
};

}  // namespace abrr::bgp
