// RFC 4271 best-path decision process (Table 2 of the paper) and the
// "best AS-level routes" computation used by ARRs (steps 1-4 only).
#pragma once

#include <cstdint>
#include <functional>
#include <span>
#include <vector>

#include "bgp/route.h"

namespace abrr::bgp {

/// IGP distance oracle for decision step 6: metric from the deciding
/// router to a next hop (an egress RouterId). Unreachable next hops
/// return kIgpInfinity and such routes are considered last.
using IgpDistanceFn = std::function<std::int64_t(RouterId next_hop)>;

inline constexpr std::int64_t kIgpInfinity = INT64_MAX;

/// Tunables mirroring real router knobs that the paper discusses.
struct DecisionConfig {
  /// Compare MED across all neighbor ASes (Cisco "always-compare-med").
  /// Off by default: MED is only comparable between routes from the same
  /// neighboring AS, the behaviour that causes RFC 3345 oscillations.
  bool always_compare_med = false;

  /// Ignore MED entirely (footnote 1 of the paper: a border router
  /// ignoring MED can hide low-MED routes in full mesh).
  bool ignore_med = false;

  /// Treat a missing MED as worst instead of 0/best.
  bool missing_med_as_worst = false;

  /// Deterministic (group-elimination) MED, the Cisco
  /// "bgp deterministic-med" behaviour. When false, select_best degrades
  /// to the classic order-dependent pairwise fold in which MED is only
  /// consulted when two adjacent candidates share a neighbor AS — the
  /// RFC 3345 behaviour whose partial order underlies MED-based
  /// oscillations (§2.3.1). best_as_level_routes always uses group
  /// elimination (that is its definition).
  bool deterministic_med = true;

  /// RFC 4456 §9: prefer the shorter CLUSTER_LIST before the router-ID
  /// tie-break.
  bool prefer_shorter_cluster_list = true;

  std::uint32_t med_of(const Route& r) const;
};

/// Survivors of decision steps 1-3 (local-pref, path length, origin).
/// The returned routes point into `candidates` by value copy.
std::vector<Route> filter_as_level_pre_med(std::span<const Route> candidates);

// ---------------------------------------------------------------------
// Copy-free variants. The speaker pipeline feeds the decision process
// with `const Route*` scratch buffers pointing into the Adj-RIB-In, so
// selection never copies a Route (each copy costs a shared_ptr refcount
// bump and ~80 bytes of moves). All `_into` functions clear `out` first
// and preserve candidate order among survivors, exactly like their
// copying counterparts. Pointers stay valid as long as the underlying
// RIB storage is not mutated.
// ---------------------------------------------------------------------

/// Pointer variant of filter_as_level_pre_med.
void filter_as_level_pre_med_into(std::span<const Route* const> candidates,
                                  std::vector<const Route*>& out);

/// Pointer variant of best_as_level_routes.
void best_as_level_into(std::span<const Route* const> candidates,
                        const DecisionConfig& cfg,
                        std::vector<const Route*>& out);

/// Pointer variant of select_best: returns the winner (pointing into
/// `candidates`' referents) or nullptr when nothing is usable. `scratch`
/// is caller-owned elimination space (reused across calls to avoid
/// per-prefix allocations).
const Route* select_best_from(std::span<const Route* const> candidates,
                              RouterId self, const IgpDistanceFn& igp_distance,
                              const DecisionConfig& cfg,
                              std::vector<const Route*>& scratch);

/// The paper's "best AS-level routes": survivors of steps 1-4.
///
/// Step 4 (MED) uses deterministic per-neighbor-AS elimination: within
/// each neighbor-AS group only lowest-MED routes survive; the union over
/// groups is returned. With always_compare_med a single global MED
/// comparison is applied. This is exactly the set an ARR advertises to
/// all clients (§2.1, Table 2).
std::vector<Route> best_as_level_routes(std::span<const Route> candidates,
                                        const DecisionConfig& cfg = {});

/// Full 8-step best-path selection for one prefix.
///
/// `self` is the deciding router (used to resolve "next hop is myself"
/// as IGP distance 0). Returns an empty (invalid) Route when
/// `candidates` is empty or all next hops are unreachable.
Route select_best(std::span<const Route> candidates, RouterId self,
                  const IgpDistanceFn& igp_distance,
                  const DecisionConfig& cfg = {});

/// select_best without IGP awareness (all next hops distance 0); used by
/// pure control-plane speakers and unit tests.
Route select_best_no_igp(std::span<const Route> candidates,
                         const DecisionConfig& cfg = {});

/// Order-dependent pairwise selection (cfg.deterministic_med == false):
/// folds candidates left to right, comparing MED only between routes of
/// the same neighbor AS. Exposed for tests; select_best dispatches here
/// automatically when the config requests it.
Route select_best_sequential(std::span<const Route> candidates, RouterId self,
                             const IgpDistanceFn& igp_distance,
                             const DecisionConfig& cfg);

}  // namespace abrr::bgp
