// IPv4 prefixes and address ranges.
#pragma once

#include <compare>
#include <cstdint>
#include <functional>
#include <string>

#include "bgp/types.h"

namespace abrr::bgp {

/// An IPv4 prefix (address + mask length), the unit of BGP routing.
///
/// Invariant: host bits below the mask are zero (enforced on
/// construction), so two prefixes compare equal iff they denote the same
/// address block.
class Ipv4Prefix {
 public:
  /// Default: 0.0.0.0/0.
  constexpr Ipv4Prefix() = default;

  /// Builds a prefix; masks out host bits. Requires len <= 32.
  Ipv4Prefix(Ipv4Addr addr, std::uint8_t len);

  /// Parses "a.b.c.d/len"; throws std::invalid_argument on bad input.
  static Ipv4Prefix parse(const std::string& text);

  Ipv4Addr address() const { return addr_; }
  std::uint8_t length() const { return len_; }

  /// Network mask for this prefix length.
  Ipv4Addr mask() const;

  /// First address covered by the prefix (== address()).
  Ipv4Addr first() const { return addr_; }
  /// Last address covered by the prefix.
  Ipv4Addr last() const;

  /// True if `addr` falls inside this prefix.
  bool contains(Ipv4Addr addr) const;

  /// True if `other` is fully contained in this prefix (or equal).
  bool contains(const Ipv4Prefix& other) const;

  /// True if the two prefixes share any address.
  bool overlaps(const Ipv4Prefix& other) const;

  /// "a.b.c.d/len".
  std::string to_string() const;

  friend auto operator<=>(const Ipv4Prefix&, const Ipv4Prefix&) = default;

 private:
  Ipv4Addr addr_ = 0;
  std::uint8_t len_ = 0;
};

/// A contiguous address range [first, last]; ABRR Address Partitions are
/// ranges rather than prefixes so that balancing can split anywhere.
struct AddressRange {
  Ipv4Addr first = 0;
  Ipv4Addr last = 0;

  bool contains(Ipv4Addr addr) const { return first <= addr && addr <= last; }

  /// True if any address of `p` falls in the range: a prefix spanning two
  /// ranges belongs to both (paper: "different APs can overlap" and a
  /// prefix spanning APs is advertised to the ARRs of all of them).
  bool overlaps(const Ipv4Prefix& p) const {
    return p.first() <= last && first <= p.last();
  }

  friend auto operator<=>(const AddressRange&, const AddressRange&) = default;
};

}  // namespace abrr::bgp

template <>
struct std::hash<abrr::bgp::Ipv4Prefix> {
  std::size_t operator()(const abrr::bgp::Ipv4Prefix& p) const noexcept {
    // Mix address and length; lengths are tiny so a multiplicative mix is
    // enough for hash-table use.
    std::uint64_t v =
        (static_cast<std::uint64_t>(p.address()) << 8) | p.length();
    v *= 0x9e3779b97f4a7c15ULL;
    return static_cast<std::size_t>(v ^ (v >> 32));
  }
};
