#include "bgp/decision.h"

#include <algorithm>
#include <limits>
#include <utility>

namespace abrr::bgp {
namespace {

// Generic elimination pass over the pointer scratch buffer: keep the
// candidates minimising `key`, preserving relative order.
template <typename Key>
void keep_min(std::vector<const Route*>& routes, Key key) {
  if (routes.size() <= 1) return;
  auto best = key(*routes.front());
  for (std::size_t i = 1; i < routes.size(); ++i) {
    best = std::min(best, key(*routes[i]));
  }
  std::erase_if(routes, [&](const Route* r) { return key(*r) != best; });
}

// Value-API shim: materializes survivors as Route copies.
std::vector<Route> copy_out(const std::vector<const Route*>& ptrs) {
  std::vector<Route> out;
  out.reserve(ptrs.size());
  for (const Route* r : ptrs) out.push_back(*r);
  return out;
}

std::vector<const Route*> to_ptrs(std::span<const Route> candidates) {
  std::vector<const Route*> ptrs;
  ptrs.reserve(candidates.size());
  for (const Route& r : candidates) ptrs.push_back(&r);
  return ptrs;
}

}  // namespace

std::uint32_t DecisionConfig::med_of(const Route& r) const {
  if (ignore_med) return 0;
  if (r.attrs->med) return *r.attrs->med;
  return missing_med_as_worst ? std::numeric_limits<std::uint32_t>::max() : 0;
}

void filter_as_level_pre_med_into(std::span<const Route* const> candidates,
                                  std::vector<const Route*>& out) {
  out.clear();
  for (const Route* r : candidates) {
    if (r != nullptr && r->valid()) out.push_back(r);
  }
  // Step 1: highest LOCAL_PREF (negate for keep_min).
  keep_min(out, [](const Route& r) {
    return -static_cast<std::int64_t>(r.attrs->local_pref);
  });
  // Step 2: shortest AS path.
  keep_min(out, [](const Route& r) { return r.attrs->as_path.length(); });
  // Step 3: lowest origin type.
  keep_min(out, [](const Route& r) { return static_cast<int>(r.attrs->origin); });
}

void best_as_level_into(std::span<const Route* const> candidates,
                        const DecisionConfig& cfg,
                        std::vector<const Route*>& out) {
  filter_as_level_pre_med_into(candidates, out);
  if (out.size() <= 1 || cfg.ignore_med) return;

  // Step 4: lowest MED. Default semantics compare only within a
  // neighbor-AS group (deterministic-MED elimination); the survivors of
  // every group together form the best AS-level set.
  if (cfg.always_compare_med) {
    keep_min(out, [&](const Route& r) { return cfg.med_of(r); });
    return;
  }
  // Per-group minima in a flat scratch: candidate sets see a handful of
  // neighbor ASes, where a linear scan beats a node-based map.
  static thread_local std::vector<std::pair<Asn, std::uint32_t>> group_min;
  group_min.clear();
  for (const Route* r : out) {
    const Asn as = r->neighbor_as();
    const std::uint32_t med = cfg.med_of(*r);
    auto it = std::find_if(group_min.begin(), group_min.end(),
                           [&](const auto& g) { return g.first == as; });
    if (it == group_min.end()) {
      group_min.emplace_back(as, med);
    } else {
      it->second = std::min(it->second, med);
    }
  }
  std::erase_if(out, [&](const Route* r) {
    const Asn as = r->neighbor_as();
    const auto it = std::find_if(group_min.begin(), group_min.end(),
                                 [&](const auto& g) { return g.first == as; });
    return cfg.med_of(*r) != it->second;
  });
}

std::vector<Route> filter_as_level_pre_med(std::span<const Route> candidates) {
  const auto ptrs = to_ptrs(candidates);
  std::vector<const Route*> out;
  filter_as_level_pre_med_into(ptrs, out);
  return copy_out(out);
}

std::vector<Route> best_as_level_routes(std::span<const Route> candidates,
                                        const DecisionConfig& cfg) {
  const auto ptrs = to_ptrs(candidates);
  std::vector<const Route*> out;
  best_as_level_into(ptrs, cfg, out);
  return copy_out(out);
}

namespace {

const Route* select_best_sequential_from(
    std::span<const Route* const> candidates, RouterId self,
    const IgpDistanceFn& igp_distance, const DecisionConfig& cfg) {
  const auto igp_cost = [&](const Route& r) -> std::int64_t {
    const RouterId nh = r.egress();
    if (nh == self) return 0;
    return igp_distance ? igp_distance(nh) : 0;
  };
  // Pairwise comparison: returns true if `a` beats `b`.
  const auto beats = [&](const Route& a, const Route& b) {
    if (a.attrs->local_pref != b.attrs->local_pref) {
      return a.attrs->local_pref > b.attrs->local_pref;
    }
    if (a.attrs->as_path.length() != b.attrs->as_path.length()) {
      return a.attrs->as_path.length() < b.attrs->as_path.length();
    }
    if (a.attrs->origin != b.attrs->origin) {
      return a.attrs->origin < b.attrs->origin;
    }
    if (!cfg.ignore_med &&
        (cfg.always_compare_med || a.neighbor_as() == b.neighbor_as()) &&
        cfg.med_of(a) != cfg.med_of(b)) {
      return cfg.med_of(a) < cfg.med_of(b);
    }
    const int via_a = a.via == LearnedVia::kIbgp ? 1 : 0;
    const int via_b = b.via == LearnedVia::kIbgp ? 1 : 0;
    if (via_a != via_b) return via_a < via_b;
    if (igp_cost(a) != igp_cost(b)) return igp_cost(a) < igp_cost(b);
    if (cfg.prefer_shorter_cluster_list &&
        a.attrs->cluster_list.size() != b.attrs->cluster_list.size()) {
      return a.attrs->cluster_list.size() < b.attrs->cluster_list.size();
    }
    const RouterId oa = a.attrs->originator_id.value_or(a.learned_from);
    const RouterId ob = b.attrs->originator_id.value_or(b.learned_from);
    if (oa != ob) return oa < ob;
    if (a.learned_from != b.learned_from) {
      return a.learned_from < b.learned_from;
    }
    return a.path_id < b.path_id;
  };

  const Route* best = nullptr;
  for (const Route* r : candidates) {
    if (r == nullptr || !r->valid() || igp_cost(*r) == kIgpInfinity) continue;
    if (best == nullptr || beats(*r, *best)) best = r;
  }
  return best;
}

}  // namespace

const Route* select_best_from(std::span<const Route* const> candidates,
                              RouterId self, const IgpDistanceFn& igp_distance,
                              const DecisionConfig& cfg,
                              std::vector<const Route*>& scratch) {
  if (!cfg.deterministic_med) {
    return select_best_sequential_from(candidates, self, igp_distance, cfg);
  }
  best_as_level_into(candidates, cfg, scratch);
  if (scratch.empty()) return nullptr;

  // Step 5: prefer eBGP-learned (and locally-originated) over iBGP.
  keep_min(scratch, [](const Route& r) {
    return r.via == LearnedVia::kIbgp ? 1 : 0;
  });

  // Step 6: lowest IGP metric to the NEXT_HOP.
  const auto igp_cost = [&](const Route& r) -> std::int64_t {
    const RouterId nh = r.egress();
    if (nh == self) return 0;
    return igp_distance ? igp_distance(nh) : 0;
  };
  keep_min(scratch, igp_cost);
  // Routes whose next hop is unreachable are unusable.
  if (!scratch.empty() && igp_cost(*scratch.front()) == kIgpInfinity) {
    return nullptr;
  }

  // Step 7 (RFC 4456 refinement): prefer the route with the lower
  // ORIGINATOR_ID / router ID of the advertising router...
  if (cfg.prefer_shorter_cluster_list) {
    // ...but first the shorter CLUSTER_LIST (RFC 4456 §9).
    keep_min(scratch, [](const Route& r) {
      return r.attrs->cluster_list.size();
    });
  }
  keep_min(scratch, [](const Route& r) {
    return r.attrs->originator_id ? *r.attrs->originator_id : r.learned_from;
  });

  // Step 8: lowest peer address; our peer addresses are RouterIds. A
  // final path-id tie-break guarantees a total order (determinism).
  keep_min(scratch, [](const Route& r) { return r.learned_from; });
  keep_min(scratch, [](const Route& r) { return r.path_id; });
  return scratch.front();
}

Route select_best_sequential(std::span<const Route> candidates, RouterId self,
                             const IgpDistanceFn& igp_distance,
                             const DecisionConfig& cfg) {
  const auto ptrs = to_ptrs(candidates);
  const Route* best =
      select_best_sequential_from(ptrs, self, igp_distance, cfg);
  return best != nullptr ? *best : Route{};
}

Route select_best(std::span<const Route> candidates, RouterId self,
                  const IgpDistanceFn& igp_distance,
                  const DecisionConfig& cfg) {
  const auto ptrs = to_ptrs(candidates);
  std::vector<const Route*> scratch;
  const Route* best =
      select_best_from(ptrs, self, igp_distance, cfg, scratch);
  return best != nullptr ? *best : Route{};
}

Route select_best_no_igp(std::span<const Route> candidates,
                         const DecisionConfig& cfg) {
  return select_best(candidates, kNoRouter, nullptr, cfg);
}

}  // namespace abrr::bgp
