#include "bgp/decision.h"

#include <algorithm>
#include <limits>
#include <map>

namespace abrr::bgp {
namespace {

// Generic elimination pass: keep the candidates minimising `key`.
template <typename Key>
void keep_min(std::vector<Route>& routes, Key key) {
  if (routes.size() <= 1) return;
  auto best = key(routes.front());
  for (std::size_t i = 1; i < routes.size(); ++i) {
    best = std::min(best, key(routes[i]));
  }
  std::erase_if(routes, [&](const Route& r) { return key(r) != best; });
}

}  // namespace

std::uint32_t DecisionConfig::med_of(const Route& r) const {
  if (ignore_med) return 0;
  if (r.attrs->med) return *r.attrs->med;
  return missing_med_as_worst ? std::numeric_limits<std::uint32_t>::max() : 0;
}

std::vector<Route> filter_as_level_pre_med(std::span<const Route> candidates) {
  std::vector<Route> routes(candidates.begin(), candidates.end());
  std::erase_if(routes, [](const Route& r) { return !r.valid(); });
  // Step 1: highest LOCAL_PREF (negate for keep_min).
  keep_min(routes, [](const Route& r) {
    return -static_cast<std::int64_t>(r.attrs->local_pref);
  });
  // Step 2: shortest AS path.
  keep_min(routes, [](const Route& r) { return r.attrs->as_path.length(); });
  // Step 3: lowest origin type.
  keep_min(routes, [](const Route& r) {
    return static_cast<int>(r.attrs->origin);
  });
  return routes;
}

std::vector<Route> best_as_level_routes(std::span<const Route> candidates,
                                        const DecisionConfig& cfg) {
  std::vector<Route> routes = filter_as_level_pre_med(candidates);
  if (routes.size() <= 1 || cfg.ignore_med) return routes;

  // Step 4: lowest MED. Default semantics compare only within a
  // neighbor-AS group (deterministic-MED elimination); the survivors of
  // every group together form the best AS-level set.
  if (cfg.always_compare_med) {
    keep_min(routes, [&](const Route& r) { return cfg.med_of(r); });
    return routes;
  }
  std::map<Asn, std::uint32_t> group_min;
  for (const Route& r : routes) {
    const auto [it, inserted] = group_min.emplace(r.neighbor_as(), cfg.med_of(r));
    if (!inserted) it->second = std::min(it->second, cfg.med_of(r));
  }
  std::erase_if(routes, [&](const Route& r) {
    return cfg.med_of(r) != group_min.at(r.neighbor_as());
  });
  return routes;
}

Route select_best_sequential(std::span<const Route> candidates, RouterId self,
                             const IgpDistanceFn& igp_distance,
                             const DecisionConfig& cfg) {
  const auto igp_cost = [&](const Route& r) -> std::int64_t {
    const RouterId nh = r.egress();
    if (nh == self) return 0;
    return igp_distance ? igp_distance(nh) : 0;
  };
  // Pairwise comparison: returns true if `a` beats `b`.
  const auto beats = [&](const Route& a, const Route& b) {
    if (a.attrs->local_pref != b.attrs->local_pref) {
      return a.attrs->local_pref > b.attrs->local_pref;
    }
    if (a.attrs->as_path.length() != b.attrs->as_path.length()) {
      return a.attrs->as_path.length() < b.attrs->as_path.length();
    }
    if (a.attrs->origin != b.attrs->origin) {
      return a.attrs->origin < b.attrs->origin;
    }
    if (!cfg.ignore_med &&
        (cfg.always_compare_med || a.neighbor_as() == b.neighbor_as()) &&
        cfg.med_of(a) != cfg.med_of(b)) {
      return cfg.med_of(a) < cfg.med_of(b);
    }
    const int via_a = a.via == LearnedVia::kIbgp ? 1 : 0;
    const int via_b = b.via == LearnedVia::kIbgp ? 1 : 0;
    if (via_a != via_b) return via_a < via_b;
    if (igp_cost(a) != igp_cost(b)) return igp_cost(a) < igp_cost(b);
    if (cfg.prefer_shorter_cluster_list &&
        a.attrs->cluster_list.size() != b.attrs->cluster_list.size()) {
      return a.attrs->cluster_list.size() < b.attrs->cluster_list.size();
    }
    const RouterId oa = a.attrs->originator_id.value_or(a.learned_from);
    const RouterId ob = b.attrs->originator_id.value_or(b.learned_from);
    if (oa != ob) return oa < ob;
    if (a.learned_from != b.learned_from) {
      return a.learned_from < b.learned_from;
    }
    return a.path_id < b.path_id;
  };

  Route best;
  for (const Route& r : candidates) {
    if (!r.valid() || igp_cost(r) == kIgpInfinity) continue;
    if (!best.valid() || beats(r, best)) best = r;
  }
  return best;
}

Route select_best(std::span<const Route> candidates, RouterId self,
                  const IgpDistanceFn& igp_distance,
                  const DecisionConfig& cfg) {
  if (!cfg.deterministic_med) {
    return select_best_sequential(candidates, self, igp_distance, cfg);
  }
  std::vector<Route> routes = best_as_level_routes(candidates, cfg);
  if (routes.empty()) return {};

  // Step 5: prefer eBGP-learned (and locally-originated) over iBGP.
  keep_min(routes, [](const Route& r) {
    return r.via == LearnedVia::kIbgp ? 1 : 0;
  });

  // Step 6: lowest IGP metric to the NEXT_HOP.
  const auto igp_cost = [&](const Route& r) -> std::int64_t {
    const RouterId nh = r.egress();
    if (nh == self) return 0;
    return igp_distance ? igp_distance(nh) : 0;
  };
  keep_min(routes, igp_cost);
  // Routes whose next hop is unreachable are unusable.
  if (!routes.empty() && igp_cost(routes.front()) == kIgpInfinity) return {};

  // Step 7 (RFC 4456 refinement): prefer the route with the lower
  // ORIGINATOR_ID / router ID of the advertising router...
  if (cfg.prefer_shorter_cluster_list) {
    // ...but first the shorter CLUSTER_LIST (RFC 4456 §9).
    keep_min(routes, [](const Route& r) {
      return r.attrs->cluster_list.size();
    });
  }
  keep_min(routes, [](const Route& r) {
    return r.attrs->originator_id ? *r.attrs->originator_id : r.learned_from;
  });

  // Step 8: lowest peer address; our peer addresses are RouterIds. A
  // final path-id tie-break guarantees a total order (determinism).
  keep_min(routes, [](const Route& r) { return r.learned_from; });
  keep_min(routes, [](const Route& r) { return r.path_id; });
  return routes.front();
}

Route select_best_no_igp(std::span<const Route> candidates,
                         const DecisionConfig& cfg) {
  return select_best(candidates, kNoRouter, nullptr, cfg);
}

}  // namespace abrr::bgp
