// Binary (Patricia-style) prefix trie keyed by Ipv4Prefix.
//
// Used by the forwarding verifier for longest-prefix match and by RIB
// structures for ordered traversal. Header-only template.
#pragma once

#include <cstddef>
#include <functional>
#include <memory>
#include <optional>
#include <utility>

#include "bgp/prefix.h"

namespace abrr::bgp {

/// Map from Ipv4Prefix to T with longest-prefix-match lookup.
///
/// A plain binary trie: depth is bounded by 32, so operations are O(32).
/// Nodes without a value are pure branch points.
template <typename T>
class PrefixTrie {
 public:
  PrefixTrie() : root_(std::make_unique<Node>()) {}

  /// Number of stored (prefix, value) pairs.
  std::size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  /// Inserts or overwrites the value at `prefix`. Returns a reference to
  /// the stored value.
  T& insert(const Ipv4Prefix& prefix, T value) {
    Node* node = descend_create(prefix);
    if (!node->value) ++size_;
    node->value = std::move(value);
    return *node->value;
  }

  /// Returns the value stored exactly at `prefix`, or nullptr.
  T* find(const Ipv4Prefix& prefix) {
    Node* node = descend(prefix);
    return node && node->value ? &*node->value : nullptr;
  }
  const T* find(const Ipv4Prefix& prefix) const {
    return const_cast<PrefixTrie*>(this)->find(prefix);
  }

  /// Returns value at `prefix`, default-constructing it if absent.
  T& operator[](const Ipv4Prefix& prefix) {
    Node* node = descend_create(prefix);
    if (!node->value) {
      node->value.emplace();
      ++size_;
    }
    return *node->value;
  }

  /// Removes the entry at `prefix`. Returns true if one existed.
  /// (Branch nodes are left in place; fine for our access patterns.)
  bool erase(const Ipv4Prefix& prefix) {
    Node* node = descend(prefix);
    if (!node || !node->value) return false;
    node->value.reset();
    --size_;
    return true;
  }

  /// Longest-prefix match for a single address; returns the matched
  /// (prefix, value) or nullopt when nothing covers `addr`.
  std::optional<std::pair<Ipv4Prefix, const T*>> longest_match(
      Ipv4Addr addr) const {
    const Node* node = root_.get();
    std::optional<std::pair<Ipv4Prefix, const T*>> best;
    if (node->value) best = {Ipv4Prefix{}, &*node->value};
    for (std::uint8_t depth = 0; depth < 32 && node; ++depth) {
      const int bit = (addr >> (31 - depth)) & 1;
      node = node->child[bit].get();
      if (node && node->value) {
        best = {Ipv4Prefix{addr, static_cast<std::uint8_t>(depth + 1)},
                &*node->value};
      }
    }
    return best;
  }

  /// Visits every (prefix, value) pair in trie order.
  void for_each(
      const std::function<void(const Ipv4Prefix&, const T&)>& fn) const {
    walk(root_.get(), 0, 0, fn);
  }

  void clear() {
    root_ = std::make_unique<Node>();
    size_ = 0;
  }

 private:
  struct Node {
    std::optional<T> value;
    std::unique_ptr<Node> child[2];
  };

  Node* descend(const Ipv4Prefix& prefix) const {
    Node* node = root_.get();
    for (std::uint8_t depth = 0; depth < prefix.length() && node; ++depth) {
      const int bit = (prefix.address() >> (31 - depth)) & 1;
      node = node->child[bit].get();
    }
    return node;
  }

  Node* descend_create(const Ipv4Prefix& prefix) {
    Node* node = root_.get();
    for (std::uint8_t depth = 0; depth < prefix.length(); ++depth) {
      const int bit = (prefix.address() >> (31 - depth)) & 1;
      if (!node->child[bit]) node->child[bit] = std::make_unique<Node>();
      node = node->child[bit].get();
    }
    return node;
  }

  void walk(const Node* node, Ipv4Addr addr, std::uint8_t depth,
            const std::function<void(const Ipv4Prefix&, const T&)>& fn) const {
    if (!node) return;
    if (node->value) fn(Ipv4Prefix{addr, depth}, *node->value);
    if (depth == 32) return;
    walk(node->child[0].get(), addr, depth + 1, fn);
    walk(node->child[1].get(), addr | (1u << (31 - depth)), depth + 1, fn);
  }

  std::unique_ptr<Node> root_;
  std::size_t size_ = 0;
};

}  // namespace abrr::bgp
