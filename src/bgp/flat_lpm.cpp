#include "bgp/flat_lpm.h"

#include <algorithm>
#include <numeric>

namespace abrr::bgp {

// Build strategy: one sweep over the universe sorted by (address, length).
// In that order every prefix is preceded by all prefixes that contain it
// (a container starts no later and, at the same address, is shorter), so
//  - the containment stack yields parent_ directly, and
//  - directory fills can simply overwrite: whatever a later prefix
//    writes is more specific than what an earlier one wrote there, and
//    no chunk (or overflow list) can exist yet anywhere a later,
//    shorter prefix needs to blanket-fill.
LpmIndex::LpmIndex(std::span<const Ipv4Prefix> prefixes)
    : prefixes_(prefixes.begin(), prefixes.end()) {
  const std::size_t n = prefixes_.size();
  parent_.assign(n, kNoSlot);
  level1_.assign(std::size_t{1} << 16, kNoSlot);
  // Chunk 0 is the reserved all-kNoSlot dummy the branch-free lookup
  // reads for direct (chunkless) level-1 blocks; real chunks start at 1.
  chunk_store_.assign(256, kNoSlot);

  std::vector<std::uint32_t> order(n);
  std::iota(order.begin(), order.end(), 0u);
  std::sort(order.begin(), order.end(),
            [&](std::uint32_t a, std::uint32_t b) {
              const Ipv4Prefix& pa = prefixes_[a];
              const Ipv4Prefix& pb = prefixes_[b];
              if (pa.address() != pb.address()) {
                return pa.address() < pb.address();
              }
              if (pa.length() != pb.length()) {
                return pa.length() < pb.length();
              }
              return a < b;  // duplicates: first slot is canonical
            });

  const auto ensure_chunk = [&](std::uint32_t block) -> std::uint32_t* {
    std::uint32_t& e = level1_[block];
    if (e >= kChunkFlag && e != kNoSlot) {
      return chunk_store_.data() +
             (static_cast<std::size_t>(e & kPayloadMask) << 8);
    }
    const std::uint32_t base = e;  // final <=/16 cover of this block
    const std::uint32_t idx =
        static_cast<std::uint32_t>(chunk_store_.size() >> 8);
    chunk_store_.resize(chunk_store_.size() + 256, base);
    e = kChunkFlag | idx;
    return chunk_store_.data() + (static_cast<std::size_t>(idx) << 8);
  };

  std::vector<std::uint32_t> stack;
  for (const std::uint32_t slot : order) {
    const Ipv4Prefix& p = prefixes_[slot];
    while (!stack.empty() && !prefixes_[stack.back()].contains(p)) {
      stack.pop_back();
    }
    if (!stack.empty() && prefixes_[stack.back()] == p) {
      // Duplicate prefix: alias the canonical slot's parent; the
      // directory keeps pointing at the canonical slot.
      parent_[slot] = parent_[stack.back()];
      continue;
    }
    parent_[slot] = stack.empty() ? kNoSlot : stack.back();
    stack.push_back(slot);

    const std::uint8_t len = p.length();
    if (len <= 16) {
      const std::uint32_t first = p.first() >> 16;
      const std::uint32_t last = p.last() >> 16;
      std::fill(level1_.begin() + first, level1_.begin() + last + 1, slot);
    } else if (len <= 24) {
      std::uint32_t* chunk = ensure_chunk(p.first() >> 16);
      const std::uint32_t first = (p.first() >> 8) & 0xff;
      const std::uint32_t last = (p.last() >> 8) & 0xff;
      std::fill(chunk + first, chunk + last + 1, slot);
    } else {
      std::uint32_t* chunk = ensure_chunk(p.first() >> 16);
      std::uint32_t& c = chunk[(p.first() >> 8) & 0xff];
      if (c < kChunkFlag || c == kNoSlot) {
        const std::uint32_t idx =
            static_cast<std::uint32_t>(overflow_.size());
        overflow_.push_back({/*fallback=*/c, {}});
        c = kChunkFlag | idx;
      }
      // Sweep order keeps each list ascending by (address, length).
      overflow_[c & kPayloadMask].slots.push_back(slot);
    }
  }
}

std::uint32_t LpmIndex::overflow_leaf(Ipv4Addr addr,
                                      std::uint32_t list) const {
  const OverflowList& l = overflow_[list];
  // Containing prefixes nest, and within the sorted list a contained
  // (longer) prefix sorts after its container — so the first hit from
  // the back is the most specific.
  for (auto it = l.slots.rbegin(); it != l.slots.rend(); ++it) {
    if (prefixes_[*it].contains(addr)) return *it;
  }
  return l.fallback;
}

std::size_t LpmIndex::bytes() const {
  std::size_t b = prefixes_.capacity() * sizeof(Ipv4Prefix) +
                  parent_.capacity() * sizeof(std::uint32_t) +
                  level1_.capacity() * sizeof(std::uint32_t) +
                  chunk_store_.capacity() * sizeof(std::uint32_t);
  for (const OverflowList& l : overflow_) {
    b += sizeof(OverflowList) + l.slots.capacity() * sizeof(std::uint32_t);
  }
  return b;
}

}  // namespace abrr::bgp
