#include "bgp/route.h"

#include "bgp/attrs_intern.h"

namespace abrr::bgp {
namespace {

void mix(std::uint64_t& h, std::uint64_t v) {
  h ^= v + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
}

void mix_route(std::uint64_t& h, const Route& r) {
  mix(h, r.path_id);
  if (!r.attrs) return;
  // Interned blocks carry their content hash; one mix replaces the deep
  // attribute walk. The fallback covers hand-built blocks in tests.
  const std::uint64_t cached = r.attrs->content_hash;
  mix(h, cached != 0 ? cached : attrs_content_hash(*r.attrs));
}

void mix_route_uncached(std::uint64_t& h, const Route& r) {
  mix(h, r.path_id);
  if (!r.attrs) return;
  const PathAttrs& a = *r.attrs;
  mix(h, a.next_hop);
  mix(h, a.local_pref);
  mix(h, a.med ? *a.med + 1ULL : 0ULL);
  mix(h, static_cast<std::uint64_t>(a.origin) + 1);
  for (const Asn asn : a.as_path.asns()) mix(h, asn);
  mix(h, a.originator_id ? *a.originator_id + 1ULL : 0ULL);
  for (const auto c : a.cluster_list) mix(h, c);
  for (const auto c : a.ext_communities) mix(h, c);
}

constexpr std::uint64_t kSetHashSeed = 0x84222325cbf29ce4ULL;

}  // namespace

std::uint64_t route_set_hash(const std::vector<Route>& routes) {
  std::uint64_t h = kSetHashSeed;
  for (const Route& r : routes) mix_route(h, r);
  return h == 0 ? 1 : h;
}

std::uint64_t route_set_hash(std::span<const Route* const> routes) {
  std::uint64_t h = kSetHashSeed;
  for (const Route* r : routes) mix_route(h, *r);
  return h == 0 ? 1 : h;
}

std::uint64_t route_set_hash_uncached(const std::vector<Route>& routes) {
  std::uint64_t h = kSetHashSeed;
  for (const Route& r : routes) mix_route_uncached(h, r);
  return h == 0 ? 1 : h;
}

std::string Route::to_string() const {
  std::string out = prefix.to_string();
  out += " id=" + std::to_string(path_id);
  if (attrs) {
    out += " path=[" + attrs->as_path.to_string() + "]";
    out += " nh=" + std::to_string(attrs->next_hop);
    out += " lp=" + std::to_string(attrs->local_pref);
    if (attrs->med) out += " med=" + std::to_string(*attrs->med);
  }
  switch (via) {
    case LearnedVia::kLocal: out += " local"; break;
    case LearnedVia::kEbgp: out += " ebgp"; break;
    case LearnedVia::kIbgp: out += " ibgp"; break;
  }
  return out;
}

}  // namespace abrr::bgp
