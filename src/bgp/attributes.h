// BGP path attributes.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "bgp/as_path.h"
#include "bgp/types.h"

namespace abrr::bgp {

/// ORIGIN attribute; lower is preferred (decision step 3).
enum class Origin : std::uint8_t { kIgp = 0, kEgp = 1, kIncomplete = 2 };

/// Standard community (RFC 1997).
using Community = std::uint32_t;

/// Extended community (RFC 4360), 8 octets.
using ExtCommunity = std::uint64_t;

/// The ABRR "reflected" marker (§2.3.2): a single bit carried as an
/// extended community telling ARRs that an update has already been
/// reflected once and must not be reflected again. This replaces the
/// heavier Cluster-List/Originator-ID machinery for loop prevention.
inline constexpr ExtCommunity kAbrrReflectedCommunity = 0xABBA'0000'0000'0001ULL;

/// The attribute set carried by a route.
///
/// Immutable once built and shared between RIB entries by plain
/// pointer. make_attrs() canonicalizes blocks through the calling
/// thread's AttrsInterner (bgp/attrs_intern.h), mirroring how real BGP
/// implementations intern attribute sets (Quagga's attrhash), so equal
/// live blocks are pointer-identical. Blocks live in interner-owned
/// slabs and stay valid until that interner is reset between trials —
/// copying a Route is pointer-cheap, with no refcount traffic.
struct PathAttrs {
  AsPath as_path;
  Origin origin = Origin::kIncomplete;
  /// NEXT_HOP. Border routers apply next-hop-self, so inside the AS this
  /// is the RouterId of the egress border router.
  Ipv4Addr next_hop = 0;
  std::uint32_t local_pref = kDefaultLocalPref;
  /// MULTI_EXIT_DISC; absent means "not set" (treated as 0 = best by the
  /// default decision configuration).
  std::optional<std::uint32_t> med;
  std::vector<Community> communities;
  std::vector<ExtCommunity> ext_communities;
  /// ORIGINATOR_ID (RFC 4456), set by the first reflector.
  std::optional<RouterId> originator_id;
  /// CLUSTER_LIST (RFC 4456), prepended by each reflector.
  std::vector<std::uint32_t> cluster_list;

  /// Precomputed 64-bit content hash; 0 = not computed yet. Every block
  /// produced by make_attrs() carries one, making set hashing and
  /// announcement comparison integer compares. Not a semantic field:
  /// operator== ignores it (equal content implies equal hash anyway).
  std::uint64_t content_hash = 0;

  bool has_ext_community(ExtCommunity c) const;

  /// Wire-size estimate of the attribute block in bytes.
  std::size_t wire_size() const;

  friend bool operator==(const PathAttrs& a, const PathAttrs& b) {
    return a.origin == b.origin && a.next_hop == b.next_hop &&
           a.local_pref == b.local_pref && a.med == b.med &&
           a.originator_id == b.originator_id && a.as_path == b.as_path &&
           a.communities == b.communities &&
           a.ext_communities == b.ext_communities &&
           a.cluster_list == b.cluster_list;
  }
};

/// Shared immutable attribute handle: a stable pointer into the owning
/// AttrsInterner's slab storage (see lifetime note above).
using AttrsPtr = const PathAttrs*;

/// Interns an attribute set (by-value construction helper): computes the
/// content hash and canonicalizes through AttrsInterner::global().
AttrsPtr make_attrs(PathAttrs attrs);

/// Copy-on-write helper: clones `base`, applies `mutate`, and re-interns.
/// The clone's cached hash is invalidated so the mutated block gets a
/// fresh one (make_attrs recomputes unconditionally).
template <typename Fn>
AttrsPtr with_attrs(AttrsPtr base, Fn&& mutate) {
  PathAttrs copy = *base;
  mutate(copy);
  return make_attrs(std::move(copy));
}

}  // namespace abrr::bgp
