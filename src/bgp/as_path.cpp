#include "bgp/as_path.h"

#include <algorithm>

namespace abrr::bgp {

bool AsPath::contains(Asn asn) const {
  return std::find(asns_.begin(), asns_.end(), asn) != asns_.end();
}

AsPath AsPath::prepend(Asn asn) const {
  std::vector<Asn> next;
  next.reserve(asns_.size() + 1);
  next.push_back(asn);
  next.insert(next.end(), asns_.begin(), asns_.end());
  return AsPath{std::move(next)};
}

std::string AsPath::to_string() const {
  std::string out;
  for (const Asn asn : asns_) {
    if (!out.empty()) out += ' ';
    out += std::to_string(asn);
  }
  return out;
}

}  // namespace abrr::bgp
