// AS_PATH attribute.
#pragma once

#include <cstddef>
#include <initializer_list>
#include <string>
#include <vector>

#include "bgp/types.h"

namespace abrr::bgp {

/// The AS_PATH attribute, modelled as a single AS_SEQUENCE.
///
/// AS_SETs (from aggregation) are out of scope for the ABRR experiments;
/// the decision process only needs length, loop detection, and the first
/// (neighboring) AS for MED grouping.
class AsPath {
 public:
  AsPath() = default;
  AsPath(std::initializer_list<Asn> asns) : asns_(asns) {}
  explicit AsPath(std::vector<Asn> asns) : asns_(std::move(asns)) {}

  /// Path length used in decision step 2.
  std::size_t length() const { return asns_.size(); }
  bool empty() const { return asns_.empty(); }

  /// The neighboring AS (first hop), used for MED comparison grouping.
  /// Returns 0 for an empty path (locally originated route).
  Asn first() const { return asns_.empty() ? 0 : asns_.front(); }

  /// The origin AS (last hop). Returns 0 for an empty path.
  Asn origin_as() const { return asns_.empty() ? 0 : asns_.back(); }

  /// eBGP loop detection: is `asn` already on the path?
  bool contains(Asn asn) const;

  /// Returns a copy with `asn` prepended (as on eBGP export).
  AsPath prepend(Asn asn) const;

  const std::vector<Asn>& asns() const { return asns_; }

  /// Wire-size estimate in bytes (2-byte segment header + 4 bytes per AS).
  std::size_t wire_size() const { return 2 + 4 * asns_.size(); }

  /// "1 2 3" formatting for logs.
  std::string to_string() const;

  friend bool operator==(const AsPath&, const AsPath&) = default;

 private:
  std::vector<Asn> asns_;
};

}  // namespace abrr::bgp
