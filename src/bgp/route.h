// A route: prefix + shared attributes + per-router bookkeeping.
#pragma once

#include <span>
#include <string>

#include "bgp/attributes.h"
#include "bgp/prefix.h"
#include "bgp/types.h"

namespace abrr::bgp {

/// How a route entered this router (decision step 5 and Table 1 rules).
enum class LearnedVia : std::uint8_t { kLocal = 0, kEbgp = 1, kIbgp = 2 };

/// A single route as held in a RIB.
///
/// The attribute block is shared and immutable; the remaining fields are
/// per-router bookkeeping that changes as the route propagates.
struct Route {
  Ipv4Prefix prefix;
  /// add-paths path identifier; unique per prefix within the AS because
  /// it is the RouterId of the client that injected the route into iBGP.
  PathId path_id = 0;
  AttrsPtr attrs = nullptr;

  /// Peer this router learned the route from (kNoRouter if local).
  RouterId learned_from = kNoRouter;
  LearnedVia via = LearnedVia::kLocal;

  bool valid() const { return attrs != nullptr; }

  /// Neighboring AS for MED comparison grouping (first AS on the path;
  /// 0 for locally-originated routes, which form their own group).
  Asn neighbor_as() const { return attrs->as_path.first(); }

  /// Egress border router: with next-hop-self, NEXT_HOP is the egress's
  /// RouterId (see bgp/types.h).
  RouterId egress() const { return static_cast<RouterId>(attrs->next_hop); }

  /// Same announced content (prefix, path id, attributes)? Interned
  /// attribute blocks make this a pointer compare; otherwise the cached
  /// content hashes decide (falling back to a deep compare only when a
  /// hash is missing or as collision insurance).
  bool same_announcement(const Route& other) const {
    if (prefix != other.prefix || path_id != other.path_id) return false;
    if (attrs == other.attrs) return true;
    if (!attrs || !other.attrs) return false;
    if (attrs->content_hash != 0 && other.attrs->content_hash != 0 &&
        attrs->content_hash != other.attrs->content_hash) {
      return false;
    }
    return *attrs == *other.attrs;
  }

  std::string to_string() const;
};

/// Content hash of an advertised route set (canonical path-id order).
/// Never returns 0, so 0 can mean "nothing advertised". Used by speakers
/// to suppress duplicate transmissions without storing full per-peer
/// copies of the Adj-RIB-Out. 64 bits wide: the per-peer sent-hash state
/// compares these across the whole run, and a 32-bit hash starts
/// colliding — silently suppressing a needed transmission — around 2^16
/// distinct advertised sets. Routes with interned attributes hash via
/// their cached content hash.
std::uint64_t route_set_hash(const std::vector<Route>& routes);

/// Same hash over a pointer set (the copy-free pipeline's currency).
std::uint64_t route_set_hash(std::span<const Route* const> routes);

/// Deep-walk variant that ignores cached attribute hashes; exposed so
/// benches can quantify the caching win (identical distribution, not
/// identical values).
std::uint64_t route_set_hash_uncached(const std::vector<Route>& routes);

/// Convenience builder for tests and workload generators.
class RouteBuilder {
 public:
  explicit RouteBuilder(Ipv4Prefix prefix) { route_.prefix = prefix; }

  RouteBuilder& path_id(PathId id) { route_.path_id = id; return *this; }
  RouteBuilder& as_path(AsPath path) { attrs_.as_path = std::move(path); return *this; }
  RouteBuilder& origin(Origin o) { attrs_.origin = o; return *this; }
  RouteBuilder& next_hop(Ipv4Addr nh) { attrs_.next_hop = nh; return *this; }
  RouteBuilder& local_pref(std::uint32_t lp) { attrs_.local_pref = lp; return *this; }
  RouteBuilder& med(std::uint32_t m) { attrs_.med = m; return *this; }
  RouteBuilder& no_med() { attrs_.med.reset(); return *this; }
  RouteBuilder& originator(RouterId id) { attrs_.originator_id = id; return *this; }
  RouteBuilder& cluster_list(std::vector<std::uint32_t> cl) {
    attrs_.cluster_list = std::move(cl);
    return *this;
  }
  RouteBuilder& ext_community(ExtCommunity c) {
    attrs_.ext_communities.push_back(c);
    return *this;
  }
  RouteBuilder& learned_from(RouterId peer, LearnedVia via) {
    route_.learned_from = peer;
    route_.via = via;
    return *this;
  }

  Route build() {
    route_.attrs = make_attrs(attrs_);
    return route_;
  }

 private:
  Route route_;
  PathAttrs attrs_;
};

}  // namespace abrr::bgp
