// Routing Information Bases: Adj-RIB-In, Loc-RIB, Adj-RIB-Out.
//
// Definitions follow §3.2 of the paper, which in turn follows RFC 4271:
// Adj-RIB-In holds what each neighbor reported; Adj-RIB-Out holds what is
// reported to neighbors (one logical copy per peer group).
//
// Storage: experiments know the prefix universe up front, so each RIB can
// be given a shared PrefixIndex (set_prefix_index). Indexed prefixes then
// live in flat vectors addressed by dense PrefixId — one array access
// instead of an unordered_map probe on every hot-path touch. Prefixes
// outside the index (and all prefixes when no index is set) fall back to
// the original map storage; both paths behave identically.
#pragma once

#include <cstddef>
#include <functional>
#include <memory>
#include <optional>
#include <unordered_map>
#include <utility>
#include <vector>

#include "bgp/prefix_index.h"
#include "bgp/route.h"
#include "bgp/update.h"

namespace abrr::bgp {

/// Adj-RIB-In: routes reported by every neighbor, keyed by
/// (prefix, sending peer, add-paths path id).
class AdjRibIn {
 public:
  /// Result of applying an announcement.
  enum class Change { kUnchanged, kAdded, kReplaced };

  /// Switches indexed prefixes to dense flat storage. Call before or
  /// after inserts (existing indexed entries migrate).
  void set_prefix_index(std::shared_ptr<const PrefixIndex> index);

  /// Stores/overwrites the route keyed by (prefix, learned_from,
  /// path_id). Requires route.valid().
  Change announce(const Route& route);

  /// Removes one path. Returns true if it existed.
  bool withdraw(RouterId peer, const Ipv4Prefix& prefix, PathId path_id);

  /// Removes all paths for `prefix` from `peer`. Returns count removed.
  std::size_t withdraw_prefix(RouterId peer, const Ipv4Prefix& prefix);

  /// Session teardown: removes everything from `peer`; returns the
  /// affected prefixes (sorted) for re-running decisions.
  std::vector<Ipv4Prefix> withdraw_peer(RouterId peer);

  /// All routes currently known for `prefix`, across all peers.
  std::vector<Route> routes_for(const Ipv4Prefix& prefix) const;

  /// Copy-free variant: clears `out` and fills it with pointers to the
  /// stored routes (ordered by (peer, path id), same as routes_for).
  /// Pointers stay valid until the next mutation of this RIB.
  void routes_for(const Ipv4Prefix& prefix,
                  std::vector<const Route*>& out) const;

  /// Total entries (the paper's RIB-In size metric).
  std::size_t size() const { return size_; }

  /// Entries contributed by one peer.
  std::size_t peer_size(RouterId peer) const;

  /// Visits every stored route.
  void for_each(const std::function<void(const Route&)>& fn) const;

  /// Drops every entry (router crash with state loss). Keeps the index.
  void clear();

  /// Storage key of an entry: (sending peer, add-paths path id).
  using Key = std::pair<RouterId, PathId>;
  static Key key_of(const Route& route) {
    return Key{route.learned_from, route.path_id};
  }

 private:
  /// Sorted flat path list: node-free storage whose iteration order
  /// matches the std::map it replaced. The sort key (learned_from,
  /// path_id) is read from the routes themselves — storing it separately
  /// would pad every entry by a quarter of a cache line for data the
  /// Route already carries.
  using PathList = std::vector<Route>;

  const PathList* find_list(const Ipv4Prefix& prefix) const;
  PathList& ensure_list(const Ipv4Prefix& prefix);
  void erase_if_empty(const Ipv4Prefix& prefix);

  std::shared_ptr<const PrefixIndex> index_;
  std::vector<PathList> flat_;  // slot per PrefixId; empty = no routes
  std::unordered_map<Ipv4Prefix, PathList> table_;  // unindexed fallback
  std::unordered_map<RouterId, std::size_t> per_peer_;
  std::size_t size_ = 0;
};

/// Loc-RIB: the single chosen best route per prefix.
class LocRib {
 public:
  void set_prefix_index(std::shared_ptr<const PrefixIndex> index);

  /// Installs `route` as best for its prefix; returns true if this
  /// changed the entry (new or different announcement).
  bool install(const Route& route);

  /// Removes the entry; returns true if one existed.
  bool remove(const Ipv4Prefix& prefix);

  /// Current best, or nullptr.
  const Route* best(const Ipv4Prefix& prefix) const;

  std::size_t size() const { return flat_count_ + table_.size(); }

  void for_each(const std::function<void(const Route&)>& fn) const;

  /// Drops every entry (router crash with state loss). Keeps the index.
  void clear();

 private:
  std::shared_ptr<const PrefixIndex> index_;
  std::vector<Route> flat_;  // slot per PrefixId; !valid() = empty
  std::size_t flat_count_ = 0;
  std::unordered_map<Ipv4Prefix, Route> table_;  // unindexed fallback
};

/// Adj-RIB-Out for one peer group: the set of routes advertised per
/// prefix (a single route for single-path speakers, the best AS-level
/// set for ARRs and multi-path TRRs).
class AdjRibOut {
 public:
  void set_prefix_index(std::shared_ptr<const PrefixIndex> index);

  /// Replaces the advertised set for `prefix`. Returns the update to
  /// send if something changed, std::nullopt otherwise. `full_set`
  /// selects ABRR replacement semantics for the generated message;
  /// otherwise an add-paths diff (announce changed, withdraw removed) is
  /// produced.
  std::optional<UpdateMessage> set(const Ipv4Prefix& prefix,
                                   std::vector<Route> routes, bool full_set);

  /// Current advertised set (nullptr if none).
  const std::vector<Route>* get(const Ipv4Prefix& prefix) const;

  /// Total advertised route entries (the paper's RIB-Out size metric).
  std::size_t size() const { return size_; }

  void for_each(
      const std::function<void(const Ipv4Prefix&, const std::vector<Route>&)>&
          fn) const;

  /// Drops every entry (router crash with state loss). Keeps the index.
  void clear();

 private:
  std::shared_ptr<const PrefixIndex> index_;
  std::vector<std::vector<Route>> flat_;  // slot per PrefixId; empty = none
  std::unordered_map<Ipv4Prefix, std::vector<Route>> table_;  // fallback
  std::size_t size_ = 0;
};

}  // namespace abrr::bgp
