// Fundamental BGP scalar types shared across the library.
#pragma once

#include <cstdint>
#include <string>

namespace abrr::bgp {

/// Autonomous System number (4-octet, RFC 6793).
using Asn = std::uint32_t;

/// BGP Identifier / router ID. In this library router IDs double as the
/// router's loopback address: a border router that sets next-hop-self
/// writes its RouterId into the NEXT_HOP attribute.
using RouterId = std::uint32_t;

/// IPv4 address in host byte order.
using Ipv4Addr = std::uint32_t;

/// add-paths Path Identifier (draft-ietf-idr-add-paths). This library
/// assigns the originating client's RouterId as the path ID, which is
/// unique per prefix because a client advertises at most one route per
/// prefix into iBGP.
using PathId = std::uint32_t;

/// Sentinel meaning "no router" / "locally originated".
inline constexpr RouterId kNoRouter = 0;

/// Default LOCAL_PREF applied when none is set explicitly (RFC 4271).
inline constexpr std::uint32_t kDefaultLocalPref = 100;

/// Formats an IPv4 address as dotted quad (for logs and traces).
std::string format_ipv4(Ipv4Addr addr);

/// Parses a dotted quad; throws std::invalid_argument on malformed input.
Ipv4Addr parse_ipv4(const std::string& text);

}  // namespace abrr::bgp
