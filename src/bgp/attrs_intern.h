// Canonical path-attribute storage (BIRD/Quagga-style "attrhash").
//
// Identical attribute sets — which route reflection multiplies across
// every client session — are stored once per interner. Interning gives
// two hot-path wins: (1) memory: an ARR reflecting one attribute block
// to hundreds of clients shares a single allocation, and (2) time:
// every block carries a precomputed 64-bit content hash, so route-set
// hashing and announcement comparison degrade from deep struct walks to
// one pointer compare (canonical blocks with equal content are the
// *same* block) or one integer compare.
//
// Storage model: blocks live in arena-backed slabs owned by the
// interner and are handed out as stable `const PathAttrs*`. Nothing is
// refcounted — a block stays valid until the owning interner is reset,
// which the experiment runner does at the *start* of each trial (via
// TrialScope), when no route of the previous trial can still be alive.
// Compared with the earlier shared_ptr/weak_ptr design this removes the
// per-block control-block allocation, the atomic refcount traffic on
// every Route copy, and the weak-table sweeps.
//
// The simulator is single-threaded; the interner is not synchronized.
// global() is THREAD-LOCAL: each worker thread of the parallel
// experiment runner gets its own table, keeping trials thread-confined
// without locks (interning only folds equal allocations, so per-thread
// tables cannot change any result).
#pragma once

#include <cstddef>
#include <cstdint>
#include <unordered_map>

#include "bgp/attributes.h"
#include "sim/arena.h"

namespace abrr::bgp {

/// 64-bit content hash over every semantic field of an attribute set
/// (everything operator== compares). Never returns 0, so 0 can serve as
/// the "not yet computed" sentinel on PathAttrs::content_hash.
std::uint64_t attrs_content_hash(const PathAttrs& attrs);

/// Canonicalization table + slab storage for PathAttrs blocks.
///
/// Blocks are arena-allocated and never individually freed: the table
/// is an index over live slab storage, not an owner of refcounts. The
/// interner stays bounded because every trial starts by resetting its
/// thread's trial interner (TrialScope below), reusing the slabs the
/// previous trial on that worker warmed up.
class AttrsInterner {
 public:
  /// The calling thread's ACTIVE interner, used by make_attrs(): the
  /// trial interner while a TrialScope is open, otherwise a default
  /// per-thread instance (tests, CLI tools, benches).
  static AttrsInterner& global();

  /// Canonicalizes `attrs`: returns the existing block when an equal one
  /// is live, otherwise moves `attrs` into a fresh slab-backed block.
  /// Always returns a block with content_hash set.
  AttrsPtr intern(PathAttrs&& attrs);

  /// Pre-sizes table and slabs for an expected number of distinct
  /// blocks (ScenarioSpec scale hint); avoids rehash/slab growth mid-trial.
  void reserve(std::size_t expected_blocks);

  /// Destroys every block and rewinds the slabs for reuse. All
  /// previously returned AttrsPtr values become dangling — callers
  /// (TrialScope) must only reset when no Route can still be alive.
  void reset();

  /// Distinct canonical blocks currently indexed.
  std::size_t live_blocks() const { return table_.size(); }

  // Telemetry for benches, tests and the runner's allocation columns.
  std::uint64_t hits() const { return hits_; }
  std::uint64_t misses() const { return misses_; }
  void reset_stats() { hits_ = misses_ = 0; }
  std::size_t arena_bytes() const { return arena_.bytes_used(); }
  std::uint64_t arena_allocations() const { return arena_.allocations(); }
  std::uint64_t slab_resets() const { return arena_.resets(); }

  /// Kill switch: with interning disabled, intern() places every block in
  /// a fresh slab slot without canonicalizing (content hash still
  /// computed). Used by the equivalence tests and the legacy-path
  /// benchmarks. Per-thread, like the table itself.
  static void set_enabled(bool enabled);
  static bool enabled();

  /// RAII trial scope: makes a dedicated per-thread trial interner the
  /// active one, resetting it ON ENTRY (the only moment no route from
  /// the previous trial on this worker can be alive) and pre-sizing it
  /// from the scenario's scale hint. Leaving the scope restores the
  /// previous active interner but deliberately does NOT reset — the
  /// caller may still be holding stats or (for the inline jobs<=1 path)
  /// the trial's last routes; the next trial's entry does the reset.
  /// Not reentrant: nesting trials on one thread would alias the pool.
  class TrialScope {
   public:
    explicit TrialScope(std::size_t expected_blocks);
    ~TrialScope();
    TrialScope(const TrialScope&) = delete;
    TrialScope& operator=(const TrialScope&) = delete;

    AttrsInterner& interner() const { return pool_; }

   private:
    AttrsInterner& pool_;
    AttrsInterner* prev_;
  };

 private:
  // hash -> canonical blocks with that content hash (almost always one).
  std::unordered_multimap<std::uint64_t, const PathAttrs*> table_;
  sim::Arena arena_;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
};

/// RAII guard for tests/benches that need the legacy (non-interned)
/// allocation behaviour.
class ScopedInterningDisabled {
 public:
  ScopedInterningDisabled() : prev_(AttrsInterner::enabled()) {
    AttrsInterner::set_enabled(false);
  }
  ~ScopedInterningDisabled() { AttrsInterner::set_enabled(prev_); }
  ScopedInterningDisabled(const ScopedInterningDisabled&) = delete;
  ScopedInterningDisabled& operator=(const ScopedInterningDisabled&) = delete;

 private:
  bool prev_;
};

}  // namespace abrr::bgp
