// Canonical path-attribute storage (BIRD/Quagga-style "attrhash").
//
// Identical attribute sets — which route reflection multiplies across
// every client session — are stored once per process. Interning gives
// two hot-path wins: (1) memory: an ARR reflecting one attribute block
// to hundreds of clients shares a single allocation, and (2) time:
// every block carries a precomputed 64-bit content hash, so route-set
// hashing and announcement comparison degrade from deep struct walks to
// one pointer compare (canonical blocks with equal content are the
// *same* block) or one integer compare.
//
// The simulator is single-threaded; the interner is not synchronized.
// global() is THREAD-LOCAL: each worker thread of the parallel
// experiment runner gets its own table, keeping trials thread-confined
// without locks (interning only folds equal allocations, so per-thread
// tables cannot change any result).
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "bgp/attributes.h"

namespace abrr::bgp {

/// 64-bit content hash over every semantic field of an attribute set
/// (everything operator== compares). Never returns 0, so 0 can serve as
/// the "not yet computed" sentinel on PathAttrs::content_hash.
std::uint64_t attrs_content_hash(const PathAttrs& attrs);

/// Process-wide canonicalization table for PathAttrs blocks.
///
/// Entries are held weakly: the interner never extends an attribute
/// block's lifetime, it only folds equal blocks that are alive at the
/// same time into one allocation. Dead entries are pruned opportunistically
/// on bucket collisions and by a periodic full sweep, so the table stays
/// bounded by the number of *live* distinct attribute sets.
class AttrsInterner {
 public:
  /// The calling thread's interner, used by make_attrs().
  static AttrsInterner& global();

  /// Canonicalizes `attrs`: returns the existing block when an equal one
  /// is alive, otherwise moves `attrs` into a fresh canonical block.
  /// Always returns a block with content_hash set.
  AttrsPtr intern(PathAttrs&& attrs);

  /// Live distinct blocks currently tracked (expired entries that have
  /// not been swept yet are not counted).
  std::size_t live_blocks() const;

  /// Drops expired entries; returns how many were removed.
  std::size_t collect();

  // Telemetry for benches and tests.
  std::uint64_t hits() const { return hits_; }
  std::uint64_t misses() const { return misses_; }
  void reset_stats() { hits_ = misses_ = 0; }

  /// Kill switch: with interning disabled, intern() wraps every block in
  /// a fresh allocation (content hash still computed). Used by the
  /// equivalence tests and the legacy-path benchmarks. Per-thread, like
  /// the table itself.
  static void set_enabled(bool enabled);
  static bool enabled();

 private:
  // hash -> blocks with that content hash (almost always exactly one).
  std::unordered_map<std::uint64_t, std::vector<std::weak_ptr<const PathAttrs>>>
      table_;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
  std::uint64_t ops_since_sweep_ = 0;
};

/// RAII guard for tests/benches that need the legacy (non-interned)
/// allocation behaviour.
class ScopedInterningDisabled {
 public:
  ScopedInterningDisabled() : prev_(AttrsInterner::enabled()) {
    AttrsInterner::set_enabled(false);
  }
  ~ScopedInterningDisabled() { AttrsInterner::set_enabled(prev_); }
  ScopedInterningDisabled(const ScopedInterningDisabled&) = delete;
  ScopedInterningDisabled& operator=(const ScopedInterningDisabled&) = delete;

 private:
  bool prev_;
};

}  // namespace abrr::bgp
