#include "bgp/attrs_intern.h"

#include <cassert>
#include <utility>

namespace abrr::bgp {
namespace {

thread_local bool g_interning_enabled = true;

// The active interner for this thread. Null means "use the default
// per-thread instance"; a TrialScope points it at the trial pool.
thread_local AttrsInterner* g_active_interner = nullptr;

AttrsInterner& default_interner() {
  static thread_local AttrsInterner interner;
  return interner;
}

// The per-worker trial pool TrialScope activates. Separate from the
// default instance so a surrounding test/CLI context holding routes is
// never invalidated by a trial's entry reset.
AttrsInterner& trial_pool() {
  static thread_local AttrsInterner pool;
  return pool;
}

void mix(std::uint64_t& h, std::uint64_t v) {
  h ^= v + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
}

}  // namespace

std::uint64_t attrs_content_hash(const PathAttrs& attrs) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  mix(h, static_cast<std::uint64_t>(attrs.origin) + 1);
  mix(h, attrs.next_hop);
  mix(h, attrs.local_pref);
  mix(h, attrs.med ? *attrs.med + 1ULL : 0ULL);
  mix(h, attrs.as_path.length());
  for (const Asn asn : attrs.as_path.asns()) mix(h, asn);
  mix(h, attrs.communities.size());
  for (const Community c : attrs.communities) mix(h, c);
  mix(h, attrs.ext_communities.size());
  for (const ExtCommunity c : attrs.ext_communities) mix(h, c);
  mix(h, attrs.originator_id ? *attrs.originator_id + 1ULL : 0ULL);
  mix(h, attrs.cluster_list.size());
  for (const std::uint32_t c : attrs.cluster_list) mix(h, c);
  return h == 0 ? 1 : h;
}

AttrsInterner& AttrsInterner::global() {
  // Thread-local, not process-wide: the parallel experiment runner runs
  // fully independent trials on worker threads, and the interner is the
  // one piece of hot-path state make_attrs() reaches implicitly. A
  // per-thread table keeps every trial thread-confined with zero
  // synchronization; interning never changes results (only folds equal
  // allocations), so per-thread tables cannot affect determinism.
  AttrsInterner* active = g_active_interner;
  return active != nullptr ? *active : default_interner();
}

void AttrsInterner::set_enabled(bool enabled) { g_interning_enabled = enabled; }
bool AttrsInterner::enabled() { return g_interning_enabled; }

AttrsPtr AttrsInterner::intern(PathAttrs&& attrs) {
  if (attrs.content_hash == 0) attrs.content_hash = attrs_content_hash(attrs);
  if (!g_interning_enabled) {
    // Legacy mode: fresh slab slot per block, no canonicalization. The
    // slot is still reclaimed by the next reset, not by refcounts.
    return arena_.create<PathAttrs>(std::move(attrs));
  }

  const auto [begin, end] = table_.equal_range(attrs.content_hash);
  for (auto it = begin; it != end; ++it) {
    if (*it->second == attrs) {
      ++hits_;
      return it->second;
    }
  }
  ++misses_;
  const PathAttrs* block = arena_.create<PathAttrs>(std::move(attrs));
  table_.emplace(block->content_hash, block);
  return block;
}

void AttrsInterner::reserve(std::size_t expected_blocks) {
  table_.reserve(expected_blocks);
  arena_.reserve(expected_blocks * sizeof(PathAttrs));
}

void AttrsInterner::reset() {
  table_.clear();
  arena_.reset();
}

AttrsInterner::TrialScope::TrialScope(std::size_t expected_blocks)
    : pool_(trial_pool()), prev_(g_active_interner) {
  assert(prev_ != &pool_ && "TrialScope is not reentrant");
  // Reset on entry: the only routes ever allocated from the trial pool
  // belong to the previous trial on this worker, which has completed.
  pool_.reset();
  pool_.reset_stats();
  if (expected_blocks != 0) pool_.reserve(expected_blocks);
  g_active_interner = &pool_;
}

AttrsInterner::TrialScope::~TrialScope() { g_active_interner = prev_; }

}  // namespace abrr::bgp
