#include "bgp/attrs_intern.h"

#include <algorithm>
#include <utility>

namespace abrr::bgp {
namespace {

thread_local bool g_interning_enabled = true;

// Sweep the whole table after this many interns; bounds the dead
// weak_ptr population under attribute churn (MED/path-change replays).
constexpr std::uint64_t kSweepInterval = 1 << 16;

void mix(std::uint64_t& h, std::uint64_t v) {
  h ^= v + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
}

}  // namespace

std::uint64_t attrs_content_hash(const PathAttrs& attrs) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  mix(h, static_cast<std::uint64_t>(attrs.origin) + 1);
  mix(h, attrs.next_hop);
  mix(h, attrs.local_pref);
  mix(h, attrs.med ? *attrs.med + 1ULL : 0ULL);
  mix(h, attrs.as_path.length());
  for (const Asn asn : attrs.as_path.asns()) mix(h, asn);
  mix(h, attrs.communities.size());
  for (const Community c : attrs.communities) mix(h, c);
  mix(h, attrs.ext_communities.size());
  for (const ExtCommunity c : attrs.ext_communities) mix(h, c);
  mix(h, attrs.originator_id ? *attrs.originator_id + 1ULL : 0ULL);
  mix(h, attrs.cluster_list.size());
  for (const std::uint32_t c : attrs.cluster_list) mix(h, c);
  return h == 0 ? 1 : h;
}

AttrsInterner& AttrsInterner::global() {
  // Thread-local, not process-wide: the parallel experiment runner runs
  // fully independent trials on worker threads, and the interner is the
  // one piece of hot-path state make_attrs() reaches implicitly. A
  // per-thread table keeps every trial thread-confined with zero
  // synchronization; interning never changes results (only folds equal
  // allocations), so per-thread tables cannot affect determinism.
  static thread_local AttrsInterner interner;
  return interner;
}

void AttrsInterner::set_enabled(bool enabled) { g_interning_enabled = enabled; }
bool AttrsInterner::enabled() { return g_interning_enabled; }

AttrsPtr AttrsInterner::intern(PathAttrs&& attrs) {
  if (attrs.content_hash == 0) attrs.content_hash = attrs_content_hash(attrs);
  if (!g_interning_enabled) {
    return std::make_shared<const PathAttrs>(std::move(attrs));
  }

  if (++ops_since_sweep_ >= kSweepInterval) {
    ops_since_sweep_ = 0;
    collect();
  }

  auto& bucket = table_[attrs.content_hash];
  for (std::size_t i = 0; i < bucket.size();) {
    if (AttrsPtr live = bucket[i].lock()) {
      if (*live == attrs) {
        ++hits_;
        return live;
      }
      ++i;
    } else {
      // Opportunistic pruning keeps collided buckets short.
      bucket[i] = std::move(bucket.back());
      bucket.pop_back();
    }
  }
  ++misses_;
  auto canonical = std::make_shared<const PathAttrs>(std::move(attrs));
  bucket.push_back(canonical);
  return canonical;
}

std::size_t AttrsInterner::live_blocks() const {
  std::size_t n = 0;
  for (const auto& [hash, bucket] : table_) {
    for (const auto& weak : bucket) n += weak.expired() ? 0 : 1;
  }
  return n;
}

std::size_t AttrsInterner::collect() {
  std::size_t removed = 0;
  for (auto it = table_.begin(); it != table_.end();) {
    auto& bucket = it->second;
    const auto dead = std::remove_if(
        bucket.begin(), bucket.end(),
        [](const std::weak_ptr<const PathAttrs>& w) { return w.expired(); });
    removed += static_cast<std::size_t>(bucket.end() - dead);
    bucket.erase(dead, bucket.end());
    it = bucket.empty() ? table_.erase(it) : std::next(it);
  }
  return removed;
}

}  // namespace abrr::bgp
