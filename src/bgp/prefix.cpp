#include "bgp/prefix.h"

#include <cstdio>
#include <stdexcept>

namespace abrr::bgp {

std::string format_ipv4(Ipv4Addr addr) {
  char buf[16];
  std::snprintf(buf, sizeof buf, "%u.%u.%u.%u", (addr >> 24) & 0xff,
                (addr >> 16) & 0xff, (addr >> 8) & 0xff, addr & 0xff);
  return buf;
}

Ipv4Addr parse_ipv4(const std::string& text) {
  unsigned a, b, c, d;
  char tail;
  const int n =
      std::sscanf(text.c_str(), "%u.%u.%u.%u%c", &a, &b, &c, &d, &tail);
  if (n != 4 || a > 255 || b > 255 || c > 255 || d > 255) {
    throw std::invalid_argument{"bad IPv4 address: " + text};
  }
  return (a << 24) | (b << 16) | (c << 8) | d;
}

Ipv4Prefix::Ipv4Prefix(Ipv4Addr addr, std::uint8_t len) : len_(len) {
  if (len > 32) throw std::invalid_argument{"prefix length > 32"};
  addr_ = addr & mask();
}

Ipv4Prefix Ipv4Prefix::parse(const std::string& text) {
  const auto slash = text.find('/');
  if (slash == std::string::npos) {
    throw std::invalid_argument{"prefix missing '/': " + text};
  }
  const Ipv4Addr addr = parse_ipv4(text.substr(0, slash));
  const int len = std::stoi(text.substr(slash + 1));
  if (len < 0 || len > 32) {
    throw std::invalid_argument{"bad prefix length: " + text};
  }
  return Ipv4Prefix{addr, static_cast<std::uint8_t>(len)};
}

Ipv4Addr Ipv4Prefix::mask() const {
  return len_ == 0 ? 0 : ~Ipv4Addr{0} << (32 - len_);
}

Ipv4Addr Ipv4Prefix::last() const { return addr_ | ~mask(); }

bool Ipv4Prefix::contains(Ipv4Addr addr) const {
  return (addr & mask()) == addr_;
}

bool Ipv4Prefix::contains(const Ipv4Prefix& other) const {
  return other.len_ >= len_ && contains(other.addr_);
}

bool Ipv4Prefix::overlaps(const Ipv4Prefix& other) const {
  return contains(other) || other.contains(*this);
}

std::string Ipv4Prefix::to_string() const {
  return format_ipv4(addr_) + "/" + std::to_string(len_);
}

}  // namespace abrr::bgp
