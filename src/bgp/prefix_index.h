// Dense prefix numbering shared across a testbed.
//
// Experiments know the prefix universe up front; giving each prefix a
// dense id lets speakers keep per-peer advertisement state in flat
// arrays (a few bytes per prefix) instead of node-based maps.
#pragma once

#include <cstdint>
#include <optional>
#include <stdexcept>
#include <unordered_map>
#include <vector>

#include "bgp/prefix.h"

namespace abrr::bgp {

/// Bidirectional mapping Ipv4Prefix <-> dense index.
class PrefixIndex {
 public:
  /// Registers a prefix (idempotent); returns its id.
  std::uint32_t add(const Ipv4Prefix& prefix) {
    const auto [it, inserted] =
        ids_.emplace(prefix, static_cast<std::uint32_t>(prefixes_.size()));
    if (inserted) prefixes_.push_back(prefix);
    return it->second;
  }

  /// Id of a registered prefix, or nullopt.
  std::optional<std::uint32_t> id_of(const Ipv4Prefix& prefix) const {
    const auto it = ids_.find(prefix);
    if (it == ids_.end()) return std::nullopt;
    return it->second;
  }

  const Ipv4Prefix& prefix_of(std::uint32_t id) const {
    if (id >= prefixes_.size()) throw std::out_of_range{"prefix id"};
    return prefixes_[id];
  }

  std::size_t size() const { return prefixes_.size(); }

  const std::vector<Ipv4Prefix>& prefixes() const { return prefixes_; }

 private:
  std::unordered_map<Ipv4Prefix, std::uint32_t> ids_;
  std::vector<Ipv4Prefix> prefixes_;
};

}  // namespace abrr::bgp
