// Flat longest-prefix-match structures for the serving read path.
//
// The experiments (and the serving mode built on them) know the prefix
// universe up front, so longest-prefix matching can be compiled once
// into a flat two-level directory instead of walked bit-by-bit through
// the pointer-chasing PrefixTrie:
//
//   LpmIndex  — immutable map  address -> most-specific universe prefix
//               (a "slot", the same dense id PrefixIndex hands out when
//               built over the same prefix list), plus the next-shorter
//               covering universe prefix per slot (`parent_of`). Layout
//               is a 16/8 DIR table: one 2^16-entry level-1 array
//               indexed by the top 16 address bits whose entries are
//               either a slot or a reference to a 256-entry level-2
//               chunk indexed by bits 15..8; prefixes longer than /24
//               (rare; absent from the paper workloads) live in sorted
//               per-/24 overflow lists behind a flag bit. A lookup is
//               one or two array loads on the hot path — no branches on
//               prefix length, no per-node allocation, no pointer
//               chasing.
//
//   FlatLpm<T> — a PrefixTrie<T>-shaped convenience wrapper (build from
//               (prefix, value) pairs, longest_match(addr)) used by the
//               micro-benchmarks for an honest same-table trie-vs-flat
//               comparison and by anything that wants LPM over a static
//               table without carrying per-router sparsity.
//
// Sparse per-router tables (serving mode: a router's Loc-RIB may lack
// an entry for a universe prefix mid-churn) layer on top: look up the
// leaf slot, then walk parent_of() until a slot the router actually
// holds is found. After convergence every router holds every universe
// prefix, so the walk is zero steps on the steady-state hot path.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <utility>
#include <vector>

#include "bgp/prefix.h"

namespace abrr::bgp {

/// Immutable address -> most-specific-universe-prefix directory.
/// Slots are indices into the prefix list the index was built from.
class LpmIndex {
 public:
  /// "No prefix" sentinel for leaf_of() / parent_of().
  static constexpr std::uint32_t kNoSlot = 0xffff'ffffu;

  LpmIndex() = default;

  /// Builds the directory over `prefixes` (the universe). Slot i refers
  /// to prefixes[i]; duplicate prefixes share the FIRST slot that names
  /// them (later duplicates are never returned). The list is copied so
  /// the index is self-contained and immutable afterwards.
  explicit LpmIndex(std::span<const Ipv4Prefix> prefixes);

  /// Most-specific universe prefix containing `addr`, or kNoSlot.
  std::uint32_t leaf_of(Ipv4Addr addr) const {
    if (level1_.empty()) return kNoSlot;  // default-constructed index
    const std::uint32_t e = level1_[addr >> 16];
    // Branch-free select between the direct entry and the level-2 cell.
    // Whether a /16 block has a chunk is data-dependent noise to the
    // predictor, so a conditional branch here mispredicts constantly on
    // mixed tables; instead ALWAYS load a level-2 cell — direct blocks
    // read the reserved all-kNoSlot chunk 0, which stays hot in L1 —
    // and pick the answer with a conditional move.
    const bool is_chunk = (e >= kChunkFlag) & (e != kNoSlot);
    const std::size_t ci =
        is_chunk ? static_cast<std::size_t>(e & kPayloadMask) : 0;
    const std::uint32_t c = chunk_store_[(ci << 8) + ((addr >> 8) & 0xff)];
    const std::uint32_t leaf = is_chunk ? c : e;
    if (leaf < kChunkFlag || leaf == kNoSlot) return leaf;
    return overflow_leaf(addr, leaf & kPayloadMask);  // /25+, off hot path
  }

  /// Next-shorter universe prefix containing all of slot's prefix, or
  /// kNoSlot at the top of the containment forest.
  std::uint32_t parent_of(std::uint32_t slot) const { return parent_[slot]; }

  const Ipv4Prefix& prefix_at(std::uint32_t slot) const {
    return prefixes_[slot];
  }

  /// Number of slots (== size of the prefix list built from).
  std::size_t size() const { return prefixes_.size(); }
  bool empty() const { return prefixes_.empty(); }

  /// Bytes held by the directory arrays (telemetry).
  std::size_t bytes() const;

  /// Level-2 chunks allocated (telemetry; excludes the reserved dummy
  /// chunk 0 the branch-free lookup reads for chunkless blocks).
  std::size_t chunk_count() const {
    return chunk_store_.empty() ? 0 : (chunk_store_.size() >> 8) - 1;
  }

 private:
  // Level-1/level-2 entry encoding: plain values < kChunkFlag are slots;
  // kNoSlot means "no cover"; otherwise the payload is a chunk index
  // (level 1) or an overflow-list index (level 2).
  static constexpr std::uint32_t kChunkFlag = 0x8000'0000u;
  static constexpr std::uint32_t kPayloadMask = 0x7fff'ffffu;

  std::uint32_t overflow_leaf(Ipv4Addr addr, std::uint32_t list) const;

  std::vector<Ipv4Prefix> prefixes_;
  std::vector<std::uint32_t> parent_;
  std::vector<std::uint32_t> level1_;      // 2^16 entries once built
  std::vector<std::uint32_t> chunk_store_; // 256 entries per chunk
  // Overflow entry: (slot, fallback) — fallback is the best <= /24 slot
  // to report when no overflow prefix contains the address.
  struct OverflowList {
    std::uint32_t fallback = kNoSlot;
    std::vector<std::uint32_t> slots;  // /25+ slots, ascending (addr, len)
  };
  std::vector<OverflowList> overflow_;
};

/// PrefixTrie-shaped flat LPM over a static (prefix, value) table.
template <typename T>
class FlatLpm {
 public:
  FlatLpm() = default;

  /// Builds from a table; on duplicate prefixes the LAST value wins
  /// (matching repeated PrefixTrie::insert semantics).
  explicit FlatLpm(std::vector<std::pair<Ipv4Prefix, T>> table) {
    std::vector<Ipv4Prefix> prefixes;
    prefixes.reserve(table.size());
    for (const auto& [prefix, value] : table) prefixes.push_back(prefix);
    index_ = LpmIndex{prefixes};
    // Entries are slot-indexed with the prefix stored NEXT TO the value:
    // a hit costs one random access into entries_ after leaf_of instead
    // of separate prefix and value fetches.
    entries_.resize(table.size());
    for (std::size_t s = 0; s < table.size(); ++s) {
      entries_[s].first = index_.prefix_at(static_cast<std::uint32_t>(s));
    }
    // LpmIndex resolves duplicates to the first slot; overwrite in table
    // order so that slot carries the last value, as a trie would.
    for (std::size_t i = 0; i < table.size(); ++i) {
      const std::uint32_t leaf = index_.leaf_of(table[i].first.first());
      // The table entry's own prefix always covers its first address;
      // walk up until the slot's prefix is exactly this prefix.
      std::uint32_t slot = leaf;
      while (index_.prefix_at(slot) != table[i].first) {
        slot = index_.parent_of(slot);
      }
      entries_[slot].second = std::move(table[i].second);
    }
  }

  /// Longest-prefix match; mirrors PrefixTrie::longest_match.
  std::optional<std::pair<Ipv4Prefix, const T*>> longest_match(
      Ipv4Addr addr) const {
    const std::uint32_t slot = index_.leaf_of(addr);
    if (slot == LpmIndex::kNoSlot) return std::nullopt;
    const auto& e = entries_[slot];
    return std::pair<Ipv4Prefix, const T*>{e.first, &e.second};
  }

  const LpmIndex& index() const { return index_; }
  std::size_t size() const { return index_.size(); }

 private:
  LpmIndex index_;
  std::vector<std::pair<Ipv4Prefix, T>> entries_;  // slot-indexed
};

}  // namespace abrr::bgp
