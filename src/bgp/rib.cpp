#include "bgp/rib.h"

#include <algorithm>
#include <stdexcept>

namespace abrr::bgp {

AdjRibIn::Change AdjRibIn::announce(const Route& route) {
  if (!route.valid()) throw std::invalid_argument{"announce: invalid route"};
  auto& paths = table_[route.prefix];
  const Key key{route.learned_from, route.path_id};
  const auto it = paths.find(key);
  if (it == paths.end()) {
    paths.emplace(key, route);
    ++size_;
    ++per_peer_[route.learned_from];
    return Change::kAdded;
  }
  if (it->second.same_announcement(route) && it->second.via == route.via) {
    return Change::kUnchanged;
  }
  it->second = route;
  return Change::kReplaced;
}

bool AdjRibIn::withdraw(RouterId peer, const Ipv4Prefix& prefix,
                        PathId path_id) {
  const auto pit = table_.find(prefix);
  if (pit == table_.end()) return false;
  if (pit->second.erase(Key{peer, path_id}) == 0) return false;
  --size_;
  --per_peer_[peer];
  if (pit->second.empty()) table_.erase(pit);
  return true;
}

std::size_t AdjRibIn::withdraw_prefix(RouterId peer, const Ipv4Prefix& prefix) {
  const auto pit = table_.find(prefix);
  if (pit == table_.end()) return 0;
  std::size_t removed = 0;
  for (auto it = pit->second.begin(); it != pit->second.end();) {
    if (it->first.first == peer) {
      it = pit->second.erase(it);
      ++removed;
    } else {
      ++it;
    }
  }
  size_ -= removed;
  per_peer_[peer] -= removed;
  if (pit->second.empty()) table_.erase(pit);
  return removed;
}

std::vector<Ipv4Prefix> AdjRibIn::withdraw_peer(RouterId peer) {
  std::vector<Ipv4Prefix> affected;
  for (auto it = table_.begin(); it != table_.end();) {
    std::size_t removed = 0;
    for (auto pit = it->second.begin(); pit != it->second.end();) {
      if (pit->first.first == peer) {
        pit = it->second.erase(pit);
        ++removed;
      } else {
        ++pit;
      }
    }
    if (removed > 0) {
      affected.push_back(it->first);
      size_ -= removed;
    }
    it = it->second.empty() ? table_.erase(it) : std::next(it);
  }
  per_peer_.erase(peer);
  return affected;
}

std::vector<Route> AdjRibIn::routes_for(const Ipv4Prefix& prefix) const {
  std::vector<Route> out;
  const auto it = table_.find(prefix);
  if (it == table_.end()) return out;
  out.reserve(it->second.size());
  for (const auto& [key, route] : it->second) out.push_back(route);
  return out;
}

std::size_t AdjRibIn::peer_size(RouterId peer) const {
  const auto it = per_peer_.find(peer);
  return it == per_peer_.end() ? 0 : it->second;
}

void AdjRibIn::for_each(const std::function<void(const Route&)>& fn) const {
  for (const auto& [prefix, paths] : table_) {
    for (const auto& [key, route] : paths) fn(route);
  }
}

bool LocRib::install(const Route& route) {
  if (!route.valid()) throw std::invalid_argument{"install: invalid route"};
  auto [it, inserted] = table_.emplace(route.prefix, route);
  if (inserted) return true;
  if (it->second.same_announcement(route) &&
      it->second.learned_from == route.learned_from &&
      it->second.via == route.via) {
    return false;
  }
  it->second = route;
  return true;
}

bool LocRib::remove(const Ipv4Prefix& prefix) {
  return table_.erase(prefix) > 0;
}

const Route* LocRib::best(const Ipv4Prefix& prefix) const {
  const auto it = table_.find(prefix);
  return it == table_.end() ? nullptr : &it->second;
}

void LocRib::for_each(const std::function<void(const Route&)>& fn) const {
  for (const auto& [prefix, route] : table_) fn(route);
}

namespace {

bool same_route_set(const std::vector<Route>& a, const std::vector<Route>& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (!a[i].same_announcement(b[i])) return false;
  }
  return true;
}

}  // namespace

std::optional<UpdateMessage> AdjRibOut::set(const Ipv4Prefix& prefix,
                                            std::vector<Route> routes,
                                            bool full_set) {
  // Canonical order: by path id, so set comparison is stable.
  std::sort(routes.begin(), routes.end(), [](const Route& a, const Route& b) {
    return a.path_id < b.path_id;
  });

  const auto it = table_.find(prefix);
  const std::vector<Route>* old = it == table_.end() ? nullptr : &it->second;
  if (old == nullptr && routes.empty()) return std::nullopt;
  if (old != nullptr && same_route_set(*old, routes)) return std::nullopt;

  UpdateMessage msg;
  msg.prefix = prefix;
  msg.full_set = full_set;
  if (full_set) {
    msg.announce = routes;
  } else {
    // add-paths diff: announce new/changed paths, withdraw removed ones.
    for (const Route& r : routes) {
      const bool unchanged =
          old != nullptr &&
          std::any_of(old->begin(), old->end(), [&](const Route& o) {
            return o.same_announcement(r);
          });
      if (!unchanged) msg.announce.push_back(r);
    }
    if (old != nullptr) {
      for (const Route& o : *old) {
        const bool still =
            std::any_of(routes.begin(), routes.end(), [&](const Route& r) {
              return r.path_id == o.path_id;
            });
        if (!still) msg.withdraw.push_back(o.path_id);
      }
    }
  }

  // Commit.
  if (old != nullptr) size_ -= old->size();
  size_ += routes.size();
  if (routes.empty()) {
    table_.erase(prefix);
  } else {
    table_[prefix] = std::move(routes);
  }
  return msg;
}

const std::vector<Route>* AdjRibOut::get(const Ipv4Prefix& prefix) const {
  const auto it = table_.find(prefix);
  return it == table_.end() ? nullptr : &it->second;
}

void AdjRibOut::for_each(
    const std::function<void(const Ipv4Prefix&, const std::vector<Route>&)>&
        fn) const {
  for (const auto& [prefix, routes] : table_) fn(prefix, routes);
}

}  // namespace abrr::bgp
