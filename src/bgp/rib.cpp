#include "bgp/rib.h"

#include <algorithm>
#include <stdexcept>

namespace abrr::bgp {
namespace {

struct KeyLess {
  bool operator()(const Route& entry,
                  const std::pair<RouterId, PathId>& key) const {
    return AdjRibIn::key_of(entry) < key;
  }
};

}  // namespace

// --- AdjRibIn ---------------------------------------------------------

void AdjRibIn::set_prefix_index(std::shared_ptr<const PrefixIndex> index) {
  index_ = std::move(index);
  if (!index_) return;
  if (flat_.size() < index_->size()) flat_.resize(index_->size());
  // Migrate entries that are now indexable out of the fallback map.
  for (auto it = table_.begin(); it != table_.end();) {
    const auto id = index_->id_of(it->first);
    if (id) {
      flat_[*id] = std::move(it->second);
      it = table_.erase(it);
    } else {
      ++it;
    }
  }
}

const AdjRibIn::PathList* AdjRibIn::find_list(const Ipv4Prefix& prefix) const {
  if (index_) {
    const auto id = index_->id_of(prefix);
    if (id) {
      if (*id >= flat_.size() || flat_[*id].empty()) return nullptr;
      return &flat_[*id];
    }
  }
  const auto it = table_.find(prefix);
  if (it == table_.end() || it->second.empty()) return nullptr;
  return &it->second;
}

AdjRibIn::PathList& AdjRibIn::ensure_list(const Ipv4Prefix& prefix) {
  if (index_) {
    const auto id = index_->id_of(prefix);
    if (id) {
      if (*id >= flat_.size()) flat_.resize(index_->size());
      return flat_[*id];
    }
  }
  return table_[prefix];
}

void AdjRibIn::erase_if_empty(const Ipv4Prefix& prefix) {
  // Flat slots keep their (empty) vector; only the fallback map sheds
  // nodes, matching the old per-prefix erase.
  if (index_ && index_->id_of(prefix)) return;
  const auto it = table_.find(prefix);
  if (it != table_.end() && it->second.empty()) table_.erase(it);
}

AdjRibIn::Change AdjRibIn::announce(const Route& route) {
  if (!route.valid()) throw std::invalid_argument{"announce: invalid route"};
  PathList& paths = ensure_list(route.prefix);
  const Key key{route.learned_from, route.path_id};
  const auto it =
      std::lower_bound(paths.begin(), paths.end(), key, KeyLess{});
  if (it == paths.end() || key_of(*it) != key) {
    paths.insert(it, route);
    ++size_;
    ++per_peer_[route.learned_from];
    return Change::kAdded;
  }
  if (it->same_announcement(route) && it->via == route.via) {
    return Change::kUnchanged;
  }
  *it = route;
  return Change::kReplaced;
}

bool AdjRibIn::withdraw(RouterId peer, const Ipv4Prefix& prefix,
                        PathId path_id) {
  PathList& paths = ensure_list(prefix);
  const Key key{peer, path_id};
  const auto it =
      std::lower_bound(paths.begin(), paths.end(), key, KeyLess{});
  if (it == paths.end() || key_of(*it) != key) {
    erase_if_empty(prefix);
    return false;
  }
  paths.erase(it);
  --size_;
  --per_peer_[peer];
  erase_if_empty(prefix);
  return true;
}

std::size_t AdjRibIn::withdraw_prefix(RouterId peer, const Ipv4Prefix& prefix) {
  PathList& paths = ensure_list(prefix);
  const std::size_t before = paths.size();
  std::erase_if(paths, [&](const Route& entry) {
    return entry.learned_from == peer;
  });
  const std::size_t removed = before - paths.size();
  size_ -= removed;
  per_peer_[peer] -= removed;
  erase_if_empty(prefix);
  return removed;
}

std::vector<Ipv4Prefix> AdjRibIn::withdraw_peer(RouterId peer) {
  std::vector<Ipv4Prefix> affected;
  const auto purge = [&](const Ipv4Prefix& prefix, PathList& paths) {
    const std::size_t before = paths.size();
    std::erase_if(paths, [&](const Route& entry) {
      return entry.learned_from == peer;
    });
    if (paths.size() != before) {
      affected.push_back(prefix);
      size_ -= before - paths.size();
    }
  };
  for (std::size_t id = 0; id < flat_.size(); ++id) {
    if (!flat_[id].empty()) purge(index_->prefix_of(id), flat_[id]);
  }
  for (auto it = table_.begin(); it != table_.end();) {
    purge(it->first, it->second);
    it = it->second.empty() ? table_.erase(it) : std::next(it);
  }
  per_peer_.erase(peer);
  // Sorted so downstream re-decisions run in a storage-independent
  // (and deterministic) order.
  std::sort(affected.begin(), affected.end());
  return affected;
}

std::vector<Route> AdjRibIn::routes_for(const Ipv4Prefix& prefix) const {
  std::vector<Route> out;
  const PathList* paths = find_list(prefix);
  if (paths == nullptr) return out;
  out.reserve(paths->size());
  out.assign(paths->begin(), paths->end());
  return out;
}

void AdjRibIn::routes_for(const Ipv4Prefix& prefix,
                          std::vector<const Route*>& out) const {
  out.clear();
  const PathList* paths = find_list(prefix);
  if (paths == nullptr) return;
  out.reserve(paths->size());
  for (const Route& route : *paths) out.push_back(&route);
}

std::size_t AdjRibIn::peer_size(RouterId peer) const {
  const auto it = per_peer_.find(peer);
  return it == per_peer_.end() ? 0 : it->second;
}

void AdjRibIn::for_each(const std::function<void(const Route&)>& fn) const {
  for (const PathList& paths : flat_) {
    for (const Route& route : paths) fn(route);
  }
  for (const auto& [prefix, paths] : table_) {
    for (const Route& route : paths) fn(route);
  }
}

void AdjRibIn::clear() {
  for (PathList& paths : flat_) paths.clear();
  table_.clear();
  per_peer_.clear();
  size_ = 0;
}

// --- LocRib -----------------------------------------------------------

void LocRib::set_prefix_index(std::shared_ptr<const PrefixIndex> index) {
  index_ = std::move(index);
  if (!index_) return;
  if (flat_.size() < index_->size()) flat_.resize(index_->size());
  for (auto it = table_.begin(); it != table_.end();) {
    const auto id = index_->id_of(it->first);
    if (id) {
      flat_[*id] = std::move(it->second);
      ++flat_count_;
      it = table_.erase(it);
    } else {
      ++it;
    }
  }
}

bool LocRib::install(const Route& route) {
  if (!route.valid()) throw std::invalid_argument{"install: invalid route"};
  if (index_) {
    const auto id = index_->id_of(route.prefix);
    if (id) {
      if (*id >= flat_.size()) flat_.resize(index_->size());
      Route& slot = flat_[*id];
      if (!slot.valid()) {
        slot = route;
        ++flat_count_;
        return true;
      }
      if (slot.same_announcement(route) &&
          slot.learned_from == route.learned_from && slot.via == route.via) {
        return false;
      }
      slot = route;
      return true;
    }
  }
  auto [it, inserted] = table_.emplace(route.prefix, route);
  if (inserted) return true;
  if (it->second.same_announcement(route) &&
      it->second.learned_from == route.learned_from &&
      it->second.via == route.via) {
    return false;
  }
  it->second = route;
  return true;
}

bool LocRib::remove(const Ipv4Prefix& prefix) {
  if (index_) {
    const auto id = index_->id_of(prefix);
    if (id) {
      if (*id >= flat_.size() || !flat_[*id].valid()) return false;
      flat_[*id] = Route{};
      --flat_count_;
      return true;
    }
  }
  return table_.erase(prefix) > 0;
}

const Route* LocRib::best(const Ipv4Prefix& prefix) const {
  if (index_) {
    const auto id = index_->id_of(prefix);
    if (id) {
      if (*id >= flat_.size() || !flat_[*id].valid()) return nullptr;
      return &flat_[*id];
    }
  }
  const auto it = table_.find(prefix);
  return it == table_.end() ? nullptr : &it->second;
}

void LocRib::for_each(const std::function<void(const Route&)>& fn) const {
  for (const Route& route : flat_) {
    if (route.valid()) fn(route);
  }
  for (const auto& [prefix, route] : table_) fn(route);
}

void LocRib::clear() {
  for (Route& route : flat_) route = Route{};
  flat_count_ = 0;
  table_.clear();
}

// --- AdjRibOut --------------------------------------------------------

void AdjRibOut::set_prefix_index(std::shared_ptr<const PrefixIndex> index) {
  index_ = std::move(index);
  if (!index_) return;
  if (flat_.size() < index_->size()) flat_.resize(index_->size());
  for (auto it = table_.begin(); it != table_.end();) {
    const auto id = index_->id_of(it->first);
    if (id) {
      flat_[*id] = std::move(it->second);
      it = table_.erase(it);
    } else {
      ++it;
    }
  }
}

namespace {

bool same_route_set(const std::vector<Route>& a, const std::vector<Route>& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (!a[i].same_announcement(b[i])) return false;
  }
  return true;
}

}  // namespace

std::optional<UpdateMessage> AdjRibOut::set(const Ipv4Prefix& prefix,
                                            std::vector<Route> routes,
                                            bool full_set) {
  // Canonical order: by path id, so set comparison is stable.
  std::sort(routes.begin(), routes.end(), [](const Route& a, const Route& b) {
    return a.path_id < b.path_id;
  });

  std::vector<Route>* slot = nullptr;
  if (index_) {
    const auto id = index_->id_of(prefix);
    if (id) {
      if (*id >= flat_.size()) flat_.resize(index_->size());
      slot = &flat_[*id];
    }
  }
  const std::vector<Route>* old = nullptr;
  if (slot != nullptr) {
    old = slot->empty() ? nullptr : slot;
  } else {
    const auto it = table_.find(prefix);
    old = it == table_.end() ? nullptr : &it->second;
  }
  if (old == nullptr && routes.empty()) return std::nullopt;
  if (old != nullptr && same_route_set(*old, routes)) return std::nullopt;

  UpdateMessage msg;
  msg.prefix = prefix;
  msg.full_set = full_set;
  if (full_set) {
    msg.announce = routes;
  } else {
    // add-paths diff: announce new/changed paths, withdraw removed ones.
    for (const Route& r : routes) {
      const bool unchanged =
          old != nullptr &&
          std::any_of(old->begin(), old->end(), [&](const Route& o) {
            return o.same_announcement(r);
          });
      if (!unchanged) msg.announce.push_back(r);
    }
    if (old != nullptr) {
      for (const Route& o : *old) {
        const bool still =
            std::any_of(routes.begin(), routes.end(), [&](const Route& r) {
              return r.path_id == o.path_id;
            });
        if (!still) msg.withdraw.push_back(o.path_id);
      }
    }
  }

  // Commit.
  if (old != nullptr) size_ -= old->size();
  size_ += routes.size();
  if (slot != nullptr) {
    *slot = std::move(routes);
  } else if (routes.empty()) {
    table_.erase(prefix);
  } else {
    table_[prefix] = std::move(routes);
  }
  return msg;
}

const std::vector<Route>* AdjRibOut::get(const Ipv4Prefix& prefix) const {
  if (index_) {
    const auto id = index_->id_of(prefix);
    if (id) {
      if (*id >= flat_.size() || flat_[*id].empty()) return nullptr;
      return &flat_[*id];
    }
  }
  const auto it = table_.find(prefix);
  return it == table_.end() ? nullptr : &it->second;
}

void AdjRibOut::clear() {
  for (std::vector<Route>& routes : flat_) routes.clear();
  table_.clear();
  size_ = 0;
}

void AdjRibOut::for_each(
    const std::function<void(const Ipv4Prefix&, const std::vector<Route>&)>&
        fn) const {
  for (std::size_t id = 0; id < flat_.size(); ++id) {
    if (!flat_[id].empty()) fn(index_->prefix_of(id), flat_[id]);
  }
  for (const auto& [prefix, routes] : table_) fn(prefix, routes);
}

}  // namespace abrr::bgp
