// Nested testbed configuration: the grouped form of the historical flat
// TestbedOptions. ScenarioSpec (src/runner) embeds these sub-structs
// directly; TestbedOptions (harness/testbed.h) remains as a thin flat
// adapter over TestbedConfig so existing call sites compile unchanged.
#pragma once

#include <cstddef>
#include <cstdint>

#include "bgp/decision.h"
#include "ibgp/speaker.h"
#include "obs/obs.h"
#include "sim/time.h"

namespace abrr::harness {

/// Control-plane timing: pacing, processing and propagation delays.
struct TimingOptions {
  sim::Time mrai = sim::sec(5);
  sim::Time proc_delay = sim::msec(50);
  sim::Time proc_per_update = sim::usec(50);
  /// Session latency = 1ms + IGP distance x this (+ uniform jitter).
  sim::Time latency_per_metric = sim::usec(100);
  sim::Time latency_jitter = sim::msec(10);
  /// iBGP hold time for failure detection (RFC 4271 §6.5 semantics);
  /// 0 disables timers entirely — peers only go down via explicit
  /// session_down — preserving the fault-free behavior bit for bit.
  sim::Time hold_time = 0;
};

/// ABRR partitioning knobs (ignored by kFullMesh / kTbrr beds).
struct AbrrOptions {
  std::size_t num_aps = 8;
  std::size_t arrs_per_ap = 2;
  /// Balance APs on the experiment's prefix set instead of uniform
  /// address ranges.
  bool balanced_aps = false;
  /// §3.4 ablation: force client-side reduction on data-plane routers.
  bool force_client_reduction = false;
};

/// A fault episode run against the trial after it converges. Pure data:
/// the runner (src/runner) interprets it via the fault subsystem, the
/// testbed itself never reads it. Kept beside the other sub-structs so
/// ScenarioSpec composes one options vocabulary.
struct FaultOptions {
  bool enabled = false;

  enum class Scenario {
    kRrCrash,      // first reflector dies for `outage`, restarts
    kBorderCrash,  // first border router dies, restarts with state loss
    kChaos,        // seeded chaos schedule (chaos_events faults)
  };
  Scenario scenario = Scenario::kRrCrash;

  /// Hold time armed for the episode (failure detection). Must be > 0
  /// when enabled; overrides TimingOptions::hold_time for the trial.
  sim::Time hold_time = sim::sec(3);
  /// Crash outage length (kRrCrash / kBorderCrash).
  sim::Time outage = sim::sec(10);
  /// Also build an untouched full-mesh bed (same topology/workload/seed)
  /// and verify the recovered bed is full-mesh-equivalent.
  bool verify_fullmesh = true;
  /// kChaos: number of generated fault events and the offset added to
  /// the trial seed for the chaos stream.
  std::size_t chaos_events = 12;
  std::uint64_t chaos_seed_offset = 99;
};

/// The grouped testbed configuration (what Testbed actually consumes).
struct TestbedConfig {
  ibgp::IbgpMode mode = ibgp::IbgpMode::kFullMesh;
  /// TBRR-multi (Appendix A.3) when mode covers TBRR.
  bool multipath = false;
  AbrrOptions abrr;
  TimingOptions timing;
  bgp::DecisionConfig decision{};
  std::uint64_t seed = 7;
  /// Dense prefix-indexed RIB/speaker storage (the fast path). Disable
  /// to exercise the map-fallback storage (equivalence tests, legacy
  /// benchmarks); results must be identical either way.
  bool use_prefix_index = true;
  /// Observability. The metrics registry always exists (counters are the
  /// single source of truth either way); `obs.enabled` additionally
  /// attaches the event tracer and starts the virtual-time RIB sampler.
  obs::ObsOptions obs{};
};

}  // namespace abrr::harness
