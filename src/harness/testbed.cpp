#include "harness/testbed.h"

#include <algorithm>
#include <limits>
#include <stdexcept>
#include <string>

namespace abrr::harness {

Testbed::Testbed(topo::Topology topology, const TestbedConfig& config,
                 std::span<const Ipv4Prefix> prefixes)
    : topology_(std::move(topology)),
      config_(config),
      rng_(config.seed),
      network_(scheduler_, rng_),
      obs_(std::make_unique<obs::Obs>(scheduler_, config.obs)) {
  network_.set_metrics(&obs_->metrics());
  network_.set_tracer(obs_->tracer());
  if (config_.use_prefix_index) {
    prefix_index_ = std::make_shared<bgp::PrefixIndex>();
    for (const Ipv4Prefix& p : prefixes) prefix_index_->add(p);
  }

  switch (config_.mode) {
    case ibgp::IbgpMode::kFullMesh:
      spf_ = std::make_unique<igp::SpfCache>(topology_.graph);
      wire_full_mesh();
      break;
    case ibgp::IbgpMode::kTbrr:
      spf_ = std::make_unique<igp::SpfCache>(topology_.graph);
      wire_tbrr(/*dual=*/false);
      break;
    case ibgp::IbgpMode::kAbrr:
      wire_abrr(/*dual=*/false, prefixes);
      break;
    case ibgp::IbgpMode::kDual:
      wire_abrr(/*dual=*/true, prefixes);
      break;
  }

  for (const auto& [id, speaker] : speakers_) {
    speaker->set_igp(spf_->distance_fn(id));
    speaker->start();
  }

  if (obs_->enabled()) start_sampler();
}

void Testbed::start_sampler() {
  auto& m = obs_->metrics();
  obs::Gauge* loc = m.gauge("rib.loc_total");
  obs::Gauge* adj_in = m.gauge("rib.adj_in_total");
  obs::Gauge* adj_out = m.gauge("rib.adj_out_total");
  obs::Gauge* queued = m.gauge("queue.input_total");
  obs::Gauge* sessions = m.gauge("net.sessions");
  obs::Gauge* alive = m.gauge("speakers.alive");
  obs::Sampler& sampler = *obs_->sampler();
  // The refresh recomputes every gauge from live state right before each
  // sample; iteration over all_ids_ keeps it deterministic (not that it
  // matters for sums, but it keeps the callback boring).
  sampler.set_refresh([this, loc, adj_in, adj_out, queued, sessions, alive] {
    double l = 0, ai = 0, ao = 0, q = 0, up = 0;
    for (const RouterId id : all_ids_) {
      const auto& sp = *speakers_.at(id);
      l += static_cast<double>(sp.loc_rib().size());
      ai += static_cast<double>(sp.rib_in_size());
      ao += static_cast<double>(sp.rib_out_size());
      q += static_cast<double>(sp.input_queue_size());
      if (sp.alive()) up += 1;
    }
    loc->set(l);
    adj_in->set(ai);
    adj_out->set(ao);
    queued->set(q);
    sessions->set(static_cast<double>(network_.session_count()));
    alive->set(up);
  });
  sampler.track("loc_rib", loc);
  sampler.track("adj_rib_in", adj_in);
  sampler.track("adj_rib_out", adj_out);
  sampler.track("input_queue", queued);
  sampler.track("sessions", sessions);
  sampler.track("speakers_alive", alive);
  sampler.start();
}

ibgp::Speaker& Testbed::make_speaker(ibgp::SpeakerConfig cfg) {
  cfg.decision = config_.decision;
  cfg.mrai = config_.timing.mrai;
  cfg.proc_delay = config_.timing.proc_delay;
  cfg.proc_per_update = config_.timing.proc_per_update;
  cfg.abrr_force_client_reduction = config_.abrr.force_client_reduction;
  cfg.hold_time = config_.timing.hold_time;
  auto speaker = std::make_unique<ibgp::Speaker>(cfg, scheduler_, network_,
                                                 &obs_->metrics());
  speaker->set_tracer(obs_->tracer());
  if (prefix_index_) speaker->set_prefix_index(prefix_index_);
  auto& ref = *speaker;
  speakers_.emplace(cfg.id, std::move(speaker));
  all_ids_.push_back(cfg.id);
  if (ref.is_rr()) rr_ids_.push_back(cfg.id);
  if (cfg.data_plane) client_ids_.push_back(cfg.id);
  return ref;
}

void Testbed::connect(RouterId a, RouterId b) {
  if (network_.connected(a, b)) return;
  const auto metric = spf_->distance(a, b);
  sim::Time latency = sim::msec(1);
  if (metric != bgp::kIgpInfinity) {
    latency += metric * config_.timing.latency_per_metric;
  }
  network_.connect(a, b, latency, config_.timing.latency_jitter);
}

void Testbed::wire_full_mesh() {
  for (const auto& r : topology_.clients) {
    ibgp::SpeakerConfig cfg;
    cfg.id = r.id;
    cfg.asn = topology_.local_as;
    cfg.mode = ibgp::IbgpMode::kFullMesh;
    make_speaker(cfg);
  }
  for (std::size_t i = 0; i < topology_.clients.size(); ++i) {
    for (std::size_t j = i + 1; j < topology_.clients.size(); ++j) {
      const RouterId a = topology_.clients[i].id;
      const RouterId b = topology_.clients[j].id;
      connect(a, b);
      speakers_.at(a)->add_peer(ibgp::PeerInfo{.id = b});
      speakers_.at(b)->add_peer(ibgp::PeerInfo{.id = a});
    }
  }
}

void Testbed::wire_tbrr(bool dual) {
  const auto mode = dual ? ibgp::IbgpMode::kDual : ibgp::IbgpMode::kTbrr;
  // Clients.
  for (const auto& r : topology_.clients) {
    ibgp::SpeakerConfig cfg;
    cfg.id = r.id;
    cfg.asn = topology_.local_as;
    cfg.mode = mode;
    if (dual) cfg.ap_of = ap_of_;
    make_speaker(cfg);
  }
  // TRRs: control-plane boxes, CLUSTER_ID = cluster + 1 (non-zero).
  // In dual mode the freshly created ARR nodes are already in
  // topology_.reflectors; skip them here (they have no cluster).
  for (const auto& rr : topology_.reflectors) {
    if (rr.cluster == std::numeric_limits<std::uint32_t>::max()) continue;
    ibgp::SpeakerConfig cfg;
    cfg.id = rr.id;
    cfg.asn = topology_.local_as;
    cfg.mode = mode;
    if (dual) cfg.ap_of = ap_of_;
    cfg.cluster_id = rr.cluster + 1;
    cfg.multipath = config_.multipath;
    cfg.data_plane = false;
    make_speaker(cfg);
  }
  // Client <-> own-cluster TRRs.
  for (const auto& r : topology_.clients) {
    for (const auto* rr : topology_.cluster_reflectors(r.cluster)) {
      connect(r.id, rr->id);
      speakers_.at(r.id)->add_peer(
          ibgp::PeerInfo{.id = rr->id, .reflector_tbrr = true});
      speakers_.at(rr->id)->add_peer(
          ibgp::PeerInfo{.id = r.id, .rr_client = true});
    }
  }
  // TRR full mesh.
  std::vector<RouterId> trrs;
  for (const auto& rr : topology_.reflectors) {
    if (rr.cluster != std::numeric_limits<std::uint32_t>::max()) {
      trrs.push_back(rr.id);
    }
  }
  for (std::size_t i = 0; i < trrs.size(); ++i) {
    for (std::size_t j = i + 1; j < trrs.size(); ++j) {
      connect(trrs[i], trrs[j]);
      speakers_.at(trrs[i])->add_peer(
          ibgp::PeerInfo{.id = trrs[j], .rr_peer = true});
      speakers_.at(trrs[j])->add_peer(
          ibgp::PeerInfo{.id = trrs[i], .rr_peer = true});
    }
  }
}

void Testbed::wire_abrr(bool dual, std::span<const Ipv4Prefix> prefixes) {
  partition_ = config_.abrr.balanced_aps
                   ? core::PartitionScheme::balanced(
                         config_.abrr.num_aps,
                         std::vector<Ipv4Prefix>(prefixes.begin(),
                                                 prefixes.end()))
                   : core::PartitionScheme::uniform(config_.abrr.num_aps);
  ap_of_ = partition_->mapper();
  const auto& ap_of = ap_of_;

  // ARR nodes: reuse the topology's control-plane boxes first. In dual
  // (transition) mode those boxes stay TRRs, so all ARRs are new nodes.
  std::vector<RouterId> arr_pool;
  if (!dual) {
    for (const auto& rr : topology_.reflectors) arr_pool.push_back(rr.id);
  }
  const std::size_t needed = config_.abrr.num_aps * config_.abrr.arrs_per_ap;
  RouterId next_id = 1;
  for (const auto& r : topology_.clients) next_id = std::max(next_id, r.id);
  for (const auto& r : topology_.reflectors) next_id = std::max(next_id, r.id);
  ++next_id;
  while (arr_pool.size() < needed) {
    // Placement freedom (§2.3.3): attach anywhere; we pick a random PoP.
    const auto pop =
        static_cast<std::uint32_t>(rng_.index(topology_.params.pops));
    const RouterId id = next_id++;
    topology_.graph.add_link(id, topo::hub_of(pop), 2);
    topology_.reflectors.push_back(topo::ReflectorSpec{
        id, pop, std::numeric_limits<std::uint32_t>::max()});
    arr_pool.push_back(id);
  }
  // The graph may have grown: (re)build the SPF cache now.
  spf_ = std::make_unique<igp::SpfCache>(topology_.graph);

  if (dual) wire_tbrr(/*dual=*/true);

  // Clients (pure ABRR; in dual mode wire_tbrr made them already).
  if (!dual) {
    for (const auto& r : topology_.clients) {
      ibgp::SpeakerConfig cfg;
      cfg.id = r.id;
      cfg.asn = topology_.local_as;
      cfg.mode = ibgp::IbgpMode::kAbrr;
      cfg.ap_of = ap_of;
      make_speaker(cfg);
    }
  }

  // ARRs.
  std::vector<RouterId> arr_ids;
  for (std::size_t ap = 0; ap < config_.abrr.num_aps; ++ap) {
    for (std::size_t k = 0; k < config_.abrr.arrs_per_ap; ++k) {
      const RouterId id = arr_pool[ap * config_.abrr.arrs_per_ap + k];
      ibgp::SpeakerConfig cfg;
      cfg.id = id;
      cfg.asn = topology_.local_as;
      cfg.mode = dual ? ibgp::IbgpMode::kDual : ibgp::IbgpMode::kAbrr;
      cfg.ap_of = ap_of;
      cfg.managed_aps = {static_cast<ibgp::ApId>(ap)};
      cfg.data_plane = false;
      make_speaker(cfg);
      arr_ap_.emplace(id, static_cast<ibgp::ApId>(ap));
      arr_directory_.assign(static_cast<ibgp::ApId>(ap), id);
      arr_ids.push_back(id);
    }
  }

  // Sessions: every ARR <-> every client, and ARR <-> ARR across APs.
  const auto link = [&](RouterId arr, RouterId other) {
    connect(arr, other);
    // The ARR reflects to `other`; `other` is a client of `arr`'s AP.
    speakers_.at(arr)->add_peer(ibgp::PeerInfo{.id = other, .rr_client = true});
    auto& peer = *speakers_.at(other);
    ibgp::PeerInfo info;
    info.id = arr;
    info.reflector_for = {arr_ap_.at(arr)};
    // Cross-ARR sessions are symmetric client relationships.
    if (arr_ap_.count(other) != 0) info.rr_client = true;
    peer.add_peer(info);
  };
  for (const RouterId arr : arr_ids) {
    for (const auto& r : topology_.clients) link(arr, r.id);
    for (const RouterId other : arr_ids) {
      if (other == arr) continue;
      if (arr_ap_.at(other) == arr_ap_.at(arr)) continue;  // same AP: none
      if (other < arr) continue;  // wire each pair once, both directions
      connect(arr, other);
      ibgp::PeerInfo a_view;  // how `arr` sees `other`
      a_view.id = other;
      a_view.rr_client = true;
      a_view.reflector_for = {arr_ap_.at(other)};
      speakers_.at(arr)->add_peer(a_view);
      ibgp::PeerInfo b_view;
      b_view.id = arr;
      b_view.rr_client = true;
      b_view.reflector_for = {arr_ap_.at(arr)};
      speakers_.at(other)->add_peer(b_view);
    }
  }
}

ibgp::Speaker& Testbed::speaker(RouterId id) {
  const auto it = speakers_.find(id);
  if (it == speakers_.end()) {
    throw std::out_of_range{"Testbed::speaker: unknown router id " +
                            std::to_string(id) + " (testbed knows " +
                            std::to_string(speakers_.size()) +
                            " speaker ids)"};
  }
  return *it->second;
}

const ibgp::Speaker& Testbed::speaker(RouterId id) const {
  return const_cast<Testbed*>(this)->speaker(id);
}

trace::InjectFn Testbed::inject_fn() {
  return [this](RouterId router, RouterId neighbor, const Ipv4Prefix& prefix,
                const std::optional<bgp::Route>& route) {
    auto& s = speaker(router);
    if (route) {
      s.inject_ebgp(neighbor, *route);
    } else {
      s.withdraw_ebgp(neighbor, prefix);
    }
  };
}

void Testbed::attach_rib_listener(
    std::function<void(RouterId, const Ipv4Prefix&, const bgp::Route*)>
        on_change,
    std::function<void(RouterId)> on_cleared) {
  for (const RouterId id : all_ids_) {
    ibgp::Speaker& s = *speakers_.at(id);
    s.set_best_change_hook(
        [id, on_change](const Ipv4Prefix& prefix, const bgp::Route* best) {
          on_change(id, prefix, best);
        });
    s.set_rib_cleared_hook([id, on_cleared] { on_cleared(id); });
  }
}

bool Testbed::run_to_quiescence(std::size_t max_events) {
  return scheduler_.run_to_quiescence(max_events);
}

void Testbed::igp_event(const std::function<void(igp::Graph&)>& mutate) {
  mutate(topology_.graph);
  spf_->invalidate();
  for (const auto& [id, speaker] : speakers_) speaker->refresh_all();
}

void Testbed::reset_counters() {
  baseline_.clear();
  for (const auto& [id, speaker] : speakers_) {
    baseline_[id] = speaker->counters();
  }
  counter_baseline_ = obs_->metrics().counter_snapshot();
}

ibgp::SpeakerCounters Testbed::delta_counters(RouterId id) const {
  ibgp::SpeakerCounters now = speakers_.at(id)->counters();
  const auto it = baseline_.find(id);
  if (it == baseline_.end()) return now;
  const ibgp::SpeakerCounters& base = it->second;
  now.updates_received -= base.updates_received;
  now.routes_received -= base.routes_received;
  now.updates_generated -= base.updates_generated;
  now.generated_to_clients -= base.generated_to_clients;
  now.generated_to_rrs -= base.generated_to_rrs;
  now.updates_transmitted -= base.updates_transmitted;
  now.bytes_transmitted -= base.bytes_transmitted;
  now.wire_bytes_transmitted -= base.wire_bytes_transmitted;
  now.routes_transmitted -= base.routes_transmitted;
  now.loops_suppressed -= base.loops_suppressed;
  now.misdirected -= base.misdirected;
  now.ebgp_updates_sent -= base.ebgp_updates_sent;
  now.best_changes -= base.best_changes;
  now.keepalives_sent -= base.keepalives_sent;
  now.keepalives_received -= base.keepalives_received;
  now.hold_expirations -= base.hold_expirations;
  now.sessions_reestablished -= base.sessions_reestablished;
  return now;
}

ibgp::ApId Testbed::arr_ap(RouterId id) const {
  const auto it = arr_ap_.find(id);
  return it == arr_ap_.end() ? -1 : it->second;
}

namespace {

Aggregate aggregate(const std::vector<double>& values) {
  Aggregate a;
  if (values.empty()) return a;
  a.min = a.max = values.front();
  double sum = 0;
  for (const double v : values) {
    a.min = std::min(a.min, v);
    a.max = std::max(a.max, v);
    sum += v;
  }
  a.avg = sum / static_cast<double>(values.size());
  return a;
}

}  // namespace

Aggregate Testbed::rr_rib_in() const {
  std::vector<double> v;
  for (const RouterId id : rr_ids_) {
    v.push_back(static_cast<double>(speakers_.at(id)->rib_in_size()));
  }
  return aggregate(v);
}

Aggregate Testbed::rr_rib_out() const {
  std::vector<double> v;
  for (const RouterId id : rr_ids_) {
    v.push_back(static_cast<double>(speakers_.at(id)->rib_out_size()));
  }
  return aggregate(v);
}

RoleTotals Testbed::role_totals(const obs::Labels& filter,
                                std::size_t speakers) const {
  const auto& m = obs_->metrics();
  const obs::CounterSnapshot* base =
      counter_baseline_.empty() ? nullptr : &counter_baseline_;
  RoleTotals t;
  t.received = m.sum_counters("speaker.updates_received", filter, base);
  t.generated = m.sum_counters("speaker.updates_generated", filter, base);
  t.transmitted = m.sum_counters("speaker.updates_transmitted", filter, base);
  t.bytes = m.sum_counters("speaker.bytes_transmitted", filter, base);
  t.wire_bytes =
      m.sum_counters("speaker.wire_bytes_transmitted", filter, base);
  t.speakers = speakers;
  return t;
}

RoleTotals Testbed::rr_counters() const {
  return role_totals(obs::Labels{{"role", "rr"}}, rr_ids_.size());
}

RoleTotals Testbed::client_counters() const {
  // Every data-plane client carries role=client (RR boxes are pure
  // control plane in this harness), so the label filter matches
  // client_ids_ exactly.
  return role_totals(obs::Labels{{"role", "client"}}, client_ids_.size());
}

}  // namespace abrr::harness
