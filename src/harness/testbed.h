// Experiment harness: builds a runnable AS (scheduler, network, IGP,
// speakers wired per architecture) from a Topology, and exposes the
// metrics the paper reports.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <unordered_map>
#include <utility>
#include <vector>

#include "core/address_partition.h"
#include "harness/options.h"
#include "ibgp/speaker.h"
#include "igp/spf.h"
#include "net/network.h"
#include "obs/obs.h"
#include "sim/random.h"
#include "sim/scheduler.h"
#include "topo/topology.h"
#include "trace/regenerator.h"

namespace abrr::harness {

using bgp::Ipv4Prefix;
using bgp::RouterId;

/// Thin FLAT adapter over the grouped TestbedConfig (harness/options.h):
/// the historical field-per-knob options struct, kept so existing tests
/// and benches compile unchanged. New code — and everything reached via
/// runner::ScenarioSpec — should use the nested form directly.
struct TestbedOptions {
  ibgp::IbgpMode mode = ibgp::IbgpMode::kFullMesh;
  /// TBRR-multi (Appendix A.3) when mode covers TBRR.
  bool multipath = false;
  /// ABRR partitioning.
  std::size_t num_aps = 8;
  std::size_t arrs_per_ap = 2;
  /// Balance APs on the given prefix set instead of uniform ranges.
  bool balanced_aps = false;
  /// §3.4 ablation: force client-side reduction on data-plane routers.
  bool abrr_force_client_reduction = false;
  bgp::DecisionConfig decision{};
  sim::Time mrai = sim::sec(5);
  sim::Time proc_delay = sim::msec(50);
  sim::Time proc_per_update = sim::usec(50);
  /// Session latency = 1ms + IGP distance x this (+ uniform jitter).
  sim::Time latency_per_metric = sim::usec(100);
  sim::Time latency_jitter = sim::msec(10);
  std::uint64_t seed = 7;
  /// Dense prefix-indexed RIB/speaker storage (the fast path). Disable
  /// to exercise the map-fallback storage (equivalence tests, legacy
  /// benchmarks); results must be identical either way.
  bool use_prefix_index = true;
  /// iBGP hold time for failure detection (RFC 4271 §6.5 semantics);
  /// 0 disables timers entirely — peers only go down via explicit
  /// session_down — preserving the fault-free behavior bit for bit.
  sim::Time hold_time = 0;
  /// Observability. The metrics registry always exists (counters are the
  /// single source of truth either way); `obs.enabled` additionally
  /// attaches the event tracer and starts the virtual-time RIB sampler.
  /// Disabled runs are bit-identical to pre-observability runs.
  obs::ObsOptions obs{};

  /// The grouped equivalent; Testbed construction goes through this.
  TestbedConfig config() const {
    TestbedConfig c;
    c.mode = mode;
    c.multipath = multipath;
    c.abrr.num_aps = num_aps;
    c.abrr.arrs_per_ap = arrs_per_ap;
    c.abrr.balanced_aps = balanced_aps;
    c.abrr.force_client_reduction = abrr_force_client_reduction;
    c.timing.mrai = mrai;
    c.timing.proc_delay = proc_delay;
    c.timing.proc_per_update = proc_per_update;
    c.timing.latency_per_metric = latency_per_metric;
    c.timing.latency_jitter = latency_jitter;
    c.timing.hold_time = hold_time;
    c.decision = decision;
    c.seed = seed;
    c.use_prefix_index = use_prefix_index;
    c.obs = obs;
    return c;
  }
};

/// Aggregate over a set of speakers (Figure 6's min/avg/max bars).
struct Aggregate {
  double min = 0;
  double max = 0;
  double avg = 0;
};

/// Counter sums used by Figure 7 and §4.2, computed by label-filtered
/// sums over the shared metrics registry (minus the reset_counters()
/// snapshot) — the registry cells are the single source of truth; there
/// is no parallel per-speaker accumulation path anymore.
struct RoleTotals {
  std::uint64_t received = 0;
  std::uint64_t generated = 0;
  std::uint64_t transmitted = 0;
  std::uint64_t bytes = 0;       // modeled estimate (legacy column)
  std::uint64_t wire_bytes = 0;  // measured RFC 4271 encoded lengths
  std::size_t speakers = 0;

  double avg_received() const {
    return speakers ? static_cast<double>(received) / speakers : 0;
  }
  double avg_generated() const {
    return speakers ? static_cast<double>(generated) / speakers : 0;
  }
  double avg_transmitted() const {
    return speakers ? static_cast<double>(transmitted) / speakers : 0;
  }
  double avg_bytes() const {
    return speakers ? static_cast<double>(bytes) / speakers : 0;
  }
  double avg_wire_bytes() const {
    return speakers ? static_cast<double>(wire_bytes) / speakers : 0;
  }
};

class Testbed {
 public:
  /// Builds and wires the testbed. `prefixes` is the experiment's prefix
  /// universe (dense indexing + AP balancing). The topology's reflector
  /// boxes become TRRs (TBRR) and/or the first ARR nodes (ABRR); extra
  /// pure control-plane ARR nodes are created when the partition needs
  /// more, attached to random PoPs (ABRR placement freedom, §2.3.3).
  Testbed(topo::Topology topology, const TestbedConfig& config,
          std::span<const Ipv4Prefix> prefixes);

  /// Legacy flat-options form (delegates through TestbedOptions::config).
  Testbed(topo::Topology topology, const TestbedOptions& options,
          std::span<const Ipv4Prefix> prefixes)
      : Testbed(std::move(topology), options.config(), prefixes) {}

  Testbed(const Testbed&) = delete;
  Testbed& operator=(const Testbed&) = delete;

  sim::Scheduler& scheduler() { return scheduler_; }
  net::Network& network() { return network_; }
  /// The observability bundle (registry always live; tracer/sampler only
  /// when TestbedOptions::obs.enabled).
  obs::Obs& obs() { return *obs_; }
  const obs::Obs& obs() const { return *obs_; }
  obs::MetricsRegistry& metrics() { return obs_->metrics(); }
  const obs::MetricsRegistry& metrics() const { return obs_->metrics(); }
  /// nullptr when observability is disabled.
  obs::Tracer* tracer() { return obs_->tracer(); }
  obs::Sampler* sampler() { return obs_->sampler(); }
  igp::SpfCache& spf() { return *spf_; }
  const topo::Topology& topology() const { return topology_; }
  const TestbedConfig& config() const { return config_; }
  const core::PartitionScheme* partition() const {
    return partition_ ? &*partition_ : nullptr;
  }

  /// Throws std::out_of_range naming the unknown id and the number of
  /// known speakers (not .at()'s bare "map::at" message).
  ibgp::Speaker& speaker(RouterId id);
  const ibgp::Speaker& speaker(RouterId id) const;
  bool has_speaker(RouterId id) const { return speakers_.count(id) != 0; }

  /// Every speaker with an RR role (TRRs or ARRs).
  const std::vector<RouterId>& rr_ids() const { return rr_ids_; }
  /// Every data-plane client.
  const std::vector<RouterId>& client_ids() const { return client_ids_; }
  /// All speakers.
  const std::vector<RouterId>& all_ids() const { return all_ids_; }

  /// Injection hook for the route regenerator.
  trace::InjectFn inject_fn();

  /// Runs until the event queue drains; returns false if max_events was
  /// hit first (non-convergence).
  bool run_to_quiescence(std::size_t max_events = 100'000'000);
  void run_until(sim::Time deadline) { scheduler_.run_until(deadline); }

  /// Zeroes every speaker's counters (e.g. after the initial table load,
  /// so Figure 7 counts only the update phase).
  void reset_counters();

  /// Applies an IGP change (link failure, metric change) through
  /// `mutate`, then recomputes SPF and re-runs every speaker's decision
  /// process — the control-plane reaction to an IGP event.
  void igp_event(const std::function<void(igp::Graph&)>& mutate);

  Aggregate rr_rib_in() const;
  Aggregate rr_rib_out() const;
  RoleTotals rr_counters() const;
  RoleTotals client_counters() const;

  std::size_t session_count() const { return network_.session_count(); }

  /// Liveness/primary directory of the redundant ARRs per AP (empty for
  /// non-ABRR modes). The fault injector keeps it in sync with crashes.
  core::ArrDirectory& arr_directory() { return arr_directory_; }
  const core::ArrDirectory& arr_directory() const { return arr_directory_; }

  /// Records a router death/revival in the ARR directory (no-op for
  /// routers that are not ARRs — the directory ignores unknown ids).
  void mark_router_alive(RouterId id, bool alive) {
    arr_directory_.set_alive(id, alive);
  }

  /// The dense prefix universe the bed was built over (slot i ==
  /// PrefixId i == the serving mode's LPM slot i); nullptr when
  /// use_prefix_index is off.
  const bgp::PrefixIndex* prefix_index() const {
    return prefix_index_.get();
  }

  /// Resident-testbed hook: mirrors every Loc-RIB change into
  /// `on_change` (speaker id + best-change arguments; nullptr route =
  /// withdrawn) and every crash-wipe into `on_cleared`. Replaces any
  /// hooks previously set on the speakers — the serving mode owns them
  /// for the bed's remaining lifetime.
  void attach_rib_listener(
      std::function<void(RouterId, const Ipv4Prefix&, const bgp::Route*)>
          on_change,
      std::function<void(RouterId)> on_cleared);

 private:
  void wire_full_mesh();
  void wire_tbrr(bool dual);
  void wire_abrr(bool dual, std::span<const Ipv4Prefix> prefixes);
  void connect(RouterId a, RouterId b);
  ibgp::Speaker& make_speaker(ibgp::SpeakerConfig cfg);
  /// Registers the sampler's gauges and its refresh callback, then takes
  /// the first sample (obs-enabled testbeds only).
  void start_sampler();
  RoleTotals role_totals(const obs::Labels& filter,
                         std::size_t speakers) const;

  topo::Topology topology_;
  TestbedConfig config_;
  sim::Scheduler scheduler_;
  sim::Rng rng_;
  net::Network network_;
  std::unique_ptr<obs::Obs> obs_;
  std::unique_ptr<igp::SpfCache> spf_;
  std::optional<core::PartitionScheme> partition_;
  ibgp::ApOfFn ap_of_;
  std::shared_ptr<bgp::PrefixIndex> prefix_index_;

  std::unordered_map<RouterId, std::unique_ptr<ibgp::Speaker>> speakers_;
  std::vector<RouterId> rr_ids_;
  std::vector<RouterId> client_ids_;
  std::vector<RouterId> all_ids_;
  /// ARR id -> managed AP (ABRR).
  std::unordered_map<RouterId, ibgp::ApId> arr_ap_;
  core::ArrDirectory arr_directory_;

  // Counter snapshots for reset_counters(): a per-speaker view baseline
  // (delta_counters) and the dense registry snapshot (role_totals).
  std::unordered_map<RouterId, ibgp::SpeakerCounters> baseline_;
  obs::CounterSnapshot counter_baseline_;

 public:
  /// Counters minus the last reset_counters() snapshot.
  ibgp::SpeakerCounters delta_counters(RouterId id) const;
  /// ARR's managed AP, or -1.
  ibgp::ApId arr_ap(RouterId id) const;
};

}  // namespace abrr::harness
