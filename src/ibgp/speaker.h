// The BGP speaker: one per router, implementing the client, TRR and ARR
// roles for full-mesh iBGP, Topology-Based Route Reflection (single- and
// multi-path) and Address-Based Route Reflection.
//
// Advertisement rules follow Table 1 of the paper exactly; see the
// per-role comments in speaker.cpp. All iBGP transmissions use per-sender
// replacement semantics: an UpdateMessage is the complete new set of
// routes the sender advertises for that prefix (full_set), which for
// single-path modes is just a set of size one and models BGP's implicit
// per-prefix withdraw, and for ARRs models add-paths conveying the whole
// best-AS-level set with each update (§2.1, §3.4).
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <optional>
#include <span>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "bgp/decision.h"
#include "bgp/prefix_index.h"
#include "bgp/rib.h"
#include "bgp/route.h"
#include "bgp/update.h"
#include "ibgp/ebgp_export.h"
#include "net/network.h"
#include "obs/metrics.h"
#include "obs/tracer.h"
#include "sim/scheduler.h"

namespace abrr::ibgp {

using bgp::Asn;
using bgp::Ipv4Prefix;
using bgp::PathId;
using bgp::Route;
using bgp::RouterId;

/// Which iBGP architecture the AS runs. kDual runs TBRR and ABRR side by
/// side with a per-prefix acceptance switch, enabling the §2.4
/// incremental transition.
enum class IbgpMode : std::uint8_t { kFullMesh, kTbrr, kAbrr, kDual };

/// Address-partition identifier (index into the deployment's AP table).
using ApId = std::int32_t;

/// Maps a prefix to the AP(s) it belongs to. A prefix spanning several
/// APs maps to all of them (§2.1). Supplied by core::ApMapper; the
/// speaker only needs the function.
using ApOfFn = std::function<std::vector<ApId>(const Ipv4Prefix&)>;

/// One iBGP peer as seen from this speaker. A peer can hold several
/// roles at once (e.g. in ABRR, router X can be both my client — I
/// reflect my AP to X — and my reflector for another AP).
struct PeerInfo {
  RouterId id = bgp::kNoRouter;
  /// I am an RR and this peer is my client: I reflect to it.
  bool rr_client = false;
  /// TBRR: peer is a fellow TRR (TRR full mesh).
  bool rr_peer = false;
  /// TBRR: peer is my reflector (I am its client).
  bool reflector_tbrr = false;
  /// ABRR: peer is my reflector for these APs.
  std::vector<ApId> reflector_for;
};

/// Per-speaker configuration.
struct SpeakerConfig {
  RouterId id = bgp::kNoRouter;
  Asn asn = 0;
  IbgpMode mode = IbgpMode::kFullMesh;
  bgp::DecisionConfig decision{};

  /// Has the client role: holds a Loc-RIB and originates/consumes routes.
  /// Pure control-plane RRs set this false for the forwarding plane but
  /// still maintain their table (the paper's ARRs keep unmanaged routes
  /// "in their role as a client").
  bool data_plane = true;

  /// TBRR: non-zero marks this speaker a TRR with that CLUSTER_ID.
  /// Redundant TRRs of one cluster share the id (RFC 4456 redundancy).
  std::uint32_t cluster_id = 0;
  /// TBRR-multi: TRRs maintain and advertise all best AS-level routes
  /// (the paper's fairer multi-path comparison, Appendix A.3).
  bool multipath = false;

  /// ABRR: the APs this speaker is an ARR for (empty = pure client).
  std::vector<ApId> managed_aps;
  /// ABRR: prefix -> APs mapping (required in ABRR mode).
  ApOfFn ap_of;
  /// ABRR §3.4 ablation: force data-plane clients to reduce each
  /// received best-AS-level set to a single stored route per ARR
  /// session. Control-plane speakers always reduce (safe: they have no
  /// eBGP routes of their own). Forcing it on border routers saves
  /// memory but discards the MED-kill witnesses a client needs to
  /// suppress its own higher-MED routes, so strict full-mesh
  /// equivalence can be lost — see bench/ablation_client_reduction.
  bool abrr_force_client_reduction = false;

  /// Minimum Route Advertisement Interval towards iBGP peers (§3.5);
  /// 0 disables MRAI.
  sim::Time mrai = sim::sec(5);
  /// iBGP session hold time; 0 disables failure detection entirely (the
  /// pre-fault-subsystem behaviour: sessions only fail by oracle).
  /// When set, the speaker keepalives every hold_time/3 and declares a
  /// peer down — triggering the bulk-withdraw path — once nothing was
  /// heard from it for a full hold time (RFC 4271 §6.5 semantics).
  sim::Time hold_time = 0;
  /// Input batch window: received updates are queued and processed
  /// together after this delay (models the BGP process scheduling that
  /// lets ARRs coalesce a routing event's client updates, §4.2).
  sim::Time proc_delay = sim::msec(50);
  /// Per-update processing cost added to the speaker's busy time.
  sim::Time proc_per_update = sim::usec(50);
};

/// Monotonic per-speaker counters (the paper's §4.2 metrics).
///
/// This is a point-in-time VIEW: the live cells are `speaker.<field>`
/// counters in the speaker's MetricsRegistry (labelled with `speaker=`
/// and `role=`), and Speaker::counters() materializes them here so
/// existing field-by-field consumers keep working.
struct SpeakerCounters {
  std::uint64_t updates_received = 0;     // messages received
  std::uint64_t routes_received = 0;      // routes inside those messages
  std::uint64_t updates_generated = 0;    // Adj-RIB-Out (peer-group) changes
  std::uint64_t generated_to_clients = 0;  // ...towards client groups
  std::uint64_t generated_to_rrs = 0;      // ...towards the TRR mesh
  std::uint64_t updates_transmitted = 0;  // messages sent
  std::uint64_t bytes_transmitted = 0;       // modeled (closed-form estimate)
  std::uint64_t wire_bytes_transmitted = 0;  // measured (RFC 4271 encoding)
  std::uint64_t routes_transmitted = 0;
  std::uint64_t loops_suppressed = 0;     // reflected-bit / cluster-list drops
  std::uint64_t misdirected = 0;          // client routes outside our APs
  std::uint64_t ebgp_updates_sent = 0;    // announce/withdraw to eBGP
  std::uint64_t best_changes = 0;         // Loc-RIB best flips
  // Fault/liveness metrics (all zero while hold_time == 0 and no faults
  // are injected; counters survive a crash — they model the testbed's
  // external observer, not device memory).
  std::uint64_t keepalives_sent = 0;
  std::uint64_t keepalives_received = 0;
  std::uint64_t hold_expirations = 0;     // peers declared down by timeout
  std::uint64_t sessions_reestablished = 0;
};

/// A BGP speaker attached to a Network and a Scheduler.
class Speaker {
 public:
  /// `metrics`, when given, must outlive the speaker; the testbed passes
  /// its shared registry so per-speaker counters can be summed and
  /// snapshotted centrally. When null the speaker owns a private
  /// registry, so standalone construction (unit tests) keeps working.
  Speaker(SpeakerConfig config, sim::Scheduler& scheduler,
          net::Network& network, obs::MetricsRegistry* metrics = nullptr);

  Speaker(const Speaker&) = delete;
  Speaker& operator=(const Speaker&) = delete;

  const SpeakerConfig& config() const { return config_; }
  RouterId id() const { return config_.id; }
  bool is_rr() const {
    return config_.cluster_id != 0 || !config_.managed_aps.empty();
  }

  /// Adds an iBGP peer (the Network session must be connected already).
  void add_peer(const PeerInfo& peer);

  /// IGP distance oracle for decision step 6 (default: flat metric 0).
  void set_igp(bgp::IgpDistanceFn igp) { igp_ = std::move(igp); }

  /// Optional event tracer (update rx/tx, decision batches, session
  /// transitions, crash/restart). Null disables tracing; the tracer must
  /// outlive the speaker. Recording is passive — no behaviour change.
  void set_tracer(obs::Tracer* tracer) { tracer_ = tracer; }

  /// Import policy applied to eBGP routes before they enter the RIB
  /// (returns nullopt to reject). Policies live at clients (§2.1).
  using ImportPolicy = std::function<std::optional<Route>(const Route&)>;
  void set_import_policy(ImportPolicy policy) { import_ = std::move(policy); }

  /// Shared dense prefix numbering: switches the RIBs, the per-peer
  /// sent-hash state, and the dirty-prefix coalescing to flat storage
  /// indexed by PrefixId. Call right after construction (before routes
  /// arrive); map fallbacks cover prefixes outside the index.
  void set_prefix_index(std::shared_ptr<const bgp::PrefixIndex> index);

  /// §2.4 transition switch (kDual mode): returns true when the best-path
  /// decision for this prefix should use routes learned from ABRR (and
  /// ignore TBRR reflections), false for the opposite. Advertisement
  /// continues on both planes regardless. May be changed at runtime; call
  /// refresh_all() afterwards to re-run decisions.
  void set_abrr_acceptance(std::function<bool(const Ipv4Prefix&)> accept) {
    accept_abrr_ = std::move(accept);
  }

  /// Re-runs the decision pipeline for every known prefix (after an
  /// acceptance flip or IGP change).
  void refresh_all();

  /// Observer invoked whenever the Loc-RIB best for a prefix changes
  /// (nullptr route = withdrawn). Used by the oscillation monitor.
  using BestChangeHook = std::function<void(const Ipv4Prefix&, const Route*)>;
  void set_best_change_hook(BestChangeHook hook) {
    best_change_hook_ = std::move(hook);
  }

  /// Observer invoked when the Loc-RIB is wiped wholesale (crash()).
  /// Unlike best-change it carries no per-prefix detail: crashes clear
  /// every RIB without running the decision process, so per-prefix hooks
  /// never fire. RIB mirrors (the serving mode) need this to mark every
  /// prefix of the speaker dirty.
  using RibClearedHook = std::function<void()>;
  void set_rib_cleared_hook(RibClearedHook hook) {
    rib_cleared_hook_ = std::move(hook);
  }

  /// Registers the receive endpoint with the network. Call after wiring.
  void start();

  /// Injects an eBGP-learned route (from the route regenerator). The
  /// speaker applies next-hop-self and the import policy. `neighbor`
  /// identifies the eBGP session (use ids disjoint from RouterIds).
  void inject_ebgp(RouterId neighbor, Route route);

  /// Withdraws the eBGP route previously injected for (neighbor, prefix).
  void withdraw_ebgp(RouterId neighbor, const Ipv4Prefix& prefix);

  /// Locally originates a route (static/aggregate).
  void originate(Route route);

  // --- eBGP neighbors (Table 1: Client -> eBGP Neighbor) ---------------

  /// Registers an eBGP neighbor for export. Routes learned FROM a
  /// neighbor (inject_ebgp) do not require registration; registration
  /// controls what we advertise TO it.
  void add_ebgp_neighbor(RouterId neighbor, Asn neighbor_as,
                         const EbgpExportPolicy& policy = {});

  /// Observer for routes advertised/withdrawn to eBGP neighbors
  /// (our neighbors are trace stubs, so delivery is observational).
  using EbgpSendHook = std::function<void(
      RouterId neighbor, const Ipv4Prefix&, const std::optional<Route>&)>;
  void set_ebgp_send_hook(EbgpSendHook hook) {
    ebgp_send_hook_ = std::move(hook);
  }

  // --- session lifecycle ------------------------------------------------

  /// An iBGP peer's or eBGP neighbor's session dropped: purge every
  /// route learned from it and re-run decisions (bulk withdraw).
  /// Idempotent — a second down for an already-down iBGP peer is a
  /// no-op — and safe for unknown peers (this is the failover hot
  /// path). Tearing down an iBGP session also resets the transport
  /// (buffered in-flight messages are lost with the TCP connection).
  void session_down(RouterId peer);

  /// An iBGP session (re-)established: replay the full relevant
  /// Adj-RIB-Out state toward the peer (BGP initial table sync).
  /// Receiving any message from a peer we consider down also counts as
  /// (re-)establishment — the transport evidently works — and triggers
  /// the same replay toward it.
  void session_up(RouterId peer);

  /// True while this speaker considers the session to `peer` usable.
  /// Unknown peers report false.
  bool peer_up(RouterId peer) const;

  /// Peer ids in (deterministic) wiring order.
  const std::vector<RouterId>& peer_ids() const { return peer_order_; }

  // --- fault injection --------------------------------------------------

  /// The router process dies: every RIB, timer, queue and session is
  /// lost. The speaker ignores all input until restart(). Peers are NOT
  /// notified — they discover the crash through their hold timers (or
  /// the fault injector's explicit session events).
  void crash();

  /// The router comes back up with empty tables. Sessions stay down
  /// until re-established (session_up / first received message), and
  /// eBGP feeds must be re-injected by the neighbor (fault injector).
  void restart();

  bool alive() const { return alive_; }

  // --- Introspection ----------------------------------------------------

  const bgp::LocRib& loc_rib() const { return loc_rib_; }
  const bgp::AdjRibIn& adj_rib_in() const { return adj_rib_in_; }
  std::size_t rib_in_size() const { return adj_rib_in_.size(); }
  /// Total Adj-RIB-Out entries over all peer groups (§3.2 metric).
  std::size_t rib_out_size() const;
  /// Received updates queued but not yet drained (sampler gauge).
  std::size_t input_queue_size() const { return input_queue_.size(); }
  /// Point-in-time view of the registry-backed per-speaker counters.
  SpeakerCounters counters() const;
  /// The registry holding this speaker's counter cells (the testbed's
  /// shared registry, or the speaker's own when none was passed in).
  obs::MetricsRegistry& metrics() { return *metrics_; }
  std::size_t peer_count() const { return peers_.size(); }

  /// The advertised set of one peer group (testing); group keys are
  /// kGroupClients / kGroupRrPeers / ap ids (ABRR).
  const bgp::AdjRibOut* out_group(int group) const;

  /// Peer-group keys.
  static constexpr int kGroupClients = -1;   // RR -> clients (TBRR)
  static constexpr int kGroupRrPeers = -2;   // TRR -> TRRs
  static constexpr int kGroupMesh = -3;      // full-mesh -> everyone
  static constexpr int kGroupUplink = -4;    // TBRR client -> its TRRs
  // ABRR groups: ARR->clients for AP a is group (2*a),
  //              client->ARRs of AP a is group (2*a + 1).
  static int arr_group(ApId ap) { return 2 * ap; }
  static int client_group(ApId ap) { return 2 * ap + 1; }

 private:
  struct OutGroup {
    bgp::AdjRibOut rib;
    std::vector<RouterId> members;
  };

  struct PeerState {
    PeerInfo info;
    /// Session usable? Cleared by session_down / crash / hold expiry;
    /// set by session_up (including the receive-side auto-up).
    bool up = true;
    /// Last time anything (update or keepalive) arrived from the peer.
    sim::Time last_heard = 0;
    // MRAI state.
    bool mrai_armed = false;
    sim::EventId mrai_timer = 0;
    // Pending (group, prefix) pairs awaiting the MRAI flush.
    std::vector<std::pair<int, Ipv4Prefix>> pending;
    std::unordered_set<std::uint64_t> pending_keys;
    // Last transmitted content hash per (group, prefix); 0 = nothing.
    // Flat when a PrefixIndex is available, map otherwise.
    std::unordered_map<std::uint64_t, std::uint64_t> sent_hash_map;
    std::vector<std::uint64_t> sent_hash_flat;  // indexed by group slot
  };

  struct Incoming {
    RouterId from;
    bgp::UpdateMessage msg;
    bool ebgp = false;
    bool withdraw_ebgp = false;
  };

  // -- receive path --
  void receive(RouterId from, const bgp::UpdateMessage& msg);
  void enqueue(Incoming incoming);
  void drain_input();
  /// Applies one message to the Adj-RIB-In; appends dirty prefixes.
  void apply(const Incoming& incoming, std::vector<Ipv4Prefix>& dirty);
  /// Appends `prefix` to `dirty` unless already marked this drain epoch
  /// (dense-index dedup; unindexed prefixes are deduped by sort later).
  void mark_dirty(const Ipv4Prefix& prefix, std::vector<Ipv4Prefix>& dirty);
  bool accept_route(const Route& route, const PeerState* peer) const;

  // -- decision + advertisement path --
  // The pipeline works over scratch buffers of `const Route*` pointing
  // into the Adj-RIB-In (and, for the ARR hand-off, one local copy);
  // routes are only materialized when an Adj-RIB-Out actually changes.
  void run_pipeline(const Ipv4Prefix& prefix);
  void reflect_tbrr(const Ipv4Prefix& prefix,
                    std::span<const Route* const> candidates);
  void reflect_abrr(const Ipv4Prefix& prefix,
                    std::span<const Route* const> candidates);
  void decide_local(const Ipv4Prefix& prefix,
                    std::span<const Route* const> candidates);
  void export_own_best(const Ipv4Prefix& prefix, const Route* best);
  void export_ebgp(const Ipv4Prefix& prefix, const Route* best);

  /// Updates a group's Adj-RIB-Out; on change, schedules per-member
  /// transmission under MRAI.
  void set_group_routes(int group, const Ipv4Prefix& prefix,
                        std::vector<Route> routes);

  void schedule_send(RouterId peer, int group, const Ipv4Prefix& prefix);
  void flush_peer(RouterId peer);
  void transmit(PeerState& peer, int group, const Ipv4Prefix& prefix);

  std::uint64_t& sent_hash(PeerState& peer, int group,
                           const Ipv4Prefix& prefix);

  // -- liveness (hold/keepalive) --
  sim::Time keepalive_interval() const;
  /// Periodic per-speaker tick: expires silent peers' hold timers, then
  /// keepalives every up session, then re-arms itself.
  void keepalive_tick();
  /// Clears a peer's transmission state (MRAI, pending, sent hashes).
  void reset_peer_tx_state(PeerState& peer);

  OutGroup& group(int key);
  /// True when decisions for this prefix use the ABRR plane.
  bool uses_abrr(const Ipv4Prefix& prefix) const;
  /// Drops candidates from the plane the acceptance switch disables.
  /// Returns `in` untouched outside kDual; otherwise filters into
  /// scratch_accepted_ and returns a span over it.
  std::span<const Route* const> filter_accepted(
      const Ipv4Prefix& prefix, std::span<const Route* const> in);
  std::vector<ApId> aps_of(const Ipv4Prefix& prefix) const;
  bool manages_ap(ApId ap) const;
  bool manages_prefix(const Ipv4Prefix& prefix) const;

  /// Registers the `speaker.*` counter cells and histograms with
  /// `metrics_` and caches the hot-path handles in `c_`.
  void register_metrics();

  SpeakerConfig config_;
  sim::Scheduler* scheduler_;
  net::Network* network_;
  bgp::IgpDistanceFn igp_;
  ImportPolicy import_;
  std::function<bool(const Ipv4Prefix&)> accept_abrr_;
  BestChangeHook best_change_hook_;
  RibClearedHook rib_cleared_hook_;
  std::shared_ptr<const bgp::PrefixIndex> prefix_index_;

  struct EbgpNeighborState {
    Asn asn = 0;
    EbgpExportPolicy policy;
    // Advertised-content hash per prefix (0 = nothing advertised).
    // Flat when a PrefixIndex is available, map otherwise.
    std::unordered_map<Ipv4Prefix, std::uint64_t> advertised;
    std::vector<std::uint64_t> advertised_flat;  // indexed by PrefixId
  };
  std::unordered_map<RouterId, EbgpNeighborState> ebgp_neighbors_;
  EbgpSendHook ebgp_send_hook_;

  std::unordered_map<RouterId, PeerState> peers_;
  /// Peer ids in add_peer order: a deterministic iteration order for
  /// the keepalive tick and crash teardown.
  std::vector<RouterId> peer_order_;
  std::unordered_map<int, OutGroup> groups_;
  // Dense slot assignment for (group) -> index used by sent_hash_flat.
  std::unordered_map<int, std::uint32_t> group_slot_;

  bgp::AdjRibIn adj_rib_in_;
  bgp::LocRib loc_rib_;

  std::deque<Incoming> input_queue_;
  bool drain_scheduled_ = false;
  sim::EventId drain_event_ = 0;
  sim::Time busy_until_ = 0;

  // Liveness state.
  bool alive_ = true;
  bool keepalive_armed_ = false;
  sim::EventId keepalive_timer_ = 0;

  // Dirty-prefix coalescing for drain_input: per-PrefixId epoch stamps
  // so a drain batch dedups indexed prefixes in O(1) per touch.
  std::vector<std::uint64_t> dirty_mark_;
  std::uint64_t dirty_epoch_ = 0;

  // Reusable pipeline scratch (valid only within one run_pipeline call).
  std::vector<const Route*> scratch_candidates_;
  std::vector<const Route*> scratch_accepted_;
  std::vector<const Route*> scratch_eligible_;
  std::vector<const Route*> scratch_select_;
  std::vector<const Route*> scratch_bal_;
  std::vector<const Route*> scratch_target_;
  std::vector<Ipv4Prefix> scratch_dirty_;

  // Hot-path metric handles: looked up once at construction, incremented
  // directly (one add through a pointer) everywhere the old
  // SpeakerCounters fields were bumped. The cells live in *metrics_.
  struct CounterHandles {
    obs::Counter* updates_received = nullptr;
    obs::Counter* routes_received = nullptr;
    obs::Counter* updates_generated = nullptr;
    obs::Counter* generated_to_clients = nullptr;
    obs::Counter* generated_to_rrs = nullptr;
    obs::Counter* updates_transmitted = nullptr;
    obs::Counter* bytes_transmitted = nullptr;
    obs::Counter* wire_bytes_transmitted = nullptr;
    obs::Counter* routes_transmitted = nullptr;
    obs::Counter* loops_suppressed = nullptr;
    obs::Counter* misdirected = nullptr;
    obs::Counter* ebgp_updates_sent = nullptr;
    obs::Counter* best_changes = nullptr;
    obs::Counter* keepalives_sent = nullptr;
    obs::Counter* keepalives_received = nullptr;
    obs::Counter* hold_expirations = nullptr;
    obs::Counter* sessions_reestablished = nullptr;
    // Unlabelled, so every speaker on a shared registry feeds the same
    // distribution.
    obs::Histogram* update_routes = nullptr;  // routes per received update
    obs::Histogram* drain_batch = nullptr;    // dirty prefixes per drain
  };

  std::unique_ptr<obs::MetricsRegistry> owned_metrics_;
  obs::MetricsRegistry* metrics_ = nullptr;
  CounterHandles c_;
  obs::Tracer* tracer_ = nullptr;
};

}  // namespace abrr::ibgp
