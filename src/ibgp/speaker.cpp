#include "ibgp/speaker.h"

#include <algorithm>
#include <stdexcept>
#include <utility>

namespace abrr::ibgp {
namespace {

// Route as (re-)advertised by a client into iBGP: the path id becomes the
// advertising client's RouterId (see bgp/types.h).
Route client_export_copy(const Route& best, RouterId self) {
  Route out = best;
  out.path_id = self;
  return out;
}

// Deduplicates a reflected set by path id (redundant RRs can deliver the
// same client route twice via different sessions).
void dedup_by_path_id(std::vector<Route>& routes) {
  std::sort(routes.begin(), routes.end(), [](const Route& a, const Route& b) {
    if (a.path_id != b.path_id) return a.path_id < b.path_id;
    return a.learned_from < b.learned_from;
  });
  routes.erase(std::unique(routes.begin(), routes.end(),
                           [](const Route& a, const Route& b) {
                             return a.path_id == b.path_id;
                           }),
               routes.end());
}

}  // namespace

Speaker::Speaker(SpeakerConfig config, sim::Scheduler& scheduler,
                 net::Network& network, obs::MetricsRegistry* metrics)
    : config_(std::move(config)),
      scheduler_(&scheduler),
      network_(&network),
      metrics_(metrics) {
  if (config_.id == bgp::kNoRouter) {
    throw std::invalid_argument{"speaker needs a non-zero id"};
  }
  if ((config_.mode == IbgpMode::kAbrr || config_.mode == IbgpMode::kDual ||
       !config_.managed_aps.empty()) &&
      !config_.ap_of) {
    throw std::invalid_argument{"ABRR speaker needs an ap_of mapping"};
  }
  if (metrics_ == nullptr) {
    owned_metrics_ = std::make_unique<obs::MetricsRegistry>();
    metrics_ = owned_metrics_.get();
  }
  register_metrics();
}

void Speaker::register_metrics() {
  const obs::Labels labels{{"speaker", std::to_string(config_.id)},
                           {"role", is_rr() ? "rr" : "client"}};
  const auto c = [&](std::string_view name) {
    return metrics_->counter(name, labels);
  };
  c_.updates_received = c("speaker.updates_received");
  c_.routes_received = c("speaker.routes_received");
  c_.updates_generated = c("speaker.updates_generated");
  c_.generated_to_clients = c("speaker.generated_to_clients");
  c_.generated_to_rrs = c("speaker.generated_to_rrs");
  c_.updates_transmitted = c("speaker.updates_transmitted");
  c_.bytes_transmitted = c("speaker.bytes_transmitted");
  c_.wire_bytes_transmitted = c("speaker.wire_bytes_transmitted");
  c_.routes_transmitted = c("speaker.routes_transmitted");
  c_.loops_suppressed = c("speaker.loops_suppressed");
  c_.misdirected = c("speaker.misdirected");
  c_.ebgp_updates_sent = c("speaker.ebgp_updates_sent");
  c_.best_changes = c("speaker.best_changes");
  c_.keepalives_sent = c("speaker.keepalives_sent");
  c_.keepalives_received = c("speaker.keepalives_received");
  c_.hold_expirations = c("speaker.hold_expirations");
  c_.sessions_reestablished = c("speaker.sessions_reestablished");
  c_.update_routes =
      metrics_->histogram("speaker.update_routes", obs::size_buckets());
  c_.drain_batch =
      metrics_->histogram("speaker.drain_batch", obs::size_buckets());
}

SpeakerCounters Speaker::counters() const {
  SpeakerCounters v;
  v.updates_received = c_.updates_received->value();
  v.routes_received = c_.routes_received->value();
  v.updates_generated = c_.updates_generated->value();
  v.generated_to_clients = c_.generated_to_clients->value();
  v.generated_to_rrs = c_.generated_to_rrs->value();
  v.updates_transmitted = c_.updates_transmitted->value();
  v.bytes_transmitted = c_.bytes_transmitted->value();
  v.wire_bytes_transmitted = c_.wire_bytes_transmitted->value();
  v.routes_transmitted = c_.routes_transmitted->value();
  v.loops_suppressed = c_.loops_suppressed->value();
  v.misdirected = c_.misdirected->value();
  v.ebgp_updates_sent = c_.ebgp_updates_sent->value();
  v.best_changes = c_.best_changes->value();
  v.keepalives_sent = c_.keepalives_sent->value();
  v.keepalives_received = c_.keepalives_received->value();
  v.hold_expirations = c_.hold_expirations->value();
  v.sessions_reestablished = c_.sessions_reestablished->value();
  return v;
}

void Speaker::add_peer(const PeerInfo& peer) {
  if (peer.id == config_.id) throw std::invalid_argument{"peer == self"};
  auto [it, inserted] = peers_.emplace(peer.id, PeerState{});
  if (inserted) {
    it->second.info = peer;
    it->second.last_heard = scheduler_->now();
    peer_order_.push_back(peer.id);
  } else {
    // Roles are additive: re-adding a peer merges the new roles into the
    // existing ones (an ARR pair wired from both ends ends up with both
    // the client and the reflector relationship).
    PeerInfo& existing = it->second.info;
    existing.rr_client |= peer.rr_client;
    existing.rr_peer |= peer.rr_peer;
    existing.reflector_tbrr |= peer.reflector_tbrr;
    for (const ApId ap : peer.reflector_for) {
      if (std::find(existing.reflector_for.begin(),
                    existing.reflector_for.end(),
                    ap) == existing.reflector_for.end()) {
        existing.reflector_for.push_back(ap);
      }
    }
  }
  const PeerInfo& merged = it->second.info;

  const auto join = [&](int key) {
    auto& g = group(key);
    if (std::find(g.members.begin(), g.members.end(), merged.id) ==
        g.members.end()) {
      g.members.push_back(merged.id);
    }
  };

  // Group membership is role-driven so that kDual speakers participate
  // in both planes at once.
  if (config_.mode == IbgpMode::kFullMesh) join(kGroupMesh);
  if (config_.cluster_id != 0) {
    if (merged.rr_client) join(kGroupClients);
    if (merged.rr_peer) join(kGroupRrPeers);
  }
  if (merged.reflector_tbrr) join(kGroupUplink);
  if (merged.rr_client) {
    for (const ApId ap : config_.managed_aps) join(arr_group(ap));
  }
  for (const ApId ap : merged.reflector_for) join(client_group(ap));
}

void Speaker::start() {
  network_->register_endpoint(
      config_.id,
      [this](RouterId from, const bgp::UpdateMessage& msg) {
        receive(from, msg);
      });
  if (config_.hold_time > 0 && !keepalive_armed_) {
    keepalive_armed_ = true;
    keepalive_timer_ = scheduler_->schedule_after(
        keepalive_interval(), [this] { keepalive_tick(); });
  }
}

sim::Time Speaker::keepalive_interval() const {
  return std::max<sim::Time>(1, config_.hold_time / 3);
}

void Speaker::keepalive_tick() {
  keepalive_armed_ = false;
  if (!alive_ || config_.hold_time <= 0) return;
  const sim::Time now = scheduler_->now();
  // Expiry first: a peer silent for a full hold time is declared down,
  // which runs the bulk-withdraw path — detection by timeout, not by
  // oracle (the fault injector never tells the survivors).
  for (const RouterId id : peer_order_) {
    PeerState& ps = peers_.at(id);
    if (!ps.up) continue;
    if (now - ps.last_heard >= config_.hold_time) {
      c_.hold_expirations->inc();
      if (tracer_ != nullptr) {
        tracer_->record(obs::TraceEventKind::kHoldExpiry, config_.id, id);
      }
      session_down(id);
    }
  }
  // Keepalive every session still considered up.
  for (const RouterId id : peer_order_) {
    if (!peers_.at(id).up) continue;
    bgp::UpdateMessage msg;
    msg.keepalive = true;
    c_.keepalives_sent->inc();
    network_->send(config_.id, id, std::move(msg));
  }
  keepalive_armed_ = true;
  keepalive_timer_ = scheduler_->schedule_after(
      keepalive_interval(), [this] { keepalive_tick(); });
}

void Speaker::receive(RouterId from, const bgp::UpdateMessage& msg) {
  if (!alive_) return;  // a crashed process hears nothing
  const auto pit = peers_.find(from);
  if (pit != peers_.end()) {
    pit->second.last_heard = scheduler_->now();
    // Traffic from a peer we consider down proves the transport works:
    // treat it as session (re-)establishment and resync toward it.
    if (!pit->second.up) {
      c_.sessions_reestablished->inc();
      session_up(from);
    }
  }
  if (msg.keepalive) {
    c_.keepalives_received->inc();
    return;
  }
  c_.updates_received->inc();
  c_.routes_received->inc(msg.announce.size());
  c_.update_routes->record(static_cast<double>(msg.announce.size()));
  if (tracer_ != nullptr) {
    tracer_->record(obs::TraceEventKind::kUpdateRx, config_.id, from,
                    msg.announce.size());
  }
  enqueue(Incoming{from, msg, /*ebgp=*/false, /*withdraw_ebgp=*/false});
}

void Speaker::enqueue(Incoming incoming) {
  if (!alive_) return;  // eBGP injections towards a dead router are lost
  input_queue_.push_back(std::move(incoming));
  if (!drain_scheduled_) {
    drain_scheduled_ = true;
    const sim::Time at = std::max(scheduler_->now() + config_.proc_delay,
                                  busy_until_ + config_.proc_delay);
    drain_event_ = scheduler_->schedule_at(at, [this] { drain_input(); });
  }
}

void Speaker::drain_input() {
  drain_scheduled_ = false;
  if (!alive_) return;
  std::deque<Incoming> batch;
  batch.swap(input_queue_);
  busy_until_ =
      std::max(busy_until_, scheduler_->now()) +
      static_cast<sim::Time>(batch.size()) * config_.proc_per_update;

  // Coalesce the batch's dirty prefixes: indexed prefixes dedup in O(1)
  // via per-PrefixId epoch stamps, so the sort below only sees uniques
  // (plus any unindexed stragglers). The sorted order is what keeps
  // downstream message generation storage-independent.
  ++dirty_epoch_;
  scratch_dirty_.clear();
  for (const Incoming& incoming : batch) apply(incoming, scratch_dirty_);

  std::sort(scratch_dirty_.begin(), scratch_dirty_.end());
  scratch_dirty_.erase(
      std::unique(scratch_dirty_.begin(), scratch_dirty_.end()),
      scratch_dirty_.end());
  c_.drain_batch->record(static_cast<double>(scratch_dirty_.size()));
  if (tracer_ != nullptr) {
    tracer_->record(obs::TraceEventKind::kDecision, config_.id, 0,
                    scratch_dirty_.size());
  }
  for (const Ipv4Prefix& prefix : scratch_dirty_) run_pipeline(prefix);
}

void Speaker::mark_dirty(const Ipv4Prefix& prefix,
                         std::vector<Ipv4Prefix>& dirty) {
  if (prefix_index_) {
    if (const auto id = prefix_index_->id_of(prefix)) {
      if (dirty_mark_.size() <= *id) {
        dirty_mark_.resize(prefix_index_->size(), 0);
      }
      if (dirty_mark_[*id] == dirty_epoch_) return;
      dirty_mark_[*id] = dirty_epoch_;
    }
  }
  dirty.push_back(prefix);
}

void Speaker::set_prefix_index(std::shared_ptr<const bgp::PrefixIndex> index) {
  prefix_index_ = std::move(index);
  adj_rib_in_.set_prefix_index(prefix_index_);
  loc_rib_.set_prefix_index(prefix_index_);
  for (auto& [key, g] : groups_) g.rib.set_prefix_index(prefix_index_);
}

bool Speaker::accept_route(const Route& route, const PeerState*) const {
  if (route.attrs->originator_id &&
      *route.attrs->originator_id == config_.id) {
    return false;  // RFC 4456: our own route came back
  }
  if (config_.cluster_id != 0) {
    const auto& cl = route.attrs->cluster_list;
    if (std::find(cl.begin(), cl.end(), config_.cluster_id) != cl.end()) {
      return false;  // RFC 4456: cluster loop
    }
  }
  return true;
}

void Speaker::apply(const Incoming& incoming, std::vector<Ipv4Prefix>& dirty) {
  const Ipv4Prefix prefix = incoming.msg.prefix;

  if (incoming.ebgp) {
    // eBGP injection / withdrawal, already policy-filtered.
    adj_rib_in_.withdraw_prefix(incoming.from, prefix);
    if (!incoming.withdraw_ebgp) {
      for (const Route& r : incoming.msg.announce) adj_rib_in_.announce(r);
    }
    mark_dirty(prefix, dirty);
    return;
  }

  const auto pit = peers_.find(incoming.from);
  if (pit == peers_.end()) return;  // stale message from a removed peer
  const PeerState& peer = pit->second;

  // Is this message an ABRR reflection towards us (sender is our ARR for
  // one of the prefix's APs)?
  bool from_abrr_reflector = false;
  if (!peer.info.reflector_for.empty()) {
    const std::vector<ApId> aps = aps_of(prefix);
    for (const ApId ap : peer.info.reflector_for) {
      if (std::find(aps.begin(), aps.end(), ap) != aps.end()) {
        from_abrr_reflector = true;
        break;
      }
    }
  }

  // Prepare received copies: stamp who we learned them from.
  std::vector<Route> received;
  received.reserve(incoming.msg.announce.size());
  for (Route r : incoming.msg.announce) {
    r.learned_from = incoming.from;
    r.via = bgp::LearnedVia::kIbgp;
    if (!accept_route(r, &peer)) {
      c_.loops_suppressed->inc();
      continue;
    }
    received.push_back(std::move(r));
  }

  if (from_abrr_reflector) {
    // §3.4 storage: pure control-plane speakers (ARRs in their client
    // role) reduce the reflected best-AS-level set to their own best
    // and store one entry per redundant ARR session — they own no eBGP
    // routes, so the reduction is lossless for them (Appendix A's
    // unmanaged-route accounting). Data-plane border routers keep the
    // whole set by default: a reflected low-MED route must stay visible
    // to keep suppressing the router's own higher-MED route from the
    // same neighbor AS (deterministic-MED group elimination), which is
    // what makes ABRR match full-mesh exactly.
    const bool reduce =
        !config_.data_plane || config_.abrr_force_client_reduction;
    adj_rib_in_.withdraw_prefix(incoming.from, prefix);
    if (!received.empty()) {
      if (reduce) {
        const Route best = bgp::select_best(received, config_.id, igp_,
                                            config_.decision);
        if (best.valid()) adj_rib_in_.announce(best);
      } else {
        for (const Route& r : received) adj_rib_in_.announce(r);
      }
    }
    mark_dirty(prefix, dirty);
    return;
  }

  if (!config_.managed_aps.empty() && config_.cluster_id == 0 &&
      peer.info.rr_client && !manages_prefix(prefix)) {
    // A client sent us a route outside our Address Partitions: a
    // misconfiguration (§2.3.2). Never absorb it into the reflection
    // state.
    c_.misdirected->inc();
    return;
  }

  // Replacement semantics per (sender, prefix): store the announced set.
  // Covers client->ARR, client->TRR, TRR->TRR, full-mesh, and the
  // multi-path TBRR full sets (which clients/TRRs store whole).
  if (peer.info.rr_client && manages_prefix(prefix)) {
    // §2.3.2: a "client" handing us an already-reflected route means the
    // ARR/client configuration is inconsistent somewhere. The reflected
    // bit keeps such routes out of re-reflection (enforced again in
    // reflect_abrr); surface the event for operators.
    for (const Route& r : received) {
      if (r.attrs->has_ext_community(bgp::kAbrrReflectedCommunity)) {
        c_.loops_suppressed->inc();
      }
    }
  }
  adj_rib_in_.withdraw_prefix(incoming.from, prefix);
  for (const Route& r : received) adj_rib_in_.announce(r);
  mark_dirty(prefix, dirty);
}

void Speaker::run_pipeline(const Ipv4Prefix& prefix) {
  // Candidates are pointers into the Adj-RIB-In, valid across the whole
  // pipeline (decide_local only touches the Loc-RIB; the reflectors only
  // touch Adj-RIB-Outs).
  adj_rib_in_.routes_for(prefix, scratch_candidates_);

  // Every speaker (including control-plane RRs) maintains a Loc-RIB;
  // only data-plane clients export their best into iBGP.
  decide_local(prefix, scratch_candidates_);
  if (config_.cluster_id != 0) reflect_tbrr(prefix, scratch_candidates_);
  if (!config_.managed_aps.empty() && manages_prefix(prefix)) {
    reflect_abrr(prefix, scratch_candidates_);
  }
}

void Speaker::refresh_all() {
  if (!alive_) return;
  std::vector<Ipv4Prefix> seen;
  adj_rib_in_.for_each([&](const Route& r) { seen.push_back(r.prefix); });
  loc_rib_.for_each([&](const Route& r) { seen.push_back(r.prefix); });
  std::sort(seen.begin(), seen.end());
  seen.erase(std::unique(seen.begin(), seen.end()), seen.end());
  for (const Ipv4Prefix& prefix : seen) run_pipeline(prefix);
}

void Speaker::decide_local(const Ipv4Prefix& prefix,
                           std::span<const Route* const> candidates) {
  const std::span<const Route* const> accepted =
      filter_accepted(prefix, candidates);
  const Route* best = bgp::select_best_from(accepted, config_.id, igp_,
                                            config_.decision, scratch_select_);
  bool changed;
  if (best != nullptr) {
    changed = loc_rib_.install(*best);
  } else {
    changed = loc_rib_.remove(prefix);
  }
  if (!changed) return;
  c_.best_changes->inc();
  if (best_change_hook_) best_change_hook_(prefix, best);
  if (config_.data_plane) {
    export_own_best(prefix, best);
    export_ebgp(prefix, best);
  }
}

void Speaker::export_ebgp(const Ipv4Prefix& prefix, const Route* best) {
  for (auto& [neighbor, state] : ebgp_neighbors_) {
    std::optional<Route> out;
    if (best != nullptr) {
      out = export_to_ebgp(*best, config_.asn, state.asn, neighbor,
                           state.policy);
    }
    std::uint64_t h = 0;
    if (out) {
      const Route* p = &*out;
      h = bgp::route_set_hash(std::span<const Route* const>{&p, 1});
    }
    if (prefix_index_) {
      const auto pid = prefix_index_->id_of(prefix);
      if (pid) {
        if (state.advertised_flat.size() <= *pid) {
          state.advertised_flat.resize(prefix_index_->size(), 0);
        }
        std::uint64_t& last = state.advertised_flat[*pid];
        if (h == last) continue;
        last = h;
        c_.ebgp_updates_sent->inc();
        if (ebgp_send_hook_) ebgp_send_hook_(neighbor, prefix, out);
        continue;
      }
    }
    auto& last = state.advertised[prefix];
    if (h == last) continue;
    if (h == 0) state.advertised.erase(prefix); else last = h;
    c_.ebgp_updates_sent->inc();
    if (ebgp_send_hook_) ebgp_send_hook_(neighbor, prefix, out);
  }
}

void Speaker::add_ebgp_neighbor(RouterId neighbor, Asn neighbor_as,
                                const EbgpExportPolicy& policy) {
  EbgpNeighborState state;
  state.asn = neighbor_as;
  state.policy = policy;
  ebgp_neighbors_.emplace(neighbor, std::move(state));
  // Initial table sync: everything currently best goes out.
  loc_rib_.for_each([&](const Route& r) { export_ebgp(r.prefix, &r); });
}

void Speaker::reset_peer_tx_state(PeerState& ps) {
  if (ps.mrai_armed) {
    scheduler_->cancel(ps.mrai_timer);
    ps.mrai_armed = false;
  }
  ps.pending.clear();
  ps.pending_keys.clear();
  // The peer lost our state with the TCP session.
  ps.sent_hash_map.clear();
  std::fill(ps.sent_hash_flat.begin(), ps.sent_hash_flat.end(), 0);
}

void Speaker::session_down(RouterId peer) {
  const auto pit = peers_.find(peer);
  if (pit != peers_.end()) {
    PeerState& ps = pit->second;
    // Idempotent: the failover path may learn about one failure from
    // several sources (hold expiry, injector, operator); the first one
    // already purged everything.
    if (!ps.up) return;
    ps.up = false;
    if (tracer_ != nullptr) {
      tracer_->record(obs::TraceEventKind::kSessionDown, config_.id, peer);
    }
    reset_peer_tx_state(ps);
    // The connection reset loses whatever the transport still held.
    if (network_->connected(config_.id, peer)) {
      network_->session_reset(config_.id, peer);
    }
  }
  const std::vector<Ipv4Prefix> affected = adj_rib_in_.withdraw_peer(peer);
  for (const Ipv4Prefix& prefix : affected) run_pipeline(prefix);
}

void Speaker::session_up(RouterId peer) {
  if (!alive_) return;  // a crashed router cannot open sessions
  const auto pit = peers_.find(peer);
  if (pit == peers_.end()) return;
  pit->second.up = true;
  pit->second.last_heard = scheduler_->now();
  if (tracer_ != nullptr) {
    tracer_->record(obs::TraceEventKind::kSessionUp, config_.id, peer);
  }
  for (const auto& [key, g] : groups_) {
    if (std::find(g.members.begin(), g.members.end(), peer) ==
        g.members.end()) {
      continue;
    }
    g.rib.for_each(
        [&, k = key](const Ipv4Prefix& prefix, const std::vector<Route>&) {
          schedule_send(peer, k, prefix);
        });
  }
}

bool Speaker::peer_up(RouterId peer) const {
  const auto pit = peers_.find(peer);
  return pit != peers_.end() && pit->second.up;
}

void Speaker::crash() {
  if (!alive_) return;
  alive_ = false;
  if (tracer_ != nullptr) {
    tracer_->record(obs::TraceEventKind::kCrash, config_.id);
  }
  if (keepalive_armed_) {
    scheduler_->cancel(keepalive_timer_);
    keepalive_armed_ = false;
  }
  if (drain_scheduled_) {
    scheduler_->cancel(drain_event_);
    drain_scheduled_ = false;
  }
  input_queue_.clear();
  busy_until_ = 0;
  for (const RouterId id : peer_order_) {
    PeerState& ps = peers_.at(id);
    ps.up = false;
    reset_peer_tx_state(ps);
  }
  // All RIB state dies with the process. The best-change hook is not
  // fired: a crash is not a decision-process outcome, and the monitors
  // observe the survivors' reactions instead.
  adj_rib_in_.clear();
  loc_rib_.clear();
  if (rib_cleared_hook_) rib_cleared_hook_();
  for (auto& [key, g] : groups_) g.rib.clear();
  for (auto& [neighbor, state] : ebgp_neighbors_) {
    state.advertised.clear();
    std::fill(state.advertised_flat.begin(), state.advertised_flat.end(), 0);
  }
}

void Speaker::restart() {
  if (alive_) return;
  alive_ = true;
  if (tracer_ != nullptr) {
    tracer_->record(obs::TraceEventKind::kRestart, config_.id);
  }
  // Sessions stay down until re-established; hold/keepalive processing
  // resumes immediately.
  if (config_.hold_time > 0 && !keepalive_armed_) {
    for (const RouterId id : peer_order_) {
      peers_.at(id).last_heard = scheduler_->now();
    }
    keepalive_armed_ = true;
    keepalive_timer_ = scheduler_->schedule_after(
        keepalive_interval(), [this] { keepalive_tick(); });
  }
}

void Speaker::export_own_best(const Ipv4Prefix& prefix, const Route* best) {
  // Table 1, client rows: advertise the best route into iBGP iff it is
  // eBGP-learned or locally originated; otherwise advertise nothing
  // (withdraw any previous advertisement).
  std::vector<Route> out;
  if (best != nullptr && best->via != bgp::LearnedVia::kIbgp) {
    out.push_back(client_export_copy(*best, config_.id));
  }

  // Role-driven: a kDual client advertises on every plane it has
  // sessions for (§2.4: routers run both TBRR and ABRR).
  if (config_.mode == IbgpMode::kFullMesh) {
    set_group_routes(kGroupMesh, prefix, std::move(out));
    return;
  }
  // Plain clients advertise up to their TRRs; a TRR's own advertisement
  // is folded into its reflection logic instead.
  if (groups_.count(kGroupUplink) != 0 && config_.cluster_id == 0) {
    set_group_routes(kGroupUplink, prefix, out);
  }
  for (const ApId ap : aps_of(prefix)) {
    if (manages_ap(ap)) continue;  // internal hand-off to our ARR role
    if (groups_.count(client_group(ap)) != 0) {
      set_group_routes(client_group(ap), prefix, out);
    }
  }
}

bool Speaker::uses_abrr(const Ipv4Prefix& prefix) const {
  switch (config_.mode) {
    case IbgpMode::kAbrr:
      return true;
    case IbgpMode::kDual:
      return accept_abrr_ && accept_abrr_(prefix);
    default:
      return false;
  }
}

std::span<const Route* const> Speaker::filter_accepted(
    const Ipv4Prefix& prefix, std::span<const Route* const> in) {
  if (config_.mode != IbgpMode::kDual) return in;
  const bool abrr = uses_abrr(prefix);
  scratch_accepted_.clear();
  scratch_accepted_.reserve(in.size());
  for (const Route* r : in) {
    if (r->via != bgp::LearnedVia::kIbgp) {
      scratch_accepted_.push_back(r);
      continue;
    }
    const auto it = peers_.find(r->learned_from);
    if (it == peers_.end()) continue;
    const PeerInfo& info = it->second.info;
    const bool from_abrr_plane = !info.reflector_for.empty();
    const bool from_tbrr_plane = info.reflector_tbrr || info.rr_peer;
    if (from_abrr_plane && !abrr) continue;
    if (from_tbrr_plane && abrr) continue;
    scratch_accepted_.push_back(r);
  }
  return scratch_accepted_;
}

void Speaker::reflect_tbrr(const Ipv4Prefix& prefix,
                           std::span<const Route* const> candidates) {
  // Reflection copy: append our CLUSTER_ID and pin ORIGINATOR_ID when
  // reflecting an iBGP-learned route (RFC 4456).
  const auto reflect_copy = [&](const Route& r) {
    Route out = r;
    if (r.via == bgp::LearnedVia::kIbgp) {
      out.attrs = bgp::with_attrs(r.attrs, [&](bgp::PathAttrs& a) {
        if (!a.originator_id) a.originator_id = r.learned_from;
        a.cluster_list.insert(a.cluster_list.begin(), config_.cluster_id);
      });
    }
    return out;
  };
  const auto learned_from_client = [&](const Route& r) {
    if (r.via != bgp::LearnedVia::kIbgp) return true;  // own eBGP/local
    const auto it = peers_.find(r.learned_from);
    return it != peers_.end() && it->second.info.rr_client;
  };

  if (!config_.multipath) {
    const Route* best = bgp::select_best_from(
        candidates, config_.id, igp_, config_.decision, scratch_select_);
    std::vector<Route> to_clients;
    std::vector<Route> to_rrs;
    if (best != nullptr) {
      const Route reflected = reflect_copy(*best);
      to_clients.push_back(reflected);
      // RFC 4456: client routes (and our own) go to everyone; routes
      // learned from other TRRs (or from our parents in a multi-level
      // hierarchy) are reflected to clients only.
      if (learned_from_client(*best)) to_rrs.push_back(reflected);
    }
    set_group_routes(kGroupClients, prefix, std::move(to_clients));
    set_group_routes(kGroupRrPeers, prefix, to_rrs);
    // Multi-level hierarchy: a mid-level TRR is itself a client of its
    // parents and advertises its client-learned best upward.
    if (groups_.count(kGroupUplink) != 0) {
      set_group_routes(kGroupUplink, prefix, std::move(to_rrs));
    }
    return;
  }

  // Multi-path TBRR (Appendix A.3): maintain and advertise all best
  // AS-level routes. Client-learned survivors go to both groups; the
  // full set goes to clients.
  bgp::best_as_level_into(candidates, config_.decision, scratch_bal_);
  std::vector<Route> to_clients;
  std::vector<Route> to_rrs;
  to_clients.reserve(scratch_bal_.size());
  for (const Route* r : scratch_bal_) {
    const Route reflected = reflect_copy(*r);
    to_clients.push_back(reflected);
    if (learned_from_client(*r)) to_rrs.push_back(reflected);
  }
  dedup_by_path_id(to_clients);
  dedup_by_path_id(to_rrs);
  set_group_routes(kGroupClients, prefix, std::move(to_clients));
  set_group_routes(kGroupRrPeers, prefix, to_rrs);
  if (groups_.count(kGroupUplink) != 0) {
    set_group_routes(kGroupUplink, prefix, std::move(to_rrs));
  }
}

void Speaker::reflect_abrr(const Ipv4Prefix& prefix,
                           std::span<const Route* const> candidates) {
  // Eligible inputs to the ARR role: client advertisements that have not
  // been reflected before (§2.3.2 single-bit loop prevention), plus our
  // own best when we are a data-plane router whose best is other-learned
  // (the internal client->ARR hand-off of Figure 2).
  scratch_eligible_.clear();
  for (const Route* r : candidates) {
    if (r->via != bgp::LearnedVia::kIbgp) continue;  // own routes added below
    if (r->attrs->has_ext_community(bgp::kAbrrReflectedCommunity)) continue;
    const auto it = peers_.find(r->learned_from);
    if (it == peers_.end() || !it->second.info.rr_client) continue;
    scratch_eligible_.push_back(r);
  }
  // Storage for the internal client->ARR hand-off copy; must outlive the
  // best-AS-level elimination below.
  Route own_export;
  if (config_.data_plane) {
    const Route* own = loc_rib_.best(prefix);
    if (own != nullptr && own->via != bgp::LearnedVia::kIbgp) {
      own_export = client_export_copy(*own, config_.id);
      scratch_eligible_.push_back(&own_export);
    }
  }

  bgp::best_as_level_into(scratch_eligible_, config_.decision, scratch_bal_);
  std::vector<Route> set;
  set.reserve(scratch_bal_.size());
  for (const Route* r : scratch_bal_) set.push_back(*r);
  for (Route& r : set) {
    if (!r.attrs->has_ext_community(bgp::kAbrrReflectedCommunity)) {
      r.attrs = bgp::with_attrs(r.attrs, [&](bgp::PathAttrs& a) {
        a.ext_communities.push_back(bgp::kAbrrReflectedCommunity);
        if (!a.originator_id) a.originator_id = r.path_id;
      });
    }
  }
  dedup_by_path_id(set);

  for (const ApId ap : aps_of(prefix)) {
    if (manages_ap(ap)) set_group_routes(arr_group(ap), prefix, set);
  }
}

void Speaker::set_group_routes(int key, const Ipv4Prefix& prefix,
                               std::vector<Route> routes) {
  OutGroup& g = group(key);
  const auto msg = g.rib.set(prefix, std::move(routes), /*full_set=*/true);
  if (!msg) return;
  c_.updates_generated->inc();
  if (key == kGroupClients || (key >= 0 && key % 2 == 0)) {
    c_.generated_to_clients->inc();  // reflections toward clients
  } else if (key == kGroupRrPeers) {
    c_.generated_to_rrs->inc();
  }
  for (const RouterId member : g.members) {
    schedule_send(member, key, prefix);
  }
}

void Speaker::schedule_send(RouterId peer, int key, const Ipv4Prefix& prefix) {
  PeerState& ps = peers_.at(peer);
  // Nothing is sent into a torn-down session; session_up replays the
  // whole Adj-RIB-Out when it comes back, so nothing is lost either.
  if (!ps.up) return;
  if (config_.mrai <= 0) {
    transmit(ps, key, prefix);
    return;
  }
  if (!ps.mrai_armed) {
    transmit(ps, key, prefix);
    ps.mrai_armed = true;
    ps.mrai_timer = scheduler_->schedule_after(
        config_.mrai, [this, peer] { flush_peer(peer); });
    return;
  }
  const std::uint64_t pkey =
      (static_cast<std::uint64_t>(static_cast<std::uint32_t>(key + 8)) << 40) ^
      std::hash<Ipv4Prefix>{}(prefix);
  if (ps.pending_keys.insert(pkey).second) {
    ps.pending.emplace_back(key, prefix);
  }
}

void Speaker::flush_peer(RouterId peer) {
  const auto it = peers_.find(peer);
  if (it == peers_.end()) return;
  PeerState& ps = it->second;
  if (ps.pending.empty()) {
    ps.mrai_armed = false;
    return;
  }
  std::vector<std::pair<int, Ipv4Prefix>> batch;
  batch.swap(ps.pending);
  ps.pending_keys.clear();
  for (const auto& [key, prefix] : batch) transmit(ps, key, prefix);
  ps.mrai_timer = scheduler_->schedule_after(
      config_.mrai, [this, peer] { flush_peer(peer); });
}

void Speaker::transmit(PeerState& ps, int key, const Ipv4Prefix& prefix) {
  if (!ps.up) return;
  const OutGroup& g = group(key);
  const std::vector<Route>* current = g.rib.get(prefix);

  // "Not returned to sender": drop routes this peer itself advertised.
  // Filter and hash over pointers first; Route copies are made only when
  // the peer actually needs an update.
  scratch_target_.clear();
  if (current != nullptr) {
    scratch_target_.reserve(current->size());
    for (const Route& r : *current) {
      if (r.learned_from == ps.info.id) continue;
      if (r.attrs->originator_id && *r.attrs->originator_id == ps.info.id) {
        continue;
      }
      scratch_target_.push_back(&r);
    }
  }

  const std::uint64_t h = scratch_target_.empty()
                              ? 0
                              : bgp::route_set_hash(std::span<
                                    const Route* const>{scratch_target_});
  std::uint64_t& last = sent_hash(ps, key, prefix);
  if (h == last) return;  // peer already has exactly this
  last = h;

  bgp::UpdateMessage msg;
  msg.prefix = prefix;
  msg.full_set = true;
  msg.announce.reserve(scratch_target_.size());
  for (const Route* r : scratch_target_) msg.announce.push_back(*r);
  c_.updates_transmitted->inc();
  c_.routes_transmitted->inc(msg.announce.size());
  c_.bytes_transmitted->inc(msg.wire_size());
  c_.wire_bytes_transmitted->inc(network_->wire_size(msg));
  if (tracer_ != nullptr) {
    tracer_->record(obs::TraceEventKind::kUpdateTx, config_.id, ps.info.id,
                    msg.announce.size());
  }
  network_->send(config_.id, ps.info.id, std::move(msg));
}

std::uint64_t& Speaker::sent_hash(PeerState& ps, int key,
                                  const Ipv4Prefix& prefix) {
  if (prefix_index_) {
    const auto pid = prefix_index_->id_of(prefix);
    if (pid) {
      const std::uint32_t slot = group_slot_.at(key);
      const std::size_t stride = prefix_index_->size();
      const std::size_t need = (slot + 1) * stride;
      if (ps.sent_hash_flat.size() < need) ps.sent_hash_flat.resize(need, 0);
      return ps.sent_hash_flat[slot * stride + *pid];
    }
  }
  const std::uint64_t mkey =
      (static_cast<std::uint64_t>(static_cast<std::uint32_t>(key + 8)) << 40) ^
      std::hash<Ipv4Prefix>{}(prefix);
  return ps.sent_hash_map[mkey];
}

void Speaker::inject_ebgp(RouterId neighbor, Route route) {
  route.learned_from = neighbor;
  route.via = bgp::LearnedVia::kEbgp;
  route.path_id = 0;
  if (route.attrs->next_hop != config_.id) {
    // next-hop-self on the iBGP edge (§ Design: types.h).
    route.attrs = bgp::with_attrs(
        route.attrs, [&](bgp::PathAttrs& a) { a.next_hop = config_.id; });
  }
  if (import_) {
    const auto filtered = import_(route);
    if (!filtered) return;
    route = *filtered;
    route.learned_from = neighbor;
    route.via = bgp::LearnedVia::kEbgp;
  }
  bgp::UpdateMessage msg;
  msg.prefix = route.prefix;
  msg.announce.push_back(std::move(route));
  enqueue(Incoming{neighbor, std::move(msg), /*ebgp=*/true,
                   /*withdraw_ebgp=*/false});
}

void Speaker::withdraw_ebgp(RouterId neighbor, const Ipv4Prefix& prefix) {
  bgp::UpdateMessage msg;
  msg.prefix = prefix;
  enqueue(Incoming{neighbor, std::move(msg), /*ebgp=*/true,
                   /*withdraw_ebgp=*/true});
}

void Speaker::originate(Route route) {
  route.learned_from = bgp::kNoRouter;
  route.via = bgp::LearnedVia::kLocal;
  route.path_id = 0;
  if (route.attrs->next_hop != config_.id) {
    route.attrs = bgp::with_attrs(
        route.attrs, [&](bgp::PathAttrs& a) { a.next_hop = config_.id; });
  }
  bgp::UpdateMessage msg;
  msg.prefix = route.prefix;
  msg.announce.push_back(std::move(route));
  enqueue(Incoming{bgp::kNoRouter, std::move(msg), /*ebgp=*/true,
                   /*withdraw_ebgp=*/false});
}

std::size_t Speaker::rib_out_size() const {
  std::size_t total = 0;
  for (const auto& [key, g] : groups_) total += g.rib.size();
  return total;
}

const bgp::AdjRibOut* Speaker::out_group(int key) const {
  const auto it = groups_.find(key);
  return it == groups_.end() ? nullptr : &it->second.rib;
}

Speaker::OutGroup& Speaker::group(int key) {
  const auto [it, inserted] = groups_.emplace(key, OutGroup{});
  if (inserted) {
    group_slot_.emplace(key, static_cast<std::uint32_t>(group_slot_.size()));
    if (prefix_index_) it->second.rib.set_prefix_index(prefix_index_);
  }
  return it->second;
}

std::vector<ApId> Speaker::aps_of(const Ipv4Prefix& prefix) const {
  if (!config_.ap_of) return {};
  return config_.ap_of(prefix);
}

bool Speaker::manages_ap(ApId ap) const {
  return std::find(config_.managed_aps.begin(), config_.managed_aps.end(),
                   ap) != config_.managed_aps.end();
}

bool Speaker::manages_prefix(const Ipv4Prefix& prefix) const {
  for (const ApId ap : aps_of(prefix)) {
    if (manages_ap(ap)) return true;
  }
  return false;
}

}  // namespace abrr::ibgp
