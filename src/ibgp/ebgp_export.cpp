#include "ibgp/ebgp_export.h"

#include <algorithm>

namespace abrr::ibgp {

std::optional<bgp::Route> export_to_ebgp(const bgp::Route& best,
                                         bgp::Asn own_as,
                                         bgp::Asn neighbor_as,
                                         bgp::RouterId neighbor_id,
                                         const EbgpExportPolicy& policy) {
  if (!best.valid()) return std::nullopt;
  // Split horizon: never return a route to its sender (Table 1).
  if (best.via == bgp::LearnedVia::kEbgp &&
      best.learned_from == neighbor_id) {
    return std::nullopt;
  }
  // eBGP loop prevention: the neighbor would reject it anyway.
  if (best.attrs->as_path.contains(neighbor_as)) return std::nullopt;
  if (policy.honor_no_export) {
    const auto& cs = best.attrs->communities;
    if (std::find(cs.begin(), cs.end(), kNoExport) != cs.end()) {
      return std::nullopt;
    }
  }

  bgp::Route out = best;
  out.attrs = bgp::with_attrs(best.attrs, [&](bgp::PathAttrs& a) {
    a.as_path = a.as_path.prepend(own_as);
    a.local_pref = bgp::kDefaultLocalPref;  // not carried over eBGP
    if (!policy.send_med) a.med.reset();
    a.originator_id.reset();
    a.cluster_list.clear();
    std::erase(a.ext_communities, bgp::kAbrrReflectedCommunity);
    if (policy.strip_communities) a.communities.clear();
    // NEXT_HOP self on the eBGP edge; the neighbor rewrites it again.
  });
  out.learned_from = bgp::kNoRouter;
  out.via = bgp::LearnedVia::kLocal;  // from the neighbor's viewpoint: new
  return out;
}

}  // namespace abrr::ibgp
