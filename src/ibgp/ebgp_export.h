// eBGP export (Table 1, "Client -> eBGP Neighbor" rows).
//
// Clients advertise all their best routes to eBGP neighbors, never back
// to the neighbor a route was learned from, with the standard eBGP
// rewrite: own AS prepended, NEXT_HOP self, LOCAL_PREF and the
// AS-internal reflection attributes (ORIGINATOR_ID, CLUSTER_LIST, the
// ABRR reflected bit) stripped. MED propagation and community handling
// are policy knobs.
#pragma once

#include <optional>

#include "bgp/attributes.h"
#include "bgp/route.h"

namespace abrr::ibgp {

/// Well-known community NO_EXPORT (RFC 1997): routes tagged with it must
/// not be advertised over eBGP.
inline constexpr bgp::Community kNoExport = 0xFFFFFF01;

/// Per-neighbor eBGP export policy.
struct EbgpExportPolicy {
  /// Propagate our MED to this neighbor (commonly stripped at peers).
  bool send_med = false;
  /// Strip standard communities on export.
  bool strip_communities = false;
  /// Honor NO_EXPORT (RFC 1997). On by default.
  bool honor_no_export = true;
};

/// Builds the route advertised to an eBGP neighbor from a Loc-RIB best,
/// or nullopt when the route must not be sent:
///   - it was learned from this very neighbor (split horizon),
///   - the neighbor's AS already appears on the AS path (loop),
///   - it carries NO_EXPORT and the policy honors it.
std::optional<bgp::Route> export_to_ebgp(const bgp::Route& best,
                                         bgp::Asn own_as,
                                         bgp::Asn neighbor_as,
                                         bgp::RouterId neighbor_id,
                                         const EbgpExportPolicy& policy = {});

}  // namespace abrr::ibgp
