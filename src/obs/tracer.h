// Deterministic event tracer: a bounded ring buffer of typed events
// stamped with simulated time, exportable as chrome://tracing JSON.
//
// Events are plain integers (kind, actor, other, detail) — recording one
// is a few stores into a preallocated ring and never allocates, so the
// tracer can sit on the update hot path. When the ring is full the
// OLDEST events are overwritten (the tail of a run is what a fault
// post-mortem needs) and dropped() reports how many were lost.
//
// Determinism: events carry only simulated time and ids, so two runs of
// the same seeded scenario serialize to bit-identical JSON.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "obs/pcap.h"
#include "sim/scheduler.h"
#include "sim/time.h"

namespace abrr::obs {

enum class TraceEventKind : std::uint8_t {
  kUpdateRx,     // actor received an update from `other` (detail: #routes)
  kUpdateTx,     // actor transmitted an update to `other` (detail: #routes)
  kDecision,     // actor ran its decision batch (detail: #dirty prefixes)
  kSessionUp,    // actor (re-)established its session to `other`
  kSessionDown,  // actor tore down / lost its session to `other`
  kHoldExpiry,   // actor's hold timer for `other` expired
  kCrash,        // actor's process died
  kRestart,      // actor's process came back
  kFaultInject,  // injector fired a fault on (actor, other); detail: kind
  kFaultRepair,  // injector resynced the (actor, other) session
  kMsgDrop,      // network dropped a message actor -> other (detail: count)
};

const char* to_string(TraceEventKind kind);

struct TraceEvent {
  sim::Time at = 0;
  TraceEventKind kind = TraceEventKind::kUpdateRx;
  std::uint32_t actor = 0;
  std::uint32_t other = 0;
  std::uint64_t detail = 0;
};

class Tracer {
 public:
  /// `clock` supplies the event timestamps (must outlive the tracer);
  /// `capacity` bounds the ring (>= 1).
  Tracer(const sim::Scheduler& clock, std::size_t capacity);

  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  void record(TraceEventKind kind, std::uint32_t actor,
              std::uint32_t other = 0, std::uint64_t detail = 0);

  std::size_t capacity() const { return capacity_; }
  /// Events currently retained (<= capacity).
  std::size_t size() const { return ring_.size(); }
  /// Events ever recorded.
  std::uint64_t recorded() const { return recorded_; }
  /// Events overwritten because the ring was full.
  std::uint64_t dropped() const { return recorded_ - ring_.size(); }

  /// Visits retained events oldest-first.
  void for_each(const std::function<void(const TraceEvent&)>& fn) const;

  /// chrome://tracing "trace event format" JSON (instant events, one
  /// process lane per actor id).
  std::string to_chrome_json() const;
  /// Writes to_chrome_json() to `path`; throws on I/O error.
  void write_chrome_json(const std::string& path) const;

  /// Attaches a wire-frame capture ring (`max_frames` frames) to the
  /// tracer. The Network feeds it the encoded bytes of every message it
  /// sends; write_pcap() then exports a Wireshark-readable capture.
  /// Idempotent: re-enabling keeps the existing ring.
  void enable_packet_capture(std::size_t max_frames);

  /// The attached capture, or nullptr when pcap mode is off. The
  /// Network checks this on every send, so "off" costs one null test.
  PacketCapture* packets() { return packets_.get(); }
  const PacketCapture* packets() const { return packets_.get(); }

  /// Writes the captured frames as a classic pcap; throws
  /// std::logic_error when capture was never enabled.
  void write_pcap(const std::string& path) const;

  void clear();

 private:
  const sim::Scheduler* clock_;
  std::size_t capacity_;
  std::vector<TraceEvent> ring_;
  std::size_t head_ = 0;  // next overwrite position once full
  std::uint64_t recorded_ = 0;
  std::unique_ptr<PacketCapture> packets_;
};

}  // namespace abrr::obs
