// Virtual-time gauge sampler: snapshots a set of registry gauges on a
// fixed simulated-time cadence into in-memory time series, exportable
// as CSV.
//
// The tick is a WEAK scheduler event (sim::Scheduler::schedule_weak_*):
// it fires while the simulation has real work pending but never keeps
// the event queue alive on its own, so run_to_quiescence() still drains
// and an instrumented run converges exactly like an uninstrumented one.
// Sampling calls the refresh callback (which recomputes gauge values
// from live state) and then appends each tracked gauge; nothing here
// touches the RNG or mutates simulation state.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "obs/metrics.h"
#include "sim/scheduler.h"
#include "sim/time.h"

namespace abrr::obs {

class Sampler {
 public:
  Sampler(sim::Scheduler& scheduler, sim::Time period);

  Sampler(const Sampler&) = delete;
  Sampler& operator=(const Sampler&) = delete;

  /// Invoked before every sample to bring gauge values up to date.
  void set_refresh(std::function<void()> refresh) {
    refresh_ = std::move(refresh);
  }

  /// Adds one CSV column backed by `gauge`. Track everything before the
  /// first sample — columns added later would misalign rows.
  void track(std::string column, const Gauge* gauge);

  /// Takes the first sample now and arms the periodic weak tick.
  void start();

  /// Samples immediately (also what the tick does).
  void sample_now();

  sim::Time period() const { return period_; }
  std::size_t columns() const { return series_.size(); }
  std::size_t rows() const { return times_.size(); }
  const std::vector<sim::Time>& times() const { return times_; }
  /// Values of column `i`, one per row.
  const std::vector<double>& values(std::size_t i) const {
    return series_[i].values;
  }
  const std::string& column_name(std::size_t i) const {
    return series_[i].name;
  }

  /// `time_us,<col>,<col>,...` header plus one row per sample.
  std::string to_csv() const;
  /// Writes to_csv() to `path`; throws on I/O error.
  void write_csv(const std::string& path) const;

 private:
  void tick();

  struct Series {
    std::string name;
    const Gauge* gauge;
    std::vector<double> values;
  };

  sim::Scheduler* scheduler_;
  sim::Time period_;
  std::function<void()> refresh_;
  std::vector<Series> series_;
  std::vector<sim::Time> times_;
  bool started_ = false;
};

}  // namespace abrr::obs
