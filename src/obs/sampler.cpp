#include "obs/sampler.h"

#include <cinttypes>
#include <cstdio>
#include <stdexcept>

namespace abrr::obs {

Sampler::Sampler(sim::Scheduler& scheduler, sim::Time period)
    : scheduler_(&scheduler), period_(period) {
  if (period_ <= 0) throw std::invalid_argument{"Sampler: period must be > 0"};
}

void Sampler::track(std::string column, const Gauge* gauge) {
  if (gauge == nullptr) throw std::invalid_argument{"Sampler: null gauge"};
  if (!times_.empty()) {
    throw std::logic_error{"Sampler: track() after the first sample"};
  }
  series_.push_back(Series{std::move(column), gauge, {}});
}

void Sampler::start() {
  if (started_) return;
  started_ = true;
  sample_now();
  scheduler_->schedule_weak_after(period_, [this] { tick(); });
}

void Sampler::sample_now() {
  if (refresh_) refresh_();
  times_.push_back(scheduler_->now());
  for (auto& s : series_) s.values.push_back(s.gauge->value());
}

void Sampler::tick() {
  sample_now();
  scheduler_->schedule_weak_after(period_, [this] { tick(); });
}

std::string Sampler::to_csv() const {
  std::string out = "time_us";
  for (const auto& s : series_) {
    out += ',';
    out += s.name;
  }
  out += '\n';
  char buf[64];
  for (std::size_t r = 0; r < times_.size(); ++r) {
    std::snprintf(buf, sizeof buf, "%" PRId64, times_[r]);
    out += buf;
    for (const auto& s : series_) {
      std::snprintf(buf, sizeof buf, ",%.10g", s.values[r]);
      out += buf;
    }
    out += '\n';
  }
  return out;
}

void Sampler::write_csv(const std::string& path) const {
  FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    throw std::runtime_error{"sampler: cannot write " + path};
  }
  const std::string csv = to_csv();
  std::fwrite(csv.data(), 1, csv.size(), f);
  std::fclose(f);
}

}  // namespace abrr::obs
