// Bounded ring buffer of captured control-plane frames, exportable as a
// classic pcap file readable in Wireshark.
//
// The capture stores raw already-encoded payload bytes (it has no idea
// they are BGP — framing knowledge lives in src/wire, which obs must
// not depend on) stamped with simulated time and the two endpoint ids.
// write_pcap() wraps each payload in a synthesized Ethernet/IPv4/TCP
// envelope on port 179 with per-flow cumulative sequence numbers, so
// Wireshark reassembles each directed session into a BGP stream. Router
// ids double as IPv4 loopbacks repo-wide (bgp/types.h), so the ids ARE
// the capture's IP addresses.
//
// Ring semantics mirror the Tracer: when full, the OLDEST frame is
// overwritten (post-mortems want the tail of a run) and dropped()
// reports the loss; overwritten frames leave TCP sequence gaps in the
// export, which Wireshark flags as missing segments rather than
// mis-parsing.
//
// Determinism: frames carry only simulated time, ids and payload bytes,
// so equal seeded runs export bit-identical pcap files.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include "sim/scheduler.h"
#include "sim/time.h"

namespace abrr::obs {

class PacketCapture {
 public:
  /// `clock` supplies frame timestamps (must outlive the capture);
  /// `capacity` bounds the ring in frames (>= 1).
  PacketCapture(const sim::Scheduler& clock, std::size_t capacity);

  PacketCapture(const PacketCapture&) = delete;
  PacketCapture& operator=(const PacketCapture&) = delete;

  /// Records one sent message train. `payload` is copied.
  void record(std::uint32_t src, std::uint32_t dst, const std::uint8_t* data,
              std::size_t size);

  std::size_t capacity() const { return capacity_; }
  /// Frames currently retained (<= capacity).
  std::size_t size() const { return ring_.size(); }
  /// Frames ever recorded.
  std::uint64_t recorded() const { return recorded_; }
  /// Frames overwritten because the ring was full.
  std::uint64_t dropped() const { return recorded_ - ring_.size(); }
  /// Payload bytes currently retained.
  std::size_t payload_bytes() const { return payload_bytes_; }

  /// Visits retained frames oldest-first with their raw payload bytes:
  /// fn(at, src, dst, payload). Tests use this to decode what was
  /// captured without parsing the pcap envelope back.
  void for_each(
      const std::function<void(sim::Time, std::uint32_t, std::uint32_t,
                               std::span<const std::uint8_t>)>& fn) const;

  /// Serializes the retained frames, oldest first, as a classic pcap
  /// (microsecond timestamps, LINKTYPE_ETHERNET).
  std::vector<std::uint8_t> to_pcap() const;

  /// Writes to_pcap() to `path`; throws std::runtime_error on I/O error.
  void write_pcap(const std::string& path) const;

  void clear();

 private:
  struct Frame {
    sim::Time at = 0;
    std::uint32_t src = 0;
    std::uint32_t dst = 0;
    std::uint32_t seq = 0;  // cumulative per-flow TCP sequence number
    std::vector<std::uint8_t> payload;
  };

  const sim::Scheduler* clock_;
  std::size_t capacity_;
  std::vector<Frame> ring_;
  std::size_t head_ = 0;  // next overwrite position once full
  std::uint64_t recorded_ = 0;
  std::size_t payload_bytes_ = 0;
  /// Per directed flow (src, dst): next TCP sequence number.
  std::unordered_map<std::uint64_t, std::uint32_t> next_seq_;
};

}  // namespace abrr::obs
