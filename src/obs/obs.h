// The observability bundle a testbed (or bench) owns: one metrics
// registry — always present, so counter handles are valid whether or
// not observability is switched on — plus, when enabled, a tracer and a
// virtual-time sampler.
//
// With `ObsOptions::enabled == false` nothing is scheduled and no trace
// is kept: the registry cells still accumulate (pure arithmetic, no
// scheduling/RNG/clock), so a run with observability off is
// bit-identical to one predating the subsystem.
#pragma once

#include <memory>
#include <string>

#include "obs/metrics.h"
#include "obs/sampler.h"
#include "obs/tracer.h"
#include "sim/scheduler.h"
#include "sim/time.h"

namespace abrr::obs {

struct ObsOptions {
  /// Master switch. Off: no tracer, no sampler, no scheduled work.
  bool enabled = false;
  /// Simulated-time cadence of the gauge sampler.
  sim::Time sample_period = sim::msec(500);
  /// Ring capacity of the event tracer.
  std::size_t trace_capacity = std::size_t{1} << 16;
  /// When > 0 (and observability is enabled), the tracer also keeps the
  /// last `pcap_frames` encoded wire messages in a frame ring for
  /// Wireshark-readable pcap export (Tracer::write_pcap).
  std::size_t pcap_frames = 0;
};

class Obs {
 public:
  Obs(sim::Scheduler& scheduler, const ObsOptions& options);

  Obs(const Obs&) = delete;
  Obs& operator=(const Obs&) = delete;

  bool enabled() const { return options_.enabled; }
  const ObsOptions& options() const { return options_; }

  MetricsRegistry& metrics() { return metrics_; }
  const MetricsRegistry& metrics() const { return metrics_; }

  /// nullptr when observability is disabled.
  Tracer* tracer() { return tracer_.get(); }
  const Tracer* tracer() const { return tracer_.get(); }

  /// nullptr when observability is disabled.
  Sampler* sampler() { return sampler_.get(); }
  const Sampler* sampler() const { return sampler_.get(); }

 private:
  ObsOptions options_;
  MetricsRegistry metrics_;
  std::unique_ptr<Tracer> tracer_;
  std::unique_ptr<Sampler> sampler_;
};

}  // namespace abrr::obs
