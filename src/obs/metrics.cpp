#include "obs/metrics.h"

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <map>
#include <stdexcept>

namespace abrr::obs {
namespace {

void append_escaped(std::string& out, std::string_view s) {
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default: out += c;
    }
  }
}

void append_double(std::string& out, double v) {
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.10g", v);
  out += buf;
}

void append_u64(std::string& out, std::uint64_t v) {
  char buf[24];
  std::snprintf(buf, sizeof buf, "%" PRIu64, v);
  out += buf;
}

void append_labels_json(std::string& out, const Labels& labels) {
  out += '{';
  bool first = true;
  for (const auto& [k, v] : labels.items()) {
    if (!first) out += ',';
    first = false;
    out += '"';
    append_escaped(out, k);
    out += "\":\"";
    append_escaped(out, v);
    out += '"';
  }
  out += '}';
}

/// Merged view of the histograms sharing one name (aggregate dumps).
struct HistAccum {
  std::vector<double> bounds;
  std::vector<std::uint64_t> buckets;
  std::uint64_t count = 0;
  double sum = 0;
  double min = 0;
  double max = 0;

  void merge(const Histogram& h) {
    if (buckets.empty()) {
      bounds = h.bounds();
      buckets = h.buckets();
    } else if (bounds == h.bounds()) {
      for (std::size_t i = 0; i < buckets.size(); ++i) {
        buckets[i] += h.buckets()[i];
      }
    } else {
      // Same name, different bucketing: keep the first shape and fold
      // everything into its overflow rather than silently mis-binning.
      buckets.back() += h.count();
    }
    if (count == 0) {
      min = h.min();
      max = h.max();
    } else if (h.count() > 0) {
      min = std::min(min, h.min());
      max = std::max(max, h.max());
    }
    count += h.count();
    sum += h.sum();
  }

  double quantile(double q) const {
    if (count == 0) return 0;
    q = std::clamp(q, 0.0, 1.0);
    const std::uint64_t rank =
        std::max<std::uint64_t>(1, static_cast<std::uint64_t>(
                                       q * static_cast<double>(count) + 0.5));
    std::uint64_t cum = 0;
    for (std::size_t i = 0; i < buckets.size(); ++i) {
      cum += buckets[i];
      if (cum >= rank) {
        // A bucket bound can exceed the largest observed value; never
        // report a quantile above the true max.
        return i < bounds.size() ? std::min(bounds[i], max) : max;
      }
    }
    return max;
  }
};

void append_hist_json(std::string& out, const HistAccum& h) {
  out += "\"count\":";
  append_u64(out, h.count);
  out += ",\"sum\":";
  append_double(out, h.sum);
  out += ",\"min\":";
  append_double(out, h.min);
  out += ",\"max\":";
  append_double(out, h.max);
  out += ",\"p50\":";
  append_double(out, h.quantile(0.50));
  out += ",\"p95\":";
  append_double(out, h.quantile(0.95));
  out += ",\"p99\":";
  append_double(out, h.quantile(0.99));
  out += ",\"buckets\":[";
  for (std::size_t i = 0; i < h.buckets.size(); ++i) {
    if (i) out += ',';
    out += "{\"le\":";
    if (i < h.bounds.size()) {
      append_double(out, h.bounds[i]);
    } else {
      out += "\"+inf\"";
    }
    out += ",\"n\":";
    append_u64(out, h.buckets[i]);
    out += '}';
  }
  out += ']';
}

}  // namespace

Labels::Labels(
    std::initializer_list<std::pair<std::string, std::string>> kv) {
  for (const auto& [k, v] : kv) set(k, v);
}

void Labels::set(std::string key, std::string value) {
  const auto it = std::lower_bound(
      kv_.begin(), kv_.end(), key,
      [](const auto& pair, const std::string& k) { return pair.first < k; });
  if (it != kv_.end() && it->first == key) {
    it->second = std::move(value);
  } else {
    kv_.insert(it, {std::move(key), std::move(value)});
  }
}

bool Labels::contains(const Labels& subset) const {
  for (const auto& [k, v] : subset.kv_) {
    const auto it = std::lower_bound(
        kv_.begin(), kv_.end(), k,
        [](const auto& pair, const std::string& key) {
          return pair.first < key;
        });
    if (it == kv_.end() || it->first != k || it->second != v) return false;
  }
  return true;
}

std::string Labels::render() const {
  std::string out = "{";
  for (std::size_t i = 0; i < kv_.size(); ++i) {
    if (i) out += ',';
    out += kv_[i].first;
    out += '=';
    out += kv_[i].second;
  }
  out += '}';
  return out;
}

Histogram::Histogram(std::vector<double> bounds) {
  if (bounds.empty() || !std::is_sorted(bounds.begin(), bounds.end())) {
    throw std::invalid_argument{"histogram: bounds must be ascending"};
  }
  bounds_ = std::move(bounds);
  buckets_.assign(bounds_.size() + 1, 0);
}

void Histogram::merge(const Histogram& other) {
  if (other.count_ == 0 && other.bounds_.empty()) return;
  if (buckets_.empty()) {
    bounds_ = other.bounds_;
    buckets_ = other.buckets_;
  } else if (bounds_ == other.bounds_) {
    for (std::size_t i = 0; i < buckets_.size(); ++i) {
      buckets_[i] += other.buckets_[i];
    }
  } else {
    // Mismatched bucketing: fold into overflow, never silently mis-bin.
    buckets_.back() += other.count_;
  }
  if (other.count_ > 0) {
    if (count_ == 0) {
      min_ = other.min_;
      max_ = other.max_;
    } else {
      min_ = std::min(min_, other.min_);
      max_ = std::max(max_, other.max_);
    }
  }
  count_ += other.count_;
  sum_ += other.sum_;
}

void Histogram::record(double v) {
  const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), v);
  ++buckets_[static_cast<std::size_t>(it - bounds_.begin())];
  if (count_ == 0) {
    min_ = max_ = v;
  } else {
    min_ = std::min(min_, v);
    max_ = std::max(max_, v);
  }
  ++count_;
  sum_ += v;
}

double Histogram::quantile(double q) const {
  HistAccum a;
  a.merge(*this);
  return a.quantile(q);
}

std::vector<double> size_buckets() {
  std::vector<double> b;
  for (double v = 1; v <= 65536; v *= 2) b.push_back(v);
  return b;
}

std::vector<double> byte_buckets() {
  std::vector<double> b;
  for (double v = 16; v <= 1024.0 * 1024 * 1024; v *= 4) b.push_back(v);
  return b;
}

std::vector<double> latency_buckets_ns() {
  std::vector<double> b;
  for (double decade = 1; decade <= 1e9; decade *= 10) {
    b.push_back(decade);
    b.push_back(decade * 2);
    b.push_back(decade * 5);
  }
  b.push_back(1e10);
  return b;
}

std::string MetricsRegistry::key_of(std::string_view name,
                                    const Labels& labels) {
  std::string key{name};
  key += '|';
  key += labels.render();
  return key;
}

Counter* MetricsRegistry::counter(std::string_view name,
                                  const Labels& labels) {
  confined_.check();
  const std::string key = key_of(name, labels);
  const auto it = counter_index_.find(key);
  if (it != counter_index_.end()) return &counters_[it->second];
  counters_.emplace_back();
  Counter& c = counters_.back();
  c.index_ = static_cast<std::uint32_t>(counters_.size() - 1);
  counter_info_.push_back({std::string{name}, labels});
  counter_index_.emplace(key, counters_.size() - 1);
  return &c;
}

Gauge* MetricsRegistry::gauge(std::string_view name, const Labels& labels) {
  confined_.check();
  const std::string key = key_of(name, labels);
  const auto it = gauge_index_.find(key);
  if (it != gauge_index_.end()) return &gauges_[it->second];
  gauges_.emplace_back();
  Gauge& g = gauges_.back();
  g.index_ = static_cast<std::uint32_t>(gauges_.size() - 1);
  gauge_info_.push_back({std::string{name}, labels});
  gauge_index_.emplace(key, gauges_.size() - 1);
  return &g;
}

Histogram* MetricsRegistry::histogram(std::string_view name,
                                      std::vector<double> bounds,
                                      const Labels& labels) {
  confined_.check();
  const std::string key = key_of(name, labels);
  const auto it = histogram_index_.find(key);
  if (it != histogram_index_.end()) return &histograms_[it->second];
  if (bounds.empty() || !std::is_sorted(bounds.begin(), bounds.end())) {
    throw std::invalid_argument{"histogram: bounds must be ascending"};
  }
  histograms_.emplace_back();
  Histogram& h = histograms_.back();
  h.bounds_ = std::move(bounds);
  h.buckets_.assign(h.bounds_.size() + 1, 0);
  histogram_info_.push_back({std::string{name}, labels});
  histogram_index_.emplace(key, histograms_.size() - 1);
  return &h;
}

std::size_t MetricsRegistry::name_count() const {
  std::vector<std::string_view> names;
  names.reserve(counter_info_.size() + gauge_info_.size() +
                histogram_info_.size());
  for (const auto& i : counter_info_) names.push_back(i.name);
  for (const auto& i : gauge_info_) names.push_back(i.name);
  for (const auto& i : histogram_info_) names.push_back(i.name);
  std::sort(names.begin(), names.end());
  names.erase(std::unique(names.begin(), names.end()), names.end());
  return names.size();
}

CounterSnapshot MetricsRegistry::counter_snapshot() const {
  CounterSnapshot snap;
  snap.reserve(counters_.size());
  for (const Counter& c : counters_) snap.push_back(c.value_);
  return snap;
}

std::uint64_t MetricsRegistry::sum_counters(
    std::string_view name, const Labels& filter,
    const CounterSnapshot* baseline) const {
  std::uint64_t total = 0;
  for (std::size_t i = 0; i < counters_.size(); ++i) {
    const MetricInfo& info = counter_info_[i];
    if (info.name != name || !info.labels.contains(filter)) continue;
    std::uint64_t v = counters_[i].value_;
    if (baseline != nullptr && i < baseline->size()) v -= (*baseline)[i];
    total += v;
  }
  return total;
}

void MetricsRegistry::for_each_counter(
    const std::function<void(const MetricInfo&, const Counter&)>& fn) const {
  for (std::size_t i = 0; i < counters_.size(); ++i) {
    fn(counter_info_[i], counters_[i]);
  }
}

void MetricsRegistry::for_each_gauge(
    const std::function<void(const MetricInfo&, const Gauge&)>& fn) const {
  for (std::size_t i = 0; i < gauges_.size(); ++i) {
    fn(gauge_info_[i], gauges_[i]);
  }
}

void MetricsRegistry::for_each_histogram(
    const std::function<void(const MetricInfo&, const Histogram&)>& fn)
    const {
  for (std::size_t i = 0; i < histograms_.size(); ++i) {
    fn(histogram_info_[i], histograms_[i]);
  }
}

std::string MetricsRegistry::to_json(bool aggregate) const {
  std::string out = "{\n  \"counters\": [";

  if (aggregate) {
    // std::map: deterministic name order in the dump.
    std::map<std::string, std::uint64_t> csums;
    for (std::size_t i = 0; i < counters_.size(); ++i) {
      csums[counter_info_[i].name] += counters_[i].value_;
    }
    bool first = true;
    for (const auto& [name, value] : csums) {
      out += first ? "\n" : ",\n";
      first = false;
      out += "    {\"name\":\"";
      append_escaped(out, name);
      out += "\",\"value\":";
      append_u64(out, value);
      out += '}';
    }
    out += "\n  ],\n  \"gauges\": [";
    std::map<std::string, double> gsums;
    for (std::size_t i = 0; i < gauges_.size(); ++i) {
      gsums[gauge_info_[i].name] += gauges_[i].value_;
    }
    first = true;
    for (const auto& [name, value] : gsums) {
      out += first ? "\n" : ",\n";
      first = false;
      out += "    {\"name\":\"";
      append_escaped(out, name);
      out += "\",\"value\":";
      append_double(out, value);
      out += '}';
    }
    out += "\n  ],\n  \"histograms\": [";
    std::map<std::string, HistAccum> hsums;
    for (std::size_t i = 0; i < histograms_.size(); ++i) {
      hsums[histogram_info_[i].name].merge(histograms_[i]);
    }
    first = true;
    for (const auto& [name, accum] : hsums) {
      out += first ? "\n" : ",\n";
      first = false;
      out += "    {\"name\":\"";
      append_escaped(out, name);
      out += "\",";
      append_hist_json(out, accum);
      out += '}';
    }
    out += "\n  ]\n}\n";
    return out;
  }

  for (std::size_t i = 0; i < counters_.size(); ++i) {
    out += i ? ",\n" : "\n";
    out += "    {\"name\":\"";
    append_escaped(out, counter_info_[i].name);
    out += "\",\"labels\":";
    append_labels_json(out, counter_info_[i].labels);
    out += ",\"value\":";
    append_u64(out, counters_[i].value_);
    out += '}';
  }
  out += "\n  ],\n  \"gauges\": [";
  for (std::size_t i = 0; i < gauges_.size(); ++i) {
    out += i ? ",\n" : "\n";
    out += "    {\"name\":\"";
    append_escaped(out, gauge_info_[i].name);
    out += "\",\"labels\":";
    append_labels_json(out, gauge_info_[i].labels);
    out += ",\"value\":";
    append_double(out, gauges_[i].value_);
    out += '}';
  }
  out += "\n  ],\n  \"histograms\": [";
  for (std::size_t i = 0; i < histograms_.size(); ++i) {
    out += i ? ",\n" : "\n";
    out += "    {\"name\":\"";
    append_escaped(out, histogram_info_[i].name);
    out += "\",\"labels\":";
    append_labels_json(out, histogram_info_[i].labels);
    out += ',';
    HistAccum a;
    a.merge(histograms_[i]);
    append_hist_json(out, a);
    out += '}';
  }
  out += "\n  ]\n}\n";
  return out;
}

void MetricsRegistry::write_json(const std::string& path,
                                 bool aggregate) const {
  FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    throw std::runtime_error{"metrics: cannot write " + path};
  }
  const std::string json = to_json(aggregate);
  std::fwrite(json.data(), 1, json.size(), f);
  std::fclose(f);
}

}  // namespace abrr::obs
