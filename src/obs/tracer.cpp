#include "obs/tracer.h"

#include <cinttypes>
#include <cstdio>
#include <stdexcept>

namespace abrr::obs {

const char* to_string(TraceEventKind kind) {
  switch (kind) {
    case TraceEventKind::kUpdateRx: return "update_rx";
    case TraceEventKind::kUpdateTx: return "update_tx";
    case TraceEventKind::kDecision: return "decision";
    case TraceEventKind::kSessionUp: return "session_up";
    case TraceEventKind::kSessionDown: return "session_down";
    case TraceEventKind::kHoldExpiry: return "hold_expiry";
    case TraceEventKind::kCrash: return "crash";
    case TraceEventKind::kRestart: return "restart";
    case TraceEventKind::kFaultInject: return "fault_inject";
    case TraceEventKind::kFaultRepair: return "fault_repair";
    case TraceEventKind::kMsgDrop: return "msg_drop";
  }
  return "unknown";
}

Tracer::Tracer(const sim::Scheduler& clock, std::size_t capacity)
    : clock_(&clock), capacity_(capacity) {
  if (capacity_ == 0) throw std::invalid_argument{"Tracer: capacity 0"};
  ring_.reserve(capacity_);
}

void Tracer::record(TraceEventKind kind, std::uint32_t actor,
                    std::uint32_t other, std::uint64_t detail) {
  TraceEvent ev{clock_->now(), kind, actor, other, detail};
  if (ring_.size() < capacity_) {
    ring_.push_back(ev);
  } else {
    ring_[head_] = ev;
    head_ = (head_ + 1) % capacity_;
  }
  ++recorded_;
}

void Tracer::for_each(
    const std::function<void(const TraceEvent&)>& fn) const {
  // head_ is both the overwrite cursor and, once wrapped, the oldest
  // retained event.
  for (std::size_t i = 0; i < ring_.size(); ++i) {
    fn(ring_[(head_ + i) % ring_.size()]);
  }
}

std::string Tracer::to_chrome_json() const {
  std::string out =
      "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  bool first = true;
  char buf[192];
  for_each([&](const TraceEvent& ev) {
    if (!first) out += ',';
    first = false;
    // Instant events with thread scope: one lane per actor (pid), the
    // simulated microsecond timestamp mapping 1:1 onto "ts".
    std::snprintf(buf, sizeof buf,
                  "\n{\"name\":\"%s\",\"ph\":\"i\",\"s\":\"t\","
                  "\"ts\":%" PRId64 ",\"pid\":%u,\"tid\":%u,"
                  "\"args\":{\"other\":%u,\"detail\":%" PRIu64 "}}",
                  to_string(ev.kind), ev.at, ev.actor, ev.actor, ev.other,
                  ev.detail);
    out += buf;
  });
  out += "\n]}\n";
  return out;
}

void Tracer::write_chrome_json(const std::string& path) const {
  FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    throw std::runtime_error{"tracer: cannot write " + path};
  }
  const std::string json = to_chrome_json();
  std::fwrite(json.data(), 1, json.size(), f);
  std::fclose(f);
}

void Tracer::enable_packet_capture(std::size_t max_frames) {
  if (packets_ == nullptr) {
    packets_ = std::make_unique<PacketCapture>(*clock_, max_frames);
  }
}

void Tracer::write_pcap(const std::string& path) const {
  if (packets_ == nullptr) {
    throw std::logic_error{"Tracer::write_pcap: packet capture not enabled"};
  }
  packets_->write_pcap(path);
}

void Tracer::clear() {
  if (packets_ != nullptr) packets_->clear();
  ring_.clear();
  head_ = 0;
  recorded_ = 0;
}

}  // namespace abrr::obs
