#include "obs/pcap.h"

#include <algorithm>
#include <fstream>
#include <stdexcept>

namespace abrr::obs {
namespace {

constexpr std::size_t kEthLen = 14;
constexpr std::size_t kIpLen = 20;
constexpr std::size_t kTcpLen = 20;

void put16be(std::vector<std::uint8_t>& out, std::uint16_t v) {
  out.push_back(static_cast<std::uint8_t>(v >> 8));
  out.push_back(static_cast<std::uint8_t>(v));
}

void put32be(std::vector<std::uint8_t>& out, std::uint32_t v) {
  put16be(out, static_cast<std::uint16_t>(v >> 16));
  put16be(out, static_cast<std::uint16_t>(v));
}

// pcap's own file header/record fields are little-endian (the classic
// 0xa1b2c3d4 magic advertises host order; we fix little-endian so the
// artifact is machine-portable, like the ABMRT container).
void put16le(std::vector<std::uint8_t>& out, std::uint16_t v) {
  out.push_back(static_cast<std::uint8_t>(v));
  out.push_back(static_cast<std::uint8_t>(v >> 8));
}

void put32le(std::vector<std::uint8_t>& out, std::uint32_t v) {
  put16le(out, static_cast<std::uint16_t>(v));
  put16le(out, static_cast<std::uint16_t>(v >> 16));
}

/// RFC 1071 internet checksum over `data` plus an optional pseudo-header
/// sum carried in `acc`.
std::uint16_t checksum(const std::uint8_t* data, std::size_t size,
                       std::uint32_t acc) {
  for (std::size_t i = 0; i + 1 < size; i += 2) {
    acc += static_cast<std::uint32_t>(data[i]) << 8 | data[i + 1];
  }
  if (size % 2 != 0) acc += static_cast<std::uint32_t>(data[size - 1]) << 8;
  while (acc >> 16) acc = (acc & 0xFFFF) + (acc >> 16);
  return static_cast<std::uint16_t>(~acc);
}

/// Locally-administered MAC derived from a router id.
void put_mac(std::vector<std::uint8_t>& out, std::uint32_t id) {
  out.push_back(0x02);
  out.push_back(0x00);
  out.push_back(static_cast<std::uint8_t>(id >> 24));
  out.push_back(static_cast<std::uint8_t>(id >> 16));
  out.push_back(static_cast<std::uint8_t>(id >> 8));
  out.push_back(static_cast<std::uint8_t>(id));
}

}  // namespace

PacketCapture::PacketCapture(const sim::Scheduler& clock,
                             std::size_t capacity)
    : clock_(&clock), capacity_(capacity == 0 ? 1 : capacity) {
  // Frames are heavier than trace events; grow towards large capacities
  // instead of reserving them up front.
  ring_.reserve(std::min<std::size_t>(capacity_, 4096));
}

void PacketCapture::record(std::uint32_t src, std::uint32_t dst,
                           const std::uint8_t* data, std::size_t size) {
  const std::uint64_t flow = static_cast<std::uint64_t>(src) << 32 | dst;
  std::uint32_t& seq = next_seq_[flow];
  Frame f;
  f.at = clock_->now();
  f.src = src;
  f.dst = dst;
  f.seq = seq;
  f.payload.assign(data, data + size);
  seq += static_cast<std::uint32_t>(size);
  ++recorded_;
  payload_bytes_ += size;
  if (ring_.size() < capacity_) {
    ring_.push_back(std::move(f));
    return;
  }
  payload_bytes_ -= ring_[head_].payload.size();
  ring_[head_] = std::move(f);
  head_ = (head_ + 1) % capacity_;
}

void PacketCapture::for_each(
    const std::function<void(sim::Time, std::uint32_t, std::uint32_t,
                             std::span<const std::uint8_t>)>& fn) const {
  const auto visit = [&fn](const Frame& f) {
    fn(f.at, f.src, f.dst, std::span<const std::uint8_t>{f.payload});
  };
  if (ring_.size() < capacity_) {
    for (const Frame& f : ring_) visit(f);
  } else {
    for (std::size_t i = 0; i < ring_.size(); ++i) {
      visit(ring_[(head_ + i) % ring_.size()]);
    }
  }
}

std::vector<std::uint8_t> PacketCapture::to_pcap() const {
  std::vector<std::uint8_t> out;
  out.reserve(24 + payload_bytes_ + ring_.size() * (16 + kEthLen + kIpLen +
                                                    kTcpLen));
  // Global header: magic (usec resolution), v2.4, zone 0, sigfigs 0,
  // snaplen, LINKTYPE_ETHERNET (1).
  put32le(out, 0xa1b2c3d4u);
  put16le(out, 2);
  put16le(out, 4);
  put32le(out, 0);
  put32le(out, 0);
  put32le(out, 65535);
  put32le(out, 1);

  const auto emit = [&out](const Frame& f) {
    const std::size_t wire_len =
        kEthLen + kIpLen + kTcpLen + f.payload.size();
    put32le(out, static_cast<std::uint32_t>(f.at / sim::kSecond));
    put32le(out, static_cast<std::uint32_t>(f.at % sim::kSecond));
    put32le(out, static_cast<std::uint32_t>(wire_len));
    put32le(out, static_cast<std::uint32_t>(wire_len));

    // Ethernet.
    put_mac(out, f.dst);
    put_mac(out, f.src);
    put16be(out, 0x0800);

    // IPv4. Router ids double as loopback addresses.
    const std::size_t ip_at = out.size();
    out.push_back(0x45);  // v4, 20-byte header
    out.push_back(0);     // DSCP
    put16be(out, static_cast<std::uint16_t>(kIpLen + kTcpLen +
                                            f.payload.size()));
    put16be(out, 0);       // identification
    put16be(out, 0x4000);  // don't fragment
    out.push_back(64);     // TTL
    out.push_back(6);      // TCP
    put16be(out, 0);       // checksum, patched below
    put32be(out, f.src);
    put32be(out, f.dst);
    const std::uint16_t ip_sum = checksum(&out[ip_at], kIpLen, 0);
    out[ip_at + 10] = static_cast<std::uint8_t>(ip_sum >> 8);
    out[ip_at + 11] = static_cast<std::uint8_t>(ip_sum);

    // TCP, port 179 both ways so dissectors pick the BGP decoder.
    const std::size_t tcp_at = out.size();
    put16be(out, 179);
    put16be(out, 179);
    put32be(out, f.seq);
    put32be(out, 1);      // ack (synthetic; no reverse stream is modeled)
    out.push_back(0x50);  // data offset 5 words
    out.push_back(0x18);  // PSH|ACK
    put16be(out, 65535);  // window
    put16be(out, 0);      // checksum, patched below
    put16be(out, 0);      // urgent
    out.insert(out.end(), f.payload.begin(), f.payload.end());
    // Pseudo-header: src, dst, zero/proto, TCP length.
    const std::size_t tcp_total = kTcpLen + f.payload.size();
    std::uint32_t pseudo = 0;
    pseudo += (f.src >> 16) + (f.src & 0xFFFF);
    pseudo += (f.dst >> 16) + (f.dst & 0xFFFF);
    pseudo += 6;
    pseudo += static_cast<std::uint32_t>(tcp_total);
    const std::uint16_t tcp_sum = checksum(&out[tcp_at], tcp_total, pseudo);
    out[tcp_at + 16] = static_cast<std::uint8_t>(tcp_sum >> 8);
    out[tcp_at + 17] = static_cast<std::uint8_t>(tcp_sum);
  };

  // Oldest first: ring_[head_..] then ring_[0..head_) once wrapped.
  if (ring_.size() < capacity_) {
    for (const Frame& f : ring_) emit(f);
  } else {
    for (std::size_t i = 0; i < ring_.size(); ++i) {
      emit(ring_[(head_ + i) % ring_.size()]);
    }
  }
  return out;
}

void PacketCapture::write_pcap(const std::string& path) const {
  std::ofstream out{path, std::ios::binary | std::ios::trunc};
  if (!out) throw std::runtime_error{"cannot open for write: " + path};
  const std::vector<std::uint8_t> bytes = to_pcap();
  out.write(reinterpret_cast<const char*>(bytes.data()),
            static_cast<std::streamsize>(bytes.size()));
  if (!out) throw std::runtime_error{"write failed: " + path};
}

void PacketCapture::clear() {
  ring_.clear();
  head_ = 0;
  recorded_ = 0;
  payload_bytes_ = 0;
  next_seq_.clear();
}

}  // namespace abrr::obs
