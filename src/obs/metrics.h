// Metrics registry: named counters, gauges and fixed-bucket histograms
// with label support and cheap handle-based hot-path access.
//
// A handle (Counter*, Gauge*, Histogram*) is looked up once — by name and
// label set — and then incremented directly on the hot path; the registry
// owns the cells (in deques, so handles stay stable as metrics are added)
// and provides the cold-path views: filtered sums, snapshots for
// delta-style accounting, and a JSON dump with per-histogram quantiles.
//
// Everything here is passive with respect to the simulation: recording a
// sample never schedules events, touches the RNG, or observes wall-clock
// time, so instrumented runs stay bit-identical to uninstrumented ones.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <initializer_list>
#include <string>
#include <string_view>
#include <unordered_map>
#include <utility>
#include <vector>

#include "sim/thread_confined.h"

namespace abrr::obs {

/// An ordered (sorted by key) set of key=value pairs identifying one
/// series of a metric, e.g. {speaker=17, role=rr}.
class Labels {
 public:
  Labels() = default;
  Labels(std::initializer_list<std::pair<std::string, std::string>> kv);

  /// Inserts or replaces one label.
  void set(std::string key, std::string value);

  const std::vector<std::pair<std::string, std::string>>& items() const {
    return kv_;
  }
  bool empty() const { return kv_.empty(); }

  /// True when every (key, value) of `subset` appears here.
  bool contains(const Labels& subset) const;

  /// Canonical text form `{k1=v1,k2=v2}` (empty labels -> `{}`); doubles
  /// as the registry's lookup key suffix.
  std::string render() const;

  bool operator==(const Labels& other) const { return kv_ == other.kv_; }

 private:
  std::vector<std::pair<std::string, std::string>> kv_;
};

/// Monotonic counter cell. inc() is the hot path: one add through a
/// pointer the owner cached at registration time.
class Counter {
 public:
  void inc(std::uint64_t n = 1) { value_ += n; }
  std::uint64_t value() const { return value_; }
  /// Position in the registry's counter snapshot vector.
  std::size_t index() const { return index_; }

 private:
  friend class MetricsRegistry;
  std::uint64_t value_ = 0;
  std::uint32_t index_ = 0;
};

/// Point-in-time value cell (RIB sizes, queue depths, ...).
class Gauge {
 public:
  void set(double v) { value_ = v; }
  void add(double d) { value_ += d; }
  double value() const { return value_; }
  std::size_t index() const { return index_; }

 private:
  friend class MetricsRegistry;
  double value_ = 0;
  std::uint32_t index_ = 0;
};

/// Fixed-bucket histogram. `bounds` are ascending upper bounds with
/// INCLUSIVE semantics: a value v lands in the first bucket whose bound
/// is >= v; values above the last bound land in the implicit overflow
/// bucket. quantile() reports the upper bound of the bucket holding the
/// requested rank, clamped to the observed max (the overflow bucket
/// reports the max directly) — a deterministic, platform-independent
/// estimate.
class Histogram {
 public:
  /// Registry histograms are created via MetricsRegistry::histogram();
  /// this default state (no buckets) is only valid as a merge target.
  Histogram() = default;

  /// Free-standing histogram for thread-local recording (the serving
  /// mode's reader threads: the registry is thread-confined, so each
  /// reader records locally and the owner merge()s after join). Bounds
  /// must be ascending and non-empty.
  explicit Histogram(std::vector<double> bounds);

  void record(double v);

  /// Folds `other` into this histogram. Equal bucket bounds merge
  /// bucket-wise; an empty target adopts the source's shape; mismatched
  /// shapes fold into the overflow bucket (same policy as aggregate
  /// JSON dumps).
  void merge(const Histogram& other);

  std::uint64_t count() const { return count_; }
  double sum() const { return sum_; }
  double min() const { return count_ ? min_ : 0; }
  double max() const { return count_ ? max_ : 0; }
  /// q in [0, 1]. An empty histogram reports 0 for every quantile.
  double quantile(double q) const;

  const std::vector<double>& bounds() const { return bounds_; }
  /// bounds().size() + 1 entries; the last is the overflow bucket.
  const std::vector<std::uint64_t>& buckets() const { return buckets_; }

 private:
  friend class MetricsRegistry;
  std::vector<double> bounds_;
  std::vector<std::uint64_t> buckets_;
  std::uint64_t count_ = 0;
  double sum_ = 0;
  double min_ = 0;
  double max_ = 0;
};

/// Power-of-two size buckets 1, 2, 4, ..., 65536 — the default for
/// "how many routes / how many bytes / how big a batch" histograms.
std::vector<double> size_buckets();

/// Byte-size buckets: powers of four from 16B to 1GiB — the default
/// for "how many bytes crossed the wire" histograms (frame sizes,
/// per-connection outboxes), whose range outgrows size_buckets().
std::vector<double> byte_buckets();

/// Latency buckets in nanoseconds: 1-2-5 decades from 1ns to 10s —
/// the default for lookup/publish latency histograms.
std::vector<double> latency_buckets_ns();

struct MetricInfo {
  std::string name;
  Labels labels;
};

/// Dense snapshot of every counter cell, indexed by Counter::index().
/// Cells registered after the snapshot read as 0 (implicit baseline).
using CounterSnapshot = std::vector<std::uint64_t>;

class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// Registration doubles as lookup: the same (name, labels) always
  /// returns the same cell. Distinct registries never share cells, so
  /// equal metric names in two registries cannot collide.
  Counter* counter(std::string_view name, const Labels& labels = {});
  Gauge* gauge(std::string_view name, const Labels& labels = {});
  /// `bounds` must be ascending and non-empty; on re-lookup of an
  /// existing histogram the bounds argument is ignored.
  Histogram* histogram(std::string_view name, std::vector<double> bounds,
                       const Labels& labels = {});

  std::size_t counter_count() const { return counters_.size(); }
  std::size_t gauge_count() const { return gauges_.size(); }
  std::size_t histogram_count() const { return histograms_.size(); }
  /// Distinct metric names across all three kinds.
  std::size_t name_count() const;

  CounterSnapshot counter_snapshot() const;

  /// Sum of every counter named `name` whose labels contain `filter`,
  /// minus the same cells' values in `baseline` (when given).
  std::uint64_t sum_counters(std::string_view name,
                             const Labels& filter = {},
                             const CounterSnapshot* baseline = nullptr) const;

  void for_each_counter(
      const std::function<void(const MetricInfo&, const Counter&)>& fn) const;
  void for_each_gauge(
      const std::function<void(const MetricInfo&, const Gauge&)>& fn) const;
  void for_each_histogram(
      const std::function<void(const MetricInfo&, const Histogram&)>& fn)
      const;

  /// JSON dump of every metric (with p50/p95/p99 per histogram).
  /// `aggregate` merges series sharing a name: counters/gauges sum,
  /// histograms merge bucket-wise (the compact form benches embed in
  /// their reports; the full form is the export tool's).
  std::string to_json(bool aggregate = false) const;
  /// Writes to_json() to `path`; throws std::runtime_error on I/O error.
  void write_json(const std::string& path, bool aggregate = false) const;

 private:
  static std::string key_of(std::string_view name, const Labels& labels);

  std::deque<Counter> counters_;
  std::vector<MetricInfo> counter_info_;
  std::unordered_map<std::string, std::size_t> counter_index_;

  std::deque<Gauge> gauges_;
  std::vector<MetricInfo> gauge_info_;
  std::unordered_map<std::string, std::size_t> gauge_index_;

  std::deque<Histogram> histograms_;
  std::vector<MetricInfo> histogram_info_;
  std::unordered_map<std::string, std::size_t> histogram_index_;
  /// A registry belongs to one trial, hence one thread (debug assert on
  /// the registration paths; handle-based inc/set stays unchecked).
  sim::ThreadConfined confined_;
};

}  // namespace abrr::obs
