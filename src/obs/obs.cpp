#include "obs/obs.h"

namespace abrr::obs {

Obs::Obs(sim::Scheduler& scheduler, const ObsOptions& options)
    : options_(options) {
  if (options_.enabled) {
    tracer_ = std::make_unique<Tracer>(scheduler, options_.trace_capacity);
    if (options_.pcap_frames > 0) {
      tracer_->enable_packet_capture(options_.pcap_frames);
    }
    sampler_ = std::make_unique<Sampler>(scheduler, options_.sample_period);
  }
}

}  // namespace abrr::obs
