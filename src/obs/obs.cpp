#include "obs/obs.h"

namespace abrr::obs {

Obs::Obs(sim::Scheduler& scheduler, const ObsOptions& options)
    : options_(options) {
  if (options_.enabled) {
    tracer_ = std::make_unique<Tracer>(scheduler, options_.trace_capacity);
    sampler_ = std::make_unique<Sampler>(scheduler, options_.sample_period);
  }
}

}  // namespace abrr::obs
