// Tier-1 scenario: the deployment the paper's introduction motivates.
//
// Synthesizes a 13-PoP Tier-1 AS (peering routers, 25 peer ASes at ~8
// peering points each), generates a calibrated RIB snapshot, and runs
// the same network twice: full-mesh iBGP (the gold standard that does
// not scale) and ABRR with 8 Address Partitions. It then demonstrates
// the paper's three headline properties:
//   1. ABRR selects exactly the routes full-mesh would select,
//   2. forwarding is loop-free and hot-potato optimal,
//   3. each ARR holds a small slice of the full-mesh state.
//
//   $ ./tier1_abrr [--prefixes=N]
#include <cstdio>
#include <cstring>
#include <memory>

#include "harness/testbed.h"
#include "trace/regenerator.h"
#include "verify/efficiency.h"
#include "verify/equivalence.h"
#include "verify/forwarding.h"

using namespace abrr;

int main(int argc, char** argv) {
  std::size_t n_prefixes = 2000;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--prefixes=", 11) == 0) {
      n_prefixes = std::strtoull(argv[i] + 11, nullptr, 10);
    }
  }

  sim::Rng rng{7};
  topo::TopologyParams tp;
  tp.pops = 13;
  tp.clients_per_pop = 8;
  tp.peering_router_fraction = 1.0;
  tp.peer_ases = 25;
  tp.peering_points_per_as = 8;
  const auto topology = topo::make_tier1(tp, rng);

  trace::WorkloadParams wp;
  wp.prefixes = n_prefixes;
  const auto workload = trace::Workload::generate(wp, topology, rng);
  const auto prefixes = workload.prefixes();
  std::printf("Tier-1 AS: %zu routers, %zu eBGP peering points, %zu"
              " prefixes\n\n",
              topology.clients.size(), topology.peering_points.size(),
              n_prefixes);

  const auto build = [&](ibgp::IbgpMode mode) {
    harness::TestbedOptions o;
    o.mode = mode;
    o.num_aps = 8;
    o.mrai = sim::sec(5);
    auto bed = std::make_unique<harness::Testbed>(topology, o, prefixes);
    trace::RouteRegenerator regen{bed->scheduler(), workload,
                                  bed->inject_fn()};
    regen.load_snapshot(0, sim::sec(20));
    bed->run_to_quiescence();
    return bed;
  };

  std::printf("loading the snapshot under full-mesh iBGP...\n");
  auto mesh = build(ibgp::IbgpMode::kFullMesh);
  std::printf("  %zu iBGP sessions, converged at t=%.1fs\n\n",
              mesh->session_count(),
              sim::to_seconds(mesh->scheduler().now()));

  std::printf("loading the same snapshot under ABRR (8 APs x 2 ARRs)...\n");
  auto abrr = build(ibgp::IbgpMode::kAbrr);
  std::printf("  %zu iBGP sessions, converged at t=%.1fs\n\n",
              abrr->session_count(),
              sim::to_seconds(abrr->scheduler().now()));

  // 1. Full-mesh equivalence.
  const auto eq = verify::compare_loc_ribs(*abrr, *mesh, prefixes);
  std::printf("[1] route selection: %zu (router, prefix) pairs compared, "
              "%zu diverged %s\n",
              eq.compared, eq.divergence_count,
              eq.equivalent() ? "- exact full-mesh emulation" : "(!)");

  // 2. Data-plane health.
  verify::ForwardingChecker checker{*abrr};
  const auto audit = checker.audit(prefixes);
  const auto eff = verify::audit_efficiency(*abrr, workload);
  std::printf("[2] forwarding: %zu walks, %zu delivered, %zu loops; "
              "%zu hot-potato violations\n",
              audit.checked, audit.delivered, audit.loops,
              eff.inefficient);

  // 3. State per reflector.
  const auto mesh_state =
      mesh->speaker(mesh->client_ids().front()).rib_in_size();
  const auto arr = abrr->rr_rib_in();
  std::printf("[3] state: a full-mesh router holds %zu Adj-RIB-In routes;"
              " an ARR holds %.0f on average (min %.0f / max %.0f)\n",
              mesh_state, arr.avg, arr.min, arr.max);

  std::printf("\nABRR placement freedom: the 16 ARRs were attached to\n");
  std::printf("random PoPs; none of the three results above depends on\n");
  std::printf("where they sit (S2.3.3 of the paper).\n");
  return 0;
}
