// §2.4: migrating a running AS from TBRR to ABRR without interrupting
// service. Routers run both planes (kDual); a TransitionController flips
// the per-AP acceptance switch one Address Partition at a time, and
// after every step we verify that no (router, prefix) pair lost its
// route. Finally the fully cut-over network is compared against a pure
// ABRR deployment.
//
//   $ ./transition_demo
#include <cstdio>
#include <memory>

#include "core/transition.h"
#include "harness/testbed.h"
#include "trace/regenerator.h"
#include "verify/equivalence.h"

using namespace abrr;

int main() {
  sim::Rng rng{11};
  topo::TopologyParams tp;
  tp.pops = 6;
  tp.clients_per_pop = 5;
  tp.peer_ases = 10;
  tp.peering_points_per_as = 4;
  const auto topology = topo::make_tier1(tp, rng);
  trace::WorkloadParams wp;
  wp.prefixes = 500;
  const auto workload = trace::Workload::generate(wp, topology, rng);
  const auto prefixes = workload.prefixes();

  constexpr std::size_t kAps = 4;
  harness::TestbedOptions options;
  options.mode = ibgp::IbgpMode::kDual;  // both planes wired
  options.num_aps = kAps;
  options.mrai = sim::sec(5);

  harness::Testbed bed{topology, options, prefixes};
  core::TransitionController controller{*bed.partition()};
  for (const auto id : bed.all_ids()) controller.attach(bed.speaker(id));

  trace::RouteRegenerator regen{bed.scheduler(), workload, bed.inject_fn()};
  regen.load_snapshot(0, sim::sec(10));
  bed.run_to_quiescence();

  const auto reachable_pairs = [&] {
    std::size_t n = 0;
    for (const auto id : bed.client_ids()) {
      for (const auto& p : prefixes) {
        n += bed.speaker(id).loc_rib().best(p) != nullptr ? 1 : 0;
      }
    }
    return n;
  };
  const std::size_t full = bed.client_ids().size() * prefixes.size();

  std::printf("dual-plane AS loaded: %zu clients, %zu prefixes, "
              "%zu/%zu pairs reachable (TBRR plane active)\n\n",
              bed.client_ids().size(), prefixes.size(), reachable_pairs(),
              full);

  for (ibgp::ApId ap = 0; ap < static_cast<ibgp::ApId>(kAps); ++ap) {
    std::printf("cutting over AP %d -> ABRR ... ", ap);
    controller.cutover(ap);
    bed.run_to_quiescence();
    const std::size_t ok = reachable_pairs();
    std::printf("converged, %zu/%zu pairs reachable%s\n", ok, full,
                ok == full ? "" : "  <-- SERVICE LOSS");
  }
  std::printf("\ntransition complete: %s\n",
              controller.complete() ? "all APs on ABRR" : "INCOMPLETE");

  // Cross-check against a from-scratch pure ABRR deployment.
  harness::TestbedOptions pure = options;
  pure.mode = ibgp::IbgpMode::kAbrr;
  harness::Testbed abrr{topology, pure, prefixes};
  trace::RouteRegenerator regen2{abrr.scheduler(), workload,
                                 abrr.inject_fn()};
  regen2.load_snapshot(0, sim::sec(10));
  abrr.run_to_quiescence();
  const auto eq = verify::compare_loc_ribs(bed, abrr, prefixes);
  std::printf("route selection vs pure ABRR: %zu/%zu pairs diverge\n",
              eq.divergence_count, eq.compared);
  std::printf("TBRR can now be deconfigured (the dual plane kept\n");
  std::printf("advertising on both throughout, so rollback stayed\n");
  std::printf("possible at every step).\n");
  return 0;
}
