// Quickstart: declare an experiment, run it, read the results.
//
// The public experiment API is runner::ScenarioSpec (a declarative
// value describing one experiment family: topology scale, iBGP mode,
// AP/timing/fault/obs options, seeds) plus runner::ExperimentRunner
// (executes many independent trials, optionally on a thread pool, with
// byte-identical results at any --jobs). This example:
//
//   1. declares a small ABRR scenario and validates it,
//   2. shows what validate() says about a nonsensical spec,
//   3. sweeps mode x seed into 6 trials and runs them on 2 workers,
//   4. prints the per-trial numbers the paper's figures are built from.
//
//   $ ./quickstart
#include <cstdio>

#include "runner/runner.h"

using namespace abrr;

int main() {
  // 1. A ScenarioSpec is plain data. Start from the paper's §4 defaults
  //    (2 ARRs per AP, 5s MRAI, 50ms processing delay) and shrink the
  //    testbed so this demo runs in a couple of seconds.
  runner::ScenarioSpec spec =
      runner::ScenarioSpec::paper(ibgp::IbgpMode::kAbrr, /*num_aps=*/4,
                                  /*seed=*/2026);
  spec.name = "quickstart";
  spec.topology.pops = 4;           // 4 PoPs instead of the paper's 13
  spec.topology.clients_per_pop = 3;
  spec.topology.peer_ases = 6;
  spec.topology.points_per_as = 3;
  spec.workload.prefixes = 200;     // synthetic eBGP feed
  spec.workload.snapshot_seconds = 10.0;

  if (const auto errors = spec.validate(); !errors.empty()) {
    std::fprintf(stderr, "invalid spec: %s\n",
                 runner::render_errors(errors).c_str());
    return 1;
  }

  // 2. validate() turns misconfiguration into structured errors instead
  //    of silently nonsensical runs:
  runner::ScenarioSpec broken = spec;
  broken.abrr.arrs_per_ap = 0;          // an AP with no ARR serves nobody
  broken.multipath = true;              // TBRR-multi needs a TBRR mode
  std::printf("a broken spec would be rejected with:\n  %s\n\n",
              runner::render_errors(broken.validate()).c_str());

  // 3. Expand mode x seed into independent trials and run them. Each
  //    trial regenerates its whole world (topology, workload, testbed)
  //    from its seed on its worker thread; results come back in
  //    declared order, byte-identical no matter how many jobs you use.
  runner::SweepAxes axes;
  axes.modes = {ibgp::IbgpMode::kFullMesh, ibgp::IbgpMode::kTbrr,
                ibgp::IbgpMode::kAbrr};
  axes.seeds = {2026, 2027};
  runner::ExperimentRunner run{{.jobs = 2}};
  const auto results = run.run_sweep(spec, axes);

  // 4. One row per trial: the RIB sizes of Figure 6 and the per-role
  //    update totals of Figure 7, straight off the TrialResult.
  std::printf("%-32s %6s %9s %9s %12s\n", "trial", "conv", "rib-in",
              "rib-out", "rr-updates");
  for (const auto& r : results) {
    if (!r.error.empty()) {
      std::printf("%-32s FAILED: %s\n", r.scenario.c_str(), r.error.c_str());
      continue;
    }
    std::printf("%-32s %6s %9.0f %9.0f %12llu\n", r.scenario.c_str(),
                r.converged ? "yes" : "NO", r.rib_in.avg, r.rib_out.avg,
                static_cast<unsigned long long>(r.rr_totals.received));
  }
  std::printf(
      "\nABRR rows carry visibly smaller reflector RIBs than TBRR at\n"
      "identical routing outcomes - the paper's headline, in 6 trials.\n"
      "Same binary, --jobs=1 or --jobs=8: identical numbers.\n");
  return 0;
}
