// Quickstart: a five-router AS running Address-Based Route Reflection.
//
// Builds, by hand and on the public API, the smallest interesting ABRR
// deployment: three border routers (clients) and two ARRs splitting the
// address space in half. Injects eBGP routes, lets the simulated
// control plane converge, and prints every router's chosen paths.
//
//   $ ./quickstart
#include <cstdio>
#include <map>
#include <memory>

#include "core/address_partition.h"
#include "ibgp/speaker.h"

using namespace abrr;
using ibgp::IbgpMode;
using ibgp::PeerInfo;
using ibgp::RouterId;
using ibgp::Speaker;
using ibgp::SpeakerConfig;

int main() {
  // 1. The simulation substrate: a deterministic event loop and a
  //    message fabric with per-session latencies.
  sim::Scheduler scheduler;
  sim::Rng rng{2026};
  net::Network network{scheduler, rng};

  // 2. Two Address Partitions covering the IPv4 space (AP 0 = low half,
  //    AP 1 = high half). ARR 10 serves AP 0, ARR 11 serves AP 1.
  const auto partition = core::PartitionScheme::uniform(2);

  std::map<RouterId, std::unique_ptr<Speaker>> routers;
  const auto add_router = [&](RouterId id, std::vector<ibgp::ApId> aps) {
    SpeakerConfig cfg;
    cfg.id = id;
    cfg.asn = 65000;
    cfg.mode = IbgpMode::kAbrr;
    cfg.ap_of = partition.mapper();
    cfg.managed_aps = aps;          // empty => plain client
    cfg.data_plane = aps.empty();   // our ARRs are control-plane boxes
    cfg.mrai = sim::sec(5);
    routers.emplace(id, std::make_unique<Speaker>(cfg, scheduler, network));
  };
  for (RouterId client : {1, 2, 3}) add_router(client, {});
  add_router(10, {0});
  add_router(11, {1});

  // 3. Sessions: every client peers with every ARR; ARRs are clients of
  //    each other for the AP they do not manage.
  const auto wire = [&](RouterId client, RouterId arr, ibgp::ApId ap) {
    network.connect(client, arr, sim::msec(5));
    routers.at(arr)->add_peer(PeerInfo{.id = client, .rr_client = true});
    routers.at(client)->add_peer(
        PeerInfo{.id = arr, .reflector_for = {ap}});
  };
  for (RouterId client : {1, 2, 3}) {
    wire(client, 10, 0);
    wire(client, 11, 1);
  }
  network.connect(10, 11, sim::msec(5));
  routers.at(10)->add_peer(
      PeerInfo{.id = 11, .rr_client = true, .reflector_for = {1}});
  routers.at(11)->add_peer(
      PeerInfo{.id = 10, .rr_client = true, .reflector_for = {0}});

  for (auto& [id, r] : routers) r->start();

  // 4. eBGP routes arrive at the borders: two AS-level-equal paths for
  //    10.0.0.0/8 (AP 0) and one path for 200.0.0.0/8 (AP 1).
  const auto low = bgp::Ipv4Prefix::parse("10.0.0.0/8");
  const auto high = bgp::Ipv4Prefix::parse("200.0.0.0/8");
  routers.at(1)->inject_ebgp(
      0x80000001,
      bgp::RouteBuilder{low}.as_path({7018, 3356}).med(10).build());
  routers.at(2)->inject_ebgp(
      0x80000002,
      bgp::RouteBuilder{low}.as_path({1299, 3356}).med(99).build());
  routers.at(3)->inject_ebgp(
      0x80000003, bgp::RouteBuilder{high}.as_path({6453}).build());

  // 5. Run the control plane until it is quiet.
  scheduler.run_to_quiescence();
  std::printf("converged at t=%.3fs after %llu events\n\n",
              sim::to_seconds(scheduler.now()),
              static_cast<unsigned long long>(scheduler.events_executed()));

  // 6. Inspect the result: every client knows both prefixes; the ARRs
  //    each carry only their own partition in Adj-RIB-Out.
  for (RouterId id : {1, 2, 3}) {
    const auto& r = *routers.at(id);
    std::printf("router %u:\n", id);
    for (const auto& prefix : {low, high}) {
      const bgp::Route* best = r.loc_rib().best(prefix);
      std::printf("  %-14s -> %s\n", prefix.to_string().c_str(),
                  best ? best->to_string().c_str() : "(no route)");
    }
  }
  for (RouterId id : {10, 11}) {
    const auto& r = *routers.at(id);
    std::printf("ARR %u: rib-in=%zu rib-out=%zu (reflects AP %d only)\n",
                id, r.rib_in_size(), r.rib_out_size(),
                r.config().managed_aps.front());
  }
  std::printf("\nBoth AS-level-equal 10/8 paths were reflected to every\n");
  std::printf("client (add-paths); each client picked its best by its\n");
  std::printf("own decision process - full-mesh semantics, two RRs.\n");
  return 0;
}
