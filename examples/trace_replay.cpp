// Trace tooling walkthrough: synthesize a Tier-1 workload and a
// two-week-style update trace, persist both to an MRT-style file, read
// the file back, and replay it through the route regenerator against an
// ABRR testbed while watching the §4.2 counters.
//
//   $ ./trace_replay [path]
#include <cstdio>
#include <string>

#include "harness/testbed.h"
#include "trace/mrt.h"
#include "trace/regenerator.h"

using namespace abrr;

int main(int argc, char** argv) {
  const std::string path =
      argc > 1 ? argv[1] : "/tmp/abrr_tier1_trace.mrt";

  // 1. Synthesize and persist.
  sim::Rng rng{3};
  topo::TopologyParams tp;
  tp.pops = 8;
  tp.clients_per_pop = 6;
  tp.peering_router_fraction = 1.0;
  tp.peer_ases = 15;
  tp.peering_points_per_as = 5;
  const auto topology = topo::make_tier1(tp, rng);

  trace::WorkloadParams wp;
  wp.prefixes = 1000;
  const auto workload = trace::Workload::generate(wp, topology, rng);

  trace::TraceParams tparams;
  tparams.duration = sim::sec(90);
  tparams.events_per_second = 8;
  const auto trace = trace::UpdateTrace::generate(tparams, workload, rng);

  trace::write_mrt(path, workload, trace);
  std::printf("wrote %s: %zu prefixes, %zu edge events\n", path.c_str(),
              workload.prefix_count(), trace.events().size());

  // 2. Read it back (a different process would start here).
  const trace::MrtFile file = trace::read_mrt(path);
  std::printf("read back: %zu prefixes, %zu events, duration %.0fs\n\n",
              file.workload.prefix_count(), file.trace.events().size(),
              sim::to_seconds(file.trace.duration()));

  // 3. Replay against an ABRR testbed.
  harness::TestbedOptions options;
  options.mode = ibgp::IbgpMode::kAbrr;
  options.num_aps = 8;
  harness::Testbed bed{topology, options, file.workload.prefixes()};
  trace::RouteRegenerator regen{bed.scheduler(), file.workload,
                                bed.inject_fn()};

  regen.load_snapshot(0, sim::sec(15));
  bed.run_to_quiescence();
  std::printf("snapshot loaded: %llu eBGP announcements, RR RIB-In avg "
              "%.0f routes\n",
              static_cast<unsigned long long>(regen.injected()),
              bed.rr_rib_in().avg);

  bed.reset_counters();
  regen.play(file.trace, bed.scheduler().now());
  bed.run_to_quiescence();

  const auto rr = bed.rr_counters();
  const auto clients = bed.client_counters();
  std::printf("replayed %zu events:\n", file.trace.events().size());
  std::printf("  per ARR:    %.0f updates received, %.0f generated, "
              "%.0f transmitted\n",
              rr.avg_received(), rr.avg_generated(), rr.avg_transmitted());
  std::printf("  per client: %.0f updates received\n",
              clients.avg_received());
  std::printf("\nthe same file replays bit-identically on any machine\n");
  std::printf("(little-endian on disk, deterministic simulation).\n");
  return 0;
}
