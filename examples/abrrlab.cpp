// abrrlab — command-line laboratory around the library.
//
//   abrrlab gen   --out=FILE [--prefixes=N] [--seed=N] [--pops=N]
//                 [--trace-seconds=S] [--rate=EPS]
//       Synthesize a Tier-1 workload + update trace, write an MRT file.
//
//   abrrlab info  --in=FILE
//       Summarize an MRT file (prefixes, announcements, events).
//
//   abrrlab run   --in=FILE --mode=abrr|tbrr|mesh [--aps=N] [--seed=N]
//                 [--balanced]
//       Load the snapshot, replay the trace, print RIB sizes, update
//       counters, forwarding/efficiency audits.
//
//   abrrlab compare --in=FILE [--aps=N]
//       Run ABRR and full-mesh side by side and report equivalence.
//
// The topology is re-synthesized from the same seed (the MRT file
// stores the edge view; router placement is deterministic per seed).
#include <cstdio>
#include <cstring>
#include <map>
#include <memory>
#include <string>

#include "harness/testbed.h"
#include "trace/mrt.h"
#include "trace/regenerator.h"
#include "verify/efficiency.h"
#include "verify/equivalence.h"
#include "verify/forwarding.h"

using namespace abrr;

namespace {

struct Args {
  std::string command;
  std::map<std::string, std::string> kv;

  static Args parse(int argc, char** argv) {
    Args a;
    if (argc > 1) a.command = argv[1];
    for (int i = 2; i < argc; ++i) {
      std::string s = argv[i];
      if (s.rfind("--", 0) != 0) continue;
      const auto eq = s.find('=');
      if (eq == std::string::npos) {
        a.kv[s.substr(2)] = "1";
      } else {
        a.kv[s.substr(2, eq - 2)] = s.substr(eq + 1);
      }
    }
    return a;
  }
  std::string get(const std::string& key, const std::string& dflt) const {
    const auto it = kv.find(key);
    return it == kv.end() ? dflt : it->second;
  }
  std::uint64_t num(const std::string& key, std::uint64_t dflt) const {
    const auto it = kv.find(key);
    return it == kv.end() ? dflt : std::strtoull(it->second.c_str(), nullptr, 10);
  }
};

topo::Topology make_topology(std::uint64_t seed, std::uint32_t pops) {
  sim::Rng rng{seed};
  topo::TopologyParams tp;
  tp.pops = pops;
  tp.clients_per_pop = 8;
  tp.peering_router_fraction = 1.0;
  tp.peer_ases = 25;
  tp.peering_points_per_as = 8;
  tp.peering_skew = 0.8;
  return topo::make_tier1(tp, rng);
}

int cmd_gen(const Args& args) {
  const std::string out = args.get("out", "");
  if (out.empty()) {
    std::fprintf(stderr, "gen: --out=FILE required\n");
    return 2;
  }
  const std::uint64_t seed = args.num("seed", 42);
  sim::Rng rng{seed};
  const auto topology =
      make_topology(seed, static_cast<std::uint32_t>(args.num("pops", 13)));
  trace::WorkloadParams wp;
  wp.prefixes = args.num("prefixes", 4000);
  const auto workload = trace::Workload::generate(wp, topology, rng);
  trace::TraceParams tp;
  tp.duration = sim::sec(static_cast<std::int64_t>(
      args.num("trace-seconds", 120)));
  tp.events_per_second = static_cast<double>(args.num("rate", 8));
  const auto trace = trace::UpdateTrace::generate(tp, workload, rng);
  trace::write_mrt(out, workload, trace);
  std::printf("wrote %s (%zu prefixes, %zu events, seed %llu)\n",
              out.c_str(), workload.prefix_count(), trace.events().size(),
              static_cast<unsigned long long>(seed));
  return 0;
}

int cmd_info(const Args& args) {
  const auto file = trace::read_mrt(args.get("in", ""));
  std::size_t anns = 0, peers = 0;
  for (const auto& e : file.workload.table()) {
    anns += e.anns.size();
    peers += e.from_peers ? 1 : 0;
  }
  std::printf("prefixes:        %zu (%.0f%% peer-learned)\n",
              file.workload.prefix_count(),
              100.0 * static_cast<double>(peers) /
                  static_cast<double>(file.workload.prefix_count()));
  std::printf("announcements:   %zu (%.1f per prefix)\n", anns,
              static_cast<double>(anns) /
                  static_cast<double>(file.workload.prefix_count()));
  std::printf("trace events:    %zu over %.0fs\n",
              file.trace.events().size(),
              sim::to_seconds(file.trace.duration()));
  std::map<trace::EventKind, std::size_t> kinds;
  for (const auto& e : file.trace.events()) ++kinds[e.kind];
  std::printf("  withdraw %zu / reannounce %zu / med %zu / path %zu\n",
              kinds[trace::EventKind::kWithdraw],
              kinds[trace::EventKind::kReannounce],
              kinds[trace::EventKind::kMedChange],
              kinds[trace::EventKind::kPathChange]);
  return 0;
}

struct RunResult {
  std::unique_ptr<harness::Testbed> bed;
  trace::Workload final_edge;  // the regenerator's view after the replay
};

RunResult run_file(const trace::MrtFile& file, const Args& args,
                   ibgp::IbgpMode mode) {
  const std::uint64_t seed = args.num("seed", 42);
  const auto topology =
      make_topology(seed, static_cast<std::uint32_t>(args.num("pops", 13)));
  harness::TestbedOptions options;
  options.mode = mode;
  options.num_aps = args.num("aps", 8);
  options.balanced_aps = args.kv.count("balanced") != 0;
  options.seed = seed;
  auto bed = std::make_unique<harness::Testbed>(topology, options,
                                                file.workload.prefixes());
  trace::RouteRegenerator regen{bed->scheduler(), file.workload,
                                bed->inject_fn()};
  regen.load_snapshot(0, sim::sec(30));
  if (!bed->run_to_quiescence()) {
    std::fprintf(stderr, "snapshot did not converge\n");
    return {};
  }
  bed->reset_counters();
  regen.play(file.trace, bed->scheduler().now());
  bed->run_to_quiescence();
  return RunResult{std::move(bed), regen.current()};
}

int cmd_run(const Args& args) {
  const auto file = trace::read_mrt(args.get("in", ""));
  const std::string mode_str = args.get("mode", "abrr");
  ibgp::IbgpMode mode = ibgp::IbgpMode::kAbrr;
  if (mode_str == "tbrr") mode = ibgp::IbgpMode::kTbrr;
  if (mode_str == "mesh") mode = ibgp::IbgpMode::kFullMesh;

  auto result = run_file(file, args, mode);
  if (!result.bed) return 1;
  auto& bed = result.bed;

  const auto in = bed->rr_rib_in();
  const auto out = bed->rr_rib_out();
  const auto rr = bed->rr_counters();
  const auto clients = bed->client_counters();
  std::printf("mode %s: %zu speakers, %zu sessions\n", mode_str.c_str(),
              bed->all_ids().size(), bed->session_count());
  if (!bed->rr_ids().empty()) {
    std::printf("RR RIB-In  min/avg/max: %.0f / %.0f / %.0f\n", in.min,
                in.avg, in.max);
    std::printf("RR RIB-Out min/avg/max: %.0f / %.0f / %.0f\n", out.min,
                out.avg, out.max);
    std::printf("RR updates: %.0f received, %.0f generated, %.0f "
                "transmitted (per RR, replay phase)\n",
                rr.avg_received(), rr.avg_generated(),
                rr.avg_transmitted());
  }
  std::printf("client updates received: %.0f per client\n",
              clients.avg_received());

  // Audit against the post-replay edge state (flapped-down prefixes
  // legitimately have no route).
  verify::ForwardingChecker checker{*bed};
  const auto prefixes = file.workload.prefixes();
  const auto audit = checker.audit(prefixes);
  const auto eff = verify::audit_efficiency(*bed, result.final_edge);
  std::printf("forwarding: %zu/%zu delivered (%zu without a route at "
              "trace end), %zu loops; %zu hot-potato violations\n",
              audit.delivered, audit.checked, audit.no_route, audit.loops,
              eff.inefficient);
  return 0;
}

int cmd_compare(const Args& args) {
  const auto file = trace::read_mrt(args.get("in", ""));
  auto abrr = run_file(file, args, ibgp::IbgpMode::kAbrr);
  auto mesh = run_file(file, args, ibgp::IbgpMode::kFullMesh);
  if (!abrr.bed || !mesh.bed) return 1;
  const auto prefixes = file.workload.prefixes();
  const auto eq = verify::compare_loc_ribs(*abrr.bed, *mesh.bed, prefixes);
  std::printf("ABRR vs full-mesh: %zu pairs compared, %zu diverged%s\n",
              eq.compared, eq.divergence_count,
              eq.equivalent() ? " - exact emulation" : "");
  for (const auto& d : eq.divergences) {
    std::printf("  router %u %s: abrr->%u mesh->%u\n", d.router,
                d.prefix.to_string().c_str(), d.egress_a, d.egress_b);
  }
  return eq.equivalent() ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  const Args args = Args::parse(argc, argv);
  try {
    if (args.command == "gen") return cmd_gen(args);
    if (args.command == "info") return cmd_info(args);
    if (args.command == "run") return cmd_run(args);
    if (args.command == "compare") return cmd_compare(args);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
  std::fprintf(stderr,
               "usage: abrrlab gen|info|run|compare [--flags]\n"
               "  gen     --out=F [--prefixes=N --seed=N --pops=N "
               "--trace-seconds=S --rate=EPS]\n"
               "  info    --in=F\n"
               "  run     --in=F --mode=abrr|tbrr|mesh [--aps=N "
               "--balanced --seed=N]\n"
               "  compare --in=F [--aps=N --seed=N]\n");
  return 2;
}
