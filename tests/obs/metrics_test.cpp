// Unit tests for the metrics registry: handle identity, histogram
// bucket semantics at the boundaries, empty-histogram quantiles,
// label-filtered sums with baselines, and registry isolation.
#include "obs/metrics.h"

#include <gtest/gtest.h>

namespace abrr::obs {
namespace {

TEST(Labels, RenderSortsKeys) {
  Labels a{{"speaker", "7"}, {"role", "rr"}};
  Labels b{{"role", "rr"}, {"speaker", "7"}};
  EXPECT_EQ(a.render(), b.render());
  EXPECT_EQ(a, b);
}

TEST(Labels, ContainsIsSubsetMatch) {
  Labels cell{{"speaker", "7"}, {"role", "rr"}};
  EXPECT_TRUE(cell.contains(Labels{}));
  EXPECT_TRUE(cell.contains(Labels{{"role", "rr"}}));
  EXPECT_FALSE(cell.contains(Labels{{"role", "client"}}));
  EXPECT_FALSE(cell.contains(Labels{{"ap", "3"}}));
}

TEST(MetricsRegistry, RegistrationIsLookup) {
  MetricsRegistry r;
  Counter* a = r.counter("x", Labels{{"speaker", "1"}});
  Counter* b = r.counter("x", Labels{{"speaker", "1"}});
  Counter* c = r.counter("x", Labels{{"speaker", "2"}});
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
  a->inc(3);
  EXPECT_EQ(b->value(), 3u);
  EXPECT_EQ(r.counter_count(), 2u);
}

TEST(MetricsRegistry, CollidingNamesAcrossRegistriesStayIsolated) {
  MetricsRegistry r1;
  MetricsRegistry r2;
  Counter* c1 = r1.counter("speaker.updates_received");
  Counter* c2 = r2.counter("speaker.updates_received");
  ASSERT_NE(c1, c2);
  c1->inc(10);
  c2->inc(1);
  EXPECT_EQ(c1->value(), 10u);
  EXPECT_EQ(c2->value(), 1u);
  EXPECT_EQ(r1.sum_counters("speaker.updates_received"), 10u);
  EXPECT_EQ(r2.sum_counters("speaker.updates_received"), 1u);
}

TEST(MetricsRegistry, HandlesStaySableAcrossManyRegistrations) {
  // Deque-backed cells must not move when later registrations grow the
  // storage (a vector would invalidate the earlier handles).
  MetricsRegistry r;
  Counter* first = r.counter("c0");
  first->inc();
  for (int i = 1; i < 1000; ++i) {
    r.counter("c" + std::to_string(i))->inc(static_cast<std::uint64_t>(i));
  }
  EXPECT_EQ(first->value(), 1u);
  EXPECT_EQ(r.counter("c0"), first);
  EXPECT_EQ(r.counter("c999")->value(), 999u);
}

TEST(Histogram, BucketBoundariesAreInclusive) {
  MetricsRegistry r;
  Histogram* h = r.histogram("h", {10.0, 20.0});
  h->record(10);  // exactly on the first bound -> first bucket
  h->record(10.5);
  h->record(20);  // exactly on the second bound -> second bucket
  h->record(21);  // above the last bound -> overflow
  ASSERT_EQ(h->buckets().size(), 3u);
  EXPECT_EQ(h->buckets()[0], 1u);
  EXPECT_EQ(h->buckets()[1], 2u);
  EXPECT_EQ(h->buckets()[2], 1u);
  EXPECT_EQ(h->count(), 4u);
  EXPECT_DOUBLE_EQ(h->min(), 10.0);
  EXPECT_DOUBLE_EQ(h->max(), 21.0);
}

TEST(Histogram, EmptyReportsZeroEverywhere) {
  MetricsRegistry r;
  Histogram* h = r.histogram("h", {1.0, 2.0});
  EXPECT_EQ(h->count(), 0u);
  EXPECT_DOUBLE_EQ(h->min(), 0.0);
  EXPECT_DOUBLE_EQ(h->max(), 0.0);
  EXPECT_DOUBLE_EQ(h->quantile(0.0), 0.0);
  EXPECT_DOUBLE_EQ(h->quantile(0.5), 0.0);
  EXPECT_DOUBLE_EQ(h->quantile(1.0), 0.0);
}

TEST(Histogram, QuantileNeverExceedsObservedMax) {
  MetricsRegistry r;
  Histogram* h = r.histogram("h", size_buckets());
  for (int i = 0; i < 100; ++i) h->record(822);
  EXPECT_DOUBLE_EQ(h->quantile(0.5), 822.0);
  EXPECT_DOUBLE_EQ(h->quantile(0.99), 822.0);
}

TEST(Histogram, QuantilePicksCorrectBucket) {
  MetricsRegistry r;
  Histogram* h = r.histogram("h", {10.0, 20.0, 30.0});
  for (int i = 0; i < 90; ++i) h->record(5);
  for (int i = 0; i < 10; ++i) h->record(25);
  EXPECT_DOUBLE_EQ(h->quantile(0.5), 10.0);
  EXPECT_DOUBLE_EQ(h->quantile(0.95), 25.0);  // clamped to max
}

TEST(MetricsRegistry, SumCountersFiltersAndBaselines) {
  MetricsRegistry r;
  Counter* rr1 = r.counter("tx", Labels{{"speaker", "1"}, {"role", "rr"}});
  Counter* rr2 = r.counter("tx", Labels{{"speaker", "2"}, {"role", "rr"}});
  Counter* cl = r.counter("tx", Labels{{"speaker", "3"}, {"role", "client"}});
  rr1->inc(5);
  rr2->inc(7);
  cl->inc(100);
  EXPECT_EQ(r.sum_counters("tx"), 112u);
  EXPECT_EQ(r.sum_counters("tx", Labels{{"role", "rr"}}), 12u);
  EXPECT_EQ(r.sum_counters("tx", Labels{{"role", "client"}}), 100u);
  EXPECT_EQ(r.sum_counters("nope"), 0u);

  const CounterSnapshot base = r.counter_snapshot();
  rr1->inc(3);
  EXPECT_EQ(r.sum_counters("tx", Labels{{"role", "rr"}}, &base), 3u);
  EXPECT_EQ(r.sum_counters("tx", Labels{{"role", "client"}}, &base), 0u);
}

TEST(MetricsRegistry, BaselineTreatsLaterCellsAsZero) {
  MetricsRegistry r;
  r.counter("a")->inc(4);
  const CounterSnapshot base = r.counter_snapshot();
  Counter* later = r.counter("b");  // registered after the snapshot
  later->inc(6);
  EXPECT_EQ(r.sum_counters("b", Labels{}, &base), 6u);
  EXPECT_EQ(r.sum_counters("a", Labels{}, &base), 0u);
}

TEST(MetricsRegistry, JsonDumpContainsQuantilesAndGauges) {
  MetricsRegistry r;
  r.counter("c", Labels{{"k", "v"}})->inc(2);
  r.gauge("g")->set(3.5);
  Histogram* h = r.histogram("h", {1.0, 2.0});
  h->record(1);
  h->record(2);
  const std::string js = r.to_json();
  EXPECT_NE(js.find("\"name\":\"c\""), std::string::npos);
  EXPECT_NE(js.find("\"k\":\"v\""), std::string::npos);
  EXPECT_NE(js.find("\"p50\":"), std::string::npos);
  EXPECT_NE(js.find("\"p99\":"), std::string::npos);
  EXPECT_NE(js.find("\"gauges\""), std::string::npos);
}

TEST(MetricsRegistry, AggregateMergesSeriesSharingAName) {
  MetricsRegistry r;
  r.counter("tx", Labels{{"speaker", "1"}})->inc(5);
  r.counter("tx", Labels{{"speaker", "2"}})->inc(7);
  const std::string js = r.to_json(/*aggregate=*/true);
  EXPECT_NE(js.find("\"value\":12"), std::string::npos);
  // The aggregate form collapses the label sets.
  EXPECT_EQ(js.find("\"speaker\":\"1\""), std::string::npos);
}

TEST(MetricsRegistry, NameCountSpansKinds) {
  MetricsRegistry r;
  r.counter("a", Labels{{"s", "1"}});
  r.counter("a", Labels{{"s", "2"}});
  r.gauge("b");
  r.histogram("c", {1.0});
  EXPECT_EQ(r.name_count(), 3u);
}

}  // namespace
}  // namespace abrr::obs
