// Unit tests for the virtual-time sampler: cadence on weak scheduler
// events, refresh-before-sample ordering, quiescence transparency, and
// CSV export.
#include "obs/sampler.h"

#include <gtest/gtest.h>

#include <stdexcept>

#include "obs/metrics.h"
#include "sim/scheduler.h"
#include "sim/time.h"

namespace abrr::obs {
namespace {

TEST(Sampler, RejectsNonPositivePeriod) {
  sim::Scheduler sched;
  EXPECT_THROW(Sampler(sched, 0), std::invalid_argument);
  EXPECT_THROW(Sampler(sched, -1), std::invalid_argument);
}

TEST(Sampler, RejectsNullGauge) {
  sim::Scheduler sched;
  Sampler s{sched, sim::msec(100)};
  EXPECT_THROW(s.track("g", nullptr), std::invalid_argument);
}

TEST(Sampler, SamplesOnCadenceViaRunUntil) {
  sim::Scheduler sched;
  MetricsRegistry reg;
  Gauge* g = reg.gauge("g");
  Sampler s{sched, sim::msec(100)};
  int refreshes = 0;
  s.set_refresh([&] {
    ++refreshes;
    g->set(static_cast<double>(refreshes));
  });
  s.track("g", g);
  s.start();  // samples at t=0
  sched.run_until(sim::msec(350));
  // t = 0, 100, 200, 300.
  EXPECT_EQ(s.rows(), 4u);
  EXPECT_EQ(refreshes, 4);
  EXPECT_EQ(s.times().back(), sim::msec(300));
  // Refresh ran before each sample: values are 1, 2, 3, 4.
  EXPECT_DOUBLE_EQ(s.values(0).front(), 1.0);
  EXPECT_DOUBLE_EQ(s.values(0).back(), 4.0);
}

TEST(Sampler, DoesNotKeepQuiescenceAlive) {
  sim::Scheduler sched;
  MetricsRegistry reg;
  Gauge* g = reg.gauge("g");
  Sampler s{sched, sim::msec(10)};
  s.track("g", g);
  s.start();
  int work = 0;
  sched.schedule_at(sim::msec(25), [&] { ++work; });
  // Quiescence drains the strong event; the armed sampler tick alone
  // must not keep the queue "busy" forever.
  EXPECT_TRUE(sched.run_to_quiescence(10'000));
  EXPECT_EQ(work, 1);
  EXPECT_FALSE(sched.has_pending());
  // Ticks up to the last strong event still fired (t=0, 10, 20).
  EXPECT_EQ(s.rows(), 3u);
}

TEST(Sampler, ResumesAfterQuiescenceWhenWorkReturns) {
  sim::Scheduler sched;
  MetricsRegistry reg;
  Gauge* g = reg.gauge("g");
  Sampler s{sched, sim::msec(10)};
  s.track("g", g);
  s.start();
  sched.run_to_quiescence(10'000);
  const std::size_t rows0 = s.rows();
  sched.schedule_at(sim::msec(35), [] {});
  sched.run_to_quiescence(10'000);
  EXPECT_GT(s.rows(), rows0);
}

TEST(Sampler, TrackAfterFirstSampleThrows) {
  sim::Scheduler sched;
  MetricsRegistry reg;
  Sampler s{sched, sim::msec(10)};
  s.track("a", reg.gauge("a"));
  s.start();
  EXPECT_THROW(s.track("b", reg.gauge("b")), std::logic_error);
}

TEST(Sampler, CsvHasHeaderAndRows) {
  sim::Scheduler sched;
  MetricsRegistry reg;
  Gauge* a = reg.gauge("a");
  Gauge* b = reg.gauge("b");
  a->set(1.5);
  b->set(2);
  Sampler s{sched, sim::msec(100)};
  s.track("alpha", a);
  s.track("beta", b);
  s.start();
  const std::string csv = s.to_csv();
  EXPECT_EQ(csv.rfind("time_us,alpha,beta\n", 0), 0u);
  EXPECT_NE(csv.find("\n0,1.5,2"), std::string::npos);
}

}  // namespace
}  // namespace abrr::obs
