// Transition test for the SpeakerCounters -> registry migration: the
// registry-backed role totals (Testbed::rr_counters/client_counters)
// must equal manual sums over the per-speaker counter views, both raw
// and after a reset_counters() baseline. This pins the label wiring
// (role=rr|client per speaker) to the id-list partition the old
// CounterTotals aggregation path summed over.
#include <gtest/gtest.h>

#include "harness/testbed.h"
#include "obs/metrics.h"
#include "topo/topology.h"
#include "trace/regenerator.h"
#include "trace/workload.h"

namespace abrr {
namespace {

struct Scenario {
  topo::Topology topology;
  trace::Workload workload;
  std::vector<bgp::Ipv4Prefix> prefixes;
};

const Scenario& scenario() {
  static const Scenario* s = [] {
    sim::Rng rng{17};
    topo::TopologyParams tp;
    tp.pops = 2;
    tp.clients_per_pop = 3;
    tp.peer_ases = 3;
    tp.peering_points_per_as = 2;
    auto topology = topo::make_tier1(tp, rng);
    trace::WorkloadParams wp;
    wp.prefixes = 60;
    auto workload = trace::Workload::generate(wp, topology, rng);
    auto* out = new Scenario{std::move(topology), std::move(workload), {}};
    out->prefixes = out->workload.prefixes();
    return out;
  }();
  return *s;
}

harness::RoleTotals manual_totals(harness::Testbed& bed,
                                  const std::vector<bgp::RouterId>& ids) {
  harness::RoleTotals t;
  for (const auto id : ids) {
    const auto c = bed.speaker(id).counters();
    t.received += c.updates_received;
    t.generated += c.updates_generated;
    t.transmitted += c.updates_transmitted;
    t.bytes += c.bytes_transmitted;
  }
  t.speakers = ids.size();
  return t;
}

harness::RoleTotals manual_deltas(harness::Testbed& bed,
                                  const std::vector<bgp::RouterId>& ids) {
  harness::RoleTotals t;
  for (const auto id : ids) {
    const auto c = bed.delta_counters(id);
    t.received += c.updates_received;
    t.generated += c.updates_generated;
    t.transmitted += c.updates_transmitted;
    t.bytes += c.bytes_transmitted;
  }
  t.speakers = ids.size();
  return t;
}

void expect_equal(const harness::RoleTotals& a, const harness::RoleTotals& b) {
  EXPECT_EQ(a.received, b.received);
  EXPECT_EQ(a.generated, b.generated);
  EXPECT_EQ(a.transmitted, b.transmitted);
  EXPECT_EQ(a.bytes, b.bytes);
  EXPECT_EQ(a.speakers, b.speakers);
}

harness::Testbed make_bed(ibgp::IbgpMode mode) {
  const Scenario& s = scenario();
  harness::TestbedOptions o;
  o.mode = mode;
  o.num_aps = 2;
  o.arrs_per_ap = 2;
  o.mrai = sim::msec(500);
  o.seed = 5;
  return harness::Testbed{s.topology, o, s.prefixes};
}

void converge(harness::Testbed& bed) {
  const Scenario& s = scenario();
  trace::RouteRegenerator regen{bed.scheduler(), s.workload, bed.inject_fn()};
  regen.load_snapshot(0, sim::sec(2));
  ASSERT_TRUE(bed.run_to_quiescence());
}

TEST(CountersMigration, RegistryTotalsMatchManualSums) {
  for (const auto mode : {ibgp::IbgpMode::kAbrr, ibgp::IbgpMode::kTbrr}) {
    auto bed = make_bed(mode);
    converge(bed);
    expect_equal(bed.rr_counters(), manual_totals(bed, bed.rr_ids()));
    expect_equal(bed.client_counters(),
                 manual_totals(bed, bed.client_ids()));
    // Totals are non-trivial, not vacuously equal zeros.
    EXPECT_GT(bed.rr_counters().transmitted, 0u);
    EXPECT_GT(bed.client_counters().received, 0u);
  }
}

TEST(CountersMigration, BaselinedTotalsMatchManualDeltaSums) {
  auto bed = make_bed(ibgp::IbgpMode::kAbrr);
  converge(bed);
  bed.reset_counters();
  // Fresh activity after the baseline: a best-path change at a client.
  const auto origin = bed.client_ids().front();
  const auto& entry = scenario().workload.table().front();
  bed.speaker(origin).inject_ebgp(0x9100001,
                                  bgp::RouteBuilder{entry.prefix}
                                      .local_pref(200)
                                      .as_path({64999})
                                      .build());
  ASSERT_TRUE(bed.run_to_quiescence());
  expect_equal(bed.rr_counters(), manual_deltas(bed, bed.rr_ids()));
  expect_equal(bed.client_counters(), manual_deltas(bed, bed.client_ids()));
  EXPECT_GT(bed.rr_counters().received, 0u);
}

TEST(CountersMigration, RegistrySumMatchesPerSpeakerViews) {
  auto bed = make_bed(ibgp::IbgpMode::kAbrr);
  converge(bed);
  std::uint64_t manual = 0;
  for (const auto id : bed.all_ids()) {
    manual += bed.speaker(id).counters().updates_received;
  }
  EXPECT_EQ(bed.metrics().sum_counters("speaker.updates_received"), manual);
  // role=rr + role=client partitions the whole speaker population.
  EXPECT_EQ(
      bed.metrics().sum_counters("speaker.updates_received",
                                 obs::Labels{{"role", "rr"}}) +
          bed.metrics().sum_counters("speaker.updates_received",
                                     obs::Labels{{"role", "client"}}),
      manual);
}

}  // namespace
}  // namespace abrr
