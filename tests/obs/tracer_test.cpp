// Unit tests for the bounded ring tracer: wraparound, drop accounting,
// oldest-first iteration, and chrome://tracing serialization.
#include "obs/tracer.h"

#include <gtest/gtest.h>

#include <stdexcept>
#include <vector>

#include "sim/scheduler.h"

namespace abrr::obs {
namespace {

std::vector<std::uint64_t> details(const Tracer& t) {
  std::vector<std::uint64_t> out;
  t.for_each([&](const TraceEvent& e) { out.push_back(e.detail); });
  return out;
}

TEST(Tracer, RejectsZeroCapacity) {
  sim::Scheduler sched;
  EXPECT_THROW(Tracer(sched, 0), std::invalid_argument);
}

TEST(Tracer, RecordsBelowCapacityInOrder) {
  sim::Scheduler sched;
  Tracer t{sched, 8};
  for (std::uint64_t i = 0; i < 3; ++i) {
    t.record(TraceEventKind::kUpdateRx, 1, 2, i);
  }
  EXPECT_EQ(t.size(), 3u);
  EXPECT_EQ(t.recorded(), 3u);
  EXPECT_EQ(t.dropped(), 0u);
  EXPECT_EQ(details(t), (std::vector<std::uint64_t>{0, 1, 2}));
}

TEST(Tracer, WraparoundKeepsNewestAndCountsDropped) {
  sim::Scheduler sched;
  Tracer t{sched, 4};
  for (std::uint64_t i = 0; i < 10; ++i) {
    t.record(TraceEventKind::kDecision, 7, 0, i);
  }
  EXPECT_EQ(t.size(), 4u);
  EXPECT_EQ(t.recorded(), 10u);
  EXPECT_EQ(t.dropped(), 6u);
  // Oldest-first iteration over the surviving tail.
  EXPECT_EQ(details(t), (std::vector<std::uint64_t>{6, 7, 8, 9}));
}

TEST(Tracer, EventsCarrySimTime) {
  sim::Scheduler sched;
  Tracer t{sched, 4};
  t.record(TraceEventKind::kSessionUp, 1, 2);
  sched.schedule_at(sim::msec(5), [&] {
    t.record(TraceEventKind::kSessionDown, 1, 2);
  });
  sched.run_to_quiescence();
  std::vector<sim::Time> at;
  t.for_each([&](const TraceEvent& e) { at.push_back(e.at); });
  ASSERT_EQ(at.size(), 2u);
  EXPECT_EQ(at[0], 0);
  EXPECT_EQ(at[1], sim::msec(5));
}

TEST(Tracer, ChromeJsonIsDeterministicAndWellFormed) {
  sim::Scheduler sched;
  Tracer a{sched, 16};
  Tracer b{sched, 16};
  for (Tracer* t : {&a, &b}) {
    t->record(TraceEventKind::kFaultInject, 3, 4, 1);
    t->record(TraceEventKind::kUpdateTx, 3, 4, 12);
  }
  EXPECT_EQ(a.to_chrome_json(), b.to_chrome_json());
  const std::string js = a.to_chrome_json();
  EXPECT_NE(js.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(js.find("\"name\":\"fault_inject\""), std::string::npos);
  EXPECT_NE(js.find("\"ph\":\"i\""), std::string::npos);
  EXPECT_NE(js.find("\"pid\":3"), std::string::npos);
}

TEST(Tracer, ClearResetsRetainedButNotClock) {
  sim::Scheduler sched;
  Tracer t{sched, 4};
  t.record(TraceEventKind::kCrash, 9);
  t.clear();
  EXPECT_EQ(t.size(), 0u);
  t.record(TraceEventKind::kRestart, 9);
  EXPECT_EQ(details(t).size(), 1u);
}

}  // namespace
}  // namespace abrr::obs
