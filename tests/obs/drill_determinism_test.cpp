// End-to-end determinism of the observability stack under a seeded
// chaos drill: two same-seed runs must serialize bit-identical
// artifacts (metrics JSON, gauge CSV, chrome trace), and turning
// observability ON must not perturb the simulation itself (identical
// RIB fingerprints with obs on and off).
#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "fault/injector.h"
#include "fault/recovery.h"
#include "fault/schedule.h"
#include "harness/testbed.h"
#include "topo/topology.h"
#include "trace/regenerator.h"
#include "trace/workload.h"

namespace abrr {
namespace {

struct Drill {
  std::unique_ptr<harness::Testbed> bed;
  std::string metrics_json;
  std::string series_csv;
  std::string trace_json;
};

Drill run_drill(bool obs_enabled) {
  sim::Rng rng{23};
  topo::TopologyParams tp;
  tp.pops = 2;
  tp.clients_per_pop = 2;
  tp.peer_ases = 3;
  tp.peering_points_per_as = 2;
  const auto topology = topo::make_tier1(tp, rng);
  trace::WorkloadParams wp;
  wp.prefixes = 40;
  const auto workload = trace::Workload::generate(wp, topology, rng);
  const auto prefixes = workload.prefixes();

  harness::TestbedOptions o;
  o.mode = ibgp::IbgpMode::kAbrr;
  o.num_aps = 2;
  o.arrs_per_ap = 2;
  o.mrai = sim::msec(500);
  o.seed = 5;
  o.hold_time = sim::sec(2);
  o.obs.enabled = obs_enabled;
  o.obs.sample_period = sim::msec(250);

  Drill d;
  d.bed = std::make_unique<harness::Testbed>(topology, o, prefixes);
  trace::RouteRegenerator regen{d.bed->scheduler(), workload,
                                d.bed->inject_fn()};
  regen.load_snapshot(0, sim::sec(2));
  d.bed->run_until(sim::sec(10));

  fault::ChaosParams chaos;
  chaos.events = 6;
  chaos.start = d.bed->scheduler().now() + sim::sec(1);
  chaos.horizon = d.bed->scheduler().now() + sim::sec(15);
  sim::Rng chaos_rng{99};
  const auto sessions = d.bed->network().sessions();
  const auto schedule = fault::FaultSchedule::chaos(
      chaos, d.bed->all_ids(), sessions, chaos_rng);
  fault::FaultInjector injector{*d.bed, schedule};
  injector.set_resync(fault::make_workload_resync(*d.bed, regen));
  injector.arm();
  d.bed->run_until(chaos.horizon + sim::sec(20));

  if (obs_enabled) {
    d.metrics_json = d.bed->metrics().to_json(/*aggregate=*/false);
    d.series_csv = d.bed->sampler()->to_csv();
    d.trace_json = d.bed->tracer()->to_chrome_json();
  }
  return d;
}

TEST(DrillDeterminism, SameSeedYieldsBitIdenticalArtifacts) {
  const Drill a = run_drill(/*obs_enabled=*/true);
  const Drill b = run_drill(/*obs_enabled=*/true);
  EXPECT_EQ(a.metrics_json, b.metrics_json);
  EXPECT_EQ(a.series_csv, b.series_csv);
  EXPECT_EQ(a.trace_json, b.trace_json);
  // The drill actually exercised the stack.
  EXPECT_GT(a.bed->tracer()->recorded(), 0u);
  EXPECT_GT(a.bed->sampler()->rows(), 10u);
  EXPECT_GE(a.bed->metrics().name_count(), 12u);
}

TEST(DrillDeterminism, ObservabilityDoesNotPerturbTheSimulation) {
  const Drill on = run_drill(/*obs_enabled=*/true);
  const Drill off = run_drill(/*obs_enabled=*/false);
  EXPECT_EQ(fault::rib_fingerprint(*on.bed), fault::rib_fingerprint(*off.bed));
  EXPECT_EQ(on.bed->scheduler().now(), off.bed->scheduler().now());
  // Registry counters run either way (they are plain arithmetic); the
  // event-driven machinery exists only when enabled.
  EXPECT_EQ(off.bed->tracer(), nullptr);
  EXPECT_EQ(off.bed->sampler(), nullptr);
  for (const char* name :
       {"speaker.updates_received", "speaker.updates_transmitted",
        "speaker.bytes_transmitted", "net.messages", "net.dropped"}) {
    EXPECT_EQ(on.bed->metrics().sum_counters(name),
              off.bed->metrics().sum_counters(name))
        << name;
  }
}

}  // namespace
}  // namespace abrr
