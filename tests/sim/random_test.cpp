#include "sim/random.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <numeric>
#include <set>

namespace abrr::sim {
namespace {

TEST(Rng, DeterministicPerSeed) {
  Rng a{42}, b{42}, c{43};
  bool all_equal = true;
  bool any_diff_c = false;
  for (int i = 0; i < 100; ++i) {
    const auto va = a(), vb = b(), vc = c();
    all_equal = all_equal && va == vb;
    any_diff_c = any_diff_c || va != vc;
  }
  EXPECT_TRUE(all_equal);
  EXPECT_TRUE(any_diff_c);
}

TEST(Rng, UniformIntRespectsBoundsAndCoversRange) {
  Rng rng{1};
  std::set<std::int64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    const auto v = rng.uniform_int(3, 7);
    ASSERT_GE(v, 3);
    ASSERT_LE(v, 7);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 5u);
}

TEST(Rng, UniformIntSingleton) {
  Rng rng{1};
  EXPECT_EQ(rng.uniform_int(5, 5), 5);
  EXPECT_THROW(rng.uniform_int(6, 5), std::invalid_argument);
}

TEST(Rng, Uniform01InRangeAndRoughlyUniform) {
  Rng rng{7};
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    const double v = rng.uniform01();
    ASSERT_GE(v, 0.0);
    ASSERT_LT(v, 1.0);
    sum += v;
  }
  EXPECT_NEAR(sum / 10000, 0.5, 0.02);
}

TEST(Rng, ChanceEdges) {
  Rng rng{3};
  EXPECT_FALSE(rng.chance(0.0));
  EXPECT_TRUE(rng.chance(1.0));
  int hits = 0;
  for (int i = 0; i < 10000; ++i) hits += rng.chance(0.25);
  EXPECT_NEAR(hits / 10000.0, 0.25, 0.02);
}

TEST(Rng, ExponentialHasRequestedMean) {
  Rng rng{11};
  double sum = 0;
  for (int i = 0; i < 20000; ++i) sum += rng.exponential(4.0);
  EXPECT_NEAR(sum / 20000, 4.0, 0.15);
  EXPECT_THROW(rng.exponential(0.0), std::invalid_argument);
}

TEST(Rng, ZipfSkewsTowardLowRanks) {
  Rng rng{13};
  std::vector<int> counts(10, 0);
  for (int i = 0; i < 20000; ++i) ++counts[rng.zipf(10, 1.0)];
  EXPECT_GT(counts[0], counts[4]);
  EXPECT_GT(counts[4], counts[9]);
  // s = 0 degenerates to uniform.
  std::vector<int> flat(10, 0);
  for (int i = 0; i < 20000; ++i) ++flat[rng.zipf(10, 0.0)];
  EXPECT_NEAR(flat[0], 2000, 300);
  EXPECT_NEAR(flat[9], 2000, 300);
}

TEST(Rng, SampleIndicesDistinctAndInRange) {
  Rng rng{17};
  const auto picked = rng.sample_indices(100, 30);
  EXPECT_EQ(picked.size(), 30u);
  std::set<std::size_t> unique(picked.begin(), picked.end());
  EXPECT_EQ(unique.size(), 30u);
  for (const auto i : picked) EXPECT_LT(i, 100u);
  EXPECT_THROW(rng.sample_indices(5, 6), std::invalid_argument);
}

TEST(Rng, ShufflePermutes) {
  Rng rng{19};
  std::vector<int> v(50);
  std::iota(v.begin(), v.end(), 0);
  auto w = v;
  rng.shuffle(std::span<int>{w});
  EXPECT_NE(v, w);  // astronomically unlikely to be identity
  std::sort(w.begin(), w.end());
  EXPECT_EQ(v, w);
}

TEST(Rng, SplitDecorrelates) {
  Rng a{23};
  Rng b = a.split();
  bool differ = false;
  for (int i = 0; i < 10 && !differ; ++i) differ = a() != b();
  EXPECT_TRUE(differ);
}

}  // namespace
}  // namespace abrr::sim
