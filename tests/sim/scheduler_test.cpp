#include "sim/scheduler.h"

#include <gtest/gtest.h>

#include <functional>
#include <vector>

namespace abrr::sim {
namespace {

TEST(Scheduler, StartsAtTimeZero) {
  Scheduler s;
  EXPECT_EQ(s.now(), 0);
  EXPECT_FALSE(s.has_pending());
  EXPECT_EQ(s.events_executed(), 0u);
}

TEST(Scheduler, RunsEventsInTimeOrder) {
  Scheduler s;
  std::vector<int> order;
  s.schedule_at(30, [&] { order.push_back(3); });
  s.schedule_at(10, [&] { order.push_back(1); });
  s.schedule_at(20, [&] { order.push_back(2); });
  EXPECT_TRUE(s.run_to_quiescence());
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(s.now(), 30);
}

TEST(Scheduler, TiesBreakByInsertionOrder) {
  Scheduler s;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) {
    s.schedule_at(7, [&order, i] { order.push_back(i); });
  }
  s.run_to_quiescence();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(Scheduler, ScheduleAfterIsRelative) {
  Scheduler s;
  Time fired = -1;
  s.schedule_at(100, [&] {
    s.schedule_after(50, [&] { fired = s.now(); });
  });
  s.run_to_quiescence();
  EXPECT_EQ(fired, 150);
}

TEST(Scheduler, PastDeadlinesClampToNow) {
  Scheduler s;
  Time fired = -1;
  s.schedule_at(100, [&] {
    s.schedule_at(10, [&] { fired = s.now(); });  // in the past
  });
  s.run_to_quiescence();
  EXPECT_EQ(fired, 100);
}

TEST(Scheduler, CancelPreventsExecution) {
  Scheduler s;
  bool ran = false;
  const EventId id = s.schedule_at(10, [&] { ran = true; });
  s.cancel(id);
  EXPECT_TRUE(s.run_to_quiescence());
  EXPECT_FALSE(ran);
}

TEST(Scheduler, CancelUnknownIdIsNoop) {
  Scheduler s;
  s.cancel(12345);
  EXPECT_TRUE(s.run_to_quiescence());
}

TEST(Scheduler, RunUntilStopsAtDeadline) {
  Scheduler s;
  std::vector<Time> fired;
  for (Time t : {10, 20, 30, 40}) {
    s.schedule_at(t, [&fired, &s] { fired.push_back(s.now()); });
  }
  EXPECT_EQ(s.run_until(25), 2u);
  EXPECT_EQ(fired, (std::vector<Time>{10, 20}));
  EXPECT_EQ(s.now(), 25);
  EXPECT_TRUE(s.has_pending());
}

TEST(Scheduler, RunUntilAdvancesClockWhenIdle) {
  Scheduler s;
  s.run_until(500);
  EXPECT_EQ(s.now(), 500);
}

TEST(Scheduler, CallbackCanCancelLaterEvent) {
  Scheduler s;
  bool ran = false;
  EventId later = 0;
  later = s.schedule_at(20, [&] { ran = true; });
  s.schedule_at(10, [&] { s.cancel(later); });
  s.run_to_quiescence();
  EXPECT_FALSE(ran);
}

TEST(Scheduler, MaxEventsBoundsExecution) {
  Scheduler s;
  // A self-perpetuating event chain never drains...
  std::function<void()> tick = [&] { s.schedule_after(1, tick); };
  s.schedule_after(1, tick);
  // ...so run_to_quiescence must give up after max_events.
  EXPECT_FALSE(s.run_to_quiescence(1000));
  EXPECT_EQ(s.events_executed(), 1000u);
}

TEST(Scheduler, CancellingFiredOrUnknownIdsDoesNotCorruptHasPending) {
  Scheduler s;
  // Regression: cancel() used to record every id it was handed, even
  // ids that already fired or never existed. The stale tombstones grew
  // without bound and, because has_pending() compared queue size
  // against the tombstone count, enough of them made a scheduler with
  // live events claim it had none.
  const EventId fired = s.schedule_after(1, [] {});
  s.run_to_quiescence();
  for (int i = 0; i < 100; ++i) {
    s.cancel(fired);            // already fired
    s.cancel(EventId{9'000'000} + static_cast<EventId>(i));  // never existed
  }
  EXPECT_FALSE(s.has_pending());

  bool ran = false;
  s.schedule_after(1, [&] { ran = true; });
  EXPECT_TRUE(s.has_pending());  // the bogus cancels must not mask it
  s.run_to_quiescence();
  EXPECT_TRUE(ran);
  EXPECT_FALSE(s.has_pending());
}

TEST(Scheduler, DoubleCancelCountsOnce) {
  Scheduler s;
  const EventId a = s.schedule_after(1, [] {});
  bool ran = false;
  s.schedule_after(2, [&] { ran = true; });
  s.cancel(a);
  s.cancel(a);  // second cancel of the same id must be a no-op
  EXPECT_TRUE(s.has_pending());
  s.run_to_quiescence();
  EXPECT_TRUE(ran);
}

TEST(Scheduler, RejectsEmptyCallback) {
  Scheduler s;
  EXPECT_THROW(s.schedule_at(1, {}), std::invalid_argument);
  EXPECT_THROW(s.schedule_after(-1, [] {}), std::invalid_argument);
}

TEST(Scheduler, WeakEventsDoNotBlockQuiescence) {
  Scheduler s;
  bool weak_ran = false;
  s.schedule_weak_at(5, [&] { weak_ran = true; });
  EXPECT_FALSE(s.has_pending());       // only weak work pending
  EXPECT_EQ(s.pending_count(), 1u);
  EXPECT_EQ(s.weak_pending_count(), 1u);
  EXPECT_TRUE(s.run_to_quiescence());  // returns without firing it
  EXPECT_FALSE(weak_ran);
  EXPECT_EQ(s.now(), 0);
}

TEST(Scheduler, WeakEventsFireWhileStrongWorkExists) {
  Scheduler s;
  std::vector<int> order;
  s.schedule_weak_at(5, [&] { order.push_back(1); });
  s.schedule_at(10, [&] { order.push_back(2); });
  EXPECT_TRUE(s.has_pending());
  s.run_to_quiescence();
  // The weak event at t=5 precedes the strong one at t=10, so it fires
  // on the way; quiescence stops once only weak events remain.
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
}

TEST(Scheduler, RunUntilFiresWeakEventsUpToDeadline) {
  Scheduler s;
  int ticks = 0;
  std::function<void()> tick = [&] {
    ++ticks;
    s.schedule_weak_after(10, tick);
  };
  s.schedule_weak_after(10, tick);
  s.run_until(35);
  EXPECT_EQ(ticks, 3);  // t = 10, 20, 30
  EXPECT_EQ(s.now(), 35);
}

TEST(Scheduler, CancelledWeakEventLeavesAccountingClean) {
  Scheduler s;
  const EventId id = s.schedule_weak_at(5, [] {});
  s.cancel(id);
  EXPECT_EQ(s.pending_count(), 0u);
  EXPECT_EQ(s.weak_pending_count(), 0u);
  EXPECT_FALSE(s.has_pending());
  // A strong event after a cancelled weak one runs normally.
  bool ran = false;
  s.schedule_at(6, [&] { ran = true; });
  EXPECT_TRUE(s.run_to_quiescence());
  EXPECT_TRUE(ran);
}

TEST(Scheduler, WeakEventResumesWhenStrongWorkReturns) {
  Scheduler s;
  int weak = 0;
  std::function<void()> tick = [&] {
    ++weak;
    s.schedule_weak_after(10, tick);
  };
  s.schedule_weak_after(10, tick);
  s.run_to_quiescence();
  EXPECT_EQ(weak, 0);
  // New strong work past the weak deadline pulls the weak event along.
  s.schedule_at(25, [] {});
  s.run_to_quiescence();
  EXPECT_EQ(weak, 2);  // t = 10, 20
}

TEST(TimeHelpers, Conversions) {
  EXPECT_EQ(msec(1), 1000);
  EXPECT_EQ(sec(1), 1'000'000);
  EXPECT_EQ(sec_f(0.5), 500'000);
  EXPECT_DOUBLE_EQ(to_seconds(sec(2)), 2.0);
  EXPECT_EQ(kDay, 24 * kHour);
}

}  // namespace
}  // namespace abrr::sim
