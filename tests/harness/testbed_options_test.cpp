// Testbed wiring details that the figure benches rely on.
#include <gtest/gtest.h>

#include "harness/testbed.h"

namespace abrr::harness {
namespace {

using bgp::Ipv4Prefix;

class TestbedOptionsTest : public ::testing::Test {
 protected:
  TestbedOptionsTest() {
    sim::Rng rng{3};
    topo::TopologyParams tp;
    tp.pops = 3;
    tp.clients_per_pop = 3;
    tp.peer_ases = 4;
    tp.peering_points_per_as = 2;
    topology = topo::make_tier1(tp, rng);
    for (std::uint32_t i = 0; i < 64; ++i) {
      prefixes.push_back(Ipv4Prefix{i << 25, 16});
    }
  }
  topo::Topology topology;
  std::vector<Ipv4Prefix> prefixes;
};

TEST_F(TestbedOptionsTest, AbrrCreatesExtraArrNodesWhenPoolIsShort) {
  TestbedOptions o;
  o.mode = ibgp::IbgpMode::kAbrr;
  o.num_aps = 8;  // needs 16 ARRs; the topology has only 6 boxes
  Testbed bed{topology, o, prefixes};
  EXPECT_EQ(bed.rr_ids().size(), 16u);
  // Every ARR id resolves to a speaker managing exactly one AP.
  std::vector<int> per_ap(8, 0);
  for (const auto id : bed.rr_ids()) {
    const auto ap = bed.arr_ap(id);
    ASSERT_GE(ap, 0);
    ASSERT_LT(ap, 8);
    ++per_ap[static_cast<std::size_t>(ap)];
  }
  for (const int n : per_ap) EXPECT_EQ(n, 2);
}

TEST_F(TestbedOptionsTest, TbrrUsesTopologyReflectorBoxes) {
  TestbedOptions o;
  o.mode = ibgp::IbgpMode::kTbrr;
  Testbed bed{topology, o, prefixes};
  EXPECT_EQ(bed.rr_ids().size(), topology.reflectors.size());
  // Clients peer with exactly their cluster's two TRRs.
  for (const auto id : bed.client_ids()) {
    EXPECT_EQ(bed.speaker(id).peer_count(), 2u);
  }
}

TEST_F(TestbedOptionsTest, FullMeshHasNoRrsAndAllPairs) {
  TestbedOptions o;
  o.mode = ibgp::IbgpMode::kFullMesh;
  Testbed bed{topology, o, prefixes};
  EXPECT_TRUE(bed.rr_ids().empty());
  const std::size_t n = bed.client_ids().size();
  EXPECT_EQ(bed.session_count(), n * (n - 1) / 2);
}

TEST_F(TestbedOptionsTest, BalancedPartitionIsUsed) {
  TestbedOptions o;
  o.mode = ibgp::IbgpMode::kAbrr;
  o.num_aps = 4;
  o.balanced_aps = true;
  Testbed bed{topology, o, prefixes};
  const auto* partition = bed.partition();
  ASSERT_NE(partition, nullptr);
  // Balanced on our synthetic uniform prefixes: each AP holds ~16.
  for (ibgp::ApId ap = 0; ap < 4; ++ap) {
    const auto n = partition->prefixes_in(ap, prefixes);
    EXPECT_NEAR(static_cast<double>(n), 16.0, 2.0);
  }
}

TEST_F(TestbedOptionsTest, DualWiresBothPlanes) {
  TestbedOptions o;
  o.mode = ibgp::IbgpMode::kDual;
  o.num_aps = 2;
  Testbed bed{topology, o, prefixes};
  // Clients peer with 2 TRRs + 4 ARRs.
  for (const auto id : bed.client_ids()) {
    EXPECT_EQ(bed.speaker(id).peer_count(), 6u);
  }
  // RR set = the topology's 6 TRR boxes + 4 freshly created ARRs.
  EXPECT_EQ(bed.rr_ids().size(), topology.reflectors.size() + 4u);
}

TEST_F(TestbedOptionsTest, InjectFnRoutesToTheRightSpeaker) {
  TestbedOptions o;
  o.mode = ibgp::IbgpMode::kFullMesh;
  o.mrai = 0;
  o.proc_delay = sim::msec(1);
  Testbed bed{topology, o, prefixes};
  const auto inject = bed.inject_fn();
  const auto client = bed.client_ids().front();
  inject(client, 0x80000001, prefixes[0],
         bgp::RouteBuilder{prefixes[0]}.as_path({7018}).build());
  ASSERT_TRUE(bed.run_to_quiescence());
  EXPECT_NE(bed.speaker(client).loc_rib().best(prefixes[0]), nullptr);
  inject(client, 0x80000001, prefixes[0], std::nullopt);
  ASSERT_TRUE(bed.run_to_quiescence());
  EXPECT_EQ(bed.speaker(client).loc_rib().best(prefixes[0]), nullptr);
}

}  // namespace
}  // namespace abrr::harness
