// Property sweep (parameterized): for every architecture and a spread of
// random seeds / AP counts, the invariants the paper's design rests on
// must hold on randomly generated Tier-1 workloads:
//   P1 convergence (the event queue drains),
//   P2 full reachability (every client has every prefix),
//   P3 ABRR == full-mesh route selection, exactly,
//   P4 loop-free forwarding for ABRR and full-mesh,
//   P5 zero hot-potato violation for ABRR and full-mesh,
//   P6 ARR Adj-RIB-Out covers only its own partition.
#include <gtest/gtest.h>

#include <memory>

#include "harness/testbed.h"
#include "trace/regenerator.h"
#include "verify/efficiency.h"
#include "verify/equivalence.h"
#include "verify/forwarding.h"

namespace abrr::harness {
namespace {

struct SweepCase {
  std::uint64_t seed;
  std::size_t num_aps;
  bool balanced;
};

class PropertySweep : public ::testing::TestWithParam<SweepCase> {
 protected:
  PropertySweep() {
    const auto param = GetParam();
    sim::Rng rng{param.seed};
    topo::TopologyParams tp;
    tp.pops = 4;
    tp.clients_per_pop = 4;
    tp.peer_ases = 6;
    tp.peering_points_per_as = 3;
    topology = topo::make_tier1(tp, rng);
    trace::WorkloadParams wp;
    wp.prefixes = 150;
    workload = trace::Workload::generate(wp, topology, rng);
    prefixes = workload.prefixes();
  }

  std::unique_ptr<Testbed> build(ibgp::IbgpMode mode) {
    const auto param = GetParam();
    TestbedOptions o;
    o.mode = mode;
    o.num_aps = param.num_aps;
    o.balanced_aps = param.balanced;
    o.mrai = 0;
    o.proc_delay = sim::msec(1);
    o.latency_jitter = sim::msec(3);
    o.seed = param.seed;
    auto bed = std::make_unique<Testbed>(topology, o, prefixes);
    trace::RouteRegenerator regen{bed->scheduler(), workload,
                                  bed->inject_fn()};
    regen.load_snapshot(0, sim::sec(3));
    converged = bed->run_to_quiescence(20'000'000);
    return bed;
  }

  topo::Topology topology;
  trace::Workload workload;
  std::vector<bgp::Ipv4Prefix> prefixes;
  bool converged = false;
};

TEST_P(PropertySweep, AbrrInvariants) {
  auto abrr = build(ibgp::IbgpMode::kAbrr);
  ASSERT_TRUE(converged);  // P1
  for (const auto id : abrr->client_ids()) {   // P2
    for (const auto& p : prefixes) {
      ASSERT_NE(abrr->speaker(id).loc_rib().best(p), nullptr)
          << id << " " << p.to_string();
    }
  }
  auto mesh = build(ibgp::IbgpMode::kFullMesh);
  ASSERT_TRUE(converged);
  const auto eq = verify::compare_loc_ribs(*abrr, *mesh, prefixes);  // P3
  EXPECT_EQ(eq.divergence_count, 0u);

  for (Testbed* bed : {abrr.get(), mesh.get()}) {  // P4 + P5
    verify::ForwardingChecker checker{*bed};
    const auto audit = checker.audit(prefixes);
    EXPECT_EQ(audit.loops, 0u);
    EXPECT_EQ(audit.delivered, audit.checked);
    const auto eff = verify::audit_efficiency(*bed, workload);
    EXPECT_EQ(eff.inefficient, 0u);
    EXPECT_EQ(eff.off_as_level_set, 0u);
  }

  // P6: an ARR's Adj-RIB-Out stays inside its partition.
  const auto* partition = abrr->partition();
  ASSERT_NE(partition, nullptr);
  for (const auto rr : abrr->rr_ids()) {
    const auto ap = abrr->arr_ap(rr);
    const auto* out =
        abrr->speaker(rr).out_group(ibgp::Speaker::arr_group(ap));
    if (out == nullptr) continue;
    out->for_each([&](const bgp::Ipv4Prefix& p, const auto&) {
      const auto aps = partition->aps_of(p);
      EXPECT_TRUE(std::find(aps.begin(), aps.end(), ap) != aps.end())
          << "ARR " << rr << " leaked " << p.to_string();
    });
  }
}

TEST_P(PropertySweep, ArrSetsEqualGroundTruthBestAsLevel) {
  // §2.2: in steady state each ARR's reflected set for a prefix is
  // exactly the AS-wide best-AS-level set (what full-mesh would have
  // distributed), independent of where the ARR sits.
  auto abrr = build(ibgp::IbgpMode::kAbrr);
  ASSERT_TRUE(converged);
  const auto* partition = abrr->partition();
  ASSERT_NE(partition, nullptr);

  for (const auto& entry : workload.table()) {
    const auto truth = workload.best_as_level_for(
        entry, {}, /*include_customers=*/true);
    std::vector<bgp::RouterId> expected;
    for (const auto& r : truth) expected.push_back(r.egress());
    std::sort(expected.begin(), expected.end());

    for (const auto rr : abrr->rr_ids()) {
      const auto ap = abrr->arr_ap(rr);
      const auto aps = partition->aps_of(entry.prefix);
      if (std::find(aps.begin(), aps.end(), ap) == aps.end()) continue;
      const auto* out =
          abrr->speaker(rr).out_group(ibgp::Speaker::arr_group(ap));
      ASSERT_NE(out, nullptr);
      const auto* set = out->get(entry.prefix);
      ASSERT_NE(set, nullptr) << entry.prefix.to_string();
      std::vector<bgp::RouterId> got;
      for (const auto& r : *set) got.push_back(r.egress());
      std::sort(got.begin(), got.end());
      ASSERT_EQ(got, expected)
          << "ARR " << rr << " " << entry.prefix.to_string();
    }
  }
}

TEST_P(PropertySweep, TbrrConvergesOnEngineeredTopology) {
  // The PoP-aligned topology with uniform peer MEDs is the engineered
  // regime ISPs rely on: TBRR must converge and deliver everything
  // (efficiency may lag; that is ABRR's selling point, not a bug here).
  auto tbrr = build(ibgp::IbgpMode::kTbrr);
  ASSERT_TRUE(converged);
  for (const auto id : tbrr->client_ids()) {
    for (const auto& p : prefixes) {
      ASSERT_NE(tbrr->speaker(id).loc_rib().best(p), nullptr);
    }
  }
  verify::ForwardingChecker checker{*tbrr};
  const auto audit = checker.audit(prefixes);
  EXPECT_EQ(audit.checked, audit.delivered + audit.loops);
}

TEST_P(PropertySweep, DeterminismAcrossRebuilds) {
  auto a = build(ibgp::IbgpMode::kAbrr);
  ASSERT_TRUE(converged);
  auto b = build(ibgp::IbgpMode::kAbrr);
  ASSERT_TRUE(converged);
  const auto eq = verify::compare_loc_ribs(*a, *b, prefixes);
  EXPECT_EQ(eq.divergence_count, 0u);
  EXPECT_EQ(a->rr_counters().transmitted, b->rr_counters().transmitted);
}

INSTANTIATE_TEST_SUITE_P(
    SeedsAndPartitions, PropertySweep,
    ::testing::Values(SweepCase{101, 1, false}, SweepCase{202, 2, false},
                      SweepCase{303, 4, false}, SweepCase{404, 4, true},
                      SweepCase{505, 8, false}, SweepCase{606, 8, true},
                      SweepCase{707, 16, true}),
    [](const ::testing::TestParamInfo<SweepCase>& info) {
      return "seed" + std::to_string(info.param.seed) + "_aps" +
             std::to_string(info.param.num_aps) +
             (info.param.balanced ? "_balanced" : "_uniform");
    });

}  // namespace
}  // namespace abrr::harness
