// IGP dynamics: hot-potato shifts after metric changes and link
// failures, under ABRR vs full-mesh (they must stay equivalent).
#include <gtest/gtest.h>

#include "harness/testbed.h"
#include "verify/equivalence.h"
#include "verify/forwarding.h"

namespace abrr::harness {
namespace {

using bgp::Ipv4Prefix;
using bgp::RouteBuilder;

const Ipv4Prefix kPfx = Ipv4Prefix::parse("10.0.0.0/8");

// Line: E1 --2-- M --2-- E2, with a client M between two equal exits.
topo::Topology line_topology() {
  topo::Topology t;
  t.params.pops = 1;
  t.clients = {
      {1, topo::RouterRole::kPeering, 0, 0},
      {2, topo::RouterRole::kAccess, 0, 0},
      {3, topo::RouterRole::kPeering, 0, 0},
  };
  t.reflectors = {{11, 0, 0}, {12, 0, 0}};
  t.graph.add_link(1, 2, 2);
  t.graph.add_link(2, 3, 3);  // E2 slightly farther
  t.graph.add_link(11, 2, 1);
  t.graph.add_link(12, 2, 1);
  return t;
}

TestbedOptions options(ibgp::IbgpMode mode) {
  TestbedOptions o;
  o.mode = mode;
  o.num_aps = 1;
  o.mrai = 0;
  o.proc_delay = sim::msec(1);
  o.latency_jitter = 0;
  return o;
}

void inject(Testbed& bed) {
  bed.speaker(1).inject_ebgp(
      0x80000001, RouteBuilder{kPfx}.as_path({7018, 1}).build());
  bed.speaker(3).inject_ebgp(
      0x80000002, RouteBuilder{kPfx}.as_path({1299, 1}).build());
}

TEST(IgpEvent, MetricChangeShiftsHotPotato) {
  const std::vector<Ipv4Prefix> prefixes{kPfx};
  Testbed bed{line_topology(), options(ibgp::IbgpMode::kAbrr), prefixes};
  inject(bed);
  ASSERT_TRUE(bed.run_to_quiescence());
  ASSERT_EQ(bed.speaker(2).loc_rib().best(kPfx)->egress(), 1u);

  // The 1-2 link degrades: exit 3 becomes closer.
  bed.igp_event([](igp::Graph& g) { ASSERT_TRUE(g.set_metric(1, 2, 10)); });
  ASSERT_TRUE(bed.run_to_quiescence());
  EXPECT_EQ(bed.speaker(2).loc_rib().best(kPfx)->egress(), 3u);
}

TEST(IgpEvent, LinkFailureReroutes) {
  topo::Topology t = line_topology();
  t.graph.add_link(1, 3, 10);  // backup path so E1 stays reachable
  const std::vector<Ipv4Prefix> prefixes0{kPfx};
  Testbed bed{t, options(ibgp::IbgpMode::kAbrr), prefixes0};
  inject(bed);
  ASSERT_TRUE(bed.run_to_quiescence());
  ASSERT_EQ(bed.speaker(2).loc_rib().best(kPfx)->egress(), 1u);

  bed.igp_event([](igp::Graph& g) { ASSERT_TRUE(g.remove_link(1, 2)); });
  ASSERT_TRUE(bed.run_to_quiescence());
  // E1 now costs 2-3-1 = 13; exit 3 costs 3: hot-potato flips.
  EXPECT_EQ(bed.speaker(2).loc_rib().best(kPfx)->egress(), 3u);
  // Forwarding stays clean after the event.
  verify::ForwardingChecker checker{bed};
  const std::vector<Ipv4Prefix> prefixes{kPfx};
  EXPECT_TRUE(checker.audit(prefixes).clean());
}

TEST(IgpEvent, AbrrTracksFullMeshThroughIgpChurn) {
  const std::vector<Ipv4Prefix> prefixes{kPfx};
  Testbed abrr{line_topology(), options(ibgp::IbgpMode::kAbrr), prefixes};
  Testbed mesh{line_topology(), options(ibgp::IbgpMode::kFullMesh), prefixes};
  inject(abrr);
  inject(mesh);
  ASSERT_TRUE(abrr.run_to_quiescence());
  ASSERT_TRUE(mesh.run_to_quiescence());

  for (const igp::Metric m : {10, 1, 7, 2}) {
    const auto change = [m](igp::Graph& g) { g.set_metric(1, 2, m); };
    abrr.igp_event(change);
    mesh.igp_event(change);
    ASSERT_TRUE(abrr.run_to_quiescence());
    ASSERT_TRUE(mesh.run_to_quiescence());
    const auto eq = verify::compare_loc_ribs(abrr, mesh, prefixes);
    EXPECT_TRUE(eq.equivalent()) << "metric " << m;
  }
}

TEST(IgpEvent, UnreachableEgressDropsRoute) {
  const std::vector<Ipv4Prefix> prefixes{kPfx};
  Testbed bed{line_topology(), options(ibgp::IbgpMode::kAbrr), prefixes};
  bed.speaker(1).inject_ebgp(
      0x80000001, RouteBuilder{kPfx}.as_path({7018, 1}).build());
  ASSERT_TRUE(bed.run_to_quiescence());
  ASSERT_NE(bed.speaker(2).loc_rib().best(kPfx), nullptr);

  // Partition E1 entirely (no backup): its next hop becomes
  // unreachable and the route unusable at M.
  bed.igp_event([](igp::Graph& g) { g.remove_link(1, 2); });
  ASSERT_TRUE(bed.run_to_quiescence());
  EXPECT_EQ(bed.speaker(2).loc_rib().best(kPfx), nullptr);
}

}  // namespace
}  // namespace abrr::harness
