// Testbed::speaker() error reporting and reset_counters() idempotence.
#include <gtest/gtest.h>

#include <stdexcept>
#include <string>

#include "harness/testbed.h"
#include "trace/regenerator.h"

namespace abrr::harness {
namespace {

class SpeakerLookup : public ::testing::Test {
 protected:
  SpeakerLookup() {
    sim::Rng rng{31};
    topo::TopologyParams tp;
    tp.pops = 3;
    tp.clients_per_pop = 2;
    tp.peer_ases = 4;
    tp.peering_points_per_as = 2;
    topology = topo::make_tier1(tp, rng);
    trace::WorkloadParams wp;
    wp.prefixes = 60;
    workload = trace::Workload::generate(wp, topology, rng);
    prefixes = workload.prefixes();
  }

  topo::Topology topology;
  trace::Workload workload;
  std::vector<bgp::Ipv4Prefix> prefixes;
};

TEST_F(SpeakerLookup, UnknownIdThrowsDescriptively) {
  TestbedOptions o;
  o.mode = ibgp::IbgpMode::kAbrr;
  o.num_aps = 2;
  Testbed bed{topology, o, prefixes};
  constexpr RouterId kBogus = 9999;
  ASSERT_FALSE(bed.has_speaker(kBogus));
  try {
    bed.speaker(kBogus);
    FAIL() << "expected std::out_of_range";
  } catch (const std::out_of_range& e) {
    const std::string what = e.what();
    // The message names the offending id and the bed's speaker count —
    // not .at()'s bare "map::at".
    EXPECT_NE(what.find("9999"), std::string::npos) << what;
    EXPECT_NE(what.find(std::to_string(bed.all_ids().size())),
              std::string::npos)
        << what;
  }
  // const overload shares the path
  const Testbed& cbed = bed;
  EXPECT_THROW(cbed.speaker(kBogus), std::out_of_range);
  // and known ids still resolve
  EXPECT_NO_THROW(bed.speaker(bed.all_ids().front()));
}

TEST_F(SpeakerLookup, ResetCountersTwiceIsIdempotent) {
  TestbedOptions o;
  o.mode = ibgp::IbgpMode::kTbrr;
  Testbed bed{topology, o, prefixes};
  trace::RouteRegenerator regen{bed.scheduler(), workload, bed.inject_fn()};
  regen.load_snapshot(0, sim::sec(2));
  ASSERT_TRUE(bed.run_to_quiescence());

  const RouterId id = bed.all_ids().front();
  ASSERT_GT(bed.client_counters().received + bed.rr_counters().received, 0u);

  bed.reset_counters();
  const auto after_first = bed.delta_counters(id);
  const auto rr_first = bed.rr_counters();
  EXPECT_EQ(after_first.updates_received, 0u);
  EXPECT_EQ(rr_first.received, 0u);
  EXPECT_EQ(rr_first.generated, 0u);

  // A second reset with no traffic in between must be a no-op, not an
  // underflow or a stale-baseline swap.
  bed.reset_counters();
  const auto after_second = bed.delta_counters(id);
  const auto rr_second = bed.rr_counters();
  EXPECT_EQ(after_second.updates_received, 0u);
  EXPECT_EQ(after_second.routes_received, 0u);
  EXPECT_EQ(rr_second.received, 0u);
  EXPECT_EQ(rr_second.generated, 0u);
  EXPECT_EQ(rr_second.transmitted, 0u);
}

}  // namespace
}  // namespace abrr::harness
