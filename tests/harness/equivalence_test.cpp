// Storage-equivalence: the dense prefix-indexed, attribute-interned fast
// path must be observably identical to the map-fallback path — same
// counters, same RIB sizes, same Loc-RIB contents, same event count —
// across every iBGP architecture. This is the guard that keeps the
// perf work from silently changing the paper's metrics.
#include <algorithm>
#include <cstdint>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "bgp/attrs_intern.h"
#include "harness/testbed.h"
#include "trace/regenerator.h"
#include "trace/update_trace.h"
#include "trace/workload.h"

namespace abrr::harness {
namespace {

using bgp::Ipv4Prefix;
using bgp::RouterId;

struct Scenario {
  topo::Topology topology;
  trace::Workload workload;
  trace::UpdateTrace trace;
  std::vector<Ipv4Prefix> prefixes;
};

const Scenario& scenario() {
  static const Scenario* s = [] {
    sim::Rng rng{11};
    topo::TopologyParams tp;
    tp.pops = 3;
    tp.clients_per_pop = 3;
    tp.peer_ases = 5;
    tp.peering_points_per_as = 3;
    auto topology = topo::make_tier1(tp, rng);

    trace::WorkloadParams wp;
    wp.prefixes = 120;
    auto workload = trace::Workload::generate(wp, topology, rng);

    trace::TraceParams trp;
    trp.duration = sim::sec(30);
    trp.events_per_second = 4.0;
    auto trace = trace::UpdateTrace::generate(trp, workload, rng);

    auto* out = new Scenario{std::move(topology), std::move(workload),
                             std::move(trace), {}};
    out->prefixes = out->workload.prefixes();
    return out;
  }();
  return *s;
}

/// One speaker's observable state, rendered to a comparable string.
std::string fingerprint(const Testbed& bed, const ibgp::Speaker& sp) {
  (void)bed;
  std::ostringstream os;
  const auto& c = sp.counters();
  os << "recv=" << c.updates_received << '/' << c.routes_received
     << " gen=" << c.updates_generated << '/' << c.generated_to_clients << '/'
     << c.generated_to_rrs << " tx=" << c.updates_transmitted << '/'
     << c.routes_transmitted << '/' << c.bytes_transmitted
     << " loops=" << c.loops_suppressed << " misdir=" << c.misdirected
     << " ebgp=" << c.ebgp_updates_sent << " best=" << c.best_changes
     << " ribin=" << sp.rib_in_size() << " ribout=" << sp.rib_out_size()
     << " locrib=" << sp.loc_rib().size() << '\n';

  // Loc-RIB contents, order-normalized.
  std::vector<std::string> rows;
  sp.loc_rib().for_each([&](const bgp::Route& r) {
    std::ostringstream row;
    row << r.prefix.to_string() << " from=" << r.learned_from
        << " pid=" << r.path_id << " via=" << static_cast<int>(r.via)
        << " nh=" << r.attrs->next_hop << " lp=" << r.attrs->local_pref
        << " med=" << (r.attrs->med ? static_cast<std::int64_t>(*r.attrs->med)
                                    : -1)
        << " aspath=";
    for (const auto asn : r.attrs->as_path.asns()) row << asn << ',';
    row << " orig="
        << (r.attrs->originator_id
                ? static_cast<std::int64_t>(*r.attrs->originator_id)
                : -1)
        << " cl=";
    for (const auto c2 : r.attrs->cluster_list) row << c2 << ',';
    rows.push_back(row.str());
  });
  std::sort(rows.begin(), rows.end());
  for (const auto& row : rows) os << row << '\n';
  return os.str();
}

/// Runs the scenario under `mode`, returns (per-speaker fingerprints,
/// executed event count).
std::pair<std::vector<std::string>, std::uint64_t> run_mode(
    ibgp::IbgpMode mode, bool fast_path) {
  const Scenario& s = scenario();
  TestbedOptions o;
  o.mode = mode;
  o.num_aps = 4;
  o.mrai = sim::sec(2);
  o.seed = 21;
  o.use_prefix_index = fast_path;

  std::unique_ptr<bgp::ScopedInterningDisabled> no_intern;
  if (!fast_path) no_intern = std::make_unique<bgp::ScopedInterningDisabled>();

  Testbed bed{s.topology, o, s.prefixes};
  trace::RouteRegenerator regen{bed.scheduler(), s.workload, bed.inject_fn()};
  regen.load_snapshot(0, sim::sec(10));
  EXPECT_TRUE(bed.run_to_quiescence());
  regen.play(s.trace, bed.scheduler().now() + sim::sec(1));
  EXPECT_TRUE(bed.run_to_quiescence());

  std::vector<std::string> prints;
  std::vector<RouterId> ids = bed.all_ids();
  std::sort(ids.begin(), ids.end());
  for (const RouterId id : ids) {
    prints.push_back(fingerprint(bed, bed.speaker(id)));
  }
  return {std::move(prints), bed.scheduler().events_executed()};
}

class EquivalenceTest : public ::testing::TestWithParam<ibgp::IbgpMode> {};

TEST_P(EquivalenceTest, DenseIndexedInternedMatchesMapFallback) {
  const auto [fast, fast_events] = run_mode(GetParam(), /*fast_path=*/true);
  const auto [slow, slow_events] = run_mode(GetParam(), /*fast_path=*/false);
  ASSERT_EQ(fast.size(), slow.size());
  for (std::size_t i = 0; i < fast.size(); ++i) {
    EXPECT_EQ(fast[i], slow[i]) << "speaker #" << i << " diverged";
  }
  // Bit-identity extends to the event schedule itself.
  EXPECT_EQ(fast_events, slow_events);
}

INSTANTIATE_TEST_SUITE_P(AllModes, EquivalenceTest,
                         ::testing::Values(ibgp::IbgpMode::kFullMesh,
                                           ibgp::IbgpMode::kTbrr,
                                           ibgp::IbgpMode::kAbrr,
                                           ibgp::IbgpMode::kDual),
                         [](const auto& info) {
                           switch (info.param) {
                             case ibgp::IbgpMode::kFullMesh:
                               return "FullMesh";
                             case ibgp::IbgpMode::kTbrr:
                               return "Tbrr";
                             case ibgp::IbgpMode::kAbrr:
                               return "Abrr";
                             case ibgp::IbgpMode::kDual:
                               return "Dual";
                           }
                           return "Unknown";
                         });

}  // namespace
}  // namespace abrr::harness
