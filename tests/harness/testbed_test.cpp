// End-to-end integration on a Tier-1-like AS: the paper's headline
// properties hold on a realistic (scaled) testbed, not just on gadgets.
#include "harness/testbed.h"

#include <gtest/gtest.h>

#include "trace/regenerator.h"
#include "verify/efficiency.h"
#include "verify/equivalence.h"
#include "verify/forwarding.h"
#include "verify/oscillation.h"

namespace abrr::harness {
namespace {

class TestbedIntegration : public ::testing::Test {
 protected:
  TestbedIntegration() {
    sim::Rng rng{31};
    topo::TopologyParams tp;
    tp.pops = 5;
    tp.clients_per_pop = 4;
    tp.peer_ases = 8;
    tp.peering_points_per_as = 3;
    topology = topo::make_tier1(tp, rng);
    trace::WorkloadParams wp;
    wp.prefixes = 300;
    workload = trace::Workload::generate(wp, topology, rng);
    prefixes = workload.prefixes();
  }

  TestbedOptions options(ibgp::IbgpMode mode, std::size_t aps = 4) const {
    TestbedOptions o;
    o.mode = mode;
    o.num_aps = aps;
    o.mrai = 0;
    o.proc_delay = sim::msec(1);
    o.latency_jitter = sim::msec(2);
    return o;
  }

  std::unique_ptr<Testbed> build_and_load(const TestbedOptions& o) {
    auto bed = std::make_unique<Testbed>(topology, o, prefixes);
    trace::RouteRegenerator regen{bed->scheduler(), workload,
                                  bed->inject_fn()};
    regen.load_snapshot(0, sim::sec(5));
    if (!bed->run_to_quiescence()) return nullptr;
    return bed;
  }

  topo::Topology topology;
  trace::Workload workload;
  std::vector<bgp::Ipv4Prefix> prefixes;
};

TEST_F(TestbedIntegration, AllThreeArchitecturesConverge) {
  for (const auto mode : {ibgp::IbgpMode::kFullMesh, ibgp::IbgpMode::kTbrr,
                          ibgp::IbgpMode::kAbrr}) {
    auto bed = build_and_load(options(mode));
    ASSERT_NE(bed, nullptr) << static_cast<int>(mode);
    // Every client has a route for every prefix.
    for (const bgp::RouterId id : bed->client_ids()) {
      for (const auto& p : prefixes) {
        ASSERT_NE(bed->speaker(id).loc_rib().best(p), nullptr);
      }
    }
  }
}

TEST_F(TestbedIntegration, AbrrIsExactlyEquivalentToFullMesh) {
  auto abrr = build_and_load(options(ibgp::IbgpMode::kAbrr));
  auto mesh = build_and_load(options(ibgp::IbgpMode::kFullMesh));
  ASSERT_NE(abrr, nullptr);
  ASSERT_NE(mesh, nullptr);
  const auto eq = verify::compare_loc_ribs(*abrr, *mesh, prefixes);
  EXPECT_EQ(eq.divergence_count, 0u)
      << "first example: router "
      << (eq.divergences.empty() ? 0 : eq.divergences.front().router);
  EXPECT_EQ(eq.compared, prefixes.size() * abrr->client_ids().size());
}

TEST_F(TestbedIntegration, AbrrForwardingIsCleanAndEfficient) {
  auto abrr = build_and_load(options(ibgp::IbgpMode::kAbrr));
  ASSERT_NE(abrr, nullptr);
  verify::ForwardingChecker checker{*abrr};
  const auto audit = checker.audit(prefixes);
  EXPECT_EQ(audit.loops, 0u);
  EXPECT_EQ(audit.delivered, audit.checked);
  const auto eff = verify::audit_efficiency(*abrr, workload);
  EXPECT_EQ(eff.inefficient, 0u);
  EXPECT_EQ(eff.off_as_level_set, 0u);
}

TEST_F(TestbedIntegration, WellEngineeredTbrrConvergesButMayLoseEfficiency) {
  // On a PoP-aligned topology (intra < inter metrics) TBRR converges --
  // the engineering ISPs rely on. Efficiency can still be lost relative
  // to the hot-potato optimum.
  auto tbrr = build_and_load(options(ibgp::IbgpMode::kTbrr));
  ASSERT_NE(tbrr, nullptr);
  const auto eff_tbrr = verify::audit_efficiency(*tbrr, workload);
  auto abrr = build_and_load(options(ibgp::IbgpMode::kAbrr));
  const auto eff_abrr = verify::audit_efficiency(*abrr, workload);
  EXPECT_GE(eff_tbrr.total_extra_metric, eff_abrr.total_extra_metric);
  EXPECT_EQ(eff_abrr.total_extra_metric, 0.0);
}

TEST_F(TestbedIntegration, ArrRibsAreSmallerThanTrrRibs) {
  // Figure 6's headline at testbed scale.
  auto tbrr = build_and_load(options(ibgp::IbgpMode::kTbrr));
  auto abrr = build_and_load(options(ibgp::IbgpMode::kAbrr, 8));
  ASSERT_NE(tbrr, nullptr);
  ASSERT_NE(abrr, nullptr);
  EXPECT_LT(abrr->rr_rib_in().avg, tbrr->rr_rib_in().avg);
  EXPECT_LT(abrr->rr_rib_out().avg, tbrr->rr_rib_out().avg);
}

TEST_F(TestbedIntegration, ArrSessionCountsMatchTheDesign) {
  auto abrr = build_and_load(options(ibgp::IbgpMode::kAbrr, 4));
  ASSERT_NE(abrr, nullptr);
  // Every ARR peers with every client and with ARRs of other APs (§3.3).
  const std::size_t n_clients = abrr->client_ids().size();
  const std::size_t n_arrs = 4 * 2;
  for (const bgp::RouterId rr : abrr->rr_ids()) {
    EXPECT_EQ(abrr->speaker(rr).peer_count(), n_clients + n_arrs - 2);
  }
  // Clients peer with all ARRs only.
  for (const bgp::RouterId c : abrr->client_ids()) {
    EXPECT_EQ(abrr->speaker(c).peer_count(), n_arrs);
  }
}

TEST_F(TestbedIntegration, NoOscillationOnTheRealisticTestbed) {
  auto bed = std::make_unique<Testbed>(
      topology, options(ibgp::IbgpMode::kAbrr), prefixes);
  verify::OscillationMonitor monitor{30};
  for (const bgp::RouterId id : bed->all_ids()) {
    monitor.attach(bed->speaker(id));
  }
  trace::RouteRegenerator regen{bed->scheduler(), workload, bed->inject_fn()};
  regen.load_snapshot(0, sim::sec(5));
  ASSERT_TRUE(bed->run_to_quiescence());
  EXPECT_FALSE(monitor.oscillating());
}

TEST_F(TestbedIntegration, CounterResetIsolatesPhases) {
  auto bed = build_and_load(options(ibgp::IbgpMode::kAbrr));
  ASSERT_NE(bed, nullptr);
  const auto during_load = bed->rr_counters();
  EXPECT_GT(during_load.received, 0u);
  bed->reset_counters();
  const auto after_reset = bed->rr_counters();
  EXPECT_EQ(after_reset.received, 0u);
  EXPECT_EQ(after_reset.generated, 0u);
}

TEST_F(TestbedIntegration, DeterministicAcrossRuns) {
  auto a = build_and_load(options(ibgp::IbgpMode::kAbrr));
  auto b = build_and_load(options(ibgp::IbgpMode::kAbrr));
  ASSERT_NE(a, nullptr);
  ASSERT_NE(b, nullptr);
  const auto eq = verify::compare_loc_ribs(*a, *b, prefixes);
  EXPECT_EQ(eq.divergence_count, 0u);
  EXPECT_EQ(a->rr_counters().received, b->rr_counters().received);
  EXPECT_EQ(a->rr_counters().transmitted, b->rr_counters().transmitted);
}

}  // namespace
}  // namespace abrr::harness
