// TCP front-end integration tests against a live RouteService:
// socket replies must be byte-identical to in-process lookup_batch
// results at the same snapshot version; concurrent clients across
// snapshot flips each see monotone versions; malformed frames get one
// ERROR frame and a clean close without leaking connection slots; and
// a client that pipelines without draining trips the outbox bound.
#include "frontend/server.h"

#include <gtest/gtest.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstring>
#include <memory>
#include <thread>
#include <vector>

#include "frontend/client.h"
#include "runner/scenario.h"

namespace abrr::frontend {
namespace {

using namespace std::chrono_literals;

/// Same tiny serving world the serve suite uses: 3 PoPs with churn and
/// frequent publishes, so tests observe several snapshot flips.
runner::ScenarioSpec frontend_tiny() {
  runner::ScenarioSpec spec;
  spec.name = "frontend_tiny";
  spec.mode = ibgp::IbgpMode::kAbrr;
  spec.topology.pops = 3;
  spec.topology.clients_per_pop = 2;
  spec.topology.peer_ases = 4;
  spec.topology.points_per_as = 2;
  spec.workload.prefixes = 48;
  spec.workload.snapshot_seconds = 5.0;
  spec.abrr.num_aps = 2;
  spec.serve.enabled = true;
  spec.serve.churn_seconds = 2.0;
  spec.serve.churn_events_per_second = 40.0;
  spec.serve.chaos_events = 2;
  spec.serve.publish_period_seconds = 0.25;
  return spec;
}

void wait_until_stable(serve::RouteService& service) {
  while (!service.done()) std::this_thread::sleep_for(2ms);
  const auto deadline = std::chrono::steady_clock::now() + 30s;
  while (!service.horizon_published() &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(2ms);
  }
  ASSERT_TRUE(service.horizon_published());
}

/// Hit-biased probe plan over the service-wide stable views.
std::vector<serve::LookupRequest> probe_plan(
    serve::RouteService& service, std::size_t n, std::uint32_t salt = 0) {
  serve::RouteService::Reader reader{service};
  std::shared_ptr<const bgp::LpmIndex> index;
  std::vector<bgp::RouterId> routers;
  {
    const serve::RouteService::Reader::PinGuard pin{reader};
    index = pin->index;
    routers = pin->router_ids;
  }
  std::vector<serve::LookupRequest> reqs;
  std::uint32_t probe = 0x9e3779b9u + salt;
  for (std::size_t i = 0; i < n; ++i) {
    probe = probe * 2654435761u + 12345;
    const bgp::Ipv4Prefix& p = index->prefix_at(probe % index->size());
    reqs.push_back(
        serve::LookupRequest{routers[i % routers.size()],
                             p.first() | (probe & (p.last() - p.first()))});
  }
  return reqs;
}

/// Raw-socket helper for the malformed-input tests: the Client refuses
/// to send garbage, so these speak TCP directly.
class RawConn {
 public:
  explicit RawConn(std::uint16_t port) {
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd_ < 0) return;
    timeval tv{2, 0};
    ::setsockopt(fd_, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    if (::connect(fd_, reinterpret_cast<const sockaddr*>(&addr),
                  sizeof(addr)) < 0) {
      ::close(fd_);
      fd_ = -1;
    }
  }
  ~RawConn() {
    if (fd_ >= 0) ::close(fd_);
  }

  bool ok() const { return fd_ >= 0; }

  void send_bytes(const std::vector<std::uint8_t>& bytes) {
    std::size_t off = 0;
    while (off < bytes.size()) {
      const ssize_t n = ::send(fd_, bytes.data() + off, bytes.size() - off,
                               MSG_NOSIGNAL);
      if (n <= 0) return;  // server may already have dropped us
      off += static_cast<std::size_t>(n);
    }
  }

  /// Reads until EOF or timeout; returns everything received.
  std::vector<std::uint8_t> read_to_eof() {
    std::vector<std::uint8_t> got;
    std::uint8_t chunk[4096];
    for (;;) {
      const ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
      if (n <= 0) break;
      got.insert(got.end(), chunk, chunk + n);
    }
    return got;
  }

 private:
  int fd_ = -1;
};

TEST(FrontendServer, SocketRepliesMatchInProcessLookupsByteForByte) {
  serve::RouteService service{frontend_tiny(), 21};
  service.start();
  wait_until_stable(service);

  Server server{service};
  server.start();

  const auto reqs = probe_plan(service, 96);

  // In-process ground truth at the (stable) horizon snapshot.
  serve::RouteService::Reader reader{service};
  std::vector<serve::LookupResponse> expect(reqs.size());
  const serve::BatchResult res = reader.lookup_batch(reqs, expect);
  ASSERT_GT(res.hits, 0u);

  Client client;
  client.connect(server.port());
  const HelloAck ack = client.hello();
  EXPECT_EQ(ack.snapshot_version, res.snapshot_version);
  EXPECT_EQ(ack.fingerprint, res.fingerprint);
  EXPECT_GE(ack.routers, 1u);
  EXPECT_GE(ack.prefixes, 1u);

  const Client::Reply reply = client.lookup(reqs);
  EXPECT_EQ(reply.snapshot_version, res.snapshot_version);
  EXPECT_EQ(reply.fingerprint, res.fingerprint);
  ASSERT_EQ(reply.responses.size(), expect.size());
  for (std::size_t i = 0; i < expect.size(); ++i) {
    EXPECT_EQ(reply.responses[i], expect[i]) << "request " << i;
  }

  const StatsReply stats = client.stats();
  EXPECT_EQ(stats.snapshot_version, res.snapshot_version);
  EXPECT_EQ(stats.lookups_served, reqs.size());
  EXPECT_EQ(stats.batches_served, 1u);
  EXPECT_EQ(stats.connections_accepted, 1u);

  client.close();
  server.stop();
  service.stop();
}

TEST(FrontendServer, ConcurrentClientsSeeMonotoneVersionsAcrossFlips) {
  serve::RouteService service{frontend_tiny(), 22};
  Server server{service};
  server.start();
  service.start();

  constexpr int kClients = 3;
  std::atomic<std::uint64_t> flips_seen{0};
  std::vector<std::thread> threads;
  for (int c = 0; c < kClients; ++c) {
    threads.emplace_back([&, c] {
      // Each client pins its own probe plan (the stable views exist
      // from version 1 on).
      const auto reqs =
          probe_plan(service, 32, static_cast<std::uint32_t>(c) * 7919u);
      Client client;
      client.connect(server.port(), /*timeout_ms=*/10000);
      std::uint64_t last_version = 0;
      std::uint64_t versions_observed = 0;
      // do-while: even if the writer finished its whole horizon before
      // this thread got scheduled (1-CPU hosts), every client performs
      // at least one batch against the final snapshot.
      do {
        const Client::Reply reply = client.lookup(reqs);
        // One pin per batch: the version a connection observes can only
        // move forward, never backward.
        ASSERT_GE(reply.snapshot_version, last_version);
        if (reply.snapshot_version > last_version) ++versions_observed;
        last_version = reply.snapshot_version;
        ASSERT_EQ(reply.responses.size(), reqs.size());
        for (const serve::LookupResponse& r : reply.responses) {
          ASSERT_EQ(r.snapshot_version, reply.snapshot_version);
          ASSERT_EQ(r.fingerprint, reply.fingerprint);
        }
      } while (!service.done());
      flips_seen.fetch_add(versions_observed);
    });
  }
  for (std::thread& t : threads) t.join();
  // Every client saw at least the first published snapshot.
  EXPECT_GE(flips_seen.load(), static_cast<std::uint64_t>(kClients));

  const ServerStats stats = server.stats();
  EXPECT_EQ(stats.accepted, static_cast<std::uint64_t>(kClients));
  EXPECT_EQ(stats.dropped_proto, 0u);
  EXPECT_EQ(stats.dropped_slow, 0u);
  EXPECT_GT(stats.batches, 0u);

  server.stop();
  service.stop();
}

TEST(FrontendServer, MalformedFramesGetErrorCloseAndLeakNoSlots) {
  serve::RouteService service{frontend_tiny(), 23};
  service.start();
  wait_until_stable(service);

  ServerOptions opt;
  opt.max_connections = 4;  // small cap so a leaked slot would wedge us
  Server server{service, opt};
  server.start();

  const std::vector<std::vector<std::uint8_t>> attacks = {
      {0xde, 0xad, 0xbe, 0xef, 1, 1, 0, 0, 0, 0, 0, 0},  // bad magic
      {0x41, 0x42, 0x52, 0x51, 9, 1, 0, 0, 0, 0, 0, 0},  // bad version
      {0x41, 0x42, 0x52, 0x51, 1, 0x7F, 0, 0, 0, 0, 0, 0},  // bad type
      {0x41, 0x42, 0x52, 0x51, 1, 1, 0, 0, 0xFF, 0xFF, 0xFF, 0xFF},  // huge
      {0x41, 0x42, 0x52, 0x51, 1, 2, 0, 0, 0, 0, 0, 0},  // reply-only type
  };
  // More rounds than connection slots: if a dropped connection leaked
  // its slot, the later rounds could not connect.
  for (int round = 0; round < 3; ++round) {
    for (const auto& attack : attacks) {
      RawConn raw{server.port()};
      ASSERT_TRUE(raw.ok()) << "round " << round << ": slot leak?";
      raw.send_bytes(attack);
      const std::vector<std::uint8_t> got = raw.read_to_eof();
      // One well-formed ERROR frame, then EOF.
      Frame frame;
      std::size_t consumed = 0;
      ProtoError err;
      ASSERT_EQ(decode_frame(got, frame, consumed, err), DecodeStatus::kFrame);
      EXPECT_EQ(frame.header.type, FrameType::kError);
      WireError werr;
      EXPECT_FALSE(decode_error(frame.payload, werr));
      EXPECT_GT(werr.code, 0u);
      EXPECT_EQ(consumed, got.size()) << "bytes after the ERROR frame";
    }
  }

  // Truncated garbage (never a full header) must also free its slot on
  // client close, without any ERROR reply.
  for (int i = 0; i < 6; ++i) {
    RawConn raw{server.port()};
    ASSERT_TRUE(raw.ok());
    raw.send_bytes({0x41, 0x42});
  }

  // The front-end still serves a well-behaved client afterwards. Wait
  // until the loop has disposed of every connection above — `active`
  // alone is not enough: on a loaded host the 6 garbage connects can
  // still sit unaccepted in the listen backlog (active == 0 but slots
  // about to fill), and a fresh client queued behind them would be
  // rejected_full against a wall of already-dead sockets. Every
  // connect above ends as accepted or rejected_full, so the drain is
  // observable.
  const auto deadline = std::chrono::steady_clock::now() + 10s;
  const std::uint64_t kConnects = 15 + 6;
  while (std::chrono::steady_clock::now() < deadline) {
    const ServerStats s = server.stats();
    if (s.accepted + s.rejected_full >= kConnects && s.active == 0) break;
    std::this_thread::sleep_for(2ms);
  }
  EXPECT_EQ(server.stats().active, 0u);

  const auto reqs = probe_plan(service, 16);
  Client client;
  client.connect(server.port());
  const Client::Reply reply = client.lookup(reqs);
  EXPECT_GE(reply.snapshot_version, 1u);
  EXPECT_EQ(reply.responses.size(), reqs.size());

  const ServerStats stats = server.stats();
  EXPECT_EQ(stats.dropped_proto, 15u);  // 3 rounds x 5 attacks
  EXPECT_EQ(stats.active, 1u);

  client.close();
  server.stop();
  service.stop();
}

TEST(FrontendServer, SlowClientTripsOutboxBoundAndIsDropped) {
  serve::RouteService service{frontend_tiny(), 24};
  service.start();
  wait_until_stable(service);

  ServerOptions opt;
  // Two replies fit, the third must trip the bound.
  opt.max_outbox_bytes = 2 * lookup_reply_frame_size(512) + 64;
  Server server{service, opt};
  server.start();

  const auto reqs = probe_plan(service, 512);
  // Pipeline lookups without ever reading: replies pile up in the
  // outbox (the kernel socket buffers absorb some, the outbox bound
  // caps the rest) until the server drops the connection.
  Client client;
  client.connect(server.port(), /*timeout_ms=*/10000);
  bool dropped = false;
  try {
    for (int i = 0; i < 4096 && !dropped; ++i) {
      client.send_lookup(reqs);
      dropped = server.stats().dropped_slow > 0;
    }
  } catch (const std::runtime_error&) {
    dropped = true;  // send failed: the server already closed on us
  }
  const auto deadline = std::chrono::steady_clock::now() + 10s;
  while (server.stats().dropped_slow == 0 &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(2ms);
  }
  EXPECT_GT(server.stats().dropped_slow, 0u);

  // The slot is freed and a draining client still gets full service.
  Client fresh;
  fresh.connect(server.port());
  const Client::Reply reply = fresh.lookup(reqs);
  EXPECT_EQ(reply.responses.size(), reqs.size());

  fresh.close();
  client.close();
  server.stop();
  service.stop();
}

}  // namespace
}  // namespace abrr::frontend
