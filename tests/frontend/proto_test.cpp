// ABRR-Q codec contract tests: every frame type round-trips exactly;
// truncated buffers report kNeedMore (a stream decoder must never
// confuse "short read" with "garbage"); malformed headers and typed
// payloads fail with the right structured error; and a deterministic
// corpus-mutation loop (the tests/wire fallback-fuzzer pattern) checks
// the never-crash contract on hostile byte soup.
#include "frontend/proto.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <random>
#include <vector>

namespace abrr::frontend {
namespace {

std::vector<serve::LookupRequest> sample_requests(std::size_t n) {
  std::vector<serve::LookupRequest> reqs;
  std::uint32_t probe = 0x9e3779b9u;
  for (std::size_t i = 0; i < n; ++i) {
    probe = probe * 2654435761u + 12345;
    reqs.push_back(serve::LookupRequest{probe % 64, probe ^ 0x0A000000u});
  }
  return reqs;
}

std::vector<serve::LookupResponse> sample_responses(std::size_t n,
                                                    std::uint64_t version,
                                                    std::uint64_t fp) {
  std::vector<serve::LookupResponse> resps;
  std::uint32_t probe = 0xdeadbeefu;
  for (std::size_t i = 0; i < n; ++i) {
    probe = probe * 2654435761u + 12345;
    serve::LookupResponse r;
    r.snapshot_version = version;
    r.fingerprint = fp;
    r.hit = static_cast<std::uint8_t>(i % 2);
    if (r.hit) {
      r.attrs_hash = (static_cast<std::uint64_t>(probe) << 32) | i;
      r.prefix = probe & 0xFFFFFF00u;
      r.prefix_len = static_cast<std::uint8_t>(8 + probe % 25);
      r.next_hop = probe ^ 0xC0A80000u;
      r.learned_from = probe % 48;
      r.path_id = probe % 7;
    }
    resps.push_back(r);
  }
  return resps;
}

/// Decodes exactly one frame from `buf`, asserting success.
Frame must_decode(const std::vector<std::uint8_t>& buf,
                  std::size_t* consumed_out = nullptr) {
  Frame frame;
  std::size_t consumed = 0;
  ProtoError err;
  const DecodeStatus st = decode_frame(buf, frame, consumed, err);
  EXPECT_EQ(st, DecodeStatus::kFrame) << err.to_string();
  EXPECT_EQ(consumed, kHeaderSize + frame.header.payload_len);
  if (consumed_out != nullptr) *consumed_out = consumed;
  return frame;
}

TEST(Proto, HelloRoundTrip) {
  std::vector<std::uint8_t> buf;
  append_hello(buf, 42);
  const Frame frame = must_decode(buf);
  EXPECT_EQ(frame.header.type, FrameType::kHello);
  EXPECT_EQ(frame.header.seq, 42u);
  EXPECT_TRUE(frame.payload.empty());
}

TEST(Proto, HelloAckRoundTrip) {
  const HelloAck ack{0x1122334455667788ull, 0xA5A5A5A5'5A5A5A5Aull, 48, 4096};
  std::vector<std::uint8_t> buf;
  append_hello_ack(buf, 7, ack);
  const Frame frame = must_decode(buf);
  ASSERT_EQ(frame.header.type, FrameType::kHelloAck);
  HelloAck got;
  ASSERT_FALSE(decode_hello_ack(frame.payload, got));
  EXPECT_EQ(got, ack);
}

TEST(Proto, StatsRoundTrip) {
  std::vector<std::uint8_t> buf;
  append_stats(buf, 3);
  Frame frame = must_decode(buf);
  EXPECT_EQ(frame.header.type, FrameType::kStats);
  EXPECT_TRUE(frame.payload.empty());

  const StatsReply stats{9, 0xFEEDull, 12, 100000, 625, 17, 2};
  buf.clear();
  append_stats_reply(buf, 3, stats);
  frame = must_decode(buf);
  ASSERT_EQ(frame.header.type, FrameType::kStatsReply);
  StatsReply got;
  ASSERT_FALSE(decode_stats_reply(frame.payload, got));
  EXPECT_EQ(got, stats);
}

TEST(Proto, LookupBatchRoundTrip) {
  const auto reqs = sample_requests(257);
  std::vector<std::uint8_t> buf;
  append_lookup_batch(buf, 999, reqs);
  const Frame frame = must_decode(buf);
  ASSERT_EQ(frame.header.type, FrameType::kLookupBatch);
  EXPECT_EQ(frame.header.seq, 999u);
  std::vector<serve::LookupRequest> got;
  ASSERT_FALSE(decode_lookup_batch(frame.payload, got));
  EXPECT_EQ(got, reqs);
}

TEST(Proto, LookupReplyRoundTripIncludingMisses) {
  constexpr std::uint64_t kVersion = 31;
  constexpr std::uint64_t kFp = 0x0123456789ABCDEFull;
  const auto resps = sample_responses(64, kVersion, kFp);
  std::vector<std::uint8_t> buf;
  append_lookup_reply(buf, 5, kVersion, kFp, resps);
  EXPECT_EQ(buf.size(), lookup_reply_frame_size(resps.size()));
  const Frame frame = must_decode(buf);
  ASSERT_EQ(frame.header.type, FrameType::kLookupReply);
  LookupReplyInfo info;
  std::vector<serve::LookupResponse> got;
  ASSERT_FALSE(decode_lookup_reply(frame.payload, info, got));
  EXPECT_EQ(info.snapshot_version, kVersion);
  EXPECT_EQ(info.fingerprint, kFp);
  EXPECT_EQ(info.count, resps.size());
  // Byte-identical round trip: the wire encoding re-expands the frame's
  // version/fingerprint into every response, misses included, so
  // operator== against the in-process responses holds.
  EXPECT_EQ(got, resps);
}

TEST(Proto, ErrorRoundTrip) {
  std::vector<std::uint8_t> buf;
  append_error(buf, 11, ProtoErrorCode::kOversizedBatch, "count 99999");
  const Frame frame = must_decode(buf);
  ASSERT_EQ(frame.header.type, FrameType::kError);
  WireError got;
  ASSERT_FALSE(decode_error(frame.payload, got));
  EXPECT_EQ(got.code,
            static_cast<std::uint16_t>(ProtoErrorCode::kOversizedBatch));
  EXPECT_EQ(got.detail, "count 99999");
}

TEST(Proto, TruncatedPrefixesNeedMoreAtEveryLength) {
  std::vector<std::uint8_t> buf;
  append_lookup_batch(buf, 1, sample_requests(3));
  for (std::size_t len = 0; len < buf.size(); ++len) {
    Frame frame;
    std::size_t consumed = 0;
    ProtoError err;
    const std::span<const std::uint8_t> prefix{buf.data(), len};
    EXPECT_EQ(decode_frame(prefix, frame, consumed, err),
              DecodeStatus::kNeedMore)
        << "prefix length " << len;
  }
  // The full buffer then parses, consuming everything.
  std::size_t consumed = 0;
  must_decode(buf, &consumed);
  EXPECT_EQ(consumed, buf.size());
}

TEST(Proto, RejectsBadHeaderFields) {
  std::vector<std::uint8_t> good;
  append_hello(good, 1);

  {  // bad magic fails as soon as 4 bytes are present
    auto buf = good;
    buf[0] ^= 0x80;
    Frame frame;
    std::size_t consumed = 0;
    ProtoError err;
    EXPECT_EQ(decode_frame(std::span{buf.data(), 4u}, frame, consumed, err),
              DecodeStatus::kError);
    EXPECT_EQ(err.code, ProtoErrorCode::kBadMagic);
  }
  {  // wrong version
    auto buf = good;
    buf[4] = kProtoVersion + 1;
    Frame frame;
    std::size_t consumed = 0;
    ProtoError err;
    EXPECT_EQ(decode_frame(buf, frame, consumed, err), DecodeStatus::kError);
    EXPECT_EQ(err.code, ProtoErrorCode::kBadVersion);
  }
  {  // unknown frame type
    auto buf = good;
    buf[5] = 0x7F;
    Frame frame;
    std::size_t consumed = 0;
    ProtoError err;
    EXPECT_EQ(decode_frame(buf, frame, consumed, err), DecodeStatus::kError);
    EXPECT_EQ(err.code, ProtoErrorCode::kBadType);
  }
  {  // payload_len over kMaxPayload is rejected from the header alone —
     // no buffering of an attacker-sized body
    auto buf = good;
    buf[8] = 0xFF;
    buf[9] = 0xFF;
    buf[10] = 0xFF;
    buf[11] = 0xFF;
    Frame frame;
    std::size_t consumed = 0;
    ProtoError err;
    EXPECT_EQ(decode_frame(std::span{buf.data(), kHeaderSize}, frame,
                           consumed, err),
              DecodeStatus::kError);
    EXPECT_EQ(err.code, ProtoErrorCode::kOversizedPayload);
  }
}

TEST(Proto, RejectsMalformedTypedPayloads) {
  {  // lookup batch: truncated request array
    std::vector<std::uint8_t> buf;
    append_lookup_batch(buf, 1, sample_requests(4));
    const Frame frame = must_decode(buf);
    std::vector<serve::LookupRequest> out;
    const auto err =
        decode_lookup_batch(frame.payload.subspan(0, frame.payload.size() - 3),
                            out);
    ASSERT_TRUE(err.has_value());
    EXPECT_EQ(err->code, ProtoErrorCode::kBadPayload);
  }
  {  // lookup batch: count field exceeding kMaxBatch
    std::vector<std::uint8_t> payload(4 + 8, 0);
    payload[0] = 0xFF;
    payload[1] = 0xFF;
    std::vector<serve::LookupRequest> out;
    const auto err = decode_lookup_batch(payload, out);
    ASSERT_TRUE(err.has_value());
    EXPECT_EQ(err->code, ProtoErrorCode::kOversizedBatch);
  }
  {  // lookup reply: trailing bytes after the response array
    const auto resps = sample_responses(2, 1, 2);
    std::vector<std::uint8_t> buf;
    append_lookup_reply(buf, 1, 1, 2, resps);
    buf.push_back(0);  // grow payload without fixing payload_len: header
    buf[11] += 1;      // says one extra byte -> typed decoder must reject
    const Frame frame = must_decode(buf);
    LookupReplyInfo info;
    std::vector<serve::LookupResponse> out;
    const auto err = decode_lookup_reply(frame.payload, info, out);
    ASSERT_TRUE(err.has_value());
    EXPECT_EQ(err->code, ProtoErrorCode::kBadPayload);
  }
  {  // lookup reply: hit byte must be 0 or 1
    const auto resps = sample_responses(1, 1, 2);
    std::vector<std::uint8_t> buf;
    append_lookup_reply(buf, 1, 1, 2, resps);
    buf[kHeaderSize + 20] = 2;  // hit is the first byte of each entry
    const Frame frame = must_decode(buf);
    LookupReplyInfo info;
    std::vector<serve::LookupResponse> out;
    const auto err = decode_lookup_reply(frame.payload, info, out);
    ASSERT_TRUE(err.has_value());
    EXPECT_EQ(err->code, ProtoErrorCode::kBadPayload);
  }
  {  // hello ack: wrong fixed size
    std::vector<std::uint8_t> payload(23, 0);
    HelloAck out;
    const auto err = decode_hello_ack(payload, out);
    ASSERT_TRUE(err.has_value());
    EXPECT_EQ(err->code, ProtoErrorCode::kBadPayload);
  }
  {  // error frame: detail length pointing past the payload
    std::vector<std::uint8_t> payload{0, 1, 0xFF, 0xFF, 'x'};
    WireError out;
    const auto err = decode_error(payload, out);
    ASSERT_TRUE(err.has_value());
    EXPECT_EQ(err->code, ProtoErrorCode::kBadPayload);
  }
}

TEST(Proto, StreamDecodesPipelinedFrames) {
  // Several frames back to back in one buffer, as a pipelining client
  // produces: the decoder must peel them off one by one.
  std::vector<std::uint8_t> buf;
  append_hello(buf, 1);
  append_lookup_batch(buf, 2, sample_requests(8));
  append_stats(buf, 3);
  std::size_t offset = 0;
  std::vector<std::uint16_t> seqs;
  while (offset < buf.size()) {
    Frame frame;
    std::size_t consumed = 0;
    ProtoError err;
    const std::span<const std::uint8_t> rest{buf.data() + offset,
                                             buf.size() - offset};
    ASSERT_EQ(decode_frame(rest, frame, consumed, err), DecodeStatus::kFrame);
    seqs.push_back(frame.header.seq);
    offset += consumed;
  }
  EXPECT_EQ(seqs, (std::vector<std::uint16_t>{1, 2, 3}));
}

/// The fallback-fuzzer harness from tests/wire, pointed at the ABRR-Q
/// decoder: feed mutated corpus bytes through the same loop the server
/// runs (frame decode + typed dispatch) and rely on ASan/UBSan presets
/// to catch any out-of-bounds read. Structured errors must format.
void fuzz_one(std::span<const std::uint8_t> in) {
  std::size_t offset = 0;
  std::vector<serve::LookupRequest> reqs;
  std::vector<serve::LookupResponse> resps;
  for (;;) {
    Frame frame;
    std::size_t consumed = 0;
    ProtoError err;
    const std::span<const std::uint8_t> rest = in.subspan(offset);
    const DecodeStatus st = decode_frame(rest, frame, consumed, err);
    if (st == DecodeStatus::kNeedMore) break;
    if (st == DecodeStatus::kError) {
      if (err.to_string().empty()) __builtin_trap();
      if (err.offset > rest.size()) __builtin_trap();
      break;
    }
    if (consumed < kHeaderSize || consumed > rest.size()) {
      __builtin_trap();  // decoder claimed bytes it never had
    }
    switch (frame.header.type) {
      case FrameType::kLookupBatch:
        (void)decode_lookup_batch(frame.payload, reqs);
        break;
      case FrameType::kLookupReply: {
        LookupReplyInfo info;
        (void)decode_lookup_reply(frame.payload, info, resps);
        break;
      }
      case FrameType::kHelloAck: {
        HelloAck ack;
        (void)decode_hello_ack(frame.payload, ack);
        break;
      }
      case FrameType::kStatsReply: {
        StatsReply stats;
        (void)decode_stats_reply(frame.payload, stats);
        break;
      }
      case FrameType::kError: {
        WireError werr;
        (void)decode_error(frame.payload, werr);
        break;
      }
      default:
        break;
    }
    offset += consumed;
  }
}

TEST(Proto, MutationFuzzNeverCrashes) {
  // Seed corpus: one valid frame of every type plus a pipelined train.
  std::vector<std::vector<std::uint8_t>> corpus;
  {
    std::vector<std::uint8_t> b;
    append_hello(b, 1);
    corpus.push_back(b);
  }
  {
    std::vector<std::uint8_t> b;
    append_hello_ack(b, 1, HelloAck{5, 0xFEED, 48, 4096});
    corpus.push_back(b);
  }
  {
    std::vector<std::uint8_t> b;
    append_stats(b, 2);
    append_stats_reply(b, 2, StatsReply{5, 0xFEED, 9, 1000, 40, 3, 1});
    corpus.push_back(b);
  }
  {
    std::vector<std::uint8_t> b;
    append_lookup_batch(b, 3, sample_requests(16));
    corpus.push_back(b);
  }
  {
    std::vector<std::uint8_t> b;
    append_lookup_reply(b, 3, 5, 0xFEED, sample_responses(16, 5, 0xFEED));
    corpus.push_back(b);
  }
  {
    std::vector<std::uint8_t> b;
    append_error(b, 4, ProtoErrorCode::kBadPayload, "fuzz seed");
    corpus.push_back(b);
  }

  // Seeds themselves must survive.
  for (const auto& s : corpus) fuzz_one(s);

  std::mt19937_64 rng{0x5eed5eedull};
  const auto pick = [&rng](std::size_t n) {
    return static_cast<std::size_t>(rng() % n);
  };
  constexpr std::size_t kIterations = 20000;
  for (std::size_t iter = 0; iter < kIterations; ++iter) {
    std::vector<std::uint8_t> v = corpus[pick(corpus.size())];
    const int ops = 1 + static_cast<int>(rng() % 8);
    for (int i = 0; i < ops; ++i) {
      if (v.empty()) v.push_back(static_cast<std::uint8_t>(rng()));
      switch (rng() % 8) {
        case 0:  // flip a byte
          v[pick(v.size())] = static_cast<std::uint8_t>(rng());
          break;
        case 1:  // flip one bit
          v[pick(v.size())] ^= static_cast<std::uint8_t>(1u << (rng() % 8));
          break;
        case 2:  // truncate
          v.resize(pick(v.size() + 1));
          break;
        case 3:  // insert a random byte
          v.insert(v.begin() + static_cast<std::ptrdiff_t>(pick(v.size() + 1)),
                   static_cast<std::uint8_t>(rng()));
          break;
        case 4:  // erase a byte
          v.erase(v.begin() + static_cast<std::ptrdiff_t>(pick(v.size())));
          break;
        case 5:  // corrupt the payload_len field
          if (v.size() >= kHeaderSize) {
            v[8] = static_cast<std::uint8_t>(rng());
            v[9] = static_cast<std::uint8_t>(rng());
            v[10] = static_cast<std::uint8_t>(rng());
            v[11] = static_cast<std::uint8_t>(rng());
          }
          break;
        case 6: {  // splice another seed's tail onto our head
          const auto& other = corpus[pick(corpus.size())];
          if (!other.empty()) {
            const std::size_t cut = pick(other.size());
            v.insert(v.end(),
                     other.begin() + static_cast<std::ptrdiff_t>(cut),
                     other.end());
          }
          break;
        }
        case 7:  // append a whole seed (pipelined trains)
        default: {
          const auto& other = corpus[pick(corpus.size())];
          v.insert(v.end(), other.begin(), other.end());
          break;
        }
      }
      if (v.size() > 4 * kMaxPayload) v.resize(4 * kMaxPayload);
    }
    fuzz_one(v);
  }
}

}  // namespace
}  // namespace abrr::frontend
