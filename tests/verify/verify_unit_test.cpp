// Unit coverage for the verifiers themselves (the gadget tests exercise
// them end to end; these pin the edge cases and reporting behaviour).
#include <gtest/gtest.h>

#include "harness/testbed.h"
#include "verify/efficiency.h"
#include "verify/equivalence.h"
#include "verify/forwarding.h"
#include "verify/oscillation.h"

namespace abrr::verify {
namespace {

using bgp::Ipv4Prefix;
using bgp::RouteBuilder;
using harness::Testbed;
using harness::TestbedOptions;

const Ipv4Prefix kPfx = Ipv4Prefix::parse("10.0.0.0/8");
const Ipv4Prefix kOther = Ipv4Prefix::parse("99.0.0.0/8");

topo::Topology tiny() {
  topo::Topology t;
  t.params.pops = 1;
  t.clients = {
      {1, topo::RouterRole::kPeering, 0, 0},
      {2, topo::RouterRole::kAccess, 0, 0},
  };
  t.reflectors = {{11, 0, 0}, {12, 0, 0}};
  t.graph.add_link(1, 2, 1);
  t.graph.add_link(11, 1, 1);
  t.graph.add_link(12, 2, 1);
  return t;
}

TestbedOptions abrr_options() {
  TestbedOptions o;
  o.mode = ibgp::IbgpMode::kAbrr;
  o.num_aps = 1;
  o.mrai = 0;
  o.proc_delay = sim::msec(1);
  o.latency_jitter = 0;
  return o;
}

TEST(ForwardingUnit, NoRouteOutcome) {
  const std::vector<Ipv4Prefix> prefixes{kPfx};
  Testbed bed{tiny(), abrr_options(), prefixes};
  ForwardingChecker checker{bed};
  const auto walk = checker.walk(1, kPfx);  // nothing injected
  EXPECT_EQ(walk.outcome, WalkResult::Outcome::kNoRoute);
  const auto audit = checker.audit(prefixes);
  EXPECT_EQ(audit.no_route, audit.checked);
  EXPECT_TRUE(audit.clean());  // no loops is clean even if unrouted
}

TEST(ForwardingUnit, DeliveredPathIsRecorded) {
  const std::vector<Ipv4Prefix> prefixes{kPfx};
  Testbed bed{tiny(), abrr_options(), prefixes};
  bed.speaker(1).inject_ebgp(0x80000001,
                             RouteBuilder{kPfx}.as_path({7018}).build());
  ASSERT_TRUE(bed.run_to_quiescence());
  ForwardingChecker checker{bed};
  const auto walk = checker.walk(2, kPfx);
  EXPECT_EQ(walk.outcome, WalkResult::Outcome::kDelivered);
  ASSERT_GE(walk.path.size(), 2u);
  EXPECT_EQ(walk.path.front(), 2u);
  EXPECT_EQ(walk.path.back(), 1u);
}

TEST(EquivalenceUnit, ReportsCapAndCount) {
  const std::vector<Ipv4Prefix> prefixes{kPfx, kOther};
  Testbed a{tiny(), abrr_options(), prefixes};
  Testbed b{tiny(), abrr_options(), prefixes};
  // Different state: only `a` learns the routes.
  a.speaker(1).inject_ebgp(0x80000001,
                           RouteBuilder{kPfx}.as_path({7018}).build());
  a.speaker(1).inject_ebgp(0x80000001,
                           RouteBuilder{kOther}.as_path({7018}).build());
  ASSERT_TRUE(a.run_to_quiescence());
  const auto eq = compare_loc_ribs(a, b, prefixes, /*max_report=*/1);
  EXPECT_FALSE(eq.equivalent());
  EXPECT_EQ(eq.divergence_count, 4u);  // 2 clients x 2 prefixes
  EXPECT_EQ(eq.divergences.size(), 1u);  // capped examples
  EXPECT_EQ(eq.compared, 4u);
  EXPECT_EQ(eq.divergences.front().egress_b, bgp::kNoRouter);
}

TEST(EquivalenceUnit, IdenticalBedsAreEquivalent) {
  const std::vector<Ipv4Prefix> prefixes{kPfx};
  Testbed a{tiny(), abrr_options(), prefixes};
  Testbed b{tiny(), abrr_options(), prefixes};
  const auto eq = compare_loc_ribs(a, b, prefixes);
  EXPECT_TRUE(eq.equivalent());  // both empty
}

TEST(OscillationUnit, CountsFlipsPerRouterPrefix) {
  const std::vector<Ipv4Prefix> prefixes{kPfx};
  Testbed bed{tiny(), abrr_options(), prefixes};
  OscillationMonitor monitor{3};
  for (const auto id : bed.all_ids()) monitor.attach(bed.speaker(id));

  // Flap the route five times: five installs + withdrawals per router.
  for (int i = 0; i < 5; ++i) {
    bed.speaker(1).inject_ebgp(0x80000001,
                               RouteBuilder{kPfx}.as_path({7018}).build());
    ASSERT_TRUE(bed.run_to_quiescence());
    bed.speaker(1).withdraw_ebgp(0x80000001, kPfx);
    ASSERT_TRUE(bed.run_to_quiescence());
  }
  EXPECT_EQ(monitor.flips(1, kPfx), 10u);
  EXPECT_EQ(monitor.flips(1, kOther), 0u);
  EXPECT_GT(monitor.total_flips(), 20u);
  EXPECT_TRUE(monitor.oscillating());  // threshold 3 exceeded (by churn)
  monitor.reset();
  EXPECT_EQ(monitor.max_flips(), 0u);
  EXPECT_FALSE(monitor.oscillating());
}

TEST(EfficiencyUnit, EmptyEdgeReportsNothing) {
  const std::vector<Ipv4Prefix> prefixes{kPfx};
  Testbed bed{tiny(), abrr_options(), prefixes};
  const trace::Workload empty = trace::Workload::from_parts({}, {});
  const auto report = audit_efficiency(bed, empty);
  EXPECT_EQ(report.checked, 0u);
  EXPECT_TRUE(report.efficient());
  EXPECT_DOUBLE_EQ(report.avg_extra(), 0.0);
}

}  // namespace
}  // namespace abrr::verify
