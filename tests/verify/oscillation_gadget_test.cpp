// §2.3.1 gadgets: TBRR's oscillations and ABRR's immunity.
//
// Topology-based gadget: three single-client clusters whose TRRs have
// cyclically conflicting IGP preferences toward each other's exits
// (Griffin-Wilfong style). No MED involved: the oscillation survives any
// MED setting and is fixed only by topology engineering - or by ABRR.
//
// MED-based gadget: the RFC 3345 pattern. Intransitive preferences
// (a >igp b, c >med a, b >igp c) give the two TRRs no fixed point when
// MED is compared pairwise in arrival order (vendor default). Cisco's
// deterministic-med fixes this particular gadget; the topology gadget it
// does not fix. ABRR fixes both.
#include <gtest/gtest.h>

#include <map>
#include <memory>

#include "core/address_partition.h"
#include "ibgp/speaker.h"
#include "verify/oscillation.h"

namespace abrr::verify {
namespace {

using bgp::Ipv4Prefix;
using bgp::Route;
using bgp::RouteBuilder;
using ibgp::IbgpMode;
using ibgp::PeerInfo;
using ibgp::RouterId;
using ibgp::Speaker;
using ibgp::SpeakerConfig;

const Ipv4Prefix kPfx = Ipv4Prefix::parse("10.0.0.0/8");

class GadgetTest : public ::testing::Test {
 protected:
  Speaker& add(SpeakerConfig cfg) {
    cfg.asn = 65000;
    cfg.mrai = 0;
    cfg.proc_delay = sim::msec(1);
    auto s = std::make_unique<Speaker>(cfg, sched, net);
    auto& ref = *s;
    speakers.emplace(cfg.id, std::move(s));
    return ref;
  }

  Speaker& at(RouterId id) { return *speakers.at(id); }

  void start_all() {
    for (auto& [id, s] : speakers) {
      monitor.attach(*s);
      s->start();
    }
  }

  void session(RouterId a, RouterId b) { net.connect(a, b, sim::msec(2)); }

  // eBGP route, AS-level equal across gadget routes unless MED given.
  Route route(bgp::Asn neighbor_as, std::optional<std::uint32_t> med = {}) {
    RouteBuilder b{kPfx};
    b.local_pref(100).as_path({neighbor_as, 65100});
    if (med) b.med(*med);
    return b.build();
  }

  // IGP oracle from a distance table.
  static bgp::IgpDistanceFn table(std::map<RouterId, std::int64_t> dist) {
    return [dist = std::move(dist)](RouterId nh) -> std::int64_t {
      const auto it = dist.find(nh);
      return it == dist.end() ? 1000 : it->second;
    };
  }

  sim::Scheduler sched;
  sim::Rng rng{1};
  net::Network net{sched, rng};
  std::map<RouterId, std::unique_ptr<Speaker>> speakers;
  OscillationMonitor monitor{20};
};

// --------------------------------------------------------------------
// Topology-based oscillation.
// Clients 1, 2, 3 (one per cluster) inject AS-level-equal routes.
// TRRs 11, 12, 13 prefer, cyclically, the NEXT cluster's exit.
// --------------------------------------------------------------------
class TopologyGadget : public GadgetTest {
 protected:
  void BuildTbrr(const bgp::DecisionConfig& dec = {}) {
    for (RouterId c = 1; c <= 3; ++c) {
      SpeakerConfig cfg;
      cfg.id = c;
      cfg.mode = IbgpMode::kTbrr;
      cfg.decision = dec;
      add(cfg);
    }
    for (RouterId r = 11; r <= 13; ++r) {
      SpeakerConfig cfg;
      cfg.id = r;
      cfg.mode = IbgpMode::kTbrr;
      cfg.decision = dec;
      cfg.cluster_id = r - 10;
      cfg.data_plane = false;
      add(cfg);
    }
    // Cyclic preferences: TRR 11 is nearest exit 2, 12 nearest 3,
    // 13 nearest 1; each TRR's own client is second, the third is far.
    at(11).set_igp(table({{1, 10}, {2, 1}, {3, 100}}));
    at(12).set_igp(table({{1, 100}, {2, 10}, {3, 1}}));
    at(13).set_igp(table({{1, 1}, {2, 100}, {3, 10}}));

    for (RouterId c = 1; c <= 3; ++c) {
      const RouterId rr = c + 10;
      session(c, rr);
      at(c).add_peer(PeerInfo{.id = rr, .reflector_tbrr = true});
      at(rr).add_peer(PeerInfo{.id = c, .rr_client = true});
    }
    for (RouterId a = 11; a <= 13; ++a) {
      for (RouterId b = a + 1; b <= 13; ++b) {
        session(a, b);
        at(a).add_peer(PeerInfo{.id = b, .rr_peer = true});
        at(b).add_peer(PeerInfo{.id = a, .rr_peer = true});
      }
    }
    start_all();
  }

  void BuildAbrr() {
    const auto scheme = core::PartitionScheme::uniform(1);
    for (RouterId c = 1; c <= 3; ++c) {
      SpeakerConfig cfg;
      cfg.id = c;
      cfg.mode = IbgpMode::kAbrr;
      cfg.ap_of = scheme.mapper();
      add(cfg);
    }
    // Reuse the SAME conflicted boxes as ARRs - their IGP view must not
    // matter (no constraints on RR placement).
    for (RouterId r = 11; r <= 12; ++r) {
      SpeakerConfig cfg;
      cfg.id = r;
      cfg.mode = IbgpMode::kAbrr;
      cfg.ap_of = scheme.mapper();
      cfg.managed_aps = {0};
      cfg.data_plane = false;
      add(cfg);
    }
    at(11).set_igp(table({{1, 10}, {2, 1}, {3, 100}}));
    at(12).set_igp(table({{1, 100}, {2, 10}, {3, 1}}));
    for (RouterId c = 1; c <= 3; ++c) {
      for (RouterId r = 11; r <= 12; ++r) {
        session(c, r);
        at(c).add_peer(PeerInfo{.id = r, .reflector_for = {0}});
        at(r).add_peer(PeerInfo{.id = c, .rr_client = true});
      }
    }
    start_all();
  }

  void Inject() {
    at(1).inject_ebgp(0x80000001, route(65001));
    at(2).inject_ebgp(0x80000002, route(65002));
    at(3).inject_ebgp(0x80000003, route(65003));
  }
};

TEST_F(TopologyGadget, TbrrOscillatesForever) {
  BuildTbrr();
  Inject();
  // The gadget has no fixed point: the run never quiesces and TRR bests
  // keep flipping far past any reasonable convergence.
  const bool quiesced = sched.run_to_quiescence(200000);
  EXPECT_FALSE(quiesced);
  EXPECT_TRUE(monitor.oscillating());
  EXPECT_GT(monitor.max_flips(), 50u);
}

TEST_F(TopologyGadget, MedKnobsDoNotFixTopologyOscillation) {
  // §2.3.1: this oscillation is IGP/topology-driven; no MED setting
  // (deterministic, always-compare) has any effect on it.
  bgp::DecisionConfig dec;
  dec.always_compare_med = true;
  dec.deterministic_med = true;
  BuildTbrr(dec);
  Inject();
  EXPECT_FALSE(sched.run_to_quiescence(200000));
  EXPECT_TRUE(monitor.oscillating());
}

TEST_F(TopologyGadget, AbrrConvergesWithArbitraryArrPlacement) {
  BuildAbrr();
  Inject();
  ASSERT_TRUE(sched.run_to_quiescence(200000));
  EXPECT_FALSE(monitor.oscillating());
  // Every client settled on its own exit (eBGP wins over the ties).
  for (RouterId c = 1; c <= 3; ++c) {
    const Route* best = at(c).loc_rib().best(kPfx);
    ASSERT_NE(best, nullptr);
    EXPECT_EQ(best->egress(), c);
  }
  // And the ARRs advertise the complete 3-route best AS-level set.
  const auto* set = at(11).out_group(Speaker::arr_group(0))->get(kPfx);
  ASSERT_NE(set, nullptr);
  EXPECT_EQ(set->size(), 3u);
}

// --------------------------------------------------------------------
// MED-based oscillation (RFC 3345 pattern).
// Cluster 1: TRR 11, client 3 with route a (AS W, MED 1).
// Cluster 2: TRR 12, clients 4 (route b, AS V) and 5 (route c, AS W,
// MED 0). TRR preferences: a >igp b at both TRRs, b >igp c, c >med a.
// --------------------------------------------------------------------
class MedGadget : public GadgetTest {
 protected:
  void Build(bool deterministic_med) {
    bgp::DecisionConfig dec;
    dec.deterministic_med = deterministic_med;

    const auto add_client = [&](RouterId id) {
      SpeakerConfig cfg;
      cfg.id = id;
      cfg.mode = IbgpMode::kTbrr;
      cfg.decision = dec;
      add(cfg);
    };
    const auto add_rr = [&](RouterId id, std::uint32_t cluster) {
      SpeakerConfig cfg;
      cfg.id = id;
      cfg.mode = IbgpMode::kTbrr;
      cfg.decision = dec;
      cfg.cluster_id = cluster;
      cfg.data_plane = false;
      add(cfg);
    };
    add_client(3);
    add_client(4);
    add_client(5);
    add_rr(1, 1);  // low id => its mesh advert folds first at TRR 2
    add_rr(2, 2);

    // Exits: a at router 3, b at 4, c at 5.
    at(1).set_igp(table({{3, 1}, {4, 5}, {5, 50}}));
    at(2).set_igp(table({{3, 1}, {4, 5}, {5, 10}}));

    session(3, 1);
    at(3).add_peer(PeerInfo{.id = 1, .reflector_tbrr = true});
    at(1).add_peer(PeerInfo{.id = 3, .rr_client = true});
    for (RouterId c : {4u, 5u}) {
      session(c, 2);
      at(c).add_peer(PeerInfo{.id = 2, .reflector_tbrr = true});
      at(2).add_peer(PeerInfo{.id = c, .rr_client = true});
    }
    session(1, 2);
    at(1).add_peer(PeerInfo{.id = 2, .rr_peer = true});
    at(2).add_peer(PeerInfo{.id = 1, .rr_peer = true});
    start_all();
  }

  void Inject() {
    at(3).inject_ebgp(0x80000001, route(65001, 1));  // a: AS W, MED 1
    at(4).inject_ebgp(0x80000002, route(65002));     // b: AS V
    at(5).inject_ebgp(0x80000003, route(65001, 0));  // c: AS W, MED 0
  }
};

TEST_F(MedGadget, VendorOrderDependentMedOscillates) {
  Build(/*deterministic_med=*/false);
  Inject();
  EXPECT_FALSE(sched.run_to_quiescence(200000));
  EXPECT_TRUE(monitor.oscillating());
}

TEST_F(MedGadget, DeterministicMedFixesThisParticularGadget) {
  Build(/*deterministic_med=*/true);
  Inject();
  EXPECT_TRUE(sched.run_to_quiescence(200000));
  EXPECT_FALSE(monitor.oscillating());
}

TEST_F(MedGadget, AbrrConvergesEvenWithVendorMed) {
  // Same routes, ABRR plane, vendor (order-dependent) MED at clients.
  bgp::DecisionConfig dec;
  dec.deterministic_med = false;
  const auto scheme = core::PartitionScheme::uniform(1);

  for (RouterId c : {3u, 4u, 5u}) {
    SpeakerConfig cfg;
    cfg.id = c;
    cfg.mode = IbgpMode::kAbrr;
    cfg.decision = dec;
    cfg.ap_of = scheme.mapper();
    add(cfg);
  }
  for (RouterId r : {1u, 2u}) {
    SpeakerConfig cfg;
    cfg.id = r;
    cfg.mode = IbgpMode::kAbrr;
    cfg.decision = dec;
    cfg.ap_of = scheme.mapper();
    cfg.managed_aps = {0};
    cfg.data_plane = false;
    add(cfg);
  }
  at(1).set_igp(table({{3, 1}, {4, 5}, {5, 50}}));
  at(2).set_igp(table({{3, 1}, {4, 5}, {5, 10}}));
  for (RouterId c : {3u, 4u, 5u}) {
    for (RouterId r : {1u, 2u}) {
      session(c, r);
      at(c).add_peer(PeerInfo{.id = r, .reflector_for = {0}});
      at(r).add_peer(PeerInfo{.id = c, .rr_client = true});
    }
  }
  start_all();

  at(3).inject_ebgp(0x80000001, route(65001, 1));
  at(4).inject_ebgp(0x80000002, route(65002));
  at(5).inject_ebgp(0x80000003, route(65001, 0));

  ASSERT_TRUE(sched.run_to_quiescence(200000));
  EXPECT_FALSE(monitor.oscillating());
  // The ARRs' best AS-level set is {b, c}: route a lost the per-AS MED
  // comparison at the ARR (steps 1-4) - exactly Table 2.
  const auto* set = at(1).out_group(Speaker::arr_group(0))->get(kPfx);
  ASSERT_NE(set, nullptr);
  EXPECT_EQ(set->size(), 2u);
  for (const Route& r : *set) EXPECT_NE(r.egress(), 3u);
}

}  // namespace
}  // namespace abrr::verify
