// §2.3.2-2.3.3 data-plane gadget: TBRR's inconsistent egress choices can
// deflect packets into loops and off the hot-potato optimum; ABRR, on
// the same physical topology with the same (badly) placed RR boxes,
// produces loop-free, efficient forwarding.
//
// Line topology:  E1 --1-- R1 --1-- R2 --1-- E2
// Clusters cross the geography (the misconfiguration TBRR forbids):
// cluster 0 = {R1, E2} with its TRR next to E2, cluster 1 = {R2, E1}
// with its TRR next to E1. Both exits inject AS-level-equal routes.
// Each TRR hot-potatoes to its nearby client exit and reflects only
// that, so R1 is stably told "use E2" and R2 "use E1": the packet
// ping-pongs between R1 and R2 in a converged network.
#include <gtest/gtest.h>

#include "harness/testbed.h"
#include "ibgp/speaker.h"
#include "verify/efficiency.h"
#include "verify/equivalence.h"
#include "verify/forwarding.h"

namespace abrr::verify {
namespace {

using bgp::Ipv4Prefix;
using bgp::Route;
using bgp::RouteBuilder;
using harness::Testbed;
using harness::TestbedOptions;

const Ipv4Prefix kPfx = Ipv4Prefix::parse("10.0.0.0/8");
constexpr bgp::RouterId kE1 = 1, kR1 = 2, kR2 = 3, kE2 = 4;
constexpr bgp::RouterId kRrA = 11, kRrB = 12;

topo::Topology gadget_topology() {
  topo::Topology t;
  t.params.pops = 2;
  t.clients = {
      {kE1, topo::RouterRole::kPeering, 0, 1},
      {kR1, topo::RouterRole::kAccess, 0, 0},
      {kR2, topo::RouterRole::kAccess, 1, 1},
      {kE2, topo::RouterRole::kPeering, 1, 0},
  };
  // The kind of cluster design ISPs must avoid with TBRR (§1) and that
  // ABRR renders harmless: each TRR sits next to its own exit client and
  // far from the routers it steers.
  t.reflectors = {
      {kRrA, 1, 0},  // serves {R1, E2}, placed near E2
      {kRrB, 0, 1},  // serves {R2, E1}, placed near E1
  };
  t.graph.add_link(kE1, kR1, 1);
  t.graph.add_link(kR1, kR2, 1);
  t.graph.add_link(kR2, kE2, 1);
  t.graph.add_link(kRrA, kE2, 1);  // stub attachments: no transit
  t.graph.add_link(kRrB, kE1, 1);
  return t;
}

Route exit_route(bgp::Asn neighbor_as) {
  return RouteBuilder{kPfx}.local_pref(100).as_path({neighbor_as, 65100}).build();
}

void inject_exits(Testbed& bed) {
  bed.speaker(kE1).inject_ebgp(0x80000001, exit_route(65001));
  bed.speaker(kE2).inject_ebgp(0x80000002, exit_route(65002));
}

TestbedOptions options(ibgp::IbgpMode mode) {
  TestbedOptions o;
  o.mode = mode;
  o.num_aps = 1;
  o.mrai = 0;
  o.proc_delay = sim::msec(1);
  o.latency_jitter = 0;
  return o;
}

trace::Workload ground_truth() {
  // The edge view matching inject_exits, for the efficiency audit.
  trace::PrefixEntry entry;
  entry.prefix = kPfx;
  entry.from_peers = true;
  trace::Announcement a1;
  a1.router = kE1;
  a1.neighbor = 0x80000001;
  a1.first_as = 65001;
  a1.path_length = 2;
  a1.origin_as = 65100;
  a1.local_pref = 100;
  trace::Announcement a2 = a1;
  a2.router = kE2;
  a2.neighbor = 0x80000002;
  a2.first_as = 65002;
  entry.anns = {a1, a2};
  return trace::Workload::from_parts({}, {entry});
}

TEST(DataPlaneGadget, TbrrDeflectionCreatesForwardingLoop) {
  Testbed bed{gadget_topology(), options(ibgp::IbgpMode::kTbrr),
              std::vector<Ipv4Prefix>{kPfx}};
  inject_exits(bed);
  ASSERT_TRUE(bed.run_to_quiescence());

  // R1 was steered to E2, R2 to E1 - each by its own cluster's TRR.
  ASSERT_NE(bed.speaker(kR1).loc_rib().best(kPfx), nullptr);
  EXPECT_EQ(bed.speaker(kR1).loc_rib().best(kPfx)->egress(), kE2);
  EXPECT_EQ(bed.speaker(kR2).loc_rib().best(kPfx)->egress(), kE1);

  ForwardingChecker checker{bed};
  const WalkResult walk = checker.walk(kR1, kPfx);
  EXPECT_EQ(walk.outcome, WalkResult::Outcome::kLoop);

  const std::vector<Ipv4Prefix> prefixes{kPfx};
  const ForwardingAudit audit = checker.audit(prefixes);
  EXPECT_GT(audit.loops, 0u);
  EXPECT_FALSE(audit.clean());
}

TEST(DataPlaneGadget, TbrrPathsAreInefficient) {
  Testbed bed{gadget_topology(), options(ibgp::IbgpMode::kTbrr),
              std::vector<Ipv4Prefix>{kPfx}};
  inject_exits(bed);
  ASSERT_TRUE(bed.run_to_quiescence());
  const auto edge = ground_truth();
  const EfficiencyReport report = audit_efficiency(bed, edge);
  EXPECT_GT(report.inefficient, 0u);
  EXPECT_GT(report.total_extra_metric, 0.0);
}

TEST(DataPlaneGadget, AbrrSameBoxesNoLoopNoInefficiency) {
  // Same topology, same two oddly-placed boxes now acting as the two
  // redundant ARRs of a single AP.
  Testbed bed{gadget_topology(), options(ibgp::IbgpMode::kAbrr),
              std::vector<Ipv4Prefix>{kPfx}};
  inject_exits(bed);
  ASSERT_TRUE(bed.run_to_quiescence());

  // Hot-potato restored: R1 exits at E1 (distance 1), R2 at E2.
  EXPECT_EQ(bed.speaker(kR1).loc_rib().best(kPfx)->egress(), kE1);
  EXPECT_EQ(bed.speaker(kR2).loc_rib().best(kPfx)->egress(), kE2);

  ForwardingChecker checker{bed};
  const std::vector<Ipv4Prefix> prefixes{kPfx};
  const ForwardingAudit audit = checker.audit(prefixes);
  EXPECT_EQ(audit.loops, 0u);
  EXPECT_EQ(audit.delivered, audit.checked);

  const EfficiencyReport report = audit_efficiency(bed, ground_truth());
  EXPECT_TRUE(report.efficient()) << report.inefficient << " inefficient, "
                                  << report.off_as_level_set << " off-set";
}

TEST(DataPlaneGadget, AbrrMatchesFullMeshExactly) {
  const std::vector<Ipv4Prefix> prefixes{kPfx};
  Testbed abrr{gadget_topology(), options(ibgp::IbgpMode::kAbrr), prefixes};
  Testbed mesh{gadget_topology(), options(ibgp::IbgpMode::kFullMesh),
               prefixes};
  inject_exits(abrr);
  inject_exits(mesh);
  ASSERT_TRUE(abrr.run_to_quiescence());
  ASSERT_TRUE(mesh.run_to_quiescence());

  const EquivalenceReport eq = compare_loc_ribs(abrr, mesh, prefixes);
  EXPECT_TRUE(eq.equivalent())
      << eq.divergence_count << " of " << eq.compared << " diverged";
}

TEST(DataPlaneGadget, TbrrDivergesFromFullMesh) {
  const std::vector<Ipv4Prefix> prefixes{kPfx};
  Testbed tbrr{gadget_topology(), options(ibgp::IbgpMode::kTbrr), prefixes};
  Testbed mesh{gadget_topology(), options(ibgp::IbgpMode::kFullMesh),
               prefixes};
  inject_exits(tbrr);
  inject_exits(mesh);
  ASSERT_TRUE(tbrr.run_to_quiescence());
  ASSERT_TRUE(mesh.run_to_quiescence());
  const EquivalenceReport eq = compare_loc_ribs(tbrr, mesh, prefixes);
  EXPECT_FALSE(eq.equivalent());
}

}  // namespace
}  // namespace abrr::verify
