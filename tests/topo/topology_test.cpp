#include "topo/topology.h"

#include <gtest/gtest.h>

#include <set>

#include "igp/spf.h"

namespace abrr::topo {
namespace {

TopologyParams small_params() {
  TopologyParams p;
  p.pops = 5;
  p.clients_per_pop = 4;
  p.peer_ases = 6;
  p.peering_points_per_as = 3;
  return p;
}

TEST(Topology, BuildsRequestedCounts) {
  sim::Rng rng{1};
  const auto t = make_tier1(small_params(), rng);
  EXPECT_EQ(t.clients.size(), 20u);
  EXPECT_EQ(t.reflectors.size(), 10u);  // 2 per cluster
  EXPECT_EQ(t.peer_as_list.size(), 6u);
  EXPECT_EQ(t.peering_points.size(), 6u * 3u);
}

TEST(Topology, IdsAreUniqueAndDisjointFromSpecialRanges) {
  sim::Rng rng{2};
  const auto t = make_tier1(small_params(), rng);
  std::set<RouterId> ids;
  for (const auto& r : t.clients) ids.insert(r.id);
  for (const auto& r : t.reflectors) ids.insert(r.id);
  EXPECT_EQ(ids.size(), t.clients.size() + t.reflectors.size());
  for (const RouterId id : ids) {
    EXPECT_LT(id, kHubBase);
    EXPECT_LT(id, kEbgpNeighborBase);
  }
  std::set<RouterId> neighbors;
  for (const auto& p : t.peering_points) neighbors.insert(p.neighbor_id);
  EXPECT_EQ(neighbors.size(), t.peering_points.size());
  for (const RouterId n : neighbors) EXPECT_GE(n, kEbgpNeighborBase);
}

TEST(Topology, GraphIsConnected) {
  sim::Rng rng{3};
  const auto t = make_tier1(small_params(), rng);
  const auto tree = igp::compute_spf(t.graph, t.clients.front().id);
  for (const auto& r : t.clients) {
    EXPECT_NE(tree.distance_to(r.id), bgp::kIgpInfinity) << r.id;
  }
  for (const auto& r : t.reflectors) {
    EXPECT_NE(tree.distance_to(r.id), bgp::kIgpInfinity) << r.id;
  }
}

TEST(Topology, IntraPopShorterThanInterPop) {
  sim::Rng rng{4};
  const auto t = make_tier1(small_params(), rng);
  igp::SpfCache spf{t.graph};
  // Two clients in the same PoP are closer than two in different PoPs
  // (the §1 metric engineering).
  const auto* a = &t.clients[0];
  const RouterSpec* same = nullptr;
  const RouterSpec* other = nullptr;
  for (const auto& r : t.clients) {
    if (r.id == a->id) continue;
    if (r.pop == a->pop && same == nullptr) same = &r;
    if (r.pop != a->pop && other == nullptr) other = &r;
  }
  ASSERT_NE(same, nullptr);
  ASSERT_NE(other, nullptr);
  EXPECT_LT(spf.distance(a->id, same->id), spf.distance(a->id, other->id));
}

TEST(Topology, PeeringPointsLandOnPeeringRoutersInDistinctPops) {
  sim::Rng rng{5};
  const auto t = make_tier1(small_params(), rng);
  std::map<Asn, std::set<std::uint32_t>> pops_per_as;
  for (const auto& p : t.peering_points) {
    const auto it = std::find_if(
        t.clients.begin(), t.clients.end(),
        [&](const RouterSpec& r) { return r.id == p.router; });
    ASSERT_NE(it, t.clients.end());
    EXPECT_EQ(it->role, RouterRole::kPeering);
    pops_per_as[p.peer_as].insert(it->pop);
  }
  for (const auto& [as, pops] : pops_per_as) {
    EXPECT_EQ(pops.size(), 3u) << "AS " << as;  // geographic diversity
  }
}

TEST(Topology, SkewConcentratesPeeringInGatewayPops) {
  sim::Rng rng{6};
  TopologyParams p = small_params();
  p.pops = 10;
  p.peer_ases = 20;
  p.peering_points_per_as = 2;
  p.peering_skew = 1.5;
  const auto t = make_tier1(p, rng);
  std::map<std::uint32_t, std::size_t> per_pop;
  for (const auto& point : t.peering_points) {
    const auto it = std::find_if(
        t.clients.begin(), t.clients.end(),
        [&](const RouterSpec& r) { return r.id == point.router; });
    ++per_pop[it->pop];
  }
  std::size_t max_pop = 0, min_pop = t.peering_points.size();
  for (std::uint32_t pop = 0; pop < p.pops; ++pop) {
    max_pop = std::max(max_pop, per_pop[pop]);
    min_pop = std::min(min_pop, per_pop[pop]);
  }
  EXPECT_GT(max_pop, 2 * std::max<std::size_t>(min_pop, 1));
}

TEST(Topology, HelpersFilterCorrectly) {
  sim::Rng rng{7};
  const auto t = make_tier1(small_params(), rng);
  const auto cluster0 = t.cluster_clients(0);
  EXPECT_EQ(cluster0.size(), 4u);
  for (const auto* r : cluster0) EXPECT_EQ(r->cluster, 0u);
  EXPECT_EQ(t.cluster_reflectors(0).size(), 2u);
  const auto points = t.points_of(t.peer_as_list.front());
  EXPECT_EQ(points.size(), 3u);
  const auto peering = t.peering_routers();
  for (const RouterId id : peering) {
    const auto it = std::find_if(
        t.clients.begin(), t.clients.end(),
        [&](const RouterSpec& r) { return r.id == id; });
    EXPECT_EQ(it->role, RouterRole::kPeering);
  }
}

TEST(Topology, DeterministicPerSeed) {
  sim::Rng rng_a{11}, rng_b{11}, rng_c{12};
  const auto a = make_tier1(small_params(), rng_a);
  const auto b = make_tier1(small_params(), rng_b);
  const auto c = make_tier1(small_params(), rng_c);
  ASSERT_EQ(a.peering_points.size(), b.peering_points.size());
  bool same = true;
  for (std::size_t i = 0; i < a.peering_points.size(); ++i) {
    same = same && a.peering_points[i].router == b.peering_points[i].router;
  }
  EXPECT_TRUE(same);
  bool all_equal_c = a.peering_points.size() == c.peering_points.size();
  if (all_equal_c) {
    all_equal_c = false;
    for (std::size_t i = 0; i < a.peering_points.size(); ++i) {
      if (a.peering_points[i].router != c.peering_points[i].router) {
        all_equal_c = false;
        break;
      }
      all_equal_c = true;
    }
  }
  EXPECT_FALSE(all_equal_c);
}

TEST(Topology, RejectsDegenerateParams) {
  sim::Rng rng{1};
  TopologyParams p;
  p.pops = 0;
  EXPECT_THROW(make_tier1(p, rng), std::invalid_argument);
}

}  // namespace
}  // namespace abrr::topo
