// RouteService contract tests: every published snapshot is a state of
// the virtual world — its fingerprint must be bit-identical to a batch
// run of the same (spec, seed) stopped at the same virtual time, in
// every iBGP mode; reclamation must bound resident snapshots under a
// stuck reader instead of crashing or leaking.
#include "serve/service.h"

#include <gtest/gtest.h>

#include <chrono>
#include <map>
#include <memory>
#include <optional>
#include <thread>
#include <vector>

#include "runner/scenario.h"

namespace abrr::serve {
namespace {

using namespace std::chrono_literals;

/// Tiny but real serving world: 3 PoPs, churn + session/delay/loss
/// chaos, frequent publishes so tests observe several snapshots.
runner::ScenarioSpec serve_tiny(ibgp::IbgpMode mode) {
  runner::ScenarioSpec spec;
  spec.name = std::string{"serve_"} + runner::mode_name(mode);
  spec.mode = mode;
  spec.topology.pops = 3;
  spec.topology.clients_per_pop = 2;
  spec.topology.peer_ases = 4;
  spec.topology.points_per_as = 2;
  spec.workload.prefixes = 48;
  spec.workload.snapshot_seconds = 5.0;
  spec.abrr.num_aps = 2;
  spec.serve.enabled = true;
  spec.serve.churn_seconds = 4.0;
  spec.serve.churn_events_per_second = 40.0;
  spec.serve.chaos_events = 4;
  spec.serve.publish_period_seconds = 0.25;
  return spec;
}

std::vector<ibgp::IbgpMode> modes_under_test() {
#if defined(__SANITIZE_THREAD__)
  // TSan runs ~10x slower on this 1-CPU host; one mode is enough for
  // the race check (the fingerprint matrix runs in the plain preset).
  return {ibgp::IbgpMode::kAbrr};
#else
  return {ibgp::IbgpMode::kFullMesh, ibgp::IbgpMode::kTbrr,
          ibgp::IbgpMode::kAbrr, ibgp::IbgpMode::kDual};
#endif
}

TEST(RouteService, SnapshotsMatchBatchRunsAtSameVirtualTime) {
  constexpr std::uint64_t kSeed = 11;
  for (const ibgp::IbgpMode mode : modes_under_test()) {
    const runner::ScenarioSpec spec = serve_tiny(mode);
    SCOPED_TRACE(spec.name);

    std::map<sim::Time, std::uint64_t> observed;  // virtual_time -> fp
    {
      RouteService service{spec, kSeed};
      service.start();
      RouteService::Reader reader{service};
      while (!service.done()) {
        {
          const RouteService::Reader::PinGuard snap{reader};
          ASSERT_TRUE(snap);
          EXPECT_GE(snap->version, 1u);
          const auto [it, inserted] =
              observed.emplace(snap->virtual_time, snap->fingerprint);
          // Two snapshots at one virtual time would have to be the same
          // world state; conflicting fingerprints mean nondeterminism.
          EXPECT_EQ(it->second, snap->fingerprint);
        }
        std::this_thread::yield();
      }
      {
        const RouteService::Reader::PinGuard last{reader};
        observed.emplace(last->virtual_time, last->fingerprint);
      }
      service.stop();
    }
    // The final pin guarantees at least one observation; on this slow
    // 1-CPU host the aggressive sampler typically catches several
    // mid-churn snapshots too, but that is scheduling-dependent.
    ASSERT_GE(observed.size(), 1u);

    // The converged v1 snapshot must be among the observations (the
    // sampler pins before any churn step can retire it... it may have
    // missed it; check the batch-converged time is <= every sample).
    const sim::Time t0 = batch_converged_time(spec, kSeed);
    EXPECT_GE(observed.begin()->first, t0);

    // Verify a bounded sample: first, last, and up to three middles.
    std::vector<std::pair<sim::Time, std::uint64_t>> picks;
    picks.push_back(*observed.begin());
    picks.push_back(*observed.rbegin());
    std::size_t i = 0;
    const std::size_t stride = observed.size() / 4 + 1;
    for (const auto& sample : observed) {
      if (++i % stride == 0) picks.push_back(sample);
    }
    for (const auto& [at, fp] : picks) {
      EXPECT_EQ(batch_fingerprint_at(spec, kSeed, at), fp)
          << "virtual_time=" << at;
    }
  }
}

TEST(RouteService, StuckReaderBoundsResidentSnapshotsAndDefers) {
  runner::ScenarioSpec spec = serve_tiny(ibgp::IbgpMode::kTbrr);
  spec.serve.max_resident_snapshots = 3;
  RouteService service{spec, 11};
  // Pin BEFORE the writer starts (live is still null, so the guard
  // holds no snapshot): on a 1-CPU host pinning after start() races the
  // writer, which can replay the whole horizon in its first quantum.
  RouteService::Reader stuck{service};
  std::optional<RouteService::Reader::PinGuard> stuck_pin;
  stuck_pin.emplace(stuck);
  service.start();

  while (!service.done()) std::this_thread::sleep_for(2ms);
  ServiceStats stats = service.stats();
  // cap=3 => at most cap-1 = 2 retired snapshots can sit unreclaimable
  // (live + new + 1 retiree reaches the cap), then every further
  // publish defers. v1 + two more publishes fit under that bound.
  EXPECT_LE(stats.retired_peak, 2u);
  EXPECT_LE(stats.retired_pending, 2u);
  EXPECT_GT(stats.publishes_deferred, 0u);
  EXPECT_LE(stats.publishes, 3u);
  // The live snapshot stays fully readable for other readers.
  {
    RouteService::Reader reader{service};
    const RouteService::Reader::PinGuard live{reader};
    ASSERT_TRUE(live);
    EXPECT_GE(live->version, 1u);
    EXPECT_GE(live->router_ids.size(), 1u);
  }

  stuck_pin.reset();
  // The parked writer reclaims once the pin is gone.
  const auto deadline = std::chrono::steady_clock::now() + 2s;
  while (service.stats().retired_pending > 0 &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(2ms);
  }
  EXPECT_EQ(service.stats().retired_pending, 0u);
  service.stop();
}

TEST(RouteService, ServeTrialReportsAndFinalStateMatchesBatch) {
  const runner::ScenarioSpec spec = serve_tiny(ibgp::IbgpMode::kDual);
  constexpr std::uint64_t kSeed = 12;
  ServeTrialOptions opt;
  opt.readers = 2;
  opt.lookup_batch = 16;
  const ServeReport report = run_serve_trial(spec, kSeed, opt);

  EXPECT_GT(report.lookups, 0u);
  EXPECT_GT(report.lookups_per_sec, 0.0);
  EXPECT_GE(report.publishes, 2u);
  EXPECT_GE(report.final_version, report.publishes);
  EXPECT_NEAR(report.virtual_seconds, spec.serve.churn_seconds, 1e-6);
  EXPECT_GT(report.peak_rss_kb, 0);

  const sim::Time t_end = batch_converged_time(spec, kSeed) +
                          sim::sec_f(spec.serve.churn_seconds);
  EXPECT_EQ(report.final_fingerprint,
            batch_fingerprint_at(spec, kSeed, t_end));
}

TEST(RouteService, LookupBatchAnswersUnderOneSnapshotAndMatchesSingleShot) {
  const runner::ScenarioSpec spec = serve_tiny(ibgp::IbgpMode::kAbrr);
  RouteService service{spec, 7};
  service.start();
  RouteService::Reader reader{service};

  // Probe plan from the service-wide stable views.
  std::shared_ptr<const bgp::LpmIndex> index;
  std::vector<bgp::RouterId> routers;
  {
    const RouteService::Reader::PinGuard pin{reader};
    index = pin->index;
    routers = pin->router_ids;
  }
  std::vector<LookupRequest> reqs;
  std::uint32_t probe = 0x9e3779b9u;
  for (std::size_t i = 0; i < 64; ++i) {
    probe = probe * 2654435761u + 12345;
    const bgp::Ipv4Prefix& p = index->prefix_at(probe % index->size());
    reqs.push_back(LookupRequest{routers[i % routers.size()],
                                 p.first() | (probe & (p.last() - p.first()))});
  }

  std::vector<LookupResponse> resps(reqs.size());
  const BatchResult res = reader.lookup_batch(reqs, resps);
  EXPECT_GE(res.snapshot_version, 1u);
  EXPECT_GT(res.hits, 0u);  // hit-biased probes against a converged bed

  std::uint64_t hits = 0;
  for (const LookupResponse& r : resps) {
    // One pin, one snapshot: every response carries the batch's version.
    EXPECT_EQ(r.snapshot_version, res.snapshot_version);
    EXPECT_EQ(r.fingerprint, res.fingerprint);
    hits += r.hit;
  }
  EXPECT_EQ(hits, res.hits);

  // Telemetry cannot desync: one histogram sample per batch, counts
  // advance by the batch size.
  EXPECT_EQ(reader.lookups(), reqs.size());
  EXPECT_EQ(reader.latency_hist().count(), 1u);

  // After the horizon the snapshot is stable, so single-shot lookups
  // (a batch of one) must reproduce the batch responses exactly.
  while (!service.done()) std::this_thread::sleep_for(2ms);
  const auto deadline = std::chrono::steady_clock::now() + 10s;
  while (!service.horizon_published() &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(2ms);
  }
  ASSERT_TRUE(service.horizon_published());
  reader.lookup_batch(reqs, resps);
  for (std::size_t i = 0; i < reqs.size(); ++i) {
    EXPECT_EQ(reader.lookup(reqs[i].router, reqs[i].addr), resps[i]);
  }
  service.stop();
}

TEST(RouteService, RejectsInvalidServeSpecs) {
  {
    runner::ScenarioSpec spec = serve_tiny(ibgp::IbgpMode::kAbrr);
    spec.fault.enabled = true;
    EXPECT_THROW((RouteService{spec, 1}), std::invalid_argument);
  }
  {
    runner::ScenarioSpec spec = serve_tiny(ibgp::IbgpMode::kAbrr);
    spec.serve.publish_period_seconds = 0;
    EXPECT_THROW((RouteService{spec, 1}), std::invalid_argument);
  }
  {
    runner::ScenarioSpec spec = serve_tiny(ibgp::IbgpMode::kAbrr);
    spec.serve.max_resident_snapshots = 1;
    EXPECT_THROW((RouteService{spec, 1}), std::invalid_argument);
  }
  {
    runner::ScenarioSpec spec = serve_tiny(ibgp::IbgpMode::kAbrr);
    spec.use_prefix_index = false;
    EXPECT_THROW((RouteService{spec, 1}), std::invalid_argument);
  }
}

}  // namespace
}  // namespace abrr::serve
