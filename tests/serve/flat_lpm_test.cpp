// Property tests for the flat LPM directory (bgp/flat_lpm.h): on any
// static table, FlatLpm must answer longest_match exactly like the
// reference PrefixTrie, including /25+ overflow lists, duplicate
// prefixes, and a default route; LpmIndex's leaf/parent structure must
// match a brute-force containment scan.
#include "bgp/flat_lpm.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <utility>
#include <vector>

#include "bgp/prefix_trie.h"
#include "sim/random.h"

namespace abrr::bgp {
namespace {

std::vector<std::pair<Ipv4Prefix, int>> random_table(sim::Rng& rng, int n,
                                                     int min_len,
                                                     int max_len) {
  std::vector<std::pair<Ipv4Prefix, int>> table;
  table.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    const auto addr =
        static_cast<Ipv4Addr>(rng.uniform_int(0, 0xFFFFFFFFll));
    const auto len =
        static_cast<std::uint8_t>(rng.uniform_int(min_len, max_len));
    table.emplace_back(Ipv4Prefix{addr, len}, i);
  }
  return table;
}

/// Flat and trie answers must agree on random probes plus every table
/// prefix's first/last address (the fill-boundary corner cases).
void expect_matches_trie(const std::vector<std::pair<Ipv4Prefix, int>>& table,
                         int probes, std::uint64_t probe_seed) {
  const FlatLpm<int> flat{table};
  PrefixTrie<int> trie;
  for (const auto& [prefix, value] : table) trie.insert(prefix, value);

  const auto check = [&](Ipv4Addr addr) {
    const auto expected = trie.longest_match(addr);
    const auto got = flat.longest_match(addr);
    ASSERT_EQ(expected.has_value(), got.has_value()) << "addr=" << addr;
    if (expected) {
      EXPECT_EQ(expected->first, got->first) << "addr=" << addr;
      EXPECT_EQ(*expected->second, *got->second) << "addr=" << addr;
    }
  };

  sim::Rng rng{probe_seed};
  for (int i = 0; i < probes; ++i) {
    check(static_cast<Ipv4Addr>(rng.uniform_int(0, 0xFFFFFFFFll)));
  }
  for (const auto& [prefix, value] : table) {
    check(prefix.first());
    check(prefix.last());
  }
}

TEST(FlatLpm, MatchesTrieOnMixedLengths) {
  sim::Rng rng{7};
  expect_matches_trie(random_table(rng, 4000, 8, 24), 20000, 17);
}

TEST(FlatLpm, MatchesTrieWithOverflowPrefixes) {
  sim::Rng rng{8};
  // /25../32 exercise the per-/24 overflow lists, mixed with their
  // covering shorter prefixes.
  expect_matches_trie(random_table(rng, 3000, 16, 32), 20000, 18);
}

TEST(FlatLpm, MatchesTrieOnPureHostRoutes) {
  sim::Rng rng{9};
  expect_matches_trie(random_table(rng, 500, 25, 32), 10000, 19);
}

TEST(FlatLpm, DefaultRouteCoversEverything) {
  std::vector<std::pair<Ipv4Prefix, int>> table;
  table.emplace_back(Ipv4Prefix{0, 0}, 1);            // 0.0.0.0/0
  table.emplace_back(Ipv4Prefix{0x0A000000, 8}, 2);   // 10.0.0.0/8
  table.emplace_back(Ipv4Prefix{0x0A010000, 16}, 3);  // 10.1.0.0/16
  const FlatLpm<int> flat{table};
  EXPECT_EQ(*flat.longest_match(0xFFFFFFFF)->second, 1);
  EXPECT_EQ(*flat.longest_match(0x0AFF0000)->second, 2);
  EXPECT_EQ(*flat.longest_match(0x0A01FF00)->second, 3);
  expect_matches_trie(table, 5000, 20);
}

TEST(FlatLpm, DuplicatePrefixesLastValueWins) {
  std::vector<std::pair<Ipv4Prefix, int>> table{
      {Ipv4Prefix{0x0A000000, 16}, 1},
      {Ipv4Prefix{0x0B000000, 16}, 2},
      {Ipv4Prefix{0x0A000000, 16}, 3},  // duplicate; must win
  };
  const FlatLpm<int> flat{table};
  EXPECT_EQ(*flat.longest_match(0x0A000001)->second, 3);
  EXPECT_EQ(*flat.longest_match(0x0B000001)->second, 2);
  expect_matches_trie(table, 1000, 21);
}

TEST(FlatLpm, EmptyTableAndDefaultConstructed) {
  const FlatLpm<int> empty{std::vector<std::pair<Ipv4Prefix, int>>{}};
  EXPECT_FALSE(empty.longest_match(0x0A000000).has_value());
  const FlatLpm<int> def;
  EXPECT_FALSE(def.longest_match(0x0A000000).has_value());
  const LpmIndex idx;
  EXPECT_EQ(idx.leaf_of(0), LpmIndex::kNoSlot);
  EXPECT_TRUE(idx.empty());
}

/// leaf_of == the longest containing prefix, parent_of == the longest
/// STRICTLY shorter containing prefix — checked against brute force on
/// a deduplicated universe.
TEST(LpmIndex, LeafAndParentMatchBruteForce) {
  sim::Rng rng{11};
  std::vector<Ipv4Prefix> universe;
  for (int i = 0; i < 600; ++i) {
    const auto addr =
        static_cast<Ipv4Addr>(rng.uniform_int(0, 0xFFFFFFFFll));
    const Ipv4Prefix p{addr,
                       static_cast<std::uint8_t>(rng.uniform_int(6, 30))};
    bool dup = false;
    for (const Ipv4Prefix& q : universe) dup = dup || q == p;
    if (!dup) universe.push_back(p);
  }
  const LpmIndex index{universe};
  ASSERT_EQ(index.size(), universe.size());

  for (int i = 0; i < 20000; ++i) {
    const auto addr =
        static_cast<Ipv4Addr>(rng.uniform_int(0, 0xFFFFFFFFll));
    std::uint32_t best = LpmIndex::kNoSlot;
    for (std::uint32_t s = 0; s < universe.size(); ++s) {
      if (!universe[s].contains(addr)) continue;
      if (best == LpmIndex::kNoSlot ||
          universe[s].length() > universe[best].length()) {
        best = s;
      }
    }
    ASSERT_EQ(index.leaf_of(addr), best) << "addr=" << addr;
  }

  for (std::uint32_t s = 0; s < universe.size(); ++s) {
    std::uint32_t expected = LpmIndex::kNoSlot;
    for (std::uint32_t t = 0; t < universe.size(); ++t) {
      if (t == s || !universe[t].contains(universe[s]) ||
          universe[t].length() >= universe[s].length()) {
        continue;
      }
      if (expected == LpmIndex::kNoSlot ||
          universe[t].length() > universe[expected].length()) {
        expected = t;
      }
    }
    EXPECT_EQ(index.parent_of(s), expected)
        << universe[s].to_string() << " slot=" << s;
  }
}

TEST(LpmIndex, DuplicatesShareTheFirstSlot) {
  const std::vector<Ipv4Prefix> universe{
      Ipv4Prefix{0x0A000000, 16},
      Ipv4Prefix{0x0A000000, 8},
      Ipv4Prefix{0x0A000000, 16},  // duplicate of slot 0
  };
  const LpmIndex index{universe};
  EXPECT_EQ(index.leaf_of(0x0A000001), 0u);
  // The duplicate aliases the canonical slot's parent.
  EXPECT_EQ(index.parent_of(0), 1u);
  EXPECT_EQ(index.parent_of(2), 1u);
  EXPECT_EQ(index.parent_of(1), LpmIndex::kNoSlot);
}

}  // namespace
}  // namespace abrr::bgp
