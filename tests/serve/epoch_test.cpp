// Epoch-based reclamation (serve/epoch.h): retired objects are freed
// exactly once, never while any reader still pins an epoch that could
// reference them, and always once no reader can.
#include "serve/epoch.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <thread>
#include <vector>

namespace abrr::serve {
namespace {

/// Counts destructions so tests can assert exactly-once reclamation.
struct Probe {
  explicit Probe(int* counter) : counter(counter) {}
  ~Probe() { ++*counter; }
  int* counter;
};

TEST(EpochDomain, PinAnnouncesAndUnpinClears) {
  EpochDomain d{4};
  const std::size_t slot = d.register_reader();
  EXPECT_EQ(d.min_pinned(), EpochDomain::kQuiescent);
  const std::uint64_t e = d.pin(slot);
  EXPECT_EQ(e, d.current());
  EXPECT_EQ(d.min_pinned(), e);
  d.unpin(slot);
  EXPECT_EQ(d.min_pinned(), EpochDomain::kQuiescent);
  d.unregister_reader(slot);
}

TEST(EpochDomain, MinPinnedIsTheOldestReader) {
  EpochDomain d{4};
  const std::size_t a = d.register_reader();
  const std::size_t b = d.register_reader();
  const std::uint64_t ea = d.pin(a);
  d.advance();
  const std::uint64_t eb = d.pin(b);
  EXPECT_LT(ea, eb);
  EXPECT_EQ(d.min_pinned(), ea);
  d.unpin(a);
  EXPECT_EQ(d.min_pinned(), eb);
  d.unpin(b);
  d.unregister_reader(a);
  d.unregister_reader(b);
}

TEST(EpochDomain, SlotExhaustionThrowsAndUnregisterFrees) {
  EpochDomain d{2};
  const std::size_t a = d.register_reader();
  const std::size_t b = d.register_reader();
  EXPECT_THROW(d.register_reader(), std::runtime_error);
  d.unregister_reader(a);
  EXPECT_NO_THROW(d.register_reader());
  d.unregister_reader(b);
}

TEST(RetireBin, ReclaimFreesOnlyOlderTagsExactlyOnce) {
  int freed = 0;
  {
    RetireBin<Probe> bin;
    bin.retire(1, std::make_unique<const Probe>(&freed));
    bin.retire(2, std::make_unique<const Probe>(&freed));
    bin.retire(3, std::make_unique<const Probe>(&freed));
    EXPECT_EQ(bin.pending(), 3u);
    EXPECT_EQ(bin.reclaim(2), 1u);  // frees tag 1 only
    EXPECT_EQ(freed, 1);
    EXPECT_EQ(bin.reclaim(2), 0u);  // idempotent
    EXPECT_EQ(freed, 1);
    EXPECT_EQ(bin.reclaim(EpochDomain::kQuiescent), 2u);
    EXPECT_EQ(freed, 3);
    bin.retire(4, std::make_unique<const Probe>(&freed));
  }  // destruction frees the leftover exactly once
  EXPECT_EQ(freed, 4);
}

TEST(RetireBin, PinnedEpochBlocksReclamation) {
  EpochDomain d{2};
  RetireBin<Probe> bin;
  int freed = 0;

  const std::size_t slot = d.register_reader();
  const std::uint64_t e = d.pin(slot);  // reader enters at epoch e

  // Writer retires the previous object at the CURRENT epoch, then
  // advances — exactly the publish protocol.
  bin.retire(d.current(), std::make_unique<const Probe>(&freed));
  d.advance();
  EXPECT_EQ(bin.reclaim(d.min_pinned()), 0u);  // tag == e, reader pins e
  EXPECT_EQ(freed, 0);

  d.unpin(slot);
  EXPECT_EQ(bin.reclaim(d.min_pinned()), 1u);
  EXPECT_EQ(freed, 1);
  d.unregister_reader(slot);
}

/// The full writer/reader hand-off under real threads: one writer
/// publishing via pointer exchange + retire/advance/reclaim, two
/// readers pinning around every access. TSan (tsan-serve preset) checks
/// the ordering; the destructor counter checks exactly-once frees.
TEST(EpochDomain, ConcurrentPublishReclaimSmoke) {
  constexpr int kRounds = 2000;
  EpochDomain domain{4};
  RetireBin<std::vector<std::uint64_t>> bin;
  std::atomic<const std::vector<std::uint64_t>*> live{
      new std::vector<std::uint64_t>(8, 0)};
  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> total_checks{0};

  std::vector<std::thread> readers;
  for (int r = 0; r < 2; ++r) {
    readers.emplace_back([&domain, &live, &stop, &total_checks] {
      const std::size_t slot = domain.register_reader();
      while (!stop.load(std::memory_order_acquire)) {
        domain.pin(slot);
        const auto* snap = live.load(std::memory_order_acquire);
        // Every cell carries the version; a torn or freed snapshot
        // would break the all-equal invariant (and trip ASan/TSan).
        for (std::size_t i = 1; i < snap->size(); ++i) {
          ASSERT_EQ((*snap)[i], (*snap)[0]);
        }
        domain.unpin(slot);
        total_checks.fetch_add(1, std::memory_order_relaxed);
      }
      domain.unregister_reader(slot);
    });
  }

  std::size_t reclaimed = 0;
  for (int v = 1; v <= kRounds; ++v) {
    const auto* old = live.exchange(
        new std::vector<std::uint64_t>(8, static_cast<std::uint64_t>(v)),
        std::memory_order_seq_cst);
    bin.retire(domain.current(),
               std::unique_ptr<const std::vector<std::uint64_t>>{old});
    domain.advance();
    reclaimed += bin.reclaim(domain.min_pinned());
    // One CPU: hand the readers a chance to interleave with publishes.
    if (v % 16 == 0) std::this_thread::yield();
  }
  // Keep the final snapshot live until the readers have demonstrably
  // overlapped the publish stream (the whole point of the smoke test).
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::seconds(10);
  while (total_checks.load(std::memory_order_relaxed) < 100 &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::yield();
  }
  stop.store(true, std::memory_order_release);
  for (auto& t : readers) t.join();
  reclaimed += bin.reclaim(domain.min_pinned());
  EXPECT_GT(total_checks.load(std::memory_order_relaxed), 0u);
  EXPECT_EQ(reclaimed, static_cast<std::size_t>(kRounds));
  EXPECT_EQ(bin.pending(), 0u);
  delete live.exchange(nullptr, std::memory_order_acq_rel);
}

}  // namespace
}  // namespace abrr::serve
