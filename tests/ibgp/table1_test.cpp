// Table 1 of the paper, row by row: who advertises what to whom.
#include <gtest/gtest.h>

#include <map>
#include <memory>

#include "core/address_partition.h"
#include "ibgp/speaker.h"

namespace abrr::ibgp {
namespace {

using bgp::Ipv4Prefix;
using bgp::Route;
using bgp::RouteBuilder;

const Ipv4Prefix kPfx = Ipv4Prefix::parse("10.0.0.0/8");
constexpr RouterId kNbr = 0x80000001;

// TBRR: data-plane TRR 11 (cluster 1) with client 1; TRR 21 (cluster 2)
// with client 2.
class Table1Tbrr : public ::testing::Test {
 protected:
  Speaker& add(RouterId id, std::uint32_t cluster, bool data_plane = true) {
    SpeakerConfig cfg;
    cfg.id = id;
    cfg.asn = 65000;
    cfg.mode = IbgpMode::kTbrr;
    cfg.cluster_id = cluster;
    cfg.data_plane = data_plane;
    cfg.mrai = 0;
    cfg.proc_delay = sim::msec(1);
    auto s = std::make_unique<Speaker>(cfg, sched, net);
    auto& ref = *s;
    speakers.emplace(id, std::move(s));
    return ref;
  }
  Speaker& at(RouterId id) { return *speakers.at(id); }

  void Build() {
    add(1, 0);
    add(2, 0);
    add(11, 1);  // data-plane TRR: can originate and hold eBGP sessions
    add(21, 2);
    net.connect(1, 11, sim::msec(1));
    at(1).add_peer(PeerInfo{.id = 11, .reflector_tbrr = true});
    at(11).add_peer(PeerInfo{.id = 1, .rr_client = true});
    net.connect(2, 21, sim::msec(1));
    at(2).add_peer(PeerInfo{.id = 21, .reflector_tbrr = true});
    at(21).add_peer(PeerInfo{.id = 2, .rr_client = true});
    net.connect(11, 21, sim::msec(1));
    at(11).add_peer(PeerInfo{.id = 21, .rr_peer = true});
    at(21).add_peer(PeerInfo{.id = 11, .rr_peer = true});
    for (auto& [id, s] : speakers) s->start();
  }

  sim::Scheduler sched;
  sim::Rng rng{1};
  net::Network net{sched, rng};
  std::map<RouterId, std::unique_ptr<Speaker>> speakers;
};

TEST_F(Table1Tbrr, TrrAdvertisesItsOwnEbgpRoutesEverywhere) {
  // Rows "TRR -> Client (3)" and "TRR -> TRR (2)": best routes received
  // from eBGP neighbors.
  Build();
  at(11).inject_ebgp(kNbr, RouteBuilder{kPfx}.as_path({7018}).build());
  ASSERT_TRUE(sched.run_to_quiescence(100000));
  // Own client got it, the other TRR got it, the remote client got it.
  EXPECT_NE(at(1).loc_rib().best(kPfx), nullptr);
  EXPECT_EQ(at(21).adj_rib_in().peer_size(11), 1u);
  ASSERT_NE(at(2).loc_rib().best(kPfx), nullptr);
  EXPECT_EQ(at(2).loc_rib().best(kPfx)->egress(), 11u);
}

TEST_F(Table1Tbrr, TrrAdvertisesLocallyOriginatedEverywhere) {
  // Rows "TRR -> Client (4)" and "TRR -> TRR (3)".
  Build();
  at(11).originate(RouteBuilder{kPfx}.origin(bgp::Origin::kIgp).build());
  ASSERT_TRUE(sched.run_to_quiescence(100000));
  EXPECT_NE(at(1).loc_rib().best(kPfx), nullptr);
  EXPECT_NE(at(2).loc_rib().best(kPfx), nullptr);
  EXPECT_EQ(at(2).loc_rib().best(kPfx)->via, bgp::LearnedVia::kIbgp);
}

TEST_F(Table1Tbrr, TrrExportsAllBestRoutesToEbgpNotReturningToSender) {
  // Row "TRR -> eBGP Neighbor: all best routes (not returned to sender)".
  Build();
  std::vector<std::pair<RouterId, bool>> sends;  // (neighbor, announce?)
  at(11).set_ebgp_send_hook(
      [&](RouterId n, const Ipv4Prefix&, const std::optional<Route>& r) {
        sends.emplace_back(n, r.has_value());
      });
  at(11).add_ebgp_neighbor(kNbr, 7018);
  at(11).add_ebgp_neighbor(kNbr + 1, 1299);
  at(11).inject_ebgp(kNbr, RouteBuilder{kPfx}.as_path({7018}).build());
  ASSERT_TRUE(sched.run_to_quiescence(100000));
  ASSERT_EQ(sends.size(), 1u);
  EXPECT_EQ(sends.front().first, kNbr + 1);  // never back to the sender
  EXPECT_TRUE(sends.front().second);
}

TEST_F(Table1Tbrr, ClientAdvertisesOnlyOtherLearnedBests) {
  // Rows "Client -> TRR": eBGP-learned or locally originated only.
  Build();
  at(2).inject_ebgp(kNbr, RouteBuilder{kPfx}.as_path({7018}).build());
  sched.run_to_quiescence(100000);
  // Client 1's best is iBGP-learned: nothing goes up from it.
  ASSERT_NE(at(1).loc_rib().best(kPfx), nullptr);
  EXPECT_EQ(at(1).rib_out_size(), 0u);
  EXPECT_EQ(at(11).adj_rib_in().peer_size(1), 0u);
}

// ABRR: clients 1, 2; ARRs 10 (AP 0), 20 (AP 1), both pure control
// plane, cross-peered as each other's clients.
class Table1Abrr : public ::testing::Test {
 protected:
  Table1Abrr() : scheme(core::PartitionScheme::uniform(2)) {}

  Speaker& add(RouterId id, std::vector<ApId> managed) {
    SpeakerConfig cfg;
    cfg.id = id;
    cfg.asn = 65000;
    cfg.mode = IbgpMode::kAbrr;
    cfg.ap_of = scheme.mapper();
    cfg.managed_aps = managed;
    cfg.data_plane = managed.empty();
    cfg.mrai = 0;
    cfg.proc_delay = sim::msec(1);
    auto s = std::make_unique<Speaker>(cfg, sched, net);
    auto& ref = *s;
    speakers.emplace(id, std::move(s));
    return ref;
  }
  Speaker& at(RouterId id) { return *speakers.at(id); }

  void Build() {
    add(1, {});
    add(2, {});
    add(10, {0});
    add(20, {1});
    for (RouterId c : {1u, 2u}) {
      net.connect(c, 10, sim::msec(1));
      at(10).add_peer(PeerInfo{.id = c, .rr_client = true});
      at(c).add_peer(PeerInfo{.id = 10, .reflector_for = {0}});
      net.connect(c, 20, sim::msec(1));
      at(20).add_peer(PeerInfo{.id = c, .rr_client = true});
      at(c).add_peer(PeerInfo{.id = 20, .reflector_for = {1}});
    }
    net.connect(10, 20, sim::msec(1));
    at(10).add_peer(
        PeerInfo{.id = 20, .rr_client = true, .reflector_for = {1}});
    at(20).add_peer(
        PeerInfo{.id = 10, .rr_client = true, .reflector_for = {0}});
    for (auto& [id, s] : speakers) s->start();
  }

  core::PartitionScheme scheme;
  sim::Scheduler sched;
  sim::Rng rng{1};
  net::Network net{sched, rng};
  std::map<RouterId, std::unique_ptr<Speaker>> speakers;
};

TEST_F(Table1Abrr, ClientOriginatesIntoTheRightApOnly) {
  // Row "Client -> ARR (2): best routes locally originated, AP only".
  Build();
  at(1).originate(RouteBuilder{kPfx}.origin(bgp::Origin::kIgp).build());
  ASSERT_TRUE(sched.run_to_quiescence(100000));
  EXPECT_EQ(at(10).adj_rib_in().peer_size(1), 1u);  // AP 0 covers 10/8
  EXPECT_EQ(at(20).adj_rib_in().peer_size(1), 0u);
  ASSERT_NE(at(2).loc_rib().best(kPfx), nullptr);
}

TEST_F(Table1Abrr, ArrNeverForwardsReflectionsToFellowArrsArrRole) {
  // Row "ARR -> ARR: not applicable": ARR 20 receives AP-0 reflections
  // as a CLIENT of ARR 10 and must not re-reflect them anywhere.
  Build();
  at(1).inject_ebgp(kNbr, RouteBuilder{kPfx}.as_path({7018}).build());
  ASSERT_TRUE(sched.run_to_quiescence(100000));
  // ARR 20 stored the route in its client role (unmanaged)...
  EXPECT_EQ(at(20).adj_rib_in().peer_size(10), 1u);
  // ...but its own reflection groups stayed empty (10/8 is not AP 1).
  EXPECT_EQ(at(20).rib_out_size(), 0u);
}

TEST_F(Table1Abrr, ClientExportsAllBestsToEbgpNeighbors) {
  // Row "Client -> eBGP Neighbor: all best routes (not returned to
  // sender)": including iBGP-learned bests.
  Build();
  std::vector<RouterId> announced_to;
  at(2).set_ebgp_send_hook(
      [&](RouterId n, const Ipv4Prefix&, const std::optional<Route>& r) {
        if (r) announced_to.push_back(n);
      });
  at(2).add_ebgp_neighbor(0x90000001, 6453);
  at(1).inject_ebgp(kNbr, RouteBuilder{kPfx}.as_path({7018}).build());
  ASSERT_TRUE(sched.run_to_quiescence(100000));
  ASSERT_EQ(announced_to.size(), 1u);
  EXPECT_EQ(announced_to.front(), 0x90000001u);
}

}  // namespace
}  // namespace abrr::ibgp
