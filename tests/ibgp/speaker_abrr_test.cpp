// Address-Based Route Reflection: the §2.1 protocol per Table 1.
#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <vector>

#include "core/address_partition.h"
#include "ibgp/speaker.h"

namespace abrr::ibgp {
namespace {

using bgp::Ipv4Prefix;
using bgp::LearnedVia;
using bgp::Route;
using bgp::RouteBuilder;

// Two APs (low half / high half of the address space).
const Ipv4Prefix kLow = Ipv4Prefix::parse("10.0.0.0/8");    // AP 0
const Ipv4Prefix kHigh = Ipv4Prefix::parse("200.0.0.0/8");  // AP 1
constexpr RouterId kNbr = 0x80000001;

// Clients 1..3; ARRs 91 (AP 0), 92 (AP 0, redundant), 93 (AP 1).
class AbrrTest : public ::testing::Test {
 protected:
  AbrrTest() : scheme(core::PartitionScheme::uniform(2)) {}

  Speaker& add(RouterId id, std::vector<ApId> managed,
               std::optional<bool> data_plane = {}) {
    SpeakerConfig cfg;
    cfg.id = id;
    cfg.asn = 65000;
    cfg.mode = IbgpMode::kAbrr;
    cfg.ap_of = scheme.mapper();
    cfg.managed_aps = managed;
    cfg.data_plane = data_plane.value_or(managed.empty());
    cfg.mrai = 0;
    cfg.proc_delay = sim::msec(1);
    auto s = std::make_unique<Speaker>(cfg, sched, net);
    auto& ref = *s;
    speakers.emplace(id, std::move(s));
    if (!managed.empty()) arr_aps[id] = managed;
    return ref;
  }

  void wire(RouterId client, RouterId arr) {
    net.connect(client, arr, sim::msec(2));
    at(arr).add_peer(PeerInfo{.id = client, .rr_client = true});
    PeerInfo info;
    info.id = arr;
    info.reflector_for = arr_aps.at(arr);
    if (arr_aps.count(client) != 0) info.rr_client = true;
    at(client).add_peer(info);
  }

  void Build() {
    add(1, {});
    add(2, {});
    add(3, {});
    add(91, {0});
    add(92, {0});
    add(93, {1});
    for (const RouterId client : {1u, 2u, 3u}) {
      for (const RouterId arr : {91u, 92u, 93u}) wire(client, arr);
    }
    // ARRs are clients of ARRs for other APs.
    wire(91, 93);
    wire(92, 93);
    wire(93, 91);
    wire(93, 92);
    for (auto& [id, s] : speakers) s->start();
  }

  Speaker& at(RouterId id) { return *speakers.at(id); }

  Route route(const Ipv4Prefix& pfx, std::vector<bgp::Asn> path,
              std::optional<std::uint32_t> med = {}) {
    RouteBuilder b{pfx};
    b.local_pref(100).as_path(bgp::AsPath{std::move(path)});
    if (med) b.med(*med);
    return b.build();
  }

  static Ipv4Prefix unrelated_prefix() {
    return Ipv4Prefix::parse("10.9.0.0/16");
  }

  core::PartitionScheme scheme;
  sim::Scheduler sched;
  sim::Rng rng{1};
  net::Network net{sched, rng};
  std::map<RouterId, std::unique_ptr<Speaker>> speakers;
  std::map<RouterId, std::vector<ApId>> arr_aps;
};

TEST_F(AbrrTest, ClientAdvertisesOnlyToResponsibleArrs) {
  Build();
  at(1).inject_ebgp(kNbr, route(kLow, {65001}));
  ASSERT_TRUE(sched.run_to_quiescence(1000000));
  // AP 0 ARRs hold the route; the AP 1 ARR heard nothing from client 1.
  EXPECT_EQ(at(91).adj_rib_in().peer_size(1), 1u);
  EXPECT_EQ(at(92).adj_rib_in().peer_size(1), 1u);
  EXPECT_EQ(at(93).adj_rib_in().peer_size(1), 0u);
}

TEST_F(AbrrTest, ReflectionReachesAllClientsWithTwoIbgpHops) {
  Build();
  at(1).inject_ebgp(kNbr, route(kLow, {65001}));
  ASSERT_TRUE(sched.run_to_quiescence(1000000));
  for (const RouterId client : {2u, 3u}) {
    const Route* best = at(client).loc_rib().best(kLow);
    ASSERT_NE(best, nullptr) << client;
    EXPECT_EQ(best->egress(), 1u);
    // Reflected exactly once: the ABRR bit is set, no cluster list grew.
    EXPECT_TRUE(
        best->attrs->has_ext_community(bgp::kAbrrReflectedCommunity));
  }
}

TEST_F(AbrrTest, ArrReflectsFullBestAsLevelSet) {
  Build();
  // Two AS-level ties from different clients.
  at(1).inject_ebgp(kNbr, route(kLow, {65001}));
  at(2).inject_ebgp(kNbr + 1, route(kLow, {65002}));
  ASSERT_TRUE(sched.run_to_quiescence(1000000));
  const auto* out = at(91).out_group(Speaker::arr_group(0));
  ASSERT_NE(out, nullptr);
  const auto* set = out->get(kLow);
  ASSERT_NE(set, nullptr);
  EXPECT_EQ(set->size(), 2u);  // both ties advertised (add-paths)
}

TEST_F(AbrrTest, ArrDoesNotSelectByIgp) {
  Build();
  // Give ARR 91 a strongly biased IGP view; the best AS-level set must
  // be unaffected (ARRs stop after step 4) - placement freedom.
  at(91).set_igp([](RouterId nh) -> std::int64_t {
    return nh == 1 ? 1 : 1000;
  });
  at(1).inject_ebgp(kNbr, route(kLow, {65001}));
  at(2).inject_ebgp(kNbr + 1, route(kLow, {65002}));
  ASSERT_TRUE(sched.run_to_quiescence(1000000));
  EXPECT_EQ(at(91).out_group(Speaker::arr_group(0))->get(kLow)->size(), 2u);
}

TEST_F(AbrrTest, ClientDecidesWithItsOwnIgpVantage) {
  Build();
  at(3).set_igp([](RouterId nh) -> std::int64_t {
    return nh == 2 ? 5 : 50;  // egress 2 is closer for client 3
  });
  at(1).inject_ebgp(kNbr, route(kLow, {65001}));
  at(2).inject_ebgp(kNbr + 1, route(kLow, {65002}));
  ASSERT_TRUE(sched.run_to_quiescence(1000000));
  // Data-plane clients keep the whole best-AS-level set per ARR session
  // (the MED-witness storage; see SpeakerConfig).
  EXPECT_EQ(at(3).adj_rib_in().peer_size(91), 2u);
  EXPECT_EQ(at(3).adj_rib_in().peer_size(92), 2u);
  // The best follows the client's own hot-potato preference.
  const Route* best = at(3).loc_rib().best(kLow);
  ASSERT_NE(best, nullptr);
  EXPECT_EQ(best->egress(), 2u);
}

TEST_F(AbrrTest, ControlPlaneClientsReduceToOneRoutePerArrSession) {
  // §3.4 / Appendix A: an ARR in its client role keeps ONE best route
  // per redundant ARR for each unmanaged prefix.
  Build();
  at(1).inject_ebgp(kNbr, route(kLow, {65001}));
  at(2).inject_ebgp(kNbr + 1, route(kLow, {65002}));
  ASSERT_TRUE(sched.run_to_quiescence(1000000));
  // ARR 93 manages AP 1; kLow is unmanaged for it, learned from 91/92.
  EXPECT_EQ(at(93).adj_rib_in().peer_size(91), 1u);
  EXPECT_EQ(at(93).adj_rib_in().peer_size(92), 1u);
}

TEST_F(AbrrTest, ForcedReductionStoresSingleRouteOnDataPlaneClients) {
  // §3.4 ablation switch.
  scheme = core::PartitionScheme::uniform(2);
  SpeakerConfig cfg;
  cfg.id = 3;
  cfg.asn = 65000;
  cfg.mode = IbgpMode::kAbrr;
  cfg.ap_of = scheme.mapper();
  cfg.abrr_force_client_reduction = true;
  cfg.mrai = 0;
  cfg.proc_delay = sim::msec(1);
  speakers.emplace(3, std::make_unique<Speaker>(cfg, sched, net));
  add(1, {});
  add(2, {});
  add(91, {0});
  add(92, {0});
  add(93, {1});
  for (const RouterId client : {1u, 2u, 3u}) {
    for (const RouterId arr : {91u, 92u, 93u}) wire(client, arr);
  }
  wire(91, 93);
  wire(92, 93);
  for (auto& [id, s] : speakers) s->start();

  at(1).inject_ebgp(kNbr, route(kLow, {65001}));
  at(2).inject_ebgp(kNbr + 1, route(kLow, {65002}));
  ASSERT_TRUE(sched.run_to_quiescence(1000000));
  EXPECT_EQ(at(3).adj_rib_in().peer_size(91), 1u);
  EXPECT_EQ(at(3).adj_rib_in().peer_size(92), 1u);
}

TEST_F(AbrrTest, LosingRouteIsWithdrawnByItsClient) {
  Build();
  at(1).inject_ebgp(kNbr, route(kLow, {65001, 65002}));  // longer path
  sched.run_to_quiescence(1000000);
  ASSERT_EQ(at(91).adj_rib_in().peer_size(1), 1u);
  at(2).inject_ebgp(kNbr + 1, route(kLow, {65003}));  // shorter, wins 1-4
  ASSERT_TRUE(sched.run_to_quiescence(1000000));
  // Client 1's best is now iBGP-learned: it withdrew its own route.
  EXPECT_EQ(at(91).adj_rib_in().peer_size(1), 0u);
  // Steady state: the reflected set is exactly the true best AS-level set.
  const auto* set = at(91).out_group(Speaker::arr_group(0))->get(kLow);
  ASSERT_NE(set, nullptr);
  ASSERT_EQ(set->size(), 1u);
  EXPECT_EQ(set->front().egress(), 2u);
}

TEST_F(AbrrTest, SetIsNotReturnedToContributingSender) {
  Build();
  at(1).inject_ebgp(kNbr, route(kLow, {65001}));
  at(2).inject_ebgp(kNbr + 1, route(kLow, {65002}));
  ASSERT_TRUE(sched.run_to_quiescence(1000000));
  // Client 1 contributed one of the two routes: it receives the set
  // minus its own contribution.
  EXPECT_EQ(at(1).adj_rib_in().peer_size(91), 1u);
  const auto routes = at(1).adj_rib_in().routes_for(kLow);
  for (const Route& r : routes) {
    if (r.via == LearnedVia::kIbgp) {
      EXPECT_NE(r.egress(), 1u);
    }
  }
}

TEST_F(AbrrTest, ApPartitionsRibOutByAddress) {
  Build();
  at(1).inject_ebgp(kNbr, route(kLow, {65001}));
  at(1).inject_ebgp(kNbr, route(kHigh, {65001}));
  ASSERT_TRUE(sched.run_to_quiescence(1000000));
  // ARR 91 (AP 0) advertises only the low prefix; ARR 93 only the high.
  EXPECT_EQ(at(91).rib_out_size(), 1u);
  EXPECT_EQ(at(93).rib_out_size(), 1u);
  EXPECT_NE(at(91).out_group(Speaker::arr_group(0))->get(kLow), nullptr);
  EXPECT_NE(at(93).out_group(Speaker::arr_group(1))->get(kHigh), nullptr);
}

TEST_F(AbrrTest, ArrsKeepUnmanagedRoutesAsClients) {
  Build();
  at(1).inject_ebgp(kNbr, route(kHigh, {65001}));
  ASSERT_TRUE(sched.run_to_quiescence(1000000));
  // ARR 91 manages AP 0 but, as a client of ARR 93, keeps one best
  // route for the AP 1 prefix (Appendix A.1 unmanaged routes).
  EXPECT_EQ(at(91).adj_rib_in().peer_size(93), 1u);
}

TEST_F(AbrrTest, MisdirectedClientRouteIsRejected) {
  Build();
  // Deliver a high-AP prefix directly to a low-AP ARR by rewiring the
  // client's view (simulates inconsistent configuration).
  at(1).add_peer(PeerInfo{.id = 91, .reflector_for = {0, 1}});
  at(1).inject_ebgp(kNbr, route(kHigh, {65001}));
  ASSERT_TRUE(sched.run_to_quiescence(1000000));
  EXPECT_GT(at(91).counters().misdirected, 0u);
  // And it never entered 91's reflection state.
  EXPECT_EQ(at(91).rib_out_size(), 0u);
}

TEST_F(AbrrTest, ReflectedBitStopsRereflection) {
  // §2.3.2 gadget: three data-plane routers all believing they are ARRs
  // for AP 0 and that the others are their clients.
  add(1, {0}, true);
  add(2, {0}, true);
  add(3, {0}, true);
  const auto cross = [&](RouterId a, RouterId b) {
    net.connect(a, b, sim::msec(2));
    // Each side thinks the other is a mere client.
    at(a).add_peer(PeerInfo{.id = b, .rr_client = true});
    at(b).add_peer(PeerInfo{.id = a, .rr_client = true});
  };
  cross(1, 2);
  cross(2, 3);
  cross(1, 3);
  for (auto& [id, s] : speakers) s->start();

  at(1).inject_ebgp(kNbr, route(kLow, {65001}));
  // Must converge rather than chase updates around the triangle.
  ASSERT_TRUE(sched.run_to_quiescence(100000));
  EXPECT_GT(at(2).counters().loops_suppressed +
                at(3).counters().loops_suppressed +
                at(1).counters().loops_suppressed,
            0u);
}

TEST_F(AbrrTest, MedOnlySetChangesArePropagated) {
  Build();
  at(1).inject_ebgp(kNbr, route(kLow, {65001}, 10));
  sched.run_to_quiescence(1000000);
  const auto* set0 = at(91).out_group(Speaker::arr_group(0))->get(kLow);
  ASSERT_NE(set0, nullptr);
  EXPECT_EQ(*set0->front().attrs->med, 10u);

  at(1).inject_ebgp(kNbr, route(kLow, {65001}, 30));
  ASSERT_TRUE(sched.run_to_quiescence(1000000));
  const auto* set1 = at(91).out_group(Speaker::arr_group(0))->get(kLow);
  ASSERT_NE(set1, nullptr);
  EXPECT_EQ(*set1->front().attrs->med, 30u);
  // Clients saw the refreshed MED too.
  const auto routes = at(3).adj_rib_in().routes_for(kLow);
  ASSERT_FALSE(routes.empty());
  EXPECT_EQ(*routes.front().attrs->med, 30u);
}

TEST_F(AbrrTest, WithdrawEmptiesReflectedState) {
  Build();
  at(1).inject_ebgp(kNbr, route(kLow, {65001}));
  sched.run_to_quiescence(1000000);
  at(1).withdraw_ebgp(kNbr, unrelated_prefix());  // no effect
  at(1).withdraw_ebgp(kNbr, kLow);
  ASSERT_TRUE(sched.run_to_quiescence(1000000));
  EXPECT_EQ(at(91).rib_out_size(), 0u);
  EXPECT_EQ(at(3).loc_rib().best(kLow), nullptr);
  EXPECT_EQ(at(3).rib_in_size(), 0u);
}

}  // namespace
}  // namespace abrr::ibgp
