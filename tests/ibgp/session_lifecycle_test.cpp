// Session lifecycle: bulk withdraw on session loss, full table resync on
// (re-)establishment.
#include <gtest/gtest.h>

#include <map>
#include <memory>

#include "core/address_partition.h"
#include "ibgp/speaker.h"

namespace abrr::ibgp {
namespace {

using bgp::Ipv4Prefix;
using bgp::Route;
using bgp::RouteBuilder;

const Ipv4Prefix kPfx = Ipv4Prefix::parse("10.0.0.0/8");
const Ipv4Prefix kPfx2 = Ipv4Prefix::parse("20.0.0.0/8");
constexpr RouterId kNbr = 0x80000001;

class SessionTest : public ::testing::Test {
 protected:
  SessionTest() : scheme(core::PartitionScheme::uniform(1)) {
    // Clients 1, 2; redundant ARRs 10, 11 for the single AP.
    for (const RouterId id : {1u, 2u}) add(id, {});
    for (const RouterId id : {10u, 11u}) add(id, {0});
    for (const RouterId c : {1u, 2u}) {
      for (const RouterId a : {10u, 11u}) {
        net.connect(c, a, sim::msec(2));
        at(a).add_peer(PeerInfo{.id = c, .rr_client = true});
        at(c).add_peer(PeerInfo{.id = a, .reflector_for = {0}});
      }
    }
    for (auto& [id, s] : speakers) s->start();
  }

  void add(RouterId id, std::vector<ApId> managed) {
    SpeakerConfig cfg;
    cfg.id = id;
    cfg.asn = 65000;
    cfg.mode = IbgpMode::kAbrr;
    cfg.ap_of = scheme.mapper();
    cfg.managed_aps = managed;
    cfg.data_plane = managed.empty();
    cfg.mrai = 0;
    cfg.proc_delay = sim::msec(1);
    speakers.emplace(id, std::make_unique<Speaker>(cfg, sched, net));
  }
  Speaker& at(RouterId id) { return *speakers.at(id); }

  Route route(std::vector<bgp::Asn> path) {
    return RouteBuilder{kPfx}.as_path(bgp::AsPath{std::move(path)}).build();
  }

  core::PartitionScheme scheme;
  sim::Scheduler sched;
  sim::Rng rng{1};
  net::Network net{sched, rng};
  std::map<RouterId, std::unique_ptr<Speaker>> speakers;
};

TEST_F(SessionTest, EbgpSessionDownWithdrawsEverythingLearned) {
  at(1).inject_ebgp(kNbr, route({7018, 15169}));
  at(1).inject_ebgp(kNbr, RouteBuilder{kPfx2}.as_path({7018}).build());
  sched.run_to_quiescence(100000);
  ASSERT_NE(at(2).loc_rib().best(kPfx), nullptr);
  ASSERT_NE(at(2).loc_rib().best(kPfx2), nullptr);

  at(1).session_down(kNbr);  // the eBGP neighbor went away
  ASSERT_TRUE(sched.run_to_quiescence(100000));
  EXPECT_EQ(at(1).loc_rib().best(kPfx), nullptr);
  EXPECT_EQ(at(2).loc_rib().best(kPfx), nullptr);
  EXPECT_EQ(at(2).loc_rib().best(kPfx2), nullptr);
  EXPECT_EQ(at(10).rib_in_size(), 0u);
}

TEST_F(SessionTest, ArrSessionDownLosesOnlyThatCopy) {
  at(1).inject_ebgp(kNbr, route({7018, 15169}));
  sched.run_to_quiescence(100000);
  ASSERT_EQ(at(2).adj_rib_in().peer_size(10), 1u);
  ASSERT_EQ(at(2).adj_rib_in().peer_size(11), 1u);

  // Client 2 loses its session to ARR 10; redundancy keeps the route.
  at(2).session_down(10);
  ASSERT_TRUE(sched.run_to_quiescence(100000));
  EXPECT_EQ(at(2).adj_rib_in().peer_size(10), 0u);
  ASSERT_NE(at(2).loc_rib().best(kPfx), nullptr);
  EXPECT_EQ(at(2).loc_rib().best(kPfx)->egress(), 1u);
}

TEST_F(SessionTest, SessionUpResyncsFullTable) {
  at(1).inject_ebgp(kNbr, route({7018, 15169}));
  sched.run_to_quiescence(100000);

  // Drop both directions of the 2<->10 session state.
  at(2).session_down(10);
  at(10).session_down(2);
  sched.run_to_quiescence(100000);
  ASSERT_EQ(at(2).adj_rib_in().peer_size(10), 0u);

  // Session re-established: the ARR replays its Adj-RIB-Out.
  at(10).session_up(2);
  ASSERT_TRUE(sched.run_to_quiescence(100000));
  EXPECT_EQ(at(2).adj_rib_in().peer_size(10), 1u);
}

TEST_F(SessionTest, ClientSessionDownAtArrRemovesItsContributions) {
  at(1).inject_ebgp(kNbr, route({7018, 15169}));
  at(2).inject_ebgp(kNbr + 1, route({1299, 15169}));
  sched.run_to_quiescence(100000);
  ASSERT_EQ(at(10).out_group(Speaker::arr_group(0))->get(kPfx)->size(), 2u);

  // ARR 10 loses client 1: its route leaves the reflected set.
  at(10).session_down(1);
  ASSERT_TRUE(sched.run_to_quiescence(100000));
  const auto* set = at(10).out_group(Speaker::arr_group(0))->get(kPfx);
  ASSERT_NE(set, nullptr);
  ASSERT_EQ(set->size(), 1u);
  EXPECT_EQ(set->front().egress(), 2u);
  // ARR 11 still has both (its sessions are intact).
  EXPECT_EQ(at(11).out_group(Speaker::arr_group(0))->get(kPfx)->size(), 2u);
  // So clients still reach egress 1 through ARR 11's set.
  ASSERT_NE(at(2).loc_rib().best(kPfx), nullptr);
}

TEST_F(SessionTest, SessionDownOnUnknownPeerIsHarmless) {
  at(1).session_down(999);
  at(1).session_up(999);
  EXPECT_TRUE(sched.run_to_quiescence(100000));
}

TEST_F(SessionTest, DoubleSessionDownIsIdempotent) {
  at(1).inject_ebgp(kNbr, route({7018, 15169}));
  sched.run_to_quiescence(100000);

  at(2).session_down(10);
  ASSERT_TRUE(sched.run_to_quiescence(100000));
  ASSERT_FALSE(at(2).peer_up(10));
  const auto after_first = at(2).counters();
  const std::size_t rib_after_first = at(2).rib_in_size();

  // The second down must be a complete no-op: no new withdrawals, no
  // decision churn, no messages.
  at(2).session_down(10);
  ASSERT_TRUE(sched.run_to_quiescence(100000));
  EXPECT_EQ(at(2).counters().best_changes, after_first.best_changes);
  EXPECT_EQ(at(2).counters().updates_generated, after_first.updates_generated);
  EXPECT_EQ(at(2).rib_in_size(), rib_after_first);

  // And the session still recovers normally afterwards.
  at(10).session_down(2);
  at(10).session_up(2);
  ASSERT_TRUE(sched.run_to_quiescence(100000));
  EXPECT_EQ(at(2).adj_rib_in().peer_size(10), 1u);
  EXPECT_TRUE(at(2).peer_up(10));
}

TEST_F(SessionTest, SessionDownBeforeAnyTrafficIsSafe) {
  // Down-before-up ordering: the peer never sent anything, so there is
  // nothing to withdraw and no state to corrupt.
  at(2).session_down(10);
  at(2).session_down(10);
  ASSERT_TRUE(sched.run_to_quiescence(100000));
  EXPECT_FALSE(at(2).peer_up(10));

  // Traffic from the "down" peer re-establishes the session implicitly
  // (receive-side auto-up), so the route still arrives via both ARRs.
  at(1).inject_ebgp(kNbr, route({7018, 15169}));
  ASSERT_TRUE(sched.run_to_quiescence(100000));
  EXPECT_TRUE(at(2).peer_up(10));
  EXPECT_EQ(at(2).adj_rib_in().peer_size(10), 1u);
  EXPECT_EQ(at(2).adj_rib_in().peer_size(11), 1u);
  EXPECT_GE(at(2).counters().sessions_reestablished, 1u);
}

TEST_F(SessionTest, SessionUpOnAlreadyUpPeerDoesNotChurn) {
  at(1).inject_ebgp(kNbr, route({7018, 15169}));
  sched.run_to_quiescence(100000);
  const auto before = at(2).counters();

  at(10).session_up(2);  // redundant: session was never down
  ASSERT_TRUE(sched.run_to_quiescence(100000));
  // The replay re-sends the Adj-RIB-Out, but the content hashes match,
  // so the client's RIB state must be unchanged.
  EXPECT_EQ(at(2).counters().best_changes, before.best_changes);
  EXPECT_EQ(at(2).adj_rib_in().peer_size(10), 1u);
}

// Hold-timer failure detection: peers discover a crashed router by
// timeout, not by oracle notification.
class HoldTimerTest : public ::testing::Test {
 protected:
  HoldTimerTest() : scheme(core::PartitionScheme::uniform(1)) {
    for (const RouterId id : {1u, 2u}) add(id, {});
    for (const RouterId id : {10u, 11u}) add(id, {0});
    for (const RouterId c : {1u, 2u}) {
      for (const RouterId a : {10u, 11u}) {
        net.connect(c, a, sim::msec(2));
        at(a).add_peer(PeerInfo{.id = c, .rr_client = true});
        at(c).add_peer(PeerInfo{.id = a, .reflector_for = {0}});
      }
    }
    for (auto& [id, s] : speakers) s->start();
  }

  void add(RouterId id, std::vector<ApId> managed) {
    SpeakerConfig cfg;
    cfg.id = id;
    cfg.asn = 65000;
    cfg.mode = IbgpMode::kAbrr;
    cfg.ap_of = scheme.mapper();
    cfg.managed_aps = managed;
    cfg.data_plane = managed.empty();
    cfg.mrai = 0;
    cfg.proc_delay = sim::msec(1);
    cfg.hold_time = sim::sec(3);
    speakers.emplace(id, std::make_unique<Speaker>(cfg, sched, net));
  }
  Speaker& at(RouterId id) { return *speakers.at(id); }

  core::PartitionScheme scheme;
  sim::Scheduler sched;
  sim::Rng rng{1};
  net::Network net{sched, rng};
  std::map<RouterId, std::unique_ptr<Speaker>> speakers;
};

TEST_F(HoldTimerTest, KeepalivesKeepQuietSessionsAlive) {
  at(1).inject_ebgp(kNbr,
                    RouteBuilder{kPfx}.as_path({7018, 15169}).build());
  sched.run_until(sim::sec(30));  // 10x the hold time, zero route churn
  for (const RouterId id : {1u, 2u, 10u, 11u}) {
    EXPECT_EQ(at(id).counters().hold_expirations, 0u) << "router " << id;
  }
  EXPECT_GT(at(1).counters().keepalives_sent, 0u);
  EXPECT_GT(at(10).counters().keepalives_received, 0u);
  ASSERT_NE(at(2).loc_rib().best(kPfx), nullptr);
}

TEST_F(HoldTimerTest, CrashIsDiscoveredByHoldTimeout) {
  at(1).inject_ebgp(kNbr,
                    RouteBuilder{kPfx}.as_path({7018, 15169}).build());
  sched.run_until(sim::sec(1));
  ASSERT_EQ(at(2).adj_rib_in().peer_size(10), 1u);

  at(10).crash();
  net.set_endpoint_up(10, false);
  sched.run_until(sim::sec(12));

  // Every peer of 10 (the clients; ARRs of one AP do not peer) timed
  // the session out on its own.
  for (const RouterId id : {1u, 2u}) {
    EXPECT_FALSE(at(id).peer_up(10)) << "router " << id;
    EXPECT_GE(at(id).counters().hold_expirations, 1u) << "router " << id;
  }
  // The copy learned from ARR 10 is gone; redundancy keeps the route.
  EXPECT_EQ(at(2).adj_rib_in().peer_size(10), 0u);
  ASSERT_NE(at(2).loc_rib().best(kPfx), nullptr);
  EXPECT_EQ(at(2).loc_rib().best(kPfx)->egress(), 1u);
}

TEST_F(HoldTimerTest, CrashLosesAllState) {
  at(1).inject_ebgp(kNbr,
                    RouteBuilder{kPfx}.as_path({7018, 15169}).build());
  sched.run_until(sim::sec(1));
  ASSERT_GT(at(10).rib_in_size(), 0u);

  at(10).crash();
  EXPECT_FALSE(at(10).alive());
  EXPECT_EQ(at(10).rib_in_size(), 0u);
  EXPECT_EQ(at(10).loc_rib().size(), 0u);
  EXPECT_EQ(at(10).rib_out_size(), 0u);
  at(10).crash();  // double crash is a no-op
  EXPECT_FALSE(at(10).alive());

  at(10).restart();
  EXPECT_TRUE(at(10).alive());
  EXPECT_EQ(at(10).rib_in_size(), 0u);  // restarts empty
}

}  // namespace
}  // namespace abrr::ibgp
