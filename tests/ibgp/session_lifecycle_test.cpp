// Session lifecycle: bulk withdraw on session loss, full table resync on
// (re-)establishment.
#include <gtest/gtest.h>

#include <map>
#include <memory>

#include "core/address_partition.h"
#include "ibgp/speaker.h"

namespace abrr::ibgp {
namespace {

using bgp::Ipv4Prefix;
using bgp::Route;
using bgp::RouteBuilder;

const Ipv4Prefix kPfx = Ipv4Prefix::parse("10.0.0.0/8");
const Ipv4Prefix kPfx2 = Ipv4Prefix::parse("20.0.0.0/8");
constexpr RouterId kNbr = 0x80000001;

class SessionTest : public ::testing::Test {
 protected:
  SessionTest() : scheme(core::PartitionScheme::uniform(1)) {
    // Clients 1, 2; redundant ARRs 10, 11 for the single AP.
    for (const RouterId id : {1u, 2u}) add(id, {});
    for (const RouterId id : {10u, 11u}) add(id, {0});
    for (const RouterId c : {1u, 2u}) {
      for (const RouterId a : {10u, 11u}) {
        net.connect(c, a, sim::msec(2));
        at(a).add_peer(PeerInfo{.id = c, .rr_client = true});
        at(c).add_peer(PeerInfo{.id = a, .reflector_for = {0}});
      }
    }
    for (auto& [id, s] : speakers) s->start();
  }

  void add(RouterId id, std::vector<ApId> managed) {
    SpeakerConfig cfg;
    cfg.id = id;
    cfg.asn = 65000;
    cfg.mode = IbgpMode::kAbrr;
    cfg.ap_of = scheme.mapper();
    cfg.managed_aps = managed;
    cfg.data_plane = managed.empty();
    cfg.mrai = 0;
    cfg.proc_delay = sim::msec(1);
    speakers.emplace(id, std::make_unique<Speaker>(cfg, sched, net));
  }
  Speaker& at(RouterId id) { return *speakers.at(id); }

  Route route(std::vector<bgp::Asn> path) {
    return RouteBuilder{kPfx}.as_path(bgp::AsPath{std::move(path)}).build();
  }

  core::PartitionScheme scheme;
  sim::Scheduler sched;
  sim::Rng rng{1};
  net::Network net{sched, rng};
  std::map<RouterId, std::unique_ptr<Speaker>> speakers;
};

TEST_F(SessionTest, EbgpSessionDownWithdrawsEverythingLearned) {
  at(1).inject_ebgp(kNbr, route({7018, 15169}));
  at(1).inject_ebgp(kNbr, RouteBuilder{kPfx2}.as_path({7018}).build());
  sched.run_to_quiescence(100000);
  ASSERT_NE(at(2).loc_rib().best(kPfx), nullptr);
  ASSERT_NE(at(2).loc_rib().best(kPfx2), nullptr);

  at(1).session_down(kNbr);  // the eBGP neighbor went away
  ASSERT_TRUE(sched.run_to_quiescence(100000));
  EXPECT_EQ(at(1).loc_rib().best(kPfx), nullptr);
  EXPECT_EQ(at(2).loc_rib().best(kPfx), nullptr);
  EXPECT_EQ(at(2).loc_rib().best(kPfx2), nullptr);
  EXPECT_EQ(at(10).rib_in_size(), 0u);
}

TEST_F(SessionTest, ArrSessionDownLosesOnlyThatCopy) {
  at(1).inject_ebgp(kNbr, route({7018, 15169}));
  sched.run_to_quiescence(100000);
  ASSERT_EQ(at(2).adj_rib_in().peer_size(10), 1u);
  ASSERT_EQ(at(2).adj_rib_in().peer_size(11), 1u);

  // Client 2 loses its session to ARR 10; redundancy keeps the route.
  at(2).session_down(10);
  ASSERT_TRUE(sched.run_to_quiescence(100000));
  EXPECT_EQ(at(2).adj_rib_in().peer_size(10), 0u);
  ASSERT_NE(at(2).loc_rib().best(kPfx), nullptr);
  EXPECT_EQ(at(2).loc_rib().best(kPfx)->egress(), 1u);
}

TEST_F(SessionTest, SessionUpResyncsFullTable) {
  at(1).inject_ebgp(kNbr, route({7018, 15169}));
  sched.run_to_quiescence(100000);

  // Drop both directions of the 2<->10 session state.
  at(2).session_down(10);
  at(10).session_down(2);
  sched.run_to_quiescence(100000);
  ASSERT_EQ(at(2).adj_rib_in().peer_size(10), 0u);

  // Session re-established: the ARR replays its Adj-RIB-Out.
  at(10).session_up(2);
  ASSERT_TRUE(sched.run_to_quiescence(100000));
  EXPECT_EQ(at(2).adj_rib_in().peer_size(10), 1u);
}

TEST_F(SessionTest, ClientSessionDownAtArrRemovesItsContributions) {
  at(1).inject_ebgp(kNbr, route({7018, 15169}));
  at(2).inject_ebgp(kNbr + 1, route({1299, 15169}));
  sched.run_to_quiescence(100000);
  ASSERT_EQ(at(10).out_group(Speaker::arr_group(0))->get(kPfx)->size(), 2u);

  // ARR 10 loses client 1: its route leaves the reflected set.
  at(10).session_down(1);
  ASSERT_TRUE(sched.run_to_quiescence(100000));
  const auto* set = at(10).out_group(Speaker::arr_group(0))->get(kPfx);
  ASSERT_NE(set, nullptr);
  ASSERT_EQ(set->size(), 1u);
  EXPECT_EQ(set->front().egress(), 2u);
  // ARR 11 still has both (its sessions are intact).
  EXPECT_EQ(at(11).out_group(Speaker::arr_group(0))->get(kPfx)->size(), 2u);
  // So clients still reach egress 1 through ARR 11's set.
  ASSERT_NE(at(2).loc_rib().best(kPfx), nullptr);
}

TEST_F(SessionTest, SessionDownOnUnknownPeerIsHarmless) {
  at(1).session_down(999);
  at(1).session_up(999);
  EXPECT_TRUE(sched.run_to_quiescence(100000));
}

}  // namespace
}  // namespace abrr::ibgp
