// Full-mesh iBGP: the gold standard ABRR emulates (§2.2).
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "ibgp/speaker.h"

namespace abrr::ibgp {
namespace {

using bgp::Ipv4Prefix;
using bgp::LearnedVia;
using bgp::Route;
using bgp::RouteBuilder;

const Ipv4Prefix kPfx = Ipv4Prefix::parse("10.0.0.0/8");
constexpr RouterId kEbgpNeighbor = 0x80000001;

class FullMeshTest : public ::testing::Test {
 protected:
  void Build(std::size_t n, sim::Time mrai = 0) {
    for (RouterId id = 1; id <= n; ++id) {
      SpeakerConfig cfg;
      cfg.id = id;
      cfg.asn = 65000;
      cfg.mode = IbgpMode::kFullMesh;
      cfg.mrai = mrai;
      cfg.proc_delay = sim::msec(1);
      speakers.push_back(std::make_unique<Speaker>(cfg, sched, net));
    }
    for (std::size_t i = 0; i < n; ++i) {
      for (std::size_t j = i + 1; j < n; ++j) {
        net.connect(speakers[i]->id(), speakers[j]->id(), sim::msec(2));
        speakers[i]->add_peer(PeerInfo{.id = speakers[j]->id()});
        speakers[j]->add_peer(PeerInfo{.id = speakers[i]->id()});
      }
    }
    for (auto& s : speakers) s->start();
  }

  Route route(std::uint32_t lp, std::vector<bgp::Asn> path) {
    return RouteBuilder{kPfx}.local_pref(lp).as_path(bgp::AsPath{std::move(path)}).build();
  }

  sim::Scheduler sched;
  sim::Rng rng{1};
  net::Network net{sched, rng};
  std::vector<std::unique_ptr<Speaker>> speakers;
};

TEST_F(FullMeshTest, SingleRouteReachesEveryRouter) {
  Build(4);
  speakers[0]->inject_ebgp(kEbgpNeighbor, route(100, {65001}));
  ASSERT_TRUE(sched.run_to_quiescence(100000));

  for (const auto& s : speakers) {
    const Route* best = s->loc_rib().best(kPfx);
    ASSERT_NE(best, nullptr) << "router " << s->id();
    EXPECT_EQ(best->egress(), speakers[0]->id());
  }
  // The injector's best is eBGP-learned, everyone else's is iBGP.
  EXPECT_EQ(speakers[0]->loc_rib().best(kPfx)->via, LearnedVia::kEbgp);
  EXPECT_EQ(speakers[2]->loc_rib().best(kPfx)->via, LearnedVia::kIbgp);
}

TEST_F(FullMeshTest, IbgpLearnedRoutesAreNeverReadvertised) {
  Build(3);
  speakers[0]->inject_ebgp(kEbgpNeighbor, route(100, {65001}));
  sched.run_to_quiescence(100000);
  // Routers 2 and 3 learned via iBGP: their mesh Adj-RIB-Out stays empty.
  EXPECT_GT(speakers[0]->rib_out_size(), 0u);
  EXPECT_EQ(speakers[1]->rib_out_size(), 0u);
  EXPECT_EQ(speakers[2]->rib_out_size(), 0u);
  // And router 1 received nothing.
  EXPECT_EQ(speakers[0]->counters().updates_received, 0u);
}

TEST_F(FullMeshTest, BetterRouteDisplacesAndTriggersWithdraw) {
  Build(3);
  speakers[0]->inject_ebgp(kEbgpNeighbor, route(100, {65001, 65002}));
  sched.run_to_quiescence(100000);
  ASSERT_EQ(speakers[2]->loc_rib().best(kPfx)->egress(), 1u);

  // Router 2 now learns a shorter (better) path over eBGP.
  speakers[1]->inject_ebgp(kEbgpNeighbor + 1, route(100, {65003}));
  ASSERT_TRUE(sched.run_to_quiescence(100000));

  // Everyone converges on router 2's egress...
  for (const auto& s : speakers) {
    EXPECT_EQ(s->loc_rib().best(kPfx)->egress(), 2u);
  }
  // ...and router 1, whose best is now iBGP-learned, withdrew its own
  // advertisement from the mesh.
  EXPECT_EQ(speakers[0]->rib_out_size(), 0u);
  EXPECT_EQ(speakers[2]->adj_rib_in().peer_size(1), 0u);
}

TEST_F(FullMeshTest, EbgpWithdrawRestoresAlternative) {
  Build(3);
  speakers[0]->inject_ebgp(kEbgpNeighbor, route(100, {65001}));
  speakers[1]->inject_ebgp(kEbgpNeighbor + 1, route(100, {65002, 65002}));
  sched.run_to_quiescence(100000);
  // Shorter path via router 1 wins everywhere.
  EXPECT_EQ(speakers[2]->loc_rib().best(kPfx)->egress(), 1u);

  speakers[0]->withdraw_ebgp(kEbgpNeighbor, kPfx);
  ASSERT_TRUE(sched.run_to_quiescence(100000));
  for (const auto& s : speakers) {
    const Route* best = s->loc_rib().best(kPfx);
    ASSERT_NE(best, nullptr);
    EXPECT_EQ(best->egress(), 2u);
  }
}

TEST_F(FullMeshTest, FullWithdrawalEmptiesAllRibs) {
  Build(4);
  speakers[0]->inject_ebgp(kEbgpNeighbor, route(100, {65001}));
  sched.run_to_quiescence(100000);
  speakers[0]->withdraw_ebgp(kEbgpNeighbor, kPfx);
  ASSERT_TRUE(sched.run_to_quiescence(100000));
  for (const auto& s : speakers) {
    EXPECT_EQ(s->loc_rib().best(kPfx), nullptr);
    EXPECT_EQ(s->rib_in_size(), 0u);
    EXPECT_EQ(s->rib_out_size(), 0u);
  }
}

TEST_F(FullMeshTest, HotPotatoFollowsIgpDistance) {
  Build(4);
  // Routers 3 and 4 choose between equal egresses 1 and 2 by IGP metric.
  speakers[2]->set_igp([](RouterId nh) -> std::int64_t {
    return nh == 1 ? 10 : 20;
  });
  speakers[3]->set_igp([](RouterId nh) -> std::int64_t {
    return nh == 1 ? 20 : 10;
  });
  speakers[0]->inject_ebgp(kEbgpNeighbor, route(100, {65001}));
  speakers[1]->inject_ebgp(kEbgpNeighbor + 1, route(100, {65002}));
  sched.run_to_quiescence(100000);
  EXPECT_EQ(speakers[2]->loc_rib().best(kPfx)->egress(), 1u);
  EXPECT_EQ(speakers[3]->loc_rib().best(kPfx)->egress(), 2u);
}

TEST_F(FullMeshTest, ImportPolicyCanRejectAndRewrite) {
  Build(2);
  speakers[0]->set_import_policy([](const Route& r) -> std::optional<Route> {
    if (r.attrs->as_path.contains(65099)) return std::nullopt;  // blocklist
    Route out = r;
    out.attrs = bgp::with_attrs(
        out.attrs, [](bgp::PathAttrs& a) { a.local_pref = 250; });
    return out;
  });
  speakers[0]->inject_ebgp(kEbgpNeighbor, route(100, {65099}));
  sched.run_to_quiescence(100000);
  EXPECT_EQ(speakers[0]->loc_rib().best(kPfx), nullptr);

  speakers[0]->inject_ebgp(kEbgpNeighbor, route(100, {65001}));
  sched.run_to_quiescence(100000);
  ASSERT_NE(speakers[0]->loc_rib().best(kPfx), nullptr);
  EXPECT_EQ(speakers[0]->loc_rib().best(kPfx)->attrs->local_pref, 250u);
}

TEST_F(FullMeshTest, LocalOriginationPropagates) {
  Build(3);
  speakers[1]->originate(RouteBuilder{kPfx}.origin(bgp::Origin::kIgp).build());
  ASSERT_TRUE(sched.run_to_quiescence(100000));
  for (const auto& s : speakers) {
    ASSERT_NE(s->loc_rib().best(kPfx), nullptr);
    EXPECT_EQ(s->loc_rib().best(kPfx)->egress(), 2u);
  }
  EXPECT_EQ(speakers[1]->loc_rib().best(kPfx)->via, LearnedVia::kLocal);
}

TEST_F(FullMeshTest, MraiBatchesBursts) {
  Build(2, /*mrai=*/sim::sec(5));
  // Ten successive attribute changes inside one MRAI window...
  for (std::uint32_t i = 0; i < 10; ++i) {
    speakers[0]->inject_ebgp(kEbgpNeighbor,
                             route(100 + i, {65001}));
    sched.run_until(sched.now() + sim::msec(100));
  }
  ASSERT_TRUE(sched.run_to_quiescence(100000));
  // ...reach the peer as far fewer transmitted updates.
  EXPECT_LT(speakers[0]->counters().updates_transmitted, 5u);
  EXPECT_GE(speakers[0]->counters().updates_generated, 5u);
  // Final state is nevertheless correct.
  ASSERT_NE(speakers[1]->loc_rib().best(kPfx), nullptr);
  EXPECT_EQ(speakers[1]->loc_rib().best(kPfx)->attrs->local_pref, 109u);
}

TEST_F(FullMeshTest, TiedRoutesLeaveEveryBorderRouterOnItsOwnExit) {
  Build(5);
  for (std::size_t i = 0; i < 5; ++i) {
    speakers[i]->inject_ebgp(
        kEbgpNeighbor + static_cast<RouterId>(i),
        route(100, {static_cast<bgp::Asn>(65001 + i), 65100}));
  }
  ASSERT_TRUE(sched.run_to_quiescence(1000000));
  // All paths tie through steps 1-4, so step 5 (eBGP over iBGP) makes
  // every border router stick with its own exit: all five keep
  // advertising, and nobody flaps.
  for (const auto& s : speakers) {
    const Route* best = s->loc_rib().best(kPfx);
    ASSERT_NE(best, nullptr);
    EXPECT_EQ(best->egress(), s->id());
    EXPECT_EQ(best->via, LearnedVia::kEbgp);
    EXPECT_GT(s->rib_out_size(), 0u);
  }
}

}  // namespace
}  // namespace abrr::ibgp
