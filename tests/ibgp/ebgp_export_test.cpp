// Table 1 "Client -> eBGP Neighbor" rows and the eBGP rewrite rules.
#include "ibgp/ebgp_export.h"

#include <gtest/gtest.h>

#include <map>
#include <memory>

#include "ibgp/speaker.h"

namespace abrr::ibgp {
namespace {

using bgp::Ipv4Prefix;
using bgp::LearnedVia;
using bgp::Route;
using bgp::RouteBuilder;

const Ipv4Prefix kPfx = Ipv4Prefix::parse("10.0.0.0/8");
constexpr bgp::Asn kOwnAs = 65000;
constexpr bgp::Asn kNeighborAs = 7018;
constexpr RouterId kNeighborId = 0x80000001;

Route ibgp_best() {
  return RouteBuilder{kPfx}
      .as_path({3356, 1299})
      .med(30)
      .local_pref(120)
      .originator(42)
      .cluster_list({7})
      .ext_community(bgp::kAbrrReflectedCommunity)
      .next_hop(9)
      .learned_from(42, LearnedVia::kIbgp)
      .build();
}

TEST(EbgpExport, PrependsOwnAsAndStripsInternalState) {
  const auto out =
      export_to_ebgp(ibgp_best(), kOwnAs, kNeighborAs, kNeighborId);
  ASSERT_TRUE(out.has_value());
  EXPECT_EQ(out->attrs->as_path.first(), kOwnAs);
  EXPECT_EQ(out->attrs->as_path.length(), 3u);
  EXPECT_EQ(out->attrs->local_pref, bgp::kDefaultLocalPref);
  EXPECT_FALSE(out->attrs->med.has_value());  // stripped by default
  EXPECT_FALSE(out->attrs->originator_id.has_value());
  EXPECT_TRUE(out->attrs->cluster_list.empty());
  EXPECT_FALSE(
      out->attrs->has_ext_community(bgp::kAbrrReflectedCommunity));
}

TEST(EbgpExport, SendMedPolicyKeepsMed) {
  EbgpExportPolicy policy;
  policy.send_med = true;
  const auto out =
      export_to_ebgp(ibgp_best(), kOwnAs, kNeighborAs, kNeighborId, policy);
  ASSERT_TRUE(out.has_value());
  ASSERT_TRUE(out->attrs->med.has_value());
  EXPECT_EQ(*out->attrs->med, 30u);
}

TEST(EbgpExport, SplitHorizonBlocksSender) {
  Route r = RouteBuilder{kPfx}
                .as_path({3356})
                .learned_from(kNeighborId, LearnedVia::kEbgp)
                .build();
  EXPECT_FALSE(
      export_to_ebgp(r, kOwnAs, kNeighborAs, kNeighborId).has_value());
  // A different neighbor still gets it.
  EXPECT_TRUE(
      export_to_ebgp(r, kOwnAs, 1299, kNeighborId + 1).has_value());
}

TEST(EbgpExport, AsPathLoopBlocksExport) {
  Route r = RouteBuilder{kPfx}
                .as_path({3356, kNeighborAs, 15169})
                .learned_from(5, LearnedVia::kIbgp)
                .build();
  EXPECT_FALSE(
      export_to_ebgp(r, kOwnAs, kNeighborAs, kNeighborId).has_value());
}

TEST(EbgpExport, NoExportCommunityHonored) {
  bgp::PathAttrs attrs;
  attrs.as_path = bgp::AsPath{3356};
  attrs.communities.push_back(kNoExport);
  Route r;
  r.prefix = kPfx;
  r.attrs = bgp::make_attrs(attrs);
  r.via = LearnedVia::kIbgp;
  EXPECT_FALSE(
      export_to_ebgp(r, kOwnAs, kNeighborAs, kNeighborId).has_value());
  EbgpExportPolicy lax;
  lax.honor_no_export = false;
  EXPECT_TRUE(
      export_to_ebgp(r, kOwnAs, kNeighborAs, kNeighborId, lax).has_value());
}

TEST(EbgpExport, StripCommunitiesPolicy) {
  bgp::PathAttrs attrs;
  attrs.as_path = bgp::AsPath{3356};
  attrs.communities.push_back(0x00010002);
  Route r;
  r.prefix = kPfx;
  r.attrs = bgp::make_attrs(attrs);
  r.via = LearnedVia::kIbgp;
  EbgpExportPolicy policy;
  policy.strip_communities = true;
  const auto out =
      export_to_ebgp(r, kOwnAs, kNeighborAs, kNeighborId, policy);
  ASSERT_TRUE(out.has_value());
  EXPECT_TRUE(out->attrs->communities.empty());
}

TEST(EbgpExport, InvalidRouteYieldsNothing) {
  EXPECT_FALSE(
      export_to_ebgp(Route{}, kOwnAs, kNeighborAs, kNeighborId).has_value());
}

// --- Speaker integration ------------------------------------------------

class EbgpSpeakerTest : public ::testing::Test {
 protected:
  EbgpSpeakerTest() {
    SpeakerConfig cfg;
    cfg.id = 1;
    cfg.asn = kOwnAs;
    cfg.mode = IbgpMode::kFullMesh;
    cfg.mrai = 0;
    cfg.proc_delay = sim::msec(1);
    speaker = std::make_unique<Speaker>(cfg, sched, net);
    speaker->set_ebgp_send_hook(
        [this](RouterId neighbor, const Ipv4Prefix& p,
               const std::optional<Route>& route) {
          log.emplace_back(neighbor, p, route);
        });
    speaker->start();
  }

  sim::Scheduler sched;
  sim::Rng rng{1};
  net::Network net{sched, rng};
  std::unique_ptr<Speaker> speaker;
  std::vector<std::tuple<RouterId, Ipv4Prefix, std::optional<Route>>> log;
};

TEST_F(EbgpSpeakerTest, BestRoutesFlowToNeighborsButNotBackToSender) {
  speaker->add_ebgp_neighbor(kNeighborId, kNeighborAs);
  speaker->add_ebgp_neighbor(kNeighborId + 1, 1299);
  speaker->inject_ebgp(
      kNeighborId,
      RouteBuilder{kPfx}.as_path({kNeighborAs, 15169}).build());
  sched.run_to_quiescence();
  // Only the OTHER neighbor hears about it.
  ASSERT_EQ(log.size(), 1u);
  EXPECT_EQ(std::get<0>(log.front()), kNeighborId + 1);
  const auto& route = std::get<2>(log.front());
  ASSERT_TRUE(route.has_value());
  EXPECT_EQ(route->attrs->as_path.first(), kOwnAs);
  EXPECT_EQ(speaker->counters().ebgp_updates_sent, 1u);
}

TEST_F(EbgpSpeakerTest, WithdrawPropagatesToNeighbors) {
  speaker->add_ebgp_neighbor(kNeighborId + 1, 1299);
  speaker->inject_ebgp(
      kNeighborId,
      RouteBuilder{kPfx}.as_path({kNeighborAs, 15169}).build());
  sched.run_to_quiescence();
  log.clear();
  speaker->withdraw_ebgp(kNeighborId, kPfx);
  sched.run_to_quiescence();
  ASSERT_EQ(log.size(), 1u);
  EXPECT_FALSE(std::get<2>(log.front()).has_value());  // withdraw
}

TEST_F(EbgpSpeakerTest, LateNeighborGetsInitialTableSync) {
  speaker->inject_ebgp(
      kNeighborId,
      RouteBuilder{kPfx}.as_path({kNeighborAs, 15169}).build());
  sched.run_to_quiescence();
  EXPECT_TRUE(log.empty());
  speaker->add_ebgp_neighbor(kNeighborId + 1, 1299);
  ASSERT_EQ(log.size(), 1u);
  EXPECT_TRUE(std::get<2>(log.front()).has_value());
}

TEST_F(EbgpSpeakerTest, UnchangedBestDoesNotRefire) {
  speaker->add_ebgp_neighbor(kNeighborId + 1, 1299);
  const auto r =
      RouteBuilder{kPfx}.as_path({kNeighborAs, 15169}).build();
  speaker->inject_ebgp(kNeighborId, r);
  sched.run_to_quiescence();
  const auto before = log.size();
  speaker->inject_ebgp(kNeighborId, r);  // identical re-announce
  sched.run_to_quiescence();
  EXPECT_EQ(log.size(), before);
}

}  // namespace
}  // namespace abrr::ibgp
