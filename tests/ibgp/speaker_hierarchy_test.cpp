// Multi-level TBRR hierarchy (the "multiple layers" of §1): border
// clients under mid-level TRRs under a meshed top level. Routes climb
// client -> mid -> top, cross the top mesh, and descend again — the
// 3-or-more-iBGP-hop path whose MRAI cost §3.5 contrasts with ABRR's 2.
#include <gtest/gtest.h>

#include <map>
#include <memory>

#include "ibgp/speaker.h"

namespace abrr::ibgp {
namespace {

using bgp::Ipv4Prefix;
using bgp::Route;
using bgp::RouteBuilder;

const Ipv4Prefix kPfx = Ipv4Prefix::parse("10.0.0.0/8");
constexpr RouterId kNbr = 0x80000001;

// Two branches:
//   top TRRs 91 <-> 92 (meshed, clusters 91/92)
//   mid TRRs 81 (cluster 81, client of 91), 82 (cluster 82, client of 92)
//   border clients 1 (under 81), 2 (under 82)
class HierarchyTest : public ::testing::Test {
 protected:
  Speaker& add(RouterId id, std::uint32_t cluster, bool data_plane) {
    SpeakerConfig cfg;
    cfg.id = id;
    cfg.asn = 65000;
    cfg.mode = IbgpMode::kTbrr;
    cfg.cluster_id = cluster;
    cfg.data_plane = data_plane;
    cfg.mrai = 0;
    cfg.proc_delay = sim::msec(1);
    auto s = std::make_unique<Speaker>(cfg, sched, net);
    auto& ref = *s;
    speakers.emplace(id, std::move(s));
    return ref;
  }
  Speaker& at(RouterId id) { return *speakers.at(id); }

  void link_client(RouterId client, RouterId rr) {
    net.connect(client, rr, sim::msec(2));
    at(client).add_peer(PeerInfo{.id = rr, .reflector_tbrr = true});
    at(rr).add_peer(PeerInfo{.id = client, .rr_client = true});
  }

  void Build() {
    add(1, 0, true);
    add(2, 0, true);
    add(81, 81, false);
    add(82, 82, false);
    add(91, 91, false);
    add(92, 92, false);
    link_client(1, 81);
    link_client(2, 82);
    link_client(81, 91);  // mid TRRs are clients of the top level
    link_client(82, 92);
    net.connect(91, 92, sim::msec(2));
    at(91).add_peer(PeerInfo{.id = 92, .rr_peer = true});
    at(92).add_peer(PeerInfo{.id = 91, .rr_peer = true});
    for (auto& [id, s] : speakers) s->start();
  }

  sim::Scheduler sched;
  sim::Rng rng{1};
  net::Network net{sched, rng};
  std::map<RouterId, std::unique_ptr<Speaker>> speakers;
};

TEST_F(HierarchyTest, RouteClimbsAndDescendsTheHierarchy) {
  Build();
  at(1).inject_ebgp(kNbr,
                    RouteBuilder{kPfx}.as_path({7018, 15169}).build());
  ASSERT_TRUE(sched.run_to_quiescence(200000));
  // The far-branch border client learned it through 4 iBGP hops.
  const Route* best = at(2).loc_rib().best(kPfx);
  ASSERT_NE(best, nullptr);
  EXPECT_EQ(best->egress(), 1u);
  // The cluster list records the reflection chain: 81, 91, 92, 82.
  EXPECT_EQ(best->attrs->cluster_list.size(), 4u);
  ASSERT_TRUE(best->attrs->originator_id.has_value());
  EXPECT_EQ(*best->attrs->originator_id, 1u);
}

TEST_F(HierarchyTest, MidLevelReflectsParentRoutesDownOnly) {
  Build();
  at(1).inject_ebgp(kNbr,
                    RouteBuilder{kPfx}.as_path({7018, 15169}).build());
  ASSERT_TRUE(sched.run_to_quiescence(200000));
  // Mid TRR 82 learned the route from its parent 92: it must reflect to
  // its clients but never advertise it back upward.
  const auto* uplink = at(82).out_group(Speaker::kGroupUplink);
  EXPECT_TRUE(uplink == nullptr || uplink->size() == 0u);
  const auto* down = at(82).out_group(Speaker::kGroupClients);
  ASSERT_NE(down, nullptr);
  EXPECT_EQ(down->size(), 1u);
}

TEST_F(HierarchyTest, ClientLearnedRoutesClimb) {
  Build();
  at(2).inject_ebgp(kNbr,
                    RouteBuilder{kPfx}.as_path({1299, 15169}).build());
  ASSERT_TRUE(sched.run_to_quiescence(200000));
  // Mid TRR 82 advertises its client-learned best upward...
  const auto* uplink = at(82).out_group(Speaker::kGroupUplink);
  ASSERT_NE(uplink, nullptr);
  EXPECT_EQ(uplink->size(), 1u);
  // ...and the whole AS converges on egress 2.
  ASSERT_NE(at(1).loc_rib().best(kPfx), nullptr);
  EXPECT_EQ(at(1).loc_rib().best(kPfx)->egress(), 2u);
}

TEST_F(HierarchyTest, WithdrawUnwindsTheWholeChain) {
  Build();
  at(1).inject_ebgp(kNbr,
                    RouteBuilder{kPfx}.as_path({7018, 15169}).build());
  sched.run_to_quiescence(200000);
  ASSERT_NE(at(2).loc_rib().best(kPfx), nullptr);
  at(1).withdraw_ebgp(kNbr, kPfx);
  ASSERT_TRUE(sched.run_to_quiescence(200000));
  for (const RouterId id : {1u, 2u, 81u, 82u, 91u, 92u}) {
    EXPECT_EQ(at(id).rib_in_size(), 0u) << id;
    EXPECT_EQ(at(id).rib_out_size(), 0u) << id;
  }
}

TEST_F(HierarchyTest, BetterBranchWins) {
  Build();
  at(1).inject_ebgp(kNbr,
                    RouteBuilder{kPfx}.as_path({7018, 64512, 15169}).build());
  sched.run_to_quiescence(200000);
  at(2).inject_ebgp(kNbr + 1,
                    RouteBuilder{kPfx}.as_path({1299, 15169}).build());
  ASSERT_TRUE(sched.run_to_quiescence(200000));
  // Shorter path via client 2 displaces everything, including at the
  // originating branch.
  ASSERT_NE(at(1).loc_rib().best(kPfx), nullptr);
  EXPECT_EQ(at(1).loc_rib().best(kPfx)->egress(), 2u);
  // Client 1's own route was withdrawn from its mid TRR.
  EXPECT_EQ(at(81).adj_rib_in().peer_size(1), 0u);
}

}  // namespace
}  // namespace abrr::ibgp
